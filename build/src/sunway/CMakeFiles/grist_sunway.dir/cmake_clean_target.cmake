file(REMOVE_RECURSE
  "libgrist_sunway.a"
)
