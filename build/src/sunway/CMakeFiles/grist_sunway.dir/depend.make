# Empty dependencies file for grist_sunway.
# This may be replaced when dependencies are built.
