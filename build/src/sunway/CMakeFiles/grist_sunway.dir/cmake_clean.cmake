file(REMOVE_RECURSE
  "CMakeFiles/grist_sunway.dir/src/core_group.cpp.o"
  "CMakeFiles/grist_sunway.dir/src/core_group.cpp.o.d"
  "CMakeFiles/grist_sunway.dir/src/ldcache.cpp.o"
  "CMakeFiles/grist_sunway.dir/src/ldcache.cpp.o.d"
  "libgrist_sunway.a"
  "libgrist_sunway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_sunway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
