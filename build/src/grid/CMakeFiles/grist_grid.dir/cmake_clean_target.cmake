file(REMOVE_RECURSE
  "libgrist_grid.a"
)
