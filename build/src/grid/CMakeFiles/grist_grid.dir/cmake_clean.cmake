file(REMOVE_RECURSE
  "CMakeFiles/grist_grid.dir/src/hex_mesh.cpp.o"
  "CMakeFiles/grist_grid.dir/src/hex_mesh.cpp.o.d"
  "CMakeFiles/grist_grid.dir/src/reorder.cpp.o"
  "CMakeFiles/grist_grid.dir/src/reorder.cpp.o.d"
  "CMakeFiles/grist_grid.dir/src/tri_mesh.cpp.o"
  "CMakeFiles/grist_grid.dir/src/tri_mesh.cpp.o.d"
  "CMakeFiles/grist_grid.dir/src/trsk.cpp.o"
  "CMakeFiles/grist_grid.dir/src/trsk.cpp.o.d"
  "libgrist_grid.a"
  "libgrist_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
