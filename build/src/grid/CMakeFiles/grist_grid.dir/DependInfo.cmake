
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/src/hex_mesh.cpp" "src/grid/CMakeFiles/grist_grid.dir/src/hex_mesh.cpp.o" "gcc" "src/grid/CMakeFiles/grist_grid.dir/src/hex_mesh.cpp.o.d"
  "/root/repo/src/grid/src/reorder.cpp" "src/grid/CMakeFiles/grist_grid.dir/src/reorder.cpp.o" "gcc" "src/grid/CMakeFiles/grist_grid.dir/src/reorder.cpp.o.d"
  "/root/repo/src/grid/src/tri_mesh.cpp" "src/grid/CMakeFiles/grist_grid.dir/src/tri_mesh.cpp.o" "gcc" "src/grid/CMakeFiles/grist_grid.dir/src/tri_mesh.cpp.o.d"
  "/root/repo/src/grid/src/trsk.cpp" "src/grid/CMakeFiles/grist_grid.dir/src/trsk.cpp.o" "gcc" "src/grid/CMakeFiles/grist_grid.dir/src/trsk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/grist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
