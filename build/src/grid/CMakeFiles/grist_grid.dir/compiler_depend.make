# Empty compiler generated dependencies file for grist_grid.
# This may be replaced when dependencies are built.
