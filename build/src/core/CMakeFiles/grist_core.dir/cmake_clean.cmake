file(REMOVE_RECURSE
  "CMakeFiles/grist_core.dir/src/factory.cpp.o"
  "CMakeFiles/grist_core.dir/src/factory.cpp.o.d"
  "CMakeFiles/grist_core.dir/src/model.cpp.o"
  "CMakeFiles/grist_core.dir/src/model.cpp.o.d"
  "CMakeFiles/grist_core.dir/src/parallel_model.cpp.o"
  "CMakeFiles/grist_core.dir/src/parallel_model.cpp.o.d"
  "libgrist_core.a"
  "libgrist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
