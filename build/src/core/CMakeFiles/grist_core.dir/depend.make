# Empty dependencies file for grist_core.
# This may be replaced when dependencies are built.
