file(REMOVE_RECURSE
  "libgrist_core.a"
)
