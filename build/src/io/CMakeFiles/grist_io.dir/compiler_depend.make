# Empty compiler generated dependencies file for grist_io.
# This may be replaced when dependencies are built.
