file(REMOVE_RECURSE
  "CMakeFiles/grist_io.dir/src/grouped_writer.cpp.o"
  "CMakeFiles/grist_io.dir/src/grouped_writer.cpp.o.d"
  "CMakeFiles/grist_io.dir/src/restart.cpp.o"
  "CMakeFiles/grist_io.dir/src/restart.cpp.o.d"
  "CMakeFiles/grist_io.dir/src/table.cpp.o"
  "CMakeFiles/grist_io.dir/src/table.cpp.o.d"
  "libgrist_io.a"
  "libgrist_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
