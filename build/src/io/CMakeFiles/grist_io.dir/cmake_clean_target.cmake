file(REMOVE_RECURSE
  "libgrist_io.a"
)
