
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/src/grouped_writer.cpp" "src/io/CMakeFiles/grist_io.dir/src/grouped_writer.cpp.o" "gcc" "src/io/CMakeFiles/grist_io.dir/src/grouped_writer.cpp.o.d"
  "/root/repo/src/io/src/restart.cpp" "src/io/CMakeFiles/grist_io.dir/src/restart.cpp.o" "gcc" "src/io/CMakeFiles/grist_io.dir/src/restart.cpp.o.d"
  "/root/repo/src/io/src/table.cpp" "src/io/CMakeFiles/grist_io.dir/src/table.cpp.o" "gcc" "src/io/CMakeFiles/grist_io.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dycore/CMakeFiles/grist_dycore.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/grist_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grist_common.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/grist_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/grist_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/precision/CMakeFiles/grist_precision.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
