# Empty compiler generated dependencies file for grist_coupler.
# This may be replaced when dependencies are built.
