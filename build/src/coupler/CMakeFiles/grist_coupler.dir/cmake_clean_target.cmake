file(REMOVE_RECURSE
  "libgrist_coupler.a"
)
