file(REMOVE_RECURSE
  "CMakeFiles/grist_coupler.dir/src/coupler.cpp.o"
  "CMakeFiles/grist_coupler.dir/src/coupler.cpp.o.d"
  "libgrist_coupler.a"
  "libgrist_coupler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_coupler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
