file(REMOVE_RECURSE
  "libgrist_swgomp.a"
)
