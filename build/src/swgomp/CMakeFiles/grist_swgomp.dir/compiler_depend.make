# Empty compiler generated dependencies file for grist_swgomp.
# This may be replaced when dependencies are built.
