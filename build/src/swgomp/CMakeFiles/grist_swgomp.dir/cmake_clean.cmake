file(REMOVE_RECURSE
  "CMakeFiles/grist_swgomp.dir/src/pool_allocator.cpp.o"
  "CMakeFiles/grist_swgomp.dir/src/pool_allocator.cpp.o.d"
  "CMakeFiles/grist_swgomp.dir/src/sim_kernels.cpp.o"
  "CMakeFiles/grist_swgomp.dir/src/sim_kernels.cpp.o.d"
  "libgrist_swgomp.a"
  "libgrist_swgomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_swgomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
