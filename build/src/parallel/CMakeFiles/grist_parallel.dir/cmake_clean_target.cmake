file(REMOVE_RECURSE
  "libgrist_parallel.a"
)
