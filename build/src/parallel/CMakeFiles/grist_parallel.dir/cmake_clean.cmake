file(REMOVE_RECURSE
  "CMakeFiles/grist_parallel.dir/src/decompose.cpp.o"
  "CMakeFiles/grist_parallel.dir/src/decompose.cpp.o.d"
  "CMakeFiles/grist_parallel.dir/src/exchange.cpp.o"
  "CMakeFiles/grist_parallel.dir/src/exchange.cpp.o.d"
  "libgrist_parallel.a"
  "libgrist_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
