
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/src/decompose.cpp" "src/parallel/CMakeFiles/grist_parallel.dir/src/decompose.cpp.o" "gcc" "src/parallel/CMakeFiles/grist_parallel.dir/src/decompose.cpp.o.d"
  "/root/repo/src/parallel/src/exchange.cpp" "src/parallel/CMakeFiles/grist_parallel.dir/src/exchange.cpp.o" "gcc" "src/parallel/CMakeFiles/grist_parallel.dir/src/exchange.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/grist_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/grist_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
