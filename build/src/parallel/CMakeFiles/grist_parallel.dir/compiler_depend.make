# Empty compiler generated dependencies file for grist_parallel.
# This may be replaced when dependencies are built.
