
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/src/fat_tree.cpp" "src/network/CMakeFiles/grist_network.dir/src/fat_tree.cpp.o" "gcc" "src/network/CMakeFiles/grist_network.dir/src/fat_tree.cpp.o.d"
  "/root/repo/src/network/src/projector.cpp" "src/network/CMakeFiles/grist_network.dir/src/projector.cpp.o" "gcc" "src/network/CMakeFiles/grist_network.dir/src/projector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/grist_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
