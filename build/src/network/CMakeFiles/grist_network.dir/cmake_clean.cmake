file(REMOVE_RECURSE
  "CMakeFiles/grist_network.dir/src/fat_tree.cpp.o"
  "CMakeFiles/grist_network.dir/src/fat_tree.cpp.o.d"
  "CMakeFiles/grist_network.dir/src/projector.cpp.o"
  "CMakeFiles/grist_network.dir/src/projector.cpp.o.d"
  "libgrist_network.a"
  "libgrist_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
