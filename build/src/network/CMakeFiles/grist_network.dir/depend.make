# Empty dependencies file for grist_network.
# This may be replaced when dependencies are built.
