file(REMOVE_RECURSE
  "libgrist_network.a"
)
