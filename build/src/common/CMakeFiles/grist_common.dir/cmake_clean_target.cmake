file(REMOVE_RECURSE
  "libgrist_common.a"
)
