file(REMOVE_RECURSE
  "CMakeFiles/grist_common.dir/src/config.cpp.o"
  "CMakeFiles/grist_common.dir/src/config.cpp.o.d"
  "CMakeFiles/grist_common.dir/src/log.cpp.o"
  "CMakeFiles/grist_common.dir/src/log.cpp.o.d"
  "CMakeFiles/grist_common.dir/src/timer.cpp.o"
  "CMakeFiles/grist_common.dir/src/timer.cpp.o.d"
  "libgrist_common.a"
  "libgrist_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
