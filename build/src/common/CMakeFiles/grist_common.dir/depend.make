# Empty dependencies file for grist_common.
# This may be replaced when dependencies are built.
