# Empty dependencies file for grist_precision.
# This may be replaced when dependencies are built.
