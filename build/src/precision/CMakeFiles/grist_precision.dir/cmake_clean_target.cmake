file(REMOVE_RECURSE
  "libgrist_precision.a"
)
