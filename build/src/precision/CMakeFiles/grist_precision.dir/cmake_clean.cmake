file(REMOVE_RECURSE
  "CMakeFiles/grist_precision.dir/src/norms.cpp.o"
  "CMakeFiles/grist_precision.dir/src/norms.cpp.o.d"
  "libgrist_precision.a"
  "libgrist_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
