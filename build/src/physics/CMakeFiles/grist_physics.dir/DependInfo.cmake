
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physics/src/convection.cpp" "src/physics/CMakeFiles/grist_physics.dir/src/convection.cpp.o" "gcc" "src/physics/CMakeFiles/grist_physics.dir/src/convection.cpp.o.d"
  "/root/repo/src/physics/src/held_suarez.cpp" "src/physics/CMakeFiles/grist_physics.dir/src/held_suarez.cpp.o" "gcc" "src/physics/CMakeFiles/grist_physics.dir/src/held_suarez.cpp.o.d"
  "/root/repo/src/physics/src/land.cpp" "src/physics/CMakeFiles/grist_physics.dir/src/land.cpp.o" "gcc" "src/physics/CMakeFiles/grist_physics.dir/src/land.cpp.o.d"
  "/root/repo/src/physics/src/microphysics.cpp" "src/physics/CMakeFiles/grist_physics.dir/src/microphysics.cpp.o" "gcc" "src/physics/CMakeFiles/grist_physics.dir/src/microphysics.cpp.o.d"
  "/root/repo/src/physics/src/pbl.cpp" "src/physics/CMakeFiles/grist_physics.dir/src/pbl.cpp.o" "gcc" "src/physics/CMakeFiles/grist_physics.dir/src/pbl.cpp.o.d"
  "/root/repo/src/physics/src/radiation.cpp" "src/physics/CMakeFiles/grist_physics.dir/src/radiation.cpp.o" "gcc" "src/physics/CMakeFiles/grist_physics.dir/src/radiation.cpp.o.d"
  "/root/repo/src/physics/src/saturation.cpp" "src/physics/CMakeFiles/grist_physics.dir/src/saturation.cpp.o" "gcc" "src/physics/CMakeFiles/grist_physics.dir/src/saturation.cpp.o.d"
  "/root/repo/src/physics/src/suite.cpp" "src/physics/CMakeFiles/grist_physics.dir/src/suite.cpp.o" "gcc" "src/physics/CMakeFiles/grist_physics.dir/src/suite.cpp.o.d"
  "/root/repo/src/physics/src/surface.cpp" "src/physics/CMakeFiles/grist_physics.dir/src/surface.cpp.o" "gcc" "src/physics/CMakeFiles/grist_physics.dir/src/surface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/grist_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grist_common.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/grist_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/grist_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
