file(REMOVE_RECURSE
  "libgrist_physics.a"
)
