file(REMOVE_RECURSE
  "CMakeFiles/grist_physics.dir/src/convection.cpp.o"
  "CMakeFiles/grist_physics.dir/src/convection.cpp.o.d"
  "CMakeFiles/grist_physics.dir/src/held_suarez.cpp.o"
  "CMakeFiles/grist_physics.dir/src/held_suarez.cpp.o.d"
  "CMakeFiles/grist_physics.dir/src/land.cpp.o"
  "CMakeFiles/grist_physics.dir/src/land.cpp.o.d"
  "CMakeFiles/grist_physics.dir/src/microphysics.cpp.o"
  "CMakeFiles/grist_physics.dir/src/microphysics.cpp.o.d"
  "CMakeFiles/grist_physics.dir/src/pbl.cpp.o"
  "CMakeFiles/grist_physics.dir/src/pbl.cpp.o.d"
  "CMakeFiles/grist_physics.dir/src/radiation.cpp.o"
  "CMakeFiles/grist_physics.dir/src/radiation.cpp.o.d"
  "CMakeFiles/grist_physics.dir/src/saturation.cpp.o"
  "CMakeFiles/grist_physics.dir/src/saturation.cpp.o.d"
  "CMakeFiles/grist_physics.dir/src/suite.cpp.o"
  "CMakeFiles/grist_physics.dir/src/suite.cpp.o.d"
  "CMakeFiles/grist_physics.dir/src/surface.cpp.o"
  "CMakeFiles/grist_physics.dir/src/surface.cpp.o.d"
  "libgrist_physics.a"
  "libgrist_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
