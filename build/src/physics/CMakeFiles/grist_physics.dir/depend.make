# Empty dependencies file for grist_physics.
# This may be replaced when dependencies are built.
