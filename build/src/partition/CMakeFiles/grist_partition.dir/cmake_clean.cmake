file(REMOVE_RECURSE
  "CMakeFiles/grist_partition.dir/src/partitioner.cpp.o"
  "CMakeFiles/grist_partition.dir/src/partitioner.cpp.o.d"
  "libgrist_partition.a"
  "libgrist_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
