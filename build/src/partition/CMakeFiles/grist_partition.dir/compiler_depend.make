# Empty compiler generated dependencies file for grist_partition.
# This may be replaced when dependencies are built.
