file(REMOVE_RECURSE
  "libgrist_partition.a"
)
