file(REMOVE_RECURSE
  "libgrist_dycore.a"
)
