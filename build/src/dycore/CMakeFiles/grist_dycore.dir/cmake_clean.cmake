file(REMOVE_RECURSE
  "CMakeFiles/grist_dycore.dir/src/diagnostics.cpp.o"
  "CMakeFiles/grist_dycore.dir/src/diagnostics.cpp.o.d"
  "CMakeFiles/grist_dycore.dir/src/dycore.cpp.o"
  "CMakeFiles/grist_dycore.dir/src/dycore.cpp.o.d"
  "CMakeFiles/grist_dycore.dir/src/init.cpp.o"
  "CMakeFiles/grist_dycore.dir/src/init.cpp.o.d"
  "CMakeFiles/grist_dycore.dir/src/state.cpp.o"
  "CMakeFiles/grist_dycore.dir/src/state.cpp.o.d"
  "CMakeFiles/grist_dycore.dir/src/tracer.cpp.o"
  "CMakeFiles/grist_dycore.dir/src/tracer.cpp.o.d"
  "CMakeFiles/grist_dycore.dir/src/vertical_remap.cpp.o"
  "CMakeFiles/grist_dycore.dir/src/vertical_remap.cpp.o.d"
  "libgrist_dycore.a"
  "libgrist_dycore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_dycore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
