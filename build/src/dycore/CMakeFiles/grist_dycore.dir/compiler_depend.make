# Empty compiler generated dependencies file for grist_dycore.
# This may be replaced when dependencies are built.
