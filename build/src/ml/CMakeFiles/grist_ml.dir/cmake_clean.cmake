file(REMOVE_RECURSE
  "CMakeFiles/grist_ml.dir/src/adam.cpp.o"
  "CMakeFiles/grist_ml.dir/src/adam.cpp.o.d"
  "CMakeFiles/grist_ml.dir/src/ensemble.cpp.o"
  "CMakeFiles/grist_ml.dir/src/ensemble.cpp.o.d"
  "CMakeFiles/grist_ml.dir/src/layers.cpp.o"
  "CMakeFiles/grist_ml.dir/src/layers.cpp.o.d"
  "CMakeFiles/grist_ml.dir/src/matrix.cpp.o"
  "CMakeFiles/grist_ml.dir/src/matrix.cpp.o.d"
  "CMakeFiles/grist_ml.dir/src/ml_suite.cpp.o"
  "CMakeFiles/grist_ml.dir/src/ml_suite.cpp.o.d"
  "CMakeFiles/grist_ml.dir/src/q1q2_net.cpp.o"
  "CMakeFiles/grist_ml.dir/src/q1q2_net.cpp.o.d"
  "CMakeFiles/grist_ml.dir/src/rad_mlp.cpp.o"
  "CMakeFiles/grist_ml.dir/src/rad_mlp.cpp.o.d"
  "CMakeFiles/grist_ml.dir/src/traindata.cpp.o"
  "CMakeFiles/grist_ml.dir/src/traindata.cpp.o.d"
  "libgrist_ml.a"
  "libgrist_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
