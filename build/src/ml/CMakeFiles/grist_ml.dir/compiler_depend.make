# Empty compiler generated dependencies file for grist_ml.
# This may be replaced when dependencies are built.
