file(REMOVE_RECURSE
  "libgrist_ml.a"
)
