
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/src/adam.cpp" "src/ml/CMakeFiles/grist_ml.dir/src/adam.cpp.o" "gcc" "src/ml/CMakeFiles/grist_ml.dir/src/adam.cpp.o.d"
  "/root/repo/src/ml/src/ensemble.cpp" "src/ml/CMakeFiles/grist_ml.dir/src/ensemble.cpp.o" "gcc" "src/ml/CMakeFiles/grist_ml.dir/src/ensemble.cpp.o.d"
  "/root/repo/src/ml/src/layers.cpp" "src/ml/CMakeFiles/grist_ml.dir/src/layers.cpp.o" "gcc" "src/ml/CMakeFiles/grist_ml.dir/src/layers.cpp.o.d"
  "/root/repo/src/ml/src/matrix.cpp" "src/ml/CMakeFiles/grist_ml.dir/src/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/grist_ml.dir/src/matrix.cpp.o.d"
  "/root/repo/src/ml/src/ml_suite.cpp" "src/ml/CMakeFiles/grist_ml.dir/src/ml_suite.cpp.o" "gcc" "src/ml/CMakeFiles/grist_ml.dir/src/ml_suite.cpp.o.d"
  "/root/repo/src/ml/src/q1q2_net.cpp" "src/ml/CMakeFiles/grist_ml.dir/src/q1q2_net.cpp.o" "gcc" "src/ml/CMakeFiles/grist_ml.dir/src/q1q2_net.cpp.o.d"
  "/root/repo/src/ml/src/rad_mlp.cpp" "src/ml/CMakeFiles/grist_ml.dir/src/rad_mlp.cpp.o" "gcc" "src/ml/CMakeFiles/grist_ml.dir/src/rad_mlp.cpp.o.d"
  "/root/repo/src/ml/src/traindata.cpp" "src/ml/CMakeFiles/grist_ml.dir/src/traindata.cpp.o" "gcc" "src/ml/CMakeFiles/grist_ml.dir/src/traindata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/grist_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/dycore/CMakeFiles/grist_dycore.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/grist_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grist_common.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/grist_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/grist_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/precision/CMakeFiles/grist_precision.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
