# Empty compiler generated dependencies file for grist_run.
# This may be replaced when dependencies are built.
