file(REMOVE_RECURSE
  "CMakeFiles/grist_run.dir/grist_run.cpp.o"
  "CMakeFiles/grist_run.dir/grist_run.cpp.o.d"
  "grist_run"
  "grist_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grist_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
