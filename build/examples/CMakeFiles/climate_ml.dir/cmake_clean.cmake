file(REMOVE_RECURSE
  "CMakeFiles/climate_ml.dir/climate_ml.cpp.o"
  "CMakeFiles/climate_ml.dir/climate_ml.cpp.o.d"
  "climate_ml"
  "climate_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
