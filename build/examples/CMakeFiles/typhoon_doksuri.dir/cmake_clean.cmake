file(REMOVE_RECURSE
  "CMakeFiles/typhoon_doksuri.dir/typhoon_doksuri.cpp.o"
  "CMakeFiles/typhoon_doksuri.dir/typhoon_doksuri.cpp.o.d"
  "typhoon_doksuri"
  "typhoon_doksuri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typhoon_doksuri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
