file(REMOVE_RECURSE
  "CMakeFiles/sunway_offload.dir/sunway_offload.cpp.o"
  "CMakeFiles/sunway_offload.dir/sunway_offload.cpp.o.d"
  "sunway_offload"
  "sunway_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunway_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
