# Empty compiler generated dependencies file for sunway_offload.
# This may be replaced when dependencies are built.
