# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_precision[1]_include.cmake")
include("/root/repo/build/tests/test_dycore[1]_include.cmake")
include("/root/repo/build/tests/test_physics[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_coupler[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sunway[1]_include.cmake")
include("/root/repo/build/tests/test_swgomp[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
