file(REMOVE_RECURSE
  "CMakeFiles/test_grid.dir/grid/test_hex_mesh.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_hex_mesh.cpp.o.d"
  "CMakeFiles/test_grid.dir/grid/test_reorder.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_reorder.cpp.o.d"
  "CMakeFiles/test_grid.dir/grid/test_tri_mesh.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_tri_mesh.cpp.o.d"
  "CMakeFiles/test_grid.dir/grid/test_trsk.cpp.o"
  "CMakeFiles/test_grid.dir/grid/test_trsk.cpp.o.d"
  "test_grid"
  "test_grid.pdb"
  "test_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
