file(REMOVE_RECURSE
  "CMakeFiles/test_swgomp.dir/swgomp/test_swgomp.cpp.o"
  "CMakeFiles/test_swgomp.dir/swgomp/test_swgomp.cpp.o.d"
  "test_swgomp"
  "test_swgomp.pdb"
  "test_swgomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swgomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
