# Empty dependencies file for test_swgomp.
# This may be replaced when dependencies are built.
