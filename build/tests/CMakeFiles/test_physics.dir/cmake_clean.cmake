file(REMOVE_RECURSE
  "CMakeFiles/test_physics.dir/physics/test_convection_suite.cpp.o"
  "CMakeFiles/test_physics.dir/physics/test_convection_suite.cpp.o.d"
  "CMakeFiles/test_physics.dir/physics/test_held_suarez.cpp.o"
  "CMakeFiles/test_physics.dir/physics/test_held_suarez.cpp.o.d"
  "CMakeFiles/test_physics.dir/physics/test_microphysics.cpp.o"
  "CMakeFiles/test_physics.dir/physics/test_microphysics.cpp.o.d"
  "CMakeFiles/test_physics.dir/physics/test_pbl_surface_land.cpp.o"
  "CMakeFiles/test_physics.dir/physics/test_pbl_surface_land.cpp.o.d"
  "CMakeFiles/test_physics.dir/physics/test_radiation.cpp.o"
  "CMakeFiles/test_physics.dir/physics/test_radiation.cpp.o.d"
  "CMakeFiles/test_physics.dir/physics/test_saturation.cpp.o"
  "CMakeFiles/test_physics.dir/physics/test_saturation.cpp.o.d"
  "test_physics"
  "test_physics.pdb"
  "test_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
