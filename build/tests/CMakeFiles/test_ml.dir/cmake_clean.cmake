file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml/test_ensemble.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_ensemble.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_matrix_layers.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_matrix_layers.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_ml_suite.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_ml_suite.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_networks.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_networks.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_traindata.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_traindata.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
  "test_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
