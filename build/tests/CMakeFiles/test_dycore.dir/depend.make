# Empty dependencies file for test_dycore.
# This may be replaced when dependencies are built.
