file(REMOVE_RECURSE
  "CMakeFiles/test_dycore.dir/dycore/test_bubble.cpp.o"
  "CMakeFiles/test_dycore.dir/dycore/test_bubble.cpp.o.d"
  "CMakeFiles/test_dycore.dir/dycore/test_conservation.cpp.o"
  "CMakeFiles/test_dycore.dir/dycore/test_conservation.cpp.o.d"
  "CMakeFiles/test_dycore.dir/dycore/test_mixed_precision.cpp.o"
  "CMakeFiles/test_dycore.dir/dycore/test_mixed_precision.cpp.o.d"
  "CMakeFiles/test_dycore.dir/dycore/test_operators.cpp.o"
  "CMakeFiles/test_dycore.dir/dycore/test_operators.cpp.o.d"
  "CMakeFiles/test_dycore.dir/dycore/test_rest_state.cpp.o"
  "CMakeFiles/test_dycore.dir/dycore/test_rest_state.cpp.o.d"
  "CMakeFiles/test_dycore.dir/dycore/test_topography.cpp.o"
  "CMakeFiles/test_dycore.dir/dycore/test_topography.cpp.o.d"
  "CMakeFiles/test_dycore.dir/dycore/test_tracer.cpp.o"
  "CMakeFiles/test_dycore.dir/dycore/test_tracer.cpp.o.d"
  "CMakeFiles/test_dycore.dir/dycore/test_vertical_remap.cpp.o"
  "CMakeFiles/test_dycore.dir/dycore/test_vertical_remap.cpp.o.d"
  "test_dycore"
  "test_dycore.pdb"
  "test_dycore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dycore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
