file(REMOVE_RECURSE
  "CMakeFiles/test_sunway.dir/sunway/test_cpe_cg.cpp.o"
  "CMakeFiles/test_sunway.dir/sunway/test_cpe_cg.cpp.o.d"
  "CMakeFiles/test_sunway.dir/sunway/test_ldcache.cpp.o"
  "CMakeFiles/test_sunway.dir/sunway/test_ldcache.cpp.o.d"
  "test_sunway"
  "test_sunway.pdb"
  "test_sunway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sunway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
