file(REMOVE_RECURSE
  "CMakeFiles/bench_host_kernels.dir/bench_host_kernels.cpp.o"
  "CMakeFiles/bench_host_kernels.dir/bench_host_kernels.cpp.o.d"
  "bench_host_kernels"
  "bench_host_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
