# Empty dependencies file for bench_ablation_grouped_io.
# This may be replaced when dependencies are built.
