file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_typhoon.dir/bench_fig7_typhoon.cpp.o"
  "CMakeFiles/bench_fig7_typhoon.dir/bench_fig7_typhoon.cpp.o.d"
  "bench_fig7_typhoon"
  "bench_fig7_typhoon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_typhoon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
