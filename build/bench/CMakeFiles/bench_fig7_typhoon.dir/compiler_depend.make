# Empty compiler generated dependencies file for bench_fig7_typhoon.
# This may be replaced when dependencies are built.
