
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_ml_physics.cpp" "bench/CMakeFiles/bench_fig8_ml_physics.dir/bench_fig8_ml_physics.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_ml_physics.dir/bench_fig8_ml_physics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/grist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coupler/CMakeFiles/grist_coupler.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/grist_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/grist_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/grist_io.dir/DependInfo.cmake"
  "/root/repo/build/src/dycore/CMakeFiles/grist_dycore.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/grist_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/grist_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/precision/CMakeFiles/grist_precision.dir/DependInfo.cmake"
  "/root/repo/build/src/swgomp/CMakeFiles/grist_swgomp.dir/DependInfo.cmake"
  "/root/repo/build/src/sunway/CMakeFiles/grist_sunway.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/grist_network.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/grist_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/grist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
