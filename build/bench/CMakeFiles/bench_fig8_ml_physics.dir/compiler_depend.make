# Empty compiler generated dependencies file for bench_fig8_ml_physics.
# This may be replaced when dependencies are built.
