# Empty dependencies file for bench_table2_grids.
# This may be replaced when dependencies are built.
