file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_grids.dir/bench_table2_grids.cpp.o"
  "CMakeFiles/bench_table2_grids.dir/bench_table2_grids.cpp.o.d"
  "bench_table2_grids"
  "bench_table2_grids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_grids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
