# Empty dependencies file for bench_table1_training_data.
# This may be replaced when dependencies are built.
