file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_training_data.dir/bench_table1_training_data.cpp.o"
  "CMakeFiles/bench_table1_training_data.dir/bench_table1_training_data.cpp.o.d"
  "bench_table1_training_data"
  "bench_table1_training_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_training_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
