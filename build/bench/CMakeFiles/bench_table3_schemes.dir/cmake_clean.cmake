file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_schemes.dir/bench_table3_schemes.cpp.o"
  "CMakeFiles/bench_table3_schemes.dir/bench_table3_schemes.cpp.o.d"
  "bench_table3_schemes"
  "bench_table3_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
