#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag regressions.

    scripts/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.05]

Benchmarks are matched by name across the two files; for each pair the
per-iteration real_time is compared (lower is better) and any slowdown
beyond --threshold (default 5%) is flagged. When a file was recorded with
--benchmark_repetitions, the median aggregate is used and the raw repetition
entries are ignored. Benchmarks present in only one file are listed but
never fail the run (the set is expected to grow).

Exit status: 0 = no regression, 1 = at least one regression, 2 = bad input.
"""

import argparse
import json
import sys


def load_times(path):
    """name -> (real_time, time_unit), preferring median aggregates."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    times = {}
    have_aggregates = set()
    for b in doc.get("benchmarks", []):
        name = b.get("run_name", b.get("name"))
        if name is None or "real_time" not in b:
            continue
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") != "median":
                continue
            have_aggregates.add(name)
            times[name] = (float(b["real_time"]), b.get("time_unit", "ns"))
        elif name not in have_aggregates and name not in times:
            times[name] = (float(b["real_time"]), b.get("time_unit", "ns"))
    if not times:
        print(f"bench_compare: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return times


UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value, unit):
    return value * UNIT_NS.get(unit, 1.0)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.05,
                    help="max tolerated slowdown fraction (default 0.05)")
    args = ap.parse_args()

    base = load_times(args.baseline)
    cand = load_times(args.candidate)
    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    regressions = []
    width = max((len(n) for n in shared), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  delta")
    for name in shared:
        b_ns = to_ns(*base[name])
        c_ns = to_ns(*cand[name])
        delta = (c_ns - b_ns) / b_ns if b_ns > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {b_ns:>10.0f}ns  {c_ns:>10.0f}ns  "
              f"{delta:+7.1%}{flag}")
    for name in only_base:
        print(f"{name:<{width}}  (baseline only)")
    for name in only_cand:
        print(f"{name:<{width}}  (candidate only)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%} "
          f"({len(shared)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
