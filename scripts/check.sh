#!/usr/bin/env bash
# Tier-1 gate plus sanitizer passes over the failure-prone subsystems.
#
#   scripts/check.sh            # configure + build + ctest, then ASan, then TSan
#   GRIST_SKIP_ASAN=1 scripts/check.sh   # skip the ASan/UBSan stage
#   GRIST_SKIP_TSAN=1 scripts/check.sh   # skip the TSan stage
#
# The ASan/UBSan stage rebuilds with -DGRIST_SANITIZE=ON into build-asan/
# and runs the ml and common test binaries -- the two subsystems that hand
# out raw Workspace pointers (the packed GEMM and the batched inference
# path), where an out-of-bounds pack or a dangling arena pointer would
# otherwise only show up as silent corruption.
#
# The TSan stage rebuilds with -DGRIST_SANITIZE=thread into build-tsan/ and
# runs the parallel and core test binaries: the persistent rank pool and
# the post/wait packed exchange are exactly where data races would hide.
# OMP_NUM_THREADS=1 because libgomp is not TSan-instrumented (its barriers
# would be reported as false positives); the concurrency under test -- rank
# worker threads, the pool barriers, the post/wait atomics -- is pure
# C++ threads and unaffected.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${GRIST_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== skipping ASan/UBSan pass (GRIST_SKIP_ASAN=1) =="
else
  echo "== sanitizer pass: ASan+UBSan on ml + common test binaries =="
  cmake -B build-asan -S . -DGRIST_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$(nproc)" --target test_ml test_ml_alloc test_common
  for bin in test_ml test_ml_alloc test_common; do
    echo "-- $bin (sanitized)"
    ./build-asan/tests/"$bin"
  done
fi

if [[ "${GRIST_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== skipping TSan pass (GRIST_SKIP_TSAN=1) =="
  exit 0
fi

echo "== sanitizer pass: TSan on parallel + core test binaries =="
cmake -B build-tsan -S . -DGRIST_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target test_parallel test_core test_parallel_model_alloc
for bin in test_parallel test_core test_parallel_model_alloc; do
  echo "-- $bin (TSan)"
  OMP_NUM_THREADS=1 ./build-tsan/tests/"$bin"
done
echo "== all checks passed =="
