#!/usr/bin/env bash
# Tier-1 gate plus sanitizer passes over the failure-prone subsystems.
#
#   scripts/check.sh            # configure + build + ctest, then ASan, UBSan, TSan
#   GRIST_SKIP_ASAN=1 scripts/check.sh   # skip the ASan/UBSan stage
#   GRIST_SKIP_UBSAN=1 scripts/check.sh  # skip the UBSan-only stage
#   GRIST_SKIP_TSAN=1 scripts/check.sh   # skip the TSan stage
#   GRIST_SKIP_SIMD=1 scripts/check.sh   # skip the per-tier SIMD stage
#   GRIST_SIMD_BENCH=1 scripts/check.sh  # also record the Fused/Simd JSON pair
#   GRIST_SKIP_QUANT=1 scripts/check.sh  # skip the quantized-inference stage
#   GRIST_QUANT_BENCH=1 scripts/check.sh # also record BENCH_quantized_ml.json
#                                        # (and diff it against the committed
#                                        # baseline via scripts/bench_compare.py)
#   GRIST_SKIP_MULTIPROC=1 scripts/check.sh  # skip the cross-process stage
#   GRIST_EXCHANGE_BENCH=1 scripts/check.sh  # also record
#                                        # BENCH_exchange_schedules.json
#                                        # (schedule + transport ablation,
#                                        # bench_compare.py-gated)
#   GRIST_SKIP_RESTART=1 scripts/check.sh    # skip the elastic-restart stage
#   GRIST_RESTART_BENCH=1 scripts/check.sh   # also record BENCH_restart.json
#                                        # (checkpoint write/read MB/s,
#                                        # bench_compare.py-gated)
#   GRIST_SKIP_ENSEMBLE=1 scripts/check.sh   # skip the batched-ensemble stage
#   GRIST_ENSEMBLE_BENCH=1 scripts/check.sh  # also record BENCH_ensemble.json
#                                        # (batched vs solo members/s pair,
#                                        # bench_compare.py-gated)
#
# The ASan/UBSan stage rebuilds with -DGRIST_SANITIZE=ON into build-asan/
# and runs the ml and common test binaries -- the two subsystems that hand
# out raw Workspace pointers (the packed GEMM and the batched inference
# path), where an out-of-bounds pack or a dangling arena pointer would
# otherwise only show up as silent corruption.
#
# The TSan stage rebuilds with -DGRIST_SANITIZE=thread into build-tsan/ and
# runs the parallel and core test binaries: the persistent rank pool and
# the post/wait packed exchange are exactly where data races would hide.
# OMP_NUM_THREADS=1 because libgomp is not TSan-instrumented (its barriers
# would be reported as false positives); the concurrency under test -- rank
# worker threads, the pool barriers, the post/wait atomics -- is pure
# C++ threads and unaffected.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${GRIST_SKIP_SIMD:-0}" == "1" ]]; then
  echo "== skipping per-tier SIMD pass (GRIST_SKIP_SIMD=1) =="
else
  # The SIMD dispatch contract: every tier the build carries must pass the
  # backend parity suite and the dycore suites (which route through the
  # dispatch table by default) bit-identically. GRIST_SIMD_TIER clamps the
  # active tier down, so forcing "scalar" pins the portable tier and the
  # unset run exercises the best tier cpuid grants on this machine.
  echo "== SIMD dispatch pass: backend + dycore suites per tier =="
  for tier in scalar ""; do
    label="${tier:-best-available}"
    for bin in test_backend test_dycore test_fused_kernels; do
      echo "-- $bin (tier: $label)"
      if [[ -n "$tier" ]]; then
        GRIST_SIMD_TIER="$tier" ./build/tests/"$bin" >/dev/null
      else
        ./build/tests/"$bin" >/dev/null
      fi
    done
  done
  if [[ "${GRIST_SIMD_BENCH:-0}" == "1" ]]; then
    # Comparable Fused (Host instantiation) vs Simd (best tier) pair, same
    # fixture, recorded for the README table.
    echo "-- recording BENCH_simd_backend.json (Fused vs Simd pairs)"
    ./build/bench/bench_host_kernels \
      --benchmark_filter='(Fused|Simd)(EdgeFluxes|CellDiagnostics|VertexDiagnostics|ScalarTendencies|MomentumTendency|TendencyPipeline)' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only \
      --benchmark_format=json --benchmark_out=BENCH_simd_backend.json \
      >/dev/null
  fi
fi

if [[ "${GRIST_SKIP_QUANT:-0}" == "1" ]]; then
  echo "== skipping quantized-inference pass (GRIST_SKIP_QUANT=1) =="
else
  # Quantized-inference contract: the bf16/int8 kernels, the packers, and
  # the suite's rel-L2 acceptance gate must pass on every tier this build
  # carries (the scalar run pins the reference tier; the unset run exercises
  # the best quant tier cpuid grants, including native avx512-bf16). The
  # cross-tier bitwise assertions live inside the QuantTierParity tests.
  echo "== quantized-inference pass: quant suites per tier =="
  for tier in scalar ""; do
    label="${tier:-best-available}"
    echo "-- test_ml Quant*/GemmQuant* (tier: $label)"
    if [[ -n "$tier" ]]; then
      GRIST_SIMD_TIER="$tier" ./build/tests/test_ml \
        --gtest_filter='Quant*:GemmQuant*' >/dev/null
    else
      ./build/tests/test_ml --gtest_filter='Quant*:GemmQuant*' >/dev/null
    fi
  done
  if [[ "${GRIST_QUANT_BENCH:-0}" == "1" ]]; then
    # Columns/s vs precision plus the fp32/bf16/int8 GEMM shapes, recorded
    # for the README table; a committed baseline turns the run into a >5%
    # regression gate through bench_compare.py.
    echo "-- recording BENCH_quantized_ml.json (precision sweep)"
    ./build/bench/bench_host_kernels \
      --benchmark_filter='Gemm(Blocked|QuantBf16|QuantInt8)|MlSuitePrecision' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only \
      --benchmark_format=json --benchmark_out=BENCH_quantized_ml.new.json \
      >/dev/null
    if [[ -f BENCH_quantized_ml.json ]]; then
      echo "-- diffing against committed BENCH_quantized_ml.json"
      python3 scripts/bench_compare.py BENCH_quantized_ml.json \
        BENCH_quantized_ml.new.json
    fi
    mv BENCH_quantized_ml.new.json BENCH_quantized_ml.json
  fi
fi

if [[ "${GRIST_SKIP_MULTIPROC:-0}" == "1" ]]; then
  echo "== skipping cross-process pass (GRIST_SKIP_MULTIPROC=1) =="
else
  # Transport contract: the multi-rank step must hold its gates on BOTH
  # transports -- the in-process pool (test_parallel/test_core, already in
  # tier-1 and re-run under TSan below) and one-OS-process-per-rank over
  # POSIX shm (the MULTIPROCESS-labeled binaries: bitwise identity vs the
  # threaded pool, CommStats parity, irregular odd-rank round-trips, stale
  # /dev/shm reclaim, shape-mismatch errors, and the warm-step alloc guard).
  # TSan stays on the in-process binaries: it cannot see across address
  # spaces, and the in-process transport exercises the same Communicator
  # pack/post/wait paths.
  echo "== cross-process pass: MULTIPROCESS suites (shm transport) =="
  ctest --test-dir build -L MULTIPROCESS --output-on-failure
  if [[ "${GRIST_EXCHANGE_BENCH:-0}" == "1" ]]; then
    # Schedule x transport ablation (threads vs shm, +/- pinning and the
    # emulated wire), recorded for the README table; a committed baseline
    # turns the run into a >5% regression gate through bench_compare.py.
    echo "-- recording BENCH_exchange_schedules.json (schedule x transport)"
    ./build/bench/bench_ablation_exchange \
      --benchmark_filter='BM_(Exchange|Step)' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only \
      --benchmark_format=json --benchmark_out=BENCH_exchange_schedules.new.json \
      >/dev/null
    if [[ -f BENCH_exchange_schedules.json ]]; then
      echo "-- diffing against committed BENCH_exchange_schedules.json"
      python3 scripts/bench_compare.py BENCH_exchange_schedules.json \
        BENCH_exchange_schedules.new.json
    fi
    mv BENCH_exchange_schedules.new.json BENCH_exchange_schedules.json
  fi
fi

if [[ "${GRIST_SKIP_RESTART:-0}" == "1" ]]; then
  echo "== skipping elastic-restart pass (GRIST_SKIP_RESTART=1) =="
else
  # Elastic checkpoint/restart contract: a resume must be bitwise identical
  # to the unbroken run on BOTH transports (threads and one-process-per-rank
  # shm), at the writer's rank count AND at a different one (the N->M
  # repartition-on-restart gates), in both NS precisions -- plus the
  # snapshot-format edge cases (CRC flips, truncation, version mismatch,
  # legacy read-compat) and the restore-then-step alloc guard. The shm leg
  # is doubly labeled RESTART;MULTIPROCESS and carries the MULTIPROCESS
  # timeout: a lost rank worker surfaces as a ctest timeout, never a wedge.
  echo "== elastic-restart pass: RESTART suites (threads + shm, N->M resize) =="
  ctest --test-dir build -L RESTART --output-on-failure
  if [[ "${GRIST_RESTART_BENCH:-0}" == "1" ]]; then
    # Checkpoint write / read+validate / rotation throughput in MB/s,
    # recorded for the README table; a committed baseline turns the run
    # into a >5% regression gate through bench_compare.py.
    echo "-- recording BENCH_restart.json (checkpoint write/read MB/s)"
    ./build/bench/bench_restart \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only \
      --benchmark_format=json --benchmark_out=BENCH_restart.new.json \
      >/dev/null
    if [[ -f BENCH_restart.json ]]; then
      echo "-- diffing against committed BENCH_restart.json"
      python3 scripts/bench_compare.py BENCH_restart.json BENCH_restart.new.json
    fi
    mv BENCH_restart.new.json BENCH_restart.json
  fi
fi

if [[ "${GRIST_SKIP_ENSEMBLE:-0}" == "1" ]]; then
  echo "== skipping batched-ensemble pass (GRIST_SKIP_ENSEMBLE=1) =="
else
  # Batched-ensemble contract: every member stepped through EnsembleRunner
  # must be bitwise identical to the same seed-matched member run solo
  # through Model -- across M in {2,4,8}, DP and MIX, fp32 and quantized
  # (bf16/int8) ML physics, and both GEMM-batching modes -- and the warm
  # fused step must stay off the heap (the ENSEMBLE-labeled alloc guard).
  echo "== batched-ensemble pass: ENSEMBLE suites (member-vs-solo bitwise) =="
  ctest --test-dir build -L ENSEMBLE --output-on-failure
  if [[ "${GRIST_ENSEMBLE_BENCH:-0}" == "1" ]]; then
    # Batched EnsembleRunner vs M independent Models (members/s), plus the
    # cross-member vs per-member GEMM pair, recorded for the README table;
    # a committed baseline turns the run into a >5% regression gate through
    # bench_compare.py.
    echo "-- recording BENCH_ensemble.json (batched vs solo members/s)"
    ./build/bench/bench_ensemble \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only \
      --benchmark_format=json --benchmark_out=BENCH_ensemble.new.json \
      >/dev/null
    if [[ -f BENCH_ensemble.json ]]; then
      echo "-- diffing against committed BENCH_ensemble.json"
      python3 scripts/bench_compare.py BENCH_ensemble.json BENCH_ensemble.new.json
    fi
    mv BENCH_ensemble.new.json BENCH_ensemble.json
  fi
fi

if [[ "${GRIST_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== skipping ASan/UBSan pass (GRIST_SKIP_ASAN=1) =="
else
  echo "== sanitizer pass: ASan+UBSan on ml + common test binaries =="
  cmake -B build-asan -S . -DGRIST_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$(nproc)" --target test_ml test_ml_alloc test_common
  for bin in test_ml test_ml_alloc test_common; do
    echo "-- $bin (sanitized)"
    ./build-asan/tests/"$bin"
  done
fi

if [[ "${GRIST_SKIP_UBSAN:-0}" == "1" ]]; then
  echo "== skipping UBSan pass (GRIST_SKIP_UBSAN=1) =="
else
  # UBSan only (no ASan) over the simulated-accelerator subsystems: the
  # backend layer templates one kernel body over host and sim views, so an
  # out-of-range index, a misaligned virtual address computation, or a
  # signed overflow in the cycle accounting trips here before it skews a
  # Fig. 9 number. ASan is left off because the per-access cache model makes
  # shadow-memory overhead prohibitive on these binaries.
  echo "== sanitizer pass: UBSan on swgomp + sunway + backend test binaries =="
  cmake -B build-ubsan -S . -DGRIST_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j"$(nproc)" --target test_swgomp test_sunway test_backend
  for bin in test_swgomp test_sunway test_backend; do
    echo "-- $bin (UBSan)"
    ./build-ubsan/tests/"$bin"
  done
fi

if [[ "${GRIST_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== skipping TSan pass (GRIST_SKIP_TSAN=1) =="
  exit 0
fi

echo "== sanitizer pass: TSan on parallel + core test binaries =="
cmake -B build-tsan -S . -DGRIST_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target test_parallel test_core test_parallel_model_alloc
for bin in test_parallel test_core test_parallel_model_alloc; do
  echo "-- $bin (TSan)"
  OMP_NUM_THREADS=1 ./build-tsan/tests/"$bin"
done
echo "== all checks passed =="
