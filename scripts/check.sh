#!/usr/bin/env bash
# Tier-1 gate plus a sanitizer pass over the allocation-sensitive subsystems.
#
#   scripts/check.sh            # configure + build + ctest, then ASan/UBSan
#   GRIST_SKIP_ASAN=1 scripts/check.sh   # tier-1 only
#
# The sanitizer stage rebuilds with -DGRIST_SANITIZE=ON into build-asan/ and
# runs the ml and common test binaries -- the two subsystems that hand out
# raw Workspace pointers (the packed GEMM and the batched inference path),
# where an out-of-bounds pack or a dangling arena pointer would otherwise
# only show up as silent corruption.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${GRIST_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== skipping sanitizer pass (GRIST_SKIP_ASAN=1) =="
  exit 0
fi

echo "== sanitizer pass: ASan+UBSan on ml + common test binaries =="
cmake -B build-asan -S . -DGRIST_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$(nproc)" --target test_ml test_ml_alloc test_common
for bin in test_ml test_ml_alloc test_common; do
  echo "-- $bin (sanitized)"
  ./build-asan/tests/"$bin"
done
echo "== all checks passed =="
