#include "grist/sunway/ldcache.hpp"

#include <gtest/gtest.h>

namespace grist::sunway {
namespace {

TEST(LdCache, GeometryDerivedFromParameters) {
  LdCache cache(128 * 1024, 4, 256);
  EXPECT_EQ(cache.sets(), 128);
  EXPECT_EQ(cache.ways(), 4);
  EXPECT_EQ(cache.lineBytes(), 256u);
  EXPECT_THROW(LdCache(100, 4, 256), std::invalid_argument);
}

TEST(LdCache, RepeatAccessHits) {
  LdCache cache(128 * 1024, 4, 256);
  EXPECT_EQ(cache.access(0x1000, 8), 1);  // cold miss
  EXPECT_EQ(cache.access(0x1000, 8), 0);  // hit
  EXPECT_EQ(cache.access(0x1008, 8), 0);  // same line
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(LdCache, StraddlingAccessTouchesTwoLines) {
  LdCache cache(128 * 1024, 4, 256);
  EXPECT_EQ(cache.access(256 - 4, 8), 2);
}

TEST(LdCache, FourWayHoldsFourConflictingLines) {
  LdCache cache(128 * 1024, 4, 256);
  // Five addresses mapping to set 0 (stride = sets * line = 32 KB): with 4
  // ways, cycling through 5 of them thrashes -- the paper's Fig. 6(a).
  const std::uint64_t way_stride = 128ull * 256ull;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 4; ++i) cache.access(i * way_stride, 8);
  }
  EXPECT_EQ(cache.misses(), 4);  // only cold misses: 4 lines fit 4 ways
  cache.reset();
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 5; ++i) cache.access(i * way_stride, 8);
  }
  EXPECT_EQ(cache.hits(), 0);  // LRU thrashing: every access misses
}

TEST(LdCache, DistributedBasesAvoidThrashing) {
  LdCache cache(128 * 1024, 4, 256);
  // Same five streams, but staggered by one line each: distinct sets.
  const std::uint64_t way_stride = 128ull * 256ull;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 5; ++i) cache.access(i * way_stride + i * 256ull, 8);
  }
  EXPECT_EQ(cache.misses(), 5);  // cold only
  EXPECT_EQ(cache.hits(), 10);
}

TEST(LdCache, HitRatioReporting) {
  LdCache cache(128 * 1024, 4, 256);
  EXPECT_DOUBLE_EQ(cache.hitRatio(), 1.0);  // vacuous
  cache.access(0, 8);
  cache.access(0, 8);
  cache.access(0, 8);
  EXPECT_NEAR(cache.hitRatio(), 2.0 / 3.0, 1e-12);
}

} // namespace
} // namespace grist::sunway
