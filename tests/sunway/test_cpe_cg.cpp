#include <gtest/gtest.h>

#include "grist/sunway/core_group.hpp"

namespace grist::sunway {
namespace {

TEST(Cpe, CycleAccounting) {
  ArchParams params;
  Cpe cpe(params);
  cpe.flops(10, SimPrecision::kDouble);
  EXPECT_DOUBLE_EQ(cpe.cycles(), 10 * params.cycles_flop_dp);
  cpe.divs(2, SimPrecision::kSingle);
  EXPECT_DOUBLE_EQ(cpe.cycles(),
                   10 * params.cycles_flop_dp + 2 * params.cycles_div_sp);
  // SP divide is half the DP latency (the paper's section 4.6 observation).
  EXPECT_DOUBLE_EQ(params.cycles_div_sp * 2, params.cycles_div_dp);
}

TEST(Cpe, MissCostsDominateColdStreams) {
  ArchParams params;
  Cpe cpe(params);
  // Stream 1 MB: every line misses.
  for (std::uint64_t addr = 0; addr < (1 << 20); addr += 8) cpe.load(addr, 8);
  const double cycles_cold = cpe.cycles();
  cpe.reset();
  // Re-walk a cache-resident 64 KB window.
  for (int rep = 0; rep < 16; ++rep) {
    for (std::uint64_t addr = 0; addr < (1 << 16); addr += 8) cpe.load(addr, 8);
  }
  EXPECT_LT(cpe.cycles(), cycles_cold);
}

TEST(Cpe, LdmScratchBounded) {
  ArchParams params;
  Cpe cpe(params);
  const std::size_t scratch = params.ldm_bytes - params.ldcache_bytes;
  cpe.ldmAlloc(scratch);
  EXPECT_THROW(cpe.ldmAlloc(1), std::length_error);
  cpe.ldmFree(scratch);
  cpe.ldmAlloc(16);  // fine again
}

TEST(Cpe, DmaCheaperThanMissesForBulk) {
  ArchParams params;
  Cpe via_cache(params), via_dma(params);
  const std::size_t bytes = 64 * 1024;
  for (std::uint64_t addr = 0; addr < bytes; addr += 8) via_cache.load(addr, 8);
  via_dma.dma(bytes);
  EXPECT_LT(via_dma.cycles(), via_cache.cycles());
}

TEST(CoreGroup, SixtyFourCpes) {
  CoreGroup cg;
  EXPECT_EQ(cg.cpeCount(), 64);
}

TEST(CoreGroup, TeamSpawnAndBarrier) {
  CoreGroup cg;
  cg.spawnTeam();
  // Team head pays more than members.
  EXPECT_GT(cg.cpe(0).cycles(), cg.cpe(1).cycles());
  // Unbalanced work, then the barrier equalizes.
  cg.cpe(3).flops(5000, SimPrecision::kDouble);
  const double region = cg.joinTeam();
  EXPECT_DOUBLE_EQ(region, cg.cpe(3).cycles());
  for (int p = 0; p < cg.cpeCount(); ++p) {
    EXPECT_DOUBLE_EQ(cg.cpe(p).cycles(), region);
  }
}

TEST(Mpe, ComputeBoundModel) {
  ArchParams params;
  Mpe mpe(params);
  // Bulk DP vs SP flops cost the same on the MPE (section 4.6: "the Sunway
  // architecture generally does not exhibit higher calculation performance
  // in single precision... except division and elemental functions").
  mpe.flops(1000, SimPrecision::kDouble);
  const double dp = mpe.cycles();
  Mpe mpe2(params);
  mpe2.flops(1000, SimPrecision::kSingle);
  EXPECT_DOUBLE_EQ(mpe2.cycles(), dp);
}

} // namespace
} // namespace grist::sunway
