#include <gtest/gtest.h>

#include "grist/common/math.hpp"
#include "grist/ml/traindata.hpp"
#include "grist/physics/land.hpp"
#include "grist/physics/pbl.hpp"
#include "grist/physics/surface.hpp"

namespace grist::physics {
namespace {

PhysicsInput testColumns(Index n) {
  return ml::synthesizeColumns(ml::table1Scenarios()[2], n, 20);
}

TEST(SurfaceLayer, WarmSkinDrivesUpwardFluxes) {
  PhysicsInput in = testColumns(6);
  for (Index c = 0; c < in.ncolumns; ++c) in.tskin[c] = in.t(c, in.nlev - 1) + 5.0;
  PhysicsOutput out(in.ncolumns, in.nlev);
  SurfaceLayer surface;
  surface.run(in, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    EXPECT_GT(out.shflx[c], 0.0);
    EXPECT_GE(out.lhflx[c], 0.0);
  }
}

TEST(SurfaceLayer, ColdSkinDrivesDownwardSensibleFlux) {
  PhysicsInput in = testColumns(4);
  for (Index c = 0; c < in.ncolumns; ++c) in.tskin[c] = in.t(c, in.nlev - 1) - 5.0;
  PhysicsOutput out(in.ncolumns, in.nlev);
  SurfaceLayer surface;
  surface.run(in, out);
  for (Index c = 0; c < in.ncolumns; ++c) EXPECT_LT(out.shflx[c], 0.0);
}

TEST(SurfaceLayer, DragOpposesWind) {
  PhysicsInput in = testColumns(4);
  const int kb = in.nlev - 1;
  in.u(0, kb) = 10.0;
  in.v(0, kb) = -6.0;
  PhysicsOutput out(in.ncolumns, in.nlev);
  SurfaceLayer surface;
  surface.run(in, out);
  EXPECT_LT(out.dudt(0, kb), 0.0);
  EXPECT_GT(out.dvdt(0, kb), 0.0);
}

TEST(Pbl, SurfaceHeatFluxWarmsLowestLayers) {
  PhysicsInput in = testColumns(4);
  PhysicsOutput out(in.ncolumns, in.nlev);
  std::vector<double> sh(in.ncolumns, 200.0), lh(in.ncolumns, 0.0);
  Pbl pbl;
  pbl.run(in, 600.0, sh, lh, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    EXPECT_GT(out.dtdt(c, in.nlev - 1), 0.0);
  }
}

TEST(Pbl, DiffusionSmoothsSharpGradient) {
  PhysicsInput in = testColumns(2);
  const Index c = 0;
  // Insert a kink in T near the surface.
  in.t(c, in.nlev - 2) += 8.0;
  PhysicsOutput out(in.ncolumns, in.nlev);
  std::vector<double> zero(in.ncolumns, 0.0);
  Pbl pbl;
  pbl.run(in, 600.0, zero, zero, out);
  // The hot layer cools, its neighbors warm.
  EXPECT_LT(out.dtdt(c, in.nlev - 2), 0.0);
  EXPECT_GT(out.dtdt(c, in.nlev - 1) + out.dtdt(c, in.nlev - 3), 0.0);
}

TEST(Pbl, ApproximatelyConservesColumnHeat) {
  PhysicsInput in = testColumns(4);
  PhysicsOutput out(in.ncolumns, in.nlev);
  std::vector<double> zero(in.ncolumns, 0.0);
  Pbl pbl;
  pbl.run(in, 600.0, zero, zero, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    double net = 0, scale = 0;
    for (int k = 0; k < in.nlev; ++k) {
      net += out.dtdt(c, k) * in.delp(c, k);
      scale += std::abs(out.dtdt(c, k)) * in.delp(c, k);
    }
    if (scale > 0) {
      EXPECT_LT(std::abs(net) / scale, 0.35);
    }
  }
}

TEST(Land, PositiveRadiationWarmsSkin) {
  PhysicsInput in = testColumns(4);
  PhysicsOutput out(in.ncolumns, in.nlev);
  LandModel land(in.ncolumns);
  for (Index c = 0; c < in.ncolumns; ++c) {
    in.tskin[c] = 285.0;
    out.gsw[c] = 600.0;
    out.glw[c] = 350.0;
    out.shflx[c] = 50.0;
    out.lhflx[c] = 50.0;
  }
  land.run(in, 600.0, out);
  for (Index c = 0; c < in.ncolumns; ++c) EXPECT_GT(out.tskin_new[c], 285.0);
}

TEST(Land, NoForcingRelaxesTowardDeepTemperature) {
  PhysicsInput in = testColumns(2);
  PhysicsOutput out(in.ncolumns, in.nlev);
  LandConfig cfg;
  LandModel land(in.ncolumns, cfg);
  in.tskin[0] = 310.0;  // hot skin, no sun
  out.gsw[0] = 0.0;
  out.glw[0] = 300.0;
  land.run(in, 600.0, out);
  EXPECT_LT(out.tskin_new[0], 310.0);
}

} // namespace
} // namespace grist::physics
