#include "grist/physics/radiation.hpp"

#include <gtest/gtest.h>

#include "grist/ml/traindata.hpp"

namespace grist::physics {
namespace {

PhysicsInput testColumns(Index n) {
  // Scenario-conditioned synthetic columns give physically plausible states.
  const auto scenarios = ml::table1Scenarios();
  return ml::synthesizeColumns(scenarios[0], n, 20);
}

TEST(Radiation, DaytimeSurfaceShortwavePositive) {
  PhysicsInput in = testColumns(16);
  for (Index c = 0; c < in.ncolumns; ++c) in.coszr[c] = 0.8;
  PhysicsOutput out(in.ncolumns, in.nlev);
  Radiation rad;
  rad.run(in, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    EXPECT_GT(out.gsw[c], 50.0);
    EXPECT_LT(out.gsw[c], 1361.0);
  }
}

TEST(Radiation, NighttimeShortwaveZero) {
  PhysicsInput in = testColumns(8);
  for (Index c = 0; c < in.ncolumns; ++c) in.coszr[c] = 0.0;
  PhysicsOutput out(in.ncolumns, in.nlev);
  Radiation rad;
  rad.run(in, out);
  for (Index c = 0; c < in.ncolumns; ++c) EXPECT_DOUBLE_EQ(out.gsw[c], 0.0);
}

TEST(Radiation, DownwardLongwaveInPlausibleRange) {
  PhysicsInput in = testColumns(16);
  PhysicsOutput out(in.ncolumns, in.nlev);
  Radiation rad;
  rad.run(in, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    EXPECT_GT(out.glw[c], 100.0);   // clear cold sky lower bound
    EXPECT_LT(out.glw[c], 550.0);   // warm moist upper bound
  }
}

TEST(Radiation, MoreVaporMoreGreenhouse) {
  PhysicsInput dry = testColumns(8);
  PhysicsInput wet = dry;
  for (Index c = 0; c < wet.ncolumns; ++c) {
    for (int k = 0; k < wet.nlev; ++k) wet.qv(c, k) *= 2.0;
  }
  PhysicsOutput out_dry(dry.ncolumns, dry.nlev), out_wet(wet.ncolumns, wet.nlev);
  Radiation rad;
  rad.run(dry, out_dry);
  rad.run(wet, out_wet);
  for (Index c = 0; c < dry.ncolumns; ++c) EXPECT_GT(out_wet.glw[c], out_dry.glw[c]);
}

TEST(Radiation, NighttimeColumnCoolsOnAverage) {
  PhysicsInput in = testColumns(8);
  for (Index c = 0; c < in.ncolumns; ++c) in.coszr[c] = 0.0;
  PhysicsOutput out(in.ncolumns, in.nlev);
  Radiation rad;
  rad.run(in, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    // Tropospheric mean only: the stratospheric layers carry the ozone
    // stand-in relaxation, which can be weakly warming.
    double mean = 0;
    int count = 0;
    for (int k = 0; k < in.nlev; ++k) {
      if (in.pmid(c, k) < 2.0e4) continue;
      mean += out.dtdt(c, k);
      ++count;
    }
    mean /= count;
    EXPECT_LT(mean, 0.0);                 // longwave cooling
    EXPECT_GT(mean, -50.0 / 86400.0);     // but < 50 K/day
  }
}

TEST(Radiation, FlopsEstimateScalesWithBandsAndLevels) {
  Radiation rad;
  EXPECT_GT(rad.flopsPerColumn(60), rad.flopsPerColumn(30) * 1.9);
}

} // namespace
} // namespace grist::physics
