#include "grist/physics/held_suarez.hpp"

#include <gtest/gtest.h>

#include "grist/core/model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/ml/traindata.hpp"

namespace grist::physics {
namespace {

using constants::kPi;

TEST(HeldSuarez, EquilibriumProfileShape) {
  HeldSuarezSuite hs;
  // Warm equator, cold pole at the surface.
  EXPECT_GT(hs.equilibriumT(0.0, 9.5e4, 1e5), hs.equilibriumT(kPi / 3, 9.5e4, 1e5));
  // Equatorial surface Teq near 315 K.
  EXPECT_NEAR(hs.equilibriumT(0.0, 1.0e5, 1e5), 315.0, 3.0);
  // Stratospheric floor.
  EXPECT_DOUBLE_EQ(hs.equilibriumT(0.0, 5e2, 1e5), 200.0);
  EXPECT_DOUBLE_EQ(hs.equilibriumT(kPi / 2, 5e2, 1e5), 200.0);
}

TEST(HeldSuarez, RelaxationSignsAndFriction) {
  const auto sc = ml::table1Scenarios()[0];
  PhysicsInput in = ml::synthesizeColumns(sc, 8, 16);
  // Column 0: hot everywhere -> cooling; column 1: cold -> warming.
  for (int k = 0; k < in.nlev; ++k) {
    in.t(0, k) = 400.0;
    in.t(1, k) = 150.0;
  }
  in.u(0, in.nlev - 1) = 15.0;  // surface wind, friction target
  HeldSuarezSuite hs;
  PhysicsOutput out(in.ncolumns, in.nlev);
  hs.run(in, 600.0, out);
  for (int k = 0; k < in.nlev; ++k) {
    EXPECT_LT(out.dtdt(0, k), 0.0);
    EXPECT_GT(out.dtdt(1, k), 0.0);
  }
  EXPECT_LT(out.dudt(0, in.nlev - 1), 0.0);  // friction opposes wind
  // No friction aloft (sigma < sigma_b).
  EXPECT_DOUBLE_EQ(out.dudt(0, 0), 0.0);
  // No moisture/precip from HS.
  for (Index c = 0; c < in.ncolumns; ++c) EXPECT_DOUBLE_EQ(out.precip[c], 0.0);
}

TEST(HeldSuarez, SpinsUpWesterliesAndBaroclinicityFromRest) {
  // Starting from a resting isothermal-ish state, 20 simulated days of HS
  // forcing must establish (a) westerlies aloft in midlatitudes, (b) a
  // friction-sheared profile (upper winds > near-surface winds), and (c) a
  // meridional temperature gradient approaching the Teq contrast. (The full
  // eddy-driven jet/superrotation partition needs finer grids and hundreds
  // of days -- beyond a unit-test budget.)
  const grid::HexMesh mesh = grid::buildHexMesh(3);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  core::ModelConfig cfg;
  cfg.dyn.nlev = 12;
  cfg.dyn.dt = 600.0;
  cfg.dyn.w_damp_tau = 1200.0;
  cfg.dyn.diff_coef = 0.002;
  cfg.trac_interval = 4;
  cfg.phy_interval = 2;
  cfg.scheme = core::PhysicsScheme::kHeldSuarez;
  core::Model model(mesh, trsk, cfg, dycore::initRestState(mesh, cfg.dyn, 300.0, 3));
  EXPECT_STREQ(model.schemeName(), "DP-HS");
  model.run(20 * 144);  // 20 simulated days

  coupler::Coupler coupler(mesh, cfg.dyn.nlev);
  physics::PhysicsInput in(mesh.ncells, cfg.dyn.nlev);
  coupler.stateToPhysics(model.state(), model.tskin(), 0.0, in);
  const int k_upper = 2, k_low = cfg.dyn.nlev - 2;
  double u_mid_up = 0, u_mid_low = 0, n_mid = 0;
  double t_eq = 0, n_eq = 0, t_pole = 0, n_pole = 0;
  for (Index c = 0; c < mesh.ncells; ++c) {
    ASSERT_TRUE(std::isfinite(in.u(c, k_upper)));
    const double alat = std::abs(mesh.cell_ll[c].lat);
    if (alat > 0.6 && alat < 1.0) {
      u_mid_up += in.u(c, k_upper);
      u_mid_low += in.u(c, k_low);
      ++n_mid;
    }
    if (alat < 0.2) {
      t_eq += in.t(c, k_low);
      ++n_eq;
    } else if (alat > 1.2) {
      t_pole += in.t(c, k_low);
      ++n_pole;
    }
  }
  u_mid_up /= n_mid;
  u_mid_low /= n_mid;
  EXPECT_GT(u_mid_up, 2.0);             // westerlies aloft
  EXPECT_GT(u_mid_up, 1.5 * u_mid_low); // friction shears the profile
  EXPECT_GT(t_eq / n_eq - t_pole / n_pole, 15.0);  // baroclinicity built
}

} // namespace
} // namespace grist::physics
