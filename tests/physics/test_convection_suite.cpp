#include <gtest/gtest.h>

#include "grist/ml/traindata.hpp"
#include "grist/physics/convection.hpp"
#include "grist/physics/saturation.hpp"
#include "grist/physics/suite.hpp"

namespace grist::physics {
namespace {

PhysicsInput unstableColumns(Index n) {
  PhysicsInput in = ml::synthesizeColumns(ml::table1Scenarios()[0], n, 20);
  // Make the boundary layer hot and very moist (conditionally unstable).
  for (Index c = 0; c < n; ++c) {
    for (int k = in.nlev - 4; k < in.nlev; ++k) {
      in.t(c, k) += 4.0;
      in.qv(c, k) = 0.95 * saturationMixingRatio(in.t(c, k), in.pmid(c, k));
    }
  }
  return in;
}

TEST(Convection, ScaleAwareSwitch) {
  Convection conv;
  EXPECT_TRUE(conv.activeAt(100e3));   // G6-like spacing
  EXPECT_TRUE(conv.activeAt(25e3));    // G8-like spacing
  EXPECT_FALSE(conv.activeAt(3e3));    // storm-resolving
  EXPECT_FALSE(conv.activeAt(1.5e3));
}

TEST(Convection, UnstableColumnRainsAndStabilizes) {
  PhysicsInput in = unstableColumns(6);
  PhysicsOutput out(in.ncolumns, in.nlev);
  Convection conv;
  conv.run(in, 600.0, /*grid_dx=*/100e3, out);
  int raining = 0;
  for (Index c = 0; c < in.ncolumns; ++c) {
    if (out.precip[c] > 0.0) ++raining;
  }
  EXPECT_GT(raining, 0);
  // Moisture sink where precip forms.
  for (Index c = 0; c < in.ncolumns; ++c) {
    if (out.precip[c] <= 0.0) continue;
    double column_dq = 0.0;
    for (int k = 0; k < in.nlev; ++k) column_dq += out.dqvdt(c, k) * in.delp(c, k);
    EXPECT_LT(column_dq, 0.0);
  }
}

TEST(Convection, InactiveAtStormResolvingScale) {
  PhysicsInput in = unstableColumns(4);
  PhysicsOutput out(in.ncolumns, in.nlev);
  Convection conv;
  conv.run(in, 600.0, /*grid_dx=*/2e3, out);
  for (Index c = 0; c < in.ncolumns; ++c) EXPECT_DOUBLE_EQ(out.precip[c], 0.0);
}

TEST(ConventionalSuite, FullChainProducesFiniteTendencies) {
  PhysicsInput in = ml::synthesizeColumns(ml::table1Scenarios()[3], 12, 20);
  ConventionalSuite suite(in.ncolumns, in.nlev);
  PhysicsOutput out(in.ncolumns, in.nlev);
  suite.run(in, 600.0, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    EXPECT_GE(out.precip[c], 0.0);
    EXPECT_GE(out.gsw[c], 0.0);
    EXPECT_GT(out.glw[c], 0.0);
    for (int k = 0; k < in.nlev; ++k) {
      ASSERT_TRUE(std::isfinite(out.dtdt(c, k)));
      ASSERT_TRUE(std::isfinite(out.dqvdt(c, k)));
      ASSERT_TRUE(std::isfinite(out.dudt(c, k)));
      // Tendencies bounded by ~100 K/day equivalents.
      ASSERT_LT(std::abs(out.dtdt(c, k)), 100.0 / 86400.0 * 50.0);
    }
  }
}

TEST(ConventionalSuite, RadiationCacheReusedBetweenCalls) {
  PhysicsInput in = ml::synthesizeColumns(ml::table1Scenarios()[0], 8, 20);
  ConventionalSuiteConfig cfg;
  cfg.radiation_interval = 3;
  ConventionalSuite suite(in.ncolumns, in.nlev, cfg);
  PhysicsOutput out1(in.ncolumns, in.nlev), out2(in.ncolumns, in.nlev);
  suite.run(in, 600.0, out1);  // radiation fires
  suite.run(in, 600.0, out2);  // cached
  for (Index c = 0; c < in.ncolumns; ++c) {
    EXPECT_DOUBLE_EQ(out1.gsw[c], out2.gsw[c]);
    EXPECT_DOUBLE_EQ(out1.glw[c], out2.glw[c]);
  }
}

TEST(DeriveQ1Q2, SignConventions) {
  PhysicsOutput out(2, 4);
  out.dtdt(0, 1) = 2e-4;    // heating
  out.dqvdt(0, 1) = -1e-7;  // drying
  parallel::Field q1, q2;
  deriveQ1Q2(out, q1, q2);
  EXPECT_DOUBLE_EQ(q1(0, 1), 2e-4);
  EXPECT_GT(q2(0, 1), 0.0);  // drying = positive apparent moisture sink
}

} // namespace
} // namespace grist::physics
