#include "grist/physics/microphysics.hpp"

#include <gtest/gtest.h>

#include "grist/common/math.hpp"
#include "grist/ml/traindata.hpp"
#include "grist/physics/saturation.hpp"

namespace grist::physics {
namespace {

using constants::kGravity;

PhysicsInput testColumns(Index n) {
  return ml::synthesizeColumns(ml::table1Scenarios()[1], n, 20);
}

TEST(Microphysics, SupersaturationCondensesAndWarms) {
  PhysicsInput in = testColumns(4);
  const Index c = 0;
  const int k = in.nlev - 2;
  in.qv(c, k) = 1.3 * saturationMixingRatio(in.t(c, k), in.pmid(c, k));
  PhysicsOutput out(in.ncolumns, in.nlev);
  Microphysics mp;
  mp.run(in, 300.0, out);
  EXPECT_LT(out.dqvdt(c, k), 0.0);  // vapor consumed
  EXPECT_GT(out.dtdt(c, k), 0.0);   // latent heating
  EXPECT_GT(out.dqcdt(c, k) + out.dqrdt(c, k), 0.0);
}

TEST(Microphysics, RainyColumnPrecipitates) {
  PhysicsInput in = testColumns(4);
  const Index c = 1;
  for (int k = in.nlev / 2; k < in.nlev; ++k) in.qr(c, k) = 2e-3;
  PhysicsOutput out(in.ncolumns, in.nlev);
  Microphysics mp;
  mp.run(in, 300.0, out);
  EXPECT_GT(out.precip[c], 0.1);  // mm/day
}

TEST(Microphysics, TotalWaterConserved) {
  PhysicsInput in = testColumns(8);
  // Make a couple of columns actively raining.
  for (Index c = 0; c < in.ncolumns; ++c) {
    in.qc(c, in.nlev - 3) = 2e-3;
    in.qr(c, in.nlev - 2) = 1e-3;
  }
  PhysicsOutput out(in.ncolumns, in.nlev);
  Microphysics mp;
  const double dt = 300.0;
  mp.run(in, dt, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    // Column water change (kg/m^2) must equal -precip flux.
    double dwater = 0.0;
    for (int k = 0; k < in.nlev; ++k) {
      dwater += (out.dqvdt(c, k) + out.dqcdt(c, k) + out.dqrdt(c, k)) *
                in.delp(c, k) / kGravity * dt;
    }
    const double precip_mass = out.precip[c] / 86400.0 * dt;  // mm -> kg/m^2
    EXPECT_NEAR(dwater + precip_mass, 0.0, 1e-7);
  }
}

TEST(Microphysics, NoNegativeMixingRatiosProduced) {
  PhysicsInput in = testColumns(8);
  PhysicsOutput out(in.ncolumns, in.nlev);
  Microphysics mp;
  const double dt = 300.0;
  mp.run(in, dt, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    for (int k = 0; k < in.nlev; ++k) {
      EXPECT_GE(in.qv(c, k) + out.dqvdt(c, k) * dt, -1e-12);
      EXPECT_GE(in.qc(c, k) + out.dqcdt(c, k) * dt, -1e-12);
      EXPECT_GE(in.qr(c, k) + out.dqrdt(c, k) * dt, -1e-12);
    }
  }
}

TEST(Microphysics, DryColumnInert) {
  PhysicsInput in = testColumns(2);
  const Index c = 0;
  for (int k = 0; k < in.nlev; ++k) {
    in.qv(c, k) = 0.0;  // bone dry (even the cold model top cannot condense)
    in.qc(c, k) = 0.0;
    in.qr(c, k) = 0.0;
  }
  PhysicsOutput out(in.ncolumns, in.nlev);
  Microphysics mp;
  mp.run(in, 300.0, out);
  EXPECT_DOUBLE_EQ(out.precip[c], 0.0);
  for (int k = 0; k < in.nlev; ++k) {
    EXPECT_NEAR(out.dqcdt(c, k), 0.0, 1e-15);
    EXPECT_NEAR(out.dqrdt(c, k), 0.0, 1e-15);
  }
}

} // namespace
} // namespace grist::physics
