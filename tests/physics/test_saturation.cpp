#include "grist/physics/saturation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace grist::physics {
namespace {

TEST(Saturation, KnownValues) {
  // es(0 C) ~ 611 Pa; es(20 C) ~ 2339 Pa; es(-20 C) ~ 126 Pa (Tetens).
  EXPECT_NEAR(saturationVaporPressure(273.15), 611.0, 5.0);
  EXPECT_NEAR(saturationVaporPressure(293.15), 2339.0, 50.0);
  EXPECT_NEAR(saturationVaporPressure(253.15), 126.0, 15.0);
}

TEST(Saturation, MonotonicInTemperature) {
  double prev = 0.0;
  for (double t = 230.0; t <= 320.0; t += 5.0) {
    const double es = saturationVaporPressure(t);
    EXPECT_GT(es, prev);
    prev = es;
  }
}

TEST(Saturation, MixingRatioIncreasesWithTAndDecreasesWithP) {
  EXPECT_GT(saturationMixingRatio(300.0, 9e4), saturationMixingRatio(290.0, 9e4));
  EXPECT_GT(saturationMixingRatio(300.0, 8e4), saturationMixingRatio(300.0, 1e5));
  // Typical magnitude: ~22 g/kg at 300 K, 1000 hPa.
  EXPECT_NEAR(saturationMixingRatio(300.0, 1e5), 0.022, 0.004);
}

TEST(Saturation, SlopeMatchesFiniteDifference) {
  for (double t : {260.0, 280.0, 300.0}) {
    const double h = 0.5;
    const double fd =
        (saturationMixingRatio(t + h, 9e4) - saturationMixingRatio(t - h, 9e4)) /
        (2 * h);
    EXPECT_NEAR(saturationMixingRatioSlope(t, 9e4), fd, 0.05 * fd);
  }
}

TEST(Saturation, LowPressureGuard) {
  // Near/below es the formula must stay finite and positive.
  const double q = saturationMixingRatio(320.0, 500.0);
  EXPECT_GT(q, 0.0);
  EXPECT_TRUE(std::isfinite(q));
}

} // namespace
} // namespace grist::physics
