#include "grist/io/table.hpp"

#include <gtest/gtest.h>

namespace grist::io {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"Grid", "SDPD"});
  t.addRow({"G6", "12000.5"});
  t.addRow({"G12", "181"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Grid"), std::string::npos);
  EXPECT_NE(s.find("G12"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Each row on its own line: header + underline + 2 rows = 4 newlines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only_one"}), std::invalid_argument);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

} // namespace
} // namespace grist::io
