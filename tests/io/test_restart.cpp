#include "grist/io/restart.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "grist/core/model.hpp"
#include "grist/dycore/init.hpp"

namespace grist::io {
namespace {

class RestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process file: ctest runs each TEST as its own process in
    // parallel, so a shared fixed path would race between test cases.
    path_ = (std::filesystem::temp_directory_path() /
             ("grist_restart_test." + std::to_string(::getpid()) + ".bin"))
                .string();
    mesh_ = grid::buildHexMesh(2);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.dyn.nlev = 10;
    cfg_.dyn.dt = 600.0;
    cfg_.trac_interval = 4;
    cfg_.phy_interval = 4;
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  core::ModelConfig cfg_;
};

TEST_F(RestartTest, RoundTripIsBitwise) {
  dycore::State state = dycore::initBaroclinicWave(mesh_, cfg_.dyn, 3);
  std::vector<double> tskin(mesh_.ncells, 291.5);
  writeRestart(path_, state, tskin, 12345.0);

  const RestartHeader header = readRestartHeader(path_);
  EXPECT_EQ(header.ncells, mesh_.ncells);
  EXPECT_EQ(header.nedges, mesh_.nedges);
  EXPECT_EQ(header.nlev, cfg_.dyn.nlev);
  EXPECT_EQ(header.ntracers, 3);
  EXPECT_DOUBLE_EQ(header.sim_seconds, 12345.0);

  dycore::State loaded(mesh_, cfg_.dyn.nlev, 3);
  std::vector<double> tskin_loaded;
  readRestart(path_, loaded, tskin_loaded);
  for (std::size_t i = 0; i < state.delp.size(); ++i) {
    ASSERT_EQ(loaded.delp.data()[i], state.delp.data()[i]);
    ASSERT_EQ(loaded.theta.data()[i], state.theta.data()[i]);
  }
  for (std::size_t i = 0; i < state.u.size(); ++i) {
    ASSERT_EQ(loaded.u.data()[i], state.u.data()[i]);
  }
  for (std::size_t i = 0; i < state.phi.size(); ++i) {
    ASSERT_EQ(loaded.phi.data()[i], state.phi.data()[i]);
    ASSERT_EQ(loaded.w.data()[i], state.w.data()[i]);
  }
  EXPECT_EQ(tskin_loaded, tskin);
}

TEST_F(RestartTest, DynamicsOnlyContinuationIsBitwise) {
  // With physics off, 16 straight steps == 8 steps -> restart -> 8 steps,
  // bit for bit (restart written on a tracer boundary).
  core::ModelConfig cfg = cfg_;
  cfg.phy_interval = 1 << 20;
  core::Model straight(mesh_, trsk_, cfg, dycore::initBaroclinicWave(mesh_, cfg.dyn, 3));
  straight.run(16);

  core::Model first(mesh_, trsk_, cfg, dycore::initBaroclinicWave(mesh_, cfg.dyn, 3));
  first.run(8);
  writeRestart(path_, first.state(), first.tskin(), first.simSeconds());

  core::Model second(mesh_, trsk_, cfg, dycore::initBaroclinicWave(mesh_, cfg.dyn, 3));
  std::vector<double> tskin;
  const RestartHeader header = readRestart(path_, second.state(), tskin);
  second.setTskin(std::move(tskin));
  second.setSimSeconds(header.sim_seconds);
  second.resyncAfterRestart();
  second.run(8);

  EXPECT_DOUBLE_EQ(second.simSeconds(), straight.simSeconds());
  for (std::size_t i = 0; i < straight.state().u.size(); ++i) {
    ASSERT_EQ(second.state().u.data()[i], straight.state().u.data()[i]);
  }
  for (std::size_t i = 0; i < straight.state().theta.size(); ++i) {
    ASSERT_EQ(second.state().theta.data()[i], straight.state().theta.data()[i]);
  }
}

TEST_F(RestartTest, PhysicsCoupledContinuationIsNearExact) {
  // Physics holds re-warmable caches (radiation cache, soil temperatures)
  // that the restart does not carry; the continued run re-fires radiation
  // and re-spins the soil, so agreement is close but not bitwise.
  core::Model straight(mesh_, trsk_, cfg_,
                       dycore::initBaroclinicWave(mesh_, cfg_.dyn, 3));
  straight.run(16);

  core::Model first(mesh_, trsk_, cfg_, dycore::initBaroclinicWave(mesh_, cfg_.dyn, 3));
  first.run(8);
  writeRestart(path_, first.state(), first.tskin(), first.simSeconds());

  core::Model second(mesh_, trsk_, cfg_,
                     dycore::initBaroclinicWave(mesh_, cfg_.dyn, 3));
  std::vector<double> tskin;
  const RestartHeader header = readRestart(path_, second.state(), tskin);
  second.setTskin(std::move(tskin));
  second.setSimSeconds(header.sim_seconds);
  second.resyncAfterRestart();
  second.run(8);

  double umax = 0, udiff = 0;
  for (std::size_t i = 0; i < straight.state().u.size(); ++i) {
    umax = std::max(umax, std::abs(straight.state().u.data()[i]));
    udiff = std::max(udiff, std::abs(second.state().u.data()[i] -
                                     straight.state().u.data()[i]));
  }
  EXPECT_LT(udiff, 1e-2 * umax);
}

TEST_F(RestartTest, ShapeMismatchThrows) {
  dycore::State state = dycore::initBaroclinicWave(mesh_, cfg_.dyn, 3);
  std::vector<double> tskin(mesh_.ncells, 290.0);
  writeRestart(path_, state, tskin, 0.0);
  dycore::State wrong(mesh_, cfg_.dyn.nlev + 2, 3);
  std::vector<double> t2;
  EXPECT_THROW(readRestart(path_, wrong, t2), std::runtime_error);
}

TEST_F(RestartTest, MissingOrCorruptFileThrows) {
  EXPECT_THROW(readRestartHeader("/nonexistent/restart.bin"), std::runtime_error);
  // Corrupt magic.
  {
    std::ofstream out(path_, std::ios::binary);
    const char garbage[32] = "not a restart";
    out.write(garbage, sizeof garbage);
  }
  EXPECT_THROW(readRestartHeader(path_), std::runtime_error);
}

} // namespace
} // namespace grist::io
