#include "grist/io/grouped_writer.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "grist/grid/hex_mesh.hpp"

namespace grist::io {
namespace {

using parallel::Decomposition;
using parallel::Field;

class GroupedWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: ctest runs each TEST as its own process in
    // parallel, so a shared fixed path would race between test cases.
    dir_ = std::filesystem::temp_directory_path() /
           ("grist_io_test." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(GroupedWriterTest, RoundTripAcrossGroups) {
  const grid::HexMesh mesh = grid::buildHexMesh(2);
  const Index nranks = 6;
  const Decomposition d = parallel::decompose(mesh, nranks);
  const int ncomp = 3;
  std::vector<Field> fields;
  for (Index r = 0; r < nranks; ++r) {
    const auto& dom = d.domains[r];
    Field f(dom.mesh.ncells, ncomp, 0.0);
    for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
      for (int k = 0; k < ncomp; ++k) f(lc, k) = 10.0 * dom.cell_global[lc] + k;
    }
    fields.push_back(std::move(f));
  }

  GroupedWriter writer(dir_.string(), nranks, /*group_size=*/4);
  EXPECT_EQ(writer.groups(), 2);
  writer.writeCellField("ps", d, fields);

  const std::vector<double> global = writer.readCellField("ps", mesh.ncells, ncomp);
  for (Index c = 0; c < mesh.ncells; ++c) {
    for (int k = 0; k < ncomp; ++k) {
      EXPECT_DOUBLE_EQ(global[static_cast<std::size_t>(c) * ncomp + k], 10.0 * c + k);
    }
  }
}

TEST_F(GroupedWriterTest, GroupingReducesFileOps) {
  const grid::HexMesh mesh = grid::buildHexMesh(2);
  const Index nranks = 8;
  const Decomposition d = parallel::decompose(mesh, nranks);
  std::vector<Field> fields;
  for (Index r = 0; r < nranks; ++r) {
    fields.emplace_back(d.domains[r].mesh.ncells, 1, 1.0);
  }

  GroupedWriter grouped((dir_ / "g").string(), nranks, 8);
  grouped.writeCellField("x", d, fields);
  GroupedWriter per_rank((dir_ / "p").string(), nranks, 1);
  per_rank.writeCellField("x", d, fields);

  EXPECT_EQ(grouped.stats().file_opens, 1);
  EXPECT_EQ(per_rank.stats().file_opens, 8);
  EXPECT_EQ(grouped.stats().aggregation_messages, 7);
  EXPECT_EQ(per_rank.stats().aggregation_messages, 0);
}

TEST_F(GroupedWriterTest, MissingFieldThrows) {
  GroupedWriter writer(dir_.string(), 2, 2);
  EXPECT_THROW(writer.readCellField("absent", 10, 1), std::runtime_error);
}

TEST_F(GroupedWriterTest, BadConstructionThrows) {
  EXPECT_THROW(GroupedWriter(dir_.string(), 0, 1), std::invalid_argument);
  EXPECT_THROW(GroupedWriter(dir_.string(), 4, 0), std::invalid_argument);
}

} // namespace
} // namespace grist::io
