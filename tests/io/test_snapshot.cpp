// The sectioned snapshot format (io/snapshot.hpp): round trips, the
// hardened-reader edge cases (wrong magic, truncation, version mismatch,
// checksum flips -- each error naming the offending section), legacy
// GRISTSW1 read-compat, atomic writes and keep-last-K rotation.
#include "grist/io/snapshot.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "grist/dycore/init.hpp"
#include "grist/io/restart.hpp"

namespace grist::io {
namespace {

namespace fs = std::filesystem;

std::vector<char> slurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::vector<char> buf(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  return buf;
}

void dumpFile(const std::string& path, const std::vector<char>& buf) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: ctest runs each TEST as its own process in
    // parallel, so a shared fixed path would race between test cases.
    dir_ = (fs::temp_directory_path() /
            ("grist_snapshot_test." + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ + "/snap.grist";
    mesh_ = grid::buildHexMesh(2);
    cfg_.nlev = 6;
    cfg_.dt = 600.0;
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A snapshot with every section populated deterministically.
  Snapshot makeFull() {
    Snapshot snap;
    snap.state = StateSection::capture(dycore::initBaroclinicWave(mesh_, cfg_, 2));
    snap.land = std::vector<double>(static_cast<std::size_t>(mesh_.ncells), 289.25);
    ClockSection clock;
    clock.sim_seconds = 7200.0;
    clock.dyn_steps = 12;
    snap.clock = clock;
    DiagSection diag;
    diag.ncells = mesh_.ncells;
    diag.nedges = mesh_.nedges;
    diag.nlev = cfg_.nlev;
    diag.acc_steps = 3;
    diag.acc_flux.assign(
        static_cast<std::size_t>(mesh_.nedges) * cfg_.nlev, 0.5);
    diag.delp_at_tracer_start.assign(
        static_cast<std::size_t>(mesh_.ncells) * cfg_.nlev, 100.0);
    diag.precip_accum.assign(static_cast<std::size_t>(mesh_.ncells), 1.5);
    snap.diag = diag;
    MlWeightsSection ml;
    ml.q1q2_fingerprint = 0x1111;
    ml.rad_fingerprint = 0x2222;
    ml.q1q2_bf16_version = 3;
    snap.ml = ml;
    ConfigSection cs;
    cs.grid_level = 2;
    cs.writer_nranks = 4;
    cs.nlev = cfg_.nlev;
    cs.ntracers = 2;
    cs.trac_interval = 4;
    cs.phy_interval = 8;
    cs.dt = cfg_.dt;
    cs.ns_single = 1;
    cs.partition_fingerprint = 0xABCD;
    snap.config = cs;
    return snap;
  }

  std::string dir_, path_;
  grid::HexMesh mesh_;
  dycore::DycoreConfig cfg_;
};

TEST_F(SnapshotTest, FullRoundTripIsExact) {
  const Snapshot snap = makeFull();
  snap.write(path_);
  const Snapshot back = Snapshot::read(path_);

  ASSERT_TRUE(back.state && back.land && back.clock && back.diag && back.ml &&
              back.config);
  EXPECT_EQ(back.state->ncells, snap.state->ncells);
  EXPECT_EQ(back.state->nedges, snap.state->nedges);
  EXPECT_EQ(back.state->nlev, snap.state->nlev);
  EXPECT_EQ(back.state->ntracers, snap.state->ntracers);
  EXPECT_EQ(back.state->delp, snap.state->delp);
  EXPECT_EQ(back.state->u, snap.state->u);
  EXPECT_EQ(back.state->w, snap.state->w);
  EXPECT_EQ(back.state->theta, snap.state->theta);
  EXPECT_EQ(back.state->phi, snap.state->phi);
  EXPECT_EQ(back.state->tracers, snap.state->tracers);
  EXPECT_EQ(*back.land, *snap.land);
  EXPECT_DOUBLE_EQ(back.clock->sim_seconds, 7200.0);
  EXPECT_EQ(back.clock->dyn_steps, 12);
  EXPECT_EQ(back.diag->acc_steps, 3);
  EXPECT_EQ(back.diag->acc_flux, snap.diag->acc_flux);
  EXPECT_EQ(back.diag->delp_at_tracer_start, snap.diag->delp_at_tracer_start);
  EXPECT_EQ(back.diag->precip_accum, snap.diag->precip_accum);
  EXPECT_EQ(back.ml->q1q2_fingerprint, 0x1111u);
  EXPECT_EQ(back.ml->rad_fingerprint, 0x2222u);
  EXPECT_EQ(back.ml->q1q2_bf16_version, 3u);
  EXPECT_EQ(back.config->writer_nranks, 4);
  EXPECT_EQ(back.config->ns_single, 1);
  EXPECT_EQ(back.config->partition_fingerprint, 0xABCDu);

  const SnapshotInfo info = Snapshot::peek(path_);
  EXPECT_EQ(info.format_version, Snapshot::kFormatVersion);
  EXPECT_FALSE(info.legacy);
  EXPECT_EQ(info.sections.size(), 6u);
  EXPECT_TRUE(info.has(SectionId::kState));
  EXPECT_TRUE(info.has(SectionId::kConfig));
}

TEST_F(SnapshotTest, OptionalSectionsStayAbsent) {
  Snapshot snap;
  snap.state = makeFull().state;
  snap.write(path_);
  const Snapshot back = Snapshot::read(path_);
  EXPECT_TRUE(back.state.has_value());
  EXPECT_FALSE(back.land || back.clock || back.diag || back.ml || back.config);
}

TEST_F(SnapshotTest, Crc32MatchesKnownVectors) {
  // The IEEE check value: CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST_F(SnapshotTest, WrongMagicIsRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    const char garbage[64] = "definitely not a snapshot file";
    out.write(garbage, sizeof garbage);
  }
  try {
    Snapshot::read(path_);
    FAIL() << "expected bad-magic rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST_F(SnapshotTest, TruncatedHeaderPeekThrows) {
  {
    std::ofstream out(path_, std::ios::binary);
    const std::uint32_t half = 0x54535752;
    out.write(reinterpret_cast<const char*>(&half), sizeof half);
  }
  try {
    Snapshot::peek(path_);
    FAIL() << "expected truncated-header rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"), std::string::npos);
  }
}

TEST_F(SnapshotTest, VersionMismatchNamesBothVersions) {
  makeFull().write(path_);
  std::vector<char> buf = slurpFile(path_);
  const std::uint32_t bogus = 99;
  std::memcpy(buf.data() + 8, &bogus, sizeof bogus);  // version field
  dumpFile(path_, buf);
  try {
    Snapshot::read(path_);
    FAIL() << "expected version rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 99"), std::string::npos) << what;
    EXPECT_NE(what.find("version 2"), std::string::npos) << what;
  }
}

TEST_F(SnapshotTest, TruncatedPayloadNamesSection) {
  makeFull().write(path_);
  std::vector<char> buf = slurpFile(path_);
  buf.resize(buf.size() - 8);  // chop into the last section's payload (CONFIG)
  dumpFile(path_, buf);
  try {
    Snapshot::read(path_);
    FAIL() << "expected truncation rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated section CONFIG"), std::string::npos) << what;
  }
}

TEST_F(SnapshotTest, ChecksumFlipNamesSection) {
  makeFull().write(path_);
  std::vector<char> buf = slurpFile(path_);
  // Flip one byte deep inside the STATE payload (first section after the
  // 16-byte header + 6 * 32-byte table).
  buf[16 + 6 * 32 + 1000] ^= 0x40;
  dumpFile(path_, buf);
  try {
    Snapshot::read(path_);
    FAIL() << "expected CRC rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("STATE"), std::string::npos) << what;
  }
}

TEST_F(SnapshotTest, ShapeMismatchNamesDimension) {
  const Snapshot snap = makeFull();
  dycore::State wrong(mesh_, cfg_.nlev + 2, 2);
  try {
    snap.state->restoreTo(wrong);
    FAIL() << "expected shape rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nlev"), std::string::npos) << what;
    EXPECT_NE(what.find("6"), std::string::npos) << what;
    EXPECT_NE(what.find("8"), std::string::npos) << what;
  }
  dycore::State wrong_tr(mesh_, cfg_.nlev, 5);
  try {
    snap.state->restoreTo(wrong_tr);
    FAIL() << "expected tracer-count rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ntracers"), std::string::npos);
  }
}

TEST_F(SnapshotTest, LegacyRestartReadsCompatibly) {
  // A seed-era writeRestart file loads as STATE + LAND + CLOCK.
  const dycore::State state = dycore::initBaroclinicWave(mesh_, cfg_, 3);
  const std::vector<double> tskin(static_cast<std::size_t>(mesh_.ncells), 291.5);
  writeRestart(path_, state, tskin, 43200.0);

  const SnapshotInfo info = Snapshot::peek(path_);
  EXPECT_TRUE(info.legacy);
  EXPECT_EQ(info.format_version, 1u);

  const Snapshot snap = Snapshot::read(path_);
  ASSERT_TRUE(snap.state && snap.land && snap.clock);
  EXPECT_FALSE(snap.diag || snap.ml || snap.config);
  EXPECT_EQ(snap.state->ncells, mesh_.ncells);
  EXPECT_EQ(snap.state->ntracers, 3);
  EXPECT_EQ(snap.state->delp,
            std::vector<double>(state.delp.data(),
                                state.delp.data() + state.delp.size()));
  EXPECT_EQ(*snap.land, tskin);
  EXPECT_DOUBLE_EQ(snap.clock->sim_seconds, 43200.0);
  EXPECT_EQ(snap.clock->dyn_steps, -1);  // legacy: step count unknown
}

TEST_F(SnapshotTest, WriteIsAtomicAndLeavesNoTmp) {
  const Snapshot first = makeFull();
  first.write(path_);
  Snapshot second = makeFull();
  second.clock->dyn_steps = 99;
  second.write(path_);
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
  EXPECT_EQ(Snapshot::read(path_).clock->dyn_steps, 99);
  // A directory that cannot be written into fails without clobbering.
  EXPECT_THROW(first.write(dir_ + "/no/such/dir/x.grist"), std::runtime_error);
}

TEST_F(SnapshotTest, CheckpointRotationKeepsNewestTwo) {
  const Snapshot snap = makeFull();
  const std::string ckdir = dir_ + "/ck";
  for (long step : {10, 20, 30, 40}) {
    const std::string p = writeCheckpoint(ckdir, snap, step);
    EXPECT_EQ(p, checkpointPath(ckdir, step));
    EXPECT_TRUE(fs::exists(p));
  }
  EXPECT_FALSE(fs::exists(checkpointPath(ckdir, 10)));
  EXPECT_FALSE(fs::exists(checkpointPath(ckdir, 20)));
  EXPECT_TRUE(fs::exists(checkpointPath(ckdir, 30)));
  EXPECT_TRUE(fs::exists(checkpointPath(ckdir, 40)));
  EXPECT_EQ(latestCheckpoint(ckdir), checkpointPath(ckdir, 40));
  EXPECT_THROW(writeCheckpoint(ckdir, snap, 50, /*keep=*/0),
               std::invalid_argument);
}

TEST_F(SnapshotTest, ZeroPaddedNamesKeepLexicalStepOrder) {
  EXPECT_LT(checkpointPath("d", 999), checkpointPath("d", 1000));
  EXPECT_EQ(latestCheckpoint(dir_ + "/empty-or-missing"), "");
}

} // namespace
} // namespace grist::io
