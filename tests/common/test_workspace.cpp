#include <gtest/gtest.h>

#include <omp.h>

#include <cstdint>
#include <vector>

#include "grist/common/workspace.hpp"

namespace grist::common {
namespace {

TEST(Workspace, BumpAllocatesAlignedNonOverlappingRuns) {
  Workspace ws;
  ws.reserve(Workspace::bytesFor<double>(100) * 2);
  double* a = ws.get<double>(100);
  double* b = ws.get<double>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Disjoint, and the second run starts on a fresh cache line.
  EXPECT_GE(reinterpret_cast<std::uintptr_t>(b),
            reinterpret_cast<std::uintptr_t>(a + 100));
  EXPECT_EQ((reinterpret_cast<std::uintptr_t>(b) -
             reinterpret_cast<std::uintptr_t>(a)) %
                Workspace::kAlign,
            0u);
  for (int i = 0; i < 100; ++i) a[i] = i;
  for (int i = 0; i < 100; ++i) b[i] = -i;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], i);
}

TEST(Workspace, ReserveIsIdempotentAndGrowsOnlyWhenNeeded) {
  Workspace ws;
  ws.reserve(1024);
  EXPECT_EQ(ws.growths(), 1);
  ws.reserve(512);  // smaller: no-op
  EXPECT_EQ(ws.growths(), 1);
  ws.reserve(2048);
  EXPECT_EQ(ws.growths(), 2);
  // Warm arena: allocate/reset cycles never grow again.
  for (int it = 0; it < 10; ++it) {
    Workspace::Frame frame(ws);
    ws.get<double>(64);
    ws.get<std::int32_t>(128);
  }
  EXPECT_EQ(ws.growths(), 2);
  EXPECT_EQ(ws.used(), 0u);
}

TEST(Workspace, OverflowWithLiveAllocationsThrows) {
  Workspace ws;
  ws.reserve(Workspace::bytesFor<double>(8));
  Workspace::Frame frame(ws);
  ws.get<double>(8);
  EXPECT_THROW(ws.get<double>(1 << 20), std::logic_error);
  EXPECT_THROW(ws.reserve(1 << 22), std::logic_error);
}

TEST(Workspace, FirstGetOnEmptyArenaGrows) {
  Workspace ws;
  double* p = ws.get<double>(32);  // no reserve: legal while offset == 0
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(ws.growths(), 1);
  EXPECT_GE(ws.highWater(), 32 * sizeof(double));
}

TEST(Workspace, FramesNestAndRestore) {
  Workspace ws;
  ws.reserve(4096);
  Workspace::Frame outer(ws);
  double* a = ws.get<double>(16);
  a[0] = 42.0;
  const std::size_t used_outer = ws.used();
  {
    Workspace::Frame inner(ws);
    ws.get<double>(16);
    EXPECT_GT(ws.used(), used_outer);
  }
  EXPECT_EQ(ws.used(), used_outer);
  EXPECT_EQ(a[0], 42.0);  // outer allocation untouched by inner frame
}

TEST(Workspace, AcquireReturnsCacheAlignedPointers) {
  // The SIMD backend's layout contract: every acquire() starts on a 64-byte
  // boundary, including odd-sized requests that force padding in between.
  Workspace ws;
  ws.reserve(Workspace::bytesFor<double>(7) * 4 +
             Workspace::bytesFor<float>(3));
  Workspace::Frame frame(ws);
  double* a = ws.acquire<double>(7);   // 56 bytes -> padded to 64
  float* b = ws.acquire<float>(3);     // 12 bytes -> padded to 64
  double* c = ws.acquire<double>(16);  // exactly two lines, no padding
  for (const void* p : {static_cast<const void*>(a),
                        static_cast<const void*>(b),
                        static_cast<const void*>(c)}) {
    EXPECT_TRUE(isCacheAligned(p));
  }
}

TEST(Workspace, PaddingAccountingTracksAlignmentWaste) {
  Workspace ws;
  ws.reserve(4096);
  EXPECT_EQ(ws.paddingBytes(), 0u);
  {
    Workspace::Frame frame(ws);
    ws.acquire<double>(7);  // 56 -> 64: 8 bytes of padding
    EXPECT_EQ(ws.paddingBytes(), 8u);
    ws.acquire<double>(8);  // exact line: no padding
    EXPECT_EQ(ws.paddingBytes(), 8u);
    ws.acquire<float>(1);   // 4 -> 64: 60 bytes
    EXPECT_EQ(ws.paddingBytes(), 68u);
  }
  // Monotonic like growths(): frames restore offsets, not the ledger.
  Workspace::Frame frame(ws);
  ws.acquire<double>(7);
  EXPECT_EQ(ws.paddingBytes(), 76u);
}

TEST(Workspace, BackingBufferIsCacheAligned) {
  // Base alignment is what turns "offsets are multiples of 64" into "every
  // pointer handed out is 64-byte aligned".
  Workspace ws;
  double* p = ws.acquire<double>(1);
  EXPECT_TRUE(isCacheAligned(p));
  ws.reset();
}

TEST(Workspace, ThreadLocalArenasAreDistinctPerThread) {
  std::vector<Workspace*> seen(omp_get_max_threads(), nullptr);
#pragma omp parallel
  { seen[omp_get_thread_num()] = &Workspace::threadLocal(); }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_NE(seen[i], nullptr);
    for (std::size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]);
    }
  }
}

} // namespace
} // namespace grist::common
