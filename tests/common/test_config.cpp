#include "grist/common/config.hpp"

#include <gtest/gtest.h>

namespace grist {
namespace {

TEST(Config, ParsesTypedValues) {
  const Config cfg = Config::fromString(R"(
    # run control
    grid_level = 5
    dt_dyn = 4.5     ! seconds
    use_ml_physics = .true.
    case_name = doksuri
  )");
  EXPECT_EQ(cfg.getInt("grid_level", -1), 5);
  EXPECT_DOUBLE_EQ(cfg.getDouble("dt_dyn", 0.0), 4.5);
  EXPECT_TRUE(cfg.getBool("use_ml_physics", false));
  EXPECT_EQ(cfg.getString("case_name", ""), "doksuri");
}

TEST(Config, FallbacksApplyWhenMissing) {
  const Config cfg = Config::fromString("a = 1");
  EXPECT_EQ(cfg.getInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 2.5), 2.5);
  EXPECT_FALSE(cfg.getBool("missing", false));
  EXPECT_FALSE(cfg.has("missing"));
  EXPECT_TRUE(cfg.has("a"));
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::fromString("no equals sign here"), std::runtime_error);
  EXPECT_THROW(Config::fromString("= value_without_key"), std::runtime_error);
}

TEST(Config, NonBooleanValueThrows) {
  const Config cfg = Config::fromString("flag = maybe");
  EXPECT_THROW(cfg.getBool("flag", false), std::runtime_error);
}

TEST(Config, LaterAssignmentWins) {
  const Config cfg = Config::fromString("x = 1\nx = 2");
  EXPECT_EQ(cfg.getInt("x", 0), 2);
}

TEST(Config, BooleanSpellings) {
  const Config cfg = Config::fromString("a=TRUE\nb=.false.\nc=1\nd=no");
  EXPECT_TRUE(cfg.getBool("a", false));
  EXPECT_FALSE(cfg.getBool("b", true));
  EXPECT_TRUE(cfg.getBool("c", false));
  EXPECT_FALSE(cfg.getBool("d", true));
}

} // namespace
} // namespace grist
