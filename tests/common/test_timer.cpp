#include "grist/common/timer.hpp"

#include <gtest/gtest.h>

namespace grist {
namespace {

TEST(Timer, ElapsedIsMonotonic) {
  Timer t;
  const double a = t.elapsed();
  const double b = t.elapsed();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LT(t.elapsed(), 1.0);
}

TEST(TimingRegistry, AccumulatesPerSection) {
  auto& reg = TimingRegistry::instance();
  reg.clear();
  reg.add("dynamics", 1.5);
  reg.add("dynamics", 0.5);
  reg.add("physics", 2.0);
  EXPECT_DOUBLE_EQ(reg.total("dynamics"), 2.0);
  EXPECT_DOUBLE_EQ(reg.total("physics"), 2.0);
  EXPECT_DOUBLE_EQ(reg.total("absent"), 0.0);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  reg.clear();
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(TimingRegistry, ScopedTimerRecords) {
  auto& reg = TimingRegistry::instance();
  reg.clear();
  { ScopedTimer scoped("scoped_section"); }
  EXPECT_GE(reg.total("scoped_section"), 0.0);
  EXPECT_EQ(reg.snapshot().count("scoped_section"), 1u);
}

} // namespace
} // namespace grist
