#include "grist/common/math.hpp"

#include <gtest/gtest.h>

namespace grist {
namespace {

using constants::kPi;

TEST(Vec3, BasicAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3.0);
  EXPECT_DOUBLE_EQ(c.y, 6.0);
  EXPECT_DOUBLE_EQ(c.z, -3.0);
  EXPECT_NEAR((Vec3{3, 4, 0}.norm()), 5.0, 1e-15);
  EXPECT_NEAR((Vec3{0, 0, 7}.normalized().z), 1.0, 1e-15);
}

TEST(Geo, RoundTripLonLat) {
  for (double lon : {-3.0, -1.0, 0.0, 0.5, 2.9}) {
    for (double lat : {-1.5, -0.3, 0.0, 0.7, 1.5}) {
      const LonLat ll{lon, lat};
      const LonLat back = toLonLat(toCartesian(ll));
      EXPECT_NEAR(back.lon, lon, 1e-12);
      EXPECT_NEAR(back.lat, lat, 1e-12);
    }
  }
}

TEST(Geo, GreatCircleKnownDistances) {
  const Vec3 np = toCartesian({0, kPi / 2});
  const Vec3 eq = toCartesian({0, 0});
  EXPECT_NEAR(greatCircleDistance(np, eq, 1.0), kPi / 2, 1e-14);
  // Antipodal points.
  EXPECT_NEAR(greatCircleDistance(eq, toCartesian({kPi, 0}), 2.0), 2.0 * kPi, 1e-12);
  // Identical points.
  EXPECT_NEAR(greatCircleDistance(eq, eq, 1.0), 0.0, 1e-14);
}

TEST(Geo, OctantTriangleArea) {
  // The (+x, +y, +z) octant has area 4*pi/8.
  const double area = sphericalTriangleArea(Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1});
  EXPECT_NEAR(area, kPi / 2, 1e-13);
  // Reversed orientation flips the sign.
  const double rev = sphericalTriangleArea(Vec3{0, 1, 0}, Vec3{1, 0, 0}, Vec3{0, 0, 1});
  EXPECT_NEAR(rev, -kPi / 2, 1e-13);
}

TEST(Geo, CircumcenterIsEquidistant) {
  const Vec3 a = toCartesian({0.1, 0.2});
  const Vec3 b = toCartesian({0.4, 0.15});
  const Vec3 c = toCartesian({0.25, 0.45});
  const Vec3 cc = sphericalCircumcenter(a, b, c);
  const double da = greatCircleDistance(cc, a, 1.0);
  const double db = greatCircleDistance(cc, b, 1.0);
  const double dc = greatCircleDistance(cc, c, 1.0);
  EXPECT_NEAR(da, db, 1e-12);
  EXPECT_NEAR(db, dc, 1e-12);
  EXPECT_NEAR(cc.norm(), 1.0, 1e-12);
}

TEST(Clamp, Bounds) {
  EXPECT_EQ(clamp(5, 0, 3), 3);
  EXPECT_EQ(clamp(-2, 0, 3), 0);
  EXPECT_EQ(clamp(2, 0, 3), 2);
}

} // namespace
} // namespace grist
