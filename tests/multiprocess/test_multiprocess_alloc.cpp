// Zero-allocation guard for the warm CROSS-PROCESS step: once a rank worker
// has planned its packed exchange through the shm transport, step() must
// perform no heap allocation -- pack buffers live in the mapped segment and
// the futex doorbells are syscalls on mapped words, so crossing the process
// boundary adds no allocation over the in-process pool (whose guard is
// tests/core/test_parallel_model_alloc.cpp).
//
// This binary overrides the global allocation operators AND re-enters
// itself as the rank workers ("--alloc-worker"), so every worker process
// carries the counter; a worker exits nonzero if its warm step allocated.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "grist/core/mp_runner.hpp"
#include "grist/core/parallel_model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/parallel/mp_launch.hpp"
#include "grist/parallel/shm_transport.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same pattern as test_parallel_model_alloc.cpp).
// ---------------------------------------------------------------------------
namespace {
std::atomic<long> g_heap_allocs{0};
} // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  ++g_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace grist {
namespace {

long allocsDuring(const std::function<void()>& fn) {
  const long before = g_heap_allocs.load();
  fn();
  return g_heap_allocs.load() - before;
}

/// One rank of the standard gate run (G3, 8 levels, dt 450): warm up two
/// steps, then a measured step must not touch the heap. All ranks measure
/// the same step, so the fleet stays collectively in lockstep.
int allocWorker(const std::string& seg, Index nranks, Index rank) {
  grid::HexMesh mesh = grid::buildHexMesh(3);
  grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  dycore::DycoreConfig cfg;
  cfg.nlev = 8;
  cfg.dt = 450.0;
  const dycore::State initial = dycore::initBaroclinicWave(mesh, cfg);
  auto transport = std::make_shared<parallel::ShmTransport>(seg, nranks, rank);
  core::mp::RankProcessModel model(mesh, trsk, cfg, nranks, rank, initial,
                                   transport);
  model.run(2);  // warm-up: plan is live, slots recycled at least once
  const long allocs = allocsDuring([&] { model.step(); });
  if (allocs != 0) {
    std::fprintf(stderr, "rank %d: warm shm step made %ld heap allocations\n",
                 static_cast<int>(rank), allocs);
    return 1;
  }
  model.run(1);  // one more collective step so no rank exits mid-protocol
  return 0;
}

TEST(MultiProcessAlloc, WarmShmStepIsAllocationFree) {
  const Index nranks = 4;
  const std::string seg = parallel::makeSegmentName() + "-alloc";
  auto pids = parallel::spawnRanks(nranks, /*pin=*/false, [&](Index r) {
    return std::vector<std::string>{"test_multiprocess_alloc", "--alloc-worker",
                                    seg, std::to_string(nranks),
                                    std::to_string(r)};
  });
  EXPECT_EQ(parallel::waitRanks(pids), 0);
  parallel::ShmTransport::unlinkSegments(seg);
}

TEST(MultiProcessAlloc, CounterSeesAllocations) {
  // Negative control: the counter must register ordinary heap traffic.
  EXPECT_GT(allocsDuring([] {
              std::vector<double> v(4096, 1.0);
              volatile double sink = v[17];
              (void)sink;
            }),
            0);
}

} // namespace
} // namespace grist

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--alloc-worker") == 0 && argc == 5) {
    return grist::allocWorker(argv[2], std::atoi(argv[3]), std::atoi(argv[4]));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
