// Cross-process gates for the shm transport (ctest label MULTIPROCESS).
//
// This binary is its own launcher AND its own rank worker: main() dispatches
// on argv before gtest runs, so tests can fork+exec /proc/self/exe into
// worker modes (the same pattern apps/grist_run uses). Modes:
//   --grist-shm-worker ...   an MpSession rank (mp_runner.hpp)
//   --irregular-worker       raw irregular pack/unpack round-trips through
//                            the shm transport at odd rank counts
//   --mismatch-worker        planLocal shape mismatch must name transport
//                            and peer rank/pid
//   --stale-maker            create a segment and exit without unlinking
//                            (simulates a killed run)
//   --exit-worker/--sleep-worker  launcher teardown fixtures
//
// The headline gate: a one-process-per-rank run over shared memory is
// BITWISE identical to the in-process threaded pool -- every rank rebuilds
// the same local domains and kernels from the same parameters, and the
// exchanged halos are exact copies whichever address space they cross.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "grist/core/mp_runner.hpp"
#include "grist/core/parallel_model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/parallel/mp_launch.hpp"
#include "grist/parallel/shm_transport.hpp"

namespace grist {
namespace {

using core::ParallelModel;
using core::mp::MpSession;
using core::mp::RunSpec;

// ---------------------------------------------------------------------------
// Irregular exchange fixture shared by the worker mode and nothing else:
// hand-built patterns with per-pattern entity counts that differ in both
// kind and length (some patterns have no edges at all), multi-component
// variables, rank counts with no divisor structure.

parallel::Decomposition irregularDecomp(Index nranks) {
  parallel::Decomposition d;
  d.nranks = nranks;
  for (Index r = 0; r < nranks; ++r) {
    for (Index k = 1; k <= 2; ++k) {
      parallel::ExchangePattern p;
      p.from = r;
      p.to = (r + k) % nranks;
      const Index nc = 1 + ((r + 2 * k) % 3);  // 1..3 send cells
      for (Index i = 0; i < nc; ++i) p.send_cells.push_back(((r + k) % 4) + 4 * i);
      for (Index i = 0; i < nc; ++i) p.recv_cells.push_back(16 + 4 * (k - 1) + i);
      const Index ne = (r + k) % 3;            // 0..2 send edges
      for (Index i = 0; i < ne; ++i) p.send_edges.push_back(((r + 2 * k) % 3) + 3 * i);
      for (Index i = 0; i < ne; ++i) p.recv_edges.push_back(12 + 3 * (k - 1) + i);
      p.nsend_cells = nc;
      p.nsend_edges = ne;
      d.patterns.push_back(std::move(p));
    }
  }
  return d;
}

constexpr Index kIrrCells = 24;
constexpr Index kIrrEdges = 20;

double irrValue(double salt, Index rank, int var, Index entity, int comp) {
  return salt + 1e6 * rank + 1e4 * var + 1e2 * entity + comp;
}

int irregularWorker(const std::string& seg, Index nranks, Index rank) {
  const parallel::Decomposition d = irregularDecomp(nranks);
  auto transport = std::make_shared<parallel::ShmTransport>(seg, nranks, rank);
  parallel::Communicator comm(d, transport, rank);

  // Same shapes on every rank (required); own storage per process.
  std::vector<double> cells0(static_cast<std::size_t>(kIrrCells) * 2);
  std::vector<double> cells1(static_cast<std::size_t>(kIrrCells) * 1);
  std::vector<double> edges0(static_cast<std::size_t>(kIrrEdges) * 3);
  parallel::ExchangeList list;
  list.addCellVar(cells0.data(), 2);
  list.addCellVar(cells1.data(), 1);
  list.addEdgeVar(edges0.data(), 3);
  comm.planLocal(list);

  const int rounds = 3;
  for (int round = 0; round < rounds; ++round) {
    const double salt = 1.0 + 7.0 * round;
    for (Index c = 0; c < kIrrCells; ++c) {
      for (int j = 0; j < 2; ++j) cells0[static_cast<std::size_t>(c) * 2 + j] = irrValue(salt, rank, 0, c, j);
      cells1[static_cast<std::size_t>(c)] = irrValue(salt, rank, 1, c, 0);
    }
    for (Index e = 0; e < kIrrEdges; ++e) {
      for (int j = 0; j < 3; ++j) edges0[static_cast<std::size_t>(e) * 3 + j] = irrValue(salt, rank, 2, e, j);
    }
    comm.post(rank);
    comm.wait(rank);
    // Halos must now hold the SENDER's fill for this round.
    for (const parallel::ExchangePattern& p : d.patterns) {
      if (p.to != rank) continue;
      for (std::size_t i = 0; i < p.send_cells.size(); ++i) {
        for (int j = 0; j < 2; ++j) {
          const double want = irrValue(salt, p.from, 0, p.send_cells[i], j);
          const double got = cells0[static_cast<std::size_t>(p.recv_cells[i]) * 2 + j];
          if (got != want) {
            std::fprintf(stderr, "rank %d round %d: cell var0 got %g want %g\n",
                         static_cast<int>(rank), round, got, want);
            return 1;
          }
        }
        const double want1 = irrValue(salt, p.from, 1, p.send_cells[i], 0);
        if (cells1[static_cast<std::size_t>(p.recv_cells[i])] != want1) return 1;
      }
      for (std::size_t i = 0; i < p.send_edges.size(); ++i) {
        for (int j = 0; j < 3; ++j) {
          const double want = irrValue(salt, p.from, 2, p.send_edges[i], j);
          if (edges0[static_cast<std::size_t>(p.recv_edges[i]) * 3 + j] != want) return 1;
        }
      }
    }
  }

  // Traffic accounting is run-wide and O(1) per post: after every rank's
  // last post (barrier), totals must be exact -- messages = patterns per
  // round, one "exchange" per round (counted once, by rank 0's post).
  transport->barrier();
  if (rank == 0) {
    std::int64_t round_bytes = 0;
    for (const auto& p : d.patterns) {
      round_bytes += (p.nsend_cells * (2 + 1) + p.nsend_edges * 3) *
                     static_cast<std::int64_t>(sizeof(double));
    }
    const parallel::CommStats st = comm.stats();
    if (st.messages != rounds * static_cast<std::int64_t>(d.patterns.size()) ||
        st.bytes != rounds * round_bytes || st.exchanges != rounds) {
      std::fprintf(stderr, "rank 0: stats mismatch msgs=%lld bytes=%lld ex=%lld\n",
                   static_cast<long long>(st.messages),
                   static_cast<long long>(st.bytes),
                   static_cast<long long>(st.exchanges));
      return 1;
    }
  }
  transport->barrier();  // keep the segment alive until rank 0 read stats
  return 0;
}

int mismatchWorker(const std::string& seg, Index rank) {
  const parallel::Decomposition d = irregularDecomp(2);
  auto transport = std::make_shared<parallel::ShmTransport>(seg, 2, rank);
  parallel::Communicator comm(d, transport, rank);
  std::vector<double> cells(static_cast<std::size_t>(kIrrCells) * 3);
  std::vector<double> edges(static_cast<std::size_t>(kIrrEdges) * 3);
  parallel::ExchangeList list;
  // Rank 1 queues ncomp 3 where rank 0 queues 2: planLocal must throw on
  // BOTH ranks with an error naming the transport and the peer rank/pid.
  list.addCellVar(cells.data(), rank == 1 ? 3 : 2);
  list.addEdgeVar(edges.data(), 3);
  try {
    comm.planLocal(list);
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    const std::string peer = "rank " + std::to_string(1 - rank) + " (pid ";
    if (msg.find("Communicator[shm]") != std::string::npos &&
        msg.find(peer) != std::string::npos &&
        msg.find("ncomp") != std::string::npos) {
      return 0;
    }
    std::fprintf(stderr, "rank %d: unexpected message: %s\n",
                 static_cast<int>(rank), msg.c_str());
    return 1;
  }
  std::fprintf(stderr, "rank %d: planLocal did not throw\n", static_cast<int>(rank));
  return 1;
}

/// Aux worker-mode dispatch (the MpSession worker mode is handled by
/// core::mp::maybeRunWorker in main()).
std::optional<int> maybeRunAuxWorker(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  const std::string mode = argv[1];
  if (mode == "--irregular-worker" && argc == 5) {
    return irregularWorker(argv[2], std::atoi(argv[3]), std::atoi(argv[4]));
  }
  if (mode == "--mismatch-worker" && argc == 4) {
    return mismatchWorker(argv[2], std::atoi(argv[3]));
  }
  if (mode == "--stale-maker" && argc == 3) {
    parallel::ShmRegion r = parallel::ShmRegion::create(argv[2], 256);
    r.markReady();
    return 0;  // exit WITHOUT unlinking: the leftover of a killed run
  }
  if (mode == "--exit-worker" && argc == 3) return std::atoi(argv[2]);
  if (mode == "--sleep-worker" && argc == 3) {
    std::this_thread::sleep_for(std::chrono::seconds(std::atoi(argv[2])));
    return 0;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// The bitwise gate: shm fleet vs threaded pool, ranks x precisions.

std::uint64_t ownedHashOf(const dycore::State& global,
                          const parallel::LocalDomain& dom, int nlev) {
  // Must mirror RankProcessModel::ownedHash exactly (owned local rows are
  // bitwise the owned global rows).
  const std::size_t lev = static_cast<std::size_t>(nlev);
  std::uint64_t h = 14695981039346656037ull;
  for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
    const Index g = dom.cell_global[lc];
    h = core::mp::fnv1a(&global.delp(g, 0), lev * sizeof(double), h);
    h = core::mp::fnv1a(&global.theta(g, 0), lev * sizeof(double), h);
    h = core::mp::fnv1a(&global.w(g, 0), (lev + 1) * sizeof(double), h);
    h = core::mp::fnv1a(&global.phi(g, 0), (lev + 1) * sizeof(double), h);
  }
  for (Index le = 0; le < dom.nedges_owned; ++le) {
    h = core::mp::fnv1a(&global.u(dom.edge_global[le], 0), lev * sizeof(double), h);
  }
  for (const auto& tr : global.tracers) {
    for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
      h = core::mp::fnv1a(&tr(dom.cell_global[lc], 0), lev * sizeof(double), h);
    }
  }
  return h;
}

class CrossProcess
    : public ::testing::TestWithParam<std::tuple<Index, precision::NsMode>> {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 8;
    cfg_.dt = 450.0;
  }
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  dycore::DycoreConfig cfg_;
};

TEST_P(CrossProcess, BitwiseIdenticalToThreadedPool) {
  const auto [nranks, ns] = GetParam();
  cfg_.ns = ns;
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);
  ParallelModel threaded(mesh_, trsk_, cfg_, nranks, initial);

  RunSpec spec;
  spec.nranks = nranks;
  spec.ns = ns;
  MpSession session(spec);

  const int nsteps = 4;
  threaded.run(nsteps);
  session.run(nsteps);
  const dycore::State a = threaded.gatherState();
  const dycore::State b = session.gather();

  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_EQ(b.delp(c, k), a.delp(c, k)) << "cell " << c;
      ASSERT_EQ(b.theta(c, k), a.theta(c, k)) << "cell " << c;
      ASSERT_EQ(b.tracers[0](c, k), a.tracers[0](c, k)) << "cell " << c;
    }
    for (int k = 0; k <= cfg_.nlev; ++k) {
      ASSERT_EQ(b.w(c, k), a.w(c, k));
      ASSERT_EQ(b.phi(c, k), a.phi(c, k));
    }
  }
  for (Index e = 0; e < mesh_.nedges; ++e) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_EQ(b.u(e, k), a.u(e, k)) << "edge " << e;
    }
  }

  // Per-rank hashes crossed the process boundary through the result
  // segment; they must equal hashes recomputed from the threaded state.
  const parallel::Decomposition decomp = parallel::decompose(mesh_, nranks, 2);
  for (Index r = 0; r < nranks; ++r) {
    EXPECT_EQ(session.rankHash(r), ownedHashOf(a, decomp.domains[r], cfg_.nlev))
        << "rank " << r;
  }

  // Same traffic whichever transport carried it: the fleet's shared
  // counters (fed by concurrent post() from real processes) must equal the
  // in-process pool's.
  const parallel::CommStats ts = threaded.commStats();
  const parallel::CommStats ms = session.commStats();
  EXPECT_EQ(ms.messages, ts.messages);
  EXPECT_EQ(ms.bytes, ts.bytes);
  EXPECT_EQ(ms.exchanges, ts.exchanges);
  // 1 construction fill + 4 exchange rounds per step, on both transports.
  EXPECT_EQ(ms.exchanges, 1 + 4 * nsteps);
}

INSTANTIATE_TEST_SUITE_P(
    RanksByPrecision, CrossProcess,
    ::testing::Combine(::testing::Values<Index>(2, 4, 7),
                       ::testing::Values(precision::NsMode::kDouble,
                                         precision::NsMode::kSingle)),
    [](const auto& info) {
      return "R" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == precision::NsMode::kSingle ? "MIX" : "DP");
    });

// ---------------------------------------------------------------------------
// Irregular pack/unpack round-trips through shm at odd rank counts.

class IrregularShm : public ::testing::TestWithParam<Index> {};

TEST_P(IrregularShm, RoundTripsAcrossProcesses) {
  const Index nranks = GetParam();
  const std::string seg = parallel::makeSegmentName();
  auto pids = parallel::spawnRanks(nranks, /*pin=*/false, [&](Index r) {
    return std::vector<std::string>{"test_multiprocess", "--irregular-worker",
                                    seg, std::to_string(nranks),
                                    std::to_string(r)};
  });
  EXPECT_EQ(parallel::waitRanks(pids), 0);
  parallel::ShmTransport::unlinkSegments(seg);
}

INSTANTIATE_TEST_SUITE_P(OddRanks, IrregularShm, ::testing::Values<Index>(3, 5, 7));

TEST(ShapeValidation, MismatchNamesTransportAndPeerPid) {
  const std::string seg = parallel::makeSegmentName();
  auto pids = parallel::spawnRanks(2, false, [&](Index r) {
    return std::vector<std::string>{"test_multiprocess", "--mismatch-worker",
                                    seg, std::to_string(r)};
  });
  // Each worker exits 0 only if planLocal threw an error naming
  // "Communicator[shm]" and the peer's rank AND pid.
  EXPECT_EQ(parallel::waitRanks(pids), 0);
  parallel::ShmTransport::unlinkSegments(seg);
}

// ---------------------------------------------------------------------------
// /dev/shm hygiene.

TEST(ShmRegionHygiene, StaleSegmentFromDeadRunIsReclaimed) {
  const std::string name = parallel::makeSegmentName() + "-stale";
  auto pids = parallel::spawnRanks(1, false, [&](Index) {
    return std::vector<std::string>{"test_multiprocess", "--stale-maker", name};
  });
  ASSERT_EQ(parallel::waitRanks(pids), 0);
  // The creator is dead and the name still exists; create() must reclaim it
  // instead of failing with EEXIST.
  parallel::ShmRegion r = parallel::ShmRegion::create(name, 256);
  EXPECT_TRUE(r.created());
  parallel::ShmRegion::unlink(name);
}

TEST(ShmRegionHygiene, SegmentOwnedByLivePidIsRejected) {
  const std::string name = parallel::makeSegmentName() + "-live";
  parallel::ShmRegion mine = parallel::ShmRegion::create(name, 128);
  // Same name, creator (this process) alive: a concurrent run, not stale.
  EXPECT_THROW(parallel::ShmRegion::create(name, 128), std::runtime_error);
  parallel::ShmRegion::unlink(name);
}

// ---------------------------------------------------------------------------
// Launcher teardown: one dead rank takes the whole run down, exit code
// propagated, no orphans left sleeping.

TEST(Launcher, ChildFailurePropagatesAndTearsDownPeers) {
  const auto t0 = std::chrono::steady_clock::now();
  auto pids = parallel::spawnRanks(3, false, [&](Index r) {
    if (r == 0) {
      return std::vector<std::string>{"test_multiprocess", "--exit-worker", "7"};
    }
    return std::vector<std::string>{"test_multiprocess", "--sleep-worker", "30"};
  });
  EXPECT_EQ(parallel::waitRanks(pids, /*kill_grace_s=*/2.0), 7);
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(took, 20.0) << "sleepers were not torn down";
}

} // namespace
} // namespace grist

int main(int argc, char** argv) {
  // Worker dispatch MUST precede gtest: rank processes re-enter this binary.
  if (auto rc = grist::core::mp::maybeRunWorker(argc, argv)) return *rc;
  if (auto rc = grist::maybeRunAuxWorker(argc, argv)) return *rc;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
