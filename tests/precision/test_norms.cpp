#include "grist/precision/norms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "grist/precision/ns.hpp"

namespace grist::precision {
namespace {

TEST(Norms, RelativeL2KnownValues) {
  const std::vector<double> gold{3.0, 4.0};
  const std::vector<double> same = gold;
  EXPECT_DOUBLE_EQ(relativeL2(same, gold), 0.0);
  const std::vector<double> off{3.0, 4.0 + 5.0};  // diff norm 5, ref norm 5
  EXPECT_DOUBLE_EQ(relativeL2(off, gold), 1.0);
}

TEST(Norms, ZeroReferenceFallsBackToAbsolute) {
  const std::vector<double> gold{0.0, 0.0};
  const std::vector<double> test{3.0, 4.0};
  EXPECT_DOUBLE_EQ(relativeL2(test, gold), 5.0);
}

TEST(Norms, SizeMismatchThrows) {
  EXPECT_THROW(relativeL2({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(relativeLinf({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Norms, RelativeLinf) {
  const std::vector<double> gold{2.0, -4.0};
  const std::vector<double> test{2.5, -4.0};
  EXPECT_DOUBLE_EQ(relativeLinf(test, gold), 0.5 / 4.0);
}

TEST(PrecisionGate, PassesWithinThreshold) {
  PrecisionGate gate(0.05);
  const std::vector<double> gold{1.0, 1.0, 1.0, 1.0};
  std::vector<double> test{1.01, 1.0, 0.99, 1.0};
  const double norm = gate.check("ps", test, gold);
  EXPECT_LT(norm, 0.05);
  EXPECT_TRUE(gate.passed());
  EXPECT_EQ(gate.records().size(), 1u);
}

TEST(PrecisionGate, FailsBeyondThreshold) {
  PrecisionGate gate(0.05);
  const std::vector<double> gold{1.0, 1.0};
  const std::vector<double> test{1.2, 1.0};
  gate.check("vor", test, gold);
  EXPECT_FALSE(gate.passed());
}

TEST(PrecisionGate, NanFails) {
  PrecisionGate gate(0.05);
  const std::vector<double> gold{1.0};
  const std::vector<double> test{std::nan("")};
  gate.check("ps", test, gold);
  EXPECT_FALSE(gate.passed());
}

TEST(Ns, ConversionAndNames) {
  EXPECT_EQ(std::string(name(NsMode::kDouble)), "DP");
  EXPECT_EQ(std::string(name(NsMode::kSingle)), "MIX");
  // float conversion rounds to the nearest representable value (lossy by
  // design); double conversion is exact.
  EXPECT_EQ(toNs<float>(1.0000001), static_cast<float>(1.0000001));
  EXPECT_NE(static_cast<double>(toNs<float>(1.0000001)), 1.0000001);
  EXPECT_DOUBLE_EQ(toNs<double>(1.0000001), 1.0000001);
}

} // namespace
} // namespace grist::precision
