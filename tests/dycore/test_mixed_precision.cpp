#include <gtest/gtest.h>

#include "grist/dycore/dycore.hpp"
#include "grist/dycore/init.hpp"
#include "grist/precision/norms.hpp"

namespace grist::dycore {
namespace {

// The paper's acceptance procedure (section 3.4.1): run the mixed-precision
// dycore against the double gold standard across the idealized hierarchy
// and require relative L2 of surface pressure and relative vorticity below
// the 5% threshold.
struct Case {
  const char* name;
  State (*init)(const grid::HexMesh&, const DycoreConfig&, int);
};

State initBaro(const grid::HexMesh& m, const DycoreConfig& c, int nt) {
  return initBaroclinicWave(m, c, nt);
}
State initTy(const grid::HexMesh& m, const DycoreConfig& c, int nt) {
  return initTyphoon(m, c, {}, nt);
}

class MixedPrecisionHierarchy : public ::testing::TestWithParam<int> {};

TEST_P(MixedPrecisionHierarchy, PsAndVorWithinFivePercent) {
  const Case cases[] = {{"baroclinic", initBaro}, {"typhoon", initTy}};
  const Case& cs = cases[GetParam()];

  const grid::HexMesh mesh = grid::buildHexMesh(3);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  DycoreConfig cfg;
  cfg.nlev = 10;
  cfg.dt = 450.0;

  DycoreConfig cfg_dp = cfg, cfg_mix = cfg;
  cfg_dp.ns = precision::NsMode::kDouble;
  cfg_mix.ns = precision::NsMode::kSingle;

  State gold = cs.init(mesh, cfg_dp, 1);
  State test = cs.init(mesh, cfg_mix, 1);
  Dycore dp(mesh, trsk, cfg_dp);
  Dycore mix(mesh, trsk, cfg_mix);
  for (int step = 0; step < 24; ++step) {  // 3 hours
    dp.step(gold);
    mix.step(test);
  }

  precision::PrecisionGate gate(0.05);
  const double ps_err = gate.check(std::string(cs.name) + ":ps",
                                   test.surfacePressure(cfg.ptop),
                                   gold.surfacePressure(cfg.ptop));
  const double vor_err = gate.check(std::string(cs.name) + ":vor",
                                    mix.relativeVorticity(test),
                                    dp.relativeVorticity(gold));
  EXPECT_TRUE(gate.passed()) << cs.name << " ps=" << ps_err << " vor=" << vor_err;
  // ps deviations should be far below the gate in short runs.
  EXPECT_LT(ps_err, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Hierarchy, MixedPrecisionHierarchy, ::testing::Values(0, 1));

TEST(MixedPrecision, DoubleModeIsBitwiseReproducible) {
  const grid::HexMesh mesh = grid::buildHexMesh(2);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  DycoreConfig cfg;
  cfg.nlev = 8;
  cfg.dt = 600.0;
  State a = initBaroclinicWave(mesh, cfg);
  State b = initBaroclinicWave(mesh, cfg);
  Dycore da(mesh, trsk, cfg);
  Dycore db(mesh, trsk, cfg);
  for (int step = 0; step < 5; ++step) {
    da.step(a);
    db.step(b);
  }
  for (std::size_t i = 0; i < a.u.size(); ++i) {
    ASSERT_EQ(a.u.data()[i], b.u.data()[i]);
  }
  for (std::size_t i = 0; i < a.delp.size(); ++i) {
    ASSERT_EQ(a.delp.data()[i], b.delp.data()[i]);
  }
}

} // namespace
} // namespace grist::dycore
