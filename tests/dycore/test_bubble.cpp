#include <gtest/gtest.h>

#include "grist/dycore/dycore.hpp"
#include "grist/dycore/init.hpp"

namespace grist::dycore {
namespace {

// Small planet (R/40) so a G3 grid (~24 km cells) resolves a 15 km bubble;
// the vertical implicit solver converts the buoyancy anomaly into a column
// adjustment and the horizontal solver into a hydrostatic warm low.
struct BubbleRun {
  grid::HexMesh mesh = grid::buildHexMesh(3, constants::kEarthRadius / 40.0);
  grid::TrskWeights trsk = buildTrskWeights(mesh);
  DycoreConfig cfg;
  Index bubble_cell = 0;

  BubbleRun() {
    cfg.nlev = 16;
    cfg.dt = 5.0;
    double best = -2;
    const Vec3 x0 = toCartesian({0.0, 0.0});
    for (Index c = 0; c < mesh.ncells; ++c) {
      const double d = mesh.cell_x[c].dot(x0);
      if (d > best) {
        best = d;
        bubble_cell = c;
      }
    }
  }

  // ps deviation at the bubble relative to the domain mean after n steps.
  double psAnomalyAfter(double dtheta, int nsteps, State* out = nullptr) {
    State state = initWarmBubble(mesh, cfg, dtheta, 15.0e3);
    Dycore dycore(mesh, trsk, cfg);
    for (int s = 0; s < nsteps; ++s) dycore.step(state);
    const auto ps = state.surfacePressure(cfg.ptop);
    double mean = 0;
    for (const double p : ps) mean += p;
    mean /= static_cast<double>(ps.size());
    if (out) *out = std::move(state);
    return ps[bubble_cell] - mean;
  }
};

TEST(WarmBubble, WarmAnomalyFormsSurfaceLow) {
  BubbleRun run;
  State state;
  const double anomaly = run.psAnomalyAfter(+3.0, 40, &state);
  // Hydrostatic adjustment of a warm column: mass diverges aloft and the
  // surface pressure under the bubble drops by O(100 Pa).
  EXPECT_LT(anomaly, -50.0);
  for (Index c = 0; c < run.mesh.ncells; ++c) {
    for (int k = 0; k <= run.cfg.nlev; ++k) {
      ASSERT_TRUE(std::isfinite(state.w(c, k)));
      ASSERT_LT(std::abs(state.w(c, k)), 50.0);
    }
  }
}

TEST(WarmBubble, ColdAnomalyFormsSurfaceHigh) {
  BubbleRun run;
  const double anomaly = run.psAnomalyAfter(-3.0, 40);
  EXPECT_GT(anomaly, 50.0);
}

TEST(WarmBubble, ResponseIsAntisymmetricInTheAnomaly) {
  BubbleRun run;
  const double warm = run.psAnomalyAfter(+2.0, 30);
  const double cold = run.psAnomalyAfter(-2.0, 30);
  // The linear response to +/- dtheta must be antisymmetric to ~10%.
  EXPECT_NEAR(warm + cold, 0.0, 0.1 * std::abs(warm));
}

TEST(WarmBubble, ColumnExpandsEarlyInTheRun) {
  // Within the first few acoustic steps, interfaces above a warm bubble
  // lift: w > 0 somewhere aloft at the bubble cell.
  BubbleRun run;
  State state = initWarmBubble(run.mesh, run.cfg, 3.0, 15.0e3);
  Dycore dycore(run.mesh, run.trsk, run.cfg);
  for (int s = 0; s < 10; ++s) dycore.step(state);
  double wmax_aloft = -1e9;
  for (int k = 1; k < run.cfg.nlev / 2; ++k) {
    wmax_aloft = std::max(wmax_aloft, state.w(run.bubble_cell, k));
  }
  EXPECT_GT(wmax_aloft, 0.05);
}

} // namespace
} // namespace grist::dycore
