#include <gtest/gtest.h>

#include "grist/dycore/dycore.hpp"
#include "grist/dycore/init.hpp"

namespace grist::dycore {
namespace {

class TopographyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 12;
    cfg_.dt = 450.0;
    cfg_.w_damp_tau = 900.0;
  }
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  DycoreConfig cfg_;
};

TEST_F(TopographyTest, MountainFieldShape) {
  const auto height = gaussianMountain(mesh_, 1.5, 0.6, 2000.0, 800e3);
  double peak = 0;
  for (const double h : height) {
    EXPECT_GE(h, 0.0);
    peak = std::max(peak, h);
  }
  // The nearest cell center can sit ~half a (900 km) cell from the summit.
  EXPECT_NEAR(peak, 2000.0, 450.0);
  // Far side of the planet is flat.
  const Vec3 antipode = toCartesian({1.5 - constants::kPi, -0.6});
  for (Index c = 0; c < mesh_.ncells; ++c) {
    if (mesh_.cell_x[c].dot(antipode) > 0.95) {
      EXPECT_LT(height[c], 1.0);
    }
  }
}

TEST_F(TopographyTest, SurfacePressureReducedOverHighGround) {
  const auto height = gaussianMountain(mesh_, 1.5, 0.6, 2000.0, 800e3);
  const State state = initRestStateOverTopography(mesh_, cfg_, height);
  const auto ps = state.surfacePressure(cfg_.ptop);
  Index summit = 0;
  for (Index c = 1; c < mesh_.ncells; ++c) {
    if (height[c] > height[summit]) summit = c;
  }
  // ~2 km of terrain removes ~20 kPa of column mass.
  EXPECT_LT(ps[summit], 85000.0);
  EXPECT_GT(ps[summit], 70000.0);
  // Flat cells keep the reference surface pressure.
  for (Index c = 0; c < mesh_.ncells; ++c) {
    if (height[c] < 1.0) {
      EXPECT_NEAR(ps[c], cfg_.p_surface, 50.0);
    }
  }
  // Surface geopotential anchors at g z_s.
  EXPECT_NEAR(state.phi(summit, cfg_.nlev), constants::kGravity * height[summit],
              1e-6);
}

TEST_F(TopographyTest, PgfErrorFlowStaysSmall) {
  // The classic resting-atmosphere-over-orography test: any flow that
  // develops is pressure-gradient discretization error (two large
  // canceling terms along terrain-following levels). For a smooth 2 km
  // mountain at ~900 km resolution a second-order scheme leaves O(2 m/s);
  // the test guards the order of magnitude and boundedness.
  const auto height = gaussianMountain(mesh_, 1.5, 0.6, 2000.0, 1500e3);
  State state = initRestStateOverTopography(mesh_, cfg_, height);
  Dycore dycore(mesh_, trsk_, cfg_);
  double umax_6h = 0;
  for (int s = 0; s < 48; ++s) {
    dycore.step(state);
    if (s == 47) {
      for (Index e = 0; e < mesh_.nedges; ++e) {
        for (int k = 0; k < cfg_.nlev; ++k) {
          ASSERT_TRUE(std::isfinite(state.u(e, k)));
          umax_6h = std::max(umax_6h, std::abs(state.u(e, k)));
        }
      }
    }
  }
  EXPECT_LT(umax_6h, 3.0);
}

TEST_F(TopographyTest, FlatTopographyMatchesRestState) {
  const std::vector<double> flat(mesh_.ncells, 0.0);
  const State a = initRestStateOverTopography(mesh_, cfg_, flat);
  const State b = initRestState(mesh_, cfg_);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      EXPECT_NEAR(a.delp(c, k), b.delp(c, k), 1e-9);
      EXPECT_NEAR(a.theta(c, k), b.theta(c, k), 1e-9);
    }
  }
}

TEST_F(TopographyTest, FlowOverMountainLiftsAir) {
  // Same unbalanced westerly twice, with and without the mountain: both
  // runs radiate adjustment waves, but only the mountain run forces
  // additional vertical motion near the summit -- the isolated mountain
  // response.
  const double lon0 = 0.0, lat0 = 0.7;
  const Vec3 summit = toCartesian({lon0, lat0});
  const auto run = [&](double peak) {
    const auto height = gaussianMountain(mesh_, lon0, lat0, peak, 900e3);
    State state = initRestStateOverTopography(mesh_, cfg_, height);
    for (Index e = 0; e < mesh_.nedges; ++e) {
      const Vec3 r = mesh_.edge_x[e];
      Vec3 east{-r.y, r.x, 0};
      const double n = east.norm();
      if (n < 1e-12) continue;
      east = east * (1.0 / n);
      for (int k = 0; k < cfg_.nlev; ++k) {
        state.u(e, k) = 10.0 * east.dot(mesh_.edge_normal[e]);
      }
    }
    Dycore dycore(mesh_, trsk_, cfg_);
    for (int s = 0; s < 16; ++s) dycore.step(state);
    double w_near = 0;
    for (Index c = 0; c < mesh_.ncells; ++c) {
      if (mesh_.cell_x[c].dot(summit) < 0.97) continue;
      for (int k = 0; k <= cfg_.nlev; ++k) {
        w_near = std::max(w_near, std::abs(state.w(c, k)));
      }
    }
    return w_near;
  };
  const double with_mountain = run(2000.0);
  const double without_mountain = run(0.0);
  EXPECT_GT(with_mountain, 2.0 * without_mountain);
  EXPECT_GT(with_mountain, 1e-3);
}

} // namespace
} // namespace grist::dycore
