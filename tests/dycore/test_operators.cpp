#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "grist/dycore/kernels.hpp"
#include "grist/grid/hex_mesh.hpp"

namespace grist::dycore {
namespace {

using grid::HexMesh;

// Normal velocities from a dual-vertex streamfunction: u(e) = dpsi/le.
// This is the discrete "curl" of psi; the FV divergence of it must vanish
// IDENTICALLY (mimetic property), because every vertex value enters each
// cell's circulation twice with opposite signs.
std::vector<double> curlOfStreamfunction(const HexMesh& m,
                                         const std::vector<double>& psi) {
  std::vector<double> u(m.nedges);
  for (Index e = 0; e < m.nedges; ++e) {
    u[e] = (psi[m.edge_vertex[e][1]] - psi[m.edge_vertex[e][0]]) / m.edge_le[e];
  }
  return u;
}

// Normal velocities from a cell potential: u(e) = dchi/de (discrete
// gradient). The circulation of a gradient around any dual vertex must
// vanish identically.
std::vector<double> gradOfPotential(const HexMesh& m, const std::vector<double>& chi) {
  std::vector<double> u(m.nedges);
  for (Index e = 0; e < m.nedges; ++e) {
    u[e] = (chi[m.edge_cell[e][1]] - chi[m.edge_cell[e][0]]) / m.edge_de[e];
  }
  return u;
}

class MimeticIdentities : public ::testing::TestWithParam<int> {
 protected:
  HexMesh mesh_ = grid::buildHexMesh(GetParam());
};

TEST_P(MimeticIdentities, DivergenceOfCurlIsExactlyZero) {
  std::vector<double> psi(mesh_.nvertices);
  for (Index v = 0; v < mesh_.nvertices; ++v) {
    psi[v] = std::sin(3.0 * mesh_.vtx_x[v].x) + mesh_.vtx_x[v].z * mesh_.vtx_x[v].y;
  }
  const std::vector<double> u = curlOfStreamfunction(mesh_, psi);
  // flux = le * u (unit thickness); FV divergence per cell.
  std::vector<double> flux(mesh_.nedges), div(mesh_.ncells);
  for (Index e = 0; e < mesh_.nedges; ++e) flux[e] = mesh_.edge_le[e] * u[e];
  kernels::divAtCell<double>(mesh_, mesh_.ncells, 1, flux.data(), div.data());
  for (Index c = 0; c < mesh_.ncells; ++c) {
    // Scale-relative machine zero.
    ASSERT_LT(std::abs(div[c]) * mesh_.cell_area[c], 1e-7)
        << "cell " << c;  // sums of O(1e6)-sized terms cancel to rounding
  }
}

TEST_P(MimeticIdentities, CirculationOfGradientIsExactlyZero) {
  std::vector<double> chi(mesh_.ncells);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    chi[c] = std::cos(2.0 * mesh_.cell_x[c].y) + mesh_.cell_x[c].z;
  }
  const std::vector<double> u = gradOfPotential(mesh_, chi);
  std::vector<double> vor(mesh_.nvertices);
  kernels::vorticityAtVertex<double>(mesh_, mesh_.nvertices, 1, u.data(), vor.data());
  for (Index v = 0; v < mesh_.nvertices; ++v) {
    ASSERT_LT(std::abs(vor[v]) * mesh_.vtx_area[v], 1e-7) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, MimeticIdentities, ::testing::Values(2, 3, 4));

// L2 error of the FV divergence against the analytic Laplacian of
// chi = sin(lat): div(grad chi) = -2 sin(lat) / R^2.
double divergenceError(int level) {
  const HexMesh m = grid::buildHexMesh(level);
  const double r = m.radius;
  std::vector<double> chi(m.ncells);
  for (Index c = 0; c < m.ncells; ++c) chi[c] = std::sin(m.cell_ll[c].lat) * r;
  // u = grad chi (de is already in meters, chi scaled by R so u is O(1)).
  std::vector<double> u = gradOfPotential(m, chi);
  std::vector<double> flux(m.nedges), div(m.ncells);
  for (Index e = 0; e < m.nedges; ++e) flux[e] = m.edge_le[e] * u[e];
  kernels::divAtCell<double>(m, m.ncells, 1, flux.data(), div.data());
  double err2 = 0, ref2 = 0, area = 0;
  for (Index c = 0; c < m.ncells; ++c) {
    const double exact = -2.0 * std::sin(m.cell_ll[c].lat) / r;
    err2 += (div[c] - exact) * (div[c] - exact) * m.cell_area[c];
    ref2 += exact * exact * m.cell_area[c];
    area += m.cell_area[c];
  }
  (void)area;
  return std::sqrt(err2 / ref2);
}

TEST(OperatorConvergence, DivGradApproachesLaplacianWithRefinement) {
  const double e3 = divergenceError(3);
  const double e4 = divergenceError(4);
  const double e5 = divergenceError(5);
  EXPECT_LT(e4, e3);
  EXPECT_LT(e5, e4);
  // At least first-order convergence on the raw bisection grid (the
  // scheme is ~2nd order on smooth, centroidal regions).
  EXPECT_GT(e3 / e5, 3.0);
  EXPECT_LT(e5, 0.1);
}

TEST(OperatorConvergence, VorticityOfSolidBodyRotation) {
  // Solid-body rotation about the pole: V = Omega x r; zeta = 2*Omega
  // everywhere. Verified through the actual vorticity kernel.
  const HexMesh m = grid::buildHexMesh(4);
  const double omega = 1e-5;
  std::vector<double> u(m.nedges);
  for (Index e = 0; e < m.nedges; ++e) {
    const Vec3 vel = Vec3{0, 0, omega}.cross(m.edge_x[e]) * m.radius;
    u[e] = vel.dot(m.edge_normal[e]);
  }
  std::vector<double> vor(m.nvertices);
  kernels::vorticityAtVertex<double>(m, m.nvertices, 1, u.data(), vor.data());
  for (Index v = 0; v < m.nvertices; ++v) {
    // zeta = 2 omega sin(lat)... for rotation about z the RELATIVE
    // vorticity on the sphere surface is 2 omega sin(lat).
    const double exact = 2.0 * omega * m.vtx_x[v].z;
    ASSERT_NEAR(vor[v], exact, 0.05 * 2.0 * omega + 1e-12) << "vertex " << v;
  }
}

} // namespace
} // namespace grist::dycore
