#include <gtest/gtest.h>

#include "grist/dycore/dycore.hpp"
#include "grist/dycore/init.hpp"

namespace grist::dycore {
namespace {

class RestState : public ::testing::TestWithParam<precision::NsMode> {};

TEST_P(RestState, StaysExactlyAtRest) {
  // A hydrostatically balanced resting atmosphere is a discrete steady
  // state: every tendency must vanish identically, in both precisions.
  const grid::HexMesh mesh = grid::buildHexMesh(2);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  DycoreConfig cfg;
  cfg.nlev = 10;
  cfg.dt = 600.0;
  cfg.ns = GetParam();
  State state = initRestState(mesh, cfg);
  const std::vector<double> ps0 = state.surfacePressure(cfg.ptop);

  Dycore dycore(mesh, trsk, cfg);
  for (int step = 0; step < 10; ++step) dycore.step(state);

  double umax = 0, wmax = 0;
  for (Index e = 0; e < mesh.nedges; ++e) {
    for (int k = 0; k < cfg.nlev; ++k) umax = std::max(umax, std::abs(state.u(e, k)));
  }
  for (Index c = 0; c < mesh.ncells; ++c) {
    for (int k = 0; k <= cfg.nlev; ++k) wmax = std::max(wmax, std::abs(state.w(c, k)));
  }
  // u is algebraically zero; w only sees the tiny rounding residual of the
  // implicit solve (single precision EOS perturbs p by ~1e-7 relative).
  EXPECT_EQ(umax, 0.0);
  EXPECT_LT(wmax, 1e-3);

  const std::vector<double> ps1 = state.surfacePressure(cfg.ptop);
  for (Index c = 0; c < mesh.ncells; ++c) EXPECT_DOUBLE_EQ(ps1[c], ps0[c]);
}

INSTANTIATE_TEST_SUITE_P(Precisions, RestState,
                         ::testing::Values(precision::NsMode::kDouble,
                                           precision::NsMode::kSingle));

TEST(RestStateInit, HydrostaticConsistency) {
  const grid::HexMesh mesh = grid::buildHexMesh(1);
  DycoreConfig cfg;
  cfg.nlev = 12;
  const State state = initRestState(mesh, cfg);
  // phi decreases downward (phi(k) > phi(k+1)), theta stable (decreasing
  // with k since k=0 is the top), surface pressure equals the config value.
  for (Index c = 0; c < mesh.ncells; ++c) {
    for (int k = 0; k < cfg.nlev; ++k) {
      EXPECT_GT(state.phi(c, k), state.phi(c, k + 1));
      if (k > 0) {
        EXPECT_GT(state.theta(c, k - 1), state.theta(c, k));
      }
    }
  }
  const auto ps = state.surfacePressure(cfg.ptop);
  for (const double p : ps) EXPECT_NEAR(p, cfg.p_surface, 1e-9);
}

TEST(DycoreConstruction, RejectsBadConfig) {
  const grid::HexMesh mesh = grid::buildHexMesh(1);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  DycoreConfig bad;
  bad.nlev = 1;
  EXPECT_THROW(Dycore(mesh, trsk, bad), std::invalid_argument);
  DycoreConfig bad_dt;
  bad_dt.dt = 0;
  EXPECT_THROW(Dycore(mesh, trsk, bad_dt), std::invalid_argument);
}

} // namespace
} // namespace grist::dycore
