#include <gtest/gtest.h>

#include "grist/dycore/diagnostics.hpp"
#include "grist/dycore/dycore.hpp"
#include "grist/dycore/init.hpp"

namespace grist::dycore {
namespace {

class BaroclinicRun : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 10;
    cfg_.dt = 450.0;
  }
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  DycoreConfig cfg_;
};

TEST_F(BaroclinicRun, DryMassConservedToRoundoff) {
  State state = initBaroclinicWave(mesh_, cfg_);
  Dycore dycore(mesh_, trsk_, cfg_);
  const double mass0 = totalDryMass(mesh_, state);
  for (int step = 0; step < 20; ++step) dycore.step(state);
  const double mass1 = totalDryMass(mesh_, state);
  EXPECT_NEAR(mass1 / mass0, 1.0, 1e-12);
}

TEST_F(BaroclinicRun, ThetaMassConservedUpToDiffusion) {
  State state = initBaroclinicWave(mesh_, cfg_);
  Dycore dycore(mesh_, trsk_, cfg_);
  const double theta0 = totalThetaMass(mesh_, state);
  for (int step = 0; step < 20; ++step) dycore.step(state);
  const double theta1 = totalThetaMass(mesh_, state);
  // Flux-form advection conserves delp*theta exactly; the del2 diffusion
  // redistributes but (being a flux) nearly conserves it too.
  EXPECT_NEAR(theta1 / theta0, 1.0, 1e-6);
}

TEST_F(BaroclinicRun, StableAndBounded) {
  State state = initBaroclinicWave(mesh_, cfg_);
  Dycore dycore(mesh_, trsk_, cfg_);
  for (int step = 0; step < 40; ++step) dycore.step(state);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_TRUE(std::isfinite(state.theta(c, k)));
      ASSERT_GT(state.delp(c, k), 0.0);
      ASSERT_GT(state.theta(c, k), 150.0);
      ASSERT_LT(state.theta(c, k), 1200.0);
    }
  }
  for (Index e = 0; e < mesh_.nedges; ++e) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_TRUE(std::isfinite(state.u(e, k)));
      ASSERT_LT(std::abs(state.u(e, k)), 300.0);
    }
  }
}

TEST_F(BaroclinicRun, JetProducesVorticityAndEnergy) {
  State state = initBaroclinicWave(mesh_, cfg_);
  Dycore dycore(mesh_, trsk_, cfg_);
  const double ke0 = totalKineticEnergy(mesh_, state);
  EXPECT_GT(ke0, 0.0);
  for (int step = 0; step < 10; ++step) dycore.step(state);
  const std::vector<double> vor = dycore.relativeVorticity(state);
  double vmax = 0;
  for (const double v : vor) vmax = std::max(vmax, std::abs(v));
  EXPECT_GT(vmax, 1e-6);  // jet shear vorticity present
  // Energy stays the same order of magnitude (no blow-up, no collapse).
  const double ke1 = totalKineticEnergy(mesh_, state);
  EXPECT_GT(ke1, 0.1 * ke0);
  EXPECT_LT(ke1, 10.0 * ke0);
}

TEST_F(BaroclinicRun, AccumulatedFluxTracksSteps) {
  State state = initBaroclinicWave(mesh_, cfg_);
  Dycore dycore(mesh_, trsk_, cfg_);
  EXPECT_EQ(dycore.accumulatedSteps(), 0);
  for (int step = 0; step < 5; ++step) dycore.step(state);
  EXPECT_EQ(dycore.accumulatedSteps(), 5);
  dycore.resetAccumulatedFlux();
  EXPECT_EQ(dycore.accumulatedSteps(), 0);
  for (std::size_t i = 0; i < dycore.accumulatedMassFlux().size(); ++i) {
    ASSERT_EQ(dycore.accumulatedMassFlux().data()[i], 0.0);
  }
}

} // namespace
} // namespace grist::dycore
