#include <gtest/gtest.h>

#include <cmath>

#include "grist/dycore/diagnostics.hpp"
#include "grist/dycore/dycore.hpp"
#include "grist/dycore/init.hpp"
#include "grist/dycore/tracer.hpp"

namespace grist::dycore {
namespace {

// Run `ndyn` dynamics steps, then one tracer step on the accumulated flux.
void runDynPlusTracer(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
                      const DycoreConfig& cfg, State& state, int ndyn,
                      precision::NsMode ns) {
  Dycore dycore(mesh, trsk, cfg);
  parallel::Field delp_old = state.delp;
  dycore.resetAccumulatedFlux();
  for (int s = 0; s < ndyn; ++s) dycore.step(state);
  // Time-mean flux over the tracer interval.
  parallel::Field mean_flux = dycore.accumulatedMassFlux();
  for (std::size_t i = 0; i < mean_flux.size(); ++i) mean_flux.data()[i] /= ndyn;
  TracerTransportArgs args;
  args.mesh = &mesh;
  args.ncells_prog = mesh.ncells;
  args.nlev = cfg.nlev;
  args.dt = ndyn * cfg.dt;
  args.mean_flux = mean_flux.data();
  args.delp_old = delp_old.data();
  args.delp_new = state.delp.data();
  tracerTransport(args, ns, state.tracers[0].data());
}

class TracerRun : public ::testing::TestWithParam<precision::NsMode> {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 8;
    cfg_.dt = 450.0;
  }
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  DycoreConfig cfg_;
};

TEST_P(TracerRun, MassConservedToRoundoff) {
  State state = initBaroclinicWave(mesh_, cfg_);
  const double mass0 = totalTracerMass(mesh_, state, 0);
  runDynPlusTracer(mesh_, trsk_, cfg_, state, 4, GetParam());
  const double mass1 = totalTracerMass(mesh_, state, 0);
  const double tol = GetParam() == precision::NsMode::kDouble ? 1e-12 : 1e-5;
  EXPECT_NEAR(mass1 / mass0, 1.0, tol);
}

TEST_P(TracerRun, LimiterPreventsNewExtrema) {
  State state = initBaroclinicWave(mesh_, cfg_);
  const FieldExtrema before = tracerExtrema(state, 0);
  runDynPlusTracer(mesh_, trsk_, cfg_, state, 4, GetParam());
  const FieldExtrema after = tracerExtrema(state, 0);
  const double span = before.max - before.min;
  EXPECT_GE(after.min, before.min - 1e-9 * span);
  EXPECT_LE(after.max, before.max + 1e-9 * span);
}

TEST_P(TracerRun, UniformTracerStaysUniform) {
  State state = initBaroclinicWave(mesh_, cfg_);
  state.tracers[0].fill(0.37);
  runDynPlusTracer(mesh_, trsk_, cfg_, state, 4, GetParam());
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      // Uniform mixing ratio is preserved by a consistent flux-form scheme
      // (mass update and tracer update use the same fluxes).
      ASSERT_NEAR(state.tracers[0](c, k), 0.37, 2e-3 * 0.37);
    }
  }
}

TEST_P(TracerRun, BlobIsTransportedDownstream) {
  State state = initBaroclinicWave(mesh_, cfg_);
  // Replace moisture with a compact blob on the jet axis.
  const double lon0 = 0.0, lat0 = constants::kPi / 4.0;
  const Vec3 x0 = toCartesian({lon0, lat0});
  for (Index c = 0; c < mesh_.ncells; ++c) {
    const double d = greatCircleDistance(mesh_.cell_x[c], x0, mesh_.radius);
    for (int k = 0; k < cfg_.nlev; ++k) {
      state.tracers[0](c, k) = std::exp(-0.5 * std::pow(d / 800.0e3, 2));
    }
  }
  // Blob centroid longitude before/after: the westerly jet must move it east.
  const auto centroidLon = [&]() {
    double sx = 0, sy = 0;
    for (Index c = 0; c < mesh_.ncells; ++c) {
      double column = 0;
      for (int k = 0; k < cfg_.nlev; ++k) column += state.tracers[0](c, k);
      sx += column * std::cos(mesh_.cell_ll[c].lon);
      sy += column * std::sin(mesh_.cell_ll[c].lon);
    }
    return std::atan2(sy, sx);
  };
  const double lon_before = centroidLon();
  runDynPlusTracer(mesh_, trsk_, cfg_, state, 8, GetParam());
  const double lon_after = centroidLon();
  double dlon = lon_after - lon_before;
  if (dlon < -constants::kPi) dlon += 2 * constants::kPi;
  EXPECT_GT(dlon, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Precisions, TracerRun,
                         ::testing::Values(precision::NsMode::kDouble,
                                           precision::NsMode::kSingle));

TEST(TracerTransport, NullArgsThrow) {
  TracerTransportArgs args;
  double q = 0;
  EXPECT_THROW(tracerTransport(args, precision::NsMode::kDouble, &q),
               std::invalid_argument);
}

} // namespace
} // namespace grist::dycore
