// Correctness gate for the fused single-sweep tendency pipeline: every
// fused kernel must match the unfused kernel sequence it replaces to
// <= 1 ulp (NS = double) / <= 1e-6 relative (NS = float), and the
// Workspace-backed column solves must perform ZERO heap allocations once
// their per-thread arenas are warm.
//
// This binary overrides the global allocation operators to count heap
// traffic, so it is its own test executable (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <vector>

#include "grist/common/workspace.hpp"
#include "grist/dycore/kernels.hpp"
#include "grist/dycore/state.hpp"
#include "grist/dycore/tracer.hpp"
#include "grist/dycore/vertical_remap.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. malloc-backed so the override itself is free of
// recursion; every flavor of operator new/delete funnels through here.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long> g_heap_allocs{0};
} // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  ++g_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace grist::dycore {
namespace {

using grid::HexMesh;
using grid::TrskWeights;

// Lexicographic key: maps doubles to an integer space where adjacent
// representable values differ by 1 (the standard ulp-distance trick).
std::uint64_t lexKey(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return (u & 0x8000000000000000ULL) ? ~u : (u | 0x8000000000000000ULL);
}

std::uint64_t ulpDiff(double a, double b) {
  const std::uint64_t ka = lexKey(a), kb = lexKey(b);
  return ka > kb ? ka - kb : kb - ka;
}

// Tolerance gate per the issue: <= 1 ulp for NS=double, <= 1e-6 relative
// for NS=float (all kernels emit double arrays regardless of NS).
template <typename NS>
void expectClose(const std::vector<double>& fused,
                 const std::vector<double>& ref, const char* what) {
  ASSERT_EQ(fused.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if constexpr (std::is_same_v<NS, double>) {
      ASSERT_LE(ulpDiff(fused[i], ref[i]), 1u)
          << what << " [" << i << "]: " << fused[i] << " vs " << ref[i];
    } else {
      const double denom = std::max(std::abs(ref[i]), 1e-30);
      ASSERT_LE(std::abs(fused[i] - ref[i]) / denom, 1e-6)
          << what << " [" << i << "]: " << fused[i] << " vs " << ref[i];
    }
  }
}

// Shared smooth-but-nontrivial model state on the issue's g4 grid.
struct Fixture {
  HexMesh mesh = grid::buildHexMesh(4);
  TrskWeights trsk = grid::buildTrskWeights(mesh);
  int nlev = 8;
  std::size_t cn, en, vn;
  std::vector<double> delp, theta, u, phi;
  std::vector<double> alpha, p, exner, pi_mid;  // from computeRrr
  double nu_theta = 0.005 / 300.0;
  double nu_div = 0.02 / 300.0;
  double nu_vor = 0.005 / 300.0;

  Fixture() {
    cn = static_cast<std::size_t>(mesh.ncells) * nlev;
    en = static_cast<std::size_t>(mesh.nedges) * nlev;
    vn = static_cast<std::size_t>(mesh.nvertices) * nlev;
    delp.resize(cn);
    theta.resize(cn);
    phi.resize(static_cast<std::size_t>(mesh.ncells) * (nlev + 1));
    u.resize(en);
    for (Index c = 0; c < mesh.ncells; ++c) {
      for (int k = 0; k < nlev; ++k) {
        delp[c * nlev + k] = 500.0 + 40.0 * std::sin(0.37 * c + 0.9 * k);
        theta[c * nlev + k] = 300.0 + 15.0 * std::cos(0.11 * c - 0.5 * k);
      }
      phi[c * (nlev + 1) + nlev] = 100.0 * std::sin(0.05 * c);
      for (int k = nlev - 1; k >= 0; --k) {
        phi[c * (nlev + 1) + k] =
            phi[c * (nlev + 1) + k + 1] + 2000.0 + 100.0 * std::cos(0.2 * c + k);
      }
    }
    for (Index e = 0; e < mesh.nedges; ++e) {
      for (int k = 0; k < nlev; ++k) {
        u[e * nlev + k] = 12.0 * std::sin(0.23 * e + 0.4 * k) - 3.0;
      }
    }
    alpha.resize(cn);
    p.resize(cn);
    exner.resize(cn);
    pi_mid.resize(cn);
    kernels::computeRrr<double>(mesh.ncells, nlev, 225.0, delp.data(),
                                theta.data(), phi.data(), alpha.data(), p.data(),
                                exner.data(), pi_mid.data());
  }
};

Fixture& fx() {
  static Fixture f;
  return f;
}

template <typename NS>
class FusedKernels : public ::testing::Test {};
using Precisions = ::testing::Types<double, float>;
TYPED_TEST_SUITE(FusedKernels, Precisions);

TYPED_TEST(FusedKernels, EdgeFluxesMatchUnfused) {
  using NS = TypeParam;
  Fixture& f = fx();
  std::vector<double> flux_ref(f.en), uflux_ref(f.en);
  kernels::primalNormalFluxEdge<NS>(f.mesh, f.mesh.nedges, f.nlev, f.delp.data(),
                                    f.u.data(), flux_ref.data());
  for (Index e = 0; e < f.mesh.nedges; ++e) {
    for (int k = 0; k < f.nlev; ++k) {
      uflux_ref[e * f.nlev + k] = f.mesh.edge_le[e] * f.u[e * f.nlev + k];
    }
  }
  std::vector<double> flux(f.en), uflux(f.en);
  kernels::fusedEdgeFluxes<NS>(f.mesh, f.mesh.nedges, f.nlev, f.delp.data(),
                               f.u.data(), flux.data(), uflux.data());
  expectClose<NS>(flux, flux_ref, "flux");
  expectClose<NS>(uflux, uflux_ref, "uflux");
}

TYPED_TEST(FusedKernels, CellDiagnosticsMatchUnfused) {
  using NS = TypeParam;
  Fixture& f = fx();
  std::vector<double> flux(f.en), uflux(f.en);
  kernels::fusedEdgeFluxes<NS>(f.mesh, f.mesh.nedges, f.nlev, f.delp.data(),
                               f.u.data(), flux.data(), uflux.data());
  std::vector<double> div_ref(f.cn), divu_ref(f.cn), ke_ref(f.cn);
  kernels::divAtCell<NS>(f.mesh, f.mesh.ncells, f.nlev, flux.data(), div_ref.data());
  kernels::divAtCell<NS>(f.mesh, f.mesh.ncells, f.nlev, uflux.data(), divu_ref.data());
  kernels::kineticEnergy<NS>(f.mesh, f.mesh.ncells, f.nlev, f.u.data(), ke_ref.data());
  std::vector<double> div(f.cn), divu(f.cn), ke(f.cn);
  kernels::fusedCellDiagnostics<NS>(f.mesh, f.mesh.ncells, f.nlev, flux.data(),
                                    uflux.data(), f.u.data(), div.data(),
                                    divu.data(), ke.data());
  expectClose<NS>(div, div_ref, "div_flux");
  expectClose<NS>(divu, divu_ref, "div_u");
  expectClose<NS>(ke, ke_ref, "ke");
}

TYPED_TEST(FusedKernels, VertexDiagnosticsMatchUnfused) {
  using NS = TypeParam;
  Fixture& f = fx();
  std::vector<double> vor_ref(f.vn), qv_ref(f.vn);
  kernels::vorticityAtVertex<NS>(f.mesh, f.mesh.nvertices, f.nlev, f.u.data(),
                                 vor_ref.data());
  kernels::potentialVorticityAtVertex<NS>(f.mesh, f.mesh.nvertices, f.nlev,
                                          vor_ref.data(), f.delp.data(),
                                          constants::kOmega, qv_ref.data());
  std::vector<double> vor(f.vn), qv(f.vn);
  kernels::fusedVertexDiagnostics<NS>(f.mesh, f.mesh.nvertices, f.nlev, f.u.data(),
                                      f.delp.data(), constants::kOmega,
                                      vor.data(), qv.data());
  expectClose<NS>(vor, vor_ref, "vor");
  expectClose<NS>(qv, qv_ref, "qv");
}

TYPED_TEST(FusedKernels, ScalarTendenciesMatchUnfused) {
  using NS = TypeParam;
  Fixture& f = fx();
  std::vector<double> flux(f.en), uflux(f.en);
  kernels::fusedEdgeFluxes<NS>(f.mesh, f.mesh.nedges, f.nlev, f.delp.data(),
                               f.u.data(), flux.data(), uflux.data());
  std::vector<double> div(f.cn);
  kernels::divAtCell<NS>(f.mesh, f.mesh.ncells, f.nlev, flux.data(), div.data());
  // Unfused reference: delp_tend = -div; thetam_tend = advection + diffusion.
  std::vector<double> dt_ref(f.cn), tt_ref(f.cn), s2(f.cn, 0.0);
  for (std::size_t i = 0; i < f.cn; ++i) dt_ref[i] = -div[i];
  kernels::scalarFluxTendency<NS>(f.mesh, f.mesh.ncells, f.nlev, flux.data(),
                                  f.theta.data(), tt_ref.data());
  kernels::del2Scalar<NS>(f.mesh, f.mesh.ncells, f.nlev, f.theta.data(),
                          f.nu_theta, s2.data());
  for (std::size_t i = 0; i < f.cn; ++i) tt_ref[i] += f.delp[i] * s2[i];
  std::vector<double> dt(f.cn), tt(f.cn);
  kernels::fusedScalarTendencies<NS>(f.mesh, f.mesh.ncells, f.nlev, flux.data(),
                                     f.theta.data(), f.delp.data(), div.data(),
                                     f.nu_theta, dt.data(), tt.data());
  expectClose<NS>(dt, dt_ref, "delp_tend");
  expectClose<NS>(tt, tt_ref, "thetam_tend");
}

TYPED_TEST(FusedKernels, MomentumTendencyMatchesUnfusedSequence) {
  using NS = TypeParam;
  Fixture& f = fx();
  std::vector<double> flux(f.en), uflux(f.en);
  kernels::fusedEdgeFluxes<NS>(f.mesh, f.mesh.nedges, f.nlev, f.delp.data(),
                               f.u.data(), flux.data(), uflux.data());
  std::vector<double> div_u(f.cn), ke(f.cn), dummy_div(f.cn);
  kernels::fusedCellDiagnostics<NS>(f.mesh, f.mesh.ncells, f.nlev, flux.data(),
                                    uflux.data(), f.u.data(), dummy_div.data(),
                                    div_u.data(), ke.data());
  std::vector<double> vor(f.vn), qv(f.vn);
  kernels::fusedVertexDiagnostics<NS>(f.mesh, f.mesh.nvertices, f.nlev, f.u.data(),
                                      f.delp.data(), constants::kOmega,
                                      vor.data(), qv.data());
  // Unfused reference: zero-fill then four accumulation passes, exactly as
  // the pre-fusion Dycore::computeTendencies did.
  std::vector<double> ut_ref(f.en, 0.0);
  kernels::tendGradKeAtEdge<NS>(f.mesh, f.mesh.nedges, f.nlev, ke.data(),
                                ut_ref.data());
  kernels::calcCoriolisTerm<NS>(f.mesh, f.trsk, f.mesh.nedges, f.nlev, flux.data(),
                                qv.data(), ut_ref.data());
  kernels::calcPressureGradient(f.mesh, f.mesh.nedges, f.nlev, f.phi.data(),
                                f.alpha.data(), f.p.data(), f.pi_mid.data(),
                                ut_ref.data());
  kernels::del2Momentum<NS>(f.mesh, f.mesh.nedges, f.nlev, div_u.data(),
                            vor.data(), f.nu_div, f.nu_vor, ut_ref.data());
  std::vector<double> ut(f.en);
  kernels::fusedMomentumTendency<NS>(f.mesh, f.trsk, f.mesh.nedges, f.nlev,
                                     ke.data(), qv.data(), flux.data(),
                                     f.phi.data(), f.alpha.data(), f.p.data(),
                                     div_u.data(), vor.data(), f.nu_div,
                                     f.nu_vor, ut.data());
  expectClose<NS>(ut, ut_ref, "u_tend");
}

// ---------------------------------------------------------------------------
// Zero-allocation guards: once the per-thread Workspace arenas are warm, the
// column solves must not touch the heap at all.
// ---------------------------------------------------------------------------

long allocsDuring(const std::function<void()>& fn) {
  const long before = g_heap_allocs.load();
  fn();
  return g_heap_allocs.load() - before;
}

TEST(AllocationGuard, VertImplicitSolverIsHeapFreeWhenWarm) {
  Fixture& f = fx();
  std::vector<double> w(static_cast<std::size_t>(f.mesh.ncells) * (f.nlev + 1), 0.1);
  std::vector<double> phi = f.phi;
  const auto solve = [&] {
    kernels::vertImplicitSolver(f.mesh.ncells, f.nlev, 300.0, 225.0,
                                f.delp.data(), f.theta.data(), f.p.data(),
                                w.data(), phi.data(), 0.0);
  };
  solve();  // warm-up: arenas grow here (at most once per thread)
  EXPECT_EQ(allocsDuring(solve), 0);
}

TEST(AllocationGuard, TracerTransportIsHeapFreeWhenWarm) {
  Fixture& f = fx();
  std::vector<double> q(f.cn, 1.0e-3);
  for (std::size_t i = 0; i < f.cn; ++i) q[i] += 1e-4 * std::sin(0.3 * i);
  std::vector<double> flux(f.en), uflux(f.en);
  kernels::fusedEdgeFluxes<double>(f.mesh, f.mesh.nedges, f.nlev, f.delp.data(),
                                   f.u.data(), flux.data(), uflux.data());
  TracerTransportArgs args;
  args.mesh = &f.mesh;
  args.ncells_prog = f.mesh.ncells;
  args.nlev = f.nlev;
  args.dt = 300.0;
  args.mean_flux = flux.data();
  args.delp_old = f.delp.data();
  args.delp_new = f.delp.data();
  const auto transport = [&] { tracerTransportHoriFluxLimiter<double>(args, q.data()); };
  transport();
  EXPECT_EQ(allocsDuring(transport), 0);
}

TEST(AllocationGuard, VerticalRemapIsHeapFreeWhenWarm) {
  Fixture& f = fx();
  State state(f.mesh, f.nlev, 1);
  for (Index c = 0; c < f.mesh.ncells; ++c) {
    for (int k = 0; k < f.nlev; ++k) {
      state.delp(c, k) = f.delp[c * f.nlev + k];
      state.theta(c, k) = f.theta[c * f.nlev + k];
      state.tracers[0](c, k) = 1e-3;
    }
    for (int k = 0; k <= f.nlev; ++k) {
      state.phi(c, k) = f.phi[c * (f.nlev + 1) + k];
      state.w(c, k) = 0.01;
    }
  }
  State scratch = state;  // remap mutates; keep a pristine copy to re-run
  verticalRemap(f.mesh.ncells, f.nlev, 225.0, scratch);  // warm-up
  State scratch2 = state;
  EXPECT_EQ(allocsDuring([&] {
              verticalRemap(f.mesh.ncells, f.nlev, 225.0, scratch2);
            }),
            0);
}

} // namespace
} // namespace grist::dycore
