#include "grist/dycore/vertical_remap.hpp"

#include <gtest/gtest.h>

#include "grist/dycore/diagnostics.hpp"
#include "grist/dycore/dycore.hpp"
#include "grist/dycore/init.hpp"

namespace grist::dycore {
namespace {

class RemapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(2);
    cfg_.nlev = 12;
    cfg_.dt = 600.0;
  }
  grid::HexMesh mesh_;
  DycoreConfig cfg_;
};

TEST_F(RemapTest, UniformLevelsAreFixedPoint) {
  State state = initBaroclinicWave(mesh_, cfg_);
  const State before = state;
  verticalRemap(mesh_.ncells, cfg_.nlev, cfg_.ptop, state);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      EXPECT_DOUBLE_EQ(state.delp(c, k), before.delp(c, k));
      EXPECT_DOUBLE_EQ(state.theta(c, k), before.theta(c, k));
    }
  }
}

TEST_F(RemapTest, RestoresUniformLayersAndConservesMass) {
  State state = initBaroclinicWave(mesh_, cfg_);
  // Distort the layer distribution within fixed column mass.
  for (Index c = 0; c < mesh_.ncells; ++c) {
    const double shift = 0.3 * state.delp(c, 0);
    state.delp(c, 0) -= shift;
    state.delp(c, 1) += shift;
  }
  const double mass0 = totalDryMass(mesh_, state);
  const double theta0 = totalThetaMass(mesh_, state);
  const double qmass0 = totalTracerMass(mesh_, state, 0);

  verticalRemap(mesh_.ncells, cfg_.nlev, cfg_.ptop, state);

  EXPECT_NEAR(totalDryMass(mesh_, state) / mass0, 1.0, 1e-13);
  EXPECT_NEAR(totalThetaMass(mesh_, state) / theta0, 1.0, 1e-12);
  EXPECT_NEAR(totalTracerMass(mesh_, state, 0) / qmass0, 1.0, 1e-12);
  // Layers are uniform again.
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 1; k < cfg_.nlev; ++k) {
      EXPECT_NEAR(state.delp(c, k), state.delp(c, 0), 1e-9);
    }
  }
}

TEST_F(RemapTest, MonotoneProfilesStayMonotone) {
  // First-order conservative remap cannot create new extrema.
  State state = initBaroclinicWave(mesh_, cfg_);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      state.delp(c, k) *= 1.0 + 0.3 * std::sin(0.7 * k + 0.01 * c);
    }
  }
  State before = state;
  verticalRemap(mesh_.ncells, cfg_.nlev, cfg_.ptop, state);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    double old_min = before.theta(c, 0), old_max = before.theta(c, 0);
    for (int k = 1; k < cfg_.nlev; ++k) {
      old_min = std::min(old_min, before.theta(c, k));
      old_max = std::max(old_max, before.theta(c, k));
    }
    for (int k = 0; k < cfg_.nlev; ++k) {
      EXPECT_GE(state.theta(c, k), old_min - 1e-9);
      EXPECT_LE(state.theta(c, k), old_max + 1e-9);
    }
  }
}

TEST_F(RemapTest, PhiRebuiltHydrostaticallyDecreasingUpward) {
  State state = initBaroclinicWave(mesh_, cfg_);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    const double shift = 0.4 * state.delp(c, 3);
    state.delp(c, 3) -= shift;
    state.delp(c, 7) += shift;
  }
  verticalRemap(mesh_.ncells, cfg_.nlev, cfg_.ptop, state);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    EXPECT_NEAR(state.phi(c, cfg_.nlev), 0.0, 1e-9);  // surface anchored
    for (int k = 0; k < cfg_.nlev; ++k) {
      EXPECT_GT(state.phi(c, k), state.phi(c, k + 1));
    }
  }
}

TEST_F(RemapTest, DrainedLayerRecovers) {
  // The production scenario: one Lagrangian layer nearly drained.
  State state = initBaroclinicWave(mesh_, cfg_);
  const Index c = 17;
  const double stolen = 0.95 * state.delp(c, 0);
  state.delp(c, 0) -= stolen;
  state.delp(c, 1) += stolen;
  verticalRemap(mesh_.ncells, cfg_.nlev, cfg_.ptop, state);
  EXPECT_NEAR(state.delp(c, 0), state.delp(c, 5), 1e-9);
  for (int k = 0; k < cfg_.nlev; ++k) {
    EXPECT_GT(state.delp(c, k), 0.0);
    EXPECT_TRUE(std::isfinite(state.theta(c, k)));
  }
}

} // namespace
} // namespace grist::dycore
