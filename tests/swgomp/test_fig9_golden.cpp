// Golden per-kernel cycle-count regression test. The SW26010P simulator is
// fully deterministic, so the warm (steady-state) cycle count of every
// registered kernel in the reference configuration -- 64 CPEs, DP,
// way-aligned allocation, G3 mesh, nlev=10 -- must reproduce EXACTLY. Any
// drift means the shared kernel body, the cost model, or the allocation
// layout changed; update the table only after confirming the change is
// intentional. Regenerate with:
//   GRIST_DUMP_GOLDEN=1 ./test_swgomp --gtest_filter='Fig9Golden.*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "grist/grid/trsk.hpp"
#include "grist/swgomp/sim_kernels.hpp"

namespace grist::swgomp {
namespace {

struct GoldenEntry {
  SimKernel kernel;
  double cycles;
};

constexpr GoldenEntry kGolden[] = {
    {SimKernel::kPrimalNormalFluxEdge, 37880.0},
    {SimKernel::kComputeRrr, 268870.0},
    {SimKernel::kCalcCoriolisTerm, 721680.0},
    {SimKernel::kTendGradKeAtEdge, 14300.0},
    {SimKernel::kDivAtCell, 24948.0},
    {SimKernel::kTracerHoriFluxLimiter, 676432.0},
    {SimKernel::kVertImplicitSolver, 46966.0},
    {SimKernel::kFusedEdgeFluxes, 44180.0},
    {SimKernel::kFusedCellDiagnostics, 185853.0},
    {SimKernel::kFusedVertexDiagnostics, 76080.0},
    {SimKernel::kFusedScalarTendencies, 153160.0},
    {SimKernel::kFusedMomentumTendency, 541334.0},
};

TEST(Fig9Golden, TableCoversEveryRegisteredKernel) {
  const std::vector<SimKernel> all = allSimKernels();
  ASSERT_EQ(all.size(), std::size(kGolden));
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], kGolden[i].kernel) << kernelName(all[i]);
  }
}

TEST(Fig9Golden, WarmCpeDpCycleCountsAreStable) {
  const grid::HexMesh mesh = grid::buildHexMesh(3);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  sunway::CoreGroup cg;
  SimConfig cfg;
  cfg.nlev = 10;
  cfg.on_cpe = true;
  cfg.precision = sunway::SimPrecision::kDouble;
  cfg.policy = AllocPolicy::kWayAligned;
  const bool dump = std::getenv("GRIST_DUMP_GOLDEN") != nullptr;
  for (const GoldenEntry& g : kGolden) {
    const double cycles = runSimKernel(g.kernel, mesh, trsk, cfg, cg);
    if (dump) {
      std::printf("GOLDEN %-36s %.1f\n", kernelName(g.kernel), cycles);
    } else {
      EXPECT_EQ(cycles, g.cycles) << kernelName(g.kernel);
    }
  }
}

} // namespace
} // namespace grist::swgomp
