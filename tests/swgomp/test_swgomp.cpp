#include <gtest/gtest.h>

#include "grist/grid/trsk.hpp"
#include "grist/swgomp/offload.hpp"
#include "grist/swgomp/pool_allocator.hpp"
#include "grist/swgomp/sim_kernels.hpp"

namespace grist::swgomp {
namespace {

using sunway::ArchParams;
using sunway::CoreGroup;
using sunway::SimPrecision;

TEST(PoolAllocator, WayAlignedBasesCollideInOneSet) {
  ArchParams params;
  PoolAllocator alloc(AllocPolicy::kWayAligned, params);
  const std::size_t way = params.ldcache_bytes / params.ldcache_ways;
  const std::uint64_t a = alloc.allocate(1000);
  const std::uint64_t b = alloc.allocate(1000);
  EXPECT_EQ(a % way, 0u);
  EXPECT_EQ(b % way, 0u);
}

TEST(PoolAllocator, DistributedBasesSpreadAcrossSets) {
  ArchParams params;
  PoolAllocator alloc(AllocPolicy::kDistributed, params);
  const std::size_t way = params.ldcache_bytes / params.ldcache_ways;
  std::set<std::uint64_t> lanes;
  for (int i = 0; i < 8; ++i) {
    lanes.insert(alloc.allocate(1000) % way / params.ldcache_line);
  }
  // Eight arrays land in (nearly) eight distinct lanes.
  EXPECT_GE(lanes.size(), 7u);
}

TEST(TargetParallelDo, DistributesIterationsAndBarriers) {
  CoreGroup cg;
  std::vector<int> touched(640, 0);
  const double region = targetParallelDo(cg, 640, [&](sunway::Cpe& cpe, Index i) {
    ++touched[i];
    cpe.flops(1, SimPrecision::kDouble);
  });
  for (const int t : touched) EXPECT_EQ(t, 1);
  EXPECT_GT(region, 0.0);
  // All CPEs end at the same cycle count (implicit barrier).
  for (int p = 1; p < cg.cpeCount(); ++p) {
    EXPECT_DOUBLE_EQ(cg.cpe(p).cycles(), cg.cpe(0).cycles());
  }
}

TEST(Omnicopy, LdmAccessesSkipTheCache) {
  CoreGroup cg;
  PoolAllocator alloc(AllocPolicy::kWayAligned, cg.params());
  std::vector<double> host(1024, 2.0);
  VirtualArray<double> arr(host.data(), alloc, host.size());
  sunway::Cpe& cpe = cg.cpe(0);
  const LdmView<double> view = omnicopy(cpe, arr, 0, 256);
  const auto misses_after_dma = cpe.cache().misses();
  double sum = 0;
  for (Index i = 0; i < 256; ++i) sum += view.read(cpe, i);
  EXPECT_DOUBLE_EQ(sum, 512.0);
  EXPECT_EQ(cpe.cache().misses(), misses_after_dma);  // no cache traffic
  omnifree(cpe, view, 256);
}

class SimKernelCase : public ::testing::TestWithParam<SimKernel> {
 protected:
  grid::HexMesh mesh_ = grid::buildHexMesh(3);
  grid::TrskWeights trsk_ = grid::buildTrskWeights(mesh_);
};

TEST_P(SimKernelCase, CpeOffloadBeatsMpe) {
  CoreGroup cg;
  SimConfig cfg;
  cfg.nlev = 10;
  cfg.on_cpe = false;
  const double mpe = runSimKernel(GetParam(), mesh_, trsk_, cfg, cg);
  cfg.on_cpe = true;
  const double cpe = runSimKernel(GetParam(), mesh_, trsk_, cfg, cg);
  // 64 CPEs must beat one MPE by a clear factor even with cache misses.
  EXPECT_GT(mpe / cpe, 5.0) << kernelName(GetParam());
  EXPECT_LT(mpe / cpe, 128.0) << kernelName(GetParam());
}

TEST_P(SimKernelCase, SpeedupMatrixOrdering) {
  const KernelSpeedups s = measureKernelSpeedups(GetParam(), mesh_, trsk_, 10);
  // Every configuration accelerates; DST never hurts; the paper's Fig. 9
  // band is roughly 20-70x for the best configurations.
  EXPECT_GT(s.dp, 1.0) << s.kernel;
  EXPECT_GE(s.dp_dst, 0.95 * s.dp) << s.kernel;
  EXPECT_GE(s.mix_dst, 0.95 * s.mix) << s.kernel;
  EXPECT_GE(s.mix_dst, 0.95 * s.dp_dst) << s.kernel;
  EXPECT_LT(s.mix_dst, 150.0) << s.kernel;
}

INSTANTIATE_TEST_SUITE_P(Kernels, SimKernelCase,
                         ::testing::ValuesIn(allSimKernels()),
                         [](const auto& info) {
                           return std::string(kernelName(info.param));
                         });

TEST(SimKernels, MixBeatsDpWhereDividesDominate) {
  // primal_normal_flux_edge has 2 divides per point (the paper calls out
  // its "numerous division, power and other computationally expensive
  // calculations"); MIX must help it.
  const grid::HexMesh mesh = grid::buildHexMesh(3);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  const KernelSpeedups s =
      measureKernelSpeedups(SimKernel::kPrimalNormalFluxEdge, mesh, trsk, 10);
  EXPECT_GT(s.mix, 1.15 * s.dp);
}

TEST(SimKernels, DstHelpsTheManyArrayKernelMost) {
  // tracer_transport_hori_flux_limiter touches > 4 arrays per loop, so the
  // address distributor buys it more than the 3-array grad-ke kernel (the
  // contrast the paper's Fig. 9 shows).
  const grid::HexMesh mesh = grid::buildHexMesh(3);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  const KernelSpeedups fct =
      measureKernelSpeedups(SimKernel::kTracerHoriFluxLimiter, mesh, trsk, 10);
  const KernelSpeedups ke =
      measureKernelSpeedups(SimKernel::kTendGradKeAtEdge, mesh, trsk, 10);
  const double fct_gain = fct.dp_dst / fct.dp;
  const double ke_gain = ke.dp_dst / ke.dp;
  EXPECT_GT(fct_gain, ke_gain);
}

} // namespace
} // namespace grist::swgomp
