// Host/Sim backend parity: every registered Fig. 9 kernel, run over the same
// seeded payloads through the HostBackend instantiation (raw pointers, plain
// loop) and the SimBackend instantiation (accounted views on simulated
// CPEs), must produce bitwise identical arrays. This is the guarantee that
// lets the simulator's cycle counts speak for the production kernels: both
// paths execute the one shared body in grist/backend/kernels.hpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "grist/grid/trsk.hpp"
#include "grist/swgomp/sim_kernels.hpp"

namespace grist::swgomp {
namespace {

void expectBitEqual(const std::vector<double>& host,
                    const std::vector<double>& sim, const char* field) {
  ASSERT_EQ(host.size(), sim.size()) << field;
  for (std::size_t i = 0; i < host.size(); ++i) {
    std::uint64_t hb = 0, sb = 0;
    std::memcpy(&hb, &host[i], sizeof(hb));
    std::memcpy(&sb, &sim[i], sizeof(sb));
    ASSERT_EQ(hb, sb) << field << "[" << i << "] host=" << host[i]
                      << " sim=" << sim[i];
  }
}

void expectDataBitEqual(const SimKernelData& h, const SimKernelData& s) {
  expectBitEqual(h.delp, s.delp, "delp");
  expectBitEqual(h.theta, s.theta, "theta");
  expectBitEqual(h.alpha, s.alpha, "alpha");
  expectBitEqual(h.p, s.p, "p");
  expectBitEqual(h.exner, s.exner, "exner");
  expectBitEqual(h.pi_mid, s.pi_mid, "pi_mid");
  expectBitEqual(h.ke, s.ke, "ke");
  expectBitEqual(h.div_flux, s.div_flux, "div_flux");
  expectBitEqual(h.div_u, s.div_u, "div_u");
  expectBitEqual(h.delp_tend, s.delp_tend, "delp_tend");
  expectBitEqual(h.thetam_tend, s.thetam_tend, "thetam_tend");
  expectBitEqual(h.q, s.q, "q");
  expectBitEqual(h.q_td, s.q_td, "q_td");
  expectBitEqual(h.rp, s.rp, "rp");
  expectBitEqual(h.rm, s.rm, "rm");
  expectBitEqual(h.delp_old, s.delp_old, "delp_old");
  expectBitEqual(h.delp_new, s.delp_new, "delp_new");
  expectBitEqual(h.phi, s.phi, "phi");
  expectBitEqual(h.w, s.w, "w");
  expectBitEqual(h.u, s.u, "u");
  expectBitEqual(h.flux, s.flux, "flux");
  expectBitEqual(h.uflux, s.uflux, "uflux");
  expectBitEqual(h.tend_u, s.tend_u, "tend_u");
  expectBitEqual(h.mean_flux, s.mean_flux, "mean_flux");
  expectBitEqual(h.flux_low, s.flux_low, "flux_low");
  expectBitEqual(h.flux_anti, s.flux_anti, "flux_anti");
  expectBitEqual(h.vor, s.vor, "vor");
  expectBitEqual(h.qv, s.qv, "qv");
}

class BackendParity : public ::testing::TestWithParam<SimKernel> {
 protected:
  grid::HexMesh mesh_ = grid::buildHexMesh(3);
  grid::TrskWeights trsk_ = grid::buildTrskWeights(mesh_);
};

TEST_P(BackendParity, HostAndSimAreBitExactInBothPrecisions) {
  constexpr int kNlev = 10;
  for (const precision::NsMode ns :
       {precision::NsMode::kDouble, precision::NsMode::kSingle}) {
    SimKernelData host = makeSimKernelData(mesh_, kNlev);
    SimKernelData sim = host;
    runKernelOnData(GetParam(), mesh_, trsk_, ns, ExecBackend::kHost, host);
    runKernelOnData(GetParam(), mesh_, trsk_, ns, ExecBackend::kSim, sim);
    expectDataBitEqual(host, sim);
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, BackendParity,
                         ::testing::ValuesIn(allSimKernels()),
                         [](const auto& info) {
                           return std::string(kernelName(info.param));
                         });

} // namespace
} // namespace grist::swgomp
