// Elastic restart across OS processes (ctest labels RESTART;MULTIPROCESS).
//
// The shm-transport leg of the restart gate: a one-process-per-rank fleet
// that checkpoints through a snapshot file and a NEW fleet that resumes
// from it -- at the same rank count or a different one -- must land bitwise
// on the unbroken threaded run. Every rank worker reads + validates the
// snapshot itself and scatters its own slice (mp_runner.hpp RunSpec.restart),
// so the test crosses process, transport AND rank-count boundaries at once.
//
// Like test_multiprocess.cpp, this binary is its own rank worker: main()
// dispatches on argv via maybeRunWorker BEFORE gtest runs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <tuple>

#include "grist/core/checkpoint.hpp"
#include "grist/core/mp_runner.hpp"
#include "grist/core/parallel_model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/partition/partitioner.hpp"

namespace grist {
namespace {

using core::ParallelModel;
using core::mp::MpSession;
using core::mp::RunSpec;

namespace fs = std::filesystem;

void expectStatesBitwise(const dycore::State& a, const dycore::State& b,
                         const grid::HexMesh& mesh, int nlev) {
  for (Index c = 0; c < mesh.ncells; ++c) {
    for (int k = 0; k < nlev; ++k) {
      ASSERT_EQ(b.delp(c, k), a.delp(c, k)) << "cell " << c;
      ASSERT_EQ(b.theta(c, k), a.theta(c, k)) << "cell " << c;
      ASSERT_EQ(b.tracers[0](c, k), a.tracers[0](c, k)) << "cell " << c;
    }
    for (int k = 0; k <= nlev; ++k) {
      ASSERT_EQ(b.w(c, k), a.w(c, k));
      ASSERT_EQ(b.phi(c, k), a.phi(c, k));
    }
  }
  for (Index e = 0; e < mesh.nedges; ++e) {
    for (int k = 0; k < nlev; ++k) {
      ASSERT_EQ(b.u(e, k), a.u(e, k)) << "edge " << e;
    }
  }
}

class ShmRestartBase : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);  // RunSpec defaults: G3, 8 levels, dt 450
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 8;
    cfg_.dt = 450.0;
    path_ = (fs::temp_directory_path() /
             ("grist_mp_ckpt_" + std::to_string(::getpid()) + ".grist"))
                .string();
  }
  void TearDown() override { fs::remove(path_); }

  /// Fleet at `write_ranks` runs `pre` steps and checkpoints; a NEW fleet
  /// at `read_ranks` resumes from the file and runs `post` steps. Returns
  /// the resumed fleet's gathered global state.
  dycore::State brokenShmRun(Index write_ranks, Index read_ranks, int pre,
                             int post, precision::NsMode ns) {
    {
      RunSpec spec;
      spec.nranks = write_ranks;
      spec.ns = ns;
      MpSession writer(spec);
      writer.run(pre);
      const auto part = partition::Partitioner::partition(mesh_, write_ranks);
      core::captureDynRun(writer.gather(), cfg_, mesh_.level, pre, write_ranks,
                          partition::Partitioner::fingerprint(part))
          .write(path_);
    }  // writer fleet fully torn down before the resumed fleet spawns
    RunSpec spec;
    spec.nranks = read_ranks;
    spec.ns = ns;
    spec.restart = path_;
    MpSession reader(spec);
    reader.run(post);
    return reader.gather();
  }

  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  dycore::DycoreConfig cfg_;
  std::string path_;
};

class ShmRestart
    : public ShmRestartBase,
      public ::testing::WithParamInterface<std::tuple<Index, precision::NsMode>> {};

TEST_P(ShmRestart, ResumeMatchesUnbrokenThreadedRunBitwise) {
  // The unbroken reference runs on the in-process threaded pool: the
  // shm fleet is already gated bitwise against it (test_multiprocess.cpp),
  // so matching it here proves the checkpoint survives the process AND
  // transport boundary without perturbing a single bit.
  const auto [nranks, ns] = GetParam();
  cfg_.ns = ns;
  ParallelModel unbroken(mesh_, trsk_, cfg_, nranks,
                         dycore::initBaroclinicWave(mesh_, cfg_));
  unbroken.run(8);
  const dycore::State resumed = brokenShmRun(nranks, nranks, 4, 4, ns);
  expectStatesBitwise(unbroken.gatherState(), resumed, mesh_, cfg_.nlev);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndPrecision, ShmRestart,
    ::testing::Combine(::testing::Values<Index>(1, 2, 4, 7),
                       ::testing::Values(precision::NsMode::kDouble,
                                         precision::NsMode::kSingle)),
    [](const auto& info) {
      return "r" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == precision::NsMode::kDouble ? "_DP"
                                                                    : "_MIX");
    });

class ShmResize : public ShmRestartBase,
                  public ::testing::WithParamInterface<std::pair<Index, Index>> {};

TEST_P(ShmResize, RepartitionOnRestartIsBitwise) {
  // Checkpoint at N rank processes, resume at M: the canonical global
  // ordering makes the writer fleet's size invisible to the reader fleet.
  const auto [from, to] = GetParam();
  ParallelModel unbroken(mesh_, trsk_, cfg_, to,
                         dycore::initBaroclinicWave(mesh_, cfg_));
  unbroken.run(8);
  const dycore::State resumed =
      brokenShmRun(from, to, 4, 4, precision::NsMode::kDouble);
  expectStatesBitwise(unbroken.gatherState(), resumed, mesh_, cfg_.nlev);
}

INSTANTIATE_TEST_SUITE_P(Resizes, ShmResize,
                         ::testing::Values(std::make_pair<Index, Index>(4, 2),
                                           std::make_pair<Index, Index>(2, 4),
                                           std::make_pair<Index, Index>(7, 3)),
                         [](const auto& info) {
                           return std::to_string(info.param.first) + "to" +
                                  std::to_string(info.param.second);
                         });

TEST_F(ShmRestartBase, WorkerRejectsMissingRestartFile) {
  // Every worker opens the snapshot itself; a missing file must fail the
  // whole session (exit-code propagation) instead of wedging the fleet.
  RunSpec spec;
  spec.nranks = 2;
  spec.restart = path_ + ".does-not-exist";
  EXPECT_THROW(
      {
        MpSession session(spec);
        session.run(1);
      },
      std::runtime_error);
}

} // namespace
} // namespace grist

int main(int argc, char** argv) {
  // Worker dispatch MUST precede gtest: rank processes re-enter this binary.
  if (auto rc = grist::core::mp::maybeRunWorker(argc, argv)) return *rc;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
