// The elastic restart gate: checkpoints are written in the global canonical
// ordering, so a resume must be bitwise identical to the unbroken run for
// ANY rank count -- same count, fewer ranks, more ranks -- in both NS
// precision modes. Also covers the Model-level snapshot (mid-tracer-window
// resume through the DIAG section) and the CONFIG-mismatch rejections.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <tuple>

#include "grist/core/checkpoint.hpp"
#include "grist/core/model.hpp"
#include "grist/core/parallel_model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/restart.hpp"
#include "grist/io/snapshot.hpp"
#include "grist/partition/partitioner.hpp"

namespace grist::core {
namespace {

namespace fs = std::filesystem;

void expectStatesBitwise(const dycore::State& a, const dycore::State& b) {
  ASSERT_EQ(a.nlev, b.nlev);
  ASSERT_EQ(a.tracers.size(), b.tracers.size());
  for (std::size_t i = 0; i < a.delp.size(); ++i) {
    ASSERT_EQ(a.delp.data()[i], b.delp.data()[i]) << "delp[" << i << "]";
    ASSERT_EQ(a.theta.data()[i], b.theta.data()[i]) << "theta[" << i << "]";
  }
  for (std::size_t i = 0; i < a.u.size(); ++i) {
    ASSERT_EQ(a.u.data()[i], b.u.data()[i]) << "u[" << i << "]";
  }
  for (std::size_t i = 0; i < a.w.size(); ++i) {
    ASSERT_EQ(a.w.data()[i], b.w.data()[i]) << "w[" << i << "]";
    ASSERT_EQ(a.phi.data()[i], b.phi.data()[i]) << "phi[" << i << "]";
  }
  for (std::size_t t = 0; t < a.tracers.size(); ++t) {
    for (std::size_t i = 0; i < a.tracers[t].size(); ++i) {
      ASSERT_EQ(a.tracers[t].data()[i], b.tracers[t].data()[i])
          << "tracer " << t << "[" << i << "]";
    }
  }
}

class ElasticBase : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 8;
    cfg_.dt = 450.0;
    // Per-process file: ctest runs each TEST as its own process in
    // parallel, so a shared fixed path would race between test cases.
    path_ = (fs::temp_directory_path() /
             ("grist_elastic_ckpt." + std::to_string(::getpid()) + ".grist"))
                .string();
  }
  void TearDown() override { fs::remove(path_); }

  std::uint64_t partFp(Index nranks) const {
    return partition::Partitioner::fingerprint(
        partition::Partitioner::partition(mesh_, nranks));
  }

  /// Run `pre` steps at `write_ranks`, checkpoint THROUGH A FILE, then
  /// resume at `read_ranks` for `post` more steps; return the final
  /// gathered global state.
  dycore::State brokenRun(Index write_ranks, Index read_ranks, int pre,
                          int post) {
    {
      ParallelModel writer(mesh_, trsk_, cfg_, write_ranks,
                           dycore::initBaroclinicWave(mesh_, cfg_));
      writer.run(pre);
      captureDynRun(writer.gatherState(), cfg_, mesh_.level, pre, write_ranks,
                    partFp(write_ranks))
          .write(path_);
    }
    long step_base = 0;
    const dycore::State resumed =
        loadDynRestart(path_, mesh_, cfg_, 1, &step_base);
    EXPECT_EQ(step_base, pre);
    ParallelModel reader(mesh_, trsk_, cfg_, read_ranks,
                         dycore::initBaroclinicWave(mesh_, cfg_));
    reader.restoreGlobalState(resumed);
    reader.run(post);
    return reader.gatherState();
  }

  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  dycore::DycoreConfig cfg_;
  std::string path_;
};

class ElasticRestart
    : public ElasticBase,
      public ::testing::WithParamInterface<std::tuple<Index, precision::NsMode>> {
 protected:
  void SetUp() override {
    ElasticBase::SetUp();
    cfg_.ns = std::get<1>(GetParam());
  }
};

TEST_P(ElasticRestart, ResumeMatchesUnbrokenRunBitwise) {
  const Index nranks = std::get<0>(GetParam());
  ParallelModel unbroken(mesh_, trsk_, cfg_, nranks,
                         dycore::initBaroclinicWave(mesh_, cfg_));
  unbroken.run(8);
  const dycore::State resumed = brokenRun(nranks, nranks, 4, 4);
  expectStatesBitwise(resumed, unbroken.gatherState());
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndPrecision, ElasticRestart,
    ::testing::Combine(::testing::Values<Index>(1, 2, 4, 7),
                       ::testing::Values(precision::NsMode::kDouble,
                                         precision::NsMode::kSingle)),
    [](const auto& info) {
      return "r" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == precision::NsMode::kDouble ? "_DP"
                                                                    : "_MIX");
    });

class ElasticResize
    : public ElasticBase,
      public ::testing::WithParamInterface<std::pair<Index, Index>> {};

TEST_P(ElasticResize, RepartitionOnRestartIsBitwise) {
  // Checkpoint at N ranks, restore at M: the canonical global ordering
  // makes the writer's decomposition invisible to the reader.
  const auto [from, to] = GetParam();
  ParallelModel unbroken(mesh_, trsk_, cfg_, to,
                         dycore::initBaroclinicWave(mesh_, cfg_));
  unbroken.run(8);
  const dycore::State resumed = brokenRun(from, to, 4, 4);
  expectStatesBitwise(resumed, unbroken.gatherState());
}

INSTANTIATE_TEST_SUITE_P(Resizes, ElasticResize,
                         ::testing::Values(std::make_pair<Index, Index>(4, 2),
                                           std::make_pair<Index, Index>(2, 4),
                                           std::make_pair<Index, Index>(7, 3)),
                         [](const auto& info) {
                           return std::to_string(info.param.first) + "to" +
                                  std::to_string(info.param.second);
                         });

TEST_F(ElasticBase, RestoreRejectsForeignRunShape) {
  ParallelModel model(mesh_, trsk_, cfg_, 2,
                      dycore::initBaroclinicWave(mesh_, cfg_));
  dycore::State wrong(mesh_, cfg_.nlev + 2, 1);
  EXPECT_THROW(model.restoreGlobalState(wrong), std::runtime_error);
  // And the file-level validator names the offending CONFIG field.
  captureDynRun(model.gatherState(), cfg_, mesh_.level, 4, 2, partFp(2))
      .write(path_);
  try {
    loadDynRestart(path_, mesh_, cfg_, /*ntracers=*/3, nullptr);
    FAIL() << "expected ntracers rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CONFIG mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("ntracers"), std::string::npos) << what;
  }
  dycore::DycoreConfig other = cfg_;
  other.dt = 300.0;
  try {
    loadDynRestart(path_, mesh_, other, 1, nullptr);
    FAIL() << "expected dt rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("dt"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Model-level snapshots (full driver: tracer transport + physics cadences).

class ModelSnapshot : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(2);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.dyn.nlev = 10;
    cfg_.dyn.dt = 600.0;
    cfg_.trac_interval = 4;
    cfg_.phy_interval = 1 << 20;  // physics off: its caches are re-warmable,
                                  // not checkpointed (see DESIGN.md)
    path_ = (fs::temp_directory_path() /
             ("grist_model_snap." + std::to_string(::getpid()) + ".grist"))
                .string();
  }
  void TearDown() override { fs::remove(path_); }

  dycore::State coldStart() const {
    return dycore::initBaroclinicWave(mesh_, cfg_.dyn, 3);
  }

  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  ModelConfig cfg_;
  std::string path_;
};

TEST_F(ModelSnapshot, MidTracerWindowResumeIsBitwise) {
  // Step 6 is NOT a tracer boundary (trac_interval 4): the DIAG section
  // carries the half-accumulated mass-flux window, so the resume is exact
  // where the legacy restart path could only resync.
  Model straight(mesh_, trsk_, cfg_, coldStart());
  straight.run(12);

  Model first(mesh_, trsk_, cfg_, coldStart());
  first.run(6);
  first.snapshot().write(path_);

  Model second(mesh_, trsk_, cfg_, coldStart());
  second.restore(io::Snapshot::read(path_));
  EXPECT_EQ(second.dynSteps(), 6);
  EXPECT_DOUBLE_EQ(second.simSeconds(), first.simSeconds());
  second.run(6);

  EXPECT_DOUBLE_EQ(second.simSeconds(), straight.simSeconds());
  expectStatesBitwise(second.state(), straight.state());
  EXPECT_EQ(second.tskin(), straight.tskin());
  EXPECT_EQ(second.accumulatedPrecip(), straight.accumulatedPrecip());
}

TEST_F(ModelSnapshot, PhysicsCoupledResumeIsNearExact) {
  // With physics on, the suite's re-warmable caches (radiation cache, soil
  // columns) are deliberately not checkpointed; agreement is close, not
  // bitwise -- same contract as the seed restart path.
  ModelConfig cfg = cfg_;
  cfg.phy_interval = 4;
  Model straight(mesh_, trsk_, cfg,
                 dycore::initBaroclinicWave(mesh_, cfg.dyn, 3));
  straight.run(16);

  Model first(mesh_, trsk_, cfg, dycore::initBaroclinicWave(mesh_, cfg.dyn, 3));
  first.run(8);
  first.snapshot().write(path_);

  Model second(mesh_, trsk_, cfg,
               dycore::initBaroclinicWave(mesh_, cfg.dyn, 3));
  second.restore(io::Snapshot::read(path_));
  second.run(8);

  double umax = 0, udiff = 0;
  for (std::size_t i = 0; i < straight.state().u.size(); ++i) {
    umax = std::max(umax, std::abs(straight.state().u.data()[i]));
    udiff = std::max(udiff, std::abs(second.state().u.data()[i] -
                                     straight.state().u.data()[i]));
  }
  EXPECT_LT(udiff, 1e-2 * umax);
}

TEST_F(ModelSnapshot, LegacyRestartFileResumes) {
  // A seed-era writeRestart file feeds the same restore() entry point.
  Model first(mesh_, trsk_, cfg_, coldStart());
  first.run(4);  // tracer boundary: legacy restarts are only exact there
  io::writeRestart(path_, first.state(), first.tskin(), first.simSeconds());

  Model second(mesh_, trsk_, cfg_, coldStart());
  second.restore(io::Snapshot::read(path_));
  EXPECT_DOUBLE_EQ(second.simSeconds(), first.simSeconds());
  EXPECT_EQ(second.dynSteps(), 0);  // legacy: step count unknown, reset

  Model straight(mesh_, trsk_, cfg_, coldStart());
  straight.run(8);
  second.run(4);
  expectStatesBitwise(second.state(), straight.state());
}

TEST_F(ModelSnapshot, ConfigMismatchNamesOffendingField) {
  Model first(mesh_, trsk_, cfg_, coldStart());
  first.run(2);
  first.snapshot().write(path_);
  const io::Snapshot snap = io::Snapshot::read(path_);

  ModelConfig bad_dt = cfg_;
  bad_dt.dyn.dt = 450.0;
  Model m1(mesh_, trsk_, bad_dt,
           dycore::initBaroclinicWave(mesh_, bad_dt.dyn, 3));
  try {
    m1.restore(snap);
    FAIL() << "expected dt rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CONFIG mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("dt"), std::string::npos) << what;
  }

  ModelConfig bad_trac = cfg_;
  bad_trac.trac_interval = 5;
  Model m2(mesh_, trsk_, bad_trac,
           dycore::initBaroclinicWave(mesh_, bad_trac.dyn, 3));
  try {
    m2.restore(snap);
    FAIL() << "expected trac_interval rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trac_interval"), std::string::npos);
  }
}

} // namespace
} // namespace grist::core
