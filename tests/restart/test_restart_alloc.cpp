// Zero-allocation guard for restore-then-step: restoreGlobalState() is
// in-place (exchange plans, bands and packed buffers survive untouched),
// so a warm ParallelModel that just swallowed a checkpoint must step with
// zero heap allocations -- a mid-run restore cannot quietly demote the
// pool back to a cold path.
//
// This binary overrides the global allocation operators to count heap
// traffic, so it is its own test executable (see tests/CMakeLists.txt) --
// the same pattern as tests/core/test_parallel_model_alloc.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>

#include "grist/core/parallel_model.hpp"
#include "grist/dycore/init.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. malloc-backed so the override itself is free of
// recursion; every flavor of operator new/delete funnels through here.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long> g_heap_allocs{0};
} // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  ++g_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace grist::core {
namespace {

long allocsDuring(const std::function<void()>& fn) {
  const long before = g_heap_allocs.load();
  fn();
  return g_heap_allocs.load() - before;
}

class RestoreAllocationGuard : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 8;
    cfg_.dt = 450.0;
  }
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  dycore::DycoreConfig cfg_;
};

TEST_F(RestoreAllocationGuard, StepAfterRestoreIsHeapFree) {
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);

  // The checkpoint donor: a few steps ahead of the restored model.
  ParallelModel donor(mesh_, trsk_, cfg_, /*nranks=*/4, initial);
  donor.run(3);
  const dycore::State checkpoint = donor.gatherState();

  ParallelModel model(mesh_, trsk_, cfg_, /*nranks=*/4, initial);
  const auto step = [&] { model.step(); };
  // Warm-up: per-thread Workspace arenas, OpenMP teams, and the timing
  // registry's section entry all materialize on the first steps.
  step();
  step();
  EXPECT_EQ(allocsDuring(step), 0);

  // The restore itself may allocate (it is rare and off the step path),
  // but the very next steps must stay heap-free: the in-place scatter kept
  // every exchange-plan pointer valid.
  model.restoreGlobalState(checkpoint);
  EXPECT_EQ(allocsDuring(step), 0);
  EXPECT_EQ(allocsDuring(step), 0);
}

} // namespace
} // namespace grist::core
