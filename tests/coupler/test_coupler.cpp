#include "grist/coupler/coupler.hpp"

#include <gtest/gtest.h>

#include "grist/common/math.hpp"
#include "grist/dycore/init.hpp"

namespace grist::coupler {
namespace {

using constants::kKappa;
using constants::kP0;

class CouplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(2);
    cfg_.nlev = 10;
    state_ = dycore::initBaroclinicWave(mesh_, cfg_, /*ntracers=*/3);
    tskin_.assign(mesh_.ncells, 290.0);
  }
  grid::HexMesh mesh_;
  dycore::DycoreConfig cfg_;
  dycore::State state_;
  std::vector<double> tskin_;
};

TEST_F(CouplerTest, ExtractsConsistentThermodynamics) {
  Coupler coupler(mesh_, cfg_.nlev);
  physics::PhysicsInput in(mesh_.ncells, cfg_.nlev);
  coupler.stateToPhysics(state_, tskin_, /*sim_seconds=*/0.0, in);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      // T = theta * Pi with Pi from the state's own pressure field; at the
      // hydrostatic initial state p == pi so this is exact.
      const double pi_exner = std::pow(in.pmid(c, k) / kP0, kKappa);
      EXPECT_NEAR(in.t(c, k), state_.theta(c, k) * pi_exner, 0.5);
      // Interface pressures bracket the mid-level value.
      EXPECT_LT(in.pint(c, k), in.pmid(c, k));
      EXPECT_GT(in.pint(c, k + 1), in.pmid(c, k));
      // Heights decrease downward and end at the surface.
      EXPECT_GT(in.zint(c, k), in.zint(c, k + 1));
    }
    EXPECT_NEAR(in.zint(c, cfg_.nlev), 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(in.tskin[c], 290.0);
    EXPECT_GE(in.coszr[c], 0.0);
    EXPECT_LE(in.coszr[c], 1.0);
  }
}

TEST_F(CouplerTest, ZonalJetAppearsAsPositiveU) {
  Coupler coupler(mesh_, cfg_.nlev);
  physics::PhysicsInput in(mesh_.ncells, cfg_.nlev);
  coupler.stateToPhysics(state_, tskin_, 0.0, in);
  // Midlatitude cells should see the westerly jet in the reconstructed u.
  int positive = 0, total = 0;
  for (Index c = 0; c < mesh_.ncells; ++c) {
    const double lat = mesh_.cell_ll[c].lat;
    if (lat > 0.5 && lat < 1.0) {
      ++total;
      if (in.u(c, cfg_.nlev - 1) > 0) ++positive;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(positive, 0.8 * total);
}

TEST_F(CouplerTest, HeatingTendencyWarmsState) {
  Coupler coupler(mesh_, cfg_.nlev);
  physics::PhysicsInput in(mesh_.ncells, cfg_.nlev);
  coupler.stateToPhysics(state_, tskin_, 0.0, in);
  physics::PhysicsOutput out(mesh_.ncells, cfg_.nlev);
  out.zero();
  const double heating = 1.0e-4;  // K/s
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) out.dtdt(c, k) = heating;
  }
  const double dt = 600.0;
  dycore::State before = state_;
  coupler.applyTendencies(out, dt, state_);
  physics::PhysicsInput after(mesh_.ncells, cfg_.nlev);
  coupler.stateToPhysics(state_, tskin_, 0.0, after);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      // The coupler applies dT at constant pressure (dtheta = dT/Pi). The
      // re-diagnosed T, however, comes from the constant-volume EOS (phi is
      // fixed until the next dynamics step), so the instantaneous apparent
      // warming lands between h*dt and (cp/cv)*h*dt = 1.4*h*dt.
      const double dT = after.t(c, k) - in.t(c, k);
      EXPECT_GT(dT, 0.95 * heating * dt);
      EXPECT_LT(dT, 1.45 * heating * dt);
      // theta increased as well.
      EXPECT_GT(state_.theta(c, k), before.theta(c, k));
    }
  }
}

TEST_F(CouplerTest, MoistureTendencyClipsAtZero) {
  Coupler coupler(mesh_, cfg_.nlev);
  physics::PhysicsOutput out(mesh_.ncells, cfg_.nlev);
  out.zero();
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) out.dqvdt(c, k) = -1.0;  // absurd sink
  }
  coupler.applyTendencies(out, 600.0, state_);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      EXPECT_GE(state_.tracers[0](c, k), 0.0);
    }
  }
}

TEST_F(CouplerTest, EastwardWindTendencyAcceleratesEastEdges) {
  Coupler coupler(mesh_, cfg_.nlev);
  physics::PhysicsOutput out(mesh_.ncells, cfg_.nlev);
  out.zero();
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) out.dudt(c, k) = 1.0e-3;  // m/s^2 east
  }
  dycore::State before = state_;
  const double dt = 100.0;
  coupler.applyTendencies(out, dt, state_);
  // Edges whose normal has a strong eastward component accelerate.
  for (Index e = 0; e < mesh_.nedges; ++e) {
    const Vec3 r = mesh_.edge_x[e];
    Vec3 east{-r.y, r.x, 0};
    const double n = east.norm();
    if (n < 0.5) continue;
    east = east * (1.0 / n);
    const double proj = east.dot(mesh_.edge_normal[e]);
    if (proj > 0.9) {
      EXPECT_GT(state_.u(e, 0) - before.u(e, 0), 0.5 * 1.0e-3 * dt);
    }
  }
}

TEST_F(CouplerTest, ShapeMismatchThrows) {
  Coupler coupler(mesh_, cfg_.nlev);
  physics::PhysicsInput wrong(mesh_.ncells, cfg_.nlev + 1);
  EXPECT_THROW(coupler.stateToPhysics(state_, tskin_, 0.0, wrong),
               std::invalid_argument);
  physics::PhysicsInput ok(mesh_.ncells, cfg_.nlev);
  std::vector<double> bad_tskin(3, 290.0);
  EXPECT_THROW(coupler.stateToPhysics(state_, bad_tskin, 0.0, ok),
               std::invalid_argument);
}

} // namespace
} // namespace grist::coupler
