// Batched-ensemble correctness gates (ctest label ENSEMBLE): every member
// stepped through EnsembleRunner must stay BITWISE identical to the same
// seed-matched initial state run solo through Model -- across member counts
// M in {2,4,8}, DP and MIX dycore precision, fp32 and quantized (bf16/int8)
// ML physics, and both the cross-member-fused and per-member GEMM modes.
//
// The comparison covers the full prognostic state (delp/theta/u/w/phi, all
// tracers) plus the land bookkeeping (tskin, accumulated precip), after a
// step count that crosses several tracer and physics cadence boundaries.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "grist/core/ensemble_runner.hpp"
#include "grist/core/model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"

namespace grist::core {
namespace {

constexpr int kGlevel = 3;   // 642 cells
constexpr int kNlev = 10;
constexpr int kSteps = 15;   // 3 tracer windows + 3 physics steps (4/5 cadence)

long bitDiff(const parallel::Field& a, const parallel::Field& b) {
  if (a.size() != b.size()) return static_cast<long>(a.size() + b.size());
  long n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(double)) != 0) ++n;
  }
  return n;
}

long bitDiff(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return static_cast<long>(a.size() + b.size());
  long n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) ++n;
  }
  return n;
}

/// Total mismatching doubles between ensemble member m and a solo model.
long memberDiff(const EnsembleRunner& runner, int m, const Model& solo) {
  long bad = 0;
  const dycore::State& e = runner.state(m);
  const dycore::State& s = solo.state();
  bad += bitDiff(e.delp, s.delp);
  bad += bitDiff(e.theta, s.theta);
  bad += bitDiff(e.u, s.u);
  bad += bitDiff(e.w, s.w);
  bad += bitDiff(e.phi, s.phi);
  EXPECT_EQ(e.tracers.size(), s.tracers.size());
  for (std::size_t t = 0; t < s.tracers.size(); ++t) {
    bad += bitDiff(e.tracers[t], s.tracers[t]);
  }
  bad += bitDiff(runner.tskin(m), solo.tskin());
  bad += bitDiff(runner.accumulatedPrecip(m), solo.accumulatedPrecip());
  return bad;
}

class EnsembleBitwise : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mesh_ = new grid::HexMesh(grid::buildHexMesh(kGlevel));
    trsk_ = new grid::TrskWeights(grid::buildTrskWeights(*mesh_));
  }
  static void TearDownTestSuite() {
    delete trsk_;
    delete mesh_;
    trsk_ = nullptr;
    mesh_ = nullptr;
  }

  static ModelConfig mlConfig(precision::NsMode ns,
                              ml::Precision prec = ml::Precision::kFp32) {
    ModelConfig mc;
    mc.dyn.nlev = kNlev;
    mc.dyn.dt = 300.0;
    mc.dyn.ns = ns;
    mc.trac_interval = 4;
    mc.phy_interval = 5;
    mc.scheme = PhysicsScheme::kMl;
    mc.ml.precision = prec;
    // Untrained random nets exceed the trained-net quantization envelope;
    // widen the acceptance gate like tests/ml/test_ml_alloc.cpp does.
    if (prec == ml::Precision::kInt8) mc.ml.quant_tolerance = 0.2;
    ml::Q1Q2NetConfig qcfg;
    qcfg.nlev = kNlev;
    qcfg.channels = 12;
    qcfg.res_units = 1;
    mc.q1q2 = std::make_shared<ml::Q1Q2Net>(qcfg);
    ml::RadMlpConfig rcfg;
    rcfg.nlev = kNlev;
    rcfg.hidden = 16;
    mc.rad_mlp = std::make_shared<ml::RadMlp>(rcfg);
    return mc;
  }

  /// Run M members batched and each member solo from the same seeds; the
  /// trajectories must agree to the last bit.
  static void expectMembersMatchSolo(const ModelConfig& mc, int members,
                                     bool cross_member_gemm,
                                     std::uint64_t seed = 42) {
    dycore::State initial = dycore::initBaroclinicWave(*mesh_, mc.dyn, 3);
    EnsembleConfig ec;
    ec.model = mc;
    ec.members = members;
    ec.perturb_seed = seed;
    ec.cross_member_gemm = cross_member_gemm;
    EnsembleRunner runner(*mesh_, *trsk_, ec, initial);
    runner.run(kSteps);
    for (int m = 0; m < members; ++m) {
      dycore::State s = initial;
      if (seed != 0) {
        EnsembleRunner::perturbState(s, EnsembleRunner::memberSeed(seed, m),
                                     ec.perturb_amplitude);
      }
      Model solo(*mesh_, *trsk_, mc, std::move(s));
      solo.run(kSteps);
      EXPECT_EQ(memberDiff(runner, m, solo), 0)
          << "member " << m << " of " << members << " diverged";
    }
  }

  static grid::HexMesh* mesh_;
  static grid::TrskWeights* trsk_;
};

grid::HexMesh* EnsembleBitwise::mesh_ = nullptr;
grid::TrskWeights* EnsembleBitwise::trsk_ = nullptr;

TEST_F(EnsembleBitwise, MembersMatchSoloDp) {
  const ModelConfig mc = mlConfig(precision::NsMode::kDouble);
  for (const int members : {2, 4, 8}) {
    expectMembersMatchSolo(mc, members, /*cross_member_gemm=*/true);
  }
}

TEST_F(EnsembleBitwise, MembersMatchSoloMix) {
  const ModelConfig mc = mlConfig(precision::NsMode::kSingle);
  for (const int members : {2, 4, 8}) {
    expectMembersMatchSolo(mc, members, /*cross_member_gemm=*/true);
  }
}

TEST_F(EnsembleBitwise, MembersMatchSoloPerMemberGemm) {
  // The batching toggle changes only how the GEMMs are grouped, never the
  // numbers.
  const ModelConfig mc = mlConfig(precision::NsMode::kDouble);
  expectMembersMatchSolo(mc, 4, /*cross_member_gemm=*/false);
}

TEST_F(EnsembleBitwise, MembersMatchSoloQuantizedBf16) {
  for (const auto ns : {precision::NsMode::kDouble, precision::NsMode::kSingle}) {
    const ModelConfig mc = mlConfig(ns, ml::Precision::kBf16);
    expectMembersMatchSolo(mc, 4, /*cross_member_gemm=*/true);
  }
}

TEST_F(EnsembleBitwise, MembersMatchSoloQuantizedInt8) {
  const ModelConfig mc =
      mlConfig(precision::NsMode::kDouble, ml::Precision::kInt8);
  expectMembersMatchSolo(mc, 4, /*cross_member_gemm=*/true);
}

TEST_F(EnsembleBitwise, UnperturbedMembersStayIdenticalAndSpreadIsZero) {
  const ModelConfig mc = mlConfig(precision::NsMode::kDouble);
  dycore::State initial = dycore::initBaroclinicWave(*mesh_, mc.dyn, 3);
  EnsembleConfig ec;
  ec.model = mc;
  ec.members = 4;
  ec.perturb_seed = 0;  // identical members
  EnsembleRunner runner(*mesh_, *trsk_, ec, initial);
  runner.run(kSteps);
  EXPECT_EQ(runner.globalSpread(), 0.0);
  for (int m = 1; m < runner.members(); ++m) {
    EXPECT_EQ(bitDiff(runner.state(m).delp, runner.state(0).delp), 0);
    EXPECT_EQ(bitDiff(runner.state(m).theta, runner.state(0).theta), 0);
    EXPECT_EQ(bitDiff(runner.state(m).u, runner.state(0).u), 0);
  }
  const std::vector<double> spread = runner.spreadSurfacePressure();
  for (const double s : spread) EXPECT_EQ(s, 0.0);
}

TEST_F(EnsembleBitwise, PerturbedMembersDevelopPositiveSpread) {
  const ModelConfig mc = mlConfig(precision::NsMode::kDouble);
  dycore::State initial = dycore::initBaroclinicWave(*mesh_, mc.dyn, 3);
  EnsembleConfig ec;
  ec.model = mc;
  ec.members = 4;
  ec.perturb_seed = 7;
  EnsembleRunner runner(*mesh_, *trsk_, ec, initial);
  // The perturbation lives in theta, so ps spread is zero until dynamics
  // has run; the perturbed members must already differ bitwise though.
  EXPECT_EQ(runner.globalSpread(), 0.0);
  EXPECT_GT(bitDiff(runner.state(0).theta, runner.state(1).theta), 0);
  runner.run(kSteps);
  EXPECT_GT(runner.globalSpread(), 0.0);
  // Distinct member seeds: distinct trajectories.
  EXPECT_GT(bitDiff(runner.state(0).theta, runner.state(1).theta), 0);
}

TEST_F(EnsembleBitwise, MemberSeedsAreDistinctAndStable) {
  EXPECT_EQ(EnsembleRunner::memberSeed(42, 3), EnsembleRunner::memberSeed(42, 3));
  EXPECT_NE(EnsembleRunner::memberSeed(42, 0), EnsembleRunner::memberSeed(42, 1));
  EXPECT_NE(EnsembleRunner::memberSeed(42, 0), EnsembleRunner::memberSeed(43, 0));
}

TEST_F(EnsembleBitwise, RejectsBadConfigs) {
  const ModelConfig mc = mlConfig(precision::NsMode::kDouble);
  dycore::State initial = dycore::initBaroclinicWave(*mesh_, mc.dyn, 3);
  {
    EnsembleConfig ec;
    ec.model = mc;
    ec.members = 0;
    EXPECT_THROW(EnsembleRunner(*mesh_, *trsk_, ec, initial),
                 std::invalid_argument);
  }
  {
    EnsembleConfig ec;
    ec.model = mc;
    ec.model.q1q2 = nullptr;  // ML scheme without networks
    ec.members = 2;
    EXPECT_THROW(EnsembleRunner(*mesh_, *trsk_, ec, initial),
                 std::invalid_argument);
  }
}

} // namespace
} // namespace grist::core
