// Zero-allocation guard for the batched ensemble step: once the runner is
// warm (shared dycore scratch sized, per-thread Workspace arenas grown,
// coupler scratch built in the ctor, the fused physics batch allocated
// up front, quant snapshots cached), advancing all M members -- including
// steps that fire tracer transport AND physics -- must not touch the heap.
//
// This binary overrides the global allocation operators to count heap
// traffic, so it is its own test executable (see tests/CMakeLists.txt) --
// the same pattern as tests/ml/test_ml_alloc.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>

#include "grist/core/ensemble_runner.hpp"
#include "grist/dycore/init.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. malloc-backed so the override itself is free of
// recursion; every flavor of operator new/delete funnels through here.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long> g_heap_allocs{0};
} // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  ++g_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace grist::core {
namespace {

long allocsDuring(const std::function<void()>& fn) {
  const long before = g_heap_allocs.load();
  fn();
  return g_heap_allocs.load() - before;
}

ModelConfig mlConfig(int nlev, ml::Precision prec) {
  ModelConfig mc;
  mc.dyn.nlev = nlev;
  mc.dyn.dt = 300.0;
  mc.trac_interval = 4;
  mc.phy_interval = 5;
  mc.scheme = PhysicsScheme::kMl;
  mc.ml.precision = prec;
  if (prec == ml::Precision::kInt8) mc.ml.quant_tolerance = 0.2;
  ml::Q1Q2NetConfig qcfg;
  qcfg.nlev = nlev;
  qcfg.channels = 12;
  qcfg.res_units = 1;
  mc.q1q2 = std::make_shared<ml::Q1Q2Net>(qcfg);
  ml::RadMlpConfig rcfg;
  rcfg.nlev = nlev;
  rcfg.hidden = 16;
  mc.rad_mlp = std::make_shared<ml::RadMlp>(rcfg);
  return mc;
}

class EnsembleAllocationGuard : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mesh_ = new grid::HexMesh(grid::buildHexMesh(3));
    trsk_ = new grid::TrskWeights(grid::buildTrskWeights(*mesh_));
  }
  static void TearDownTestSuite() {
    delete trsk_;
    delete mesh_;
    trsk_ = nullptr;
    mesh_ = nullptr;
  }

  static void expectWarmStepsHeapFree(ml::Precision prec,
                                      bool cross_member_gemm) {
    const int nlev = 10;
    ModelConfig mc = mlConfig(nlev, prec);
    dycore::State initial = dycore::initBaroclinicWave(*mesh_, mc.dyn, 3);
    EnsembleConfig ec;
    ec.model = mc;
    ec.members = 4;
    ec.perturb_seed = 42;
    ec.cross_member_gemm = cross_member_gemm;
    EnsembleRunner runner(*mesh_, *trsk_, ec, initial);
    // Warm-up over one full cadence cycle (lcm(trac=4, phy=5) = 20 steps):
    // arenas, OpenMP teams, quant snapshots + gate, and the timing
    // registry's section entries all materialize here.
    runner.run(20);
    // The next cycle hits the same tracer/physics boundaries and must stay
    // off the heap entirely.
    EXPECT_EQ(allocsDuring([&] { runner.run(20); }), 0)
        << ml::precisionName(prec)
        << (cross_member_gemm ? " fused" : " per-member");
  }

  static grid::HexMesh* mesh_;
  static grid::TrskWeights* trsk_;
};

grid::HexMesh* EnsembleAllocationGuard::mesh_ = nullptr;
grid::TrskWeights* EnsembleAllocationGuard::trsk_ = nullptr;

TEST_F(EnsembleAllocationGuard, WarmStepsAreHeapFreeFp32Fused) {
  expectWarmStepsHeapFree(ml::Precision::kFp32, /*cross_member_gemm=*/true);
}

TEST_F(EnsembleAllocationGuard, WarmStepsAreHeapFreeFp32PerMember) {
  expectWarmStepsHeapFree(ml::Precision::kFp32, /*cross_member_gemm=*/false);
}

TEST_F(EnsembleAllocationGuard, WarmStepsAreHeapFreeQuantized) {
  expectWarmStepsHeapFree(ml::Precision::kBf16, /*cross_member_gemm=*/true);
  expectWarmStepsHeapFree(ml::Precision::kInt8, /*cross_member_gemm=*/true);
}

} // namespace
} // namespace grist::core
