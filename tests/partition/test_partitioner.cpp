#include "grist/partition/partitioner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "grist/grid/hex_mesh.hpp"

namespace grist::partition {
namespace {

class PartitionCounts : public ::testing::TestWithParam<Index> {
 protected:
  grid::HexMesh mesh_ = grid::buildHexMesh(4);  // 2562 cells
};

TEST_P(PartitionCounts, EveryCellAssignedInRange) {
  const Index nparts = GetParam();
  const std::vector<Index> part = Partitioner::partition(mesh_, nparts);
  ASSERT_EQ(static_cast<Index>(part.size()), mesh_.ncells);
  for (const Index p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, nparts);
  }
}

TEST_P(PartitionCounts, BalanceWithinFivePercent) {
  const Index nparts = GetParam();
  const std::vector<Index> part = Partitioner::partition(mesh_, nparts);
  const PartitionQuality q = Partitioner::evaluate(mesh_, part);
  EXPECT_EQ(q.parts, nparts);
  EXPECT_LE(q.imbalance, 0.05) << "nparts=" << nparts;
}

TEST_P(PartitionCounts, EdgeCutNearSurfaceScaling) {
  // Compact parts on a sphere have boundary ~ perimeter of a disk of area
  // ncells/nparts, i.e. cut ~ 3 sqrt(ncells * nparts) for hexagonal cells.
  // C=5 (~1.7x the isoperimetric ideal) rejects fragmented partitions while
  // accepting the quality a greedy+KL heuristic delivers.
  const Index nparts = GetParam();
  const std::vector<Index> part = Partitioner::partition(mesh_, nparts);
  const PartitionQuality q = Partitioner::evaluate(mesh_, part);
  const double bound = 5.0 * std::sqrt(static_cast<double>(mesh_.ncells) * nparts);
  EXPECT_LT(static_cast<double>(q.edge_cut), bound) << "nparts=" << nparts;
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionCounts, ::testing::Values(2, 3, 4, 7, 16, 32));

TEST(Partitioner, SinglePartIsTrivial) {
  const grid::HexMesh mesh = grid::buildHexMesh(2);
  const std::vector<Index> part = Partitioner::partition(mesh, 1);
  for (const Index p : part) EXPECT_EQ(p, 0);
  const PartitionQuality q = Partitioner::evaluate(mesh, part);
  EXPECT_EQ(q.edge_cut, 0);
  EXPECT_NEAR(q.imbalance, 0.0, 1e-12);
}

TEST(Partitioner, Deterministic) {
  const grid::HexMesh mesh = grid::buildHexMesh(3);
  EXPECT_EQ(Partitioner::partition(mesh, 8), Partitioner::partition(mesh, 8));
}

TEST(Partitioner, RejectsBadPartCounts) {
  const grid::HexMesh mesh = grid::buildHexMesh(1);
  EXPECT_THROW(Partitioner::partition(mesh, 0), std::invalid_argument);
  EXPECT_THROW(Partitioner::partition(mesh, mesh.ncells + 1), std::invalid_argument);
}

TEST(Partitioner, EvaluateRejectsSizeMismatch) {
  const grid::HexMesh mesh = grid::buildHexMesh(1);
  std::vector<Index> bad(3, 0);
  EXPECT_THROW(Partitioner::evaluate(mesh, bad), std::invalid_argument);
}

TEST(Partitioner, PartsAreMostlyConnected) {
  // Region growth + refinement should keep parts contiguous; allow a couple
  // of stragglers from the enclosure fallback.
  const grid::HexMesh mesh = grid::buildHexMesh(4);
  const Index nparts = 12;
  const std::vector<Index> part = Partitioner::partition(mesh, nparts);
  int components = 0;
  std::vector<int> color(mesh.ncells, -1);
  for (Index c0 = 0; c0 < mesh.ncells; ++c0) {
    if (color[c0] >= 0) continue;
    ++components;
    // BFS inside the part.
    std::vector<Index> stack{c0};
    color[c0] = components;
    while (!stack.empty()) {
      const Index c = stack.back();
      stack.pop_back();
      for (Index k = mesh.cell_offset[c]; k < mesh.cell_offset[c + 1]; ++k) {
        const Index nb = mesh.cell_cells[k];
        if (color[nb] < 0 && part[nb] == part[c]) {
          color[nb] = components;
          stack.push_back(nb);
        }
      }
    }
  }
  EXPECT_LE(components, nparts + 3);
}

} // namespace
} // namespace grist::partition
