#include "grist/grid/hex_mesh.hpp"

#include <gtest/gtest.h>

#include <set>

#include "grist/grid/counts.hpp"

namespace grist::grid {
namespace {

using constants::kEarthRadius;
using constants::kPi;

class HexMeshLevels : public ::testing::TestWithParam<int> {
 protected:
  HexMesh mesh_ = buildHexMesh(GetParam());
};

TEST_P(HexMeshLevels, CountsMatchTable2Formulas) {
  const GridCounts expect = countsForLevel(GetParam());
  EXPECT_EQ(mesh_.ncells, expect.cells);
  EXPECT_EQ(mesh_.nedges, expect.edges);
  EXPECT_EQ(mesh_.nvertices, expect.vertices);
}

TEST_P(HexMeshLevels, CellAreasTileTheSphere) {
  double total = 0.0;
  for (const double a : mesh_.cell_area) {
    EXPECT_GT(a, 0.0);
    total += a;
  }
  const double sphere = 4.0 * kPi * kEarthRadius * kEarthRadius;
  EXPECT_NEAR(total / sphere, 1.0, 1e-9);
}

TEST_P(HexMeshLevels, VertexAreasTileTheSphere) {
  double total = 0.0;
  for (const double a : mesh_.vtx_area) {
    EXPECT_GT(a, 0.0);
    total += a;
  }
  const double sphere = 4.0 * kPi * kEarthRadius * kEarthRadius;
  EXPECT_NEAR(total / sphere, 1.0, 1e-9);
}

TEST_P(HexMeshLevels, KitePartitionOfUnity) {
  // Kites of a vertex partition its area (exactly, by construction), and
  // per-cell kite sums rebuild cell areas.
  std::vector<double> cell_from_kites(mesh_.ncells, 0.0);
  for (Index v = 0; v < mesh_.nvertices; ++v) {
    double vsum = 0.0;
    for (int k = 0; k < 3; ++k) {
      EXPECT_GT(mesh_.vtx_kite_area[v][k], 0.0);
      vsum += mesh_.vtx_kite_area[v][k];
      cell_from_kites[mesh_.vtx_cells[v][k]] += mesh_.vtx_kite_area[v][k];
    }
    EXPECT_NEAR(vsum / mesh_.vtx_area[v], 1.0, 1e-12);
  }
  for (Index c = 0; c < mesh_.ncells; ++c) {
    EXPECT_NEAR(cell_from_kites[c] / mesh_.cell_area[c], 1.0, 1e-12);
  }
}

TEST_P(HexMeshLevels, ExactlyTwelvePentagons) {
  int pentagons = 0;
  for (Index c = 0; c < mesh_.ncells; ++c) {
    const int deg = mesh_.cellDegree(c);
    EXPECT_TRUE(deg == 5 || deg == 6);
    if (deg == 5) ++pentagons;
  }
  EXPECT_EQ(pentagons, 12);
}

TEST_P(HexMeshLevels, EdgeOrientationConventions) {
  for (Index e = 0; e < mesh_.nedges; ++e) {
    // Normal points from cell 0 toward cell 1.
    const Vec3 d = mesh_.cell_x[mesh_.edge_cell[e][1]] - mesh_.cell_x[mesh_.edge_cell[e][0]];
    EXPECT_GT(mesh_.edge_normal[e].dot(d), 0.0);
    // Tangent = r x n and points vertex 0 -> vertex 1.
    const Vec3 dv = mesh_.vtx_x[mesh_.edge_vertex[e][1]] - mesh_.vtx_x[mesh_.edge_vertex[e][0]];
    EXPECT_GE(mesh_.edge_tangent[e].dot(dv), 0.0);
    // Orthonormal pair in the tangent plane.
    EXPECT_NEAR(mesh_.edge_normal[e].dot(mesh_.edge_tangent[e]), 0.0, 1e-12);
    EXPECT_NEAR(mesh_.edge_normal[e].norm(), 1.0, 1e-12);
    EXPECT_NEAR(mesh_.edge_normal[e].dot(mesh_.edge_x[e]), 0.0, 1e-12);
    EXPECT_GT(mesh_.edge_de[e], 0.0);
    EXPECT_GT(mesh_.edge_le[e], 0.0);
  }
}

TEST_P(HexMeshLevels, CellRingsAreConsistent) {
  for (Index c = 0; c < mesh_.ncells; ++c) {
    const Index lo = mesh_.cell_offset[c], hi = mesh_.cell_offset[c + 1];
    std::set<Index> ring_vertices;
    for (Index k = lo; k < hi; ++k) {
      const Index e = mesh_.cell_edges[k];
      // The cell is one of the edge's two cells, and the sign matches side.
      const bool is0 = mesh_.edge_cell[e][0] == c;
      const bool is1 = mesh_.edge_cell[e][1] == c;
      EXPECT_TRUE(is0 || is1);
      EXPECT_DOUBLE_EQ(mesh_.cell_edge_sign[k], is0 ? 1.0 : -1.0);
      // Neighbor bookkeeping.
      EXPECT_EQ(mesh_.cell_cells[k], is0 ? mesh_.edge_cell[e][1] : mesh_.edge_cell[e][0]);
      // Ring vertex k is shared by edges k and k+1.
      const Index v = mesh_.cell_vertices[k];
      ASSERT_NE(v, kInvalidIndex);
      const Index enext = mesh_.cell_edges[k + 1 < hi ? k + 1 : lo];
      const bool on_e = v == mesh_.edge_vertex[e][0] || v == mesh_.edge_vertex[e][1];
      const bool on_next = v == mesh_.edge_vertex[enext][0] || v == mesh_.edge_vertex[enext][1];
      EXPECT_TRUE(on_e && on_next);
      ring_vertices.insert(v);
    }
    // All ring vertices distinct.
    EXPECT_EQ(static_cast<Index>(ring_vertices.size()), hi - lo);
  }
}

TEST_P(HexMeshLevels, VertexCirculationSignsCloseTheLoop) {
  // Each vertex's three edges, traversed with their circulation signs,
  // approximate a closed loop: sum of signed normal displacements ~ 0.
  for (Index v = 0; v < mesh_.nvertices; ++v) {
    Vec3 net{};
    for (int k = 0; k < 3; ++k) {
      const Index e = mesh_.vtx_edges[v][k];
      net = net + mesh_.edge_normal[e] * (mesh_.vtx_edge_sign[v][k] * mesh_.edge_de[e]);
    }
    // Closure in the tangent plane at v (project out radial part).
    const Vec3 tangential = net - mesh_.vtx_x[v] * net.dot(mesh_.vtx_x[v]);
    const double scale = mesh_.edge_de[mesh_.vtx_edges[v][0]];
    EXPECT_LT(tangential.norm() / scale, 0.2);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, HexMeshLevels, ::testing::Values(1, 2, 3, 4));

TEST(HexMesh, AnalyticResolutionMatchesTable2) {
  // The counts helpers are calibrated to the paper's Table 2 quotes
  // (sqrt-cell-area metric on their spring-optimized grid): G6 92.5~113 km.
  EXPECT_NEAR(minSpacingKm(6), 92.5, 1.0);
  EXPECT_NEAR(maxSpacingKm(6), 113.0, 1.0);
  // G12 (1.47~1.92 km): the paper's grid spread widens with refinement
  // (per-level spring optimization), so allow 10%.
  EXPECT_NEAR(minSpacingKm(12), 1.47, 0.10 * 1.47);
  EXPECT_NEAR(maxSpacingKm(12), 1.92, 0.10 * 1.92);
}

TEST(HexMesh, BuiltMeshResolutionBracketsNominal) {
  // Our raw bisection grid has a narrower area spread than the paper's
  // spring-optimized mesh; its sqrt-area band must still bracket the
  // analytic nominal resolution and stay within 15% of it.
  const HexMesh g4 = buildHexMesh(4);
  double amin = g4.cell_area[0], amax = g4.cell_area[0];
  for (const double a : g4.cell_area) {
    amin = std::min(amin, a);
    amax = std::max(amax, a);
  }
  const double nominal = nominalSpacingKm(4);
  EXPECT_LT(std::sqrt(amin) / 1000.0, nominal);
  EXPECT_GT(std::sqrt(amax) / 1000.0, nominal);
  EXPECT_GT(std::sqrt(amin) / 1000.0, 0.85 * nominal);
  EXPECT_LT(std::sqrt(amax) / 1000.0, 1.15 * nominal);
}

TEST(HexMesh, SmallPlanetScalesGeometry) {
  const double small = constants::kEarthRadius / 100.0;
  const HexMesh normal = buildHexMesh(2);
  const HexMesh tiny = buildHexMesh(2, small);
  EXPECT_NEAR(tiny.meanSpacing() * 100.0, normal.meanSpacing(), 1e-6 * normal.meanSpacing());
  EXPECT_NEAR(tiny.cell_area[0] * 1e4, normal.cell_area[0], 1e-6 * normal.cell_area[0]);
}

TEST(HexMesh, RejectsBadRadius) {
  EXPECT_THROW(buildHexMesh(2, -1.0), std::invalid_argument);
  EXPECT_THROW(buildHexMesh(2, 0.0), std::invalid_argument);
}

} // namespace
} // namespace grist::grid
