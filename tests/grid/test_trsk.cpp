#include "grist/grid/trsk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace grist::grid {
namespace {

// Edge normal velocities of a globally uniform (solid, non-divergent in the
// tangent sense) velocity field V.
std::vector<double> uniformFlow(const HexMesh& m, const Vec3& v) {
  std::vector<double> u(m.nedges);
  for (Index e = 0; e < m.nedges; ++e) u[e] = v.dot(m.edge_normal[e]);
  return u;
}

class TrskLevels : public ::testing::TestWithParam<int> {
 protected:
  HexMesh mesh_ = buildHexMesh(GetParam());
  TrskWeights weights_ = buildTrskWeights(mesh_);
};

TEST_P(TrskLevels, NeighborTableShape) {
  ASSERT_EQ(static_cast<Index>(weights_.offset.size()), mesh_.nedges + 1);
  for (Index e = 0; e < mesh_.nedges; ++e) {
    const int count = weights_.offset[e + 1] - weights_.offset[e];
    // Two hexagons: 10 neighbor edges; pentagon sides have 9 or 8.
    EXPECT_GE(count, 8);
    EXPECT_LE(count, 10);
    for (Index k = weights_.offset[e]; k < weights_.offset[e + 1]; ++k) {
      EXPECT_NE(weights_.edge[k], e);
      EXPECT_GE(weights_.edge[k], 0);
      EXPECT_LT(weights_.edge[k], mesh_.nedges);
    }
  }
}

TEST_P(TrskLevels, ReconstructsUniformFlowTangent) {
  const Vec3 flows[] = {{30, 0, 0}, {0, 20, 0}, {0, 0, 25}, {10, -15, 5}};
  for (const Vec3& v : flows) {
    const std::vector<double> u = uniformFlow(mesh_, v);
    std::vector<double> ut(mesh_.nedges);
    reconstructTangential(mesh_, weights_, u.data(), ut.data());
    double err2 = 0.0, ref2 = 0.0;
    for (Index e = 0; e < mesh_.nedges; ++e) {
      const double exact = v.dot(mesh_.edge_tangent[e]);
      err2 += (ut[e] - exact) * (ut[e] - exact);
      ref2 += exact * exact;
    }
    // TRSK is a low-order reconstruction; on the raw bisection grid the
    // relative RMS error should be well under 10% and fall with refinement.
    EXPECT_LT(std::sqrt(err2 / ref2), 0.10) << "flow (" << v.x << "," << v.y << "," << v.z << ")";
  }
}

TEST_P(TrskLevels, CoriolisEnergyNeutral) {
  // TRSK's defining property: with M_e = de_e * le_e the quadratic form
  // sum_e M_e u_e (f u_t(e)) vanishes for any u when f is uniform, i.e.
  // D W is antisymmetric (Ringler et al. 2010). Verified on random fields.
  std::mt19937 rng(20250705);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> u(mesh_.nedges);
    for (double& x : u) x = dist(rng);
    std::vector<double> ut(mesh_.nedges);
    reconstructTangential(mesh_, weights_, u.data(), ut.data());
    double energy = 0.0, scale = 0.0;
    for (Index e = 0; e < mesh_.nedges; ++e) {
      const double m = mesh_.edge_de[e] * mesh_.edge_le[e];
      energy += m * u[e] * ut[e];
      scale += m * std::abs(u[e] * ut[e]);
    }
    EXPECT_LT(std::abs(energy) / scale, 1e-12);
  }
}

TEST_P(TrskLevels, MatchesPerotReconstruction) {
  // Independent cross-check: TRSK tangential velocities correlate strongly
  // with the edge-averaged Perot cell-vector reconstruction.
  const Vec3 v{12, 7, -9};
  const std::vector<double> u = uniformFlow(mesh_, v);
  std::vector<double> ut(mesh_.nedges);
  reconstructTangential(mesh_, weights_, u.data(), ut.data());
  std::vector<Vec3> cell_vel;
  perotCellVelocity(mesh_, u.data(), cell_vel);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (Index e = 0; e < mesh_.nedges; ++e) {
    const Vec3 avg = (cell_vel[mesh_.edge_cell[e][0]] + cell_vel[mesh_.edge_cell[e][1]]) * 0.5;
    const double perot = avg.dot(mesh_.edge_tangent[e]);
    dot += perot * ut[e];
    na += perot * perot;
    nb += ut[e] * ut[e];
  }
  EXPECT_GT(dot / std::sqrt(na * nb), 0.99);
}

TEST_P(TrskLevels, PerotRecoversUniformVector) {
  const Vec3 v{5, -3, 8};
  const std::vector<double> u = uniformFlow(mesh_, v);
  std::vector<Vec3> cell_vel;
  perotCellVelocity(mesh_, u.data(), cell_vel);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    // Compare in the tangent plane at the cell (the radial part of a
    // uniform 3-vector is not representable by normal components).
    const Vec3 r = mesh_.cell_x[c];
    const Vec3 vt = v - r * v.dot(r);
    const Vec3 err = cell_vel[c] - vt;
    EXPECT_LT(err.norm(), 0.15 * v.norm());
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, TrskLevels, ::testing::Values(2, 3, 4));

TEST(Trsk, UniformFlowErrorFallsWithRefinement) {
  const Vec3 v{25, -10, 15};
  double prev_err = -1.0;
  for (int level : {2, 3, 4}) {
    const HexMesh mesh = buildHexMesh(level);
    const TrskWeights w = buildTrskWeights(mesh);
    std::vector<double> u(mesh.nedges), ut(mesh.nedges);
    for (Index e = 0; e < mesh.nedges; ++e) u[e] = v.dot(mesh.edge_normal[e]);
    reconstructTangential(mesh, w, u.data(), ut.data());
    double err2 = 0.0, ref2 = 0.0;
    for (Index e = 0; e < mesh.nedges; ++e) {
      const double exact = v.dot(mesh.edge_tangent[e]);
      err2 += (ut[e] - exact) * (ut[e] - exact);
      ref2 += exact * exact;
    }
    const double err = std::sqrt(err2 / ref2);
    if (prev_err > 0) {
      EXPECT_LT(err, prev_err);
    }
    prev_err = err;
  }
}

} // namespace
} // namespace grist::grid
