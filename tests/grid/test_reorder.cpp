#include "grist/grid/reorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace grist::grid {
namespace {

// Simple layer-free divergence used as a physics-invariance probe.
std::vector<double> divergence(const HexMesh& m, const std::vector<double>& u_edge) {
  std::vector<double> div(m.ncells, 0.0);
  for (Index c = 0; c < m.ncells; ++c) {
    for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k) {
      const Index e = m.cell_edges[k];
      div[c] += m.cell_edge_sign[k] * m.edge_le[e] * u_edge[e];
    }
    div[c] /= m.cell_area[c];
  }
  return div;
}

TEST(Reorder, PermutationIsBijective) {
  const HexMesh mesh = buildHexMesh(3);
  const Permutation p = bfsPermutation(mesh);
  for (const auto* v : {&p.cell, &p.edge, &p.vertex}) {
    std::vector<Index> sorted(*v);
    std::sort(sorted.begin(), sorted.end());
    for (Index i = 0; i < static_cast<Index>(sorted.size()); ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(Reorder, GeometryCarriesOver) {
  const HexMesh mesh = buildHexMesh(3);
  const Permutation p = bfsPermutation(mesh);
  const HexMesh re = applyPermutation(mesh, p);
  ASSERT_EQ(re.ncells, mesh.ncells);
  ASSERT_EQ(re.nedges, mesh.nedges);
  ASSERT_EQ(re.nvertices, mesh.nvertices);
  double total_old = std::accumulate(mesh.cell_area.begin(), mesh.cell_area.end(), 0.0);
  double total_new = std::accumulate(re.cell_area.begin(), re.cell_area.end(), 0.0);
  EXPECT_NEAR(total_old, total_new, 1e-6 * total_old);
  for (Index c = 0; c < mesh.ncells; ++c) {
    EXPECT_DOUBLE_EQ(mesh.cell_area[c], re.cell_area[p.cell[c]]);
    EXPECT_EQ(mesh.cellDegree(c), re.cellDegree(p.cell[c]));
  }
  for (Index e = 0; e < mesh.nedges; ++e) {
    EXPECT_DOUBLE_EQ(mesh.edge_de[e], re.edge_de[p.edge[e]]);
    EXPECT_DOUBLE_EQ(mesh.edge_le[e], re.edge_le[p.edge[e]]);
  }
}

TEST(Reorder, OperatorsInvariantUnderRenumbering) {
  const HexMesh mesh = buildHexMesh(3);
  const Permutation p = bfsPermutation(mesh);
  const HexMesh re = applyPermutation(mesh, p);

  const Vec3 v{11, -4, 6};
  std::vector<double> u_old(mesh.nedges), u_new(re.nedges);
  for (Index e = 0; e < mesh.nedges; ++e) {
    u_old[e] = v.dot(mesh.edge_normal[e]);
    u_new[p.edge[e]] = v.dot(re.edge_normal[p.edge[e]]);
  }
  const std::vector<double> div_old = divergence(mesh, u_old);
  const std::vector<double> div_new = divergence(re, u_new);
  for (Index c = 0; c < mesh.ncells; ++c) {
    EXPECT_NEAR(div_old[c], div_new[p.cell[c]], 1e-18);
  }
}

TEST(Reorder, BfsImprovesIndexLocality) {
  // The paper's section 3.1.3 claim: BFS-sorted indices raise the cache hit
  // rate. The measurable analog is a smaller normalized neighbor-id spread.
  const HexMesh raw = buildHexMesh(5);
  const HexMesh re = applyPermutation(raw, bfsPermutation(raw));
  EXPECT_LT(indexSpread(re), indexSpread(raw));
  // BFS should cut the spread substantially, not marginally.
  EXPECT_LT(indexSpread(re), 0.5 * indexSpread(raw));
}

TEST(Reorder, RootOutOfRangeThrows) {
  const HexMesh mesh = buildHexMesh(1);
  EXPECT_THROW(bfsPermutation(mesh, -1), std::out_of_range);
  EXPECT_THROW(bfsPermutation(mesh, mesh.ncells), std::out_of_range);
}

TEST(Reorder, BuildReorderedConvenience) {
  const HexMesh direct = buildReorderedHexMesh(2);
  EXPECT_EQ(direct.ncells, buildHexMesh(2).ncells);
  // Cell 0's neighbors should have small ids after BFS.
  for (Index k = direct.cell_offset[0]; k < direct.cell_offset[1]; ++k) {
    EXPECT_LT(direct.cell_cells[k], 16);
  }
}

} // namespace
} // namespace grist::grid
