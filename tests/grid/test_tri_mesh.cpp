#include "grist/grid/tri_mesh.hpp"

#include <gtest/gtest.h>

#include "grist/grid/counts.hpp"

namespace grist::grid {
namespace {

class TriMeshLevels : public ::testing::TestWithParam<int> {};

TEST_P(TriMeshLevels, CountsMatchClosedForm) {
  const int level = GetParam();
  const TriMesh mesh = buildTriMesh(level);
  const GridCounts expect = countsForLevel(level);
  EXPECT_EQ(static_cast<std::int64_t>(mesh.vertices.size()), expect.cells);
  EXPECT_EQ(static_cast<std::int64_t>(mesh.triangles.size()), expect.vertices);
  EXPECT_EQ(static_cast<std::int64_t>(extractEdges(mesh).size()), expect.edges);
}

TEST_P(TriMeshLevels, EulerCharacteristicIsTwo) {
  const TriMesh mesh = buildTriMesh(GetParam());
  const auto edges = extractEdges(mesh);
  const std::int64_t v = static_cast<std::int64_t>(mesh.vertices.size());
  const std::int64_t e = static_cast<std::int64_t>(edges.size());
  const std::int64_t f = static_cast<std::int64_t>(mesh.triangles.size());
  EXPECT_EQ(v - e + f, 2);
}

TEST_P(TriMeshLevels, AllVerticesOnUnitSphere) {
  const TriMesh mesh = buildTriMesh(GetParam());
  for (const Vec3& p : mesh.vertices) EXPECT_NEAR(p.norm(), 1.0, 1e-12);
}

TEST_P(TriMeshLevels, TrianglesOrientedOutward) {
  const TriMesh mesh = buildTriMesh(GetParam());
  for (const auto& tri : mesh.triangles) {
    const Vec3& a = mesh.vertices[tri[0]];
    const Vec3& b = mesh.vertices[tri[1]];
    const Vec3& c = mesh.vertices[tri[2]];
    EXPECT_GT((b - a).cross(c - a).dot(a + b + c), 0.0);
  }
}

TEST_P(TriMeshLevels, EveryEdgeHasTwoTriangles) {
  const TriMesh mesh = buildTriMesh(GetParam());
  for (const TriEdge& e : extractEdges(mesh)) {
    EXPECT_NE(e.t0, kInvalidIndex);
    EXPECT_NE(e.t1, kInvalidIndex);
    EXPECT_NE(e.t0, e.t1);
    EXPECT_LT(e.v0, e.v1);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, TriMeshLevels, ::testing::Values(0, 1, 2, 3, 4));

TEST(TriMesh, RejectsBadLevels) {
  EXPECT_THROW(buildTriMesh(-1), std::invalid_argument);
  EXPECT_THROW(buildTriMesh(14), std::length_error);
}

} // namespace
} // namespace grist::grid
