#include "grist/parallel/decompose.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "grist/grid/hex_mesh.hpp"

namespace grist::parallel {
namespace {

class DecomposeRanks : public ::testing::TestWithParam<Index> {
 protected:
  grid::HexMesh mesh_ = grid::buildHexMesh(3);
  Decomposition d_ = decompose(mesh_, GetParam());
};

TEST_P(DecomposeRanks, OwnedCellsPartitionTheGlobe) {
  Index total_owned = 0;
  std::vector<int> owner_count(mesh_.ncells, 0);
  for (const LocalDomain& dom : d_.domains) {
    total_owned += dom.ncells_owned;
    for (Index lc = 0; lc < dom.ncells_owned; ++lc) ++owner_count[dom.cell_global[lc]];
  }
  EXPECT_EQ(total_owned, mesh_.ncells);
  for (const int n : owner_count) EXPECT_EQ(n, 1);
}

TEST_P(DecomposeRanks, OwnedEdgesPartitionTheGlobe) {
  std::vector<int> owner_count(mesh_.nedges, 0);
  for (const LocalDomain& dom : d_.domains) {
    for (Index le = 0; le < dom.nedges_owned; ++le) ++owner_count[dom.edge_global[le]];
  }
  for (const int n : owner_count) EXPECT_EQ(n, 1);
}

TEST_P(DecomposeRanks, LocalGeometryMatchesGlobal) {
  for (const LocalDomain& dom : d_.domains) {
    for (Index lc = 0; lc < dom.mesh.ncells; ++lc) {
      const Index g = dom.cell_global[lc];
      EXPECT_DOUBLE_EQ(dom.mesh.cell_area[lc], mesh_.cell_area[g]);
      EXPECT_EQ(dom.mesh.cellDegree(lc), mesh_.cellDegree(g));
    }
    for (Index le = 0; le < dom.mesh.nedges; ++le) {
      const Index g = dom.edge_global[le];
      EXPECT_DOUBLE_EQ(dom.mesh.edge_de[le], mesh_.edge_de[g]);
      EXPECT_DOUBLE_EQ(dom.mesh.edge_le[le], mesh_.edge_le[g]);
    }
  }
}

TEST_P(DecomposeRanks, OwnedCellsHaveCompleteStencils) {
  // Every owned cell's ring must be fully resolved locally (no
  // kInvalidIndex): that is what halo depth 2 guarantees.
  for (const LocalDomain& dom : d_.domains) {
    for (Index lc = 0; lc < dom.ncells_inner1; ++lc) {
      for (Index k = dom.mesh.cell_offset[lc]; k < dom.mesh.cell_offset[lc + 1]; ++k) {
        EXPECT_NE(dom.mesh.cell_edges[k], kInvalidIndex);
        EXPECT_NE(dom.mesh.cell_cells[k], kInvalidIndex);
        EXPECT_NE(dom.mesh.cell_vertices[k], kInvalidIndex);
      }
    }
  }
}

TEST_P(DecomposeRanks, OwnedEdgeStencilsResolveTrskNeighborhood) {
  // A tendency at an owned edge touches all edges of its two cells plus the
  // vertices of the edge; verify those are local and complete.
  for (const LocalDomain& dom : d_.domains) {
    for (Index le = 0; le < dom.nedges_owned; ++le) {
      for (const Index lc : dom.mesh.edge_cell[le]) {
        ASSERT_NE(lc, kInvalidIndex);
        for (Index k = dom.mesh.cell_offset[lc]; k < dom.mesh.cell_offset[lc + 1]; ++k) {
          EXPECT_NE(dom.mesh.cell_edges[k], kInvalidIndex);
        }
      }
      for (const Index lv : dom.mesh.edge_vertex[le]) {
        ASSERT_NE(lv, kInvalidIndex);
        EXPECT_LT(lv, dom.nvtx_complete);
      }
    }
  }
}

TEST_P(DecomposeRanks, PatternsCoverAllHaloEntities) {
  std::vector<std::vector<bool>> cell_covered(d_.nranks);
  std::vector<std::vector<bool>> edge_covered(d_.nranks);
  for (Index r = 0; r < d_.nranks; ++r) {
    cell_covered[r].assign(d_.domains[r].mesh.ncells, false);
    edge_covered[r].assign(d_.domains[r].mesh.nedges, false);
  }
  for (const ExchangePattern& pat : d_.patterns) {
    EXPECT_NE(pat.from, pat.to);
    ASSERT_EQ(pat.send_cells.size(), pat.recv_cells.size());
    ASSERT_EQ(pat.send_edges.size(), pat.recv_edges.size());
    for (std::size_t i = 0; i < pat.recv_cells.size(); ++i) {
      // Sender side must be an owned cell holding the same global id.
      EXPECT_LT(pat.send_cells[i], d_.domains[pat.from].ncells_owned);
      EXPECT_EQ(d_.domains[pat.from].cell_global[pat.send_cells[i]],
                d_.domains[pat.to].cell_global[pat.recv_cells[i]]);
      cell_covered[pat.to][pat.recv_cells[i]] = true;
    }
    for (std::size_t i = 0; i < pat.recv_edges.size(); ++i) {
      EXPECT_LT(pat.send_edges[i], d_.domains[pat.from].nedges_owned);
      EXPECT_EQ(d_.domains[pat.from].edge_global[pat.send_edges[i]],
                d_.domains[pat.to].edge_global[pat.recv_edges[i]]);
      edge_covered[pat.to][pat.recv_edges[i]] = true;
    }
  }
  for (Index r = 0; r < d_.nranks; ++r) {
    const LocalDomain& dom = d_.domains[r];
    for (Index lc = dom.ncells_owned; lc < dom.mesh.ncells; ++lc) {
      EXPECT_TRUE(cell_covered[r][lc]) << "rank " << r << " cell " << lc;
    }
    for (Index le = dom.nedges_owned; le < dom.mesh.nedges; ++le) {
      EXPECT_TRUE(edge_covered[r][le]) << "rank " << r << " edge " << le;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, DecomposeRanks, ::testing::Values(1, 2, 4, 8, 13));

TEST(Decompose, RejectsBadInput) {
  const grid::HexMesh mesh = grid::buildHexMesh(1);
  std::vector<Index> short_part(3, 0);
  EXPECT_THROW(decompose(mesh, short_part, 2), std::invalid_argument);
  std::vector<Index> ok(mesh.ncells, 0);
  EXPECT_THROW(decompose(mesh, ok, 0), std::invalid_argument);
}

} // namespace
} // namespace grist::parallel
