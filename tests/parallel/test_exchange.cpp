#include "grist/parallel/exchange.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "grist/grid/hex_mesh.hpp"

namespace grist::parallel {
namespace {

// A recognizable global value: f(global_id, comp).
double marker(Index global, int comp) { return 1000.0 * global + comp; }

class ExchangeRanks : public ::testing::TestWithParam<Index> {
 protected:
  grid::HexMesh mesh_ = grid::buildHexMesh(3);
  Decomposition d_ = decompose(mesh_, GetParam());
};

TEST_P(ExchangeRanks, HaloReceivesOwnerValues) {
  const int nlev = 4;
  std::vector<Field> cell_fields, edge_fields;
  std::vector<ExchangeList> lists(d_.nranks);
  for (Index r = 0; r < d_.nranks; ++r) {
    const LocalDomain& dom = d_.domains[r];
    cell_fields.emplace_back(dom.mesh.ncells, nlev, -1.0);
    edge_fields.emplace_back(dom.mesh.nedges, nlev, -1.0);
  }
  for (Index r = 0; r < d_.nranks; ++r) {
    const LocalDomain& dom = d_.domains[r];
    // Fill owned entities only; halos stay at the -1 sentinel.
    for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
      for (int k = 0; k < nlev; ++k) cell_fields[r](lc, k) = marker(dom.cell_global[lc], k);
    }
    for (Index le = 0; le < dom.nedges_owned; ++le) {
      for (int k = 0; k < nlev; ++k) edge_fields[r](le, k) = marker(dom.edge_global[le], k);
    }
    lists[r].addCellField(cell_fields[r]);
    lists[r].addEdgeField(edge_fields[r]);
  }

  Communicator comm(d_);
  comm.exchange(lists);

  for (Index r = 0; r < d_.nranks; ++r) {
    const LocalDomain& dom = d_.domains[r];
    for (Index lc = 0; lc < dom.mesh.ncells; ++lc) {
      for (int k = 0; k < nlev; ++k) {
        EXPECT_DOUBLE_EQ(cell_fields[r](lc, k), marker(dom.cell_global[lc], k))
            << "rank " << r << " cell " << lc;
      }
    }
    for (Index le = 0; le < dom.mesh.nedges; ++le) {
      for (int k = 0; k < nlev; ++k) {
        EXPECT_DOUBLE_EQ(edge_fields[r](le, k), marker(dom.edge_global[le], k))
            << "rank " << r << " edge " << le;
      }
    }
  }
}

TEST_P(ExchangeRanks, BatchingKeepsMessageCountAtNeighborPairs) {
  // The paper's point (section 3.1.3): gathering all variables into one
  // exchange call keeps the message count at the number of neighbor pairs,
  // independent of how many variables are queued.
  const Index nranks = d_.nranks;
  if (nranks == 1) GTEST_SKIP() << "no communication with one rank";

  std::vector<Field> many_fields;
  std::vector<ExchangeList> lists(nranks);
  for (Index r = 0; r < nranks; ++r) {
    for (int v = 0; v < 6; ++v) {
      many_fields.emplace_back(d_.domains[r].mesh.ncells, 3, 0.0);
    }
  }
  for (Index r = 0; r < nranks; ++r) {
    for (int v = 0; v < 6; ++v) lists[r].addCellField(many_fields[r * 6 + v]);
  }
  Communicator comm(d_);
  comm.exchange(lists);
  const CommStats one_call = comm.stats();
  EXPECT_EQ(one_call.exchanges, 1);
  EXPECT_EQ(one_call.messages, static_cast<std::int64_t>(d_.patterns.size()));

  // Exchanging the six variables one at a time costs 6x the messages.
  comm.resetStats();
  for (int v = 0; v < 6; ++v) {
    std::vector<ExchangeList> single(nranks);
    for (Index r = 0; r < nranks; ++r) single[r].addCellField(many_fields[r * 6 + v]);
    comm.exchange(single);
  }
  EXPECT_EQ(comm.stats().messages, 6 * one_call.messages);
  // Byte volume is identical either way.
  EXPECT_EQ(comm.stats().bytes, one_call.bytes);
}

TEST_P(ExchangeRanks, StatsCountBytesExactly) {
  if (d_.nranks == 1) GTEST_SKIP();
  const int nlev = 5;
  std::vector<Field> fields;
  std::vector<ExchangeList> lists(d_.nranks);
  for (Index r = 0; r < d_.nranks; ++r) {
    fields.emplace_back(d_.domains[r].mesh.ncells, nlev, 0.0);
  }
  for (Index r = 0; r < d_.nranks; ++r) lists[r].addCellField(fields[r]);
  Communicator comm(d_);
  comm.exchange(lists);
  std::int64_t expected = 0;
  for (const ExchangePattern& pat : d_.patterns) {
    expected += static_cast<std::int64_t>(pat.send_cells.size()) * nlev * 8;
  }
  EXPECT_EQ(comm.stats().bytes, expected);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ExchangeRanks, ::testing::Values(1, 2, 4, 9));

TEST(Exchange, WrongListCountThrows) {
  const grid::HexMesh mesh = grid::buildHexMesh(2);
  const Decomposition d = decompose(mesh, Index{4});
  Communicator comm(d);
  std::vector<ExchangeList> lists(2);
  EXPECT_THROW(comm.exchange(lists), std::invalid_argument);
}

TEST(Exchange, MismatchedShapesThrowNamingRankAndVar) {
  const grid::HexMesh mesh = grid::buildHexMesh(2);
  const Decomposition d = decompose(mesh, Index{2});
  Communicator comm(d);
  std::vector<Field> fields;
  for (Index r = 0; r < 2; ++r) {
    fields.emplace_back(d.domains[r].mesh.ncells, 3, 0.0);
  }
  // Rank 1 queues a different component count for cell var 0.
  std::vector<ExchangeList> lists(2);
  lists[0].addCellVar(fields[0].data(), 3);
  lists[1].addCellVar(fields[1].data(), 5);
  try {
    comm.exchange(lists);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cell var 0"), std::string::npos) << msg;
  }
  // Differing list lengths are also named.
  std::vector<ExchangeList> uneven(2);
  uneven[0].addCellVar(fields[0].data(), 3);
  EXPECT_THROW(comm.exchange(uneven), std::invalid_argument);
}

// Hand-built decomposition with IRREGULAR patterns: non-contiguous,
// unsorted send/recv maps, different entity counts per rank, a rank pair
// exchanging in one direction only, and a rank with no traffic at all.
// Exercises the packed pack -> transfer -> unpack round trip directly,
// including the split post()/wait() halves.
class IrregularPacking : public ::testing::Test {
 protected:
  static constexpr int kComp = 3;

  void SetUp() override {
    d_.nranks = 3;
    ExchangePattern p01;  // rank 0 -> rank 1, cells only
    p01.from = 0;
    p01.to = 1;
    p01.send_cells = {7, 2, 5};
    p01.recv_cells = {1, 6, 3};
    ExchangePattern p10;  // rank 1 -> rank 0, cells and edges
    p10.from = 1;
    p10.to = 0;
    p10.send_cells = {0, 4};
    p10.recv_cells = {9, 8};
    p10.send_edges = {5, 1, 3};
    p10.recv_edges = {0, 2, 4};
    d_.patterns = {p01, p10};
    for (ExchangePattern& pat : d_.patterns) {
      pat.nsend_cells = static_cast<Index>(pat.send_cells.size());
      pat.nsend_edges = static_cast<Index>(pat.send_edges.size());
    }
    // Rank 2 has no patterns (no traffic), but still participates in the
    // collective and in every post/wait round.
    cells_ = {Field(10, kComp), Field(8, kComp), Field(4, kComp)};
    edges_ = {Field(6, kComp), Field(7, kComp), Field(2, kComp)};
    lists_.resize(3);
    for (int r = 0; r < 3; ++r) {
      lists_[r].addCellField(cells_[r]);
      lists_[r].addEdgeField(edges_[r]);
    }
  }

  // Distinct fill per (rank, entity, comp); sender values are what the
  // receiver must end up with.
  void fill(double salt) {
    for (int r = 0; r < 3; ++r) {
      for (Index c = 0; c < cells_[r].entities(); ++c) {
        for (int k = 0; k < kComp; ++k) {
          cells_[r](c, k) = salt + 100.0 * r + 10.0 * c + k;
        }
      }
      for (Index e = 0; e < edges_[r].entities(); ++e) {
        for (int k = 0; k < kComp; ++k) {
          edges_[r](e, k) = -(salt + 100.0 * r + 10.0 * e + k);
        }
      }
    }
  }

  void checkRoundTrip(double salt) {
    // Receiver halos hold the sender's values...
    for (const ExchangePattern& pat : d_.patterns) {
      for (std::size_t i = 0; i < pat.send_cells.size(); ++i) {
        for (int k = 0; k < kComp; ++k) {
          EXPECT_EQ(cells_[pat.to](pat.recv_cells[i], k),
                    salt + 100.0 * pat.from + 10.0 * pat.send_cells[i] + k);
        }
      }
      for (std::size_t i = 0; i < pat.send_edges.size(); ++i) {
        for (int k = 0; k < kComp; ++k) {
          EXPECT_EQ(edges_[pat.to](pat.recv_edges[i], k),
                    -(salt + 100.0 * pat.from + 10.0 * pat.send_edges[i] + k));
        }
      }
    }
    // ...and every non-halo entry is untouched (pack/unpack touched only
    // the mapped rows). Rank 2 is entirely untouched.
    for (Index c = 0; c < cells_[2].entities(); ++c) {
      for (int k = 0; k < kComp; ++k) {
        EXPECT_EQ(cells_[2](c, k), salt + 200.0 + 10.0 * c + k);
      }
    }
  }

  Decomposition d_;
  std::vector<Field> cells_, edges_;
  std::vector<ExchangeList> lists_;
};

TEST_F(IrregularPacking, CollectiveExchangeRoundTrips) {
  Communicator comm(d_);
  fill(1.0);
  comm.exchange(lists_);
  checkRoundTrip(1.0);
  // Exact byte accounting: (3 send cells + 2 send cells + 3 send edges)
  // rows of kComp doubles.
  EXPECT_EQ(comm.stats().bytes, (3 + 2 + 3) * kComp * 8);
  EXPECT_EQ(comm.stats().messages, 2);
}

TEST_F(IrregularPacking, PostWaitRoundTripsAcrossRounds) {
  Communicator comm(d_);
  comm.plan(lists_);
  // Several rounds with fresh values each time: sequence numbers must
  // advance and no round may see a stale buffer.
  for (int round = 0; round < 3; ++round) {
    const double salt = 1.0 + 7.0 * round;
    fill(salt);
    for (Index r = 0; r < 3; ++r) comm.post(r);
    for (Index r = 0; r < 3; ++r) comm.wait(r);
    checkRoundTrip(salt);
  }
  EXPECT_EQ(comm.stats().exchanges, 3);  // one per post round
}

TEST_F(IrregularPacking, PostBeforePlanThrows) {
  Communicator comm(d_);
  EXPECT_THROW(comm.post(0), std::logic_error);
}

TEST_F(IrregularPacking, WireLatencyDelaysDeliveryButRoundTrips) {
  // Emulated interconnect latency must not change the delivered data, and
  // the collective round must stall at least one latency window.
  Communicator comm(d_);
  const double tau = 500e-6;
  comm.setWireLatency(tau);
  EXPECT_DOUBLE_EQ(comm.wireLatency(), tau);

  fill(3.0);
  const auto t0 = std::chrono::steady_clock::now();
  comm.exchange(lists_);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  checkRoundTrip(3.0);
  EXPECT_GE(elapsed, tau);

  // Split form: delivery deadlines are per message; data still exact.
  comm.plan(lists_);
  fill(4.0);
  for (Index r = 0; r < 3; ++r) comm.post(r);
  for (Index r = 0; r < 3; ++r) comm.wait(r);
  checkRoundTrip(4.0);
}

} // namespace
} // namespace grist::parallel
