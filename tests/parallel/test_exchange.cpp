#include "grist/parallel/exchange.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "grist/grid/hex_mesh.hpp"

namespace grist::parallel {
namespace {

// A recognizable global value: f(global_id, comp).
double marker(Index global, int comp) { return 1000.0 * global + comp; }

class ExchangeRanks : public ::testing::TestWithParam<Index> {
 protected:
  grid::HexMesh mesh_ = grid::buildHexMesh(3);
  Decomposition d_ = decompose(mesh_, GetParam());
};

TEST_P(ExchangeRanks, HaloReceivesOwnerValues) {
  const int nlev = 4;
  std::vector<Field> cell_fields, edge_fields;
  std::vector<ExchangeList> lists(d_.nranks);
  for (Index r = 0; r < d_.nranks; ++r) {
    const LocalDomain& dom = d_.domains[r];
    cell_fields.emplace_back(dom.mesh.ncells, nlev, -1.0);
    edge_fields.emplace_back(dom.mesh.nedges, nlev, -1.0);
  }
  for (Index r = 0; r < d_.nranks; ++r) {
    const LocalDomain& dom = d_.domains[r];
    // Fill owned entities only; halos stay at the -1 sentinel.
    for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
      for (int k = 0; k < nlev; ++k) cell_fields[r](lc, k) = marker(dom.cell_global[lc], k);
    }
    for (Index le = 0; le < dom.nedges_owned; ++le) {
      for (int k = 0; k < nlev; ++k) edge_fields[r](le, k) = marker(dom.edge_global[le], k);
    }
    lists[r].addCellField(cell_fields[r]);
    lists[r].addEdgeField(edge_fields[r]);
  }

  Communicator comm(d_);
  comm.exchange(lists);

  for (Index r = 0; r < d_.nranks; ++r) {
    const LocalDomain& dom = d_.domains[r];
    for (Index lc = 0; lc < dom.mesh.ncells; ++lc) {
      for (int k = 0; k < nlev; ++k) {
        EXPECT_DOUBLE_EQ(cell_fields[r](lc, k), marker(dom.cell_global[lc], k))
            << "rank " << r << " cell " << lc;
      }
    }
    for (Index le = 0; le < dom.mesh.nedges; ++le) {
      for (int k = 0; k < nlev; ++k) {
        EXPECT_DOUBLE_EQ(edge_fields[r](le, k), marker(dom.edge_global[le], k))
            << "rank " << r << " edge " << le;
      }
    }
  }
}

TEST_P(ExchangeRanks, BatchingKeepsMessageCountAtNeighborPairs) {
  // The paper's point (section 3.1.3): gathering all variables into one
  // exchange call keeps the message count at the number of neighbor pairs,
  // independent of how many variables are queued.
  const Index nranks = d_.nranks;
  if (nranks == 1) GTEST_SKIP() << "no communication with one rank";

  std::vector<Field> many_fields;
  std::vector<ExchangeList> lists(nranks);
  for (Index r = 0; r < nranks; ++r) {
    for (int v = 0; v < 6; ++v) {
      many_fields.emplace_back(d_.domains[r].mesh.ncells, 3, 0.0);
    }
  }
  for (Index r = 0; r < nranks; ++r) {
    for (int v = 0; v < 6; ++v) lists[r].addCellField(many_fields[r * 6 + v]);
  }
  Communicator comm(d_);
  comm.exchange(lists);
  const CommStats one_call = comm.stats();
  EXPECT_EQ(one_call.exchanges, 1);
  EXPECT_EQ(one_call.messages, static_cast<std::int64_t>(d_.patterns.size()));

  // Exchanging the six variables one at a time costs 6x the messages.
  comm.resetStats();
  for (int v = 0; v < 6; ++v) {
    std::vector<ExchangeList> single(nranks);
    for (Index r = 0; r < nranks; ++r) single[r].addCellField(many_fields[r * 6 + v]);
    comm.exchange(single);
  }
  EXPECT_EQ(comm.stats().messages, 6 * one_call.messages);
  // Byte volume is identical either way.
  EXPECT_EQ(comm.stats().bytes, one_call.bytes);
}

TEST_P(ExchangeRanks, StatsCountBytesExactly) {
  if (d_.nranks == 1) GTEST_SKIP();
  const int nlev = 5;
  std::vector<Field> fields;
  std::vector<ExchangeList> lists(d_.nranks);
  for (Index r = 0; r < d_.nranks; ++r) {
    fields.emplace_back(d_.domains[r].mesh.ncells, nlev, 0.0);
  }
  for (Index r = 0; r < d_.nranks; ++r) lists[r].addCellField(fields[r]);
  Communicator comm(d_);
  comm.exchange(lists);
  std::int64_t expected = 0;
  for (const ExchangePattern& pat : d_.patterns) {
    expected += static_cast<std::int64_t>(pat.send_cells.size()) * nlev * 8;
  }
  EXPECT_EQ(comm.stats().bytes, expected);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ExchangeRanks, ::testing::Values(1, 2, 4, 9));

TEST(Exchange, WrongListCountThrows) {
  const grid::HexMesh mesh = grid::buildHexMesh(2);
  const Decomposition d = decompose(mesh, Index{4});
  Communicator comm(d);
  std::vector<ExchangeList> lists(2);
  EXPECT_THROW(comm.exchange(lists), std::invalid_argument);
}

} // namespace
} // namespace grist::parallel
