#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "grist/backend/backend.hpp"
#include "grist/backend/sim.hpp"
#include "grist/backend/views.hpp"
#include "grist/sunway/core_group.hpp"

namespace grist::backend {
namespace {

TEST(HostViews, ReadAndWriteThroughRawPointers) {
  double buf[4] = {1.0, 2.0, 3.0, 4.0};
  HostBackend::Context ctx;
  const auto v = hostView(static_cast<const double*>(buf));
  const auto m = hostMut(buf);
  EXPECT_EQ(v.read(ctx, 2), 3.0);
  m.write(ctx, 1, 7.5);
  EXPECT_EQ(buf[1], 7.5);
  // Host accounting hooks are no-ops; calling them must be free of effects.
  ctx.load(0, 8);
  ctx.store(0, 8);
  ctx.flops(3, Prec::kDouble);
  ctx.divs(1, Prec::kSingle);
  ctx.elems(2, Prec::kDouble);
}

TEST(Prec, MapsNsTypesAndSimPrecision) {
  static_assert(kPrecOf<double> == Prec::kDouble);
  static_assert(kPrecOf<float> == Prec::kSingle);
  EXPECT_EQ(toSimPrecision(Prec::kDouble), sunway::SimPrecision::kDouble);
  EXPECT_EQ(toSimPrecision(Prec::kSingle), sunway::SimPrecision::kSingle);
}

TEST(SimViews, ReadsReturnPayloadValuesAndCostCycles) {
  sunway::CoreGroup cg;
  sunway::Mpe& mpe = cg.mpe();
  SimContext<sunway::Mpe> ctx{&mpe};
  std::vector<double> payload{1.5, 2.5, 3.5};
  const SimBackend::View<double> v{payload.data(), 0x10000, sizeof(double)};
  const double before = mpe.cycles();
  EXPECT_EQ(v.read(ctx, 1), 2.5);
  EXPECT_GT(mpe.cycles(), before);
}

TEST(SimViews, WritesAccountAndLandInThePayload) {
  sunway::CoreGroup cg;
  sunway::Mpe& mpe = cg.mpe();
  SimContext<sunway::Mpe> ctx{&mpe};
  std::vector<double> payload{0.0, 0.0};
  const SimBackend::MutView<double> m{payload.data(), 0x20000, sizeof(double)};
  const double before = mpe.cycles();
  m.write(ctx, 1, -4.25);
  EXPECT_GT(mpe.cycles(), before);
  EXPECT_EQ(payload[1], -4.25);
}

TEST(SimViews, NarrowElementsHalveTheAccountedStream) {
  // In MIX configurations the view's elem_bytes shrinks to 4 while the host
  // payload stays double: twice as many elements fit per cache line, so a
  // streaming read sees roughly half the misses.
  sunway::CoreGroup cg;
  sunway::Cpe& wide = cg.cpe(0);
  sunway::Cpe& narrow = cg.cpe(1);
  SimContext<sunway::Cpe> cw{&wide};
  SimContext<sunway::Cpe> cn{&narrow};
  std::vector<double> payload(4096, 1.0);
  const SimBackend::View<double> v8{payload.data(), 0, 8};
  const SimBackend::View<double> v4{payload.data(), 1u << 20, 4};
  for (Index i = 0; i < static_cast<Index>(payload.size()); ++i) {
    (void)v8.read(cw, i);
    (void)v4.read(cn, i);
  }
  EXPECT_LT(narrow.cache().misses(), wide.cache().misses());
  EXPECT_LT(narrow.cycles(), wide.cycles());
}

TEST(SimContext, ForwardsOpCostsAtTheRightPrecision) {
  sunway::CoreGroup cg;
  sunway::Mpe& mpe = cg.mpe();
  SimContext<sunway::Mpe> ctx{&mpe};
  const double c0 = mpe.cycles();
  ctx.divs(1, Prec::kDouble);
  const double dp_div = mpe.cycles() - c0;
  const double c1 = mpe.cycles();
  ctx.divs(1, Prec::kSingle);
  const double sp_div = mpe.cycles() - c1;
  EXPECT_GT(dp_div, sp_div); // single-precision divides are cheaper
  const double c2 = mpe.cycles();
  ctx.elems(1, Prec::kDouble);
  EXPECT_GT(mpe.cycles(), c2);
}

TEST(MeshViews, HostMeshViewExposesConnectivity) {
  const grid::HexMesh mesh = grid::buildHexMesh(2);
  HostBackend::Context ctx;
  const MeshView<HostBackend> mv = makeHostMeshView(mesh);
  for (Index e = 0; e < mesh.nedges; ++e) {
    const auto cells = mv.edge_cell.read(ctx, e);
    EXPECT_EQ(cells[0], mesh.edge_cell[e][0]);
    EXPECT_EQ(cells[1], mesh.edge_cell[e][1]);
    EXPECT_EQ(mv.edge_de.read(ctx, e), mesh.edge_de[e]);
  }
  for (Index c = 0; c < mesh.ncells; ++c) {
    EXPECT_EQ(mv.cell_offset.read(ctx, c), mesh.cell_offset[c]);
    EXPECT_EQ(mv.cell_area.read(ctx, c), mesh.cell_area[c]);
  }
}

} // namespace
} // namespace grist::backend
