// Parity gates for the SIMD execution backend: every tier this build+CPU
// can dispatch to must reproduce the HostBackend instantiation BITWISE, for
// all 12 Fig. 9 registry kernels, in both NS precisions, across a sweep of
// nlev values that exercises every fringe shape (nlev % 4 and nlev % 8 of
// 0..7, below/at/above one vector, and the production 30).
//
// The reference runner is the swgomp harness's host path
// (runKernelOnData(..., ExecBackend::kHost, ...)): a serial sweep of the
// shared scalar bodies over physically seeded payloads, with the same fixed
// solver constants the sim uses. The SIMD side runs the dispatch table over
// an identically seeded copy; every output array must match bit for bit.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "grist/backend/simd.hpp"
#include "grist/common/math.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/swgomp/sim_kernels.hpp"

namespace grist::backend::simd {
namespace {

using grid::HexMesh;
using grid::TrskWeights;
using grid::buildHexMesh;
using grid::buildTrskWeights;
using precision::NsMode;
using swgomp::ExecBackend;
using swgomp::SimKernel;
using swgomp::SimKernelData;
using swgomp::kernelName;
using swgomp::makeSimKernelData;
using swgomp::runKernelOnData;

// Fixed solver constants, mirroring swgomp/src/sim_kernels.cpp.
constexpr double kDt = 300.0;
constexpr double kPtop = 225.0;
constexpr double kWDampTau = 900.0;
constexpr double kNuTheta = 0.005 / 300.0;
constexpr double kNuDiv = 0.02 / 300.0;
constexpr double kNuVor = 0.005 / 300.0;

/// The SIMD-table equivalent of runKernelPhases: same entity counts, same
/// constants, outputs land in `d`.
void runSimdKernel(SimKernel kernel, const HexMesh& mesh,
                   const TrskWeights& trsk, NsMode ns, const KernelTable& tb,
                   SimKernelData& d) {
  const int si = nsIndex(ns);
  const int nlev = d.nlev;
  switch (kernel) {
    case SimKernel::kPrimalNormalFluxEdge:
      tb.primal_normal_flux_edge[si](mesh, d.nedges, nlev, d.delp.data(),
                                     d.u.data(), d.flux.data());
      return;
    case SimKernel::kComputeRrr:
      tb.compute_rrr[si](d.ncells, nlev, kPtop, d.delp.data(), d.theta.data(),
                         d.phi.data(), d.alpha.data(), d.p.data(),
                         d.exner.data(), d.pi_mid.data());
      return;
    case SimKernel::kCalcCoriolisTerm:
      tb.calc_coriolis_term[si](mesh, trsk, d.nedges, nlev, d.flux.data(),
                                d.qv.data(), d.tend_u.data());
      return;
    case SimKernel::kTendGradKeAtEdge:
      tb.tend_grad_ke_at_edge[si](mesh, d.nedges, nlev, d.ke.data(),
                                  d.tend_u.data());
      return;
    case SimKernel::kDivAtCell:
      tb.div_at_cell[si](mesh, d.ncells, nlev, d.flux.data(),
                         d.div_flux.data());
      return;
    case SimKernel::kTracerHoriFluxLimiter:
      tb.tracer_hori_flux_limiter[si](
          mesh, d.ncells, nlev, kDt, d.mean_flux.data(), d.delp_old.data(),
          d.delp_new.data(), d.q.data(), d.flux_low.data(),
          d.flux_anti.data(), d.q_td.data(), d.rp.data(), d.rm.data());
      return;
    case SimKernel::kVertImplicitSolver:
      tb.vert_implicit_solver[si](d.ncells, nlev, kDt, kPtop, d.delp.data(),
                                  d.theta.data(), d.p.data(), d.w.data(),
                                  d.phi.data(), kWDampTau);
      return;
    case SimKernel::kFusedEdgeFluxes:
      tb.fused_edge_fluxes[si](mesh, d.nedges, nlev, d.delp.data(),
                               d.u.data(), d.flux.data(), d.uflux.data());
      return;
    case SimKernel::kFusedCellDiagnostics:
      tb.fused_cell_diagnostics[si](mesh, d.ncells, nlev, d.flux.data(),
                                    d.uflux.data(), d.u.data(),
                                    d.div_flux.data(), d.div_u.data(),
                                    d.ke.data());
      return;
    case SimKernel::kFusedVertexDiagnostics:
      tb.fused_vertex_diagnostics[si](mesh, d.nvertices, nlev, d.u.data(),
                                      d.delp.data(), constants::kOmega,
                                      d.vor.data(), d.qv.data());
      return;
    case SimKernel::kFusedScalarTendencies:
      tb.fused_scalar_tendencies[si](mesh, d.ncells, nlev, d.flux.data(),
                                     d.theta.data(), d.delp.data(),
                                     d.div_flux.data(), kNuTheta,
                                     d.delp_tend.data(), d.thetam_tend.data());
      return;
    case SimKernel::kFusedMomentumTendency:
      tb.fused_momentum_tendency[si](
          mesh, trsk, d.nedges, nlev, d.ke.data(), d.qv.data(), d.flux.data(),
          d.phi.data(), d.alpha.data(), d.p.data(), d.div_u.data(),
          d.vor.data(), kNuDiv, kNuVor, d.tend_u.data());
      return;
  }
  FAIL() << "unknown kernel";
}

/// Bitwise comparison (memcmp of the representations): the contract is
/// exactness, not a ULP bound, so NaN payloads and signed zeros count too.
::testing::AssertionResult bitwiseEqual(const std::vector<double>& ref,
                                        const std::vector<double>& got,
                                        const char* name) {
  if (ref.size() != got.size()) {
    return ::testing::AssertionFailure()
           << name << ": size " << got.size() << " != " << ref.size();
  }
  if (std::memcmp(ref.data(), got.data(), ref.size() * sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (std::memcmp(&ref[i], &got[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << name << "[" << i << "]: got " << got[i] << " expected "
             << ref[i] << " (bitwise)";
    }
  }
  return ::testing::AssertionFailure() << name << ": memcmp mismatch";
}

void expectDataBitwiseEqual(const SimKernelData& ref, const SimKernelData& got) {
  EXPECT_TRUE(bitwiseEqual(ref.alpha, got.alpha, "alpha"));
  EXPECT_TRUE(bitwiseEqual(ref.p, got.p, "p"));
  EXPECT_TRUE(bitwiseEqual(ref.exner, got.exner, "exner"));
  EXPECT_TRUE(bitwiseEqual(ref.pi_mid, got.pi_mid, "pi_mid"));
  EXPECT_TRUE(bitwiseEqual(ref.ke, got.ke, "ke"));
  EXPECT_TRUE(bitwiseEqual(ref.div_flux, got.div_flux, "div_flux"));
  EXPECT_TRUE(bitwiseEqual(ref.div_u, got.div_u, "div_u"));
  EXPECT_TRUE(bitwiseEqual(ref.delp_tend, got.delp_tend, "delp_tend"));
  EXPECT_TRUE(bitwiseEqual(ref.thetam_tend, got.thetam_tend, "thetam_tend"));
  EXPECT_TRUE(bitwiseEqual(ref.q, got.q, "q"));
  EXPECT_TRUE(bitwiseEqual(ref.q_td, got.q_td, "q_td"));
  EXPECT_TRUE(bitwiseEqual(ref.rp, got.rp, "rp"));
  EXPECT_TRUE(bitwiseEqual(ref.rm, got.rm, "rm"));
  EXPECT_TRUE(bitwiseEqual(ref.phi, got.phi, "phi"));
  EXPECT_TRUE(bitwiseEqual(ref.w, got.w, "w"));
  EXPECT_TRUE(bitwiseEqual(ref.flux, got.flux, "flux"));
  EXPECT_TRUE(bitwiseEqual(ref.uflux, got.uflux, "uflux"));
  EXPECT_TRUE(bitwiseEqual(ref.tend_u, got.tend_u, "tend_u"));
  EXPECT_TRUE(bitwiseEqual(ref.flux_low, got.flux_low, "flux_low"));
  EXPECT_TRUE(bitwiseEqual(ref.flux_anti, got.flux_anti, "flux_anti"));
  EXPECT_TRUE(bitwiseEqual(ref.vor, got.vor, "vor"));
  EXPECT_TRUE(bitwiseEqual(ref.qv, got.qv, "qv"));
}

class SimdParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mesh_ = new HexMesh(buildHexMesh(3));
    trsk_ = new TrskWeights(buildTrskWeights(*mesh_));
  }
  static void TearDownTestSuite() {
    delete trsk_;
    trsk_ = nullptr;
    delete mesh_;
    mesh_ = nullptr;
  }
  static HexMesh* mesh_;
  static TrskWeights* trsk_;
};
HexMesh* SimdParityTest::mesh_ = nullptr;
TrskWeights* SimdParityTest::trsk_ = nullptr;

// nlev sweep: every AVX2 (width 4) and AVX-512 (width 8) fringe shape --
// below one vector, exactly one, one-plus-fringe, two, the production 30
// (4*7+2 / 8*3+6), and an odd just-past-four-vectors 33.
const int kNlevSweep[] = {1, 3, 7, 8, 15, 16, 30, 33};

TEST_F(SimdParityTest, AllKernelsAllTiersAllPrecisionsBitwise) {
  for (const SimKernel kernel : swgomp::allSimKernels()) {
    for (const NsMode ns : {NsMode::kDouble, NsMode::kSingle}) {
      for (const int nlev : kNlevSweep) {
        if (nlev < 2 && kernel == SimKernel::kVertImplicitSolver) {
          continue;  // the column solve needs an interior interface
        }
        SimKernelData ref = makeSimKernelData(*mesh_, nlev);
        runKernelOnData(kernel, *mesh_, *trsk_, ns, ExecBackend::kHost, ref);
        for (const Tier tier : availableTiers()) {
          SCOPED_TRACE(std::string(kernelName(kernel)) + " ns=" +
                       (ns == NsMode::kSingle ? "single" : "double") +
                       " nlev=" + std::to_string(nlev) + " tier=" +
                       tierName(tier));
          SimKernelData got = makeSimKernelData(*mesh_, nlev);
          runSimdKernel(kernel, *mesh_, *trsk_, ns, table(tier), got);
          expectDataBitwiseEqual(ref, got);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch mechanics.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, AvailableTiersAscendFromScalarToBest) {
  const auto tiers = availableTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), Tier::kScalar);
  EXPECT_EQ(tiers.back(), bestTier());
  for (std::size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
  }
}

TEST(SimdDispatch, ForceTierClampsDownNeverUp) {
  clearForcedTier();
  EXPECT_EQ(activeTier(), bestTier());
  forceTier(Tier::kScalar);
  EXPECT_EQ(activeTier(), Tier::kScalar);
  EXPECT_EQ(table().tier, Tier::kScalar);
  // Forcing past the best available clamps to best, never invents a tier.
  forceTier(Tier::kAvx512);
  EXPECT_LE(static_cast<int>(activeTier()), static_cast<int>(bestTier()));
  clearForcedTier();
  EXPECT_EQ(activeTier(), bestTier());
}

TEST(SimdDispatch, TableReportsItsOwnTier) {
  for (const Tier t : availableTiers()) {
    EXPECT_EQ(table(t).tier, t) << tierName(t);
  }
  // Asking for a tier above best returns the best tier's table.
  EXPECT_EQ(table(Tier::kAvx512).tier, bestTier());
}

TEST(SimdDispatch, EveryTableSlotIsPopulated) {
  for (const Tier t : availableTiers()) {
    const KernelTable& tb = table(t);
    for (int si = 0; si < 2; ++si) {
      EXPECT_NE(tb.primal_normal_flux_edge[si], nullptr);
      EXPECT_NE(tb.compute_rrr[si], nullptr);
      EXPECT_NE(tb.calc_coriolis_term[si], nullptr);
      EXPECT_NE(tb.tend_grad_ke_at_edge[si], nullptr);
      EXPECT_NE(tb.div_at_cell[si], nullptr);
      EXPECT_NE(tb.tracer_hori_flux_limiter[si], nullptr);
      EXPECT_NE(tb.vert_implicit_solver[si], nullptr);
      EXPECT_NE(tb.fused_edge_fluxes[si], nullptr);
      EXPECT_NE(tb.fused_cell_diagnostics[si], nullptr);
      EXPECT_NE(tb.fused_vertex_diagnostics[si], nullptr);
      EXPECT_NE(tb.fused_scalar_tendencies[si], nullptr);
      EXPECT_NE(tb.fused_momentum_tendency[si], nullptr);
    }
  }
}

} // namespace
} // namespace grist::backend::simd
