#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <random>

#include "grist/common/workspace.hpp"
#include "grist/ml/adam.hpp"
#include "grist/ml/q1q2_net.hpp"
#include "grist/ml/rad_mlp.hpp"

namespace grist::ml {
namespace {

TEST(Adam, MinimizesQuadratic) {
  std::vector<float> x{5.f, -3.f};
  std::vector<float> g(2, 0.f);
  Adam adam(AdamConfig{.lr = 0.05f});
  adam.registerParams({{x.data(), g.data(), 2}});
  for (int it = 0; it < 400; ++it) {
    g[0] = 2 * x[0];
    g[1] = 2 * x[1];
    adam.step();
  }
  EXPECT_NEAR(x[0], 0.f, 0.05f);
  EXPECT_NEAR(x[1], 0.f, 0.05f);
  EXPECT_EQ(adam.steps(), 400);
}

TEST(Adam, NullViewThrows) {
  Adam adam;
  EXPECT_THROW(adam.registerParams({{nullptr, nullptr, 1}}), std::invalid_argument);
}

TEST(Q1Q2Net, PaperScaleParameterCount) {
  // Paper section 3.2.3: 5 ResUnits, an 11-layer CNN, ~0.5M parameters.
  Q1Q2Net net(Q1Q2NetConfig{.nlev = 30, .channels = 128, .res_units = 5});
  EXPECT_EQ(net.convLayerCount(), 11);
  EXPECT_GT(net.parameterCount(), 450'000u);
  EXPECT_LT(net.parameterCount(), 550'000u);
}

// Deterministic toy mapping the nets must be able to learn.
std::vector<ColumnSample> toyColumnSamples(int n, int nlev, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.f, 1.f);
  std::vector<ColumnSample> samples;
  for (int i = 0; i < n; ++i) {
    ColumnSample s;
    s.x = Matrix(5, nlev);
    s.y = Matrix(2, nlev);
    for (int l = 0; l < nlev; ++l) {
      for (int ci = 0; ci < 5; ++ci) s.x.at(ci, l) = dist(rng);
      // Smooth nonlinear targets from the inputs.
      s.y.at(0, l) = 0.5f * s.x.at(2, l) + 0.3f * s.x.at(3, l) * s.x.at(3, l);
      s.y.at(1, l) = std::sin(s.x.at(0, l)) - 0.2f * s.x.at(4, l);
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(Q1Q2Net, LearnsToyMapping) {
  Q1Q2NetConfig cfg;
  cfg.nlev = 8;
  cfg.channels = 16;
  cfg.res_units = 2;
  Q1Q2Net net(cfg);
  auto samples = toyColumnSamples(64, cfg.nlev, 99);
  net.fitNormalization(samples);
  Adam adam(AdamConfig{.lr = 3e-3f});
  adam.registerParams(net.paramViews());
  const double loss0 = net.evaluate(samples);
  for (int epoch = 0; epoch < 30; ++epoch) net.trainBatch(samples, adam);
  const double loss1 = net.evaluate(samples);
  EXPECT_LT(loss1, 0.3 * loss0);
}

TEST(Q1Q2Net, SaveLoadRoundTrip) {
  Q1Q2NetConfig cfg;
  cfg.nlev = 6;
  cfg.channels = 8;
  cfg.res_units = 1;
  Q1Q2Net a(cfg);
  auto samples = toyColumnSamples(8, cfg.nlev, 5);
  a.fitNormalization(samples);
  const auto path = std::filesystem::temp_directory_path() / "q1q2_test.bin";
  a.save(path.string());
  Q1Q2Net b(cfg);
  b.load(path.string());
  std::vector<double> u(cfg.nlev, 1.0), v(cfg.nlev, 2.0), t(cfg.nlev, 280.0),
      q(cfg.nlev, 0.01), p(cfg.nlev, 5e4), q1a(cfg.nlev), q2a(cfg.nlev),
      q1b(cfg.nlev), q2b(cfg.nlev);
  a.predict(u.data(), v.data(), t.data(), q.data(), p.data(), q1a.data(), q2a.data());
  b.predict(u.data(), v.data(), t.data(), q.data(), p.data(), q1b.data(), q2b.data());
  for (int l = 0; l < cfg.nlev; ++l) {
    EXPECT_FLOAT_EQ(static_cast<float>(q1a[l]), static_cast<float>(q1b[l]));
    EXPECT_FLOAT_EQ(static_cast<float>(q2a[l]), static_cast<float>(q2b[l]));
  }
  std::filesystem::remove(path);
}

TEST(Q1Q2Net, LoadShapeMismatchThrows) {
  Q1Q2NetConfig small;
  small.nlev = 6;
  small.channels = 8;
  small.res_units = 1;
  Q1Q2Net a(small);
  const auto path = std::filesystem::temp_directory_path() / "q1q2_small.bin";
  a.save(path.string());
  Q1Q2NetConfig big = small;
  big.channels = 16;
  Q1Q2Net b(big);
  EXPECT_THROW(b.load(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Q1Q2Net, BatchedPredictionBitExactVsPerColumn) {
  Q1Q2NetConfig cfg;
  cfg.nlev = 8;
  cfg.channels = 16;
  cfg.res_units = 2;
  Q1Q2Net net(cfg);
  auto samples = toyColumnSamples(32, cfg.nlev, 13);
  net.fitNormalization(samples);

  const int batch = 5, nlev = cfg.nlev;
  std::mt19937 rng(21);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> u(batch * nlev), v(batch * nlev), t(batch * nlev),
      q(batch * nlev), p(batch * nlev);
  for (int i = 0; i < batch * nlev; ++i) {
    u[i] = 10.0 * dist(rng);
    v[i] = 10.0 * dist(rng);
    t[i] = 280.0 + 30.0 * dist(rng);
    q[i] = 0.01 * (1.0 + dist(rng));
    p[i] = 5e4 * (1.2 + dist(rng));
  }
  std::vector<double> q1b(batch * nlev), q2b(batch * nlev);
  common::Workspace ws;
  ws.reserve(net.predictScratchBytes(batch));
  net.predictBatch(batch, u.data(), v.data(), t.data(), q.data(), p.data(),
                   q1b.data(), q2b.data(), ws);
  EXPECT_EQ(ws.used(), 0u);  // the frame released everything

  std::vector<double> q1s(nlev), q2s(nlev);
  for (int b = 0; b < batch; ++b) {
    net.predict(&u[b * nlev], &v[b * nlev], &t[b * nlev], &q[b * nlev],
                &p[b * nlev], q1s.data(), q2s.data());
    for (int k = 0; k < nlev; ++k) {
      EXPECT_DOUBLE_EQ(q1s[k], q1b[b * nlev + k]) << "b=" << b << " k=" << k;
      EXPECT_DOUBLE_EQ(q2s[k], q2b[b * nlev + k]) << "b=" << b << " k=" << k;
    }
  }
}

TEST(RadMlp, BatchedPredictionBitExactVsPerColumn) {
  RadMlpConfig cfg;
  cfg.nlev = 10;
  cfg.hidden = 32;
  RadMlp net(cfg);

  const int batch = 7, nlev = cfg.nlev;
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<double> t(batch * nlev), qv(batch * nlev), tskin(batch),
      coszr(batch);
  for (int i = 0; i < batch * nlev; ++i) {
    t[i] = 250.0 + 50.0 * unit(rng);
    qv[i] = 0.02 * unit(rng);
  }
  for (int b = 0; b < batch; ++b) {
    tskin[b] = 280.0 + 25.0 * unit(rng);
    coszr[b] = unit(rng);
  }
  std::vector<double> gswb(batch), glwb(batch);
  common::Workspace ws;
  ws.reserve(net.predictScratchBytes(batch));
  net.predictBatch(batch, t.data(), qv.data(), tskin.data(), coszr.data(),
                   gswb.data(), glwb.data(), ws);
  EXPECT_EQ(ws.used(), 0u);

  for (int b = 0; b < batch; ++b) {
    double gsw = 0, glw = 0;
    net.predict(&t[b * nlev], &qv[b * nlev], tskin[b], coszr[b], &gsw, &glw);
    EXPECT_DOUBLE_EQ(gsw, gswb[b]) << "b=" << b;
    EXPECT_DOUBLE_EQ(glw, glwb[b]) << "b=" << b;
  }
}

TEST(RadMlp, SevenLayersAndLearnsToyRadiation) {
  RadMlpConfig cfg;
  cfg.nlev = 10;
  cfg.hidden = 32;
  RadMlp net(cfg);
  EXPECT_EQ(net.denseLayerCount(), 7);
  // Toy "radiation": gsw ~ coszr * const, glw ~ sigma T^4-ish of lowest T.
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> unit(0.f, 1.f);
  std::vector<RadSample> samples;
  for (int i = 0; i < 128; ++i) {
    RadSample s;
    s.x.resize(2 * cfg.nlev + 2);
    for (int k = 0; k < cfg.nlev; ++k) {
      s.x[k] = 250.f + 50.f * unit(rng);             // T
      s.x[cfg.nlev + k] = 0.02f * unit(rng);         // qv
    }
    s.x[2 * cfg.nlev] = 280.f + 25.f * unit(rng);    // tskin
    s.x[2 * cfg.nlev + 1] = unit(rng);               // coszr
    const float tlow = s.x[cfg.nlev - 1];
    s.y = {900.f * s.x[2 * cfg.nlev + 1],
           5.67e-8f * tlow * tlow * tlow * tlow * 0.8f};
    samples.push_back(std::move(s));
  }
  net.fitNormalization(samples);
  Adam adam(AdamConfig{.lr = 2e-3f});
  adam.registerParams(net.paramViews());
  const double loss0 = net.evaluate(samples);
  for (int epoch = 0; epoch < 60; ++epoch) net.trainBatch(samples, adam);
  EXPECT_LT(net.evaluate(samples), 0.2 * loss0);
  // Predictions are clamped non-negative.
  std::vector<double> t(cfg.nlev, 180.0), qv(cfg.nlev, 0.0);
  double gsw = -1, glw = -1;
  net.predict(t.data(), qv.data(), 180.0, 0.0, &gsw, &glw);
  EXPECT_GE(gsw, 0.0);
  EXPECT_GE(glw, 0.0);
}

} // namespace
} // namespace grist::ml
