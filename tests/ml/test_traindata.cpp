#include <gtest/gtest.h>

#include <set>

#include "grist/dycore/init.hpp"
#include "grist/ml/traindata.hpp"
#include "grist/physics/saturation.hpp"

namespace grist::ml {
namespace {

TEST(Table1, FourPeriodsWithPaperIndices) {
  const auto scenarios = table1Scenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].period, "1-20 January 1998");
  EXPECT_DOUBLE_EQ(scenarios[0].oni, 2.2);
  EXPECT_EQ(scenarios[0].enso_phase, "El Nino");
  EXPECT_DOUBLE_EQ(scenarios[3].oni, -1.5);
  EXPECT_EQ(scenarios[3].enso_phase, "La Nina");
  // MJO ranges as in Table 1.
  EXPECT_DOUBLE_EQ(scenarios[1].mjo_lo, 2.72);
  EXPECT_DOUBLE_EQ(scenarios[1].mjo_hi, 3.71);
  // El Nino periods are warmer than La Nina ones.
  EXPECT_GT(scenarios[0].sst_base, scenarios[3].sst_base);
}

TEST(SynthesizeColumns, PhysicallyPlausibleStates) {
  const auto sc = table1Scenarios()[0];
  const physics::PhysicsInput in = synthesizeColumns(sc, 64, 24);
  for (Index c = 0; c < in.ncolumns; ++c) {
    for (int k = 0; k < in.nlev; ++k) {
      ASSERT_GT(in.t(c, k), 150.0);
      ASSERT_LT(in.t(c, k), 340.0);
      ASSERT_GE(in.qv(c, k), 0.0);
      // Not (grossly) supersaturated.
      ASSERT_LE(in.qv(c, k),
                1.05 * physics::saturationMixingRatio(in.t(c, k), in.pmid(c, k)));
      // Pressure increases downward; heights decrease downward.
      if (k > 0) {
        ASSERT_GT(in.pmid(c, k), in.pmid(c, k - 1));
        ASSERT_LT(in.zmid(c, k), in.zmid(c, k - 1));
      }
    }
    ASSERT_NEAR(in.zint(c, in.nlev), 0.0, 1e-12);
  }
}

TEST(SynthesizeColumns, DeterministicPerScenario) {
  const auto sc = table1Scenarios()[2];
  const physics::PhysicsInput a = synthesizeColumns(sc, 8, 12);
  const physics::PhysicsInput b = synthesizeColumns(sc, 8, 12);
  for (Index c = 0; c < 8; ++c) {
    for (int k = 0; k < 12; ++k) EXPECT_DOUBLE_EQ(a.t(c, k), b.t(c, k));
  }
}

TEST(HarvestSamples, ShapesAndUnits) {
  const auto sc = table1Scenarios()[1];
  physics::PhysicsInput in = synthesizeColumns(sc, 16, 20);
  physics::ConventionalSuite suite(in.ncolumns, in.nlev);
  std::vector<ColumnSample> cols;
  std::vector<RadSample> rads;
  harvestSamples(in, suite, 600.0, cols, rads);
  ASSERT_EQ(cols.size(), 16u);
  ASSERT_EQ(rads.size(), 16u);
  EXPECT_EQ(cols[0].x.rows, 5);
  EXPECT_EQ(cols[0].x.cols, 20);
  EXPECT_EQ(cols[0].y.rows, 2);
  EXPECT_EQ(rads[0].x.size(), 2u * 20 + 2);
  EXPECT_EQ(rads[0].y.size(), 2u);
}

TEST(SplitTrainTest, PaperRatioSevenToOne) {
  std::vector<ColumnSample> all(24 * 10);  // ten "days"
  for (auto& s : all) {
    s.x = Matrix(5, 4);
    s.y = Matrix(2, 4);
  }
  std::vector<ColumnSample> train, test;
  splitTrainTest(all, 12345, train, test);
  EXPECT_EQ(test.size(), 3u * 10);
  EXPECT_EQ(train.size(), 21u * 10);
  EXPECT_EQ(train.size(), 7u * test.size());
}

TEST(CoarseGrain, UniformFieldPreservedAndMeanConserved) {
  const grid::HexMesh fine = grid::buildHexMesh(4);
  const grid::HexMesh coarse = grid::buildHexMesh(2);
  const std::vector<Index> map = coarseMap(fine, coarse);
  // Every coarse cell receives some fine cells.
  std::set<Index> used(map.begin(), map.end());
  EXPECT_EQ(static_cast<Index>(used.size()), coarse.ncells);

  parallel::Field f(fine.ncells, 2);
  for (Index c = 0; c < fine.ncells; ++c) {
    f(c, 0) = 3.5;
    f(c, 1) = fine.cell_ll[c].lat;  // smooth field
  }
  const parallel::Field g = coarseGrainCells(fine, coarse, map, f);
  double fine_mean = 0, fine_area = 0, coarse_mean = 0, coarse_area = 0;
  for (Index c = 0; c < fine.ncells; ++c) {
    fine_mean += f(c, 1) * fine.cell_area[c];
    fine_area += fine.cell_area[c];
  }
  for (Index c = 0; c < coarse.ncells; ++c) {
    EXPECT_NEAR(g(c, 0), 3.5, 1e-12);
    // Aggregated latitude stays close to the coarse cell's latitude.
    EXPECT_NEAR(g(c, 1), coarse.cell_ll[c].lat, 0.2);
    coarse_mean += g(c, 1) * 1.0;
    coarse_area += 1.0;
  }
  (void)fine_mean;
  (void)fine_area;
  (void)coarse_mean;
  (void)coarse_area;
}

TEST(ResidualQ1, RecoversImposedHeating) {
  // Construct t1 = dynamics(t0) + known heating * dt; the residual method
  // must return that heating.
  const grid::HexMesh coarse = grid::buildHexMesh(2);
  const grid::TrskWeights trsk = grid::buildTrskWeights(coarse);
  dycore::DycoreConfig cfg;
  cfg.nlev = 8;
  cfg.dt = 600.0;
  const double dt = 600.0;
  dycore::State t0 = dycore::initBaroclinicWave(coarse, cfg);
  dycore::State t1 = t0;
  {
    dycore::Dycore dyn(coarse, trsk, cfg);
    dyn.step(t1);
  }
  const double heating = 2.0e-4;  // K/s in theta
  for (Index c = 0; c < coarse.ncells; ++c) {
    for (int k = 0; k < cfg.nlev; ++k) t1.theta(c, k) += heating * dt;
  }
  const parallel::Field q1 = residualQ1Theta(coarse, trsk, cfg, t0, t1, dt);
  for (Index c = 0; c < coarse.ncells; ++c) {
    for (int k = 0; k < cfg.nlev; ++k) {
      ASSERT_NEAR(q1(c, k), heating, 1e-9) << "cell " << c << " level " << k;
    }
  }
}

} // namespace
} // namespace grist::ml
