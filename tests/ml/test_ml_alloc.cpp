// Zero-allocation guard for the batched ML-physics inference path: once the
// per-thread Workspace arenas (including gemm's private packing arena) are
// warm, MlPhysicsSuite::run must not touch the heap at all.
//
// This binary overrides the global allocation operators to count heap
// traffic, so it is its own test executable (see tests/CMakeLists.txt) --
// the same pattern as tests/dycore/test_fused_kernels.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>

#include "grist/ml/ml_suite.hpp"
#include "grist/ml/traindata.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. malloc-backed so the override itself is free of
// recursion; every flavor of operator new/delete funnels through here.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long> g_heap_allocs{0};
} // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  ++g_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace grist::ml {
namespace {

long allocsDuring(const std::function<void()>& fn) {
  const long before = g_heap_allocs.load();
  fn();
  return g_heap_allocs.load() - before;
}

std::shared_ptr<Q1Q2Net> smallQ1Q2(int nlev) {
  Q1Q2NetConfig cfg;
  cfg.nlev = nlev;
  cfg.channels = 16;
  cfg.res_units = 2;
  return std::make_shared<Q1Q2Net>(cfg);
}

std::shared_ptr<RadMlp> smallRad(int nlev) {
  RadMlpConfig cfg;
  cfg.nlev = nlev;
  cfg.hidden = 32;
  return std::make_shared<RadMlp>(cfg);
}

TEST(MlAllocationGuard, SuiteRunIsHeapFreeWhenWarm) {
  const int nlev = 20;
  const Index ncol = 37;  // fringe block at the end
  physics::PhysicsInput in = synthesizeColumns(table1Scenarios()[0], ncol, nlev);
  MlPhysicsSuite suite(ncol, nlev, smallQ1Q2(nlev), smallRad(nlev));
  physics::PhysicsOutput out(ncol, nlev);
  const auto run = [&] { suite.run(in, 600.0, out); };
  run();  // warm-up: arenas (suite + gemm packing) grow here
  EXPECT_EQ(allocsDuring(run), 0);
}

TEST(MlAllocationGuard, QuantizedSuiteRunIsHeapFreeWhenWarm) {
  // The first quantized run builds the weight snapshots and executes the
  // acceptance gate (both allocate); warm runs serve the cached snapshots
  // through the shared gemm packing arena and must stay off the heap.
  const int nlev = 20;
  const Index ncol = 37;
  physics::PhysicsInput in = synthesizeColumns(table1Scenarios()[0], ncol, nlev);
  for (const Precision prec : {Precision::kBf16, Precision::kInt8}) {
    MlSuiteConfig cfg;
    cfg.precision = prec;
    // Untrained random nets exceed the trained-net 5% envelope on int8.
    if (prec == Precision::kInt8) cfg.quant_tolerance = 0.12;
    MlPhysicsSuite suite(ncol, nlev, smallQ1Q2(nlev), smallRad(nlev), cfg);
    physics::PhysicsOutput out(ncol, nlev);
    const auto run = [&] { suite.run(in, 600.0, out); };
    run();  // warm-up: snapshots quantized, gate run, arenas grown
    EXPECT_EQ(allocsDuring(run), 0) << precisionName(prec);
  }
}

TEST(MlAllocationGuard, EnsembleSuiteRunIsHeapFreeWhenWarm) {
  const int nlev = 20;
  const Index ncol = 24;
  physics::PhysicsInput in = synthesizeColumns(table1Scenarios()[0], ncol, nlev);
  auto ensemble = std::make_shared<Q1Q2Ensemble>(
      std::vector<std::shared_ptr<const Q1Q2Net>>{smallQ1Q2(nlev),
                                                  smallQ1Q2(nlev)});
  MlPhysicsSuite suite(ncol, nlev, ensemble, smallRad(nlev));
  physics::PhysicsOutput out(ncol, nlev);
  const auto run = [&] { suite.run(in, 600.0, out); };
  run();
  EXPECT_EQ(allocsDuring(run), 0);
}

} // namespace
} // namespace grist::ml
