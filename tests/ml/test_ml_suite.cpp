#include <gtest/gtest.h>

#include <memory>

#include "grist/ml/ml_suite.hpp"
#include "grist/ml/traindata.hpp"

namespace grist::ml {
namespace {

std::shared_ptr<Q1Q2Net> smallQ1Q2(int nlev) {
  Q1Q2NetConfig cfg;
  cfg.nlev = nlev;
  cfg.channels = 16;
  cfg.res_units = 2;
  return std::make_shared<Q1Q2Net>(cfg);
}

std::shared_ptr<RadMlp> smallRad(int nlev) {
  RadMlpConfig cfg;
  cfg.nlev = nlev;
  cfg.hidden = 32;
  return std::make_shared<RadMlp>(cfg);
}

TEST(MlSuite, RunsWithUntrainedNetsAndStaysFinite) {
  const int nlev = 20;
  const auto sc = table1Scenarios()[0];
  physics::PhysicsInput in = synthesizeColumns(sc, 12, nlev);
  MlPhysicsSuite suite(in.ncolumns, nlev, smallQ1Q2(nlev), smallRad(nlev));
  physics::PhysicsOutput out(in.ncolumns, nlev);
  suite.run(in, 600.0, out);
  for (Index c = 0; c < in.ncolumns; ++c) {
    EXPECT_GE(out.precip[c], 0.0);
    EXPECT_GE(out.gsw[c], 0.0);
    for (int k = 0; k < nlev; ++k) {
      ASSERT_TRUE(std::isfinite(out.dtdt(c, k)));
      ASSERT_TRUE(std::isfinite(out.dqvdt(c, k)));
    }
  }
  EXPECT_STREQ(suite.name(), "ML-physics");
}

TEST(MlSuite, NullNetworksRejected) {
  EXPECT_THROW(
      MlPhysicsSuite(4, 20, std::shared_ptr<const Q1Q2Net>{}, smallRad(20)),
      std::invalid_argument);
  EXPECT_THROW(MlPhysicsSuite(4, 20, smallQ1Q2(20), nullptr), std::invalid_argument);
}

TEST(MlSuite, NlevMismatchRejected) {
  EXPECT_THROW(MlPhysicsSuite(4, 24, smallQ1Q2(20), smallRad(24)),
               std::invalid_argument);
}

TEST(MlSuite, TrainedEmulatorTracksConventionalTendencies) {
  // The core claim behind Fig. 8: after distillation training, the ML suite
  // reproduces the conventional suite's Q1/Q2 far better than an untrained
  // network does.
  const int nlev = 20;
  const auto scenarios = table1Scenarios();
  std::vector<ColumnSample> cols;
  std::vector<RadSample> rads;
  for (const auto& sc : scenarios) {
    physics::PhysicsInput in = synthesizeColumns(sc, 96, nlev);
    physics::ConventionalSuite conv(in.ncolumns, nlev);
    harvestSamples(in, conv, 600.0, cols, rads);
  }
  auto net = smallQ1Q2(nlev);
  net->fitNormalization(cols);
  const double loss_before = net->evaluate(cols);
  Adam adam(AdamConfig{.lr = 2e-3f});
  adam.registerParams(net->paramViews());
  // Minibatch epochs.
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (std::size_t base = 0; base + 32 <= cols.size(); base += 32) {
      std::vector<ColumnSample> batch(cols.begin() + base, cols.begin() + base + 32);
      net->trainBatch(batch, adam);
    }
  }
  const double loss_after = net->evaluate(cols);
  EXPECT_LT(loss_after, 0.5 * loss_before);
}

TEST(MlSuite, ResultsIndependentOfColumnBlockSize) {
  // The batched inference path keeps the per-output accumulation order, so
  // the block size must not change a single bit of the output.
  const int nlev = 20;
  const Index ncol = 13;  // deliberately not a multiple of any block size
  const auto sc = table1Scenarios()[0];
  physics::PhysicsInput in = synthesizeColumns(sc, ncol, nlev);
  auto net = smallQ1Q2(nlev);
  auto rad = smallRad(nlev);

  const auto runWithBlock = [&](int block, physics::PhysicsOutput& out) {
    MlSuiteConfig cfg;
    cfg.column_block = block;
    MlPhysicsSuite suite(ncol, nlev, net, rad, cfg);
    suite.run(in, 600.0, out);
  };
  physics::PhysicsOutput per_column(ncol, nlev), blocked(ncol, nlev),
      oversized(ncol, nlev);
  runWithBlock(1, per_column);
  runWithBlock(5, blocked);
  runWithBlock(64, oversized);  // block larger than the column count
  for (Index c = 0; c < ncol; ++c) {
    EXPECT_DOUBLE_EQ(per_column.precip[c], blocked.precip[c]);
    EXPECT_DOUBLE_EQ(per_column.gsw[c], blocked.gsw[c]);
    EXPECT_DOUBLE_EQ(per_column.glw[c], blocked.glw[c]);
    EXPECT_DOUBLE_EQ(per_column.gsw[c], oversized.gsw[c]);
    for (int k = 0; k < nlev; ++k) {
      EXPECT_DOUBLE_EQ(per_column.dtdt(c, k), blocked.dtdt(c, k));
      EXPECT_DOUBLE_EQ(per_column.dqvdt(c, k), blocked.dqvdt(c, k));
      EXPECT_DOUBLE_EQ(per_column.dtdt(c, k), oversized.dtdt(c, k));
    }
  }
}

TEST(MlSuite, FlopAccountingIsDenseArithmetic) {
  const int nlev = 20;
  MlPhysicsSuite suite(4, nlev, smallQ1Q2(nlev), smallRad(nlev));
  // ~2 flops per parameter per level for the CNN; > 0.1 MFLOP even for the
  // small test nets (the paper-scale net is ~30 MFLOP per column).
  EXPECT_GT(suite.flopsPerColumn(), 1.0e5);
}

} // namespace
} // namespace grist::ml
