#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "grist/ml/layers.hpp"
#include "grist/ml/matrix.hpp"

namespace grist::ml {
namespace {

TEST(Gemm, MatchesHandComputedProduct) {
  Matrix a(2, 3), b(3, 2), c(2, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  float av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.a.begin());
  std::copy(bv, bv + 6, b.a.begin());
  gemm(false, false, 1.f, a, b, 0.f, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.f);
}

TEST(Gemm, TransposedVariantsAgree) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-1, 1);
  Matrix a(4, 3), at(3, 4), b(3, 5), bt(5, 3);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      a.at(i, j) = dist(rng);
      at.at(j, i) = a.at(i, j);
    }
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) {
      b.at(i, j) = dist(rng);
      bt.at(j, i) = b.at(i, j);
    }
  }
  Matrix c1(4, 5), c2(4, 5), c3(4, 5);
  gemm(false, false, 1.f, a, b, 0.f, c1);
  gemm(true, false, 1.f, at, b, 0.f, c2);
  gemm(false, true, 1.f, a, bt, 0.f, c3);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.a[i], c2.a[i], 1e-5);
    EXPECT_NEAR(c1.a[i], c3.a[i], 1e-5);
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2), c(2, 2);
  EXPECT_THROW(gemm(false, false, 1.f, a, b, 0.f, c), std::invalid_argument);
}

TEST(Conv1d, IdentityKernelPassesThrough) {
  Conv1dParams p(1, 1, 3);
  p.w.zero();
  p.w.at(0, 1) = 1.f;  // center tap
  Matrix x(1, 5);
  for (int l = 0; l < 5; ++l) x.at(0, l) = static_cast<float>(l + 1);
  Matrix col;
  const Matrix y = conv1dForward(p, x, col);
  for (int l = 0; l < 5; ++l) EXPECT_FLOAT_EQ(y.at(0, l), x.at(0, l));
}

TEST(Conv1d, SamePaddingZeroesOutside) {
  Conv1dParams p(1, 1, 3);
  p.w.zero();
  p.w.at(0, 0) = 1.f;  // left tap: y[l] = x[l-1]
  Matrix x(1, 4);
  for (int l = 0; l < 4; ++l) x.at(0, l) = static_cast<float>(l + 1);
  Matrix col;
  const Matrix y = conv1dForward(p, x, col);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.f);  // padded
  EXPECT_FLOAT_EQ(y.at(0, 1), 1.f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 3.f);
}

// Finite-difference gradient check for the convolution backward pass.
TEST(Conv1d, GradientMatchesFiniteDifference) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> dist(-0.5f, 0.5f);
  Conv1dParams p(2, 3, 3);
  initConv(p, 42);
  Matrix x(2, 6);
  for (float& v : x.a) v = dist(rng);

  // Loss = sum(y^2)/2; dL/dy = y.
  Matrix col;
  const Matrix y = conv1dForward(p, x, col);
  Conv1dParams grad(2, 3, 3);
  const Matrix dx = conv1dBackward(p, x, col, y, grad);

  const float eps = 1e-3f;
  const auto loss = [&](const Conv1dParams& pp, const Matrix& xx) {
    Matrix cc;
    const Matrix yy = conv1dForward(pp, xx, cc);
    double l = 0;
    for (const float v : yy.a) l += 0.5 * v * v;
    return l;
  };
  // Check several weight gradients.
  for (const int idx : {0, 5, 11, 17}) {
    Conv1dParams pp = p;
    pp.w.a[idx] += eps;
    const double lp = loss(pp, x);
    pp.w.a[idx] -= 2 * eps;
    const double lm = loss(pp, x);
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad.w.a[idx], fd, 2e-2 * std::max(1.0, std::abs(fd)));
  }
  // And input gradients.
  for (const int idx : {0, 4, 9}) {
    Matrix xx = x;
    xx.a[idx] += eps;
    const double lp = loss(p, xx);
    xx.a[idx] -= 2 * eps;
    const double lm = loss(p, xx);
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx.a[idx], fd, 2e-2 * std::max(1.0, std::abs(fd)));
  }
}

TEST(Dense, GradientMatchesFiniteDifference) {
  DenseParams p(4, 3);
  initDense(p, 43);
  std::vector<float> x{0.3f, -0.2f, 0.5f, 0.1f};
  const std::vector<float> y = denseForward(p, x);
  DenseParams grad(4, 3);
  const std::vector<float> dx = denseBackward(p, x, y, grad);  // L = sum y^2/2

  const float eps = 1e-3f;
  const auto loss = [&](const DenseParams& pp, const std::vector<float>& xx) {
    const std::vector<float> yy = denseForward(pp, xx);
    double l = 0;
    for (const float v : yy) l += 0.5 * v * v;
    return l;
  };
  for (const int idx : {0, 5, 11}) {
    DenseParams pp = p;
    pp.w.a[idx] += eps;
    const double lp = loss(pp, x);
    pp.w.a[idx] -= 2 * eps;
    const double lm = loss(pp, x);
    EXPECT_NEAR(grad.w.a[idx], (lp - lm) / (2 * eps), 2e-2);
  }
  for (int idx = 0; idx < 4; ++idx) {
    std::vector<float> xx = x;
    xx[idx] += eps;
    const double lp = loss(p, xx);
    xx[idx] -= 2 * eps;
    const double lm = loss(p, xx);
    EXPECT_NEAR(dx[idx], (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST(Relu, ForwardAndBackward) {
  Matrix x(1, 4);
  x.a = {-1.f, 0.f, 2.f, -3.f};
  reluInPlace(x);
  EXPECT_FLOAT_EQ(x.a[0], 0.f);
  EXPECT_FLOAT_EQ(x.a[2], 2.f);
  Matrix d(1, 4);
  d.a = {1.f, 1.f, 1.f, 1.f};
  reluBackwardInPlace(x, d);
  EXPECT_FLOAT_EQ(d.a[0], 0.f);
  EXPECT_FLOAT_EQ(d.a[2], 1.f);
}

} // namespace
} // namespace grist::ml
