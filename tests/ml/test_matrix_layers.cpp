#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "grist/ml/layers.hpp"
#include "grist/ml/matrix.hpp"

namespace grist::ml {
namespace {

Matrix randomMatrix(int rows, int cols, std::mt19937& rng) {
  std::uniform_real_distribution<float> dist(-1.f, 1.f);
  Matrix m(rows, cols);
  for (float& v : m.a) v = dist(rng);
  return m;
}

// Relative-error comparison of the blocked kernel against the naive
// reference over the same operands.
void expectBlockedMatchesNaive(int m, int n, int k, float alpha, float beta,
                               bool ta, bool tb, const GemmEpilogue& ep,
                               std::mt19937& rng) {
  const Matrix a = ta ? randomMatrix(k, m, rng) : randomMatrix(m, k, rng);
  const Matrix b = tb ? randomMatrix(n, k, rng) : randomMatrix(k, n, rng);
  Matrix c_ref = randomMatrix(m, n, rng);
  Matrix c_blk = c_ref;
  gemmNaive(m, n, k, alpha, a.a.data(), a.cols, ta, b.a.data(), b.cols, tb,
            beta, c_ref.a.data(), n, ep);
  gemmBlocked(m, n, k, alpha, a.a.data(), a.cols, ta, b.a.data(), b.cols, tb,
              beta, c_blk.a.data(), n, ep);
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    const float denom = std::max(1.f, std::abs(c_ref.a[i]));
    EXPECT_NEAR(c_blk.a[i], c_ref.a[i], 1e-5f * denom)
        << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta
        << " tb=" << tb << " alpha=" << alpha << " beta=" << beta
        << " i=" << i;
  }
}

TEST(Gemm, MatchesHandComputedProduct) {
  Matrix a(2, 3), b(3, 2), c(2, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  float av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.a.begin());
  std::copy(bv, bv + 6, b.a.begin());
  gemm(false, false, 1.f, a, b, 0.f, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.f);
}

TEST(Gemm, TransposedVariantsAgree) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-1, 1);
  Matrix a(4, 3), at(3, 4), b(3, 5), bt(5, 3);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      a.at(i, j) = dist(rng);
      at.at(j, i) = a.at(i, j);
    }
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) {
      b.at(i, j) = dist(rng);
      bt.at(j, i) = b.at(i, j);
    }
  }
  Matrix c1(4, 5), c2(4, 5), c3(4, 5);
  gemm(false, false, 1.f, a, b, 0.f, c1);
  gemm(true, false, 1.f, at, b, 0.f, c2);
  gemm(false, true, 1.f, a, bt, 0.f, c3);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.a[i], c2.a[i], 1e-5);
    EXPECT_NEAR(c1.a[i], c3.a[i], 1e-5);
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2), c(2, 2);
  EXPECT_THROW(gemm(false, false, 1.f, a, b, 0.f, c), std::invalid_argument);
}

TEST(Gemm, BlockedMatchesNaiveAllTransposeCombos) {
  std::mt19937 rng(101);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      expectBlockedMatchesNaive(37, 53, 29, 1.f, 0.f, ta, tb, {}, rng);
      expectBlockedMatchesNaive(37, 53, 29, 0.7f, -0.3f, ta, tb, {}, rng);
    }
  }
}

TEST(Gemm, BlockedMatchesNaiveFringeSizes) {
  std::mt19937 rng(202);
  // Every dimension from 1 to 17 exercises all microkernel fringe cases
  // (MR=4, NR=8) plus a couple of full tiles.
  for (int s = 1; s <= 17; ++s) {
    expectBlockedMatchesNaive(s, s, s, 1.f, 0.f, false, false, {}, rng);
    expectBlockedMatchesNaive(s, 2 * s + 1, s + 3, 1.f, 0.5f, false, false, {},
                              rng);
  }
}

TEST(Gemm, BlockedMatchesNaiveAlphaBetaEdgeCases) {
  std::mt19937 rng(303);
  for (const float alpha : {0.f, 1.f, -1.5f}) {
    for (const float beta : {0.f, 1.f, -0.25f}) {
      expectBlockedMatchesNaive(19, 23, 31, alpha, beta, false, false, {}, rng);
    }
  }
}

TEST(Gemm, BlockedMatchesNaiveLargerThanBlockSizes) {
  std::mt19937 rng(404);
  // m > MC and k > KC force multiple row panels and K blocks.
  expectBlockedMatchesNaive(kGemmMC + 5, 70, kGemmKC + 9, 1.f, 0.f, false,
                            false, {}, rng);
}

TEST(Gemm, FusedBiasAndReluEpilogue) {
  std::mt19937 rng(505);
  std::vector<float> bias(21);
  std::uniform_real_distribution<float> dist(-1.f, 1.f);
  for (float& v : bias) v = dist(rng);
  GemmEpilogue ep;
  ep.bias = bias.data();
  expectBlockedMatchesNaive(21, 33, 17, 1.f, 0.f, false, false, ep, rng);
  ep.relu = true;
  expectBlockedMatchesNaive(21, 33, 17, 1.f, 0.f, false, false, ep, rng);
  // ReLU alone (no bias).
  expectBlockedMatchesNaive(21, 33, 17, 1.f, 0.f, false, false,
                            GemmEpilogue{nullptr, true}, rng);
}

TEST(Gemm, BetaZeroNeverReadsC) {
  // With beta == 0 the output must be fully defined even if C starts as NaN.
  Matrix a(6, 6), b(6, 6), c(6, 6);
  a.a.assign(a.size(), 1.f);
  b.a.assign(b.size(), 2.f);
  c.a.assign(c.size(), std::numeric_limits<float>::quiet_NaN());
  gemm(false, false, 1.f, a, b, 0.f, c);
  for (const float v : c.a) EXPECT_FLOAT_EQ(v, 12.f);
}

TEST(Gemm, PackedPathKeepsDocumentedAccumulationOrderBitExact) {
  // The accumulation-order contract (matrix.hpp): per output element, a
  // k-ascending fp32 sum chain split into kGemmKC blocks -- partial sum per
  // block, alpha applied per block, beta folded into the first block's
  // store, epilogue on the last. The packed path must reproduce that chain
  // BIT-EXACTLY (this pins the cache-aligned panel-stride refactor: padding
  // lanes must never leak into the sums). k > kGemmKC forces two K blocks;
  // m, n, k exercise fringe tiles; the flop count forces the packed path.
  std::mt19937 rng(808);
  const int m = 21, n = 19, k = kGemmKC + 37;
  const Matrix a = randomMatrix(m, k, rng);
  const Matrix b = randomMatrix(k, n, rng);
  std::vector<float> bias(m);
  std::uniform_real_distribution<float> dist(-1.f, 1.f);
  for (float& v : bias) v = dist(rng);
  const GemmEpilogue ep{bias.data(), true};
  const float alpha = 0.75f, beta = -0.5f;

  Matrix c_ref = randomMatrix(m, n, rng);
  Matrix c_blk = c_ref;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float out = 0.f;
      for (int k0 = 0; k0 < k; k0 += kGemmKC) {
        const int kc = std::min(kGemmKC, k - k0);
        float acc = 0.f;
        for (int kk = 0; kk < kc; ++kk) {
          acc += a.at(i, k0 + kk) * b.at(k0 + kk, j);
        }
        float v = alpha * acc;
        if (k0 == 0) {
          v += beta * c_ref.at(i, j);
        } else {
          v += out;
        }
        out = v;
      }
      out += bias[i];
      if (out < 0.f) out = 0.f;
      c_ref.at(i, j) = out;
    }
  }
  gemmBlocked(m, n, k, alpha, a.a.data(), k, false, b.a.data(), n, false, beta,
              c_blk.a.data(), n, ep);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(c_blk.at(i, j), c_ref.at(i, j)) << "i=" << i << " j=" << j;
    }
  }
}

TEST(Gemm, SmallCallStaysSerialAndExact) {
  // Tiny products route through the serial direct path; the result must be
  // identical to the packed path's operation order by construction, so a
  // hand-computed check suffices.
  Matrix a(1, 2), b(2, 1), c(1, 1);
  a.a = {3.f, 4.f};
  b.a = {10.f, 100.f};
  gemm(false, false, 2.f, a, b, 0.f, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 860.f);
}

TEST(Conv1d, IdentityKernelPassesThrough) {
  Conv1dParams p(1, 1, 3);
  p.w.zero();
  p.w.at(0, 1) = 1.f;  // center tap
  Matrix x(1, 5);
  for (int l = 0; l < 5; ++l) x.at(0, l) = static_cast<float>(l + 1);
  Matrix col, y;
  conv1dForward(p, x, col, y);
  for (int l = 0; l < 5; ++l) EXPECT_FLOAT_EQ(y.at(0, l), x.at(0, l));
}

TEST(Conv1d, SamePaddingZeroesOutside) {
  Conv1dParams p(1, 1, 3);
  p.w.zero();
  p.w.at(0, 0) = 1.f;  // left tap: y[l] = x[l-1]
  Matrix x(1, 4);
  for (int l = 0; l < 4; ++l) x.at(0, l) = static_cast<float>(l + 1);
  Matrix col, y;
  conv1dForward(p, x, col, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.f);  // padded
  EXPECT_FLOAT_EQ(y.at(0, 1), 1.f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 3.f);
}

// Finite-difference gradient check for the convolution backward pass.
TEST(Conv1d, GradientMatchesFiniteDifference) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> dist(-0.5f, 0.5f);
  Conv1dParams p(2, 3, 3);
  initConv(p, 42);
  Matrix x(2, 6);
  for (float& v : x.a) v = dist(rng);

  // Loss = sum(y^2)/2; dL/dy = y.
  Matrix col, y;
  conv1dForward(p, x, col, y);
  Conv1dParams grad(2, 3, 3);
  const Matrix dx = conv1dBackward(p, x, col, y, grad);

  const float eps = 1e-3f;
  const auto loss = [&](const Conv1dParams& pp, const Matrix& xx) {
    Matrix cc, yy;
    conv1dForward(pp, xx, cc, yy);
    double l = 0;
    for (const float v : yy.a) l += 0.5 * v * v;
    return l;
  };
  // Check several weight gradients.
  for (const int idx : {0, 5, 11, 17}) {
    Conv1dParams pp = p;
    pp.w.a[idx] += eps;
    const double lp = loss(pp, x);
    pp.w.a[idx] -= 2 * eps;
    const double lm = loss(pp, x);
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad.w.a[idx], fd, 2e-2 * std::max(1.0, std::abs(fd)));
  }
  // And input gradients.
  for (const int idx : {0, 4, 9}) {
    Matrix xx = x;
    xx.a[idx] += eps;
    const double lp = loss(p, xx);
    xx.a[idx] -= 2 * eps;
    const double lm = loss(p, xx);
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx.a[idx], fd, 2e-2 * std::max(1.0, std::abs(fd)));
  }
}

TEST(Dense, GradientMatchesFiniteDifference) {
  DenseParams p(4, 3);
  initDense(p, 43);
  std::vector<float> x{0.3f, -0.2f, 0.5f, 0.1f};
  std::vector<float> y;
  denseForward(p, x, y);
  DenseParams grad(4, 3);
  const std::vector<float> dx = denseBackward(p, x, y, grad);  // L = sum y^2/2

  const float eps = 1e-3f;
  const auto loss = [&](const DenseParams& pp, const std::vector<float>& xx) {
    std::vector<float> yy;
    denseForward(pp, xx, yy);
    double l = 0;
    for (const float v : yy) l += 0.5 * v * v;
    return l;
  };
  for (const int idx : {0, 5, 11}) {
    DenseParams pp = p;
    pp.w.a[idx] += eps;
    const double lp = loss(pp, x);
    pp.w.a[idx] -= 2 * eps;
    const double lm = loss(pp, x);
    EXPECT_NEAR(grad.w.a[idx], (lp - lm) / (2 * eps), 2e-2);
  }
  for (int idx = 0; idx < 4; ++idx) {
    std::vector<float> xx = x;
    xx[idx] += eps;
    const double lp = loss(p, xx);
    xx[idx] -= 2 * eps;
    const double lm = loss(p, xx);
    EXPECT_NEAR(dx[idx], (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST(Conv1d, BatchedMatchesPerColumnBitExact) {
  std::mt19937 rng(606);
  Conv1dParams p(3, 4, 3);
  initConv(p, 99);
  const int len = 11, batch = 5;
  const Matrix x = randomMatrix(3, batch * len, rng);
  std::vector<float> col(3 * 3 * batch * len), out(4 * batch * len);
  conv1dForwardBatched(p, x.a.data(), batch, len, col.data(), out.data(),
                       /*relu=*/true);
  for (int b = 0; b < batch; ++b) {
    Matrix xb(3, len);
    for (int ci = 0; ci < 3; ++ci) {
      for (int l = 0; l < len; ++l) xb.at(ci, l) = x.at(ci, b * len + l);
    }
    Matrix cb, yb;
    conv1dForward(p, xb, cb, yb, /*relu=*/true);
    for (int co = 0; co < 4; ++co) {
      for (int l = 0; l < len; ++l) {
        // Bit-exact: the batched GEMM keeps the per-output accumulation order.
        EXPECT_EQ(out[(co * batch + b) * len + l], yb.at(co, l))
            << "b=" << b << " co=" << co << " l=" << l;
      }
    }
  }
}

TEST(Dense, BatchedMatchesPerSampleBitExact) {
  std::mt19937 rng(707);
  DenseParams p(9, 6);
  initDense(p, 77);
  const int batch = 4;
  const Matrix x = randomMatrix(9, batch, rng);  // feature-major [nin, batch]
  std::vector<float> out(6 * batch);
  denseForwardBatched(p, x.a.data(), batch, out.data(), /*relu=*/false);
  for (int b = 0; b < batch; ++b) {
    std::vector<float> xb(9), yb;
    for (int i = 0; i < 9; ++i) xb[i] = x.at(i, b);
    denseForward(p, xb, yb);
    for (int o = 0; o < 6; ++o) EXPECT_EQ(out[o * batch + b], yb[o]);
  }
}

TEST(Relu, ForwardAndBackward) {
  Matrix x(1, 4);
  x.a = {-1.f, 0.f, 2.f, -3.f};
  reluInPlace(x);
  EXPECT_FLOAT_EQ(x.a[0], 0.f);
  EXPECT_FLOAT_EQ(x.a[2], 2.f);
  Matrix d(1, 4);
  d.a = {1.f, 1.f, 1.f, 1.f};
  reluBackwardInPlace(x, d);
  EXPECT_FLOAT_EQ(d.a[0], 0.f);
  EXPECT_FLOAT_EQ(d.a[2], 1.f);
}

} // namespace
} // namespace grist::ml
