// Quantized inference path: offline bf16/int8 weight packing, the fused
// dequant-epilogue GEMM, cross-tier kernel parity, the net-level precision
// knob, and the suite's rel-L2 acceptance gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "grist/backend/quant.hpp"
#include "grist/backend/simd.hpp"
#include "grist/ml/layers.hpp"
#include "grist/ml/matrix.hpp"
#include "grist/ml/ml_suite.hpp"
#include "grist/ml/quant.hpp"
#include "grist/ml/traindata.hpp"

namespace grist::ml {
namespace {

namespace bq = grist::backend::quant;
namespace simd = grist::backend::simd;

Matrix randomMatrix(int rows, int cols, std::mt19937& rng, float lo = -1.f,
                    float hi = 1.f) {
  std::uniform_real_distribution<float> dist(lo, hi);
  Matrix m(rows, cols);
  for (float& v : m.a) v = dist(rng);
  return m;
}

/// Reference for the quantized GEMM built from the SAME scalar quantization
/// helpers the pack paths use: quantize W and B exactly like the production
/// path, accumulate in plain fp32/int32, apply the epilogue. gemmQuant's
/// numerical contract is "equals this reference", not "equals fp32".
void gemmQuantReference(Precision prec, const Matrix& w, int n, const float* b,
                        int ldb, bool trans_b, float* c, int ldc,
                        const GemmEpilogue& ep) {
  const int m = w.rows, k = w.cols;
  const auto bAt = [&](int kk, int j) {
    return trans_b ? b[static_cast<std::size_t>(j) * ldb + kk]
                   : b[static_cast<std::size_t>(kk) * ldb + j];
  };
  for (int i = 0; i < m; ++i) {
    // int8: symmetric per-row weight scale, as QuantizedWeights::pack.
    float amax = 0.f;
    for (int kk = 0; kk < k; ++kk) amax = std::max(amax, std::abs(w.at(i, kk)));
    const float wscale = amax / 127.f;
    const float winv = amax > 0.f ? 127.f / amax : 0.f;
    for (int j = 0; j < n; ++j) {
      float acc = 0.f;
      if (prec == Precision::kBf16) {
        // Fixed even-then-odd per-pair chain (the kernels' k-ascending order).
        for (int kk = 0; kk < k; ++kk) {
          acc += bq::bf16ToFloat(bq::floatToBf16(w.at(i, kk))) *
                 bq::bf16ToFloat(bq::floatToBf16(bAt(kk, j)));
        }
        c[static_cast<std::size_t>(i) * ldc + j] = acc;
      } else {
        float bmax = 0.f;
        for (int kk = 0; kk < k; ++kk) {
          bmax = std::max(bmax, std::abs(bAt(kk, j)));
        }
        const float bscale = bmax / 127.f;
        const float binv = bmax > 0.f ? 127.f / bmax : 0.f;
        std::int32_t iacc = 0;
        for (int kk = 0; kk < k; ++kk) {
          iacc += static_cast<std::int32_t>(bq::quantizeInt8(w.at(i, kk), winv)) *
                  static_cast<std::int32_t>(bq::quantizeInt8(bAt(kk, j), binv));
        }
        c[static_cast<std::size_t>(i) * ldc + j] =
            static_cast<float>(iacc) * (wscale * bscale);
      }
      float& v = c[static_cast<std::size_t>(i) * ldc + j];
      if (ep.bias) v += ep.bias[i];
      if (ep.relu && v < 0.f) v = 0.f;
    }
  }
}

void expectQuantMatchesReference(Precision prec, int m, int n, int k,
                                 bool trans_b, const GemmEpilogue& ep,
                                 std::mt19937& rng) {
  const Matrix w = randomMatrix(m, k, rng);
  const Matrix b = trans_b ? randomMatrix(n, k, rng) : randomMatrix(k, n, rng);
  const QuantizedWeights qw = QuantizedWeights::pack(prec, w);
  std::vector<float> c_ref(static_cast<std::size_t>(m) * n),
      c_q(static_cast<std::size_t>(m) * n,
          std::numeric_limits<float>::quiet_NaN());
  gemmQuantReference(prec, w, n, b.a.data(), b.cols, trans_b, c_ref.data(), n,
                     ep);
  gemmQuant(qw, n, b.a.data(), b.cols, trans_b, c_q.data(), n, ep);
  const bool native = bq::table().native_bf16 && prec == Precision::kBf16;
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    if (prec == Precision::kInt8 || !native) {
      // Exact integer accumulation / exact fp32 pair products with a fixed
      // chain: bitwise equal to the scalar reference.
      EXPECT_EQ(c_q[i], c_ref[i])
          << "prec=" << precisionName(prec) << " m=" << m << " n=" << n
          << " k=" << k << " tb=" << trans_b << " i=" << i;
    } else {
      // vdpbf16ps may order the per-pair accumulation differently.
      const float denom = std::max(1.f, std::abs(c_ref[i]));
      EXPECT_NEAR(c_q[i], c_ref[i], 2e-3f * denom)
          << "m=" << m << " n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST(QuantPack, RejectsFp32AndNonFinite) {
  Matrix w(2, 2);
  w.a = {1.f, 2.f, 3.f, 4.f};
  EXPECT_THROW(QuantizedWeights::pack(Precision::kFp32, w),
               std::invalid_argument);
  w.a[1] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(QuantizedWeights::pack(Precision::kBf16, w),
               std::invalid_argument);
  w.a[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(QuantizedWeights::pack(Precision::kInt8, w),
               std::invalid_argument);
}

TEST(QuantPack, VersionsAreUniqueAndMonotonic) {
  std::mt19937 rng(1);
  const Matrix w = randomMatrix(3, 5, rng);
  const QuantizedWeights a = QuantizedWeights::pack(Precision::kBf16, w);
  const QuantizedWeights b = QuantizedWeights::pack(Precision::kBf16, w);
  EXPECT_GT(a.version(), 0u);
  EXPECT_GT(b.version(), a.version());
}

TEST(QuantPack, Int8RowScalesAreSymmetricMaxAbs) {
  Matrix w(3, 4);
  // Row 0 spans [-2, 1], row 1 is all zero, row 2 peaks at 63.5.
  w.a = {1.f, -2.f, 0.5f, 0.25f, 0.f, 0.f, 0.f, 0.f, 63.5f, -10.f, 3.f, 0.f};
  const QuantizedWeights qw = QuantizedWeights::pack(Precision::kInt8, w);
  ASSERT_EQ(qw.rows(), 3);
  EXPECT_FLOAT_EQ(qw.rowScales()[0], 2.f / 127.f);
  EXPECT_FLOAT_EQ(qw.rowScales()[1], 0.f);  // all-zero row dequantizes to 0
  EXPECT_FLOAT_EQ(qw.rowScales()[2], 63.5f / 127.f);
}

TEST(QuantPack, PackedBytesShrinkWithPrecision) {
  std::mt19937 rng(2);
  const Matrix w = randomMatrix(64, 128, rng);
  const std::size_t fp32_bytes = sizeof(float) * w.size();
  const QuantizedWeights b16 = QuantizedWeights::pack(Precision::kBf16, w);
  const QuantizedWeights i8 = QuantizedWeights::pack(Precision::kInt8, w);
  EXPECT_LT(b16.packedBytes(), fp32_bytes);
  EXPECT_LT(i8.packedBytes(), b16.packedBytes());
}

TEST(GemmQuant, MatchesReferenceFringeSizes) {
  std::mt19937 rng(11);
  // Every dimension 1..17 exercises the kQuantMR=8 / kQuantNR=16 fringes and
  // the odd-k zero-padded tail.
  for (int s = 1; s <= 17; ++s) {
    for (const Precision prec : {Precision::kBf16, Precision::kInt8}) {
      expectQuantMatchesReference(prec, s, s, s, false, {}, rng);
      expectQuantMatchesReference(prec, s, 2 * s + 1, s + 3, false, {}, rng);
    }
  }
}

TEST(GemmQuant, MatchesReferenceTransposedB) {
  std::mt19937 rng(12);
  for (const Precision prec : {Precision::kBf16, Precision::kInt8}) {
    expectQuantMatchesReference(prec, 24, 31, 72, true, {}, rng);
    expectQuantMatchesReference(prec, 7, 16, 9, true, {}, rng);
  }
}

TEST(GemmQuant, FusedBiasAndReluEpilogue) {
  std::mt19937 rng(13);
  std::vector<float> bias(21);
  std::uniform_real_distribution<float> dist(-1.f, 1.f);
  for (float& v : bias) v = dist(rng);
  for (const Precision prec : {Precision::kBf16, Precision::kInt8}) {
    expectQuantMatchesReference(prec, 21, 33, 17, false, {bias.data(), false},
                                rng);
    expectQuantMatchesReference(prec, 21, 33, 17, false, {bias.data(), true},
                                rng);
    expectQuantMatchesReference(prec, 21, 33, 17, false, {nullptr, true}, rng);
  }
}

TEST(GemmQuant, OutputFullyWrittenFromNaN) {
  // beta == 0 by contract: every output must be defined even if C starts NaN.
  std::mt19937 rng(14);
  const Matrix w = randomMatrix(9, 13, rng);
  const Matrix b = randomMatrix(13, 19, rng);
  for (const Precision prec : {Precision::kBf16, Precision::kInt8}) {
    const QuantizedWeights qw = QuantizedWeights::pack(prec, w);
    std::vector<float> c(9 * 19, std::numeric_limits<float>::quiet_NaN());
    gemmQuant(qw, 19, b.a.data(), 19, false, c.data(), 19, {});
    for (const float v : c) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(GemmQuant, ApproximatesFp32WithinPrecisionBudget) {
  // The Fig. 8 conv shape {m, n, k} = {24, 640, 72}: quantized results track
  // the fp32 GEMM within each encoding's error budget.
  std::mt19937 rng(15);
  const int m = 24, n = 640, k = 72;
  const Matrix w = randomMatrix(m, k, rng);
  const Matrix b = randomMatrix(k, n, rng);
  std::vector<float> c_fp(m * n), c_q(m * n);
  gemmNaive(m, n, k, 1.f, w.a.data(), k, false, b.a.data(), n, false, 0.f,
            c_fp.data(), n, {});
  const auto relL2 = [&] {
    double num = 0, den = 0;
    for (int i = 0; i < m * n; ++i) {
      num += static_cast<double>(c_q[i] - c_fp[i]) * (c_q[i] - c_fp[i]);
      den += static_cast<double>(c_fp[i]) * c_fp[i];
    }
    return std::sqrt(num / den);
  };
  const QuantizedWeights qb = QuantizedWeights::pack(Precision::kBf16, w);
  gemmQuant(qb, n, b.a.data(), n, false, c_q.data(), n, {});
  EXPECT_LT(relL2(), 5e-3);  // two bf16 roundings
  const QuantizedWeights qi = QuantizedWeights::pack(Precision::kInt8, w);
  gemmQuant(qi, n, b.a.data(), n, false, c_q.data(), n, {});
  EXPECT_LT(relL2(), 5e-2);  // 7-bit symmetric quantization
}

class QuantTierParity : public ::testing::Test {
 protected:
  void TearDown() override { simd::clearForcedTier(); }
};

TEST_F(QuantTierParity, Int8BitwiseIdenticalAcrossTiers) {
  std::mt19937 rng(21);
  const Matrix w = randomMatrix(17, 37, rng);
  const Matrix b = randomMatrix(37, 29, rng);
  const QuantizedWeights qw = QuantizedWeights::pack(Precision::kInt8, w);
  std::vector<std::vector<float>> results;
  for (const simd::Tier t : simd::availableTiers()) {
    simd::forceTier(t);
    std::vector<float> c(17 * 29, std::numeric_limits<float>::quiet_NaN());
    gemmQuant(qw, 29, b.a.data(), 29, false, c.data(), 29, {});
    results.push_back(std::move(c));
  }
  for (std::size_t t = 1; t < results.size(); ++t) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      // Integer accumulation is exact: every tier agrees bit for bit.
      EXPECT_EQ(results[t][i], results[0][i]) << "tier=" << t << " i=" << i;
    }
  }
}

TEST_F(QuantTierParity, Bf16TiersAgree) {
  std::mt19937 rng(22);
  const Matrix w = randomMatrix(17, 37, rng);
  const Matrix b = randomMatrix(37, 29, rng);
  const QuantizedWeights qw = QuantizedWeights::pack(Precision::kBf16, w);
  std::vector<std::vector<float>> results;
  std::vector<bool> native;
  for (const simd::Tier t : simd::availableTiers()) {
    simd::forceTier(t);
    std::vector<float> c(17 * 29, std::numeric_limits<float>::quiet_NaN());
    gemmQuant(qw, 29, b.a.data(), 29, false, c.data(), 29, {});
    results.push_back(std::move(c));
    native.push_back(bq::table().native_bf16);
  }
  for (std::size_t t = 1; t < results.size(); ++t) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      if (!native[t] && !native[0]) {
        // Widen tiers share the fixed fp32 pair chain: bitwise identical.
        EXPECT_EQ(results[t][i], results[0][i]) << "tier=" << t << " i=" << i;
      } else {
        // Native vdpbf16ps: hardware pair-accumulation order unspecified.
        const float denom = std::max(1.f, std::abs(results[0][i]));
        EXPECT_NEAR(results[t][i], results[0][i], 2e-3f * denom)
            << "tier=" << t << " i=" << i;
      }
    }
  }
}

TEST(QuantLayers, Conv1dQuantShapeMismatchThrows) {
  std::mt19937 rng(31);
  Conv1dParams p(3, 4, 3);
  initConv(p, 5);
  const QuantizedWeights wrong =
      QuantizedWeights::pack(Precision::kBf16, randomMatrix(4, 4, rng));
  std::vector<float> x(3 * 2 * 5), col(3 * 3 * 2 * 5), out(4 * 2 * 5);
  EXPECT_THROW(conv1dForwardBatchedQuant(p, wrong, x.data(), 2, 5, col.data(),
                                         out.data(), false),
               std::invalid_argument);
}

TEST(QuantNet, PredictBatchTracksFp32WithinRelL2) {
  Q1Q2NetConfig cfg;
  cfg.nlev = 20;
  cfg.channels = 16;
  cfg.res_units = 2;
  const Q1Q2Net net(cfg);
  const int batch = 8, nlev = cfg.nlev;
  std::mt19937 rng(41);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const std::size_t bl = static_cast<std::size_t>(batch) * nlev;
  std::vector<double> u(bl), v(bl), t(bl), q(bl), p(bl);
  for (std::size_t i = 0; i < bl; ++i) {
    u[i] = 20 * dist(rng) - 10;
    v[i] = 20 * dist(rng) - 10;
    t[i] = 220 + 80 * dist(rng);
    q[i] = 0.02 * dist(rng);
    p[i] = 1e4 + 9e4 * dist(rng);
  }
  auto& ws = common::Workspace::threadLocal();
  if (ws.used() == 0) ws.reserve(net.predictScratchBytes(batch));
  std::vector<double> q1_fp(bl), q2_fp(bl), q1_q(bl), q2_q(bl);
  net.predictBatch(batch, u.data(), v.data(), t.data(), q.data(), p.data(),
                   q1_fp.data(), q2_fp.data(), ws);
  const auto relL2 = [&](const std::vector<double>& a,
                         const std::vector<double>& b) {
    double num = 0, den = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      num += (a[i] - b[i]) * (a[i] - b[i]);
      den += b[i] * b[i];
    }
    return std::sqrt(num / den);
  };
  for (const Precision prec : {Precision::kBf16, Precision::kInt8}) {
    net.predictBatch(batch, u.data(), v.data(), t.data(), q.data(), p.data(),
                     q1_q.data(), q2_q.data(), ws, prec);
    EXPECT_LT(relL2(q1_q, q1_fp), 0.05) << precisionName(prec);
    EXPECT_LT(relL2(q2_q, q2_fp), 0.05) << precisionName(prec);
  }
}

TEST(QuantNet, SnapshotVersionLifecycle) {
  Q1Q2NetConfig cfg;
  cfg.nlev = 12;
  cfg.channels = 8;
  cfg.res_units = 1;
  Q1Q2Net net(cfg);
  EXPECT_EQ(net.quantizedVersion(Precision::kInt8), 0u);  // not built yet
  EXPECT_EQ(net.quantizedVersion(Precision::kFp32), 0u);  // fp32 never has one
  net.ensureQuantized(Precision::kInt8);
  const std::uint64_t v1 = net.quantizedVersion(Precision::kInt8);
  EXPECT_GT(v1, 0u);
  net.ensureQuantized(Precision::kInt8);  // idempotent
  EXPECT_EQ(net.quantizedVersion(Precision::kInt8), v1);
  // Training invalidates: the next build gets a strictly newer version.
  std::vector<ColumnSample> batch(2);
  std::mt19937 rng(51);
  std::uniform_real_distribution<float> dist(-1.f, 1.f);
  for (auto& s : batch) {
    s.x = Matrix(5, cfg.nlev);
    s.y = Matrix(2, cfg.nlev);
    for (float& x : s.x.a) x = dist(rng);
    for (float& y : s.y.a) y = dist(rng);
  }
  Adam adam;
  adam.registerParams(net.paramViews());
  net.trainBatch(batch, adam);
  EXPECT_EQ(net.quantizedVersion(Precision::kInt8), 0u);  // invalidated
  net.ensureQuantized(Precision::kInt8);
  EXPECT_GT(net.quantizedVersion(Precision::kInt8), v1);
}

std::shared_ptr<Q1Q2Net> smallQ1Q2(int nlev) {
  Q1Q2NetConfig cfg;
  cfg.nlev = nlev;
  cfg.channels = 16;
  cfg.res_units = 2;
  return std::make_shared<Q1Q2Net>(cfg);
}

std::shared_ptr<RadMlp> smallRad(int nlev) {
  RadMlpConfig cfg;
  cfg.nlev = nlev;
  cfg.hidden = 32;
  return std::make_shared<RadMlp>(cfg);
}

TEST(QuantSuite, QuantizedRunPassesGateAndStaysFinite) {
  const int nlev = 20;
  physics::PhysicsInput in = synthesizeColumns(table1Scenarios()[0], 12, nlev);
  for (const Precision prec : {Precision::kBf16, Precision::kInt8}) {
    MlSuiteConfig cfg;
    cfg.precision = prec;
    // Untrained random-weight nets sit above the trained operating point the
    // 5% Table 3 envelope is calibrated for (the 8-layer RadMlp compounds the
    // 7-bit activation quantization); widen the int8 envelope accordingly.
    if (prec == Precision::kInt8) cfg.quant_tolerance = 0.12;
    MlPhysicsSuite suite(in.ncolumns, nlev, smallQ1Q2(nlev), smallRad(nlev),
                         cfg);
    physics::PhysicsOutput out(in.ncolumns, nlev);
    suite.run(in, 600.0, out);
    // The gate ran and recorded all four outputs within the envelope.
    ASSERT_EQ(suite.quantGateRecords().size(), 4u) << precisionName(prec);
    for (const auto& [var, rel] : suite.quantGateRecords()) {
      EXPECT_LE(rel, cfg.quant_tolerance) << precisionName(prec) << " " << var;
    }
    for (Index c = 0; c < in.ncolumns; ++c) {
      for (int k = 0; k < nlev; ++k) {
        ASSERT_TRUE(std::isfinite(out.dtdt(c, k)));
        ASSERT_TRUE(std::isfinite(out.dqvdt(c, k)));
      }
    }
  }
}

TEST(QuantSuite, GateRefusesOutOfEnvelopeQuantization) {
  // An impossible tolerance: the suite must refuse to serve the quantized
  // snapshot rather than silently degrade.
  const int nlev = 20;
  physics::PhysicsInput in = synthesizeColumns(table1Scenarios()[0], 8, nlev);
  MlSuiteConfig cfg;
  cfg.precision = Precision::kInt8;
  cfg.quant_tolerance = 1e-12;
  MlPhysicsSuite suite(in.ncolumns, nlev, smallQ1Q2(nlev), smallRad(nlev), cfg);
  physics::PhysicsOutput out(in.ncolumns, nlev);
  EXPECT_THROW(suite.run(in, 600.0, out), std::runtime_error);
}

TEST(QuantSuite, Fp32PathUnchangedByPrecisionMachinery) {
  // Default-precision runs must not consult the gate at all.
  const int nlev = 20;
  physics::PhysicsInput in = synthesizeColumns(table1Scenarios()[0], 6, nlev);
  MlSuiteConfig cfg;
  cfg.quant_tolerance = 0.0;  // would reject everything if the gate ran
  MlPhysicsSuite suite(in.ncolumns, nlev, smallQ1Q2(nlev), smallRad(nlev), cfg);
  physics::PhysicsOutput out(in.ncolumns, nlev);
  EXPECT_NO_THROW(suite.run(in, 600.0, out));
  EXPECT_TRUE(suite.quantGateRecords().empty());
}

} // namespace
} // namespace grist::ml
