#include "grist/ml/ensemble.hpp"

#include <gtest/gtest.h>

#include "grist/ml/ml_suite.hpp"
#include "grist/ml/traindata.hpp"

namespace grist::ml {
namespace {

std::shared_ptr<Q1Q2Net> makeNet(int nlev, std::uint64_t seed) {
  Q1Q2NetConfig cfg;
  cfg.nlev = nlev;
  cfg.channels = 12;
  cfg.res_units = 1;
  cfg.seed = seed;
  return std::make_shared<Q1Q2Net>(cfg);
}

struct Column {
  std::vector<double> u, v, t, q, p;
  explicit Column(int nlev)
      : u(nlev, 5.0), v(nlev, -2.0), t(nlev, 280.0), q(nlev, 0.008), p(nlev, 6e4) {}
};

TEST(Ensemble, RejectsBadMemberSets) {
  EXPECT_THROW(Q1Q2Ensemble({}), std::invalid_argument);
  EXPECT_THROW(Q1Q2Ensemble({nullptr}), std::invalid_argument);
  Q1Q2NetConfig other;
  other.nlev = 12;
  other.channels = 12;
  other.res_units = 1;
  EXPECT_THROW(Q1Q2Ensemble({makeNet(8, 1), std::make_shared<Q1Q2Net>(other)}),
               std::invalid_argument);
}

TEST(Ensemble, RejectsBadMembersAtAnyPosition) {
  // Validation must scan the whole set, not just the head: a null or
  // nlev-mismatched member hiding behind valid ones still throws.
  EXPECT_THROW(Q1Q2Ensemble({makeNet(8, 1), makeNet(8, 2), nullptr}),
               std::invalid_argument);
  Q1Q2NetConfig other;
  other.nlev = 12;
  other.channels = 12;
  other.res_units = 1;
  EXPECT_THROW(Q1Q2Ensemble({makeNet(8, 1), makeNet(8, 2),
                             std::make_shared<Q1Q2Net>(other)}),
               std::invalid_argument);
}

TEST(Ensemble, SingleMemberMatchesTheMember) {
  const int nlev = 8;
  auto net = makeNet(nlev, 7);
  Q1Q2Ensemble ensemble({net});
  const Column col(nlev);
  std::vector<double> q1a(nlev), q2a(nlev), q1b(nlev), q2b(nlev);
  net->predict(col.u.data(), col.v.data(), col.t.data(), col.q.data(), col.p.data(),
               q1a.data(), q2a.data());
  ensemble.predict(col.u.data(), col.v.data(), col.t.data(), col.q.data(),
                   col.p.data(), q1b.data(), q2b.data());
  for (int k = 0; k < nlev; ++k) {
    EXPECT_DOUBLE_EQ(q1a[k], q1b[k]);
    EXPECT_DOUBLE_EQ(q2a[k], q2b[k]);
  }
}

TEST(Ensemble, MeanOfMembersAndBoundedByExtremes) {
  const int nlev = 8;
  auto a = makeNet(nlev, 11);
  auto b = makeNet(nlev, 22);
  auto c = makeNet(nlev, 33);
  Q1Q2Ensemble ensemble({a, b, c});
  EXPECT_EQ(ensemble.size(), 3u);
  const Column col(nlev);
  std::vector<double> q1(nlev), q2(nlev);
  ensemble.predict(col.u.data(), col.v.data(), col.t.data(), col.q.data(),
                   col.p.data(), q1.data(), q2.data());
  std::vector<double> q1m(nlev), q2m(nlev);
  std::vector<double> lo(nlev, 1e30), hi(nlev, -1e30), sum(nlev, 0.0);
  for (const auto& net : {a, b, c}) {
    net->predict(col.u.data(), col.v.data(), col.t.data(), col.q.data(),
                 col.p.data(), q1m.data(), q2m.data());
    for (int k = 0; k < nlev; ++k) {
      lo[k] = std::min(lo[k], q1m[k]);
      hi[k] = std::max(hi[k], q1m[k]);
      sum[k] += q1m[k];
    }
  }
  for (int k = 0; k < nlev; ++k) {
    EXPECT_NEAR(q1[k], sum[k] / 3.0, 1e-12);
    EXPECT_GE(q1[k], lo[k] - 1e-12);  // mean never exceeds the extremes
    EXPECT_LE(q1[k], hi[k] + 1e-12);
  }
}

TEST(Ensemble, BatchedPredictionBitExactVsPerColumn) {
  const int nlev = 8, batch = 3;
  Q1Q2Ensemble ensemble({makeNet(nlev, 11), makeNet(nlev, 22)});
  std::vector<double> u(batch * nlev), v(batch * nlev), t(batch * nlev),
      q(batch * nlev), p(batch * nlev);
  for (int i = 0; i < batch * nlev; ++i) {
    u[i] = 5.0 + 0.1 * i;
    v[i] = -2.0 + 0.05 * i;
    t[i] = 280.0 - 0.2 * i;
    q[i] = 0.008;
    p[i] = 6e4 + 100.0 * i;
  }
  std::vector<double> q1b(batch * nlev), q2b(batch * nlev);
  common::Workspace ws;
  ws.reserve(ensemble.predictScratchBytes(batch));
  ensemble.predictBatch(batch, u.data(), v.data(), t.data(), q.data(), p.data(),
                        q1b.data(), q2b.data(), ws);
  std::vector<double> q1s(nlev), q2s(nlev);
  for (int b = 0; b < batch; ++b) {
    ensemble.predict(&u[b * nlev], &v[b * nlev], &t[b * nlev], &q[b * nlev],
                     &p[b * nlev], q1s.data(), q2s.data());
    for (int k = 0; k < nlev; ++k) {
      EXPECT_DOUBLE_EQ(q1s[k], q1b[b * nlev + k]);
      EXPECT_DOUBLE_EQ(q2s[k], q2b[b * nlev + k]);
    }
  }
}

TEST(Ensemble, SpreadPositiveForDistinctMembersZeroForClones) {
  const int nlev = 8;
  auto a = makeNet(nlev, 11);
  const Column col(nlev);
  std::vector<double> spread(nlev);

  Q1Q2Ensemble clones({a, a, a});
  clones.spread(col.u.data(), col.v.data(), col.t.data(), col.q.data(), col.p.data(),
                spread.data());
  for (int k = 0; k < nlev; ++k) EXPECT_NEAR(spread[k], 0.0, 1e-12);

  Q1Q2Ensemble distinct({a, makeNet(nlev, 22), makeNet(nlev, 33)});
  distinct.spread(col.u.data(), col.v.data(), col.t.data(), col.q.data(),
                  col.p.data(), spread.data());
  double total = 0;
  for (int k = 0; k < nlev; ++k) total += spread[k];
  EXPECT_GT(total, 0.0);
}

TEST(Ensemble, SpreadMatchesManualPopulationStdDev) {
  const int nlev = 8;
  const std::vector<std::shared_ptr<const Q1Q2Net>> nets{
      makeNet(nlev, 11), makeNet(nlev, 22), makeNet(nlev, 33)};
  Q1Q2Ensemble ensemble(nets);
  const Column col(nlev);
  std::vector<double> spread(nlev);
  ensemble.spread(col.u.data(), col.v.data(), col.t.data(), col.q.data(),
                  col.p.data(), spread.data());

  // Manual two-pass population std-dev of Q1 across the members.
  std::vector<std::vector<double>> q1(nets.size(), std::vector<double>(nlev));
  std::vector<double> q2(nlev);
  for (std::size_t m = 0; m < nets.size(); ++m) {
    nets[m]->predict(col.u.data(), col.v.data(), col.t.data(), col.q.data(),
                     col.p.data(), q1[m].data(), q2.data());
  }
  for (int k = 0; k < nlev; ++k) {
    double mu = 0;
    for (const auto& member : q1) mu += member[k];
    mu /= static_cast<double>(nets.size());
    double var = 0;
    for (const auto& member : q1) var += (member[k] - mu) * (member[k] - mu);
    var /= static_cast<double>(nets.size());
    EXPECT_NEAR(spread[k], std::sqrt(var), 1e-12 + 1e-9 * std::sqrt(var));
  }
}

TEST(Ensemble, DrivesTheMlSuite) {
  const int nlev = 20;
  auto ensemble = std::make_shared<Q1Q2Ensemble>(
      std::vector<std::shared_ptr<const Q1Q2Net>>{makeNet(nlev, 1), makeNet(nlev, 2)});
  RadMlpConfig rcfg;
  rcfg.nlev = nlev;
  rcfg.hidden = 16;
  auto rad = std::make_shared<RadMlp>(rcfg);
  MlPhysicsSuite suite(8, nlev, ensemble, rad);
  physics::PhysicsInput in = synthesizeColumns(table1Scenarios()[0], 8, nlev);
  physics::PhysicsOutput out(8, nlev);
  suite.run(in, 600.0, out);
  for (Index c = 0; c < 8; ++c) {
    for (int k = 0; k < nlev; ++k) ASSERT_TRUE(std::isfinite(out.dtdt(c, k)));
  }
  // Flop accounting counts every member.
  EXPECT_GT(suite.flopsPerColumn(),
            2.0 * ensemble->parameterCount() * nlev * 0.99);
}

} // namespace
} // namespace grist::ml
