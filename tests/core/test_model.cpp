#include "grist/core/model.hpp"

#include <gtest/gtest.h>

#include "grist/dycore/init.hpp"
#include "grist/ml/traindata.hpp"

namespace grist::core {
namespace {

TEST(SchemeLabels, MatchTable3) {
  EXPECT_STREQ(schemeLabel(precision::NsMode::kDouble, PhysicsScheme::kConventional),
               "DP-PHY");
  EXPECT_STREQ(schemeLabel(precision::NsMode::kDouble, PhysicsScheme::kMl), "DP-ML");
  EXPECT_STREQ(schemeLabel(precision::NsMode::kSingle, PhysicsScheme::kConventional),
               "MIX-PHY");
  EXPECT_STREQ(schemeLabel(precision::NsMode::kSingle, PhysicsScheme::kMl), "MIX-ML");
}

class ModelRun : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(2);
    trsk_ = grid::buildTrskWeights(mesh_);
    config_.dyn.nlev = 10;
    config_.dyn.dt = 600.0;
    config_.trac_interval = 4;
    config_.phy_interval = 8;
  }
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  ModelConfig config_;
};

TEST_F(ModelRun, ConventionalModelRunsStable) {
  Model model(mesh_, trsk_, config_,
              dycore::initBaroclinicWave(mesh_, config_.dyn, /*ntracers=*/3));
  EXPECT_STREQ(model.schemeName(), "DP-PHY");
  model.run(24);  // 4 hours, includes tracer + physics steps
  EXPECT_NEAR(model.simDays(), 24.0 * 600.0 / 86400.0, 1e-12);
  const auto& st = model.state();
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < config_.dyn.nlev; ++k) {
      ASSERT_TRUE(std::isfinite(st.theta(c, k)));
      ASSERT_GT(st.delp(c, k), 0.0);
      ASSERT_GE(st.tracers[0](c, k), 0.0);
    }
  }
  for (const double p : model.accumulatedPrecip()) {
    ASSERT_GE(p, 0.0);
    ASSERT_TRUE(std::isfinite(p));
  }
}

TEST_F(ModelRun, PhysicsChangesTheSolution) {
  Model with_physics(mesh_, trsk_, config_,
                     dycore::initBaroclinicWave(mesh_, config_.dyn, 3));
  ModelConfig no_phys = config_;
  no_phys.phy_interval = 1000000;  // physics never fires
  Model without_physics(mesh_, trsk_, no_phys,
                        dycore::initBaroclinicWave(mesh_, no_phys.dyn, 3));
  with_physics.run(16);
  without_physics.run(16);
  double diff = 0;
  for (Index c = 0; c < mesh_.ncells; ++c) {
    diff += std::abs(with_physics.state().theta(c, 5) -
                     without_physics.state().theta(c, 5));
  }
  EXPECT_GT(diff, 1e-6);
}

TEST_F(ModelRun, MlModelRunsWithTrainedNets) {
  // Quick distillation on scenario columns, then an online-coupled run.
  const int nlev = config_.dyn.nlev;
  ml::Q1Q2NetConfig qcfg;
  qcfg.nlev = nlev;
  qcfg.channels = 16;
  qcfg.res_units = 2;
  auto q1q2 = std::make_shared<ml::Q1Q2Net>(qcfg);
  ml::RadMlpConfig rcfg;
  rcfg.nlev = nlev;
  rcfg.hidden = 32;
  auto rad = std::make_shared<ml::RadMlp>(rcfg);

  std::vector<ml::ColumnSample> cols;
  std::vector<ml::RadSample> rads;
  physics::PhysicsInput in = ml::synthesizeColumns(ml::table1Scenarios()[0], 64, nlev);
  physics::ConventionalSuite conv(in.ncolumns, nlev);
  ml::harvestSamples(in, conv, 600.0, cols, rads);
  q1q2->fitNormalization(cols);
  rad->fitNormalization(rads);
  ml::Adam a1, a2;
  a1.registerParams(q1q2->paramViews());
  a2.registerParams(rad->paramViews());
  for (int e = 0; e < 3; ++e) {
    q1q2->trainBatch(cols, a1);
    rad->trainBatch(rads, a2);
  }

  ModelConfig ml_config = config_;
  ml_config.scheme = PhysicsScheme::kMl;
  ml_config.q1q2 = q1q2;
  ml_config.rad_mlp = rad;
  Model model(mesh_, trsk_, ml_config,
              dycore::initBaroclinicWave(mesh_, ml_config.dyn, 3));
  EXPECT_STREQ(model.schemeName(), "DP-ML");
  model.run(16);
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < nlev; ++k) {
      ASSERT_TRUE(std::isfinite(model.state().theta(c, k)));
    }
  }
}

TEST_F(ModelRun, MlSchemeWithoutNetsThrows) {
  ModelConfig bad = config_;
  bad.scheme = PhysicsScheme::kMl;
  EXPECT_THROW(Model(mesh_, trsk_, bad, dycore::initBaroclinicWave(mesh_, bad.dyn, 3)),
               std::invalid_argument);
}

TEST_F(ModelRun, TooFewTracersThrows) {
  EXPECT_THROW(
      Model(mesh_, trsk_, config_, dycore::initBaroclinicWave(mesh_, config_.dyn, 1)),
      std::invalid_argument);
}

} // namespace
} // namespace grist::core
