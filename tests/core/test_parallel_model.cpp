#include "grist/core/parallel_model.hpp"

#include <gtest/gtest.h>

#include "grist/dycore/init.hpp"

namespace grist::core {
namespace {

class ParallelRanks : public ::testing::TestWithParam<Index> {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 8;
    cfg_.dt = 450.0;
  }
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  dycore::DycoreConfig cfg_;
};

TEST_P(ParallelRanks, MatchesSerialRunBitwise) {
  // The decomposition correctness gate: with double precision and
  // deterministic kernels, a multi-rank run must equal the single-domain
  // run bit for bit.
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);

  dycore::State serial = initial;
  dycore::Dycore dycore(mesh_, trsk_, cfg_);
  ParallelModel parallel(mesh_, trsk_, cfg_, GetParam(), initial);
  const int nsteps = 4;
  for (int s = 0; s < nsteps; ++s) dycore.step(serial);
  parallel.run(nsteps);
  const dycore::State gathered = parallel.gatherState();

  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_EQ(gathered.delp(c, k), serial.delp(c, k)) << "cell " << c;
      ASSERT_EQ(gathered.theta(c, k), serial.theta(c, k)) << "cell " << c;
    }
    for (int k = 0; k <= cfg_.nlev; ++k) {
      ASSERT_EQ(gathered.w(c, k), serial.w(c, k));
      ASSERT_EQ(gathered.phi(c, k), serial.phi(c, k));
    }
  }
  for (Index e = 0; e < mesh_.nedges; ++e) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_EQ(gathered.u(e, k), serial.u(e, k)) << "edge " << e;
    }
  }
}

TEST_P(ParallelRanks, CommunicationVolumeAccounted) {
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);
  ParallelModel parallel(mesh_, trsk_, cfg_, GetParam(), initial);
  if (GetParam() == 1) {
    parallel.run(1);
    EXPECT_EQ(parallel.commStats().bytes, 0);
    return;
  }
  const auto before = parallel.commStats();
  parallel.run(2);
  const auto after = parallel.commStats();
  // 4 exchanges per step (3 RK stages + vertical solve).
  EXPECT_EQ(after.exchanges - before.exchanges, 8);
  EXPECT_GT(after.bytes, before.bytes);
}

TEST_P(ParallelRanks, OverlapMatchesLockstepBitwiseBothPrecisions) {
  // The overlap gate: the boundary-first post/wait schedule only permutes
  // independent per-entity loops and exchanges exact copies, so it must
  // reproduce the lockstep schedule bit for bit -- in BOTH precision modes
  // (float runs take different code paths through the NS kernels, so this
  // is not implied by the double-precision serial gate).
  for (const auto ns : {precision::NsMode::kDouble, precision::NsMode::kSingle}) {
    cfg_.ns = ns;
    const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);

    ParallelModel lockstep(mesh_, trsk_, cfg_, GetParam(), initial);
    lockstep.setSchedule(ParallelModel::Schedule::kLockstep);
    ParallelModel overlap(mesh_, trsk_, cfg_, GetParam(), initial);
    ASSERT_EQ(overlap.schedule(), ParallelModel::Schedule::kOverlap);

    const int nsteps = 3;
    lockstep.run(nsteps);
    overlap.run(nsteps);
    const dycore::State a = lockstep.gatherState();
    const dycore::State b = overlap.gatherState();

    for (Index c = 0; c < mesh_.ncells; ++c) {
      for (int k = 0; k < cfg_.nlev; ++k) {
        ASSERT_EQ(b.delp(c, k), a.delp(c, k)) << "cell " << c;
        ASSERT_EQ(b.theta(c, k), a.theta(c, k)) << "cell " << c;
      }
      for (int k = 0; k <= cfg_.nlev; ++k) {
        ASSERT_EQ(b.w(c, k), a.w(c, k));
        ASSERT_EQ(b.phi(c, k), a.phi(c, k));
      }
    }
    for (Index e = 0; e < mesh_.nedges; ++e) {
      for (int k = 0; k < cfg_.nlev; ++k) {
        ASSERT_EQ(b.u(e, k), a.u(e, k)) << "edge " << e;
      }
    }
  }
}

TEST_P(ParallelRanks, SeedSpawnScheduleMatchesPooledSchedules) {
  // The kSpawnUnpacked baseline (per-step threads + element-wise exchange)
  // must agree with the pooled packed schedules -- same model, different
  // transport and thread lifecycle only.
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);
  ParallelModel seed(mesh_, trsk_, cfg_, GetParam(), initial);
  seed.setSchedule(ParallelModel::Schedule::kSpawnUnpacked);
  ParallelModel overlap(mesh_, trsk_, cfg_, GetParam(), initial);
  seed.run(2);
  overlap.run(2);
  const dycore::State a = seed.gatherState();
  const dycore::State b = overlap.gatherState();
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_EQ(b.delp(c, k), a.delp(c, k)) << "cell " << c;
      ASSERT_EQ(b.theta(c, k), a.theta(c, k)) << "cell " << c;
    }
  }
  for (Index e = 0; e < mesh_.nedges; ++e) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_EQ(b.u(e, k), a.u(e, k)) << "edge " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParallelRanks, ::testing::Values(1, 2, 4, 7));

} // namespace
} // namespace grist::core
