#include "grist/core/parallel_model.hpp"

#include <gtest/gtest.h>

#include "grist/dycore/init.hpp"

namespace grist::core {
namespace {

class ParallelRanks : public ::testing::TestWithParam<Index> {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 8;
    cfg_.dt = 450.0;
  }
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  dycore::DycoreConfig cfg_;
};

TEST_P(ParallelRanks, MatchesSerialRunBitwise) {
  // The decomposition correctness gate: with double precision and
  // deterministic kernels, a multi-rank run must equal the single-domain
  // run bit for bit.
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);

  dycore::State serial = initial;
  dycore::Dycore dycore(mesh_, trsk_, cfg_);
  ParallelModel parallel(mesh_, trsk_, cfg_, GetParam(), initial);
  const int nsteps = 4;
  for (int s = 0; s < nsteps; ++s) dycore.step(serial);
  parallel.run(nsteps);
  const dycore::State gathered = parallel.gatherState();

  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_EQ(gathered.delp(c, k), serial.delp(c, k)) << "cell " << c;
      ASSERT_EQ(gathered.theta(c, k), serial.theta(c, k)) << "cell " << c;
    }
    for (int k = 0; k <= cfg_.nlev; ++k) {
      ASSERT_EQ(gathered.w(c, k), serial.w(c, k));
      ASSERT_EQ(gathered.phi(c, k), serial.phi(c, k));
    }
  }
  for (Index e = 0; e < mesh_.nedges; ++e) {
    for (int k = 0; k < cfg_.nlev; ++k) {
      ASSERT_EQ(gathered.u(e, k), serial.u(e, k)) << "edge " << e;
    }
  }
}

TEST_P(ParallelRanks, CommunicationVolumeAccounted) {
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);
  ParallelModel parallel(mesh_, trsk_, cfg_, GetParam(), initial);
  if (GetParam() == 1) {
    parallel.run(1);
    EXPECT_EQ(parallel.commStats().bytes, 0);
    return;
  }
  const auto before = parallel.commStats();
  parallel.run(2);
  const auto after = parallel.commStats();
  // 4 exchanges per step (3 RK stages + vertical solve).
  EXPECT_EQ(after.exchanges - before.exchanges, 8);
  EXPECT_GT(after.bytes, before.bytes);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParallelRanks, ::testing::Values(1, 2, 4, 7));

} // namespace
} // namespace grist::core
