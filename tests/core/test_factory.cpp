#include "grist/core/factory.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace grist::core {
namespace {

TEST(Factory, BuildsEveryTable3SchemeLabel) {
  // Conventional schemes build directly; ML schemes need weight files.
  for (const char* scheme : {"DP-PHY", "MIX-PHY"}) {
    const Config cfg = Config::fromString(std::string("grid_level = 2\nscheme = ") +
                                          scheme + "\nnlev = 8");
    const auto bundle = makeModelFromConfig(cfg);
    EXPECT_STREQ(bundle->model->schemeName(), scheme);
    EXPECT_EQ(bundle->mesh.ncells, 162);
  }
}

TEST(Factory, MlSchemeLoadsWeights) {
  const auto dir = std::filesystem::temp_directory_path() / "grist_factory_test";
  std::filesystem::create_directories(dir);
  ml::Q1Q2NetConfig qcfg;
  qcfg.nlev = 8;
  qcfg.channels = 8;
  qcfg.res_units = 1;
  ml::Q1Q2Net q1q2(qcfg);
  q1q2.save((dir / "q.bin").string());
  ml::RadMlpConfig rcfg;
  rcfg.nlev = 8;
  rcfg.hidden = 16;
  ml::RadMlp rad(rcfg);
  rad.save((dir / "r.bin").string());

  const Config cfg = Config::fromString(
      "grid_level = 2\nnlev = 8\nscheme = MIX-ML\n"
      "q1q2_channels = 8\nq1q2_res_units = 1\nrad_hidden = 16\n"
      "q1q2_weights = " + (dir / "q.bin").string() + "\n" +
      "rad_weights = " + (dir / "r.bin").string());
  const auto bundle = makeModelFromConfig(cfg);
  EXPECT_STREQ(bundle->model->schemeName(), "MIX-ML");
  bundle->model->run(2);  // runs without blowing up
  std::filesystem::remove_all(dir);
}

TEST(Factory, EveryCaseInitializes) {
  for (const char* case_name : {"rest", "baroclinic", "typhoon", "bubble"}) {
    const Config cfg = Config::fromString(
        std::string("grid_level = 1\nnlev = 6\ncase = ") + case_name);
    const auto bundle = makeModelFromConfig(cfg);
    EXPECT_EQ(bundle->model->state().nlev, 6);
  }
}

TEST(Factory, BadInputsThrow) {
  EXPECT_THROW(makeModelFromConfig(Config::fromString("scheme = TURBO")),
               std::invalid_argument);
  EXPECT_THROW(makeModelFromConfig(Config::fromString("case = tornado")),
               std::invalid_argument);
  EXPECT_THROW(makeModelFromConfig(Config::fromString("scheme = DP-ML")),
               std::invalid_argument);  // ML without weight files
}

TEST(Factory, ConfigControlsTimestepHierarchy) {
  const Config cfg = Config::fromString(
      "grid_level = 1\nnlev = 6\ndt_dyn = 120\ntrac_interval = 2\nphy_interval = 6");
  const auto bundle = makeModelFromConfig(cfg);
  bundle->model->run(6);
  EXPECT_NEAR(bundle->model->simSeconds(), 6 * 120.0, 1e-9);
}

} // namespace
} // namespace grist::core
