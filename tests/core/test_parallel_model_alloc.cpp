// Zero-allocation guard for the warm multi-rank step: once the persistent
// worker pool is up and the packed exchange buffers are planned,
// ParallelModel::step() must perform no heap allocation -- which also
// proves it creates no threads (libstdc++ allocates each std::thread's
// state block with operator new), for both the overlapped and the lockstep
// schedule.
//
// This binary overrides the global allocation operators to count heap
// traffic, so it is its own test executable (see tests/CMakeLists.txt) --
// the same pattern as tests/ml/test_ml_alloc.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>

#include "grist/core/parallel_model.hpp"
#include "grist/dycore/init.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. malloc-backed so the override itself is free of
// recursion; every flavor of operator new/delete funnels through here.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long> g_heap_allocs{0};
} // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  ++g_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace grist::core {
namespace {

long allocsDuring(const std::function<void()>& fn) {
  const long before = g_heap_allocs.load();
  fn();
  return g_heap_allocs.load() - before;
}

class PooledStepAllocationGuard : public ::testing::Test {
 protected:
  void SetUp() override {
    mesh_ = grid::buildHexMesh(3);
    trsk_ = grid::buildTrskWeights(mesh_);
    cfg_.nlev = 8;
    cfg_.dt = 450.0;
  }
  grid::HexMesh mesh_;
  grid::TrskWeights trsk_;
  dycore::DycoreConfig cfg_;
};

TEST_F(PooledStepAllocationGuard, OverlapStepIsHeapFreeWhenWarm) {
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);
  ParallelModel model(mesh_, trsk_, cfg_, /*nranks=*/4, initial);
  const auto step = [&] { model.step(); };
  // Warm-up: per-thread Workspace arenas, OpenMP teams, and the timing
  // registry's section entry all materialize on the first steps.
  step();
  step();
  EXPECT_EQ(allocsDuring(step), 0);
}

TEST_F(PooledStepAllocationGuard, LockstepStepIsHeapFreeWhenWarm) {
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);
  ParallelModel model(mesh_, trsk_, cfg_, /*nranks=*/4, initial);
  model.setSchedule(ParallelModel::Schedule::kLockstep);
  const auto step = [&] { model.step(); };
  step();
  step();
  EXPECT_EQ(allocsDuring(step), 0);
}

TEST_F(PooledStepAllocationGuard, SeedSpawnScheduleDoesAllocate) {
  // Negative control: the seed schedule spawns threads every step, so the
  // guard must see heap traffic -- proving the counter actually observes
  // the step path.
  const dycore::State initial = dycore::initBaroclinicWave(mesh_, cfg_);
  ParallelModel model(mesh_, trsk_, cfg_, /*nranks=*/4, initial);
  model.setSchedule(ParallelModel::Schedule::kSpawnUnpacked);
  const auto step = [&] { model.step(); };
  step();
  step();
  EXPECT_GT(allocsDuring(step), 0);
}

} // namespace
} // namespace grist::core
