#include <gtest/gtest.h>

#include "grist/network/fat_tree.hpp"
#include "grist/network/projector.hpp"

namespace grist::network {
namespace {

TEST(FatTree, HopTiersMatchTopology) {
  FatTreeModel net;
  EXPECT_EQ(net.hops(128), 1);      // one supernode
  EXPECT_EQ(net.hops(1536), 1);
  EXPECT_EQ(net.hops(8192), 3);     // through the spine
  EXPECT_EQ(net.hops(524288), 5);   // two spine layers
}

TEST(FatTree, ExchangeSlowsAcrossTiers) {
  FatTreeModel net;
  const double bytes = 200e3;
  const double inside = net.haloExchangeTime(1024, bytes, 6);
  const double spine = net.haloExchangeTime(8192, bytes, 6);
  const double top = net.haloExchangeTime(262144, bytes, 6);
  EXPECT_LT(inside, spine);
  EXPECT_LT(spine, top);
}

TEST(FatTree, AllreduceGrowsWithScale) {
  FatTreeModel net;
  EXPECT_DOUBLE_EQ(net.allreduceTime(1), 0.0);
  EXPECT_LT(net.allreduceTime(128), net.allreduceTime(524288));
}

TEST(Interpolation, PiecewiseLinearWithExtrapolation) {
  const auto f = interpolateCostCurve({10, 100, 1000}, {5.0, 8.0, 20.0});
  EXPECT_DOUBLE_EQ(f(10), 5.0);
  EXPECT_DOUBLE_EQ(f(55), 6.5);
  EXPECT_DOUBLE_EQ(f(1000), 20.0);
  // Below range clamps; above extrapolates linearly.
  EXPECT_DOUBLE_EQ(f(1), 5.0);
  EXPECT_NEAR(f(1900), 32.0, 1e-9);
  EXPECT_THROW(interpolateCostCurve({1}, {1}), std::invalid_argument);
  EXPECT_THROW(interpolateCostCurve({1, 1}, {1, 2}), std::invalid_argument);
}

class ProjectorTest : public ::testing::Test {
 protected:
  ProjectorConfig makeConfig() {
    ProjectorConfig cfg;
    // Flat-ish cost curves for the unit tests (benchmarks use measured
    // simulator curves).
    cfg.dyn_cycles_dp = interpolateCostCurve({50, 5000}, {220.0, 320.0});
    cfg.dyn_cycles_mix = interpolateCostCurve({50, 5000}, {140.0, 210.0});
    return cfg;
  }
};

TEST_F(ProjectorTest, MixedPrecisionIsFaster) {
  SdpdProjector proj(makeConfig());
  SchemeCost dp{.mixed_precision = false, .ml_physics = false};
  SchemeCost mix{.mixed_precision = true, .ml_physics = false};
  EXPECT_GT(proj.sdpd(9, 30, 16.0, 32768, mix), proj.sdpd(9, 30, 16.0, 32768, dp));
}

TEST_F(ProjectorTest, MlPhysicsIsFaster) {
  SdpdProjector proj(makeConfig());
  SchemeCost phy{.mixed_precision = true, .ml_physics = false};
  SchemeCost ml{.mixed_precision = true, .ml_physics = true};
  EXPECT_GT(proj.sdpd(9, 30, 16.0, 32768, ml), proj.sdpd(9, 30, 16.0, 32768, phy));
}

TEST_F(ProjectorTest, WeakScalingEfficiencyDeclinesAndCommShareRises) {
  SdpdProjector proj(makeConfig());
  SchemeCost mix{.mixed_precision = true, .ml_physics = false};
  // The paper's ladder: resolution x2 per step, processes x4 (Fig. 10).
  const std::vector<std::pair<int, Index>> ladder = {
      {6, 128}, {7, 512}, {8, 2048}, {9, 8192}, {10, 32768}, {11, 131072}};
  const auto points = proj.weakScaling(ladder, 30, 4.0, mix);
  ASSERT_EQ(points.size(), ladder.size());
  EXPECT_DOUBLE_EQ(points[0].efficiency, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].efficiency, points[i - 1].efficiency + 1e-9);
    EXPECT_GE(points[i].comm_share, points[i - 1].comm_share - 1e-9);
  }
  // Efficiency stays meaningful (not collapsed to zero).
  EXPECT_GT(points.back().efficiency, 0.3);
  EXPECT_LT(points.back().efficiency, 1.0);
}

TEST_F(ProjectorTest, StrongScalingSpeedRisesEfficiencyFalls) {
  // Flat per-cell cost: with no cache-curve effect, strong scaling must be
  // monotone sublinear (the paper's G12 behavior).
  ProjectorConfig cfg = makeConfig();
  cfg.dyn_cycles_dp = interpolateCostCurve({50, 5000}, {260.0, 260.0});
  cfg.dyn_cycles_mix = interpolateCostCurve({50, 5000}, {170.0, 170.0});
  SdpdProjector proj(cfg);
  SchemeCost mix{.mixed_precision = true, .ml_physics = true};
  const std::vector<Index> procs = {32768, 65536, 131072, 262144, 524288};
  const auto points = proj.strongScaling(12, 30, 4.0, procs, mix);
  EXPECT_DOUBLE_EQ(points[0].efficiency, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].sdpd, points[i - 1].sdpd);       // still speeds up
    EXPECT_LT(points[i].efficiency, points[i - 1].efficiency);  // sublinearly
  }
}

TEST_F(ProjectorTest, CacheCostCurveProducesSuperlinearBump) {
  // When per-cell cycles FALL as the per-CG working set approaches the
  // LDCache size, strong scaling turns superlinear -- the G11S "marginal
  // increase in computation speed" of the paper's Fig. 11.
  SdpdProjector proj(makeConfig());  // downward-sloping curve
  SchemeCost mix{.mixed_precision = true, .ml_physics = true};
  const auto points = proj.strongScaling(12, 30, 4.0, {32768, 65536, 131072}, mix);
  bool superlinear = false;
  for (const auto& p : points) superlinear = superlinear || p.efficiency > 1.0;
  EXPECT_TRUE(superlinear);
}

TEST_F(ProjectorTest, OverlapHidesHaloTimeUpToInteriorWindow) {
  SchemeCost mix{.mixed_precision = true, .ml_physics = false};
  SdpdProjector lockstep(makeConfig());

  ProjectorConfig overlap_cfg = makeConfig();
  overlap_cfg.overlap_efficiency = 1.0;
  SdpdProjector overlap(overlap_cfg);

  // Weak-scaling regime (many cells per CG): the interior sweep dwarfs the
  // exchange, so overlap strictly lowers the step time and comm share.
  double share_lock = 0, share_over = 0;
  const double t_lock = lockstep.stepTime(9, 30, 16.0, 8192, mix, &share_lock);
  const double t_over = overlap.stepTime(9, 30, 16.0, 8192, mix, &share_over);
  EXPECT_LT(t_over, t_lock);
  EXPECT_LT(share_over, share_lock);

  // overlap_efficiency = 0 must reproduce the lockstep projection exactly
  // (the knob defaults off and may not perturb existing curves).
  ProjectorConfig off_cfg = makeConfig();
  off_cfg.overlap_efficiency = 0.0;
  SdpdProjector off(off_cfg);
  EXPECT_DOUBLE_EQ(off.stepTime(9, 30, 16.0, 8192, mix), t_lock);

  // Strong-scaling tail: with ~16 cells per CG the boundary band is the
  // whole domain (boundary_fraction == 1), so there is no interior window
  // and overlap cannot hide anything.
  const auto counts = grid::countsForLevel(6);
  const Index ncgs_tail = (counts.cells + 15) / 16;  // cells/CG <= 16
  EXPECT_DOUBLE_EQ(overlap.stepTime(6, 30, 16.0, ncgs_tail, mix),
                   lockstep.stepTime(6, 30, 16.0, ncgs_tail, mix));
}

TEST_F(ProjectorTest, RejectsOversubscribedGrids) {
  SdpdProjector proj(makeConfig());
  SchemeCost dp;
  EXPECT_THROW(proj.sdpd(2, 30, 4.0, 524288, dp), std::invalid_argument);
}

TEST(Projector, RequiresCostCurves) {
  ProjectorConfig cfg;
  EXPECT_THROW(SdpdProjector{cfg}, std::invalid_argument);
}

} // namespace
} // namespace grist::network
