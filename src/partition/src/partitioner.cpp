#include "grist/partition/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <functional>

#include "grist/common/hash.hpp"
#include "grist/common/math.hpp"
#include <stdexcept>

namespace grist::partition {
namespace {

// Deterministic well-spread seeds: repeatedly take the unclaimed cell
// farthest (in graph hops) from all previous seeds. O(nparts * ncells).
std::vector<Index> pickSeeds(const grid::HexMesh& m, Index nparts) {
  std::vector<Index> seeds;
  seeds.reserve(nparts);
  std::vector<int> dist(m.ncells, -1);
  std::queue<Index> queue;

  seeds.push_back(0);
  dist[0] = 0;
  queue.push(0);
  while (static_cast<Index>(seeds.size()) < nparts) {
    // Finish multi-source BFS from all current seeds.
    while (!queue.empty()) {
      const Index c = queue.front();
      queue.pop();
      for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k) {
        const Index nb = m.cell_cells[k];
        if (dist[nb] < 0) {
          dist[nb] = dist[c] + 1;
          queue.push(nb);
        }
      }
    }
    Index far = 0;
    for (Index c = 1; c < m.ncells; ++c) {
      if (dist[c] > dist[far]) far = c;
    }
    seeds.push_back(far);
    dist[far] = 0;
    queue.push(far);
  }
  return seeds;
}

} // namespace

int& Partitioner::refinementSweeps() {
  static int sweeps = 8;
  return sweeps;
}

std::vector<Index> Partitioner::partition(const grid::HexMesh& m, Index nparts) {
  if (nparts < 1 || nparts > m.ncells) {
    throw std::invalid_argument("Partitioner: nparts out of range");
  }
  std::vector<Index> part(m.ncells, kInvalidIndex);
  if (nparts == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  // ---- balanced multi-source region growth ----
  // Each part grows by grabbing the unassigned frontier cell closest to its
  // seed (min-heap keyed by great-circle distance), which yields compact,
  // near-circular parts and therefore a small edge cut. Turn order goes to
  // the smallest part so sizes track each other during growth.
  std::vector<Index> size(nparts, 0);
  const auto grow = [&](const std::vector<Index>& seeds) {
    std::fill(part.begin(), part.end(), kInvalidIndex);
    std::fill(size.begin(), size.end(), Index{0});
    using HeapEntry = std::pair<double, Index>;  // (distance to seed, cell)
    std::vector<std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>>
        frontier(nparts);
    const auto push_neighbors = [&](Index p, Index c) {
      for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k) {
        const Index nb = m.cell_cells[k];
        if (part[nb] == kInvalidIndex) {
          const double dist = greatCircleDistance(m.cell_x[seeds[p]], m.cell_x[nb], 1.0);
          frontier[p].push({dist, nb});
        }
      }
    };
    for (Index p = 0; p < nparts; ++p) {
      part[seeds[p]] = p;
      size[p] = 1;
      push_neighbors(p, seeds[p]);
    }
    Index assigned = nparts;
    while (assigned < m.ncells) {
      Index best = kInvalidIndex;
      for (Index p = 0; p < nparts; ++p) {
        if (frontier[p].empty()) continue;
        if (best == kInvalidIndex || size[p] < size[best]) best = p;
      }
      if (best == kInvalidIndex) {
        // All frontiers stalled (enclosed); claim any unassigned cell for
        // the smallest part and restart growth from it.
        best = static_cast<Index>(std::min_element(size.begin(), size.end()) -
                                  size.begin());
        for (Index c = 0; c < m.ncells; ++c) {
          if (part[c] == kInvalidIndex) {
            part[c] = best;
            ++size[best];
            ++assigned;
            push_neighbors(best, c);
            break;
          }
        }
        continue;
      }
      bool grabbed = false;
      while (!frontier[best].empty() && !grabbed) {
        const Index c = frontier[best].top().second;
        frontier[best].pop();
        if (part[c] != kInvalidIndex) continue;  // stale heap entry
        part[c] = best;
        ++size[best];
        ++assigned;
        push_neighbors(best, c);
        grabbed = true;
      }
    }
  };
  grow(pickSeeds(m, nparts));

  // Lloyd iterations: re-seed each part at the cell nearest its centroid
  // and grow again; compacts ragged first-pass boundaries.
  for (int lloyd = 0; lloyd < 3; ++lloyd) {
    std::vector<Vec3> centroid(nparts, Vec3{});
    for (Index c = 0; c < m.ncells; ++c) {
      centroid[part[c]] = centroid[part[c]] + m.cell_x[c];
    }
    std::vector<Index> seeds(nparts, kInvalidIndex);
    std::vector<double> best_dot(nparts, -2.0);
    for (Index c = 0; c < m.ncells; ++c) {
      const Index p = part[c];
      const double dot = m.cell_x[c].dot(centroid[p].normalized());
      if (dot > best_dot[p]) {
        best_dot[p] = dot;
        seeds[p] = c;
      }
    }
    grow(seeds);
  }

  // ---- forced balance: undersized parts steal adjacent boundary cells ----
  // Growth can enclose a part before it reaches its share; stealing from
  // larger neighbors restores balance while keeping parts contiguous.
  const double mean = static_cast<double>(m.ncells) / nparts;
  const Index max_size = static_cast<Index>(std::ceil(mean * 1.03));
  const Index min_size = static_cast<Index>(std::floor(mean * 0.97));
  for (int iter = 0; iter < 200; ++iter) {
    Index needy = kInvalidIndex;
    for (Index p = 0; p < nparts; ++p) {
      if (size[p] < min_size && (needy == kInvalidIndex || size[p] < size[needy])) {
        needy = p;
      }
    }
    if (needy == kInvalidIndex) break;
    // One scan, many steals: grab boundary cells of larger donors until the
    // deficit is covered (or the scan runs dry).
    Index deficit = static_cast<Index>(mean) - size[needy];
    bool stole = false;
    for (Index c = 0; c < m.ncells && deficit > 0; ++c) {
      if (part[c] != needy) continue;
      for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1] && deficit > 0; ++k) {
        const Index nb = m.cell_cells[k];
        const Index donor = part[nb];
        if (donor != needy && size[donor] > size[needy] + 1) {
          --size[donor];
          part[nb] = needy;
          ++size[needy];
          --deficit;
          stole = true;
        }
      }
    }
    if (!stole) break;  // fully isolated; give up
  }

  // ---- forced balance, other direction: oversized parts shed boundary
  // cells to their smallest adjacent neighbor ----
  for (int iter = 0; iter < 200; ++iter) {
    Index fat = kInvalidIndex;
    for (Index p = 0; p < nparts; ++p) {
      if (size[p] > max_size && (fat == kInvalidIndex || size[p] > size[fat])) fat = p;
    }
    if (fat == kInvalidIndex) break;
    Index excess = size[fat] - static_cast<Index>(mean);
    bool shed = false;
    for (Index c = 0; c < m.ncells && excess > 0; ++c) {
      if (part[c] != fat) continue;
      // Move c to its smallest adjacent foreign part, if that part is
      // smaller than us.
      Index to = kInvalidIndex;
      for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k) {
        const Index p = part[m.cell_cells[k]];
        if (p != fat && size[p] + 1 < size[fat] &&
            (to == kInvalidIndex || size[p] < size[to])) {
          to = p;
        }
      }
      if (to != kInvalidIndex) {
        part[c] = to;
        --size[fat];
        ++size[to];
        --excess;
        shed = true;
      }
    }
    if (!shed) break;
  }

  // ---- KL-style boundary refinement ----
  for (int sweep = 0; sweep < refinementSweeps(); ++sweep) {
    bool moved = false;
    for (Index c = 0; c < m.ncells; ++c) {
      const Index from = part[c];
      if (size[from] <= min_size) continue;
      // Count neighbor parts.
      int same = 0;
      Index best_to = kInvalidIndex;
      int best_count = 0;
      for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k) {
        const Index p = part[m.cell_cells[k]];
        if (p == from) {
          ++same;
          continue;
        }
        int count = 0;
        for (Index k2 = m.cell_offset[c]; k2 < m.cell_offset[c + 1]; ++k2) {
          if (part[m.cell_cells[k2]] == p) ++count;
        }
        if (count > best_count && size[p] < max_size) {
          best_count = count;
          best_to = p;
        }
      }
      if (best_to != kInvalidIndex && best_count > same) {
        part[c] = best_to;
        --size[from];
        ++size[best_to];
        moved = true;
      }
    }
    if (!moved) break;
  }
  return part;
}

PartitionQuality Partitioner::evaluate(const grid::HexMesh& m,
                                       const std::vector<Index>& part) {
  if (static_cast<Index>(part.size()) != m.ncells) {
    throw std::invalid_argument("Partitioner::evaluate: size mismatch");
  }
  PartitionQuality q;
  Index nparts = 0;
  for (const Index p : part) nparts = std::max(nparts, p + 1);
  q.parts = nparts;
  std::vector<Index> size(nparts, 0);
  for (const Index p : part) ++size[p];
  const double mean = static_cast<double>(m.ncells) / nparts;
  const Index biggest = *std::max_element(size.begin(), size.end());
  q.imbalance = static_cast<double>(biggest) / mean - 1.0;
  for (Index e = 0; e < m.nedges; ++e) {
    if (part[m.edge_cell[e][0]] != part[m.edge_cell[e][1]]) ++q.edge_cut;
  }
  return q;
}

std::uint64_t Partitioner::fingerprint(const std::vector<Index>& part) {
  return common::fnv1a(part.data(), part.size() * sizeof(Index));
}

} // namespace grist::partition
