// Graph partitioner for the horizontal domain decomposition (the paper uses
// METIS, section 3.1.2; this is our from-scratch substitute). Balanced
// greedy region growth over the cell graph, followed by boundary
// Kernighan-Lin-style refinement to shrink the edge cut (halo volume).
#pragma once

#include <vector>

#include "grist/common/types.hpp"
#include "grist/grid/hex_mesh.hpp"

namespace grist::partition {

struct PartitionQuality {
  double imbalance = 0.0;   ///< max part size / mean part size - 1
  std::int64_t edge_cut = 0;///< edges whose cells land in different parts
  Index parts = 0;
};

class Partitioner {
 public:
  /// Assign every cell of `mesh` to one of `nparts` parts. nparts must be in
  /// [1, ncells]. Deterministic for a given mesh.
  static std::vector<Index> partition(const grid::HexMesh& mesh, Index nparts);

  /// Quality metrics of an assignment (auditing the METIS substitution).
  static PartitionQuality evaluate(const grid::HexMesh& mesh,
                                   const std::vector<Index>& part);

  /// Number of boundary refinement sweeps (default 8); exposed for tests.
  static int& refinementSweeps();

  /// FNV-1a over an assignment (cell order). Checkpoints record it as
  /// provenance: which decomposition produced the snapshot, without storing
  /// the assignment itself.
  static std::uint64_t fingerprint(const std::vector<Index>& part);
};

} // namespace grist::partition
