// Physics-dynamics coupling interface (paper section 3.2.4): passes
// (U, V, T, Q, P, tskin, coszr) from the dynamical core to the physics
// suite and maps the returned tendencies and diagnostics back for the next
// dynamics integration. Identical for the conventional and ML suites.
#pragma once

#include <vector>

#include "grist/dycore/state.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/physics/types.hpp"

namespace grist::coupler {

struct CouplerConfig {
  double ptop = 225.0;
  /// Tracer slots in dycore::State: qv, qc, qr.
  int tracer_qv = 0, tracer_qc = 1, tracer_qr = 2;
};

class Coupler {
 public:
  Coupler(const grid::HexMesh& mesh, int nlev, CouplerConfig config = {});

  /// Fill the physics input from the dynamical state. `tskin` is the land
  /// state owned by the model driver; `sim_seconds` drives the solar zenith
  /// angle (equinox sun, diurnal cycle).
  void stateToPhysics(const dycore::State& state, const std::vector<double>& tskin,
                      double sim_seconds, physics::PhysicsInput& input) const;

  /// Offset form for fused multi-member physics batches: writes this
  /// state's columns into `input` starting at column `col0` (`input` holds
  /// M stacked member blocks of ncolumns() columns each). Column col0+c
  /// receives exactly what column c receives in the plain form, so fused
  /// batches stay per-column bitwise identical to solo coupling.
  void stateToPhysics(const dycore::State& state, const std::vector<double>& tskin,
                      double sim_seconds, physics::PhysicsInput& input,
                      Index col0) const;

  /// Apply physics tendencies over dt: theta/tracers on cells, momentum
  /// projected back onto edge normals. Clips tracers at zero.
  void applyTendencies(const physics::PhysicsOutput& out, double dt,
                       dycore::State& state) const;

  /// Offset form: reads this state's tendencies from `out` starting at
  /// column `col0` (the member's block in a fused batch).
  void applyTendencies(const physics::PhysicsOutput& out, Index col0, double dt,
                       dycore::State& state) const;

  /// Number of cells this coupler serves (the prognostic bound).
  Index ncolumns() const { return ncells_; }

 private:
  const grid::HexMesh& mesh_;
  int nlev_;
  CouplerConfig config_;
  Index ncells_;
  // Per-cell local east/north unit vectors (for wind projection).
  std::vector<Vec3> east_, north_;
  // EOS scratch for the computeRrr calls in both directions, allocated once
  // so warm coupling performs no heap allocation (the ensemble alloc guard
  // steps through here). mutable: pure scratch, both methods are
  // semantically const.
  mutable parallel::Field rrr_alpha_, rrr_p_, rrr_exner_, rrr_pi_mid_;
};

} // namespace grist::coupler
