#include "grist/coupler/coupler.hpp"

#include <cmath>
#include <stdexcept>

#include "grist/common/math.hpp"
#include "grist/dycore/kernels.hpp"

namespace grist::coupler {

using namespace constants;

Coupler::Coupler(const grid::HexMesh& mesh, int nlev, CouplerConfig config)
    : mesh_(mesh), nlev_(nlev), config_(config), ncells_(mesh.ncells) {
  east_.resize(mesh.ncells);
  north_.resize(mesh.ncells);
  for (Index c = 0; c < mesh.ncells; ++c) {
    const Vec3 r = mesh.cell_x[c];
    Vec3 east{-r.y, r.x, 0};
    const double n = east.norm();
    east = n > 1e-12 ? east * (1.0 / n) : Vec3{1, 0, 0};
    east_[c] = east;
    north_[c] = r.cross(east);
  }
}

void Coupler::stateToPhysics(const dycore::State& state,
                             const std::vector<double>& tskin, double sim_seconds,
                             physics::PhysicsInput& in) const {
  if (in.ncolumns != ncells_ || in.nlev != nlev_) {
    throw std::invalid_argument("Coupler::stateToPhysics: shape mismatch");
  }
  if (static_cast<Index>(tskin.size()) != ncells_) {
    throw std::invalid_argument("Coupler::stateToPhysics: tskin size");
  }

  // Thermodynamic diagnostics via the dycore EOS kernel.
  parallel::Field alpha(ncells_, nlev_), p(ncells_, nlev_), exner(ncells_, nlev_),
      pi_mid(ncells_, nlev_);
  dycore::kernels::computeRrr<double>(ncells_, nlev_, config_.ptop,
                                      state.delp.data(), state.theta.data(),
                                      state.phi.data(), alpha.data(), p.data(),
                                      exner.data(), pi_mid.data());

  // Solar geometry: equinox sun with a diurnal cycle.
  const double hour_angle = 2.0 * kPi * sim_seconds / 86400.0;

#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells_; ++c) {
    // Perot velocity vector at the cell, per level.
    for (int k = 0; k < nlev_; ++k) {
      Vec3 vel{};
      for (Index j = mesh_.cell_offset[c]; j < mesh_.cell_offset[c + 1]; ++j) {
        const Index e = mesh_.cell_edges[j];
        const Vec3 dx = (mesh_.edge_x[e] - mesh_.cell_x[c]) * mesh_.radius;
        vel = vel + dx * (mesh_.cell_edge_sign[j] * mesh_.edge_le[e] * state.u(e, k));
      }
      vel = vel * (1.0 / mesh_.cell_area[c]);
      in.u(c, k) = vel.dot(east_[c]);
      in.v(c, k) = vel.dot(north_[c]);
      in.t(c, k) = state.theta(c, k) * exner(c, k);
      in.qv(c, k) = state.tracers[config_.tracer_qv](c, k);
      in.qc(c, k) = static_cast<int>(state.tracers.size()) > config_.tracer_qc
                        ? state.tracers[config_.tracer_qc](c, k)
                        : 0.0;
      in.qr(c, k) = static_cast<int>(state.tracers.size()) > config_.tracer_qr
                        ? state.tracers[config_.tracer_qr](c, k)
                        : 0.0;
      in.pmid(c, k) = pi_mid(c, k);
      in.delp(c, k) = state.delp(c, k);
      in.exner(c, k) = exner(c, k);
      in.zmid(c, k) =
          0.5 * (state.phi(c, k) + state.phi(c, k + 1)) / kGravity;
    }
    double pint = config_.ptop;
    in.pint(c, 0) = pint;
    for (int k = 0; k < nlev_; ++k) {
      pint += state.delp(c, k);
      in.pint(c, k + 1) = pint;
      in.zint(c, k) = state.phi(c, k) / kGravity;
    }
    in.zint(c, nlev_) = state.phi(c, nlev_) / kGravity;

    in.tskin[c] = tskin[c];
    const LonLat ll = mesh_.cell_ll[c];
    in.lat[c] = ll.lat;
    in.coszr[c] = std::max(0.0, std::cos(ll.lat) * std::cos(ll.lon + hour_angle));
  }
}

void Coupler::applyTendencies(const physics::PhysicsOutput& out, double dt,
                              dycore::State& state) const {
  // Cells: temperature tendency converts to theta through the Exner
  // function; tracers clip at zero (physics can slightly overshoot).
  parallel::Field alpha(ncells_, nlev_), p(ncells_, nlev_), exner(ncells_, nlev_),
      pi_mid(ncells_, nlev_);
  dycore::kernels::computeRrr<double>(ncells_, nlev_, config_.ptop,
                                      state.delp.data(), state.theta.data(),
                                      state.phi.data(), alpha.data(), p.data(),
                                      exner.data(), pi_mid.data());
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells_; ++c) {
    for (int k = 0; k < nlev_; ++k) {
      state.theta(c, k) += out.dtdt(c, k) / exner(c, k) * dt;
      auto clip = [&](parallel::Field& q, const parallel::Field& tend) {
        q(c, k) = std::max(0.0, q(c, k) + tend(c, k) * dt);
      };
      clip(state.tracers[config_.tracer_qv], out.dqvdt);
      if (static_cast<int>(state.tracers.size()) > config_.tracer_qc) {
        clip(state.tracers[config_.tracer_qc], out.dqcdt);
      }
      if (static_cast<int>(state.tracers.size()) > config_.tracer_qr) {
        clip(state.tracers[config_.tracer_qr], out.dqrdt);
      }
    }
  }
  // Edges: project the cell-pair mean wind tendency onto the edge normal.
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < mesh_.nedges; ++e) {
    const Index c1 = mesh_.edge_cell[e][0];
    const Index c2 = mesh_.edge_cell[e][1];
    for (int k = 0; k < nlev_; ++k) {
      const Vec3 t1 = east_[c1] * out.dudt(c1, k) + north_[c1] * out.dvdt(c1, k);
      const Vec3 t2 = east_[c2] * out.dudt(c2, k) + north_[c2] * out.dvdt(c2, k);
      state.u(e, k) += 0.5 * (t1 + t2).dot(mesh_.edge_normal[e]) * dt;
    }
  }
}

} // namespace grist::coupler
