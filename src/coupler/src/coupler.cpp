#include "grist/coupler/coupler.hpp"

#include <cmath>
#include <stdexcept>

#include "grist/common/math.hpp"
#include "grist/dycore/kernels.hpp"

namespace grist::coupler {

using namespace constants;

Coupler::Coupler(const grid::HexMesh& mesh, int nlev, CouplerConfig config)
    : mesh_(mesh), nlev_(nlev), config_(config), ncells_(mesh.ncells),
      rrr_alpha_(mesh.ncells, nlev), rrr_p_(mesh.ncells, nlev),
      rrr_exner_(mesh.ncells, nlev), rrr_pi_mid_(mesh.ncells, nlev) {
  east_.resize(mesh.ncells);
  north_.resize(mesh.ncells);
  for (Index c = 0; c < mesh.ncells; ++c) {
    const Vec3 r = mesh.cell_x[c];
    Vec3 east{-r.y, r.x, 0};
    const double n = east.norm();
    east = n > 1e-12 ? east * (1.0 / n) : Vec3{1, 0, 0};
    east_[c] = east;
    north_[c] = r.cross(east);
  }
}

void Coupler::stateToPhysics(const dycore::State& state,
                             const std::vector<double>& tskin, double sim_seconds,
                             physics::PhysicsInput& in) const {
  stateToPhysics(state, tskin, sim_seconds, in, 0);
}

void Coupler::stateToPhysics(const dycore::State& state,
                             const std::vector<double>& tskin, double sim_seconds,
                             physics::PhysicsInput& in, Index col0) const {
  if (col0 < 0 || in.ncolumns < col0 + ncells_ || in.nlev != nlev_) {
    throw std::invalid_argument("Coupler::stateToPhysics: shape mismatch");
  }
  if (static_cast<Index>(tskin.size()) != ncells_) {
    throw std::invalid_argument("Coupler::stateToPhysics: tskin size");
  }

  // Thermodynamic diagnostics via the dycore EOS kernel (ctor-owned
  // scratch: no allocation on the warm path).
  parallel::Field& exner = rrr_exner_;
  parallel::Field& pi_mid = rrr_pi_mid_;
  dycore::kernels::computeRrr<double>(ncells_, nlev_, config_.ptop,
                                      state.delp.data(), state.theta.data(),
                                      state.phi.data(), rrr_alpha_.data(),
                                      rrr_p_.data(), exner.data(),
                                      pi_mid.data());

  // Solar geometry: equinox sun with a diurnal cycle.
  const double hour_angle = 2.0 * kPi * sim_seconds / 86400.0;

#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells_; ++c) {
    const Index oc = col0 + c;  // column slot in (possibly fused) input
    // Perot velocity vector at the cell, per level.
    for (int k = 0; k < nlev_; ++k) {
      Vec3 vel{};
      for (Index j = mesh_.cell_offset[c]; j < mesh_.cell_offset[c + 1]; ++j) {
        const Index e = mesh_.cell_edges[j];
        const Vec3 dx = (mesh_.edge_x[e] - mesh_.cell_x[c]) * mesh_.radius;
        vel = vel + dx * (mesh_.cell_edge_sign[j] * mesh_.edge_le[e] * state.u(e, k));
      }
      vel = vel * (1.0 / mesh_.cell_area[c]);
      in.u(oc, k) = vel.dot(east_[c]);
      in.v(oc, k) = vel.dot(north_[c]);
      in.t(oc, k) = state.theta(c, k) * exner(c, k);
      in.qv(oc, k) = state.tracers[config_.tracer_qv](c, k);
      in.qc(oc, k) = static_cast<int>(state.tracers.size()) > config_.tracer_qc
                         ? state.tracers[config_.tracer_qc](c, k)
                         : 0.0;
      in.qr(oc, k) = static_cast<int>(state.tracers.size()) > config_.tracer_qr
                         ? state.tracers[config_.tracer_qr](c, k)
                         : 0.0;
      in.pmid(oc, k) = pi_mid(c, k);
      in.delp(oc, k) = state.delp(c, k);
      in.exner(oc, k) = exner(c, k);
      in.zmid(oc, k) =
          0.5 * (state.phi(c, k) + state.phi(c, k + 1)) / kGravity;
    }
    double pint = config_.ptop;
    in.pint(oc, 0) = pint;
    for (int k = 0; k < nlev_; ++k) {
      pint += state.delp(c, k);
      in.pint(oc, k + 1) = pint;
      in.zint(oc, k) = state.phi(c, k) / kGravity;
    }
    in.zint(oc, nlev_) = state.phi(c, nlev_) / kGravity;

    in.tskin[oc] = tskin[c];
    const LonLat ll = mesh_.cell_ll[c];
    in.lat[oc] = ll.lat;
    in.coszr[oc] = std::max(0.0, std::cos(ll.lat) * std::cos(ll.lon + hour_angle));
  }
}

void Coupler::applyTendencies(const physics::PhysicsOutput& out, double dt,
                              dycore::State& state) const {
  applyTendencies(out, 0, dt, state);
}

void Coupler::applyTendencies(const physics::PhysicsOutput& out, Index col0,
                              double dt, dycore::State& state) const {
  if (col0 < 0 || out.dtdt.entities() < col0 + ncells_ ||
      out.dtdt.components() != nlev_) {
    throw std::invalid_argument("Coupler::applyTendencies: shape mismatch");
  }
  // Cells: temperature tendency converts to theta through the Exner
  // function; tracers clip at zero (physics can slightly overshoot).
  parallel::Field& exner = rrr_exner_;
  dycore::kernels::computeRrr<double>(ncells_, nlev_, config_.ptop,
                                      state.delp.data(), state.theta.data(),
                                      state.phi.data(), rrr_alpha_.data(),
                                      rrr_p_.data(), exner.data(),
                                      rrr_pi_mid_.data());
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells_; ++c) {
    const Index oc = col0 + c;
    for (int k = 0; k < nlev_; ++k) {
      state.theta(c, k) += out.dtdt(oc, k) / exner(c, k) * dt;
      auto clip = [&](parallel::Field& q, const parallel::Field& tend) {
        q(c, k) = std::max(0.0, q(c, k) + tend(oc, k) * dt);
      };
      clip(state.tracers[config_.tracer_qv], out.dqvdt);
      if (static_cast<int>(state.tracers.size()) > config_.tracer_qc) {
        clip(state.tracers[config_.tracer_qc], out.dqcdt);
      }
      if (static_cast<int>(state.tracers.size()) > config_.tracer_qr) {
        clip(state.tracers[config_.tracer_qr], out.dqrdt);
      }
    }
  }
  // Edges: project the cell-pair mean wind tendency onto the edge normal.
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < mesh_.nedges; ++e) {
    const Index c1 = mesh_.edge_cell[e][0];
    const Index c2 = mesh_.edge_cell[e][1];
    for (int k = 0; k < nlev_; ++k) {
      const Vec3 t1 = east_[c1] * out.dudt(col0 + c1, k) +
                      north_[c1] * out.dvdt(col0 + c1, k);
      const Vec3 t2 = east_[c2] * out.dudt(col0 + c2, k) +
                      north_[c2] * out.dvdt(col0 + c2, k);
      state.u(e, k) += 0.5 * (t1 + t2).dot(mesh_.edge_normal[e]) * dt;
    }
  }
}

} // namespace grist::coupler
