// Training-data generation for the ML physics suite, following the paper's
// section 3.2: four 20-day periods spanning ENSO/MJO states (Table 1),
// coarse-graining of fine-grid model output, residual-method Q1/Q2 targets,
// and the 7:1 train/test split (three randomly selected time steps per day
// go to the test set).
//
// Data gate substitution (DESIGN.md): the paper's 5 km GRIST-GSRM archive is
// proprietary; we either (a) harvest columns from our own fine-grid runs
// via the conventional suite, or (b) synthesize scenario-conditioned
// columns. Both exercise the identical pipeline downstream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grist/dycore/dycore.hpp"
#include "grist/dycore/state.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/ml/q1q2_net.hpp"
#include "grist/ml/rad_mlp.hpp"
#include "grist/physics/suite.hpp"

namespace grist::ml {

/// One Table 1 period with its climate characteristics.
struct Scenario {
  std::string period;
  double oni = 0.0;           ///< Oceanic Nino Index
  std::string enso_phase;
  double mjo_lo = 0.0, mjo_hi = 0.0;  ///< Real-time Multivariate MJO range
  // Synthetic forcing derived from the indices:
  double sst_base = 300.0;    ///< tropical SST baseline, K (ONI shifts it)
  double mjo_moisture = 0.0;  ///< amplitude of the MJO-like moisture wave
  std::uint64_t seed = 0;
};

/// The paper's Table 1, with forcing parameters derived from the indices.
std::vector<Scenario> table1Scenarios();

/// Scenario-conditioned synthetic column states (temperature/moisture/wind
/// profiles with ENSO-shifted SST and MJO-modulated moisture).
physics::PhysicsInput synthesizeColumns(const Scenario& scenario, Index ncolumns,
                                        int nlev);

/// Run the conventional suite on the columns and emit (x, Q1/Q2) and
/// radiation samples in raw units.
void harvestSamples(const physics::PhysicsInput& input,
                    physics::ConventionalSuite& suite, double dt,
                    std::vector<ColumnSample>& column_samples,
                    std::vector<RadSample>& rad_samples);

/// The paper's split: 3 of every 24 "hourly" samples per day to test
/// (train:test = 7:1), selection deterministic in `seed`.
void splitTrainTest(std::vector<ColumnSample>& all, std::uint64_t seed,
                    std::vector<ColumnSample>& train, std::vector<ColumnSample>& test);

// ---- coarse-graining + residual method ----

/// fine cell -> nearest coarse cell (by center distance; area-weighted
/// aggregation uses this map).
std::vector<Index> coarseMap(const grid::HexMesh& fine, const grid::HexMesh& coarse);

/// Area-weighted aggregation of a fine cell field onto the coarse mesh.
parallel::Field coarseGrainCells(const grid::HexMesh& fine,
                                 const grid::HexMesh& coarse,
                                 const std::vector<Index>& map,
                                 const parallel::Field& fine_field);

/// Residual-method apparent heating (theta units, K/s): coarse-grain two
/// consecutive fine states, advance the first with a dynamics-only coarse
/// step, and attribute the remainder of the observed change to physics:
///   Q1_theta = [theta_cg(t+dt) - theta_dyn(t+dt)] / dt.
parallel::Field residualQ1Theta(const grid::HexMesh& coarse,
                                const grid::TrskWeights& coarse_trsk,
                                const dycore::DycoreConfig& coarse_config,
                                const dycore::State& coarse_t0,
                                const dycore::State& coarse_t1, double dt);

} // namespace grist::ml
