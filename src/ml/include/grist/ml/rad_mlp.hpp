// The ML radiation diagnostic module (paper section 3.2.3): a 7-layer MLP
// with residual connections that maps column state + skin temperature +
// cosine solar zenith angle to the surface downward shortwave (gsw) and
// longwave (glw) radiation consumed by the land and surface-layer schemes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grist/common/workspace.hpp"
#include "grist/ml/adam.hpp"
#include "grist/ml/layers.hpp"
#include "grist/ml/quant.hpp"

namespace grist::ml {

struct RadMlpConfig {
  int nlev = 30;
  int hidden = 128;
  std::uint64_t seed = 20250302;
};

/// Training sample: x = [T profile | qv profile | tskin | coszr] (2*nlev+2),
/// y = [gsw, glw], raw units.
struct RadSample {
  std::vector<float> x;
  std::vector<float> y;
};

class RadMlp {
 public:
  explicit RadMlp(RadMlpConfig config = {});

  int inputSize() const { return 2 * config_.nlev + 2; }
  static constexpr int kOutputs = 2;
  /// 7 dense layers (in + 3 residual pairs) plus the linear head.
  int denseLayerCount() const { return 7; }

  /// Raw-unit inference; thread-safe. Routes through predictBatch with a
  /// batch of one, so per-column and batched results are bit-identical.
  void predict(const double* t, const double* qv, double tskin, double coszr,
               double* gsw, double* glw) const;

  /// Raw-unit inference over a block of columns: t/qv are [batch][nlev]
  /// contiguous, tskin/coszr/gsw/glw are length-batch arrays. All scratch
  /// comes from `ws`; callers that pre-reserve predictScratchBytes(batch)
  /// make the call allocation-free. Thread-safe for distinct workspaces.
  /// `prec` behaves exactly like Q1Q2Net::predictBatch's knob (lazy
  /// versioned snapshot; trainBatch/load invalidate).
  void predictBatch(int batch, const double* t, const double* qv,
                    const double* tskin, const double* coszr, double* gsw,
                    double* glw, common::Workspace& ws,
                    Precision prec = Precision::kFp32) const;

  /// Worst-case workspace bytes predictBatch(batch, ...) consumes.
  std::size_t predictScratchBytes(int batch) const;

  /// Build (or reuse) the quantized snapshot for `prec` (no-op for kFp32).
  void ensureQuantized(Precision prec) const;
  /// Version of the current snapshot for `prec`, 0 when absent (or kFp32).
  std::uint64_t quantizedVersion(Precision prec) const;

  /// FNV-1a over every parameter and normalization constant (see
  /// Q1Q2Net::weightFingerprint).
  std::uint64_t weightFingerprint() const;

  void fitNormalization(const std::vector<RadSample>& samples);
  double trainBatch(const std::vector<RadSample>& batch, Adam& adam);
  double evaluate(const std::vector<RadSample>& samples) const;
  std::vector<ParamView> paramViews();
  std::size_t parameterCount() const;

  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  std::vector<float> forward(const std::vector<float>& xn,
                             std::vector<std::vector<float>>* acts) const;
  void backward(const std::vector<std::vector<float>>& acts,
                std::vector<float> dout);
  std::vector<float> normalize(const std::vector<float>& x) const;
  std::vector<QuantizedWeights> buildQuantSnapshot(Precision prec) const;

  RadMlpConfig config_;
  DenseParams in_;                 // input -> hidden
  std::vector<DenseParams> mid_;   // 6 hidden->hidden (3 residual pairs)
  DenseParams head_;               // hidden -> 2
  DenseParams g_in_, g_head_;
  std::vector<DenseParams> g_mid_;
  std::vector<float> x_mean_, x_std_, y_mean_, y_std_;
  mutable QuantCache qcache_;
};

} // namespace grist::ml
