// Quantized inference for the ML physics suite: offline fp32 -> bf16/int8
// weight packing plus a quantized-weight GEMM whose dequantization is fused
// into the store epilogue (scale * acc + bias + ReLU in one pass -- no fp32
// weight matrix is ever materialized).
//
// Scheme (see DESIGN.md "Quantized inference"):
//  - bf16: weights rounded to bf16 (round-to-nearest-even) at pack time;
//    activations converted per GEMM call while packing B panels. Products
//    are exact in fp32, so the only error is the two input roundings.
//  - int8: symmetric per-output-row weight scale (max|row| / 127) chosen
//    offline, symmetric per-column activation scale (max|col| / 127) chosen
//    dynamically per call; accumulation is exact int32, and the dequant
//    factor row_scale[i] * col_scale[j] is applied in the epilogue.
//
// Weights are packed ONCE into the pair-interleaved micro-panel format of
// grist/backend/quant.hpp (quantize once, serve many); panels are tier-
// portable -- every SIMD tier reads the same snapshot -- and the packing is
// versioned so nets can cache a snapshot and invalidate it on retrain/load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "grist/backend/quant.hpp"
#include "grist/common/aligned.hpp"
#include "grist/ml/matrix.hpp"

namespace grist::ml {

/// Inference precision knob threaded through Q1Q2Net / RadMlp /
/// Q1Q2Ensemble::predictBatch and MlPhysicsSuite::run.
enum class Precision { kFp32, kBf16, kInt8 };

const char* precisionName(Precision p);

/// An offline-quantized weight matrix [m x k] in the packed micro-panel
/// format: kQuantMR-row strips, each a pair-interleaved k-panel
/// (strip[k2][kQuantMR][2]), strips padded to whole cache lines and stored
/// in cache-line-aligned storage (common/aligned.hpp). Fringe rows and the
/// odd-k tail are zero-padded, which is exact in both encodings.
class QuantizedWeights {
 public:
  QuantizedWeights() = default;

  /// Quantize + pack `w` (row-major [m x k]) at the given precision
  /// (kBf16 or kInt8; kFp32 is served by the fp32 kernel and throws here).
  /// Throws std::invalid_argument on non-finite weights.
  static QuantizedWeights pack(Precision prec, const Matrix& w);

  Precision precision() const { return prec_; }
  int rows() const { return m_; }
  int cols() const { return k_; }
  bool empty() const { return m_ == 0; }
  /// Globally monotonic pack counter: two snapshots never share a version,
  /// so holders can tell "same net, re-quantized" from "unchanged".
  std::uint64_t version() const { return version_; }
  /// Bytes of quantized payload (panels + scales) -- the memory the
  /// precision saves relative to 4 * m * k.
  std::size_t packedBytes() const;

  int stripCount() const { return nstrips_; }
  /// Per-output-row dequant scales, length rows() (int8 only).
  const float* rowScales() const { return row_scale_.data(); }
  const std::uint16_t* bf16Strip(int s) const {
    return wbf16_.data() + static_cast<std::size_t>(s) * strip_stride_;
  }
  const std::int8_t* int8Strip(int s) const {
    return wint8_.data() + static_cast<std::size_t>(s) * strip_stride_;
  }

 private:
  Precision prec_ = Precision::kFp32;
  int m_ = 0, k_ = 0, nstrips_ = 0;
  std::size_t strip_stride_ = 0;  ///< elements (of the payload type) per strip
  common::AlignedVector<std::uint16_t> wbf16_;
  common::AlignedVector<std::int8_t> wint8_;
  common::AlignedVector<float> row_scale_;
  std::uint64_t version_ = 0;
};

/// Quantized-weight GEMM with the dequantization fused into the store
/// epilogue:
///   C[m x n] = epilogue( dequant( quant(W) * quant(op(B)) ) )
/// where m = w.rows(), k = w.cols(), op(B) is k x n read with leading
/// dimension ldb (trans_b reads b[j*ldb + kk]). Inference-shaped contract
/// (matching every *ForwardBatched call site): alpha = 1, beta = 0 -- C is
/// never read, only written; ep.bias/ep.relu behave exactly like
/// gemmBlocked's epilogue. Dispatches through backend::quant::table()
/// (GRIST_SIMD_TIER / simd::forceTier clamp the tier down).
void gemmQuant(const QuantizedWeights& w, int n, const float* b, int ldb,
               bool trans_b, float* c, int ldc, const GemmEpilogue& ep = {});

/// Lazily-built, versioned per-precision snapshot cache a net embeds as a
/// `mutable` member: quantize once on the first non-fp32 predictBatch (the
/// only allocating call), serve lock-free afterwards. Copying a net copies
/// weights, not derived snapshots, so the cache copy-constructs empty;
/// trainBatch/load invalidate() it (single-threaded by contract -- do not
/// race invalidate() against concurrent get()).
class QuantCache {
 public:
  QuantCache() = default;
  QuantCache(const QuantCache&) noexcept {}
  QuantCache& operator=(const QuantCache&) noexcept {
    invalidate();
    return *this;
  }
  ~QuantCache() { invalidate(); }

  /// The snapshot for `p` (kBf16/kInt8), building it with
  /// `build(p) -> std::vector<QuantizedWeights>` under a mutex if absent.
  template <typename Build>
  const std::vector<QuantizedWeights>& get(Precision p, Build&& build) const {
    Snap* s = slot(p).load(std::memory_order_acquire);
    if (s) return s->w;
    std::lock_guard<std::mutex> lock(mu_);
    s = slot(p).load(std::memory_order_relaxed);
    if (!s) {
      auto fresh = std::make_unique<Snap>();
      fresh->w = build(p);
      s = fresh.release();
      slot(p).store(s, std::memory_order_release);
    }
    return s->w;
  }

  bool has(Precision p) const {
    return slot(p).load(std::memory_order_acquire) != nullptr;
  }
  /// Version of the snapshot's first layer, or 0 when not built.
  std::uint64_t version(Precision p) const {
    const Snap* s = slot(p).load(std::memory_order_acquire);
    return s && !s->w.empty() ? s->w.front().version() : 0;
  }
  void invalidate() {
    for (auto& a : snaps_) delete a.exchange(nullptr);
  }

 private:
  struct Snap {
    std::vector<QuantizedWeights> w;
  };
  std::atomic<Snap*>& slot(Precision p) const {
    if (p == Precision::kFp32) {
      throw std::invalid_argument("QuantCache: fp32 has no snapshot");
    }
    return snaps_[p == Precision::kInt8 ? 1 : 0];
  }
  mutable std::atomic<Snap*> snaps_[2]{nullptr, nullptr};
  mutable std::mutex mu_;
};

} // namespace grist::ml
