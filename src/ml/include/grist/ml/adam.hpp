// Adam optimizer over flat parameter/gradient views.
#pragma once

#include <cstddef>
#include <vector>

namespace grist::ml {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

/// One (value, gradient) pair registered with the optimizer. Both pointers
/// must stay valid for the optimizer's lifetime.
struct ParamView {
  float* value = nullptr;
  float* grad = nullptr;
  std::size_t count = 0;
};

class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  void registerParams(const std::vector<ParamView>& views);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

  std::size_t parameterCount() const;
  int steps() const { return t_; }

 private:
  AdamConfig config_;
  std::vector<ParamView> views_;
  std::vector<std::vector<float>> m_, v_;
  int t_ = 0;
};

} // namespace grist::ml
