// Ensemble of Q1/Q2 networks (the stable-integration technique of the
// paper's reference line of work: averaging an ensemble of independently
// initialized networks suppresses the individual members' extrapolation
// spikes that destabilize online-coupled runs).
#pragma once

#include <memory>
#include <vector>

#include "grist/ml/q1q2_net.hpp"

namespace grist::ml {

class Q1Q2Ensemble {
 public:
  /// All members must share nlev. Throws on an empty or inconsistent set.
  explicit Q1Q2Ensemble(std::vector<std::shared_ptr<const Q1Q2Net>> members);

  /// Mean prediction across members; same contract as Q1Q2Net::predict.
  /// Routes through predictBatch with a batch of one.
  void predict(const double* u, const double* v, const double* t,
               const double* q, const double* p, double* q1, double* q2) const;

  /// Mean prediction over a block of columns; same layout contract as
  /// Q1Q2Net::predictBatch. Members run sequentially in order, so the
  /// accumulation order matches the per-column path exactly. `prec` is
  /// forwarded to every member (each holds its own versioned snapshot).
  void predictBatch(int batch, const double* u, const double* v,
                    const double* t, const double* q, const double* p,
                    double* q1, double* q2, common::Workspace& ws,
                    Precision prec = Precision::kFp32) const;

  /// Worst-case workspace bytes predictBatch(batch, ...) consumes.
  std::size_t predictScratchBytes(int batch) const;

  /// Pre-build every member's quantized snapshot (no-op for kFp32).
  void ensureQuantized(Precision prec) const;
  /// Sum of member snapshot versions for `prec` (0 for kFp32 / none built):
  /// changes whenever any member is re-quantized.
  std::uint64_t quantizedVersion(Precision prec) const;

  int nlev() const { return members_.front()->config().nlev; }
  std::size_t size() const { return members_.size(); }
  /// Total parameters across members (flop accounting).
  std::size_t parameterCount() const {
    std::size_t total = 0;
    for (const auto& member : members_) total += member->parameterCount();
    return total;
  }

  /// Ensemble spread (std-dev across members of Q1 at each level) for one
  /// column: the online uncertainty signal.
  void spread(const double* u, const double* v, const double* t, const double* q,
              const double* p, double* q1_spread) const;

 private:
  std::vector<std::shared_ptr<const Q1Q2Net>> members_;
};

} // namespace grist::ml
