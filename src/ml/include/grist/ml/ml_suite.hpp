// The ML-based physics suite (paper Fig. 3, section 3.2.4): the ML physical
// tendency module (Q1/Q2 CNN) replaces the summed tendencies of all
// conventional physical processes for T and q, the ML radiation diagnostic
// module supplies gsw/glw to the surface-layer scheme and the land model,
// and conventional diagnostic modules (surface layer, land) complete the
// suite. Precipitation is diagnosed from the column apparent moisture sink.
#pragma once

#include <functional>
#include <memory>

#include "grist/common/workspace.hpp"
#include "grist/ml/ensemble.hpp"
#include "grist/ml/q1q2_net.hpp"
#include "grist/ml/rad_mlp.hpp"
#include "grist/physics/land.hpp"
#include "grist/physics/suite.hpp"
#include "grist/physics/surface.hpp"

namespace grist::ml {

struct MlSuiteConfig {
  physics::SurfaceConfig surface;
  physics::LandConfig land;
  /// Stability clamps on the predicted tendencies (paper section 3.2.3
  /// stresses that the suite must keep the coupled model stable): caps the
  /// apparent heating at |Q1| <= q1_limit (K/s) and the moisture tendency
  /// at |dq/dt| <= dq_limit (1/s). Generous relative to physical values.
  double q1_limit = 150.0 / 86400.0;
  double dq_limit = 3.0e-6;
  /// Columns per inference block: the networks predict over `column_block`
  /// columns at once so the per-column matvecs become GEMMs. 1 recovers the
  /// per-column path (same results either way -- the batched kernels keep
  /// the per-output accumulation order); results are also independent of
  /// the block size itself.
  int column_block = 32;
};

class MlPhysicsSuite final : public physics::PhysicsSuite {
 public:
  /// The networks are shared (trained once, used by many columns/ranks).
  MlPhysicsSuite(Index ncolumns, int nlev, std::shared_ptr<const Q1Q2Net> q1q2,
                 std::shared_ptr<const RadMlp> rad, MlSuiteConfig config = {});

  /// Ensemble-averaged tendency module (the stable-integration variant).
  MlPhysicsSuite(Index ncolumns, int nlev,
                 std::shared_ptr<const Q1Q2Ensemble> ensemble,
                 std::shared_ptr<const RadMlp> rad, MlSuiteConfig config = {});

  void run(const physics::PhysicsInput& in, double dt,
           physics::PhysicsOutput& out) override;
  const char* name() const override { return "ML-physics"; }

  /// FLOPs per column of the ML modules (dense matrix arithmetic): the
  /// paper reports ~2x the FLOPs of RRTMG at 74-84% of peak vs 6%.
  double flopsPerColumn() const;

 private:
  /// Batched tendency inference: (batch, u, v, t, q, p, q1, q2, ws) with the
  /// [batch][nlev] layout of Q1Q2Net::predictBatch.
  using PredictFn = std::function<void(
      int, const double*, const double*, const double*, const double*,
      const double*, double*, double*, common::Workspace&)>;
  /// Workspace bytes the tendency module needs for a given batch.
  using ScratchFn = std::function<std::size_t(int)>;
  MlPhysicsSuite(Index ncolumns, int nlev, PredictFn predict, ScratchFn scratch,
                 std::size_t q1q2_params, std::shared_ptr<const RadMlp> rad,
                 MlSuiteConfig config);

  PredictFn predict_q1q2_;
  ScratchFn q1q2_scratch_;
  std::size_t q1q2_params_ = 0;
  std::shared_ptr<const RadMlp> rad_;
  physics::SurfaceLayer surface_;
  physics::LandModel land_;
  MlSuiteConfig config_;
  int nlev_;
};

} // namespace grist::ml
