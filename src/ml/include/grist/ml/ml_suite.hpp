// The ML-based physics suite (paper Fig. 3, section 3.2.4): the ML physical
// tendency module (Q1/Q2 CNN) replaces the summed tendencies of all
// conventional physical processes for T and q, the ML radiation diagnostic
// module supplies gsw/glw to the surface-layer scheme and the land model,
// and conventional diagnostic modules (surface layer, land) complete the
// suite. Precipitation is diagnosed from the column apparent moisture sink.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "grist/common/workspace.hpp"
#include "grist/ml/ensemble.hpp"
#include "grist/ml/q1q2_net.hpp"
#include "grist/ml/rad_mlp.hpp"
#include "grist/physics/land.hpp"
#include "grist/physics/suite.hpp"
#include "grist/physics/surface.hpp"

namespace grist::ml {

struct MlSuiteConfig {
  physics::SurfaceConfig surface;
  physics::LandConfig land;
  /// Stability clamps on the predicted tendencies (paper section 3.2.3
  /// stresses that the suite must keep the coupled model stable): caps the
  /// apparent heating at |Q1| <= q1_limit (K/s) and the moisture tendency
  /// at |dq/dt| <= dq_limit (1/s). Generous relative to physical values.
  double q1_limit = 150.0 / 86400.0;
  double dq_limit = 3.0e-6;
  /// Columns per inference block: the networks predict over `column_block`
  /// columns at once so the per-column matvecs become GEMMs. 1 recovers the
  /// per-column path (same results either way -- the batched kernels keep
  /// the per-output accumulation order); results are also independent of
  /// the block size itself.
  int column_block = 32;
  /// Inference precision for both networks (grist/ml/quant.hpp). Non-fp32
  /// precisions are gated: before serving a (new) quantized snapshot, run()
  /// compares quantized vs fp32 predictions on a sample of the incoming
  /// columns and throws std::runtime_error if any output's relative L2
  /// deviation exceeds quant_tolerance -- the suite refuses to run a net
  /// whose quantization error leaves the acceptance envelope.
  Precision precision = Precision::kFp32;
  /// Rel-L2 acceptance threshold for the quantization gate (the paper's
  /// Table 3 mixed-precision acceptance procedure uses 5%).
  double quant_tolerance = 0.05;
};

class MlPhysicsSuite final : public physics::PhysicsSuite {
 public:
  /// The networks are shared (trained once, used by many columns/ranks).
  MlPhysicsSuite(Index ncolumns, int nlev, std::shared_ptr<const Q1Q2Net> q1q2,
                 std::shared_ptr<const RadMlp> rad, MlSuiteConfig config = {});

  /// Ensemble-averaged tendency module (the stable-integration variant).
  MlPhysicsSuite(Index ncolumns, int nlev,
                 std::shared_ptr<const Q1Q2Ensemble> ensemble,
                 std::shared_ptr<const RadMlp> rad, MlSuiteConfig config = {});

  void run(const physics::PhysicsInput& in, double dt,
           physics::PhysicsOutput& out) override;
  const char* name() const override { return "ML-physics"; }

  /// FLOPs per column of the ML modules (dense matrix arithmetic): the
  /// paper reports ~2x the FLOPs of RRTMG at 74-84% of peak vs 6%.
  double flopsPerColumn() const;

  /// (variable, rel-L2) pairs recorded by the most recent quantization gate
  /// (empty until a non-fp32 run() has executed the gate).
  const std::vector<std::pair<std::string, double>>& quantGateRecords() const {
    return gate_records_;
  }

 private:
  /// Batched tendency inference: (batch, u, v, t, q, p, q1, q2, ws, prec)
  /// with the [batch][nlev] layout of Q1Q2Net::predictBatch.
  using PredictFn = std::function<void(
      int, const double*, const double*, const double*, const double*,
      const double*, double*, double*, common::Workspace&, Precision)>;
  /// Workspace bytes the tendency module needs for a given batch.
  using ScratchFn = std::function<std::size_t(int)>;
  /// Build-if-needed the tendency module's snapshot for a precision and
  /// return its version (0 for kFp32): the gate re-runs when this changes,
  /// i.e. after a retrain/reload re-quantized the weights.
  using VersionFn = std::function<std::uint64_t(Precision)>;
  MlPhysicsSuite(Index ncolumns, int nlev, PredictFn predict, ScratchFn scratch,
                 VersionFn version, std::size_t q1q2_params,
                 std::shared_ptr<const RadMlp> rad, MlSuiteConfig config);

  /// Compare quantized vs fp32 on a sample of the incoming columns; throws
  /// std::runtime_error when the envelope is exceeded.
  void runQuantGate(const physics::PhysicsInput& in);

  PredictFn predict_q1q2_;
  ScratchFn q1q2_scratch_;
  VersionFn q1q2_version_;
  std::size_t q1q2_params_ = 0;
  std::shared_ptr<const RadMlp> rad_;
  physics::SurfaceLayer surface_;
  physics::LandModel land_;
  MlSuiteConfig config_;
  int nlev_;
  /// Combined (tendency + radiation) snapshot version last accepted by the
  /// gate; 0 = not gated yet.
  std::uint64_t gated_version_ = 0;
  std::vector<std::pair<std::string, double>> gate_records_;
};

} // namespace grist::ml
