// Minimal dense float matrix + GEMM: the arithmetic substrate of the ML
// physics suite. Single precision throughout -- the paper notes the ML
// suite is trivially mixed-precision at the operator level (section 3.4).
//
// The production kernel is a cache-blocked, packed SGEMM with a register-
// tiled microkernel (see DESIGN.md "ML dense-math layer"): op(A)/op(B)
// panels are packed into a gemm-private per-thread Workspace arena so the
// microkernel streams unit-stride data regardless of the transpose flags,
// and the alpha/beta scaling plus an optional per-row bias and ReLU are
// fused into the store epilogue (dense/conv layers need no separate
// bias-and-activation pass).
#pragma once

#include <cstddef>
#include <vector>

namespace grist::common {
class Workspace;
}

namespace grist::ml {

struct Matrix {
  int rows = 0, cols = 0;
  std::vector<float> a;

  Matrix() = default;
  Matrix(int rows_, int cols_, float init = 0.f)
      : rows(rows_), cols(cols_), a(static_cast<std::size_t>(rows_) * cols_, init) {}

  float& at(int r, int c) { return a[static_cast<std::size_t>(r) * cols + c]; }
  float at(int r, int c) const { return a[static_cast<std::size_t>(r) * cols + c]; }
  std::size_t size() const { return a.size(); }
  void zero() { a.assign(a.size(), 0.f); }
};

// Microkernel / blocking geometry (exposed so tests can probe fringe cases
// deliberately). MRxNR register tile; MC/KC/NC cache-block the M/K/N loops.
inline constexpr int kGemmMR = 4;
inline constexpr int kGemmNR = 8;
inline constexpr int kGemmMC = 128;
inline constexpr int kGemmKC = 256;
inline constexpr int kGemmNC = 512;

/// Optional fused store epilogue: after C = alpha*op(A)*op(B) + beta*C,
/// add bias[i] to every element of row i (when bias != nullptr), then apply
/// ReLU (when relu). Applied once, after the final K block.
struct GemmEpilogue {
  const float* bias = nullptr;  ///< length m, or nullptr
  bool relu = false;
};

/// Blocked packed SGEMM on raw row-major buffers:
///   C[m x n] = alpha * op(A) * op(B) + beta * C, then the epilogue.
/// op(A) is m x k read from `a` with leading dimension lda (trans_a reads
/// a[k_idx*lda + i]); likewise op(B) is k x n. beta == 0 never reads C.
///
/// Determinism / accumulation-order contract: every output element is a
/// k-ascending scalar sum chain; the K loop is split into kGemmKC blocks
/// with alpha applied per block, and the small-matrix serial path mirrors
/// that split exactly, so results are identical regardless of which path
/// (or how many threads) ran -- this is what makes batched inference
/// bit-exact against the per-column path.
void gemmBlocked(int m, int n, int k, float alpha, const float* a, int lda,
                 bool trans_a, const float* b, int ldb, bool trans_b,
                 float beta, float* c, int ldc, const GemmEpilogue& ep = {});

/// Naive triple-loop reference (the pre-blocking production kernel): one
/// accumulator per output element over the full K range, alpha applied
/// once. Used to validate gemmBlocked (<= 1e-5 relative) and as the bench
/// baseline.
void gemmNaive(int m, int n, int k, float alpha, const float* a, int lda,
               bool trans_a, const float* b, int ldb, bool trans_b, float beta,
               float* c, int ldc, const GemmEpilogue& ep = {});

/// C = alpha * op(A) * op(B) + beta * C. Shapes are validated; throws
/// std::invalid_argument on mismatch. Dispatches to the blocked packed
/// kernel (parallel over row panels above a flop threshold; tiny
/// matvec-shaped calls stay serial to skip the OpenMP fork).
void gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c);

/// y += alpha * x (shape-checked).
void axpy(float alpha, const Matrix& x, Matrix& y);

namespace detail {
/// The gemm-private per-thread packing arena (empty between GEMM calls by
/// construction -- see matrix.cpp). Shared with the quantized path
/// (grist/ml/quant.hpp) so fp32 and quantized GEMMs reuse one arena per
/// thread instead of growing two.
common::Workspace& gemmArena();
} // namespace detail

} // namespace grist::ml
