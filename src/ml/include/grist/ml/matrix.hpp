// Minimal dense float matrix + GEMM: the arithmetic substrate of the ML
// physics suite. Single precision throughout -- the paper notes the ML
// suite is trivially mixed-precision at the operator level (section 3.4).
#pragma once

#include <cstddef>
#include <vector>

namespace grist::ml {

struct Matrix {
  int rows = 0, cols = 0;
  std::vector<float> a;

  Matrix() = default;
  Matrix(int rows_, int cols_, float init = 0.f)
      : rows(rows_), cols(cols_), a(static_cast<std::size_t>(rows_) * cols_, init) {}

  float& at(int r, int c) { return a[static_cast<std::size_t>(r) * cols + c]; }
  float at(int r, int c) const { return a[static_cast<std::size_t>(r) * cols + c]; }
  std::size_t size() const { return a.size(); }
  void zero() { a.assign(a.size(), 0.f); }
};

/// C = alpha * op(A) * op(B) + beta * C. Shapes are validated; throws
/// std::invalid_argument on mismatch. Parallelized over rows of C.
void gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c);

/// y += x (shape-checked).
void axpy(float alpha, const Matrix& x, Matrix& y);

} // namespace grist::ml
