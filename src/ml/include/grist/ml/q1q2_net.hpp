// The ML physical-tendency module (paper section 3.2.3): an 11-conv-layer
// 1D CNN over the vertical column -- one input convolution plus five
// ResUnits (two convolutions each, with identity skip), closed by a 1x1
// projection head. With 128 channels the parameter count is ~0.5M, matching
// the paper. Inputs are the coupling variables (U, V, T, Q, P) as vertical
// profiles; outputs are the Q1 (apparent heating) and Q2 (apparent moisture
// sink) profiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grist/common/workspace.hpp"
#include "grist/ml/adam.hpp"
#include "grist/ml/layers.hpp"
#include "grist/ml/quant.hpp"

namespace grist::ml {

struct Q1Q2NetConfig {
  int nlev = 30;
  int channels = 128;
  int res_units = 5;
  std::uint64_t seed = 20250301;
};

/// Per-channel standardization constants.
struct ChannelNorm {
  std::vector<float> mean, stdev;
};

/// One training sample: x is [5, nlev] (U,V,T,Q,P), y is [2, nlev] (Q1,Q2),
/// both in raw physical units.
struct ColumnSample {
  Matrix x;
  Matrix y;
};

class Q1Q2Net {
 public:
  explicit Q1Q2Net(Q1Q2NetConfig config = {});

  static constexpr int kInputChannels = 5;
  static constexpr int kOutputChannels = 2;

  /// Raw-unit inference for one column; thread-safe (const, no shared
  /// scratch). Arrays are length nlev. Routes through predictBatch with a
  /// batch of one, so per-column and batched results are bit-identical.
  void predict(const double* u, const double* v, const double* t,
               const double* q, const double* p, double* q1, double* q2) const;

  /// Raw-unit inference over a block of columns: each input/output array is
  /// [batch][nlev] contiguous (column-major over the block, level fastest --
  /// the physics Field layout, so the suite passes field slices directly).
  /// All scratch comes from `ws`; callers that pre-reserve
  /// predictScratchBytes(batch) make the call allocation-free. Thread-safe
  /// for distinct workspaces.
  ///
  /// `prec` selects the inference kernel: kFp32 runs the bit-exact packed
  /// SGEMM; kBf16/kInt8 run the quantized path against a versioned weight
  /// snapshot that is built lazily on the first such call (the only
  /// allocating one -- call ensureQuantized() up front to keep warm runs
  /// heap-free) and invalidated by trainBatch()/load().
  void predictBatch(int batch, const double* u, const double* v,
                    const double* t, const double* q, const double* p,
                    double* q1, double* q2, common::Workspace& ws,
                    Precision prec = Precision::kFp32) const;

  /// Worst-case workspace bytes predictBatch(batch, ...) consumes.
  std::size_t predictScratchBytes(int batch) const;

  /// Build (or reuse) the quantized snapshot for `prec` (no-op for kFp32).
  void ensureQuantized(Precision prec) const;
  /// Version of the current snapshot for `prec`, 0 when absent (or kFp32).
  std::uint64_t quantizedVersion(Precision prec) const;

  /// FNV-1a over every parameter and normalization constant -- the identity
  /// a checkpoint records so restore can refuse to resume against nets that
  /// would silently change the forecast.
  std::uint64_t weightFingerprint() const;

  /// Fit the normalization constants to a sample set (call before training).
  void fitNormalization(const std::vector<ColumnSample>& samples);

  /// One pass over the batch: forward, MSE loss on normalized outputs,
  /// backprop, Adam update. Returns the mean loss.
  double trainBatch(const std::vector<ColumnSample>& batch, Adam& adam);

  /// Mean MSE on normalized outputs without updating (test split).
  double evaluate(const std::vector<ColumnSample>& samples) const;

  /// Register all parameters with an optimizer.
  std::vector<ParamView> paramViews();

  std::size_t parameterCount() const;
  int convLayerCount() const { return 1 + 2 * config_.res_units; }
  const Q1Q2NetConfig& config() const { return config_; }

  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  struct Cache;
  Matrix forwardNormalized(const Matrix& xn, Cache* cache) const;
  void backward(const Cache& cache, const Matrix& dout);
  Matrix normalizeInput(const Matrix& x) const;
  std::vector<QuantizedWeights> buildQuantSnapshot(Precision prec) const;

  Q1Q2NetConfig config_;
  Conv1dParams conv_in_;
  std::vector<Conv1dParams> res_convs_;  // 2 per unit
  Conv1dParams head_;                    // 1x1 projection
  // Gradients mirror the parameters.
  Conv1dParams g_conv_in_;
  std::vector<Conv1dParams> g_res_convs_;
  Conv1dParams g_head_;
  ChannelNorm in_norm_, out_norm_;
  // Lazily-built quantized weight snapshots (derived data: copies start
  // empty, trainBatch/load invalidate).
  mutable QuantCache qcache_;
};

} // namespace grist::ml
