// Stateless layer primitives: parameters and gradients live in caller-owned
// structs, forward/backward are pure functions. This keeps inference
// re-entrant (the coupler runs columns in parallel) and training explicit
// (no hidden autograd state).
#pragma once

#include <cstdint>
#include <vector>

#include "grist/ml/matrix.hpp"

namespace grist::ml {

// ---- 1D convolution over a [channels x length] sequence, same padding ----
struct Conv1dParams {
  int cin = 0, cout = 0, ksize = 3;
  Matrix w;                ///< [cout, cin*ksize]
  std::vector<float> b;    ///< [cout]

  Conv1dParams() = default;
  Conv1dParams(int cin_, int cout_, int ksize_);
  std::size_t parameterCount() const { return w.size() + b.size(); }
};

/// He-uniform initialization with a deterministic seed.
void initConv(Conv1dParams& p, std::uint64_t seed);

/// x: [cin, L] -> out [cout, L]. `col` is a scratch im2col buffer reused
/// across calls ([cin*ksize, L], resized as needed).
Matrix conv1dForward(const Conv1dParams& p, const Matrix& x, Matrix& col);

/// Backward: given x and dout, accumulates into grad (same shape as p) and
/// returns dx. `col` must hold the forward's im2col of x.
Matrix conv1dBackward(const Conv1dParams& p, const Matrix& x, const Matrix& col,
                      const Matrix& dout, Conv1dParams& grad);

// ---- dense layer ----
struct DenseParams {
  int nin = 0, nout = 0;
  Matrix w;              ///< [nout, nin]
  std::vector<float> b;  ///< [nout]

  DenseParams() = default;
  DenseParams(int nin_, int nout_);
  std::size_t parameterCount() const { return w.size() + b.size(); }
};

void initDense(DenseParams& p, std::uint64_t seed);

std::vector<float> denseForward(const DenseParams& p, const std::vector<float>& x);
std::vector<float> denseBackward(const DenseParams& p, const std::vector<float>& x,
                                 const std::vector<float>& dout, DenseParams& grad);

// ---- ReLU ----
void reluInPlace(Matrix& x);
void reluInPlace(std::vector<float>& x);
/// dx = dout where the forward OUTPUT was > 0 (pass the activated value).
void reluBackwardInPlace(const Matrix& activated, Matrix& dout);
void reluBackwardInPlace(const std::vector<float>& activated, std::vector<float>& dout);

} // namespace grist::ml
