// Stateless layer primitives: parameters and gradients live in caller-owned
// structs, forward/backward are pure functions. This keeps inference
// re-entrant (the coupler runs columns in parallel) and training explicit
// (no hidden autograd state).
//
// Two forward flavors exist:
//  - Matrix/vector forms for training, writing into caller-provided scratch
//    (no freshly allocated temporaries per call);
//  - raw-pointer *Batched forms for inference over a block of columns laid
//    out side by side ([channels, batch*len] / [features, batch]), where
//    the per-column matvecs become one GEMM with the bias (+ optional ReLU)
//    fused into the GEMM store epilogue.
#pragma once

#include <cstdint>
#include <vector>

#include "grist/ml/matrix.hpp"

namespace grist::ml {

class QuantizedWeights;

// ---- 1D convolution over a [channels x length] sequence, same padding ----
struct Conv1dParams {
  int cin = 0, cout = 0, ksize = 3;
  Matrix w;                ///< [cout, cin*ksize]
  std::vector<float> b;    ///< [cout]

  Conv1dParams() = default;
  Conv1dParams(int cin_, int cout_, int ksize_);
  std::size_t parameterCount() const { return w.size() + b.size(); }
};

/// He-uniform initialization with a deterministic seed.
void initConv(Conv1dParams& p, std::uint64_t seed);

/// x: [cin, L] -> out [cout, L]. `col` is a scratch im2col buffer and `out`
/// the destination, both reused across calls (resized as needed). The bias
/// (and ReLU when `relu`) is fused into the GEMM epilogue.
void conv1dForward(const Conv1dParams& p, const Matrix& x, Matrix& col,
                   Matrix& out, bool relu = false);

/// Batched im2col over `batch` independent same-padded sequences laid side
/// by side: x is [cin, batch*len], col is [cin*ksize, batch*len]; padding
/// never crosses a column boundary.
void im2colBatched(const float* x, int cin, int ksize, int batch, int len,
                   float* col);

/// Batched convolution forward on raw buffers: x [cin, batch*len] ->
/// out [cout, batch*len]; `col` must hold cin*ksize*batch*len floats.
void conv1dForwardBatched(const Conv1dParams& p, const float* x, int batch,
                          int len, float* col, float* out, bool relu);

/// conv1dForwardBatched with a quantized weight snapshot (`qw` packed from
/// p.w; bias stays fp32 and is fused into the dequant epilogue together
/// with the per-row/per-column scales). Same shapes and scratch contract.
void conv1dForwardBatchedQuant(const Conv1dParams& p, const QuantizedWeights& qw,
                               const float* x, int batch, int len, float* col,
                               float* out, bool relu);

/// Backward: given x and dout, accumulates into grad (same shape as p) and
/// returns dx. `col` must hold the forward's im2col of x.
Matrix conv1dBackward(const Conv1dParams& p, const Matrix& x, const Matrix& col,
                      const Matrix& dout, Conv1dParams& grad);

// ---- dense layer ----
struct DenseParams {
  int nin = 0, nout = 0;
  Matrix w;              ///< [nout, nin]
  std::vector<float> b;  ///< [nout]

  DenseParams() = default;
  DenseParams(int nin_, int nout_);
  std::size_t parameterCount() const { return w.size() + b.size(); }
};

void initDense(DenseParams& p, std::uint64_t seed);

/// out = W x + b, written into caller-provided scratch (resized as needed).
/// Accumulation order is the canonical GEMM order: k-ascending dot product,
/// bias added last -- identical to the batched path.
void denseForward(const DenseParams& p, const std::vector<float>& x,
                  std::vector<float>& out);

/// Batched dense forward on raw buffers: x [nin, batch] (feature-major, one
/// sample per column) -> out [nout, batch], bias/ReLU fused.
void denseForwardBatched(const DenseParams& p, const float* x, int batch,
                         float* out, bool relu);

/// denseForwardBatched with a quantized weight snapshot (`qw` packed from
/// p.w).
void denseForwardBatchedQuant(const DenseParams& p, const QuantizedWeights& qw,
                              const float* x, int batch, float* out, bool relu);

std::vector<float> denseBackward(const DenseParams& p, const std::vector<float>& x,
                                 const std::vector<float>& dout, DenseParams& grad);

// ---- ReLU ----
void reluInPlace(Matrix& x);
void reluInPlace(std::vector<float>& x);
/// dx = dout where the forward OUTPUT was > 0 (pass the activated value).
void reluBackwardInPlace(const Matrix& activated, Matrix& dout);
void reluBackwardInPlace(const std::vector<float>& activated, std::vector<float>& dout);

} // namespace grist::ml
