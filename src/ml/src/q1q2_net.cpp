#include "grist/ml/q1q2_net.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "grist/common/hash.hpp"

namespace grist::ml {

struct Q1Q2Net::Cache {
  Matrix x_in;                     // normalized input
  Matrix col_in;                   // im2col of x_in
  Matrix act_in;                   // activated output of conv_in
  std::vector<Matrix> res_x;       // input of each res conv
  std::vector<Matrix> res_col;     // im2col of each res conv input
  std::vector<Matrix> res_act;     // activated outputs (after +skip for 2nd)
  Matrix head_in;                  // input to the projection head
  Matrix head_col;
};

Q1Q2Net::Q1Q2Net(Q1Q2NetConfig config) : config_(config) {
  const int c = config_.channels;
  conv_in_ = Conv1dParams(kInputChannels, c, 3);
  g_conv_in_ = Conv1dParams(kInputChannels, c, 3);
  initConv(conv_in_, config_.seed);
  for (int r = 0; r < config_.res_units; ++r) {
    for (int half = 0; half < 2; ++half) {
      res_convs_.emplace_back(c, c, 3);
      g_res_convs_.emplace_back(c, c, 3);
      initConv(res_convs_.back(), config_.seed + 17 * (2 * r + half) + 1);
    }
  }
  head_ = Conv1dParams(c, kOutputChannels, 1);
  g_head_ = Conv1dParams(c, kOutputChannels, 1);
  initConv(head_, config_.seed + 999);
  // Identity normalization until fitted.
  in_norm_.mean.assign(kInputChannels, 0.f);
  in_norm_.stdev.assign(kInputChannels, 1.f);
  out_norm_.mean.assign(kOutputChannels, 0.f);
  out_norm_.stdev.assign(kOutputChannels, 1.f);
}

Matrix Q1Q2Net::normalizeInput(const Matrix& x) const {
  Matrix xn = x;
  for (int ci = 0; ci < kInputChannels; ++ci) {
    for (int l = 0; l < xn.cols; ++l) {
      xn.at(ci, l) = (xn.at(ci, l) - in_norm_.mean[ci]) / in_norm_.stdev[ci];
    }
  }
  return xn;
}

Matrix Q1Q2Net::forwardNormalized(const Matrix& xn, Cache* cache) const {
  Matrix col, h;  // local scratch keeps the method re-entrant
  conv1dForward(conv_in_, xn, col, h, /*relu=*/true);
  if (cache) {
    cache->x_in = xn;
    cache->col_in = col;
    cache->act_in = h;
  }
  for (int r = 0; r < config_.res_units; ++r) {
    const Matrix skip = h;
    Matrix col_a;
    if (cache) cache->res_x.push_back(h);
    Matrix mid;
    conv1dForward(res_convs_[2 * r], h, col_a, mid, /*relu=*/true);
    if (cache) cache->res_col.push_back(col_a);
    if (cache) cache->res_act.push_back(mid);
    Matrix col_b;
    if (cache) cache->res_x.push_back(mid);
    Matrix out;
    conv1dForward(res_convs_[2 * r + 1], mid, col_b, out);
    if (cache) cache->res_col.push_back(col_b);
    axpy(1.f, skip, out);  // residual connection
    reluInPlace(out);
    if (cache) cache->res_act.push_back(out);
    h = out;
  }
  Matrix head_col;
  if (cache) cache->head_in = h;
  Matrix y;
  conv1dForward(head_, h, head_col, y);
  if (cache) cache->head_col = head_col;
  return y;
}

void Q1Q2Net::backward(const Cache& cache, const Matrix& dout) {
  Matrix d = conv1dBackward(head_, cache.head_in, cache.head_col, dout, g_head_);
  for (int r = config_.res_units - 1; r >= 0; --r) {
    // Through the post-skip ReLU.
    reluBackwardInPlace(cache.res_act[2 * r + 1], d);
    // Skip path carries d straight through; conv path adds its share.
    Matrix d_conv = conv1dBackward(res_convs_[2 * r + 1], cache.res_x[2 * r + 1],
                                   cache.res_col[2 * r + 1], d, g_res_convs_[2 * r + 1]);
    reluBackwardInPlace(cache.res_act[2 * r], d_conv);
    Matrix d_in = conv1dBackward(res_convs_[2 * r], cache.res_x[2 * r],
                                 cache.res_col[2 * r], d_conv, g_res_convs_[2 * r]);
    axpy(1.f, d, d_in);  // add the skip gradient
    d = d_in;
  }
  reluBackwardInPlace(cache.act_in, d);
  conv1dBackward(conv_in_, cache.x_in, cache.col_in, d, g_conv_in_);
}

void Q1Q2Net::predict(const double* u, const double* v, const double* t,
                      const double* q, const double* p, double* q1,
                      double* q2) const {
  auto& ws = common::Workspace::threadLocal();
  if (ws.used() == 0) ws.reserve(predictScratchBytes(1));
  predictBatch(1, u, v, t, q, p, q1, q2, ws);
}

std::vector<QuantizedWeights> Q1Q2Net::buildQuantSnapshot(Precision prec) const {
  // Layer order: conv_in, res convs in sequence, head -- the order
  // predictBatch consumes them.
  std::vector<QuantizedWeights> snap;
  snap.reserve(2 + res_convs_.size());
  snap.push_back(QuantizedWeights::pack(prec, conv_in_.w));
  for (const auto& p : res_convs_) snap.push_back(QuantizedWeights::pack(prec, p.w));
  snap.push_back(QuantizedWeights::pack(prec, head_.w));
  return snap;
}

void Q1Q2Net::ensureQuantized(Precision prec) const {
  if (prec == Precision::kFp32) return;
  qcache_.get(prec, [this](Precision pp) { return buildQuantSnapshot(pp); });
}

std::uint64_t Q1Q2Net::quantizedVersion(Precision prec) const {
  return prec == Precision::kFp32 ? 0 : qcache_.version(prec);
}

std::uint64_t Q1Q2Net::weightFingerprint() const {
  std::uint64_t h = common::kFnvOffsetBasis;
  const auto conv = [&h](const Conv1dParams& p) {
    h = common::fnv1a(p.w.a.data(), p.w.a.size() * sizeof(float), h);
    h = common::fnv1a(p.b.data(), p.b.size() * sizeof(float), h);
  };
  const auto floats = [&h](const std::vector<float>& v) {
    h = common::fnv1a(v.data(), v.size() * sizeof(float), h);
  };
  conv(conv_in_);
  for (const auto& p : res_convs_) conv(p);
  conv(head_);
  floats(in_norm_.mean);
  floats(in_norm_.stdev);
  floats(out_norm_.mean);
  floats(out_norm_.stdev);
  return h;
}

void Q1Q2Net::predictBatch(int batch, const double* u, const double* v,
                           const double* t, const double* q, const double* p,
                           double* q1, double* q2, common::Workspace& ws,
                           Precision prec) const {
  const int nlev = config_.nlev;
  const int chan = config_.channels;
  const std::size_t bl = static_cast<std::size_t>(batch) * nlev;
  const std::vector<QuantizedWeights>* qw = nullptr;
  if (prec != Precision::kFp32) {
    qw = &qcache_.get(prec,
                      [this](Precision pp) { return buildQuantSnapshot(pp); });
  }
  common::Workspace::Frame frame(ws);

  // Gather + normalize the five coupling variables into [5, batch*nlev].
  float* xn = ws.get<float>(kInputChannels * bl);
  const double* src[kInputChannels] = {u, v, t, q, p};
  for (int ci = 0; ci < kInputChannels; ++ci) {
    const float mean = in_norm_.mean[ci];
    const float stdev = in_norm_.stdev[ci];
    float* dst = xn + ci * bl;
    for (std::size_t i = 0; i < bl; ++i) {
      dst[i] = (static_cast<float>(src[ci][i]) - mean) / stdev;
    }
  }

  const int colrows = 3 * (chan > kInputChannels ? chan : kInputChannels);
  float* col = ws.get<float>(static_cast<std::size_t>(colrows) * bl);
  float* h = ws.get<float>(static_cast<std::size_t>(chan) * bl);
  float* mid = ws.get<float>(static_cast<std::size_t>(chan) * bl);
  float* tmp = ws.get<float>(static_cast<std::size_t>(chan) * bl);
  float* y = ws.get<float>(kOutputChannels * bl);

  // Layer index into the snapshot mirrors buildQuantSnapshot's order.
  const auto conv = [&](const Conv1dParams& cp, int layer, const float* x,
                        float* out, bool relu) {
    if (qw) {
      conv1dForwardBatchedQuant(cp, (*qw)[layer], x, batch, nlev, col, out,
                                relu);
    } else {
      conv1dForwardBatched(cp, x, batch, nlev, col, out, relu);
    }
  };

  conv(conv_in_, 0, xn, h, /*relu=*/true);
  for (int r = 0; r < config_.res_units; ++r) {
    conv(res_convs_[2 * r], 1 + 2 * r, h, mid, true);
    conv(res_convs_[2 * r + 1], 2 + 2 * r, mid, tmp, false);
    const std::size_t cbl = static_cast<std::size_t>(chan) * bl;
    for (std::size_t i = 0; i < cbl; ++i) {
      const float s = tmp[i] + h[i];  // conv output + identity skip
      h[i] = s > 0.f ? s : 0.f;
    }
  }
  conv(head_, 1 + 2 * config_.res_units, h, y, false);

  for (std::size_t i = 0; i < bl; ++i) {
    q1[i] = y[i] * out_norm_.stdev[0] + out_norm_.mean[0];
    q2[i] = y[bl + i] * out_norm_.stdev[1] + out_norm_.mean[1];
  }
}

std::size_t Q1Q2Net::predictScratchBytes(int batch) const {
  using W = common::Workspace;
  const std::size_t bl =
      static_cast<std::size_t>(batch) * config_.nlev;
  const int chan = config_.channels;
  const std::size_t colrows =
      3 * static_cast<std::size_t>(chan > kInputChannels ? chan
                                                         : kInputChannels);
  return W::bytesFor<float>(kInputChannels * bl) +
         W::bytesFor<float>(colrows * bl) +
         3 * W::bytesFor<float>(static_cast<std::size_t>(chan) * bl) +
         W::bytesFor<float>(kOutputChannels * bl);
}

void Q1Q2Net::fitNormalization(const std::vector<ColumnSample>& samples) {
  if (samples.empty()) throw std::invalid_argument("fitNormalization: empty set");
  const auto fit = [](ChannelNorm& norm, int channels,
                      const std::vector<const Matrix*>& mats) {
    norm.mean.assign(channels, 0.f);
    norm.stdev.assign(channels, 0.f);
    std::size_t count = 0;
    for (const Matrix* m : mats) count += m->cols;
    for (int ci = 0; ci < channels; ++ci) {
      double sum = 0;
      for (const Matrix* m : mats) {
        for (int l = 0; l < m->cols; ++l) sum += m->at(ci, l);
      }
      const double mean = sum / static_cast<double>(count);
      double var = 0;
      for (const Matrix* m : mats) {
        for (int l = 0; l < m->cols; ++l) {
          const double d = m->at(ci, l) - mean;
          var += d * d;
        }
      }
      norm.mean[ci] = static_cast<float>(mean);
      norm.stdev[ci] =
          static_cast<float>(std::sqrt(var / static_cast<double>(count)) + 1e-8);
    }
  };
  std::vector<const Matrix*> xs, ys;
  for (const ColumnSample& s : samples) {
    xs.push_back(&s.x);
    ys.push_back(&s.y);
  }
  fit(in_norm_, kInputChannels, xs);
  fit(out_norm_, kOutputChannels, ys);
}

double Q1Q2Net::trainBatch(const std::vector<ColumnSample>& batch, Adam& adam) {
  if (batch.empty()) return 0.0;
  double loss = 0.0;
  for (const ColumnSample& s : batch) {
    Cache cache;
    const Matrix y = forwardNormalized(normalizeInput(s.x), &cache);
    // Normalized-target MSE; dL/dy = 2 (y - yn) / N.
    Matrix dout(y.rows, y.cols);
    const float inv_n = 1.f / static_cast<float>(y.size());
    for (int ci = 0; ci < kOutputChannels; ++ci) {
      for (int l = 0; l < y.cols; ++l) {
        const float target =
            (s.y.at(ci, l) - out_norm_.mean[ci]) / out_norm_.stdev[ci];
        const float diff = y.at(ci, l) - target;
        loss += diff * diff * inv_n;
        dout.at(ci, l) = 2.f * diff * inv_n / static_cast<float>(batch.size());
      }
    }
    backward(cache, dout);
  }
  adam.step();
  qcache_.invalidate();  // weights changed: snapshots are stale
  return loss / static_cast<double>(batch.size());
}

double Q1Q2Net::evaluate(const std::vector<ColumnSample>& samples) const {
  double loss = 0.0;
  for (const ColumnSample& s : samples) {
    const Matrix y = forwardNormalized(normalizeInput(s.x), nullptr);
    const float inv_n = 1.f / static_cast<float>(y.size());
    for (int ci = 0; ci < kOutputChannels; ++ci) {
      for (int l = 0; l < y.cols; ++l) {
        const float target =
            (s.y.at(ci, l) - out_norm_.mean[ci]) / out_norm_.stdev[ci];
        const float diff = y.at(ci, l) - target;
        loss += diff * diff * inv_n;
      }
    }
  }
  return samples.empty() ? 0.0 : loss / static_cast<double>(samples.size());
}

std::vector<ParamView> Q1Q2Net::paramViews() {
  std::vector<ParamView> views;
  const auto add = [&](Conv1dParams& p, Conv1dParams& g) {
    views.push_back({p.w.a.data(), g.w.a.data(), p.w.size()});
    views.push_back({p.b.data(), g.b.data(), p.b.size()});
  };
  add(conv_in_, g_conv_in_);
  for (std::size_t i = 0; i < res_convs_.size(); ++i) {
    add(res_convs_[i], g_res_convs_[i]);
  }
  add(head_, g_head_);
  return views;
}

std::size_t Q1Q2Net::parameterCount() const {
  std::size_t total = conv_in_.parameterCount() + head_.parameterCount();
  for (const auto& p : res_convs_) total += p.parameterCount();
  return total;
}

namespace {
void writeFloats(std::ofstream& out, const std::vector<float>& v) {
  const std::int64_t n = static_cast<std::int64_t>(v.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}
void readFloats(std::ifstream& in, std::vector<float>& v) {
  std::int64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (n != static_cast<std::int64_t>(v.size())) {
    throw std::runtime_error("Q1Q2Net::load: shape mismatch");
  }
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
}
} // namespace

void Q1Q2Net::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Q1Q2Net::save: cannot open " + path);
  writeFloats(out, conv_in_.w.a);
  writeFloats(out, conv_in_.b);
  for (const auto& p : res_convs_) {
    writeFloats(out, p.w.a);
    writeFloats(out, p.b);
  }
  writeFloats(out, head_.w.a);
  writeFloats(out, head_.b);
  writeFloats(out, in_norm_.mean);
  writeFloats(out, in_norm_.stdev);
  writeFloats(out, out_norm_.mean);
  writeFloats(out, out_norm_.stdev);
}

void Q1Q2Net::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Q1Q2Net::load: cannot open " + path);
  readFloats(in, conv_in_.w.a);
  readFloats(in, conv_in_.b);
  for (auto& p : res_convs_) {
    readFloats(in, p.w.a);
    readFloats(in, p.b);
  }
  readFloats(in, head_.w.a);
  readFloats(in, head_.b);
  readFloats(in, in_norm_.mean);
  readFloats(in, in_norm_.stdev);
  readFloats(in, out_norm_.mean);
  readFloats(in, out_norm_.stdev);
  qcache_.invalidate();  // weights changed: snapshots are stale
}

} // namespace grist::ml
