#include "grist/ml/ensemble.hpp"

#include <cmath>
#include <stdexcept>

namespace grist::ml {

Q1Q2Ensemble::Q1Q2Ensemble(std::vector<std::shared_ptr<const Q1Q2Net>> members)
    : members_(std::move(members)) {
  if (members_.empty()) throw std::invalid_argument("Q1Q2Ensemble: empty");
  for (const auto& member : members_) {
    if (!member) throw std::invalid_argument("Q1Q2Ensemble: null member");
    if (member->config().nlev != members_.front()->config().nlev) {
      throw std::invalid_argument("Q1Q2Ensemble: nlev mismatch across members");
    }
  }
}

void Q1Q2Ensemble::predict(const double* u, const double* v, const double* t,
                           const double* q, const double* p, double* q1,
                           double* q2) const {
  const int n = nlev();
  std::vector<double> q1_m(n), q2_m(n);
  for (int k = 0; k < n; ++k) {
    q1[k] = 0;
    q2[k] = 0;
  }
  for (const auto& member : members_) {
    member->predict(u, v, t, q, p, q1_m.data(), q2_m.data());
    for (int k = 0; k < n; ++k) {
      q1[k] += q1_m[k];
      q2[k] += q2_m[k];
    }
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (int k = 0; k < n; ++k) {
    q1[k] *= inv;
    q2[k] *= inv;
  }
}

void Q1Q2Ensemble::spread(const double* u, const double* v, const double* t,
                          const double* q, const double* p,
                          double* q1_spread) const {
  const int n = nlev();
  std::vector<double> mean(n, 0.0), m2(n, 0.0), q1_m(n), q2_m(n);
  for (const auto& member : members_) {
    member->predict(u, v, t, q, p, q1_m.data(), q2_m.data());
    for (int k = 0; k < n; ++k) {
      mean[k] += q1_m[k];
      m2[k] += q1_m[k] * q1_m[k];
    }
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (int k = 0; k < n; ++k) {
    const double mu = mean[k] * inv;
    q1_spread[k] = std::sqrt(std::max(0.0, m2[k] * inv - mu * mu));
  }
}

} // namespace grist::ml
