#include "grist/ml/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace grist::ml {

Q1Q2Ensemble::Q1Q2Ensemble(std::vector<std::shared_ptr<const Q1Q2Net>> members)
    : members_(std::move(members)) {
  if (members_.empty()) throw std::invalid_argument("Q1Q2Ensemble: empty");
  for (const auto& member : members_) {
    if (!member) throw std::invalid_argument("Q1Q2Ensemble: null member");
    if (member->config().nlev != members_.front()->config().nlev) {
      throw std::invalid_argument("Q1Q2Ensemble: nlev mismatch across members");
    }
  }
}

void Q1Q2Ensemble::predict(const double* u, const double* v, const double* t,
                           const double* q, const double* p, double* q1,
                           double* q2) const {
  auto& ws = common::Workspace::threadLocal();
  if (ws.used() == 0) ws.reserve(predictScratchBytes(1));
  predictBatch(1, u, v, t, q, p, q1, q2, ws);
}

void Q1Q2Ensemble::predictBatch(int batch, const double* u, const double* v,
                                const double* t, const double* q,
                                const double* p, double* q1, double* q2,
                                common::Workspace& ws, Precision prec) const {
  const std::size_t bl = static_cast<std::size_t>(batch) * nlev();
  common::Workspace::Frame frame(ws);
  double* q1_m = ws.get<double>(bl);
  double* q2_m = ws.get<double>(bl);
  for (std::size_t k = 0; k < bl; ++k) {
    q1[k] = 0;
    q2[k] = 0;
  }
  for (const auto& member : members_) {
    member->predictBatch(batch, u, v, t, q, p, q1_m, q2_m, ws, prec);
    for (std::size_t k = 0; k < bl; ++k) {
      q1[k] += q1_m[k];
      q2[k] += q2_m[k];
    }
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (std::size_t k = 0; k < bl; ++k) {
    q1[k] *= inv;
    q2[k] *= inv;
  }
}

std::size_t Q1Q2Ensemble::predictScratchBytes(int batch) const {
  using W = common::Workspace;
  const std::size_t bl = static_cast<std::size_t>(batch) * nlev();
  std::size_t member_max = 0;
  for (const auto& member : members_) {
    member_max = std::max(member_max, member->predictScratchBytes(batch));
  }
  return 2 * W::bytesFor<double>(bl) + member_max;
}

void Q1Q2Ensemble::ensureQuantized(Precision prec) const {
  for (const auto& member : members_) member->ensureQuantized(prec);
}

std::uint64_t Q1Q2Ensemble::quantizedVersion(Precision prec) const {
  std::uint64_t v = 0;
  for (const auto& member : members_) v += member->quantizedVersion(prec);
  return v;
}

void Q1Q2Ensemble::spread(const double* u, const double* v, const double* t,
                          const double* q, const double* p,
                          double* q1_spread) const {
  const int n = nlev();
  std::vector<double> mean(n, 0.0), m2(n, 0.0), q1_m(n), q2_m(n);
  for (const auto& member : members_) {
    member->predict(u, v, t, q, p, q1_m.data(), q2_m.data());
    for (int k = 0; k < n; ++k) {
      mean[k] += q1_m[k];
      m2[k] += q1_m[k] * q1_m[k];
    }
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (int k = 0; k < n; ++k) {
    const double mu = mean[k] * inv;
    q1_spread[k] = std::sqrt(std::max(0.0, m2[k] * inv - mu * mu));
  }
}

} // namespace grist::ml
