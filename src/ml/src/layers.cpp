#include "grist/ml/layers.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "grist/ml/quant.hpp"

namespace grist::ml {
namespace {

// im2col for same-padded 1D convolution: col[(ci*K + t), l] = x[ci, l+t-K/2].
void im2col(const Matrix& x, int ksize, Matrix& col) {
  const int cin = x.rows, len = x.cols;
  if (col.rows != cin * ksize || col.cols != len) {
    col = Matrix(cin * ksize, len);
  }
  im2colBatched(x.a.data(), cin, ksize, 1, len, col.a.data());
}

void col2imAdd(const Matrix& dcol, int cin, int ksize, Matrix& dx) {
  const int len = dx.cols;
  const int half = ksize / 2;
  for (int ci = 0; ci < cin; ++ci) {
    for (int t = 0; t < ksize; ++t) {
      for (int l = 0; l < len; ++l) {
        const int src = l + t - half;
        if (src >= 0 && src < len) dx.at(ci, src) += dcol.at(ci * ksize + t, l);
      }
    }
  }
}

std::mt19937_64 seededRng(std::uint64_t seed) { return std::mt19937_64(seed); }

} // namespace

Conv1dParams::Conv1dParams(int cin_, int cout_, int ksize_)
    : cin(cin_), cout(cout_), ksize(ksize_), w(cout_, cin_ * ksize_), b(cout_, 0.f) {
  if (ksize_ % 2 == 0) throw std::invalid_argument("Conv1dParams: even kernel");
}

void initConv(Conv1dParams& p, std::uint64_t seed) {
  auto rng = seededRng(seed);
  const float bound = std::sqrt(6.0f / static_cast<float>(p.cin * p.ksize));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (float& v : p.w.a) v = dist(rng);
  for (float& v : p.b) v = 0.f;
}

void im2colBatched(const float* x, int cin, int ksize, int batch, int len,
                   float* col) {
  const int half = ksize / 2;
  const std::size_t bl = static_cast<std::size_t>(batch) * len;
  for (int ci = 0; ci < cin; ++ci) {
    const float* xrow = x + static_cast<std::size_t>(ci) * bl;
    for (int t = 0; t < ksize; ++t) {
      float* crow = col + (static_cast<std::size_t>(ci) * ksize + t) * bl;
      const int shift = t - half;  // col[., b*len + l] = x[., b*len + l+shift]
      for (int b = 0; b < batch; ++b) {
        const float* xs = xrow + static_cast<std::size_t>(b) * len;
        float* cs = crow + static_cast<std::size_t>(b) * len;
        const int lo = std::max(0, -shift);
        const int hi = std::min(len, len - shift);
        for (int l = 0; l < lo; ++l) cs[l] = 0.f;
        for (int l = lo; l < hi; ++l) cs[l] = xs[l + shift];
        for (int l = std::max(hi, lo); l < len; ++l) cs[l] = 0.f;
      }
    }
  }
}

void conv1dForwardBatched(const Conv1dParams& p, const float* x, int batch,
                          int len, float* col, float* out, bool relu) {
  const int bl = batch * len;
  if (p.ksize == 1) {
    // 1x1 convolution: the im2col is the input itself.
    gemmBlocked(p.cout, bl, p.cin, 1.f, p.w.a.data(), p.cin, false, x, bl, false,
                0.f, out, bl, GemmEpilogue{p.b.data(), relu});
    return;
  }
  im2colBatched(x, p.cin, p.ksize, batch, len, col);
  gemmBlocked(p.cout, bl, p.cin * p.ksize, 1.f, p.w.a.data(), p.cin * p.ksize,
              false, col, bl, false, 0.f, out, bl, GemmEpilogue{p.b.data(), relu});
}

void conv1dForwardBatchedQuant(const Conv1dParams& p, const QuantizedWeights& qw,
                               const float* x, int batch, int len, float* col,
                               float* out, bool relu) {
  if (qw.rows() != p.cout || qw.cols() != p.cin * p.ksize) {
    throw std::invalid_argument("conv1dForwardBatchedQuant: snapshot mismatch");
  }
  const int bl = batch * len;
  if (p.ksize == 1) {
    gemmQuant(qw, bl, x, bl, false, out, bl, GemmEpilogue{p.b.data(), relu});
    return;
  }
  im2colBatched(x, p.cin, p.ksize, batch, len, col);
  gemmQuant(qw, bl, col, bl, false, out, bl, GemmEpilogue{p.b.data(), relu});
}

void conv1dForward(const Conv1dParams& p, const Matrix& x, Matrix& col,
                   Matrix& out, bool relu) {
  if (x.rows != p.cin) throw std::invalid_argument("conv1dForward: channel mismatch");
  im2col(x, p.ksize, col);
  if (out.rows != p.cout || out.cols != x.cols) out = Matrix(p.cout, x.cols);
  gemmBlocked(p.cout, x.cols, p.cin * p.ksize, 1.f, p.w.a.data(),
              p.cin * p.ksize, false, col.a.data(), x.cols, false, 0.f,
              out.a.data(), x.cols, GemmEpilogue{p.b.data(), relu});
}

Matrix conv1dBackward(const Conv1dParams& p, const Matrix& x, const Matrix& col,
                      const Matrix& dout, Conv1dParams& grad) {
  // dW += dout * col^T ; db += row sums of dout ; dx = col2im(W^T * dout).
  gemm(false, true, 1.f, dout, col, 1.f, grad.w);
  for (int co = 0; co < p.cout; ++co) {
    for (int l = 0; l < dout.cols; ++l) grad.b[co] += dout.at(co, l);
  }
  Matrix dcol(p.cin * p.ksize, x.cols);
  gemm(true, false, 1.f, p.w, dout, 0.f, dcol);
  Matrix dx(p.cin, x.cols);
  col2imAdd(dcol, p.cin, p.ksize, dx);
  return dx;
}

DenseParams::DenseParams(int nin_, int nout_)
    : nin(nin_), nout(nout_), w(nout_, nin_), b(nout_, 0.f) {}

void initDense(DenseParams& p, std::uint64_t seed) {
  auto rng = seededRng(seed);
  const float bound = std::sqrt(6.0f / static_cast<float>(p.nin));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (float& v : p.w.a) v = dist(rng);
  for (float& v : p.b) v = 0.f;
}

void denseForward(const DenseParams& p, const std::vector<float>& x,
                  std::vector<float>& out) {
  if (static_cast<int>(x.size()) != p.nin) {
    throw std::invalid_argument("denseForward: input size mismatch");
  }
  out.resize(p.nout);
  gemmBlocked(p.nout, 1, p.nin, 1.f, p.w.a.data(), p.nin, false, x.data(), 1,
              false, 0.f, out.data(), 1, GemmEpilogue{p.b.data(), false});
}

void denseForwardBatched(const DenseParams& p, const float* x, int batch,
                         float* out, bool relu) {
  gemmBlocked(p.nout, batch, p.nin, 1.f, p.w.a.data(), p.nin, false, x, batch,
              false, 0.f, out, batch, GemmEpilogue{p.b.data(), relu});
}

void denseForwardBatchedQuant(const DenseParams& p, const QuantizedWeights& qw,
                              const float* x, int batch, float* out, bool relu) {
  if (qw.rows() != p.nout || qw.cols() != p.nin) {
    throw std::invalid_argument("denseForwardBatchedQuant: snapshot mismatch");
  }
  gemmQuant(qw, batch, x, batch, false, out, batch,
            GemmEpilogue{p.b.data(), relu});
}

std::vector<float> denseBackward(const DenseParams& p, const std::vector<float>& x,
                                 const std::vector<float>& dout, DenseParams& grad) {
  std::vector<float> dx(p.nin, 0.f);
  for (int o = 0; o < p.nout; ++o) {
    grad.b[o] += dout[o];
    for (int i = 0; i < p.nin; ++i) {
      grad.w.at(o, i) += dout[o] * x[i];
      dx[i] += p.w.at(o, i) * dout[o];
    }
  }
  return dx;
}

void reluInPlace(Matrix& x) {
  for (float& v : x.a) v = v > 0.f ? v : 0.f;
}
void reluInPlace(std::vector<float>& x) {
  for (float& v : x) v = v > 0.f ? v : 0.f;
}
void reluBackwardInPlace(const Matrix& activated, Matrix& dout) {
  for (std::size_t i = 0; i < dout.a.size(); ++i) {
    if (activated.a[i] <= 0.f) dout.a[i] = 0.f;
  }
}
void reluBackwardInPlace(const std::vector<float>& activated, std::vector<float>& dout) {
  for (std::size_t i = 0; i < dout.size(); ++i) {
    if (activated[i] <= 0.f) dout[i] = 0.f;
  }
}

} // namespace grist::ml
