#include "grist/ml/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace grist::ml {

void Adam::registerParams(const std::vector<ParamView>& views) {
  for (const ParamView& view : views) {
    if (view.value == nullptr || view.grad == nullptr) {
      throw std::invalid_argument("Adam: null parameter view");
    }
    views_.push_back(view);
    m_.emplace_back(view.count, 0.f);
    v_.emplace_back(view.count, 0.f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t p = 0; p < views_.size(); ++p) {
    ParamView& view = views_[p];
    for (std::size_t i = 0; i < view.count; ++i) {
      const float g = view.grad[i];
      m_[p][i] = config_.beta1 * m_[p][i] + (1.f - config_.beta1) * g;
      v_[p][i] = config_.beta2 * v_[p][i] + (1.f - config_.beta2) * g * g;
      const float mhat = m_[p][i] / bc1;
      const float vhat = v_[p][i] / bc2;
      view.value[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
      view.grad[i] = 0.f;
    }
  }
}

std::size_t Adam::parameterCount() const {
  std::size_t total = 0;
  for (const ParamView& view : views_) total += view.count;
  return total;
}

} // namespace grist::ml
