#include "grist/ml/quant.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "grist/common/workspace.hpp"

namespace grist::ml {
namespace {

namespace bq = backend::quant;
using common::Workspace;

// Same fork threshold as the fp32 kernel: below it the OpenMP fork costs
// more than the panel loop saves (and inside the suite's column-block
// parallel region we never nest).
constexpr double kParallelQuantFlops = 2.0e6;

std::atomic<std::uint64_t> g_pack_version{0};

// Elements per cache-line-padded weight strip for an element of `bytes`.
std::size_t stripStrideElems(int k2, std::size_t bytes) {
  const std::size_t payload =
      static_cast<std::size_t>(k2) * bq::kQuantMR * 2 * bytes;
  return common::roundUpToCacheLine(payload) / bytes;
}

// Per-column absolute maxima of op(B) (k x n), written to amax[n].
void columnAbsMax(int k, int n, const float* b, int ldb, bool trans_b,
                  float* amax) {
  std::fill(amax, amax + n, 0.0f);
  if (trans_b) {
    for (int j = 0; j < n; ++j) {
      const float* col = b + static_cast<std::size_t>(j) * ldb;
      float m = 0.0f;
      for (int kk = 0; kk < k; ++kk) m = std::max(m, std::fabs(col[kk]));
      amax[j] = m;
    }
  } else {
    for (int kk = 0; kk < k; ++kk) {
      const float* row = b + static_cast<std::size_t>(kk) * ldb;
      for (int j = 0; j < n; ++j) amax[j] = std::max(amax[j], std::fabs(row[j]));
    }
  }
}

} // namespace

const char* precisionName(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
  }
  return "?";
}

QuantizedWeights QuantizedWeights::pack(Precision prec, const Matrix& w) {
  if (prec == Precision::kFp32) {
    throw std::invalid_argument(
        "QuantizedWeights::pack: fp32 is served by the fp32 kernel");
  }
  if (w.rows <= 0 || w.cols <= 0) {
    throw std::invalid_argument("QuantizedWeights::pack: empty weights");
  }
  for (float v : w.a) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("QuantizedWeights::pack: non-finite weight");
    }
  }

  QuantizedWeights q;
  q.prec_ = prec;
  q.m_ = w.rows;
  q.k_ = w.cols;
  q.nstrips_ = (w.rows + bq::kQuantMR - 1) / bq::kQuantMR;
  const int k2 = bq::quantKPairs(w.cols);
  const int k = w.cols;

  if (prec == Precision::kBf16) {
    q.strip_stride_ = stripStrideElems(k2, sizeof(std::uint16_t));
    // value-init: fringe rows, odd-k tail and the cache-line pad are zero.
    q.wbf16_.assign(q.strip_stride_ * q.nstrips_, 0);
    for (int s = 0; s < q.nstrips_; ++s) {
      std::uint16_t* strip = q.wbf16_.data() + q.strip_stride_ * s;
      const int mr = std::min(bq::kQuantMR, w.rows - s * bq::kQuantMR);
      for (int t = 0; t < k2; ++t) {
        std::uint16_t* dst =
            strip + static_cast<std::size_t>(t) * bq::kQuantMR * 2;
        for (int i = 0; i < mr; ++i) {
          const int r = s * bq::kQuantMR + i;
          dst[2 * i] = bq::floatToBf16(w.at(r, 2 * t));
          if (2 * t + 1 < k) dst[2 * i + 1] = bq::floatToBf16(w.at(r, 2 * t + 1));
        }
      }
    }
  } else {
    q.strip_stride_ = stripStrideElems(k2, sizeof(std::int8_t));
    q.wint8_.assign(q.strip_stride_ * q.nstrips_, 0);
    q.row_scale_.resize(w.rows);
    for (int r = 0; r < w.rows; ++r) {
      float amax = 0.0f;
      for (int c = 0; c < k; ++c) amax = std::max(amax, std::fabs(w.at(r, c)));
      // amax == 0: the row is all zeros; scale 0 dequantizes to exactly 0.
      q.row_scale_[r] = amax / 127.0f;
      const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
      const int s = r / bq::kQuantMR;
      const int i = r % bq::kQuantMR;
      std::int8_t* strip = q.wint8_.data() + q.strip_stride_ * s;
      for (int t = 0; t < k2; ++t) {
        std::int8_t* dst =
            strip + static_cast<std::size_t>(t) * bq::kQuantMR * 2;
        dst[2 * i] = bq::quantizeInt8(w.at(r, 2 * t), inv);
        if (2 * t + 1 < k) dst[2 * i + 1] = bq::quantizeInt8(w.at(r, 2 * t + 1), inv);
      }
    }
  }
  q.version_ = ++g_pack_version;
  return q;
}

std::size_t QuantizedWeights::packedBytes() const {
  return wbf16_.size() * sizeof(std::uint16_t) +
         wint8_.size() * sizeof(std::int8_t) + row_scale_.size() * sizeof(float);
}

void gemmQuant(const QuantizedWeights& w, int n, const float* b, int ldb,
               bool trans_b, float* c, int ldc, const GemmEpilogue& ep) {
  if (w.empty()) throw std::invalid_argument("gemmQuant: empty weights");
  if (w.precision() == Precision::kFp32) {
    throw std::invalid_argument("gemmQuant: fp32 weights are not packed");
  }
  if (n <= 0) return;
  const int m = w.rows();
  const int k = w.cols();
  const int k2 = bq::quantKPairs(k);
  const int npanels = (n + bq::kQuantNR - 1) / bq::kQuantNR;
  const bool int8 = w.precision() == Precision::kInt8;
  const auto& tbl = bq::table();

  const std::size_t panel_elems =
      static_cast<std::size_t>(k2) * bq::kQuantNR * 2;
  const std::size_t panel_bytes = int8 ? Workspace::bytesFor<std::int8_t>(panel_elems)
                                       : Workspace::bytesFor<std::uint16_t>(panel_elems);

  Workspace& ws = detail::gemmArena();
  // Empty between gemm calls (matrix.cpp contract), so reserve is legal:
  // int8 column scales + inverse scales on this thread, one B panel per
  // thread (worker arenas grow themselves once, on first use).
  ws.reserve(2 * Workspace::bytesFor<float>(static_cast<std::size_t>(n)) +
             panel_bytes);
  Workspace::Frame outer(ws);

  float* bscale = nullptr;  // per-column dequant scale (int8)
  float* binv = nullptr;    // per-column quantization inverse scale
  if (int8) {
    bscale = ws.get<float>(static_cast<std::size_t>(n));
    binv = ws.get<float>(static_cast<std::size_t>(n));
    columnAbsMax(k, n, b, ldb, trans_b, bscale);
    for (int j = 0; j < n; ++j) {
      const float amax = bscale[j];
      bscale[j] = amax / 127.0f;
      binv[j] = amax > 0.0f ? 127.0f / amax : 0.0f;
    }
  }

  const double flops = 2.0 * m * n * k;
  const bool threaded = flops >= kParallelQuantFlops && !omp_in_parallel() &&
                        omp_get_max_threads() > 1;

#pragma omp parallel for schedule(static) if (threaded)
  for (int jp = 0; jp < npanels; ++jp) {
    Workspace& tws = detail::gemmArena();
    Workspace::Frame frame(tws);
    const int j0 = jp * bq::kQuantNR;
    const int nr = std::min(bq::kQuantNR, n - j0);
    // op(B) element [kk][j0 + j] through (row_stride, col_stride).
    const float* bbase;
    std::ptrdiff_t rs, cs;
    if (trans_b) {
      bbase = b + static_cast<std::size_t>(j0) * ldb;
      rs = 1;
      cs = ldb;
    } else {
      bbase = b + j0;
      rs = ldb;
      cs = 1;
    }

    if (int8) {
      std::int8_t* bp = tws.get<std::int8_t>(panel_elems);
      tbl.pack_b_int8(k, nr, bbase, rs, cs, binv + j0, bp);
      alignas(64) std::int32_t acc[bq::kQuantMR * bq::kQuantNR];
      for (int s = 0; s < w.stripCount(); ++s) {
        tbl.int8_tile(k2, w.int8Strip(s), bp, acc);
        const int i0 = s * bq::kQuantMR;
        const int mr = std::min(bq::kQuantMR, m - i0);
        const float* rscale = w.rowScales();
        for (int i = 0; i < mr; ++i) {
          float* crow = c + static_cast<std::size_t>(i0 + i) * ldc + j0;
          const std::int32_t* arow = acc + i * bq::kQuantNR;
          const float si = rscale[i0 + i];
          const float bias = ep.bias ? ep.bias[i0 + i] : 0.0f;
          for (int j = 0; j < nr; ++j) {
            float v = static_cast<float>(arow[j]) * (si * bscale[j0 + j]) + bias;
            if (ep.relu) v = v > 0.0f ? v : 0.0f;
            crow[j] = v;
          }
        }
      }
    } else {
      std::uint16_t* bp = tws.get<std::uint16_t>(panel_elems);
      tbl.pack_b_bf16(k, nr, bbase, rs, cs, bp);
      alignas(64) float acc[bq::kQuantMR * bq::kQuantNR];
      for (int s = 0; s < w.stripCount(); ++s) {
        tbl.bf16_tile(k2, w.bf16Strip(s), bp, acc);
        const int i0 = s * bq::kQuantMR;
        const int mr = std::min(bq::kQuantMR, m - i0);
        for (int i = 0; i < mr; ++i) {
          float* crow = c + static_cast<std::size_t>(i0 + i) * ldc + j0;
          const float* arow = acc + i * bq::kQuantNR;
          const float bias = ep.bias ? ep.bias[i0 + i] : 0.0f;
          for (int j = 0; j < nr; ++j) {
            float v = arow[j] + bias;
            if (ep.relu) v = v > 0.0f ? v : 0.0f;
            crow[j] = v;
          }
        }
      }
    }
  }
}

} // namespace grist::ml
