#include "grist/ml/ml_suite.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "grist/common/math.hpp"
#include "grist/common/timer.hpp"
#include "grist/common/workspace.hpp"
#include "grist/precision/norms.hpp"

namespace grist::ml {

using constants::kCp;
using constants::kGravity;
using constants::kLv;

namespace {

std::shared_ptr<const Q1Q2Net> requireNet(std::shared_ptr<const Q1Q2Net> net,
                                          int nlev) {
  if (!net) throw std::invalid_argument("MlPhysicsSuite: null network");
  if (net->config().nlev != nlev) {
    throw std::invalid_argument("MlPhysicsSuite: Q1Q2Net nlev mismatch");
  }
  return net;
}

std::shared_ptr<const Q1Q2Ensemble> requireEnsemble(
    std::shared_ptr<const Q1Q2Ensemble> ensemble, int nlev) {
  if (!ensemble) throw std::invalid_argument("MlPhysicsSuite: null ensemble");
  if (ensemble->nlev() != nlev) {
    throw std::invalid_argument("MlPhysicsSuite: ensemble nlev mismatch");
  }
  return ensemble;
}

} // namespace

MlPhysicsSuite::MlPhysicsSuite(Index ncolumns, int nlev, PredictFn predict,
                               ScratchFn scratch, VersionFn version,
                               std::size_t q1q2_params,
                               std::shared_ptr<const RadMlp> rad,
                               MlSuiteConfig config)
    : predict_q1q2_(std::move(predict)),
      q1q2_scratch_(std::move(scratch)),
      q1q2_version_(std::move(version)),
      q1q2_params_(q1q2_params),
      rad_(std::move(rad)),
      surface_(config.surface),
      land_(ncolumns, config.land),
      config_(config),
      nlev_(nlev) {
  if (!predict_q1q2_ || !q1q2_scratch_ || !q1q2_version_ || !rad_) {
    throw std::invalid_argument("MlPhysicsSuite: null network");
  }
}

MlPhysicsSuite::MlPhysicsSuite(Index ncolumns, int nlev,
                               std::shared_ptr<const Q1Q2Net> q1q2,
                               std::shared_ptr<const RadMlp> rad,
                               MlSuiteConfig config)
    : MlPhysicsSuite(
          ncolumns, nlev,
          [net = requireNet(q1q2, nlev)](int batch, const double* u,
                                         const double* v, const double* t,
                                         const double* q, const double* p,
                                         double* q1, double* q2,
                                         common::Workspace& ws, Precision prec) {
            net->predictBatch(batch, u, v, t, q, p, q1, q2, ws, prec);
          },
          [net = q1q2](int batch) { return net->predictScratchBytes(batch); },
          [net = q1q2](Precision prec) {
            net->ensureQuantized(prec);
            return net->quantizedVersion(prec);
          },
          q1q2 ? q1q2->parameterCount() : 0, std::move(rad), config) {}

MlPhysicsSuite::MlPhysicsSuite(Index ncolumns, int nlev,
                               std::shared_ptr<const Q1Q2Ensemble> ensemble,
                               std::shared_ptr<const RadMlp> rad,
                               MlSuiteConfig config)
    : MlPhysicsSuite(
          ncolumns, nlev,
          [ens = requireEnsemble(ensemble, nlev)](
              int batch, const double* u, const double* v, const double* t,
              const double* q, const double* p, double* q1, double* q2,
              common::Workspace& ws, Precision prec) {
            ens->predictBatch(batch, u, v, t, q, p, q1, q2, ws, prec);
          },
          [ens = ensemble](int batch) {
            return ens->predictScratchBytes(batch);
          },
          [ens = ensemble](Precision prec) {
            ens->ensureQuantized(prec);
            return ens->quantizedVersion(prec);
          },
          ensemble ? ensemble->parameterCount() : 0, std::move(rad), config) {}

void MlPhysicsSuite::runQuantGate(const physics::PhysicsInput& in) {
  const Precision prec = config_.precision;
  const int nlev = in.nlev;
  // Gate on a sample of the columns the suite is about to serve: enough to
  // make the rel-L2 statistically meaningful, small enough to stay cheap.
  const int bc = static_cast<int>(std::min<Index>(in.ncolumns, 64));
  if (bc <= 0) return;

  const std::size_t bl = static_cast<std::size_t>(bc) * nlev;
  std::vector<double> q1_gold(bl), q2_gold(bl), q1_test(bl), q2_test(bl);
  std::vector<double> gsw_gold(bc), glw_gold(bc), gsw_test(bc), glw_test(bc);

  common::Workspace& ws = common::Workspace::threadLocal();
  if (ws.used() == 0) {
    ws.reserve(std::max(q1q2_scratch_(bc), rad_->predictScratchBytes(bc)));
  }
  predict_q1q2_(bc, &in.u(0, 0), &in.v(0, 0), &in.t(0, 0), &in.qv(0, 0),
                &in.pmid(0, 0), q1_gold.data(), q2_gold.data(), ws,
                Precision::kFp32);
  predict_q1q2_(bc, &in.u(0, 0), &in.v(0, 0), &in.t(0, 0), &in.qv(0, 0),
                &in.pmid(0, 0), q1_test.data(), q2_test.data(), ws, prec);
  rad_->predictBatch(bc, &in.t(0, 0), &in.qv(0, 0), in.tskin.data(),
                     in.coszr.data(), gsw_gold.data(), glw_gold.data(), ws,
                     Precision::kFp32);
  rad_->predictBatch(bc, &in.t(0, 0), &in.qv(0, 0), in.tskin.data(),
                     in.coszr.data(), gsw_test.data(), glw_test.data(), ws,
                     prec);

  precision::PrecisionGate gate(config_.quant_tolerance);
  gate.check("q1", q1_test, q1_gold);
  gate.check("q2", q2_test, q2_gold);
  gate.check("gsw", gsw_test, gsw_gold);
  gate.check("glw", glw_test, glw_gold);
  gate_records_ = gate.records();
  if (!gate.passed()) {
    std::ostringstream msg;
    msg << "MlPhysicsSuite: " << precisionName(prec)
        << " quantization rejected by the rel-L2 acceptance gate (threshold "
        << config_.quant_tolerance << "):";
    for (const auto& [var, rel] : gate_records_) {
      if (rel > config_.quant_tolerance) msg << ' ' << var << '=' << rel;
    }
    throw std::runtime_error(msg.str());
  }
}

void MlPhysicsSuite::run(const physics::PhysicsInput& in, double dt,
                         physics::PhysicsOutput& out) {
  const ScopedTimer timer("physics.ml");
  out.zero();
  const int nlev = in.nlev;
  using common::Workspace;

  const Precision prec = config_.precision;
  if (prec != Precision::kFp32) {
    // Build-if-needed both snapshots, then gate whenever the combined version
    // differs from the last accepted one (first run, retrain, reload).
    rad_->ensureQuantized(prec);
    const std::uint64_t current =
        q1q2_version_(prec) + rad_->quantizedVersion(prec);
    if (current != gated_version_) {
      runQuantGate(in);
      gated_version_ = current;
    }
  }

  // ---- ML physical tendency + ML radiation diagnostic, batched ----
  // Columns are processed in blocks so the per-column matvecs become GEMMs;
  // field slices are passed straight to the networks (the [column][level]
  // field layout is exactly the [batch][nlev] layout predictBatch expects).
  const Index bs = std::min<Index>(
      std::max(1, config_.column_block), std::max<Index>(in.ncolumns, 1));
  const Index nblocks = (in.ncolumns + bs - 1) / bs;
  const int bsi = static_cast<int>(bs);
  const std::size_t need =
      2 * Workspace::bytesFor<double>(static_cast<std::size_t>(bs) * nlev) +
      2 * Workspace::bytesFor<double>(static_cast<std::size_t>(bs)) +
      q1q2_scratch_(bsi) + rad_->predictScratchBytes(bsi);

#pragma omp parallel
  {
    Workspace& ws = Workspace::threadLocal();
    // Grow each worker's arena once, before any frames are live (reserve is
    // only legal on an empty arena); afterwards run() is allocation-free.
    if (ws.used() == 0) ws.reserve(need);
#pragma omp for schedule(static)
    for (Index blk = 0; blk < nblocks; ++blk) {
      const Index c0 = blk * bs;
      const int bc = static_cast<int>(std::min<Index>(bs, in.ncolumns - c0));
      Workspace::Frame frame(ws);
      double* q1 = ws.get<double>(static_cast<std::size_t>(bc) * nlev);
      double* q2 = ws.get<double>(static_cast<std::size_t>(bc) * nlev);
      predict_q1q2_(bc, &in.u(c0, 0), &in.v(c0, 0), &in.t(c0, 0),
                    &in.qv(c0, 0), &in.pmid(c0, 0), q1, q2, ws, prec);
      for (int b = 0; b < bc; ++b) {
        const Index c = c0 + b;
        double moisture_sink = 0.0;  // kg/m^2/s
        for (int k = 0; k < nlev; ++k) {
          const std::size_t bk = static_cast<std::size_t>(b) * nlev + k;
          out.dtdt(c, k) += clamp(q1[bk], -config_.q1_limit, config_.q1_limit);
          // Q2 = -(Lv/cp) dq/dt  =>  dq/dt = -(cp/Lv) Q2.
          const double dqdt =
              clamp(-(kCp / kLv) * q2[bk], -config_.dq_limit, config_.dq_limit);
          out.dqvdt(c, k) += dqdt;
          moisture_sink -= dqdt * in.delp(c, k) / kGravity;
        }
        if (moisture_sink > 0) out.precip[c] += moisture_sink * 86400.0;
      }

      double* gsw = ws.get<double>(bc);
      double* glw = ws.get<double>(bc);
      rad_->predictBatch(bc, &in.t(c0, 0), &in.qv(c0, 0), &in.tskin[c0],
                         &in.coszr[c0], gsw, glw, ws, prec);
      for (int b = 0; b < bc; ++b) {
        out.gsw[c0 + b] = gsw[b];
        out.glw[c0 + b] = glw[b];
      }
    }
  }

  // ---- conventional diagnostic modules (surface layer, land) ----
  surface_.run(in, out);
  land_.run(in, dt, out);
}

double MlPhysicsSuite::flopsPerColumn() const {
  // Two flops per MAC in the conv/dense layers.
  return 2.0 * (static_cast<double>(q1q2_params_) * nlev_ +
                static_cast<double>(rad_->parameterCount()));
}

} // namespace grist::ml
