#include "grist/ml/ml_suite.hpp"

#include <stdexcept>
#include <vector>

#include "grist/common/math.hpp"
#include "grist/common/timer.hpp"

namespace grist::ml {

using constants::kCp;
using constants::kGravity;
using constants::kLv;

namespace {

std::shared_ptr<const Q1Q2Net> requireNet(std::shared_ptr<const Q1Q2Net> net,
                                          int nlev) {
  if (!net) throw std::invalid_argument("MlPhysicsSuite: null network");
  if (net->config().nlev != nlev) {
    throw std::invalid_argument("MlPhysicsSuite: Q1Q2Net nlev mismatch");
  }
  return net;
}

std::shared_ptr<const Q1Q2Ensemble> requireEnsemble(
    std::shared_ptr<const Q1Q2Ensemble> ensemble, int nlev) {
  if (!ensemble) throw std::invalid_argument("MlPhysicsSuite: null ensemble");
  if (ensemble->nlev() != nlev) {
    throw std::invalid_argument("MlPhysicsSuite: ensemble nlev mismatch");
  }
  return ensemble;
}

} // namespace

MlPhysicsSuite::MlPhysicsSuite(Index ncolumns, int nlev, PredictFn predict,
                               std::size_t q1q2_params,
                               std::shared_ptr<const RadMlp> rad,
                               MlSuiteConfig config)
    : predict_q1q2_(std::move(predict)),
      q1q2_params_(q1q2_params),
      rad_(std::move(rad)),
      surface_(config.surface),
      land_(ncolumns, config.land),
      config_(config),
      nlev_(nlev) {
  if (!predict_q1q2_ || !rad_) {
    throw std::invalid_argument("MlPhysicsSuite: null network");
  }
}

MlPhysicsSuite::MlPhysicsSuite(Index ncolumns, int nlev,
                               std::shared_ptr<const Q1Q2Net> q1q2,
                               std::shared_ptr<const RadMlp> rad,
                               MlSuiteConfig config)
    : MlPhysicsSuite(
          ncolumns, nlev,
          [q1q2 = requireNet(q1q2, nlev)](const double* u, const double* v,
                                          const double* t, const double* q,
                                          const double* p, double* q1, double* q2) {
            q1q2->predict(u, v, t, q, p, q1, q2);
          },
          q1q2 ? q1q2->parameterCount() : 0, std::move(rad), config) {}

MlPhysicsSuite::MlPhysicsSuite(Index ncolumns, int nlev,
                               std::shared_ptr<const Q1Q2Ensemble> ensemble,
                               std::shared_ptr<const RadMlp> rad,
                               MlSuiteConfig config)
    : MlPhysicsSuite(
          ncolumns, nlev,
          [ensemble = requireEnsemble(ensemble, nlev)](
              const double* u, const double* v, const double* t, const double* q,
              const double* p, double* q1, double* q2) {
            ensemble->predict(u, v, t, q, p, q1, q2);
          },
          ensemble ? ensemble->parameterCount() : 0, std::move(rad), config) {}

void MlPhysicsSuite::run(const physics::PhysicsInput& in, double dt,
                         physics::PhysicsOutput& out) {
  const ScopedTimer timer("physics.ml");
  out.zero();
  const int nlev = in.nlev;

  // ---- ML physical tendency + ML radiation diagnostic, per column ----
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    std::vector<double> u(nlev), v(nlev), t(nlev), q(nlev), p(nlev);
    std::vector<double> q1(nlev), q2(nlev);
    for (int k = 0; k < nlev; ++k) {
      u[k] = in.u(c, k);
      v[k] = in.v(c, k);
      t[k] = in.t(c, k);
      q[k] = in.qv(c, k);
      p[k] = in.pmid(c, k);
    }
    predict_q1q2_(u.data(), v.data(), t.data(), q.data(), p.data(), q1.data(),
                  q2.data());
    double moisture_sink = 0.0;  // kg/m^2/s
    for (int k = 0; k < nlev; ++k) {
      out.dtdt(c, k) += clamp(q1[k], -config_.q1_limit, config_.q1_limit);
      // Q2 = -(Lv/cp) dq/dt  =>  dq/dt = -(cp/Lv) Q2.
      const double dqdt =
          clamp(-(kCp / kLv) * q2[k], -config_.dq_limit, config_.dq_limit);
      out.dqvdt(c, k) += dqdt;
      moisture_sink -= dqdt * in.delp(c, k) / kGravity;
    }
    if (moisture_sink > 0) out.precip[c] += moisture_sink * 86400.0;

    double gsw = 0, glw = 0;
    rad_->predict(t.data(), q.data(), in.tskin[c], in.coszr[c], &gsw, &glw);
    out.gsw[c] = gsw;
    out.glw[c] = glw;
  }

  // ---- conventional diagnostic modules (surface layer, land) ----
  surface_.run(in, out);
  land_.run(in, dt, out);
}

double MlPhysicsSuite::flopsPerColumn() const {
  // Two flops per MAC in the conv/dense layers.
  return 2.0 * (static_cast<double>(q1q2_params_) * nlev_ +
                static_cast<double>(rad_->parameterCount()));
}

} // namespace grist::ml
