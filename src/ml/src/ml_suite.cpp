#include "grist/ml/ml_suite.hpp"

#include <algorithm>
#include <stdexcept>

#include "grist/common/math.hpp"
#include "grist/common/timer.hpp"
#include "grist/common/workspace.hpp"

namespace grist::ml {

using constants::kCp;
using constants::kGravity;
using constants::kLv;

namespace {

std::shared_ptr<const Q1Q2Net> requireNet(std::shared_ptr<const Q1Q2Net> net,
                                          int nlev) {
  if (!net) throw std::invalid_argument("MlPhysicsSuite: null network");
  if (net->config().nlev != nlev) {
    throw std::invalid_argument("MlPhysicsSuite: Q1Q2Net nlev mismatch");
  }
  return net;
}

std::shared_ptr<const Q1Q2Ensemble> requireEnsemble(
    std::shared_ptr<const Q1Q2Ensemble> ensemble, int nlev) {
  if (!ensemble) throw std::invalid_argument("MlPhysicsSuite: null ensemble");
  if (ensemble->nlev() != nlev) {
    throw std::invalid_argument("MlPhysicsSuite: ensemble nlev mismatch");
  }
  return ensemble;
}

} // namespace

MlPhysicsSuite::MlPhysicsSuite(Index ncolumns, int nlev, PredictFn predict,
                               ScratchFn scratch, std::size_t q1q2_params,
                               std::shared_ptr<const RadMlp> rad,
                               MlSuiteConfig config)
    : predict_q1q2_(std::move(predict)),
      q1q2_scratch_(std::move(scratch)),
      q1q2_params_(q1q2_params),
      rad_(std::move(rad)),
      surface_(config.surface),
      land_(ncolumns, config.land),
      config_(config),
      nlev_(nlev) {
  if (!predict_q1q2_ || !q1q2_scratch_ || !rad_) {
    throw std::invalid_argument("MlPhysicsSuite: null network");
  }
}

MlPhysicsSuite::MlPhysicsSuite(Index ncolumns, int nlev,
                               std::shared_ptr<const Q1Q2Net> q1q2,
                               std::shared_ptr<const RadMlp> rad,
                               MlSuiteConfig config)
    : MlPhysicsSuite(
          ncolumns, nlev,
          [net = requireNet(q1q2, nlev)](int batch, const double* u,
                                         const double* v, const double* t,
                                         const double* q, const double* p,
                                         double* q1, double* q2,
                                         common::Workspace& ws) {
            net->predictBatch(batch, u, v, t, q, p, q1, q2, ws);
          },
          [net = q1q2](int batch) { return net->predictScratchBytes(batch); },
          q1q2 ? q1q2->parameterCount() : 0, std::move(rad), config) {}

MlPhysicsSuite::MlPhysicsSuite(Index ncolumns, int nlev,
                               std::shared_ptr<const Q1Q2Ensemble> ensemble,
                               std::shared_ptr<const RadMlp> rad,
                               MlSuiteConfig config)
    : MlPhysicsSuite(
          ncolumns, nlev,
          [ens = requireEnsemble(ensemble, nlev)](
              int batch, const double* u, const double* v, const double* t,
              const double* q, const double* p, double* q1, double* q2,
              common::Workspace& ws) {
            ens->predictBatch(batch, u, v, t, q, p, q1, q2, ws);
          },
          [ens = ensemble](int batch) {
            return ens->predictScratchBytes(batch);
          },
          ensemble ? ensemble->parameterCount() : 0, std::move(rad), config) {}

void MlPhysicsSuite::run(const physics::PhysicsInput& in, double dt,
                         physics::PhysicsOutput& out) {
  const ScopedTimer timer("physics.ml");
  out.zero();
  const int nlev = in.nlev;
  using common::Workspace;

  // ---- ML physical tendency + ML radiation diagnostic, batched ----
  // Columns are processed in blocks so the per-column matvecs become GEMMs;
  // field slices are passed straight to the networks (the [column][level]
  // field layout is exactly the [batch][nlev] layout predictBatch expects).
  const Index bs = std::min<Index>(
      std::max(1, config_.column_block), std::max<Index>(in.ncolumns, 1));
  const Index nblocks = (in.ncolumns + bs - 1) / bs;
  const int bsi = static_cast<int>(bs);
  const std::size_t need =
      2 * Workspace::bytesFor<double>(static_cast<std::size_t>(bs) * nlev) +
      2 * Workspace::bytesFor<double>(static_cast<std::size_t>(bs)) +
      q1q2_scratch_(bsi) + rad_->predictScratchBytes(bsi);

#pragma omp parallel
  {
    Workspace& ws = Workspace::threadLocal();
    // Grow each worker's arena once, before any frames are live (reserve is
    // only legal on an empty arena); afterwards run() is allocation-free.
    if (ws.used() == 0) ws.reserve(need);
#pragma omp for schedule(static)
    for (Index blk = 0; blk < nblocks; ++blk) {
      const Index c0 = blk * bs;
      const int bc = static_cast<int>(std::min<Index>(bs, in.ncolumns - c0));
      Workspace::Frame frame(ws);
      double* q1 = ws.get<double>(static_cast<std::size_t>(bc) * nlev);
      double* q2 = ws.get<double>(static_cast<std::size_t>(bc) * nlev);
      predict_q1q2_(bc, &in.u(c0, 0), &in.v(c0, 0), &in.t(c0, 0),
                    &in.qv(c0, 0), &in.pmid(c0, 0), q1, q2, ws);
      for (int b = 0; b < bc; ++b) {
        const Index c = c0 + b;
        double moisture_sink = 0.0;  // kg/m^2/s
        for (int k = 0; k < nlev; ++k) {
          const std::size_t bk = static_cast<std::size_t>(b) * nlev + k;
          out.dtdt(c, k) += clamp(q1[bk], -config_.q1_limit, config_.q1_limit);
          // Q2 = -(Lv/cp) dq/dt  =>  dq/dt = -(cp/Lv) Q2.
          const double dqdt =
              clamp(-(kCp / kLv) * q2[bk], -config_.dq_limit, config_.dq_limit);
          out.dqvdt(c, k) += dqdt;
          moisture_sink -= dqdt * in.delp(c, k) / kGravity;
        }
        if (moisture_sink > 0) out.precip[c] += moisture_sink * 86400.0;
      }

      double* gsw = ws.get<double>(bc);
      double* glw = ws.get<double>(bc);
      rad_->predictBatch(bc, &in.t(c0, 0), &in.qv(c0, 0), &in.tskin[c0],
                         &in.coszr[c0], gsw, glw, ws);
      for (int b = 0; b < bc; ++b) {
        out.gsw[c0 + b] = gsw[b];
        out.glw[c0 + b] = glw[b];
      }
    }
  }

  // ---- conventional diagnostic modules (surface layer, land) ----
  surface_.run(in, out);
  land_.run(in, dt, out);
}

double MlPhysicsSuite::flopsPerColumn() const {
  // Two flops per MAC in the conv/dense layers.
  return 2.0 * (static_cast<double>(q1q2_params_) * nlev_ +
                static_cast<double>(rad_->parameterCount()));
}

} // namespace grist::ml
