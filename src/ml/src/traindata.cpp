#include "grist/ml/traindata.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "grist/common/math.hpp"
#include "grist/physics/saturation.hpp"

namespace grist::ml {

using namespace constants;

std::vector<Scenario> table1Scenarios() {
  // ONI shifts the tropical SST baseline (~0.5 K per index unit); the MJO
  // index range sets the amplitude of the eastward-propagating moisture
  // modulation the columns sample.
  std::vector<Scenario> s(4);
  s[0] = {"1-20 January 1998", 2.2, "El Nino", 0.69, 1.98, 300.0 + 0.5 * 2.2,
          0.5 * (0.69 + 1.98) * 0.04, 199801};
  s[1] = {"1-20 April 2005", 0.4, "neutral", 2.72, 3.71, 300.0 + 0.5 * 0.4,
          0.5 * (2.72 + 3.71) * 0.04, 200504};
  s[2] = {"10-29 July 2015", -0.4, "neutral", 0.17, 1.05, 300.0 - 0.5 * 0.4,
          0.5 * (0.17 + 1.05) * 0.04, 201507};
  s[3] = {"1-20 October 1988", -1.5, "La Nina", 0.67, 2.98, 300.0 - 0.5 * 1.5,
          0.5 * (0.67 + 2.98) * 0.04, 198810};
  return s;
}

physics::PhysicsInput synthesizeColumns(const Scenario& sc, Index ncolumns,
                                        int nlev) {
  physics::PhysicsInput in(ncolumns, nlev);
  std::mt19937_64 rng(sc.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);

  for (Index c = 0; c < ncolumns; ++c) {
    // Column "location": latitude and an MJO phase.
    const double lat = std::asin(2.0 * unit(rng) - 1.0);
    const double mjo_phase = 2.0 * kPi * unit(rng);
    in.lat[c] = lat;
    const double sst =
        sc.sst_base - 30.0 * std::pow(std::sin(lat), 2.0) + 0.5 * gauss(rng);
    in.tskin[c] = sst;
    in.coszr[c] = std::max(0.0, std::cos(lat) * (0.3 + 0.7 * unit(rng)));
    in.albedo[c] = 0.1 + 0.2 * unit(rng);

    const double ps = 1.0e5 + 500.0 * gauss(rng);
    const double ptop = 225.0;
    const double dp = (ps - ptop) / nlev;
    const double lapse_noise = 0.02 * gauss(rng);
    const double mjo_moist = 1.0 + sc.mjo_moisture * 25.0 * std::sin(mjo_phase);
    in.pint(c, nlev) = ps;
    for (int k = nlev - 1; k >= 0; --k) {
      const double pmid = ptop + (k + 0.5) * dp;
      in.pmid(c, k) = pmid;
      in.pint(c, k) = ptop + k * dp;
      in.delp(c, k) = dp;
      in.exner(c, k) = std::pow(pmid / kP0, kKappa);
      const double theta = sst * std::pow(kP0 / pmid, 0.12 + lapse_noise);
      // Floor at a stratospheric minimum so noisy lapse rates cannot
      // produce unphysically cold model tops.
      in.t(c, k) = std::max(175.0, theta * in.exner(c, k));
      const double qsat = physics::saturationMixingRatio(in.t(c, k), pmid);
      const double rh =
          clamp(0.75 * mjo_moist * std::pow(pmid / ps, 1.5) + 0.05 * gauss(rng),
                0.0, 0.98);
      in.qv(c, k) = rh * qsat;
      // Occasional cloud/rain water in moist layers.
      in.qc(c, k) = rh > 0.9 ? 2e-4 * unit(rng) : 0.0;
      in.qr(c, k) = rh > 0.93 ? 1e-4 * unit(rng) : 0.0;
      // Winds: baroclinic westerlies + noise.
      in.u(c, k) = 20.0 * std::sin(2 * lat) * (1.0 - (k + 0.5) / nlev) + 3.0 * gauss(rng);
      in.v(c, k) = 2.0 * gauss(rng);
    }
    // Heights from hydrostatics, integrated upward from the surface.
    double z = 0.0;
    in.zint(c, nlev) = 0.0;
    for (int k = nlev - 1; k >= 0; --k) {
      const double alpha = kRd * in.t(c, k) / in.pmid(c, k);
      z += alpha * in.delp(c, k) / kGravity;
      in.zint(c, k) = z;
      in.zmid(c, k) = 0.5 * (in.zint(c, k) + in.zint(c, k + 1));
    }
  }
  return in;
}

void harvestSamples(const physics::PhysicsInput& in,
                    physics::ConventionalSuite& suite, double dt,
                    std::vector<ColumnSample>& column_samples,
                    std::vector<RadSample>& rad_samples) {
  physics::PhysicsOutput out(in.ncolumns, in.nlev);
  suite.run(in, dt, out);
  parallel::Field q1, q2;
  physics::deriveQ1Q2(out, q1, q2);
  for (Index c = 0; c < in.ncolumns; ++c) {
    ColumnSample cs;
    cs.x = Matrix(Q1Q2Net::kInputChannels, in.nlev);
    cs.y = Matrix(Q1Q2Net::kOutputChannels, in.nlev);
    for (int k = 0; k < in.nlev; ++k) {
      cs.x.at(0, k) = static_cast<float>(in.u(c, k));
      cs.x.at(1, k) = static_cast<float>(in.v(c, k));
      cs.x.at(2, k) = static_cast<float>(in.t(c, k));
      cs.x.at(3, k) = static_cast<float>(in.qv(c, k));
      cs.x.at(4, k) = static_cast<float>(in.pmid(c, k));
      cs.y.at(0, k) = static_cast<float>(q1(c, k));
      cs.y.at(1, k) = static_cast<float>(q2(c, k));
    }
    column_samples.push_back(std::move(cs));

    RadSample rs;
    rs.x.resize(2 * in.nlev + 2);
    for (int k = 0; k < in.nlev; ++k) {
      rs.x[k] = static_cast<float>(in.t(c, k));
      rs.x[in.nlev + k] = static_cast<float>(in.qv(c, k));
    }
    rs.x[2 * in.nlev] = static_cast<float>(in.tskin[c]);
    rs.x[2 * in.nlev + 1] = static_cast<float>(in.coszr[c]);
    rs.y = {static_cast<float>(out.gsw[c]), static_cast<float>(out.glw[c])};
    rad_samples.push_back(std::move(rs));
  }
}

void splitTrainTest(std::vector<ColumnSample>& all, std::uint64_t seed,
                    std::vector<ColumnSample>& train,
                    std::vector<ColumnSample>& test) {
  // Paper: 3 of 24 hourly steps per day are test -> 1/8 of samples, chosen
  // deterministically per 24-sample "day" block.
  std::mt19937_64 rng(seed);
  for (std::size_t base = 0; base < all.size(); base += 24) {
    const std::size_t day_len = std::min<std::size_t>(24, all.size() - base);
    std::vector<int> idx(day_len);
    for (std::size_t i = 0; i < day_len; ++i) idx[i] = static_cast<int>(i);
    std::shuffle(idx.begin(), idx.end(), rng);
    const std::size_t ntest = day_len >= 8 ? 3 : 0;
    for (std::size_t i = 0; i < day_len; ++i) {
      const bool is_test = std::find(idx.begin(), idx.begin() + ntest,
                                     static_cast<int>(i)) != idx.begin() + ntest;
      (is_test ? test : train).push_back(std::move(all[base + i]));
    }
  }
  all.clear();
}

std::vector<Index> coarseMap(const grid::HexMesh& fine, const grid::HexMesh& coarse) {
  // Nearest coarse cell by center dot product; coarse meshes are small
  // enough for the O(Nf * Nc) scan at the sizes we train on.
  std::vector<Index> map(fine.ncells);
#pragma omp parallel for schedule(static)
  for (Index f = 0; f < fine.ncells; ++f) {
    Index best = 0;
    double best_dot = -2.0;
    for (Index c = 0; c < coarse.ncells; ++c) {
      const double dot = fine.cell_x[f].dot(coarse.cell_x[c]);
      if (dot > best_dot) {
        best_dot = dot;
        best = c;
      }
    }
    map[f] = best;
  }
  return map;
}

parallel::Field coarseGrainCells(const grid::HexMesh& fine,
                                 const grid::HexMesh& coarse,
                                 const std::vector<Index>& map,
                                 const parallel::Field& fine_field) {
  if (static_cast<Index>(map.size()) != fine.ncells ||
      fine_field.entities() != fine.ncells) {
    throw std::invalid_argument("coarseGrainCells: size mismatch");
  }
  const int ncomp = fine_field.components();
  parallel::Field out(coarse.ncells, ncomp, 0.0);
  std::vector<double> weight(coarse.ncells, 0.0);
  for (Index f = 0; f < fine.ncells; ++f) {
    const Index c = map[f];
    weight[c] += fine.cell_area[f];
    for (int k = 0; k < ncomp; ++k) out(c, k) += fine.cell_area[f] * fine_field(f, k);
  }
  for (Index c = 0; c < coarse.ncells; ++c) {
    if (weight[c] <= 0) throw std::runtime_error("coarseGrainCells: empty coarse cell");
    for (int k = 0; k < ncomp; ++k) out(c, k) /= weight[c];
  }
  return out;
}

parallel::Field residualQ1Theta(const grid::HexMesh& coarse,
                                const grid::TrskWeights& coarse_trsk,
                                const dycore::DycoreConfig& coarse_config,
                                const dycore::State& coarse_t0,
                                const dycore::State& coarse_t1, double dt) {
  // Dynamics-only advance of the coarse-grained state over dt.
  dycore::DycoreConfig cfg = coarse_config;
  cfg.dt = dt;
  dycore::Dycore dyn(coarse, coarse_trsk, cfg);
  dycore::State advanced = coarse_t0;
  dyn.step(advanced);
  parallel::Field q1(coarse.ncells, coarse_t0.nlev);
  for (Index c = 0; c < coarse.ncells; ++c) {
    for (int k = 0; k < coarse_t0.nlev; ++k) {
      q1(c, k) = (coarse_t1.theta(c, k) - advanced.theta(c, k)) / dt;
    }
  }
  return q1;
}

} // namespace grist::ml
