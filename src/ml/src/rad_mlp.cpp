#include "grist/ml/rad_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "grist/common/hash.hpp"

namespace grist::ml {

RadMlp::RadMlp(RadMlpConfig config) : config_(config) {
  const int h = config_.hidden;
  in_ = DenseParams(inputSize(), h);
  g_in_ = DenseParams(inputSize(), h);
  initDense(in_, config_.seed);
  for (int i = 0; i < 6; ++i) {
    mid_.emplace_back(h, h);
    g_mid_.emplace_back(h, h);
    initDense(mid_.back(), config_.seed + 31 * i + 7);
  }
  head_ = DenseParams(h, kOutputs);
  g_head_ = DenseParams(h, kOutputs);
  initDense(head_, config_.seed + 555);
  x_mean_.assign(inputSize(), 0.f);
  x_std_.assign(inputSize(), 1.f);
  y_mean_.assign(kOutputs, 0.f);
  y_std_.assign(kOutputs, 1.f);
}

std::vector<float> RadMlp::normalize(const std::vector<float>& x) const {
  std::vector<float> xn(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xn[i] = (x[i] - x_mean_[i]) / x_std_[i];
  return xn;
}

// acts layout (when recording): [0]=xn, [1]=h0(activated), then per pair
// j=0..2: [2+2j]=mid activated, [3+2j]=pair output activated (post skip);
// the head input is the last activated entry.
std::vector<float> RadMlp::forward(const std::vector<float>& xn,
                                   std::vector<std::vector<float>>* acts) const {
  std::vector<float> h;
  denseForward(in_, xn, h);
  reluInPlace(h);
  if (acts) {
    acts->push_back(xn);
    acts->push_back(h);
  }
  for (int j = 0; j < 3; ++j) {
    const std::vector<float> skip = h;
    std::vector<float> mid;
    denseForward(mid_[2 * j], h, mid);
    reluInPlace(mid);
    if (acts) acts->push_back(mid);
    std::vector<float> out;
    denseForward(mid_[2 * j + 1], mid, out);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += skip[i];
    reluInPlace(out);
    if (acts) acts->push_back(out);
    h = out;
  }
  std::vector<float> y;
  denseForward(head_, h, y);
  return y;
}

void RadMlp::backward(const std::vector<std::vector<float>>& acts,
                      std::vector<float> dout) {
  // Head: input is the last activated vector.
  std::vector<float> d = denseBackward(head_, acts.back(), dout, g_head_);
  for (int j = 2; j >= 0; --j) {
    const std::vector<float>& pair_out = acts[3 + 2 * j];
    const std::vector<float>& mid = acts[2 + 2 * j];
    const std::vector<float>& pair_in = j == 0 ? acts[1] : acts[3 + 2 * (j - 1)];
    reluBackwardInPlace(pair_out, d);
    std::vector<float> d_mid = denseBackward(mid_[2 * j + 1], mid, d, g_mid_[2 * j + 1]);
    reluBackwardInPlace(mid, d_mid);
    std::vector<float> d_in = denseBackward(mid_[2 * j], pair_in, d_mid, g_mid_[2 * j]);
    for (std::size_t i = 0; i < d_in.size(); ++i) d_in[i] += d[i];  // skip path
    d = d_in;
  }
  reluBackwardInPlace(acts[1], d);
  denseBackward(in_, acts[0], d, g_in_);
}

void RadMlp::predict(const double* t, const double* qv, double tskin, double coszr,
                     double* gsw, double* glw) const {
  auto& ws = common::Workspace::threadLocal();
  if (ws.used() == 0) ws.reserve(predictScratchBytes(1));
  predictBatch(1, t, qv, &tskin, &coszr, gsw, glw, ws);
}

std::vector<QuantizedWeights> RadMlp::buildQuantSnapshot(Precision prec) const {
  // Layer order: in, mid pairs in sequence, head.
  std::vector<QuantizedWeights> snap;
  snap.reserve(2 + mid_.size());
  snap.push_back(QuantizedWeights::pack(prec, in_.w));
  for (const auto& p : mid_) snap.push_back(QuantizedWeights::pack(prec, p.w));
  snap.push_back(QuantizedWeights::pack(prec, head_.w));
  return snap;
}

void RadMlp::ensureQuantized(Precision prec) const {
  if (prec == Precision::kFp32) return;
  qcache_.get(prec, [this](Precision pp) { return buildQuantSnapshot(pp); });
}

std::uint64_t RadMlp::quantizedVersion(Precision prec) const {
  return prec == Precision::kFp32 ? 0 : qcache_.version(prec);
}

std::uint64_t RadMlp::weightFingerprint() const {
  std::uint64_t h = common::kFnvOffsetBasis;
  const auto dense = [&h](const DenseParams& p) {
    h = common::fnv1a(p.w.a.data(), p.w.a.size() * sizeof(float), h);
    h = common::fnv1a(p.b.data(), p.b.size() * sizeof(float), h);
  };
  const auto floats = [&h](const std::vector<float>& v) {
    h = common::fnv1a(v.data(), v.size() * sizeof(float), h);
  };
  dense(in_);
  for (const auto& p : mid_) dense(p);
  dense(head_);
  floats(x_mean_);
  floats(x_std_);
  floats(y_mean_);
  floats(y_std_);
  return h;
}

void RadMlp::predictBatch(int batch, const double* t, const double* qv,
                          const double* tskin, const double* coszr, double* gsw,
                          double* glw, common::Workspace& ws,
                          Precision prec) const {
  const std::vector<QuantizedWeights>* qw = nullptr;
  if (prec != Precision::kFp32) {
    qw = &qcache_.get(prec,
                      [this](Precision pp) { return buildQuantSnapshot(pp); });
  }
  const int nlev = config_.nlev;
  const int nin = inputSize();
  const int hidden = config_.hidden;
  const std::size_t nb = static_cast<std::size_t>(batch);
  common::Workspace::Frame frame(ws);

  // Gather + normalize into feature-major [nin, batch]: xn[i*batch + b].
  float* xn = ws.get<float>(static_cast<std::size_t>(nin) * nb);
  for (int k = 0; k < nlev; ++k) {
    float* trow = xn + static_cast<std::size_t>(k) * nb;
    float* qrow = xn + static_cast<std::size_t>(nlev + k) * nb;
    for (int b = 0; b < batch; ++b) {
      trow[b] = (static_cast<float>(t[static_cast<std::size_t>(b) * nlev + k]) -
                 x_mean_[k]) /
                x_std_[k];
      qrow[b] = (static_cast<float>(qv[static_cast<std::size_t>(b) * nlev + k]) -
                 x_mean_[nlev + k]) /
                x_std_[nlev + k];
    }
  }
  float* srow = xn + static_cast<std::size_t>(2 * nlev) * nb;
  float* crow = xn + static_cast<std::size_t>(2 * nlev + 1) * nb;
  for (int b = 0; b < batch; ++b) {
    srow[b] = (static_cast<float>(tskin[b]) - x_mean_[2 * nlev]) /
              x_std_[2 * nlev];
    crow[b] = (static_cast<float>(coszr[b]) - x_mean_[2 * nlev + 1]) /
              x_std_[2 * nlev + 1];
  }

  float* h = ws.get<float>(static_cast<std::size_t>(hidden) * nb);
  float* mid = ws.get<float>(static_cast<std::size_t>(hidden) * nb);
  float* tmp = ws.get<float>(static_cast<std::size_t>(hidden) * nb);
  float* y = ws.get<float>(kOutputs * nb);

  // Layer index into the snapshot mirrors buildQuantSnapshot's order.
  const auto dense = [&](const DenseParams& dp, int layer, const float* x,
                         float* out, bool relu) {
    if (qw) {
      denseForwardBatchedQuant(dp, (*qw)[layer], x, batch, out, relu);
    } else {
      denseForwardBatched(dp, x, batch, out, relu);
    }
  };

  dense(in_, 0, xn, h, /*relu=*/true);
  for (int j = 0; j < 3; ++j) {
    dense(mid_[2 * j], 1 + 2 * j, h, mid, true);
    dense(mid_[2 * j + 1], 2 + 2 * j, mid, tmp, false);
    const std::size_t hb = static_cast<std::size_t>(hidden) * nb;
    for (std::size_t i = 0; i < hb; ++i) {
      const float s = tmp[i] + h[i];  // dense output + identity skip
      h[i] = s > 0.f ? s : 0.f;
    }
  }
  dense(head_, 7, h, y, false);

  for (int b = 0; b < batch; ++b) {
    gsw[b] = std::max(0.0, static_cast<double>(y[b] * y_std_[0] + y_mean_[0]));
    glw[b] = std::max(0.0, static_cast<double>(y[nb + b] * y_std_[1] + y_mean_[1]));
  }
}

std::size_t RadMlp::predictScratchBytes(int batch) const {
  using W = common::Workspace;
  const std::size_t nb = static_cast<std::size_t>(batch);
  return W::bytesFor<float>(static_cast<std::size_t>(inputSize()) * nb) +
         3 * W::bytesFor<float>(static_cast<std::size_t>(config_.hidden) * nb) +
         W::bytesFor<float>(kOutputs * nb);
}

void RadMlp::fitNormalization(const std::vector<RadSample>& samples) {
  if (samples.empty()) throw std::invalid_argument("RadMlp::fitNormalization: empty");
  const auto fit = [&](std::vector<float>& mean, std::vector<float>& stdev, int dim,
                       const auto& get) {
    mean.assign(dim, 0.f);
    stdev.assign(dim, 0.f);
    for (int i = 0; i < dim; ++i) {
      double sum = 0;
      for (const RadSample& s : samples) sum += get(s)[i];
      const double mu = sum / samples.size();
      double var = 0;
      for (const RadSample& s : samples) {
        const double d = get(s)[i] - mu;
        var += d * d;
      }
      mean[i] = static_cast<float>(mu);
      stdev[i] = static_cast<float>(std::sqrt(var / samples.size()) + 1e-6);
    }
  };
  fit(x_mean_, x_std_, inputSize(), [](const RadSample& s) -> const std::vector<float>& {
    return s.x;
  });
  fit(y_mean_, y_std_, kOutputs, [](const RadSample& s) -> const std::vector<float>& {
    return s.y;
  });
}

double RadMlp::trainBatch(const std::vector<RadSample>& batch, Adam& adam) {
  if (batch.empty()) return 0.0;
  double loss = 0.0;
  for (const RadSample& s : batch) {
    std::vector<std::vector<float>> acts;
    const std::vector<float> y = forward(normalize(s.x), &acts);
    std::vector<float> dout(kOutputs);
    for (int i = 0; i < kOutputs; ++i) {
      const float target = (s.y[i] - y_mean_[i]) / y_std_[i];
      const float diff = y[i] - target;
      loss += diff * diff / kOutputs;
      dout[i] = 2.f * diff / (kOutputs * static_cast<float>(batch.size()));
    }
    backward(acts, std::move(dout));
  }
  adam.step();
  qcache_.invalidate();  // weights changed: snapshots are stale
  return loss / batch.size();
}

double RadMlp::evaluate(const std::vector<RadSample>& samples) const {
  double loss = 0.0;
  for (const RadSample& s : samples) {
    const std::vector<float> y = forward(normalize(s.x), nullptr);
    for (int i = 0; i < kOutputs; ++i) {
      const float target = (s.y[i] - y_mean_[i]) / y_std_[i];
      loss += (y[i] - target) * (y[i] - target) / kOutputs;
    }
  }
  return samples.empty() ? 0.0 : loss / samples.size();
}

std::vector<ParamView> RadMlp::paramViews() {
  std::vector<ParamView> views;
  const auto add = [&](DenseParams& p, DenseParams& g) {
    views.push_back({p.w.a.data(), g.w.a.data(), p.w.size()});
    views.push_back({p.b.data(), g.b.data(), p.b.size()});
  };
  add(in_, g_in_);
  for (std::size_t i = 0; i < mid_.size(); ++i) add(mid_[i], g_mid_[i]);
  add(head_, g_head_);
  return views;
}

std::size_t RadMlp::parameterCount() const {
  std::size_t total = in_.parameterCount() + head_.parameterCount();
  for (const auto& p : mid_) total += p.parameterCount();
  return total;
}

namespace {
void writeVec(std::ofstream& out, const std::vector<float>& v) {
  const std::int64_t n = static_cast<std::int64_t>(v.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}
void readVec(std::ifstream& in, std::vector<float>& v) {
  std::int64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (n != static_cast<std::int64_t>(v.size())) {
    throw std::runtime_error("RadMlp::load: shape mismatch");
  }
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
}
} // namespace

void RadMlp::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("RadMlp::save: cannot open " + path);
  writeVec(out, in_.w.a);
  writeVec(out, in_.b);
  for (const auto& p : mid_) {
    writeVec(out, p.w.a);
    writeVec(out, p.b);
  }
  writeVec(out, head_.w.a);
  writeVec(out, head_.b);
  writeVec(out, x_mean_);
  writeVec(out, x_std_);
  writeVec(out, y_mean_);
  writeVec(out, y_std_);
}

void RadMlp::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("RadMlp::load: cannot open " + path);
  readVec(in, in_.w.a);
  readVec(in, in_.b);
  for (auto& p : mid_) {
    readVec(in, p.w.a);
    readVec(in, p.b);
  }
  readVec(in, head_.w.a);
  readVec(in, head_.b);
  readVec(in, x_mean_);
  readVec(in, x_std_);
  readVec(in, y_mean_);
  readVec(in, y_std_);
  qcache_.invalidate();  // weights changed: snapshots are stale
}

} // namespace grist::ml
