#include "grist/ml/matrix.hpp"

#include <omp.h>

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "grist/common/aligned.hpp"
#include "grist/common/workspace.hpp"

namespace grist::ml {

namespace detail {
// gemm-private per-thread arena for the packed panels. Deliberately NOT
// Workspace::threadLocal(): callers (the batched ML suite) hold live frames
// on that arena while calling gemm, and reserve() is only legal on an arena
// with no live allocations. This one is empty between gemm calls by
// construction.
common::Workspace& gemmArena() {
  static thread_local common::Workspace ws;
  return ws;
}
} // namespace detail

namespace {

using common::Workspace;
using detail::gemmArena;

// Below this many flops (2*m*n*k) the packed path cannot amortize its panel
// copies and a tiny call must not pay the OpenMP fork either: go serial and
// unpacked. Matvec-shaped calls (n < NR) also skip packing -- the A panel
// copy would cost as much as the product itself.
constexpr double kSmallGemmFlops = 16384.0;
// Above this many flops the row-panel loop is worth forking for.
constexpr double kParallelGemmFlops = 2.0e6;

// Pad a panel's float count to whole cache lines: the arena hands out
// 64-byte-aligned base pointers (common/aligned.hpp contract), so making
// every per-panel stride a multiple of kCacheLine keeps each micro-panel
// start aligned too -- packed panels get the same layout guarantee as
// Field/Workspace rows. Padding lanes are never read (the microkernel
// consumes exactly kc*MR / kc*NR floats per panel), so this cannot change
// results.
constexpr std::size_t alignedPanelFloats(std::size_t n) {
  return common::roundUpToCacheLine(n * sizeof(float)) / sizeof(float);
}

inline float opAt(const float* m, int ld, bool trans, int i, int j) {
  return trans ? m[static_cast<std::size_t>(j) * ld + i]
               : m[static_cast<std::size_t>(i) * ld + j];
}

// Pack an mr x kc tile of op(A) into a k-major micro-panel: ap[k*MR + i].
// Rows beyond mr are zero-filled; the padded lanes produce tile outputs
// that storeTile never reads, so fringe handling costs no branches in the
// microkernel.
void packA(const float* a, int lda, bool ta, int i0, int k0, int mr, int kc,
           float* ap) {
  assert(common::isCacheAligned(ap));
  for (int k = 0; k < kc; ++k) {
    float* dst = ap + static_cast<std::size_t>(k) * kGemmMR;
    for (int i = 0; i < mr; ++i) dst[i] = opAt(a, lda, ta, i0 + i, k0 + k);
    for (int i = mr; i < kGemmMR; ++i) dst[i] = 0.f;
  }
}

// Pack a kc x nr tile of op(B) into a k-major micro-panel: bp[k*NR + j].
void packB(const float* b, int ldb, bool tb, int k0, int j0, int kc, int nr,
           float* bp) {
  assert(common::isCacheAligned(bp));
  for (int k = 0; k < kc; ++k) {
    float* dst = bp + static_cast<std::size_t>(k) * kGemmNR;
    for (int j = 0; j < nr; ++j) dst[j] = opAt(b, ldb, tb, k0 + k, j0 + j);
    for (int j = nr; j < kGemmNR; ++j) dst[j] = 0.f;
  }
}

// Register-tiled MR x NR microkernel: acc[i][j] is a k-ascending scalar sum
// chain (vectorized across j, never reassociated across k), which is the
// accumulation-order contract the bit-exactness guarantees rest on.
inline void microKernel(int kc, const float* ap, const float* bp, float* acc) {
  for (int x = 0; x < kGemmMR * kGemmNR; ++x) acc[x] = 0.f;
  for (int k = 0; k < kc; ++k) {
    const float* ak = ap + static_cast<std::size_t>(k) * kGemmMR;
    const float* bk = bp + static_cast<std::size_t>(k) * kGemmNR;
    for (int i = 0; i < kGemmMR; ++i) {
      const float av = ak[i];
      float* row = acc + i * kGemmNR;
      for (int j = 0; j < kGemmNR; ++j) row[j] += av * bk[j];
    }
  }
}

// Tile store with the fused epilogue. `first` = first K block (apply beta;
// beta == 0 never reads C), `last` = final K block (apply bias/ReLU).
void storeTile(const float* acc, float alpha, float beta, bool first, bool last,
               const GemmEpilogue& ep, float* c, int ldc, int i0, int j0, int mr,
               int nr) {
  for (int i = 0; i < mr; ++i) {
    float* crow = c + static_cast<std::size_t>(i0 + i) * ldc + j0;
    const float* arow = acc + i * kGemmNR;
    const float bias = ep.bias ? ep.bias[i0 + i] : 0.f;
    for (int j = 0; j < nr; ++j) {
      float v = alpha * arow[j];
      if (first) {
        if (beta != 0.f) v += beta * crow[j];
      } else {
        v += crow[j];
      }
      if (last) {
        if (ep.bias) v += bias;
        if (ep.relu) v = v > 0.f ? v : 0.f;
      }
      crow[j] = v;
    }
  }
}

// Serial unpacked path for tiny / matvec-shaped calls. Mirrors the packed
// path's KC split and per-element operation order exactly (partial sum per
// K block, alpha per block, beta on the first, epilogue on the last), so a
// size-based dispatch change can never change results.
void gemmDirect(int m, int n, int k, float alpha, const float* a, int lda,
                bool ta, const float* b, int ldb, bool tb, float beta, float* c,
                int ldc, const GemmEpilogue& ep) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      float out = 0.f;
      if (k <= 0) {
        if (beta != 0.f) out = beta * crow[j];
      } else {
        for (int k0 = 0; k0 < k; k0 += kGemmKC) {
          const int kc = std::min(kGemmKC, k - k0);
          float acc = 0.f;
          for (int kk = 0; kk < kc; ++kk) {
            acc += opAt(a, lda, ta, i, k0 + kk) * opAt(b, ldb, tb, k0 + kk, j);
          }
          float v = alpha * acc;
          if (k0 == 0) {
            if (beta != 0.f) v += beta * crow[j];
          } else {
            v += out;
          }
          out = v;
        }
      }
      if (ep.bias) out += ep.bias[i];
      if (ep.relu) out = out > 0.f ? out : 0.f;
      crow[j] = out;
    }
  }
}

void gemmPacked(int m, int n, int k, float alpha, const float* a, int lda,
                bool ta, const float* b, int ldb, bool tb, float beta, float* c,
                int ldc, const GemmEpilogue& ep, bool threaded) {
  const int kc_max = std::min(k, kGemmKC);
  const int nc_max = std::min(n, kGemmNC);
  const int npanels_max = (nc_max + kGemmNR - 1) / kGemmNR;
  const int mpanels_max = (std::min(m, kGemmMC) + kGemmMR - 1) / kGemmMR;
  // Cache-line-padded per-panel strides (worst-case kc, for sizing).
  const std::size_t bstride_max =
      alignedPanelFloats(static_cast<std::size_t>(kc_max) * kGemmNR);
  const std::size_t astride_max =
      alignedPanelFloats(static_cast<std::size_t>(kc_max) * kGemmMR);
  const std::size_t bpack_n = bstride_max * npanels_max;
  const std::size_t apack_n = astride_max * mpanels_max;
  Workspace& ws = gemmArena();
  // Empty between gemm calls, so this reserve is always legal; it covers
  // the B panel plus this thread's own A panel (worker threads grow their
  // own arenas once, on first use).
  ws.reserve(Workspace::bytesFor<float>(bpack_n) +
             Workspace::bytesFor<float>(apack_n));
  Workspace::Frame outer(ws);
  float* bpack = ws.get<float>(bpack_n);

  for (int jc = 0; jc < n; jc += kGemmNC) {
    const int nc = std::min(kGemmNC, n - jc);
    const int npanels = (nc + kGemmNR - 1) / kGemmNR;
    for (int k0 = 0; k0 < k; k0 += kGemmKC) {
      const int kc = std::min(kGemmKC, k - k0);
      const bool first = k0 == 0;
      const bool last = k0 + kc >= k;
      const std::size_t bstride =
          alignedPanelFloats(static_cast<std::size_t>(kc) * kGemmNR);
      const std::size_t astride =
          alignedPanelFloats(static_cast<std::size_t>(kc) * kGemmMR);
      for (int jp = 0; jp < npanels; ++jp) {
        packB(b, ldb, tb, k0, jc + jp * kGemmNR, kc,
              std::min(kGemmNR, nc - jp * kGemmNR),
              bpack + static_cast<std::size_t>(jp) * bstride);
      }
#pragma omp parallel for schedule(static) if (threaded)
      for (int ic = 0; ic < m; ic += kGemmMC) {
        Workspace& tws = gemmArena();
        Workspace::Frame frame(tws);
        const int mc = std::min(kGemmMC, m - ic);
        const int mpanels = (mc + kGemmMR - 1) / kGemmMR;
        float* apack = tws.get<float>(astride * mpanels);
        for (int ip = 0; ip < mpanels; ++ip) {
          packA(a, lda, ta, ic + ip * kGemmMR, k0,
                std::min(kGemmMR, mc - ip * kGemmMR), kc,
                apack + static_cast<std::size_t>(ip) * astride);
        }
        for (int jp = 0; jp < npanels; ++jp) {
          const int nr = std::min(kGemmNR, nc - jp * kGemmNR);
          const float* bp = bpack + static_cast<std::size_t>(jp) * bstride;
          for (int ip = 0; ip < mpanels; ++ip) {
            const int mr = std::min(kGemmMR, mc - ip * kGemmMR);
            float acc[kGemmMR * kGemmNR];
            microKernel(kc, apack + static_cast<std::size_t>(ip) * astride, bp,
                        acc);
            storeTile(acc, alpha, beta, first, last, ep, c, ldc,
                      ic + ip * kGemmMR, jc + jp * kGemmNR, mr, nr);
          }
        }
      }
    }
  }
}

} // namespace

void gemmBlocked(int m, int n, int k, float alpha, const float* a, int lda,
                 bool trans_a, const float* b, int ldb, bool trans_b, float beta,
                 float* c, int ldc, const GemmEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  const double flops = 2.0 * m * n * std::max(k, 1);
  if (k <= 0 || n < kGemmNR || flops < kSmallGemmFlops) {
    gemmDirect(m, n, k, alpha, a, lda, trans_a, b, ldb, trans_b, beta, c, ldc, ep);
    return;
  }
  const bool threaded = flops >= kParallelGemmFlops && !omp_in_parallel() &&
                        omp_get_max_threads() > 1;
  gemmPacked(m, n, k, alpha, a, lda, trans_a, b, ldb, trans_b, beta, c, ldc, ep,
             threaded);
}

void gemmNaive(int m, int n, int k, float alpha, const float* a, int lda,
               bool trans_a, const float* b, int ldb, bool trans_b, float beta,
               float* c, int ldc, const GemmEpilogue& ep) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.f;
      for (int l = 0; l < k; ++l) {
        acc += opAt(a, lda, trans_a, i, l) * opAt(b, ldb, trans_b, l, j);
      }
      float v = alpha * acc;
      if (beta != 0.f) v += beta * c[static_cast<std::size_t>(i) * ldc + j];
      if (ep.bias) v += ep.bias[i];
      if (ep.relu) v = v > 0.f ? v : 0.f;
      c[static_cast<std::size_t>(i) * ldc + j] = v;
    }
  }
}

void gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c) {
  const int m = trans_a ? a.cols : a.rows;
  const int k = trans_a ? a.rows : a.cols;
  const int kb = trans_b ? b.cols : b.rows;
  const int n = trans_b ? b.rows : b.cols;
  if (k != kb || c.rows != m || c.cols != n) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  gemmBlocked(m, n, k, alpha, a.a.data(), a.cols, trans_a, b.a.data(), b.cols,
              trans_b, beta, c.a.data(), c.cols);
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  if (x.rows != y.rows || x.cols != y.cols) {
    throw std::invalid_argument("axpy: shape mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) y.a[i] += alpha * x.a[i];
}

} // namespace grist::ml
