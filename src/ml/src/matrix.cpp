#include "grist/ml/matrix.hpp"

#include <stdexcept>

namespace grist::ml {

void gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a,
          const Matrix& b, float beta, Matrix& c) {
  const int m = trans_a ? a.cols : a.rows;
  const int k = trans_a ? a.rows : a.cols;
  const int kb = trans_b ? b.cols : b.rows;
  const int n = trans_b ? b.rows : b.cols;
  if (k != kb || c.rows != m || c.cols != n) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  const auto aa = [&](int i, int j) { return trans_a ? a.at(j, i) : a.at(i, j); };
  const auto bb = [&](int i, int j) { return trans_b ? b.at(j, i) : b.at(i, j); };
#pragma omp parallel for schedule(static)
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.f;
      for (int l = 0; l < k; ++l) acc += aa(i, l) * bb(l, j);
      c.at(i, j) = alpha * acc + beta * c.at(i, j);
    }
  }
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  if (x.rows != y.rows || x.cols != y.cols) {
    throw std::invalid_argument("axpy: shape mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) y.a[i] += alpha * x.a[i];
}

} // namespace grist::ml
