#include "grist/physics/surface.hpp"

#include <algorithm>
#include <cmath>

#include "grist/common/math.hpp"
#include "grist/physics/saturation.hpp"

namespace grist::physics {

using constants::kCp;
using constants::kGravity;
using constants::kLv;
using constants::kRd;

void SurfaceLayer::run(const PhysicsInput& in, PhysicsOutput& out) const {
  const int kb = in.nlev - 1;  // lowest layer
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    const double u = in.u(c, kb), v = in.v(c, kb);
    const double wind = std::max(config_.min_wind, std::sqrt(u * u + v * v));
    const double rho = in.pmid(c, kb) / (kRd * in.t(c, kb));

    // Bulk fluxes toward the atmosphere.
    const double sh = rho * kCp * config_.ch * wind * (in.tskin[c] - in.t(c, kb));
    const double qsat_s = saturationMixingRatio(in.tskin[c], in.pint(c, in.nlev));
    const double lh = rho * kLv * config_.ch * wind * config_.beta *
                      std::max(0.0, qsat_s - in.qv(c, kb));
    out.shflx[c] = sh;
    out.lhflx[c] = lh;

    // Drag decelerates the lowest layer: tau = rho cd |V| V; tendency
    // converts the stress through the layer mass delp/g.
    const double mass = in.delp(c, kb) / kGravity;
    out.dudt(c, kb) -= rho * config_.cd * wind * u / mass;
    out.dvdt(c, kb) -= rho * config_.cd * wind * v / mass;
  }
}

} // namespace grist::physics
