#include "grist/physics/held_suarez.hpp"

#include <algorithm>
#include <cmath>

#include "grist/common/math.hpp"

namespace grist::physics {

using constants::kKappa;
using constants::kP0;

double HeldSuarezSuite::equilibriumT(double lat, double pmid, double ps) const {
  (void)ps;
  const double sin2 = std::sin(lat) * std::sin(lat);
  const double cos2 = 1.0 - sin2;
  const double p_ratio = pmid / kP0;
  const double teq = (config_.t_surface_eq - config_.delta_t_y * sin2 -
                      config_.delta_theta_z * std::log(p_ratio) * cos2) *
                     std::pow(p_ratio, kKappa);
  return std::max(config_.t_strat, teq);
}

void HeldSuarezSuite::run(const PhysicsInput& in, double dt, PhysicsOutput& out) {
  (void)dt;
  out.zero();
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    const double lat = in.lat[c];
    const double ps = in.pint(c, in.nlev);
    for (int k = 0; k < in.nlev; ++k) {
      const double sigma = in.pmid(c, k) / ps;
      // Height-dependent thermal relaxation rate (stronger near the
      // surface in the tropics).
      const double vert =
          std::max(0.0, (sigma - config_.sigma_b) / (1.0 - config_.sigma_b));
      const double cos4 = std::pow(std::cos(lat), 4.0);
      const double k_t = config_.k_a + (config_.k_s - config_.k_a) * vert * cos4;
      const double teq = equilibriumT(lat, in.pmid(c, k), ps);
      out.dtdt(c, k) = -k_t * (in.t(c, k) - teq);
      // Rayleigh friction below sigma_b.
      const double k_v = config_.k_f * vert;
      out.dudt(c, k) = -k_v * in.u(c, k);
      out.dvdt(c, k) = -k_v * in.v(c, k);
    }
  }
}

} // namespace grist::physics
