#include "grist/physics/saturation.hpp"

#include <algorithm>
#include <cmath>

namespace grist::physics {

double saturationVaporPressure(double t) {
  // Tetens over liquid; adequate for the warm-rain suite.
  return 610.78 * std::exp(17.27 * (t - 273.15) / (t - 35.85));
}

double saturationMixingRatio(double t, double p) {
  const double es = std::min(saturationVaporPressure(t), 0.5 * p);
  return 0.622 * es / (p - 0.378 * es);
}

double saturationMixingRatioSlope(double t, double p) {
  const double eps = 0.05;
  return (saturationMixingRatio(t + eps, p) - saturationMixingRatio(t - eps, p)) /
         (2.0 * eps);
}

} // namespace grist::physics
