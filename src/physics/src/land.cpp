#include "grist/physics/land.hpp"

#include <cmath>

namespace grist::physics {

namespace {
constexpr double kSigmaSB = 5.670374e-8;
}

LandModel::LandModel(Index ncolumns, LandConfig config)
    : config_(config),
      soil_t1_(ncolumns, 288.0),
      soil_t2_(ncolumns, config.deep_temperature) {}

void LandModel::run(const PhysicsInput& in, double dt, PhysicsOutput& out) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    const double tskin = in.tskin[c];
    // Skin energy balance: absorbed SW + incoming LW - emitted LW
    // - turbulent fluxes - ground heat flux.
    const double emitted = config_.emissivity * kSigmaSB * std::pow(tskin, 4.0);
    const double ground =
        config_.soil_conductivity * (tskin - soil_t1_[c]) / (0.5 * config_.soil_depth1);
    const double net = out.gsw[c] + config_.emissivity * out.glw[c] - emitted -
                       out.shflx[c] - out.lhflx[c] - ground;
    // Linearized-implicit update: the restoring terms (LW emission, ground
    // conduction) are evaluated at the NEW temperature, which keeps the
    // thin skin slab stable for arbitrarily long physics steps:
    //   dT = dt * net(T0) / (C + dt * d(-net)/dT).
    const double damping = 4.0 * config_.emissivity * kSigmaSB * tskin * tskin * tskin +
                           config_.soil_conductivity / (0.5 * config_.soil_depth1);
    double tnew = tskin + dt * net / (config_.skin_heat_capacity + dt * damping);
    // Physical guard rail (documented): continental skin temperatures.
    tnew = std::min(345.0, std::max(180.0, tnew));
    out.tskin_new[c] = tnew;

    // Two-layer soil heat diffusion.
    const double c1 = config_.soil_heat_capacity * config_.soil_depth1;
    const double c2 = config_.soil_heat_capacity * config_.soil_depth2;
    const double flux12 = config_.soil_conductivity * (soil_t1_[c] - soil_t2_[c]) /
                          (0.5 * (config_.soil_depth1 + config_.soil_depth2));
    const double flux2d = config_.soil_conductivity *
                          (soil_t2_[c] - config_.deep_temperature) / config_.soil_depth2;
    // Same implicit damping trick for the soil layers.
    const double lam1 = config_.soil_conductivity / (0.5 * config_.soil_depth1) +
                        config_.soil_conductivity /
                            (0.5 * (config_.soil_depth1 + config_.soil_depth2));
    const double lam2 = config_.soil_conductivity / config_.soil_depth2;
    soil_t1_[c] += dt * (ground - flux12) / (c1 + dt * lam1);
    soil_t2_[c] += dt * (flux12 - flux2d) / (c2 + dt * lam2);
  }
}

} // namespace grist::physics
