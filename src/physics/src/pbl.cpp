#include "grist/physics/pbl.hpp"

#include <cmath>
#include <vector>

#include "grist/common/math.hpp"

namespace grist::physics {

using constants::kCp;
using constants::kGravity;
using constants::kLv;

namespace {

// Implicit vertical diffusion of one scalar profile: solves
// (I - dt D) s^{+} = s + dt * f_surface, D in flux form on the height grid.
// rho dz per layer = delp / g. Returns tendencies into tend.
void diffuseColumn(int nlev, double dt, const double* k_int, const double* delp,
                   const double* zmid, const double* s, double surf_flux_term,
                   double* tend) {
  std::vector<double> lower(nlev), diag(nlev), upper(nlev), rhs(nlev);
  (void)delp;
  for (int k = 0; k < nlev; ++k) {
    double a = 0.0, c = 0.0;
    if (k > 0) {
      const double dz = zmid[k - 1] - zmid[k];
      a = dt * k_int[k] / (dz * dz);
    }
    if (k < nlev - 1) {
      const double dz = zmid[k] - zmid[k + 1];
      c = dt * k_int[k + 1] / (dz * dz);
    }
    lower[k] = -a;
    upper[k] = -c;
    diag[k] = 1.0 + a + c;
    rhs[k] = s[k];
  }
  // Surface flux forcing on the lowest layer.
  rhs[nlev - 1] += dt * surf_flux_term;
  // Thomas solve.
  for (int k = 1; k < nlev; ++k) {
    const double m = lower[k] / diag[k - 1];
    diag[k] -= m * upper[k - 1];
    rhs[k] -= m * rhs[k - 1];
  }
  std::vector<double> snew(nlev);
  snew[nlev - 1] = rhs[nlev - 1] / diag[nlev - 1];
  for (int k = nlev - 2; k >= 0; --k) {
    snew[k] = (rhs[k] - upper[k] * snew[k + 1]) / diag[k];
  }
  for (int k = 0; k < nlev; ++k) tend[k] += (snew[k] - s[k]) / dt;
}

} // namespace

void Pbl::run(const PhysicsInput& in, double dt, const std::vector<double>& shflx,
              const std::vector<double>& lhflx, PhysicsOutput& out) const {
  const int nlev = in.nlev;
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    // K profile: parabolic in the PBL, small aloft; enhanced when the
    // surface layer is unstably stratified.
    std::vector<double> k_int(nlev + 1, config_.k_free);
    const double unstable =
        in.tskin[c] > in.t(c, nlev - 1) ? 1.0 : 0.3;  // crude stability factor
    for (int k = 1; k < nlev; ++k) {
      const double z = in.zint(c, k);
      if (z < config_.pbl_depth) {
        const double zeta = z / config_.pbl_depth;
        k_int[k] += config_.k_max * unstable * zeta * (1.0 - zeta) * 4.0;
      }
    }

    const double mass_bot = in.delp(c, nlev - 1) / kGravity;  // kg/m^2
    std::vector<double> column(nlev), tend(nlev);
    const auto run_scalar = [&](auto getter, double surf_term, Field& out_tend,
                                auto putter) {
      for (int k = 0; k < nlev; ++k) {
        column[k] = getter(k);
        tend[k] = 0.0;
      }
      diffuseColumn(nlev, dt, k_int.data(), &in.delp(c, 0), &in.zmid(c, 0),
                    column.data(), surf_term, tend.data());
      for (int k = 0; k < nlev; ++k) out_tend(c, k) += putter(k, tend[k]);
    };
    // Heat mixes as POTENTIAL temperature (diffusing T directly would pump
    // heat down any lapse rate); the tendency converts back through Exner.
    run_scalar([&](int k) { return in.t(c, k) / in.exner(c, k); },
               shflx[c] / (kCp * mass_bot * in.exner(c, nlev - 1)), out.dtdt,
               [&](int k, double dtheta) { return dtheta * in.exner(c, k); });
    run_scalar([&](int k) { return in.qv(c, k); }, lhflx[c] / (kLv * mass_bot),
               out.dqvdt, [](int, double d) { return d; });
    run_scalar([&](int k) { return in.u(c, k); }, 0.0, out.dudt,
               [](int, double d) { return d; });
    run_scalar([&](int k) { return in.v(c, k); }, 0.0, out.dvdt,
               [](int, double d) { return d; });
  }
}

} // namespace grist::physics
