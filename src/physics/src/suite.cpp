#include "grist/physics/suite.hpp"

#include <stdexcept>

#include "grist/common/math.hpp"
#include "grist/common/timer.hpp"

namespace grist::physics {

ConventionalSuite::ConventionalSuite(Index ncolumns, int nlev,
                                     ConventionalSuiteConfig config)
    : config_(config),
      radiation_(config.radiation),
      microphysics_(config.microphysics),
      pbl_(config.pbl),
      surface_(config.surface),
      land_(ncolumns, config.land),
      convection_(config.convection),
      steps_since_radiation_(config.radiation_interval),  // fire on first call
      cached_rad_heating_(ncolumns, nlev, 0.0),
      cached_gsw_(ncolumns, 0.0),
      cached_glw_(ncolumns, 0.0) {}

void ConventionalSuite::run(const PhysicsInput& in, double dt, PhysicsOutput& out) {
  const ScopedTimer timer("physics.conventional");
  if (in.nlev > 128) throw std::invalid_argument("ConventionalSuite: nlev > 128");
  out.zero();

  // ---- radiation on its own (longer) cadence, cached in between ----
  if (++steps_since_radiation_ >= config_.radiation_interval) {
    steps_since_radiation_ = 0;
    PhysicsOutput rad_only(in.ncolumns, in.nlev);
    {
      const ScopedTimer rt("physics.radiation");
      radiation_.run(in, rad_only);
    }
    cached_rad_heating_ = rad_only.dtdt;
    cached_gsw_ = rad_only.gsw;
    cached_glw_ = rad_only.glw;
  }
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    for (int k = 0; k < in.nlev; ++k) out.dtdt(c, k) += cached_rad_heating_(c, k);
  }
  out.gsw = cached_gsw_;
  out.glw = cached_glw_;

  // ---- surface fluxes, then PBL mixing forced by them ----
  surface_.run(in, out);
  pbl_.run(in, dt, out.shflx, out.lhflx, out);

  // ---- moist processes ----
  convection_.run(in, dt, config_.grid_dx, out);
  microphysics_.run(in, dt, out);

  // ---- land update (consumes gsw/glw like the ML radiation module) ----
  land_.run(in, dt, out);

  // ---- stability clamps on the summed tendencies ----
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    for (int k = 0; k < in.nlev; ++k) {
      out.dtdt(c, k) = clamp(out.dtdt(c, k), -config_.dtdt_limit, config_.dtdt_limit);
      out.dqvdt(c, k) = clamp(out.dqvdt(c, k), -config_.dqdt_limit, config_.dqdt_limit);
      out.dqcdt(c, k) = clamp(out.dqcdt(c, k), -config_.dqdt_limit, config_.dqdt_limit);
      out.dqrdt(c, k) = clamp(out.dqrdt(c, k), -config_.dqdt_limit, config_.dqdt_limit);
    }
  }
}

void deriveQ1Q2(const PhysicsOutput& out, Field& q1, Field& q2) {
  using constants::kCp;
  using constants::kLv;
  q1 = out.dtdt;
  q2 = parallel::Field(out.dqvdt.entities(), out.dqvdt.components());
  for (Index c = 0; c < q2.entities(); ++c) {
    for (int k = 0; k < q2.components(); ++k) {
      q2(c, k) = -(kLv / kCp) * out.dqvdt(c, k);
    }
  }
}

} // namespace grist::physics
