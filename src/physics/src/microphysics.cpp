#include "grist/physics/microphysics.hpp"

#include <algorithm>
#include <cmath>

#include "grist/common/math.hpp"
#include "grist/physics/saturation.hpp"

namespace grist::physics {

using constants::kCp;
using constants::kGravity;
using constants::kLv;

void Microphysics::run(const PhysicsInput& in, double dt, PhysicsOutput& out) const {
  const int nlev = in.nlev;
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    double rain_flux = 0.0;  // kg/m^2/s reaching the surface
    for (int k = 0; k < nlev; ++k) {
      const double p = in.pmid(c, k);
      double t = in.t(c, k);
      double qv = std::max(0.0, in.qv(c, k));
      double qc = std::max(0.0, in.qc(c, k));
      double qr = std::max(0.0, in.qr(c, k));

      // 1) Saturation adjustment (one Newton step, standard Kessler).
      const double qsat = saturationMixingRatio(t, p);
      const double dqsat = saturationMixingRatioSlope(t, p);
      double cond = (qv - qsat) / (1.0 + (kLv / kCp) * dqsat);
      if (cond > 0.0) {
        // Condense.
        cond = std::min(cond, qv);
      } else {
        // Evaporate cloud only as far as there is cloud.
        cond = std::max(cond, -qc);
      }
      qv -= cond;
      qc += cond;
      t += (kLv / kCp) * cond;

      // 2) Autoconversion + accretion (cloud -> rain).
      double auto_conv = 0.0;
      if (qc > config_.cloud_threshold) {
        auto_conv = config_.autoconversion_rate * (qc - config_.cloud_threshold) * dt;
      }
      const double accr = config_.accretion_rate * qc * std::pow(qr, 0.875) * dt;
      const double to_rain = std::min(qc, auto_conv + accr);
      qc -= to_rain;
      qr += to_rain;

      // 3) Rain evaporation in subsaturated air.
      const double qsat2 = saturationMixingRatio(t, p);
      if (qv < qsat2 && qr > 0.0) {
        const double subsat = (qsat2 - qv) / std::max(qsat2, 1e-10);
        const double evap = std::min(qr, config_.rain_evap_rate * subsat *
                                             std::pow(qr, 0.65) * dt);
        qr -= evap;
        qv += evap;
        t -= (kLv / kCp) * evap;
      }

      // 4) Sedimentation: rain falls out of the layer over dt with a bulk
      // fall speed; whatever crosses the surface interface accumulates.
      const double dz = in.zint(c, k) - in.zint(c, k + 1);
      const double frac = clamp(config_.fall_speed * dt / std::max(dz, 1.0), 0.0, 1.0);
      const double fall = qr * frac;
      qr -= fall;
      if (k + 1 < nlev) {
        // Hand the falling rain to the layer below via its tendency.
        out.dqrdt(c, k + 1) += fall * (in.delp(c, k) / in.delp(c, k + 1)) / dt;
      } else {
        rain_flux += fall * in.delp(c, k) / (kGravity * dt);
      }

      out.dtdt(c, k) += (t - in.t(c, k)) / dt;
      out.dqvdt(c, k) += (qv - in.qv(c, k)) / dt;
      out.dqcdt(c, k) += (qc - in.qc(c, k)) / dt;
      out.dqrdt(c, k) += (qr - in.qr(c, k)) / dt;
    }
    // kg/m^2/s == mm/s of liquid water; report mm/day.
    out.precip[c] += rain_flux * 86400.0;
  }
}

} // namespace grist::physics
