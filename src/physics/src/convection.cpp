#include "grist/physics/convection.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "grist/common/math.hpp"
#include "grist/physics/saturation.hpp"

namespace grist::physics {

using constants::kCp;
using constants::kGravity;
using constants::kLv;

void Convection::run(const PhysicsInput& in, double dt, double grid_dx,
                     PhysicsOutput& out) const {
  if (!activeAt(grid_dx)) return;  // storm-resolving: convection is explicit
  const int nlev = in.nlev;
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    // Trigger: lifted low-level parcel warmer than the environment two
    // layers up (crude conditional-instability test).
    const int kb = nlev - 1;
    const double theta_b = in.t(c, kb) / in.exner(c, kb);
    const int ktest = std::max(0, kb - 3);
    const double theta_test = in.t(c, ktest) / in.exner(c, ktest);
    const double qsat_b = saturationMixingRatio(in.t(c, kb), in.pmid(c, kb));
    const double rh_b = in.qv(c, kb) / std::max(qsat_b, 1e-10);
    // Moist instability proxy: boundary-layer theta_e exceeds the mid-level
    // dry theta.
    const double theta_e_b = theta_b * std::exp(kLv * in.qv(c, kb) / (kCp * in.t(c, kb)));
    if (theta_e_b <= theta_test * 1.01 || rh_b < 0.5) continue;

    // Reference profile: moist adiabat anchored at the boundary layer
    // (theta_e conserved), humidity at rh_reference. Tendencies are staged
    // per column and committed only when the column PRECIPITATES (net
    // moisture removal) -- the standard Betts-Miller positivity rule; a
    // net-moistening adjustment means deep convection does not apply.
    double precip_col = 0.0;  // kg/m^2/s condensate removed
    double stage_dtdt[128] = {};
    double stage_dqdt[128] = {};
    for (int k = 0; k < nlev; ++k) {
      const double pk = in.pmid(c, k);
      if (pk < 3.0e4) continue;  // adjustment below 300 hPa only
      // Reference temperature: invert theta_e ~ theta*exp(Lq/cpT) assuming
      // the reference is at rh_reference. The raw fixed point oscillates in
      // very moist columns (qs feedback), so iterate with damping and keep
      // the reference inside the physical range.
      const double exn = in.exner(c, k);
      double t_ref = in.t(c, k);
      for (int it = 0; it < 8; ++it) {
        const double qs = saturationMixingRatio(t_ref, pk);
        const double target =
            theta_e_b * exn /
            std::exp(kLv * config_.rh_reference * qs / (kCp * t_ref));
        t_ref = 0.5 * (t_ref + clamp(target, 150.0, 330.0));
      }
      // Humidity reference: rh_reference of the ENVIRONMENT's saturation
      // value. (Referencing qsat of the warmer adiabat would moisten the
      // free troposphere and violate the precipitation-positivity rule in
      // exactly the columns deep convection should dry.)
      const double q_ref =
          config_.rh_reference * saturationMixingRatio(in.t(c, k), pk);

      // Relaxation tendencies, capped at a generous convective bound
      // (+-30 K/day) so a pathological reference cannot destabilize the
      // coupled model.
      const double cap = 30.0 / 86400.0;
      stage_dtdt[k] = clamp((t_ref - in.t(c, k)) / config_.tau, -cap, cap);
      stage_dqdt[k] = (q_ref - in.qv(c, k)) / config_.tau;
      // Moisture removed from the column becomes convective rain.
      precip_col -= stage_dqdt[k] * in.delp(c, k) / kGravity;
    }
    if (precip_col <= 0) continue;  // non-precipitating: scheme does not act
    for (int k = 0; k < nlev; ++k) {
      out.dtdt(c, k) += stage_dtdt[k];
      out.dqvdt(c, k) += stage_dqdt[k];
    }
    out.precip[c] += precip_col * 86400.0;
  }
  (void)dt;  // relaxation uses tau, not the step length
}

} // namespace grist::physics
