#include "grist/physics/radiation.hpp"

#include <cmath>

#include "grist/common/math.hpp"

namespace grist::physics {

using constants::kCp;
using constants::kGravity;

namespace {
constexpr double kSigmaSB = 5.670374e-8;
} // namespace

Radiation::Radiation(RadiationConfig config) : config_(config) {
  // Synthetic band spectra: absorption varies by an order of magnitude
  // across bands, cloud extinction is gray-ish, band weights sum to 1.
  const auto fill = [](std::vector<double>& v, int n, double lo, double hi) {
    v.resize(n);
    for (int b = 0; b < n; ++b) {
      const double frac = n == 1 ? 0.0 : static_cast<double>(b) / (n - 1);
      v[b] = lo * std::pow(hi / lo, frac);
    }
  };
  // Calibrated so a clear tropical column has SW tau ~ 0.1-1 and the LW
  // spectrum spans transparent "window" bands through nearly-opaque vapor
  // bands (total column tau_gas 0.1-4, tau_vap 0.01-2).
  fill(sw_k_gas_, config_.sw_bands, 3e-7, 3e-6);   // per Pa of air
  fill(sw_k_vap_, config_.sw_bands, 2e-4, 1.5e-3); // per (kg/kg * Pa)
  fill(sw_k_cld_, config_.sw_bands, 0.1, 0.5);     // per (kg/kg * Pa)
  fill(lw_k_gas_, config_.lw_bands, 1e-6, 4e-5);
  fill(lw_k_vap_, config_.lw_bands, 1e-4, 1e-2);
  fill(lw_k_cld_, config_.lw_bands, 0.5, 2.0);
  sw_weight_.assign(config_.sw_bands, 1.0 / config_.sw_bands);
  lw_weight_.assign(config_.lw_bands, 1.0 / config_.lw_bands);
}

void Radiation::run(const PhysicsInput& in, PhysicsOutput& out) const {
  const int nlev = in.nlev;
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < in.ncolumns; ++c) {
    double heating[128 + 1] = {};  // accumulate, clamp, then commit
    // ---- shortwave: direct-beam absorption sweep per band ----
    double gsw = 0.0;
    const double mu = in.coszr[c];
    if (mu > 1e-4) {
      for (int b = 0; b < config_.sw_bands; ++b) {
        double beam = config_.solar_constant * mu * sw_weight_[b];
        for (int k = 0; k < nlev; ++k) {
          const double dp = in.delp(c, k);
          const double tau = (sw_k_gas_[b] * dp + sw_k_vap_[b] * in.qv(c, k) * dp +
                              sw_k_cld_[b] * in.qc(c, k) * dp);
          const double trans = std::exp(-tau / mu);
          const double absorbed = beam * (1.0 - trans);
          // Heating: dT/dt = g * dF / (cp * dp).
          heating[k] += kGravity * absorbed / (kCp * dp);
          beam -= absorbed;
          if (beam < 1e-10) {
            beam = 0.0;
            break;  // band extinct; the branch RRTMG also takes
          }
        }
        gsw += beam * (1.0 - in.albedo[c]);
      }
    }
    out.gsw[c] = gsw;

    // ---- longwave: emissivity two-sweep per band ----
    double glw = 0.0;
    for (int b = 0; b < config_.lw_bands; ++b) {
      // Downward sweep: each layer emits eps*sigma*T^4 and transmits the
      // rest; store per-interface downward fluxes.
      double down[128 + 1];
      down[0] = 0.0;
      for (int k = 0; k < nlev; ++k) {
        const double dp = in.delp(c, k);
        const double tau = lw_k_gas_[b] * dp + lw_k_vap_[b] * in.qv(c, k) * dp +
                           lw_k_cld_[b] * in.qc(c, k) * dp;
        const double eps = 1.0 - std::exp(-tau);
        const double t4 = std::pow(in.t(c, k), 4.0);
        down[k + 1] = down[k] * (1.0 - eps) + eps * kSigmaSB * t4;
      }
      glw += lw_weight_[b] * down[nlev];
      // Upward sweep from the surface.
      double up[128 + 1];
      up[nlev] = kSigmaSB * std::pow(in.tskin[c], 4.0);
      for (int k = nlev - 1; k >= 0; --k) {
        const double dp = in.delp(c, k);
        const double tau = lw_k_gas_[b] * dp + lw_k_vap_[b] * in.qv(c, k) * dp +
                           lw_k_cld_[b] * in.qc(c, k) * dp;
        const double eps = 1.0 - std::exp(-tau);
        const double t4 = std::pow(in.t(c, k), 4.0);
        up[k] = up[k + 1] * (1.0 - eps) + eps * kSigmaSB * t4;
      }
      // Heating from net-flux divergence, weighted by the band fraction.
      for (int k = 0; k < nlev; ++k) {
        const double net_top = up[k] - down[k];
        const double net_bot = up[k + 1] - down[k + 1];
        heating[k] +=
            lw_weight_[b] * kGravity * (net_bot - net_top) / (kCp * in.delp(c, k));
      }
    }
    out.glw[c] = glw;

    // ---- commit: cap the per-layer net heating and add the stratospheric
    // relaxation (ozone stand-in) above strat_pressure ----
    const double cap = config_.heating_cap_kday / 86400.0;
    for (int k = 0; k < nlev; ++k) {
      double h = std::min(cap, std::max(-cap, heating[k]));
      if (in.pmid(c, k) < config_.strat_pressure) {
        h += (config_.strat_t - in.t(c, k)) / config_.strat_tau;
      }
      out.dtdt(c, k) += h;
    }
  }
}

double Radiation::flopsPerColumn(int nlev) const {
  // ~20 flops per band-level in SW, ~30 in LW (two sweeps + heating).
  return 20.0 * config_.sw_bands * nlev + 30.0 * config_.lw_bands * nlev;
}

} // namespace grist::physics
