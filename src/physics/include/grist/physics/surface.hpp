// Surface-layer scheme: bulk aerodynamic sensible/latent heat fluxes and
// surface drag from the lowest model layer and the skin state.
#pragma once

#include "grist/physics/types.hpp"

namespace grist::physics {

struct SurfaceConfig {
  double ch = 1.5e-3;       ///< heat/moisture exchange coefficient
  double cd = 1.3e-3;       ///< momentum drag coefficient
  double beta = 0.7;        ///< surface moisture availability [0,1]
  double min_wind = 1.0;    ///< m/s floor on the bulk wind speed
};

class SurfaceLayer {
 public:
  explicit SurfaceLayer(SurfaceConfig config = {}) : config_(config) {}

  /// Fills out.shflx/out.lhflx (W/m^2, positive upward into the atmosphere)
  /// and adds surface drag to dudt/dvdt of the lowest layer.
  void run(const PhysicsInput& in, PhysicsOutput& out) const;

 private:
  SurfaceConfig config_;
};

} // namespace grist::physics
