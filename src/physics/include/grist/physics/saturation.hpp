// Saturation vapor pressure / mixing ratio shared by microphysics,
// convection and the surface scheme.
#pragma once

namespace grist::physics {

/// Tetens saturation vapor pressure over liquid water, Pa.
double saturationVaporPressure(double t_kelvin);

/// Saturation mixing ratio at (T, p), kg/kg; clamped for p near/below es.
double saturationMixingRatio(double t_kelvin, double p_pascal);

/// d(qsat)/dT at constant pressure (used by the saturation adjustment).
double saturationMixingRatioSlope(double t_kelvin, double p_pascal);

} // namespace grist::physics
