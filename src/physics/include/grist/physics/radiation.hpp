// RRTMG-style banded radiation (the conventional radiative transfer the
// paper replaces with an ML diagnostic module). Structure mirrors the real
// scheme: 14 shortwave + 16 longwave spectral bands, per-band gas/cloud
// optical depths, a two-stream sweep per band, heating rates from flux
// divergence. Deliberately scalar and branch-heavy -- the paper measures
// RRTMG at ~6% of peak FLOPS, and the Fig. 10 discussion depends on that
// contrast with the ML module's dense matrix arithmetic.
#pragma once

#include "grist/physics/types.hpp"

namespace grist::physics {

struct RadiationConfig {
  int sw_bands = 14;
  int lw_bands = 16;
  double solar_constant = 1361.0;  ///< W/m^2

  /// Cap on the net radiative heating per layer (K/day): crude band models
  /// overcool optically thin layers; real RRTMG columns stay within this.
  double heating_cap_kday = 30.0;
  /// Stratospheric relaxation standing in for ozone shortwave absorption:
  /// above `strat_pressure` Pa, relax T toward `strat_t` on `strat_tau` s.
  double strat_pressure = 1.2e4;
  double strat_t = 205.0;
  double strat_tau = 5.0 * 86400.0;
};

class Radiation {
 public:
  explicit Radiation(RadiationConfig config = {});

  /// Computes dtdt (radiative heating) and the surface gsw/glw diagnostics
  /// the land model consumes. Adds into out.dtdt; overwrites gsw/glw.
  void run(const PhysicsInput& in, PhysicsOutput& out) const;

  /// FLOP estimate per column (for the efficiency accounting in the
  /// weak-scaling analysis).
  double flopsPerColumn(int nlev) const;

 private:
  RadiationConfig config_;
  // Per-band absorption coefficients (gas, vapor, cloud), synthetic but
  // spectrally varied so band loops cannot be collapsed.
  std::vector<double> sw_k_gas_, sw_k_vap_, sw_k_cld_, sw_weight_;
  std::vector<double> lw_k_gas_, lw_k_vap_, lw_k_cld_, lw_weight_;
};

} // namespace grist::physics
