// Noah-MP-lite land surface model: a slab skin layer coupled to two soil
// temperature layers; the skin responds to the radiation diagnostics (gsw,
// glw -- exactly what the paper's ML radiation module supplies, section
// 3.2.3) and the turbulent fluxes, the soil integrates heat downward.
#pragma once

#include <vector>

#include "grist/physics/types.hpp"

namespace grist::physics {

struct LandConfig {
  double skin_heat_capacity = 2.0e4;  ///< J/m^2/K (thin skin slab)
  double soil_heat_capacity = 1.2e6;  ///< J/m^3/K
  double soil_depth1 = 0.1;           ///< m
  double soil_depth2 = 0.9;           ///< m
  double soil_conductivity = 1.0;     ///< W/m/K
  double emissivity = 0.96;
  double deep_temperature = 286.0;    ///< K, lower boundary condition
};

class LandModel {
 public:
  LandModel(Index ncolumns, LandConfig config = {});

  /// Advances the skin and soil temperatures over dt using gsw/glw (from
  /// the radiation or ML-radiation module) and shflx/lhflx; writes the new
  /// skin temperature into out.tskin_new.
  void run(const PhysicsInput& in, double dt, PhysicsOutput& out);

  const std::vector<double>& soilT1() const { return soil_t1_; }
  const std::vector<double>& soilT2() const { return soil_t2_; }

 private:
  LandConfig config_;
  std::vector<double> soil_t1_, soil_t2_;
};

} // namespace grist::physics
