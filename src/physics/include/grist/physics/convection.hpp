// Betts-Miller-style convective adjustment, with the scale-aware switch the
// GSRM story requires: at storm-resolving grid spacings (< ~10 km) deep
// convection is explicit and the scheme deactivates; at coarse spacings it
// relaxes conditionally unstable columns toward a moist-adiabatic reference
// and produces convective precipitation.
#pragma once

#include "grist/physics/types.hpp"

namespace grist::physics {

struct ConvectionConfig {
  double tau = 7200.0;           ///< relaxation time scale, s
  double switch_off_dx = 10e3;   ///< m; disabled at finer grid spacing
  double rh_reference = 0.55;    ///< reference profile relative humidity
};

class Convection {
 public:
  explicit Convection(ConvectionConfig config = {}) : config_(config) {}

  /// grid_dx: the model's nominal grid spacing in meters (scale awareness).
  /// Adds T/qv tendencies and convective precip (mm/day).
  void run(const PhysicsInput& in, double dt, double grid_dx,
           PhysicsOutput& out) const;

  bool activeAt(double grid_dx) const { return grid_dx >= config_.switch_off_dx; }

 private:
  ConvectionConfig config_;
};

} // namespace grist::physics
