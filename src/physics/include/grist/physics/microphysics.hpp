// Kessler warm-rain microphysics: saturation adjustment (condensation /
// evaporation of cloud), autoconversion and accretion of cloud into rain,
// rain evaporation in subsaturated layers, and rain sedimentation to the
// surface precipitation flux.
#pragma once

#include "grist/physics/types.hpp"

namespace grist::physics {

struct MicrophysicsConfig {
  double autoconversion_rate = 1.0e-3;  ///< 1/s beyond the cloud threshold
  double cloud_threshold = 5.0e-4;      ///< kg/kg
  double accretion_rate = 2.2;          ///< Kessler k2
  double rain_evap_rate = 2.0e-4;
  double fall_speed = 7.0;              ///< m/s, bulk rain fall speed
};

class Microphysics {
 public:
  explicit Microphysics(MicrophysicsConfig config = {}) : config_(config) {}

  /// dt is the physics step (s). Adds tendencies; adds surface precip
  /// (mm/day) into out.precip.
  void run(const PhysicsInput& in, double dt, PhysicsOutput& out) const;

 private:
  MicrophysicsConfig config_;
};

} // namespace grist::physics
