// Shared data structures of the physics suite: column-oriented inputs from
// the physics-dynamics coupling interface (paper section 3.2.4 lists them:
// U, V, T, Q, P, tskin, coszr) and the tendencies/diagnostics returned.
#pragma once

#include <vector>

#include "grist/parallel/field.hpp"

namespace grist::physics {

using parallel::Field;

/// Per-column atmospheric inputs, cells x nlev (level 0 = model top).
struct PhysicsInput {
  int nlev = 0;
  Index ncolumns = 0;

  Field u, v;        ///< cell-center winds, m/s
  Field t;           ///< temperature, K
  Field qv, qc, qr;  ///< vapor / cloud / rain mixing ratios, kg/kg
  Field pmid;        ///< mid-level pressure, Pa
  Field pint;        ///< interface pressure, Pa (nlev+1)
  Field zmid;        ///< mid-level height above surface, m
  Field zint;        ///< interface height, m (nlev+1)
  Field delp;        ///< layer thickness, Pa
  Field exner;       ///< (pmid/p0)^kappa

  std::vector<double> tskin;   ///< surface skin temperature, K
  std::vector<double> coszr;   ///< cosine of the solar zenith angle
  std::vector<double> albedo;  ///< surface shortwave albedo
  std::vector<double> lat;     ///< latitude, radians (scale-aware schemes)

  PhysicsInput() = default;
  PhysicsInput(Index ncolumns_, int nlev_)
      : nlev(nlev_),
        ncolumns(ncolumns_),
        u(ncolumns_, nlev_),
        v(ncolumns_, nlev_),
        t(ncolumns_, nlev_),
        qv(ncolumns_, nlev_),
        qc(ncolumns_, nlev_),
        qr(ncolumns_, nlev_),
        pmid(ncolumns_, nlev_),
        pint(ncolumns_, nlev_ + 1),
        zmid(ncolumns_, nlev_),
        zint(ncolumns_, nlev_ + 1),
        delp(ncolumns_, nlev_),
        exner(ncolumns_, nlev_),
        tskin(ncolumns_, 288.0),
        coszr(ncolumns_, 0.5),
        albedo(ncolumns_, 0.2),
        lat(ncolumns_, 0.0) {}
};

/// Physics tendencies and surface diagnostics.
struct PhysicsOutput {
  Field dtdt;          ///< K/s
  Field dqvdt, dqcdt, dqrdt;  ///< 1/s
  Field dudt, dvdt;    ///< m/s^2

  std::vector<double> precip;     ///< surface rain rate, mm/day
  std::vector<double> gsw;        ///< surface downward shortwave, W/m^2
  std::vector<double> glw;        ///< surface downward longwave, W/m^2
  std::vector<double> shflx;      ///< sensible heat flux, W/m^2
  std::vector<double> lhflx;      ///< latent heat flux, W/m^2
  std::vector<double> tskin_new;  ///< updated land skin temperature, K

  PhysicsOutput() = default;
  PhysicsOutput(Index ncolumns, int nlev)
      : dtdt(ncolumns, nlev),
        dqvdt(ncolumns, nlev),
        dqcdt(ncolumns, nlev),
        dqrdt(ncolumns, nlev),
        dudt(ncolumns, nlev),
        dvdt(ncolumns, nlev),
        precip(ncolumns, 0.0),
        gsw(ncolumns, 0.0),
        glw(ncolumns, 0.0),
        shflx(ncolumns, 0.0),
        lhflx(ncolumns, 0.0),
        tskin_new(ncolumns, 288.0) {}

  void zero() {
    dtdt.fill(0);
    dqvdt.fill(0);
    dqcdt.fill(0);
    dqrdt.fill(0);
    dudt.fill(0);
    dvdt.fill(0);
    precip.assign(precip.size(), 0.0);
    gsw.assign(gsw.size(), 0.0);
    glw.assign(glw.size(), 0.0);
    shflx.assign(shflx.size(), 0.0);
    lhflx.assign(lhflx.size(), 0.0);
  }
};

} // namespace grist::physics
