// Planetary boundary layer scheme: K-profile vertical diffusion of heat,
// moisture and momentum with an implicit (tridiagonal) solve per column;
// surface fluxes enter as the bottom boundary condition.
#pragma once

#include "grist/physics/types.hpp"

namespace grist::physics {

struct PblConfig {
  double k_max = 40.0;        ///< m^2/s peak eddy diffusivity
  double pbl_depth = 1500.0;  ///< m, nominal boundary-layer depth
  double k_free = 0.5;        ///< m^2/s background free-troposphere mixing
};

class Pbl {
 public:
  explicit Pbl(PblConfig config = {}) : config_(config) {}

  /// Diffuses t/qv/u/v implicitly over dt; surface sensible and latent
  /// fluxes (W/m^2, from the surface-layer scheme) force the lowest layer.
  void run(const PhysicsInput& in, double dt, const std::vector<double>& shflx,
           const std::vector<double>& lhflx, PhysicsOutput& out) const;

 private:
  PblConfig config_;
};

} // namespace grist::physics
