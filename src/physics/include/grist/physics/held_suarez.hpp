// Held-Suarez (1994) forcing: Newtonian relaxation of temperature toward an
// analytic equilibrium profile plus Rayleigh friction on low-level winds.
// THE standard idealized climate benchmark for dynamical cores -- a long HS
// run must spin up westerly midlatitude jets from rest. Implemented as a
// PhysicsSuite so the model driver runs it through the same coupling
// interface as the full physics (and it doubles as a cheap long-run
// stability workload).
#pragma once

#include "grist/physics/suite.hpp"

namespace grist::physics {

struct HeldSuarezConfig {
  double t_surface_eq = 315.0;  ///< equatorial surface Teq, K
  double delta_t_y = 60.0;      ///< equator-pole Teq contrast, K
  double delta_theta_z = 10.0;  ///< static-stability parameter, K
  double t_strat = 200.0;       ///< stratospheric floor, K
  double k_a = 1.0 / (40.0 * 86400.0);  ///< free-atmosphere relaxation, 1/s
  double k_s = 1.0 / (4.0 * 86400.0);   ///< surface relaxation, 1/s
  double k_f = 1.0 / 86400.0;           ///< Rayleigh friction, 1/s
  double sigma_b = 0.7;                 ///< boundary-layer top in sigma
};

class HeldSuarezSuite final : public PhysicsSuite {
 public:
  explicit HeldSuarezSuite(HeldSuarezConfig config = {}) : config_(config) {}

  void run(const PhysicsInput& in, double dt, PhysicsOutput& out) override;
  const char* name() const override { return "Held-Suarez"; }

  /// The analytic equilibrium temperature (exposed for tests).
  double equilibriumT(double lat, double pmid, double ps) const;

 private:
  HeldSuarezConfig config_;
};

} // namespace grist::physics
