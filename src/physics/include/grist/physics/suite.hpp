// The physics suite interface shared by the conventional parameterizations
// and the ML-based suite (paper Fig. 3): the coupler hands over column
// inputs and receives full physical tendencies plus surface diagnostics.
// Table 3's scheme matrix (DP/MIX x PHY/ML) switches the implementation.
#pragma once

#include <memory>

#include "grist/physics/convection.hpp"
#include "grist/physics/land.hpp"
#include "grist/physics/microphysics.hpp"
#include "grist/physics/pbl.hpp"
#include "grist/physics/radiation.hpp"
#include "grist/physics/surface.hpp"
#include "grist/physics/types.hpp"

namespace grist::physics {

class PhysicsSuite {
 public:
  virtual ~PhysicsSuite() = default;
  /// Compute tendencies for one physics step of dt seconds. out is zeroed
  /// by the callee.
  virtual void run(const PhysicsInput& in, double dt, PhysicsOutput& out) = 0;
  virtual const char* name() const = 0;
};

struct ConventionalSuiteConfig {
  double grid_dx = 100e3;    ///< m; drives the scale-aware convection switch
  int radiation_interval = 3;///< run radiation every N physics steps
  /// Safety clamps on the summed suite tendencies (same role as in the ML
  /// suite): bound the physics-dynamics coupling shock so grid-point-storm
  /// feedbacks cannot run away at coarse resolutions. Generous relative to
  /// observed large-scale tendencies.
  double dtdt_limit = 80.0 / 86400.0;   ///< K/s
  double dqdt_limit = 5.0e-6;           ///< 1/s
  RadiationConfig radiation;
  MicrophysicsConfig microphysics;
  PblConfig pbl;
  SurfaceConfig surface;
  LandConfig land;
  ConvectionConfig convection;
};

/// The conventional parameterization chain: radiation (on its own, longer
/// timestep -- Table 2's Phy:Rad = 60:180), surface layer, PBL diffusion,
/// convection (scale-aware), microphysics, land.
class ConventionalSuite final : public PhysicsSuite {
 public:
  ConventionalSuite(Index ncolumns, int nlev, ConventionalSuiteConfig config = {});

  void run(const PhysicsInput& in, double dt, PhysicsOutput& out) override;
  const char* name() const override { return "Conventional"; }

  const Radiation& radiation() const { return radiation_; }
  LandModel& land() { return land_; }

 private:
  ConventionalSuiteConfig config_;
  Radiation radiation_;
  Microphysics microphysics_;
  Pbl pbl_;
  SurfaceLayer surface_;
  LandModel land_;
  Convection convection_;

  // Radiation cache (heating + surface fluxes reused between full calls).
  int steps_since_radiation_;
  Field cached_rad_heating_;
  std::vector<double> cached_gsw_, cached_glw_;
};

/// Q1 (apparent heat source, K/s) and Q2 (apparent moisture sink expressed
/// in K/s, -Lv/cp dq/dt) from a physics output -- the residual-calculation
/// targets of the paper's ML tendency module (section 3.2.2).
void deriveQ1Q2(const PhysicsOutput& out, Field& q1, Field& q2);

} // namespace grist::physics
