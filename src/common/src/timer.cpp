#include "grist/common/timer.hpp"

#include <mutex>

namespace grist {
namespace {
std::mutex g_mutex;
}

TimingRegistry& TimingRegistry::instance() {
  static TimingRegistry registry;
  return registry;
}

void TimingRegistry::add(const std::string& section, double seconds) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  totals_[section] += seconds;
}

double TimingRegistry::total(const std::string& section) const {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = totals_.find(section);
  return it == totals_.end() ? 0.0 : it->second;
}

std::map<std::string, double> TimingRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return totals_;
}

void TimingRegistry::clear() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  totals_.clear();
}

} // namespace grist
