#include "grist/common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace grist {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

} // namespace

Config Config::fromString(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip namelist-style comments.
    for (const char marker : {'#', '!'}) {
      const auto pos = line.find(marker);
      if (pos != std::string::npos) line.erase(pos);
    }
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: malformed line " + std::to_string(lineno) +
                               ": '" + stripped + "'");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key at line " + std::to_string(lineno));
    }
    cfg.set(key, value);
  }
  return cfg;
}

Config Config::fromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return fromString(buf.str());
}

void Config::set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

bool Config::has(const std::string& key) const { return entries_.count(key) > 0; }

std::optional<std::string> Config::find(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::getString(const std::string& key, const std::string& fallback) const {
  return find(key).value_or(fallback);
}

int Config::getInt(const std::string& key, int fallback) const {
  const auto v = find(key);
  return v ? std::stoi(*v) : fallback;
}

double Config::getDouble(const std::string& key, double fallback) const {
  const auto v = find(key);
  return v ? std::stod(*v) : fallback;
}

bool Config::getBool(const std::string& key, bool fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  const std::string s = lower(*v);
  if (s == "true" || s == "1" || s == "yes" || s == ".true.") return true;
  if (s == "false" || s == "0" || s == "no" || s == ".false.") return false;
  throw std::runtime_error("Config: non-boolean value for '" + key + "': " + *v);
}

} // namespace grist
