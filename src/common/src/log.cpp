#include "grist/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace grist::log {
namespace {

std::atomic<Level> g_level{Level::kInfo};
std::mutex g_mutex;

const char* levelName(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
  }
  return "?";
}

} // namespace

void setLevel(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[grist][%s] %s\n", levelName(lvl), message.c_str());
}

} // namespace grist::log
