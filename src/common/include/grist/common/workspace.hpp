// Per-thread bump-pointer scratch arena for per-iteration temporaries in
// hot parallel loops. The dycore's column solves (vertical implicit solver,
// vertical remap) and the tracer limiter need a handful of nlev-sized work
// arrays per cell; allocating them as std::vector inside an
// `omp parallel for` puts the allocator lock on the critical path and
// thrashes the heap. A Workspace is instead reserved once per thread before
// the loop and handed out by pointer bumps -- zero heap traffic in the
// steady state.
//
// Usage pattern:
//
//   #pragma omp parallel
//   {
//     auto& ws = common::Workspace::threadLocal();
//     ws.reserve(Workspace::bytesFor<double>(nlev) * 6);
//   #pragma omp for schedule(static)
//     for (Index c = 0; c < ncells; ++c) {
//       common::Workspace::Frame frame(ws);  // releases on scope exit
//       double* tmp = ws.get<double>(nlev);
//       ...
//     }
//   }
//
// The arena never shrinks: `threadLocal()` arenas persist for the thread's
// lifetime, so a warmed-up solver performs no allocation at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "grist/common/aligned.hpp"

namespace grist::common {

class Workspace {
 public:
  /// Every acquire() is rounded up to this alignment (one cache line), so
  /// per-iteration arrays never share a line across requests. The backing
  /// buffer itself is cache-line aligned (AlignedVector), so the offsets
  /// being multiples of kAlign makes every pointer handed out genuinely
  /// 64-byte aligned -- the contract the SIMD backend's `aligned` loop
  /// clauses rely on.
  static constexpr std::size_t kAlign = kCacheLine;

  /// Bytes one get<T>(n) consumes, including alignment padding. Sum these
  /// when sizing reserve().
  template <typename T>
  static constexpr std::size_t bytesFor(std::size_t n) {
    return roundUp(n * sizeof(T));
  }

  /// Grow capacity to at least `bytes`. Growth is only legal while no
  /// allocation is live (offset == 0): growing would move the buffer and
  /// dangle every pointer previously handed out.
  void reserve(std::size_t bytes) {
    if (bytes <= buf_.size()) return;
    if (offset_ != 0) {
      throw std::logic_error("Workspace::reserve: live allocations present");
    }
    buf_.resize(bytes);
    ++growths_;
  }

  /// Bump-allocate n elements of T (uninitialized), 64-byte aligned.
  /// Throws if the request does not fit: callers must reserve() the loop's
  /// worst case up front -- that contract is what makes the zero-allocation
  /// guarantee checkable.
  template <typename T>
  T* acquire(std::size_t n) {
    const std::size_t payload = n * sizeof(T);
    const std::size_t bytes = roundUp(payload);
    if (offset_ + bytes > buf_.size()) {
      if (offset_ == 0) {
        // No live pointers: growing is safe (first-use convenience).
        buf_.resize(offset_ + bytes);
        ++growths_;
      } else {
        throw std::logic_error("Workspace::acquire: overflow; reserve() more");
      }
    }
    T* p = reinterpret_cast<T*>(buf_.data() + offset_);
    offset_ += bytes;
    padding_ += bytes - payload;
    if (offset_ > high_water_) high_water_ = offset_;
    return p;
  }

  /// Historic name for acquire(); kept so existing call sites read the same.
  template <typename T>
  T* get(std::size_t n) {
    return acquire<T>(n);
  }

  /// Release everything (capacity is kept).
  void reset() { offset_ = 0; }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t used() const { return offset_; }
  /// Peak bytes ever live at once (sizing aid).
  std::size_t highWater() const { return high_water_; }
  /// Cumulative bytes of cache-line padding appended to acquires (monotonic,
  /// like growths()): the cost of the alignment contract, visible so callers
  /// can size reserve() with bytesFor<T>() instead of guessing.
  std::size_t paddingBytes() const { return padding_; }
  /// Number of times the backing buffer (re)allocated -- a warmed-up arena
  /// stops incrementing this.
  std::int64_t growths() const { return growths_; }

  /// RAII mark/release: restores the arena to its state at construction,
  /// so nested users (an outer routine holding arrays across a call into
  /// an inner one) compose safely.
  class Frame {
   public:
    explicit Frame(Workspace& ws) : ws_(ws), saved_(ws.offset_) {}
    ~Frame() { ws_.offset_ = saved_; }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Workspace& ws_;
    std::size_t saved_;
  };

  /// The calling thread's persistent arena.
  static Workspace& threadLocal() {
    static thread_local Workspace ws;
    return ws;
  }

 private:
  static constexpr std::size_t roundUp(std::size_t bytes) {
    return (bytes + (kAlign - 1)) & ~(kAlign - 1);
  }

  AlignedVector<unsigned char> buf_;
  std::size_t offset_ = 0;
  std::size_t high_water_ = 0;
  std::size_t padding_ = 0;
  std::int64_t growths_ = 0;
};

} // namespace grist::common
