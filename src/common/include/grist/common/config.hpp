// Key-value run configuration, mirroring GRIST's namelist-style control
// files ("grist.nml"). Supports `key = value` lines, '#'/'!' comments, and
// typed access with defaults.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace grist {

class Config {
 public:
  Config() = default;

  /// Parse `key = value` text (one pair per line). Throws std::runtime_error
  /// on malformed lines so bad run scripts fail fast.
  static Config fromString(const std::string& text);
  static Config fromFile(const std::string& path);

  void set(const std::string& key, const std::string& value);

  bool has(const std::string& key) const;

  std::string getString(const std::string& key, const std::string& fallback) const;
  int getInt(const std::string& key, int fallback) const;
  double getDouble(const std::string& key, double fallback) const;
  bool getBool(const std::string& key, bool fallback) const;

  /// Value if present; std::nullopt otherwise.
  std::optional<std::string> find(const std::string& key) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

} // namespace grist
