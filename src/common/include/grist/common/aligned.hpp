// Cache-line-aligned allocation, shared by the field containers and the
// Workspace arena. The SIMD execution backend (grist/backend/simd.hpp)
// vectorizes the vertical (nlev) inner loops of the dycore kernels; its
// layout contract is that every hot array starts on a 64-byte boundary and
// owns whole cache lines, so
//   - the first vector lane of an array never straddles a line,
//   - two arrays never share a line (no false sharing between the OpenMP
//     sweep over one field and a neighbor field's tail),
//   - capacity rounded to whole lines lets the arena hand out aligned rows
//     with pure pointer bumps.
// std::vector<double> only guarantees alignof(double) == 8; AlignedVector
// upgrades that to kCacheLine without changing any other vector semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace grist::common {

/// One cache line on every target we build for (x86-64, SW26010P MPE).
inline constexpr std::size_t kCacheLine = 64;

/// Round a byte count up to whole cache lines.
constexpr std::size_t roundUpToCacheLine(std::size_t bytes) {
  return (bytes + (kCacheLine - 1)) & ~(kCacheLine - 1);
}

/// True if `p` sits on a cache-line boundary.
inline bool isCacheAligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & (kCacheLine - 1)) == 0;
}

/// Minimal C++17 allocator handing out 64-byte-aligned storage via the
/// aligned operator new. Stateless: all instances compare equal, so
/// containers can move storage between allocator copies freely.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = roundUpToCacheLine(n * sizeof(T));
    return static_cast<T*>(
        ::operator new(bytes, std::align_val_t(kCacheLine)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kCacheLine));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U>;
  };
};

/// std::vector whose data() is always cache-line aligned and whose
/// allocations cover whole cache lines.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace grist::common
