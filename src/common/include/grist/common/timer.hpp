// Wall-clock timing with a process-global named-section registry, used by
// the model driver to report the dynamics/physics/communication split that
// the paper's scaling discussion relies on (sections 4.7-4.8).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace grist {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time per named section across the whole process.
/// Thread-safe for distinct sections via per-call locking.
class TimingRegistry {
 public:
  static TimingRegistry& instance();

  void add(const std::string& section, double seconds);
  double total(const std::string& section) const;
  /// Section name -> accumulated seconds; a snapshot copy.
  std::map<std::string, double> snapshot() const;
  void clear();

 private:
  TimingRegistry() = default;
  mutable std::map<std::string, double> totals_;
};

/// RAII scope timer feeding TimingRegistry.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string section) : section_(std::move(section)) {}
  ~ScopedTimer() { TimingRegistry::instance().add(section_, timer_.elapsed()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string section_;
  Timer timer_;
};

} // namespace grist
