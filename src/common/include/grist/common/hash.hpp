// FNV-1a: the repo-wide content fingerprint (mp_runner's per-rank state
// hashes, ML weight provenance in checkpoints, partition fingerprints).
// Not cryptographic -- a cheap, deterministic, endian-stable-within-a-host
// identity check.
#pragma once

#include <cstddef>
#include <cstdint>

namespace grist::common {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

} // namespace grist::common
