// Small math utilities: physical constants, 3-vectors, and spherical
// geometry helpers used by the icosahedral grid generator and the dycore.
#pragma once

#include <array>
#include <cmath>

#include "grist/common/types.hpp"

namespace grist {

/// Physical and planetary constants (GRIST uses an Earth-like sphere; the
/// small-planet idealized tests rescale `rearth`).
namespace constants {
inline constexpr double kEarthRadius = 6.371229e6;  ///< m
inline constexpr double kOmega = 7.292e-5;          ///< rotation rate, 1/s
inline constexpr double kGravity = 9.80616;         ///< m/s^2
inline constexpr double kRd = 287.04;               ///< dry gas constant, J/kg/K
inline constexpr double kCp = 1004.64;              ///< dry heat capacity, J/kg/K
inline constexpr double kRv = 461.6;                ///< vapor gas constant
inline constexpr double kLv = 2.501e6;              ///< latent heat of vaporization
inline constexpr double kP0 = 1.0e5;                ///< reference pressure, Pa
inline constexpr double kKappa = kRd / kCp;
inline constexpr double kPi = 3.14159265358979323846;
} // namespace constants

/// Minimal 3-vector for spherical geometry; value-semantic and constexpr.
struct Vec3 {
  double x = 0, y = 0, z = 0;

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  Vec3 normalized() const {
    const double n = norm();
    return {x / n, y / n, z / n};
  }
};

/// Geographic coordinate (radians).
struct LonLat {
  double lon = 0;  ///< [-pi, pi]
  double lat = 0;  ///< [-pi/2, pi/2]
};

/// Unit-sphere Cartesian point from geographic coordinates.
inline Vec3 toCartesian(const LonLat& g) {
  const double c = std::cos(g.lat);
  return {c * std::cos(g.lon), c * std::sin(g.lon), std::sin(g.lat)};
}

/// Geographic coordinates of a (not necessarily unit) Cartesian point.
inline LonLat toLonLat(const Vec3& p) {
  return {std::atan2(p.y, p.x), std::atan2(p.z, std::sqrt(p.x * p.x + p.y * p.y))};
}

/// Great-circle distance between two unit vectors, on a sphere of radius r.
inline double greatCircleDistance(const Vec3& a, const Vec3& b, double r) {
  // atan2 form is accurate for both small and near-antipodal separations.
  const double s = a.cross(b).norm();
  const double c = a.dot(b);
  return r * std::atan2(s, c);
}

/// Signed area of the spherical triangle (a,b,c) on the unit sphere
/// (positive when counterclockwise seen from outside).
inline double sphericalTriangleArea(const Vec3& a, const Vec3& b, const Vec3& c) {
  // L'Huilier-free formula via the scalar triple product (Eriksson 1990):
  // tan(E/2) = |a.(b x c)| / (1 + a.b + b.c + c.a), E = spherical excess.
  const double triple = a.dot(b.cross(c));
  const double denom = 1.0 + a.dot(b) + b.dot(c) + c.dot(a);
  const double e = 2.0 * std::atan2(std::abs(triple), denom);
  return triple >= 0 ? e : -e;
}

/// Circumcenter of a spherical triangle, projected to the unit sphere.
/// This is the Voronoi (dual) vertex of the icosahedral triangulation.
inline Vec3 sphericalCircumcenter(const Vec3& a, const Vec3& b, const Vec3& c) {
  Vec3 n = (b - a).cross(c - a);
  // Orient towards the triangle (the three points are on one hemisphere for
  // any refined icosahedral triangle).
  if (n.dot(a) < 0) n = n * -1.0;
  return n.normalized();
}

/// x clamped into [lo, hi].
template <typename T>
constexpr T clamp(T x, T lo, T hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

} // namespace grist
