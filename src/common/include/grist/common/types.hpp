// Fundamental index and scalar types shared by every grist-sw subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace grist {

/// Index type for mesh entities (cells, edges, vertices). 32-bit signed is
/// enough for every grid we can hold in memory (G8 has ~2e6 edges); analytic
/// counts for larger grids use 64-bit (see grid::GridCounts).
using Index = std::int32_t;

/// Invalid/absent index sentinel (e.g. the missing 6th edge of a pentagon).
inline constexpr Index kInvalidIndex = -1;

/// Default high-precision scalar: the "gold standard" of the paper's
/// mixed-precision methodology (section 3.4.1).
using Real = double;

/// Reduced-precision scalar used for precision-insensitive terms.
using RealSP = float;

} // namespace grist
