// Tiny leveled logger. Climate-model runs are long; logs are the main
// user-facing progress channel, so keep the format stable and grep-friendly.
#pragma once

#include <sstream>
#include <string>

namespace grist::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: Info.
void setLevel(Level level);
Level level();

/// Emit one formatted line ("[grist][INFO] ...") to stderr.
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
} // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug) write(Level::kDebug, detail::concat(args...));
}
template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo) write(Level::kInfo, detail::concat(args...));
}
template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn) write(Level::kWarn, detail::concat(args...));
}
template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::kError) write(Level::kError, detail::concat(args...));
}

} // namespace grist::log
