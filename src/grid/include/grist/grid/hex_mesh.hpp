// The unstructured hexagonal C-grid that drives the GRIST dynamical core
// (paper section 3.1.2): primal cells are hexagons (12 pentagons), dual
// cells are triangles, and normal velocities live on the shared edges.
//
// Conventions used throughout the dycore:
//  - edge normal n_e points from edge_cell[e][0] to edge_cell[e][1];
//  - edge tangent t_e = r x n_e (90 deg counterclockwise seen from outside),
//    and edge_vertex[e] is ordered so t_e points from vertex[0] to vertex[1];
//  - per-cell edge/vertex rings are counterclockwise; cell_vertices[k] lies
//    between cell_edges[k] and cell_edges[k+1 mod n];
//  - divergence at cell i:   (1/A_i) sum_e  s_{i,e} le_e u_e,
//    with s_{i,e} = +1 when n_e points out of i;
//  - vorticity at vertex v:  (1/A_v) sum_e  c_{v,e} de_e u_e,
//    with c_{v,e} = +1 when n_e is aligned with ccw circulation around v.
#pragma once

#include <array>
#include <vector>

#include "grist/common/math.hpp"
#include "grist/common/types.hpp"
#include "grist/grid/tri_mesh.hpp"

namespace grist::grid {

struct HexMesh {
  int level = 0;
  Index ncells = 0;
  Index nedges = 0;
  Index nvertices = 0;

  // ---- cells (primal hexagons/pentagons) ----
  std::vector<Vec3> cell_x;          ///< cell center (unit sphere)
  std::vector<LonLat> cell_ll;
  std::vector<double> cell_area;     ///< m^2, == sum of the cell's kites
  std::vector<Index> cell_offset;    ///< CSR offsets, size ncells+1
  std::vector<Index> cell_edges;     ///< ccw edge ring (CSR payload)
  std::vector<double> cell_edge_sign;///< +1 when edge normal points outward
  std::vector<Index> cell_vertices;  ///< ccw dual-vertex ring (CSR payload)
  std::vector<Index> cell_cells;     ///< neighbor across cell_edges[k]

  // ---- edges ----
  std::vector<std::array<Index, 2>> edge_cell;
  std::vector<std::array<Index, 2>> edge_vertex;
  std::vector<Vec3> edge_x;          ///< crossing of primal and dual arcs
  std::vector<LonLat> edge_ll;
  std::vector<double> edge_de;       ///< m, distance between cell centers
  std::vector<double> edge_le;       ///< m, distance between dual vertices
  std::vector<Vec3> edge_normal;     ///< unit, tangent to sphere
  std::vector<Vec3> edge_tangent;    ///< r x n

  // ---- vertices (dual triangles) ----
  std::vector<Vec3> vtx_x;
  std::vector<double> vtx_area;      ///< m^2, == sum of the vertex's 3 kites
  std::vector<std::array<Index, 3>> vtx_edges;
  std::vector<std::array<double, 3>> vtx_edge_sign;  ///< circulation sign c_{v,e}
  std::vector<std::array<Index, 3>> vtx_cells;       ///< cell opposite nothing; corner cells
  std::vector<std::array<double, 3>> vtx_kite_area;  ///< R_{i,v} per corner cell

  // Convenience accessors -------------------------------------------------
  int cellDegree(Index cell) const {
    return static_cast<int>(cell_offset[cell + 1] - cell_offset[cell]);
  }
  /// Sphere radius the geometry was scaled to (m).
  double radius = constants::kEarthRadius;

  /// Mean and extreme grid spacings (m), from edge_de.
  double meanSpacing() const;
  double minSpacing() const;
  double maxSpacing() const;
};

/// Build the hexagonal C-grid as the Voronoi dual of the level-L icosahedral
/// triangulation, on a sphere of radius `radius` (meters). Small-planet
/// idealized tests pass a reduced radius.
HexMesh buildHexMesh(int level, double radius = constants::kEarthRadius);

/// Adjacency graph over cells (CSR), used by the partitioner and by the
/// BFS index reordering.
struct CellGraph {
  std::vector<Index> offset;
  std::vector<Index> neighbor;
};
CellGraph cellGraph(const HexMesh& mesh);

} // namespace grist::grid
