// Breadth-first index reordering (paper section 3.1.3): GRIST maps the
// unstructured grid through indirect addressing and optimizes the index
// sequence with BFS to raise cache hit rates. We renumber cells by BFS over
// the neighbor graph and renumber edges/vertices in first-touch order.
#pragma once

#include <vector>

#include "grist/common/types.hpp"
#include "grist/grid/hex_mesh.hpp"

namespace grist::grid {

/// old-index -> new-index permutations for each entity kind.
struct Permutation {
  std::vector<Index> cell;
  std::vector<Index> edge;
  std::vector<Index> vertex;
};

/// BFS permutation rooted at `root`.
Permutation bfsPermutation(const HexMesh& mesh, Index root = 0);

/// Mesh with all entity arrays renumbered by `perm`.
HexMesh applyPermutation(const HexMesh& mesh, const Permutation& perm);

/// Convenience: build + BFS-reorder in one call.
HexMesh buildReorderedHexMesh(int level, double radius = constants::kEarthRadius);

/// Locality figure of merit: mean |new(edge_cell[0]) - new(edge_cell[1])|
/// over edges, normalized by ncells; lower is more cache-friendly.
double indexSpread(const HexMesh& mesh);

} // namespace grist::grid
