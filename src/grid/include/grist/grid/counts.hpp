// Analytic entity counts and nominal resolutions for icosahedral G-levels.
// These reproduce the "Number of Cells/Edges/Vertices" columns of the
// paper's Table 2 without having to materialize grids that do not fit in
// memory (G12 has 167M cells).
#pragma once

#include <cmath>
#include <cstdint>

#include "grist/common/math.hpp"

namespace grist::grid {

/// Entity counts for icosahedral grid level `level` (L bisection passes).
struct GridCounts {
  std::int64_t cells = 0;     ///< hexagon/pentagon primal cells
  std::int64_t edges = 0;     ///< shared by primal and dual mesh
  std::int64_t vertices = 0;  ///< dual (triangle) vertices
};

inline GridCounts countsForLevel(int level) {
  const std::int64_t f = std::int64_t{1} << (2 * level);  // 4^level
  return GridCounts{10 * f + 2, 30 * f, 20 * f};
}

/// Nominal resolution in km, defined as sqrt(mean cell area). This is the
/// metric behind the paper's Table 2 ranges: the minimum is set by the 12
/// pentagons (area ~ 0.69x of a hexagon) and the maximum by the largest
/// hexagons, giving e.g. G6: 92.5~113 km, G12: 1.47~1.92 km.
inline double nominalSpacingKm(int level) {
  const auto counts = countsForLevel(level);
  const double area =
      4.0 * constants::kPi * constants::kEarthRadius * constants::kEarthRadius /
      static_cast<double>(counts.cells);
  return std::sqrt(area) / 1000.0;
}

inline double minSpacingKm(int level) { return 0.829 * nominalSpacingKm(level); }
inline double maxSpacingKm(int level) { return 1.013 * nominalSpacingKm(level); }

} // namespace grist::grid
