// TRSK (Thuburn-Ringler-Skamarock-Klemp) tangential-velocity reconstruction
// weights for the hexagonal C-grid, plus a Perot-style vector reconstruction
// used as an independent cross-check in tests.
//
// Given normal velocities u_n on edges, the tangential velocity is
//   u_t(e) = sum_{e' in EoE(e)} w_{e,e'} u_n(e'),
// where EoE(e) are the other edges of the two cells adjacent to e, and the
// weights are built from kite-area fractions (Ringler et al. 2010, JCP).
// These weights make the Coriolis term energy-neutral, which the paper's
// dycore relies on for stable long climate integrations.
#pragma once

#include <vector>

#include "grist/common/types.hpp"
#include "grist/grid/hex_mesh.hpp"

namespace grist::grid {

/// CSR table: for edge e, neighbors trsk_edge[trsk_offset[e] .. [e+1]) with
/// matching weights.
struct TrskWeights {
  std::vector<Index> offset;   ///< size nedges+1
  std::vector<Index> edge;
  std::vector<double> weight;
};

TrskWeights buildTrskWeights(const HexMesh& mesh);

/// u_t at every edge from u_n at every edge using the weight table.
void reconstructTangential(const HexMesh& mesh, const TrskWeights& weights,
                           const double* u_normal, double* u_tangent);

/// Perot reconstruction of the full velocity vector at cell centers:
///   U_i = (1/A_i) sum_e s_{i,e} le_e u_n(e) (x_e - x_i) * radius.
void perotCellVelocity(const HexMesh& mesh, const double* u_normal,
                       std::vector<Vec3>& cell_velocity);

} // namespace grist::grid
