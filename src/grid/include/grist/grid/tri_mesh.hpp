// Icosahedral triangle mesh: the generator substrate for the hexagonal
// C-grid. Repeated edge bisection of the unit icosahedron, vertices
// projected to the unit sphere.
#pragma once

#include <array>
#include <vector>

#include "grist/common/math.hpp"
#include "grist/common/types.hpp"

namespace grist::grid {

/// Triangulated sphere produced by `level` bisection passes over the
/// icosahedron. Counts: V = 10*4^L + 2, T = 20*4^L, E = 30*4^L.
struct TriMesh {
  int level = 0;
  std::vector<Vec3> vertices;                    ///< unit vectors
  std::vector<std::array<Index, 3>> triangles;   ///< ccw seen from outside
};

/// Build the level-L mesh. Throws std::invalid_argument for level < 0 and
/// std::length_error when counts would overflow Index.
TriMesh buildTriMesh(int level);

/// Unique undirected edges (v0 < v1) with their one or two adjacent
/// triangles; every sphere edge has exactly two.
struct TriEdge {
  Index v0 = kInvalidIndex, v1 = kInvalidIndex;
  Index t0 = kInvalidIndex, t1 = kInvalidIndex;
};

std::vector<TriEdge> extractEdges(const TriMesh& mesh);

} // namespace grist::grid
