#include "grist/grid/reorder.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

namespace grist::grid {

Permutation bfsPermutation(const HexMesh& m, Index root) {
  if (root < 0 || root >= m.ncells) throw std::out_of_range("bfsPermutation: root");
  Permutation p;
  p.cell.assign(m.ncells, kInvalidIndex);
  p.edge.assign(m.nedges, kInvalidIndex);
  p.vertex.assign(m.nvertices, kInvalidIndex);

  Index next_cell = 0, next_edge = 0, next_vertex = 0;
  std::queue<Index> queue;
  queue.push(root);
  p.cell[root] = next_cell++;
  while (!queue.empty()) {
    const Index c = queue.front();
    queue.pop();
    for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k) {
      const Index e = m.cell_edges[k];
      if (p.edge[e] == kInvalidIndex) p.edge[e] = next_edge++;
      const Index v = m.cell_vertices[k];
      if (p.vertex[v] == kInvalidIndex) p.vertex[v] = next_vertex++;
      const Index nb = m.cell_cells[k];
      if (p.cell[nb] == kInvalidIndex) {
        p.cell[nb] = next_cell++;
        queue.push(nb);
      }
    }
  }
  // The sphere is connected, so everything must have been visited.
  if (next_cell != m.ncells || next_edge != m.nedges || next_vertex != m.nvertices) {
    throw std::logic_error("bfsPermutation: mesh not fully connected");
  }
  return p;
}

HexMesh applyPermutation(const HexMesh& m, const Permutation& p) {
  HexMesh out;
  out.level = m.level;
  out.radius = m.radius;
  out.ncells = m.ncells;
  out.nedges = m.nedges;
  out.nvertices = m.nvertices;

  // Cells -----------------------------------------------------------------
  out.cell_x.resize(m.ncells);
  out.cell_ll.resize(m.ncells);
  out.cell_area.resize(m.ncells);
  std::vector<Index> degree(m.ncells);
  for (Index c = 0; c < m.ncells; ++c) {
    const Index nc = p.cell[c];
    out.cell_x[nc] = m.cell_x[c];
    out.cell_ll[nc] = m.cell_ll[c];
    out.cell_area[nc] = m.cell_area[c];
    degree[nc] = m.cell_offset[c + 1] - m.cell_offset[c];
  }
  out.cell_offset.assign(m.ncells + 1, 0);
  for (Index c = 0; c < m.ncells; ++c) out.cell_offset[c + 1] = out.cell_offset[c] + degree[c];
  const Index ring = out.cell_offset[m.ncells];
  out.cell_edges.resize(ring);
  out.cell_edge_sign.resize(ring);
  out.cell_vertices.resize(ring);
  out.cell_cells.resize(ring);
  for (Index c = 0; c < m.ncells; ++c) {
    const Index lo = m.cell_offset[c];
    const Index nlo = out.cell_offset[p.cell[c]];
    for (Index k = 0; k < m.cell_offset[c + 1] - lo; ++k) {
      out.cell_edges[nlo + k] = p.edge[m.cell_edges[lo + k]];
      out.cell_edge_sign[nlo + k] = m.cell_edge_sign[lo + k];
      out.cell_vertices[nlo + k] = p.vertex[m.cell_vertices[lo + k]];
      out.cell_cells[nlo + k] = p.cell[m.cell_cells[lo + k]];
    }
  }

  // Edges -----------------------------------------------------------------
  out.edge_cell.resize(m.nedges);
  out.edge_vertex.resize(m.nedges);
  out.edge_x.resize(m.nedges);
  out.edge_ll.resize(m.nedges);
  out.edge_de.resize(m.nedges);
  out.edge_le.resize(m.nedges);
  out.edge_normal.resize(m.nedges);
  out.edge_tangent.resize(m.nedges);
  for (Index e = 0; e < m.nedges; ++e) {
    const Index ne = p.edge[e];
    out.edge_cell[ne] = {p.cell[m.edge_cell[e][0]], p.cell[m.edge_cell[e][1]]};
    out.edge_vertex[ne] = {p.vertex[m.edge_vertex[e][0]], p.vertex[m.edge_vertex[e][1]]};
    out.edge_x[ne] = m.edge_x[e];
    out.edge_ll[ne] = m.edge_ll[e];
    out.edge_de[ne] = m.edge_de[e];
    out.edge_le[ne] = m.edge_le[e];
    out.edge_normal[ne] = m.edge_normal[e];
    out.edge_tangent[ne] = m.edge_tangent[e];
  }

  // Vertices ----------------------------------------------------------------
  out.vtx_x.resize(m.nvertices);
  out.vtx_area.resize(m.nvertices);
  out.vtx_edges.resize(m.nvertices);
  out.vtx_edge_sign.resize(m.nvertices);
  out.vtx_cells.resize(m.nvertices);
  out.vtx_kite_area.resize(m.nvertices);
  for (Index v = 0; v < m.nvertices; ++v) {
    const Index nv = p.vertex[v];
    out.vtx_x[nv] = m.vtx_x[v];
    out.vtx_area[nv] = m.vtx_area[v];
    for (int k = 0; k < 3; ++k) {
      out.vtx_edges[nv][k] = p.edge[m.vtx_edges[v][k]];
      out.vtx_edge_sign[nv][k] = m.vtx_edge_sign[v][k];
      out.vtx_cells[nv][k] = p.cell[m.vtx_cells[v][k]];
      out.vtx_kite_area[nv][k] = m.vtx_kite_area[v][k];
    }
  }
  return out;
}

HexMesh buildReorderedHexMesh(int level, double radius) {
  const HexMesh raw = buildHexMesh(level, radius);
  return applyPermutation(raw, bfsPermutation(raw));
}

double indexSpread(const HexMesh& m) {
  if (m.nedges == 0) return 0.0;
  double sum = 0.0;
  for (Index e = 0; e < m.nedges; ++e) {
    sum += std::abs(static_cast<double>(m.edge_cell[e][0]) -
                    static_cast<double>(m.edge_cell[e][1]));
  }
  return sum / static_cast<double>(m.nedges) / static_cast<double>(m.ncells);
}

} // namespace grist::grid
