#include "grist/grid/tri_mesh.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace grist::grid {
namespace {

TriMesh baseIcosahedron() {
  TriMesh mesh;
  mesh.level = 0;
  const double phi = (1.0 + std::sqrt(5.0)) / 2.0;
  const std::array<std::array<double, 3>, 12> raw = {{
      {-1, phi, 0}, {1, phi, 0}, {-1, -phi, 0}, {1, -phi, 0},
      {0, -1, phi}, {0, 1, phi}, {0, -1, -phi}, {0, 1, -phi},
      {phi, 0, -1}, {phi, 0, 1}, {-phi, 0, -1}, {-phi, 0, 1},
  }};
  mesh.vertices.reserve(12);
  for (const auto& v : raw) {
    mesh.vertices.push_back(Vec3{v[0], v[1], v[2]}.normalized());
  }
  mesh.triangles = {
      {0, 11, 5},  {0, 5, 1},   {0, 1, 7},   {0, 7, 10},  {0, 10, 11},
      {1, 5, 9},   {5, 11, 4},  {11, 10, 2}, {10, 7, 6},  {7, 1, 8},
      {3, 9, 4},   {3, 4, 2},   {3, 2, 6},   {3, 6, 8},   {3, 8, 9},
      {4, 9, 5},   {2, 4, 11},  {6, 2, 10},  {8, 6, 7},   {9, 8, 1},
  };
  return mesh;
}

// Ensures every triangle is counterclockwise when seen from outside the
// sphere (outward normal): required so that dual-vertex circulation signs
// are globally consistent.
void orientOutward(TriMesh& mesh) {
  for (auto& tri : mesh.triangles) {
    const Vec3& a = mesh.vertices[tri[0]];
    const Vec3& b = mesh.vertices[tri[1]];
    const Vec3& c = mesh.vertices[tri[2]];
    if ((b - a).cross(c - a).dot(a + b + c) < 0) std::swap(tri[1], tri[2]);
  }
}

TriMesh subdivideOnce(const TriMesh& mesh) {
  TriMesh out;
  out.level = mesh.level + 1;
  out.vertices = mesh.vertices;
  out.triangles.reserve(mesh.triangles.size() * 4);

  // Midpoint cache keyed by the undirected vertex pair.
  std::unordered_map<std::uint64_t, Index> midpoint;
  midpoint.reserve(mesh.triangles.size() * 2);
  const auto midpointOf = [&](Index a, Index b) -> Index {
    const Index lo = std::min(a, b), hi = std::max(a, b);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint32_t>(hi);
    const auto it = midpoint.find(key);
    if (it != midpoint.end()) return it->second;
    const Vec3 m = (out.vertices[lo] + out.vertices[hi]).normalized();
    const Index id = static_cast<Index>(out.vertices.size());
    out.vertices.push_back(m);
    midpoint.emplace(key, id);
    return id;
  };

  for (const auto& tri : mesh.triangles) {
    const Index m01 = midpointOf(tri[0], tri[1]);
    const Index m12 = midpointOf(tri[1], tri[2]);
    const Index m20 = midpointOf(tri[2], tri[0]);
    out.triangles.push_back({tri[0], m01, m20});
    out.triangles.push_back({tri[1], m12, m01});
    out.triangles.push_back({tri[2], m20, m12});
    out.triangles.push_back({m01, m12, m20});
  }
  return out;
}

} // namespace

TriMesh buildTriMesh(int level) {
  if (level < 0) throw std::invalid_argument("buildTriMesh: negative level");
  // 30*4^L edges must fit in Index.
  if (level > 13) throw std::length_error("buildTriMesh: level too large for Index");
  TriMesh mesh = baseIcosahedron();
  for (int i = 0; i < level; ++i) mesh = subdivideOnce(mesh);
  orientOutward(mesh);
  return mesh;
}

std::vector<TriEdge> extractEdges(const TriMesh& mesh) {
  std::unordered_map<std::uint64_t, Index> seen;
  seen.reserve(mesh.triangles.size() * 2);
  std::vector<TriEdge> edges;
  edges.reserve(mesh.triangles.size() * 3 / 2);
  for (Index t = 0; t < static_cast<Index>(mesh.triangles.size()); ++t) {
    const auto& tri = mesh.triangles[t];
    for (int k = 0; k < 3; ++k) {
      const Index a = tri[k], b = tri[(k + 1) % 3];
      const Index lo = std::min(a, b), hi = std::max(a, b);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint32_t>(hi);
      const auto it = seen.find(key);
      if (it == seen.end()) {
        seen.emplace(key, static_cast<Index>(edges.size()));
        edges.push_back(TriEdge{lo, hi, t, kInvalidIndex});
      } else {
        edges[it->second].t1 = t;
      }
    }
  }
  return edges;
}

} // namespace grist::grid
