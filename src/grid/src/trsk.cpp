#include "grist/grid/trsk.hpp"

#include <cmath>

namespace grist::grid {

TrskWeights buildTrskWeights(const HexMesh& m) {
  TrskWeights w;
  w.offset.assign(m.nedges + 1, 0);

  // Count neighbors: all edges of both adjacent cells, excluding e itself.
  for (Index e = 0; e < m.nedges; ++e) {
    int count = 0;
    for (const Index c : m.edge_cell[e]) count += m.cellDegree(c) - 1;
    w.offset[e + 1] = w.offset[e] + count;
  }
  w.edge.assign(w.offset[m.nedges], kInvalidIndex);
  w.weight.assign(w.offset[m.nedges], 0.0);

#pragma omp parallel for schedule(static)
  for (Index e = 0; e < m.nedges; ++e) {
    Index slot = w.offset[e];
    // Side factor: the two per-cell circulation walks run in opposite
    // senses relative to the edge tangent, so the side the normal enters
    // (edge_cell[1]) contributes with +1 and the side it leaves with -1;
    // this orients the combined estimate along t = r x n. Validated by the
    // uniform-flow reconstruction test.
    for (int side = 0; side < 2; ++side) {
      const Index c = m.edge_cell[e][side];
      const double side_sign = side == 0 ? -1.0 : 1.0;
      const Index lo = m.cell_offset[c];
      const int deg = m.cellDegree(c);
      // Find e's position in the ccw ring.
      int pos = -1;
      for (int k = 0; k < deg; ++k) {
        if (m.cell_edges[lo + k] == e) pos = k;
      }
      // Walk the ring counterclockwise starting after e, accumulating the
      // kite-area fraction R_{c,v}/A_c of each dual vertex passed.
      double frac = 0.0;
      for (int step = 1; step < deg; ++step) {
        const int kprev = (pos + step - 1) % deg;
        const int kcur = (pos + step) % deg;
        const Index v = m.cell_vertices[lo + kprev];  // vertex between steps
        double kite = 0.0;
        for (int s = 0; s < 3; ++s) {
          if (m.vtx_cells[v][s] == c) kite = m.vtx_kite_area[v][s];
        }
        frac += kite / m.cell_area[c];
        const Index eprime = m.cell_edges[lo + kcur];
        // Orientation of e' w.r.t. cell c (outward = +1).
        const double nsign = m.edge_cell[eprime][0] == c ? 1.0 : -1.0;
        w.edge[slot] = eprime;
        w.weight[slot] =
            side_sign * nsign * (frac - 0.5) * m.edge_le[eprime] / m.edge_de[e];
        ++slot;
      }
    }
  }
  return w;
}

void reconstructTangential(const HexMesh& m, const TrskWeights& w,
                           const double* u_normal, double* u_tangent) {
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < m.nedges; ++e) {
    double acc = 0.0;
    for (Index k = w.offset[e]; k < w.offset[e + 1]; ++k) {
      acc += w.weight[k] * u_normal[w.edge[k]];
    }
    u_tangent[e] = acc;
  }
}

void perotCellVelocity(const HexMesh& m, const double* u_normal,
                       std::vector<Vec3>& cell_velocity) {
  cell_velocity.assign(m.ncells, Vec3{});
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < m.ncells; ++c) {
    Vec3 acc{};
    for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k) {
      const Index e = m.cell_edges[k];
      const Vec3 dx = (m.edge_x[e] - m.cell_x[c]) * m.radius;
      acc = acc + dx * (m.cell_edge_sign[k] * m.edge_le[e] * u_normal[e]);
    }
    cell_velocity[c] = acc * (1.0 / m.cell_area[c]);
  }
}

} // namespace grist::grid
