#include "grist/grid/hex_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace grist::grid {
namespace {

// Local tangent-plane basis at unit vector r, robust near the poles.
struct Basis {
  Vec3 east, north;
};
Basis basisAt(const Vec3& r) {
  const Vec3 helper = std::abs(r.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{1, 0, 0};
  const Vec3 east = helper.cross(r).normalized();
  return {east, r.cross(east)};
}

// Intersection of great-circle arcs (a0,a1) and (b0,b1), picked on the side
// of the arc midpoints. Falls back to the (a0,a1) midpoint if degenerate.
Vec3 arcIntersection(const Vec3& a0, const Vec3& a1, const Vec3& b0, const Vec3& b1) {
  const Vec3 na = a0.cross(a1);
  const Vec3 nb = b0.cross(b1);
  Vec3 dir = na.cross(nb);
  const double len = dir.norm();
  const Vec3 mid = (a0 + a1).normalized();
  if (len < 1e-14) return mid;
  dir = dir * (1.0 / len);
  if (dir.dot(mid) < 0) dir = dir * -1.0;
  return dir;
}

} // namespace

double HexMesh::meanSpacing() const {
  if (edge_de.empty()) return 0;
  return std::accumulate(edge_de.begin(), edge_de.end(), 0.0) /
         static_cast<double>(edge_de.size());
}
double HexMesh::minSpacing() const {
  return edge_de.empty() ? 0 : *std::min_element(edge_de.begin(), edge_de.end());
}
double HexMesh::maxSpacing() const {
  return edge_de.empty() ? 0 : *std::max_element(edge_de.begin(), edge_de.end());
}

HexMesh buildHexMesh(int level, double radius) {
  if (radius <= 0) throw std::invalid_argument("buildHexMesh: radius must be positive");
  const TriMesh tri = buildTriMesh(level);
  const std::vector<TriEdge> tedges = extractEdges(tri);

  HexMesh m;
  m.level = level;
  m.radius = radius;
  m.ncells = static_cast<Index>(tri.vertices.size());
  m.nedges = static_cast<Index>(tedges.size());
  m.nvertices = static_cast<Index>(tri.triangles.size());

  // ---- dual vertices: spherical circumcenters of the triangles ----
  m.vtx_x.resize(m.nvertices);
#pragma omp parallel for schedule(static)
  for (Index t = 0; t < m.nvertices; ++t) {
    const auto& tr = tri.triangles[t];
    m.vtx_x[t] = sphericalCircumcenter(tri.vertices[tr[0]], tri.vertices[tr[1]],
                                       tri.vertices[tr[2]]);
  }

  // ---- cells ----
  m.cell_x = tri.vertices;
  m.cell_ll.resize(m.ncells);
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < m.ncells; ++c) m.cell_ll[c] = toLonLat(m.cell_x[c]);

  // ---- edges: endpoints, geometry, orientation ----
  m.edge_cell.resize(m.nedges);
  m.edge_vertex.resize(m.nedges);
  m.edge_x.resize(m.nedges);
  m.edge_ll.resize(m.nedges);
  m.edge_de.resize(m.nedges);
  m.edge_le.resize(m.nedges);
  m.edge_normal.resize(m.nedges);
  m.edge_tangent.resize(m.nedges);
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < m.nedges; ++e) {
    const TriEdge& te = tedges[e];
    const Vec3& c0 = m.cell_x[te.v0];
    const Vec3& c1 = m.cell_x[te.v1];
    const Vec3& d0 = m.vtx_x[te.t0];
    const Vec3& d1 = m.vtx_x[te.t1];
    m.edge_cell[e] = {te.v0, te.v1};
    const Vec3 x = arcIntersection(c0, c1, d0, d1);
    m.edge_x[e] = x;
    m.edge_ll[e] = toLonLat(x);
    m.edge_de[e] = greatCircleDistance(c0, c1, radius);
    m.edge_le[e] = greatCircleDistance(d0, d1, radius);
    // Normal: direction c0 -> c1 projected onto the tangent plane at x.
    Vec3 n = (c1 - c0) - x * x.dot(c1 - c0);
    n = n.normalized();
    m.edge_normal[e] = n;
    const Vec3 t = x.cross(n);  // r x n: 90 deg ccw
    m.edge_tangent[e] = t;
    // Order the dual vertices so the tangent points vertex[0] -> vertex[1].
    if ((d1 - d0).dot(t) >= 0) {
      m.edge_vertex[e] = {te.t0, te.t1};
    } else {
      m.edge_vertex[e] = {te.t1, te.t0};
    }
  }

  // ---- per-cell incident edge lists (counterclockwise) ----
  std::vector<int> degree(m.ncells, 0);
  for (Index e = 0; e < m.nedges; ++e) {
    ++degree[m.edge_cell[e][0]];
    ++degree[m.edge_cell[e][1]];
  }
  m.cell_offset.assign(m.ncells + 1, 0);
  for (Index c = 0; c < m.ncells; ++c) m.cell_offset[c + 1] = m.cell_offset[c] + degree[c];
  const Index ring = m.cell_offset[m.ncells];
  m.cell_edges.assign(ring, kInvalidIndex);
  {
    std::vector<Index> fill(m.cell_offset.begin(), m.cell_offset.end() - 1);
    for (Index e = 0; e < m.nedges; ++e) {
      m.cell_edges[fill[m.edge_cell[e][0]]++] = e;
      m.cell_edges[fill[m.edge_cell[e][1]]++] = e;
    }
  }
  // Sort each ring by azimuth of the edge crossing point around the center.
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < m.ncells; ++c) {
    const Basis b = basisAt(m.cell_x[c]);
    const Index lo = m.cell_offset[c], hi = m.cell_offset[c + 1];
    std::sort(m.cell_edges.begin() + lo, m.cell_edges.begin() + hi,
              [&](Index ea, Index eb) {
                const Vec3 pa = m.edge_x[ea] - m.cell_x[c];
                const Vec3 pb = m.edge_x[eb] - m.cell_x[c];
                return std::atan2(b.north.dot(pa), b.east.dot(pa)) <
                       std::atan2(b.north.dot(pb), b.east.dot(pb));
              });
  }

  // ---- outward signs, neighbor cells, vertex rings ----
  m.cell_edge_sign.resize(ring);
  m.cell_cells.resize(ring);
  m.cell_vertices.assign(ring, kInvalidIndex);
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < m.ncells; ++c) {
    const Index lo = m.cell_offset[c], hi = m.cell_offset[c + 1];
    for (Index k = lo; k < hi; ++k) {
      const Index e = m.cell_edges[k];
      const bool outward = (m.edge_cell[e][0] == c);
      m.cell_edge_sign[k] = outward ? 1.0 : -1.0;
      m.cell_cells[k] = outward ? m.edge_cell[e][1] : m.edge_cell[e][0];
      // Vertex k sits between edges k and k+1: their shared dual vertex.
      const Index enext = m.cell_edges[k + 1 < hi ? k + 1 : lo];
      for (const Index va : m.edge_vertex[e]) {
        if (va == m.edge_vertex[enext][0] || va == m.edge_vertex[enext][1]) {
          m.cell_vertices[k] = va;
        }
      }
    }
  }

  // ---- dual-vertex data: corner cells, incident edges, circulation signs ----
  m.vtx_edges.assign(m.nvertices, {kInvalidIndex, kInvalidIndex, kInvalidIndex});
  m.vtx_cells.assign(m.nvertices, {kInvalidIndex, kInvalidIndex, kInvalidIndex});
  m.vtx_edge_sign.assign(m.nvertices, {0, 0, 0});
  m.vtx_kite_area.assign(m.nvertices, {0, 0, 0});
  {
    std::vector<int> nfill(m.nvertices, 0);
    for (Index e = 0; e < m.nedges; ++e) {
      for (const Index v : m.edge_vertex[e]) {
        const int slot = nfill[v]++;
        m.vtx_edges[v][slot] = e;
      }
    }
  }
#pragma omp parallel for schedule(static)
  for (Index v = 0; v < m.nvertices; ++v) {
    const auto& tr = tri.triangles[v];
    m.vtx_cells[v] = {tr[0], tr[1], tr[2]};
    for (int k = 0; k < 3; ++k) {
      const Index e = m.vtx_edges[v][k];
      // ccw traversal direction of the dual-cell boundary at the crossing
      // point: rotate the outward offset by 90 degrees.
      const Vec3 offset = m.edge_x[e] - m.vtx_x[v];
      const Vec3 ccw = m.edge_x[e].cross(offset);
      m.vtx_edge_sign[v][k] = m.edge_normal[e].dot(ccw) >= 0 ? 1.0 : -1.0;
    }
  }

  // ---- kite areas; cell and vertex areas are their exact sums so that the
  //      TRSK partition-of-unity identities hold to rounding error ----
  m.cell_area.assign(m.ncells, 0.0);
  m.vtx_area.assign(m.nvertices, 0.0);
  const double r2 = radius * radius;
  for (Index c = 0; c < m.ncells; ++c) {
    const Index lo = m.cell_offset[c], hi = m.cell_offset[c + 1];
    for (Index k = lo; k < hi; ++k) {
      const Index e0 = m.cell_edges[k];
      const Index e1 = m.cell_edges[k + 1 < hi ? k + 1 : lo];
      const Index v = m.cell_vertices[k];
      // Kite (c, x_e0, v, x_e1): split into two spherical triangles.
      const double kite =
          (std::abs(sphericalTriangleArea(m.cell_x[c], m.edge_x[e0], m.vtx_x[v])) +
           std::abs(sphericalTriangleArea(m.cell_x[c], m.vtx_x[v], m.edge_x[e1]))) *
          r2;
      m.cell_area[c] += kite;
      m.vtx_area[v] += kite;
      for (int s = 0; s < 3; ++s) {
        if (m.vtx_cells[v][s] == c) m.vtx_kite_area[v][s] = kite;
      }
    }
  }
  return m;
}

CellGraph cellGraph(const HexMesh& mesh) {
  CellGraph g;
  g.offset = mesh.cell_offset;
  g.neighbor = mesh.cell_cells;
  return g;
}

} // namespace grist::grid
