// Error norms for the mixed-precision acceptance procedure (paper
// section 3.4.1): deviations of surface pressure (ps) and relative
// vorticity (vor) are measured with the relative L2 norm against the
// double-precision gold standard, with a 5% acceptance threshold.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace grist::precision {

/// || a - b ||_2 / || b ||_2 ; b is the gold standard. Returns the absolute
/// L2 of a-b if ||b|| == 0.
double relativeL2(const double* a, const double* b, std::size_t n);
double relativeL2(const std::vector<double>& a, const std::vector<double>& b);

/// max_i |a_i - b_i| / (max_i |b_i|), a scale-free infinity-norm check.
double relativeLinf(const std::vector<double>& a, const std::vector<double>& b);

/// The paper's acceptance gate: every tracked variable must stay within
/// `threshold` (default 5%) in relative L2.
class PrecisionGate {
 public:
  explicit PrecisionGate(double threshold = 0.05) : threshold_(threshold) {}

  /// Record one comparison; returns the norm.
  double check(const std::string& variable, const std::vector<double>& test,
               const std::vector<double>& gold);

  bool passed() const { return passed_; }
  double threshold() const { return threshold_; }
  /// variable -> worst relative L2 seen.
  const std::vector<std::pair<std::string, double>>& records() const {
    return records_;
  }

 private:
  double threshold_;
  bool passed_ = true;
  std::vector<std::pair<std::string, double>> records_;
};

} // namespace grist::precision
