// Mixed-precision support (paper section 3.4.3). GRIST switches a custom
// Fortran kind `ns` between 32- and 64-bit; the C++ analog is a template
// parameter on every dycore kernel. Precision-INSENSITIVE terms (advective
// terms, high-order operators, the whole tracer equation) compute in NS;
// precision-SENSITIVE terms (pressure gradient, gravity, the accumulated
// mass flux delta-pi*V) stay in double regardless of NS (section 3.4.2).
#pragma once

#include <type_traits>

namespace grist::precision {

/// Runtime selector mirroring the build-time choice of `ns`.
enum class NsMode {
  kDouble,  ///< ns = 64-bit: bitwise-identical to the original code
  kSingle,  ///< ns = 32-bit: mixed-precision fast path
};

inline const char* name(NsMode mode) {
  return mode == NsMode::kDouble ? "DP" : "MIX";
}

/// Concept for the template parameter carried by mixed-precision kernels.
template <typename T>
concept NsReal = std::is_same_v<T, float> || std::is_same_v<T, double>;

/// On-the-fly conversion helper: double -> NS (possibly lossy, by design).
template <NsReal NS>
constexpr NS toNs(double value) {
  return static_cast<NS>(value);
}

} // namespace grist::precision
