#include "grist/precision/norms.hpp"

#include <cmath>
#include <stdexcept>

namespace grist::precision {

double relativeL2(const double* a, const double* b, std::size_t n) {
  double diff2 = 0.0, ref2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    diff2 += d * d;
    ref2 += b[i] * b[i];
  }
  if (ref2 == 0.0) return std::sqrt(diff2);
  return std::sqrt(diff2 / ref2);
}

double relativeL2(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("relativeL2: size mismatch");
  return relativeL2(a.data(), b.data(), a.size());
}

double relativeLinf(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("relativeLinf: size mismatch");
  double max_diff = 0.0, max_ref = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
    max_ref = std::max(max_ref, std::abs(b[i]));
  }
  if (max_ref == 0.0) return max_diff;
  return max_diff / max_ref;
}

double PrecisionGate::check(const std::string& variable,
                            const std::vector<double>& test,
                            const std::vector<double>& gold) {
  const double norm = relativeL2(test, gold);
  records_.emplace_back(variable, norm);
  if (!(norm <= threshold_)) passed_ = false;
  return norm;
}

} // namespace grist::precision
