#include "grist/io/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "grist/io/restart.hpp"

namespace grist::io {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CRC-32 (table-driven, reflected polynomial).

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

// ---------------------------------------------------------------------------
// Byte-buffer (de)serialization. All fields are native little-endian PODs;
// the format is host-endianness (every target this repo runs on is LE).

struct Writer {
  std::vector<char> buf;
  template <typename T>
  void pod(const T& v) {
    const char* p = reinterpret_cast<const char*>(&v);
    buf.insert(buf.end(), p, p + sizeof(T));
  }
  void doubles(const std::vector<double>& v) {
    const char* p = reinterpret_cast<const char*>(v.data());
    buf.insert(buf.end(), p, p + v.size() * sizeof(double));
  }
};

struct Reader {
  const char* p;
  const char* end;
  SectionId section;
  const std::string& path;
  Reader(const std::vector<char>& b, SectionId id, const std::string& path_)
      : p(b.data()), end(b.data() + b.size()), section(id), path(path_) {}
  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("snapshot: truncated section " +
                               std::string(sectionName(section)) + " in " + path);
    }
  }
  template <typename T>
  T pod() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
  std::vector<double> doubles(std::size_t n) {
    need(n * sizeof(double));
    std::vector<double> v(n);
    std::memcpy(v.data(), p, n * sizeof(double));
    p += n * sizeof(double);
    return v;
  }
  void finish() const {
    if (p != end) {
      throw std::runtime_error("snapshot: trailing bytes in section " +
                               std::string(sectionName(section)) + " in " + path);
    }
  }
};

// On-disk section table entry (32 bytes).
struct TableEntry {
  std::uint32_t id = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(TableEntry) == 32);

constexpr std::size_t kHeaderBytes = sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t);

std::vector<char> serializeState(const StateSection& s) {
  Writer w;
  w.pod(s.ncells);
  w.pod(s.nedges);
  w.pod(s.nlev);
  w.pod(s.ntracers);
  w.doubles(s.delp);
  w.doubles(s.u);
  w.doubles(s.w);
  w.doubles(s.theta);
  w.doubles(s.phi);
  for (const auto& t : s.tracers) w.doubles(t);
  return std::move(w.buf);
}

StateSection parseState(const std::vector<char>& buf, const std::string& path) {
  Reader r(buf, SectionId::kState, path);
  StateSection s;
  s.ncells = r.pod<std::int64_t>();
  s.nedges = r.pod<std::int64_t>();
  s.nlev = r.pod<std::int32_t>();
  s.ntracers = r.pod<std::int32_t>();
  if (s.ncells < 0 || s.nedges < 0 || s.nlev < 0 || s.ntracers < 0) {
    throw std::runtime_error("snapshot: negative shape in section STATE in " + path);
  }
  const std::size_t nc = static_cast<std::size_t>(s.ncells);
  const std::size_t ne = static_cast<std::size_t>(s.nedges);
  const std::size_t lev = static_cast<std::size_t>(s.nlev);
  s.delp = r.doubles(nc * lev);
  s.u = r.doubles(ne * lev);
  s.w = r.doubles(nc * (lev + 1));
  s.theta = r.doubles(nc * lev);
  s.phi = r.doubles(nc * (lev + 1));
  s.tracers.reserve(static_cast<std::size_t>(s.ntracers));
  for (std::int32_t t = 0; t < s.ntracers; ++t) s.tracers.push_back(r.doubles(nc * lev));
  r.finish();
  return s;
}

std::vector<char> serializeLand(const std::vector<double>& tskin) {
  Writer w;
  w.pod(static_cast<std::int64_t>(tskin.size()));
  w.doubles(tskin);
  return std::move(w.buf);
}

std::vector<double> parseLand(const std::vector<char>& buf, const std::string& path) {
  Reader r(buf, SectionId::kLand, path);
  const auto n = r.pod<std::int64_t>();
  if (n < 0) throw std::runtime_error("snapshot: negative shape in section LAND in " + path);
  auto v = r.doubles(static_cast<std::size_t>(n));
  r.finish();
  return v;
}

std::vector<char> serializeClock(const ClockSection& c) {
  Writer w;
  w.pod(c.sim_seconds);
  w.pod(c.dyn_steps);
  return std::move(w.buf);
}

ClockSection parseClock(const std::vector<char>& buf, const std::string& path) {
  Reader r(buf, SectionId::kClock, path);
  ClockSection c;
  c.sim_seconds = r.pod<double>();
  c.dyn_steps = r.pod<std::int64_t>();
  r.finish();
  return c;
}

std::vector<char> serializeDiag(const DiagSection& d) {
  Writer w;
  w.pod(d.ncells);
  w.pod(d.nedges);
  w.pod(d.nlev);
  w.pod(d.acc_steps);
  w.doubles(d.acc_flux);
  w.doubles(d.delp_at_tracer_start);
  w.doubles(d.precip_accum);
  return std::move(w.buf);
}

DiagSection parseDiag(const std::vector<char>& buf, const std::string& path) {
  Reader r(buf, SectionId::kDiag, path);
  DiagSection d;
  d.ncells = r.pod<std::int64_t>();
  d.nedges = r.pod<std::int64_t>();
  d.nlev = r.pod<std::int32_t>();
  d.acc_steps = r.pod<std::int32_t>();
  if (d.ncells < 0 || d.nedges < 0 || d.nlev < 0) {
    throw std::runtime_error("snapshot: negative shape in section DIAG in " + path);
  }
  const std::size_t nc = static_cast<std::size_t>(d.ncells);
  const std::size_t ne = static_cast<std::size_t>(d.nedges);
  const std::size_t lev = static_cast<std::size_t>(d.nlev);
  d.acc_flux = r.doubles(ne * lev);
  d.delp_at_tracer_start = r.doubles(nc * lev);
  d.precip_accum = r.doubles(nc);
  r.finish();
  return d;
}

std::vector<char> serializeMl(const MlWeightsSection& m) {
  Writer w;
  w.pod(m.q1q2_fingerprint);
  w.pod(m.rad_fingerprint);
  w.pod(m.q1q2_bf16_version);
  w.pod(m.q1q2_int8_version);
  w.pod(m.rad_bf16_version);
  w.pod(m.rad_int8_version);
  return std::move(w.buf);
}

MlWeightsSection parseMl(const std::vector<char>& buf, const std::string& path) {
  Reader r(buf, SectionId::kMlWeights, path);
  MlWeightsSection m;
  m.q1q2_fingerprint = r.pod<std::uint64_t>();
  m.rad_fingerprint = r.pod<std::uint64_t>();
  m.q1q2_bf16_version = r.pod<std::uint64_t>();
  m.q1q2_int8_version = r.pod<std::uint64_t>();
  m.rad_bf16_version = r.pod<std::uint64_t>();
  m.rad_int8_version = r.pod<std::uint64_t>();
  r.finish();
  return m;
}

std::vector<char> serializeConfig(const ConfigSection& c) {
  Writer w;
  w.pod(c.grid_level);
  w.pod(c.writer_nranks);
  w.pod(c.nlev);
  w.pod(c.ntracers);
  w.pod(c.trac_interval);
  w.pod(c.phy_interval);
  w.pod(c.dt);
  w.pod(c.ns_single);
  w.pod(c.partition_fingerprint);
  return std::move(w.buf);
}

ConfigSection parseConfig(const std::vector<char>& buf, const std::string& path) {
  Reader r(buf, SectionId::kConfig, path);
  ConfigSection c;
  c.grid_level = r.pod<std::int32_t>();
  c.writer_nranks = r.pod<std::int32_t>();
  c.nlev = r.pod<std::int32_t>();
  c.ntracers = r.pod<std::int32_t>();
  c.trac_interval = r.pod<std::int32_t>();
  c.phy_interval = r.pod<std::int32_t>();
  c.dt = r.pod<double>();
  c.ns_single = r.pod<std::uint8_t>();
  c.partition_fingerprint = r.pod<std::uint64_t>();
  r.finish();
  return c;
}

/// Read a whole file; distinguishes "cannot open" from "empty".
std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("snapshot: cannot open " + path);
  const std::streamsize n = in.tellg();
  in.seekg(0);
  std::vector<char> buf(static_cast<std::size_t>(n));
  if (n > 0) in.read(buf.data(), n);
  if (!in) throw std::runtime_error("snapshot: read failed for " + path);
  return buf;
}

/// Parse header + table from a raw file image (no payload validation).
SnapshotInfo parseTable(const std::vector<char>& file, const std::string& path) {
  SnapshotInfo info;
  if (file.size() < kHeaderBytes) {
    throw std::runtime_error("snapshot: truncated header in " + path);
  }
  std::uint64_t magic = 0;
  std::memcpy(&magic, file.data(), sizeof magic);
  if (magic != Snapshot::kMagic) {
    throw std::runtime_error("snapshot: bad magic in " + path);
  }
  std::uint32_t version = 0, nsections = 0;
  std::memcpy(&version, file.data() + 8, sizeof version);
  std::memcpy(&nsections, file.data() + 12, sizeof nsections);
  if (version != Snapshot::kFormatVersion) {
    throw std::runtime_error("snapshot: format version " + std::to_string(version) +
                             " unsupported (this build reads version " +
                             std::to_string(Snapshot::kFormatVersion) + ") in " + path);
  }
  info.format_version = version;
  const std::size_t table_bytes = static_cast<std::size_t>(nsections) * sizeof(TableEntry);
  if (file.size() < kHeaderBytes + table_bytes) {
    throw std::runtime_error("snapshot: truncated section table in " + path);
  }
  for (std::uint32_t i = 0; i < nsections; ++i) {
    TableEntry e;
    std::memcpy(&e, file.data() + kHeaderBytes + i * sizeof(TableEntry), sizeof e);
    info.sections.push_back({static_cast<SectionId>(e.id), e.offset, e.bytes, e.crc});
  }
  return info;
}

/// Extract + checksum one section's payload.
std::vector<char> sectionPayload(const std::vector<char>& file,
                                 const SnapshotInfo::Entry& e,
                                 const std::string& path) {
  const char* name = sectionName(e.id);
  if (e.offset > file.size() || e.bytes > file.size() - e.offset) {
    throw std::runtime_error("snapshot: truncated section " + std::string(name) +
                             " in " + path);
  }
  std::vector<char> buf(file.begin() + static_cast<std::ptrdiff_t>(e.offset),
                        file.begin() + static_cast<std::ptrdiff_t>(e.offset + e.bytes));
  if (crc32(buf.data(), buf.size()) != e.crc) {
    throw std::runtime_error("snapshot: CRC mismatch in section " +
                             std::string(name) + " in " + path);
  }
  return buf;
}

/// Legacy GRISTSW1 (io/restart.hpp writeRestart) -> STATE + LAND + CLOCK.
Snapshot readLegacy(const std::string& path) {
  dycore::State state;
  std::vector<double> tskin;
  // readRestartHeader gives the shapes; build a mesh-free state of exactly
  // those shapes so readRestart's validation passes.
  const RestartHeader h = readRestartHeader(path);
  state.nlev = h.nlev;
  state.delp = parallel::Field(h.ncells, h.nlev);
  state.theta = parallel::Field(h.ncells, h.nlev);
  state.w = parallel::Field(h.ncells, h.nlev + 1);
  state.phi = parallel::Field(h.ncells, h.nlev + 1);
  state.u = parallel::Field(h.nedges, h.nlev);
  state.tracers.assign(static_cast<std::size_t>(h.ntracers),
                       parallel::Field(h.ncells, h.nlev));
  readRestart(path, state, tskin);
  Snapshot snap;
  snap.state = StateSection::capture(state);
  snap.land = std::move(tskin);
  ClockSection clock;
  clock.sim_seconds = h.sim_seconds;
  clock.dyn_steps = -1;  // unknown in the legacy format
  snap.clock = clock;
  return snap;
}

bool isLegacyMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  return in && magic == kLegacyRestartMagic;
}

} // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* sectionName(SectionId id) {
  switch (id) {
    case SectionId::kState: return "STATE";
    case SectionId::kLand: return "LAND";
    case SectionId::kClock: return "CLOCK";
    case SectionId::kDiag: return "DIAG";
    case SectionId::kMlWeights: return "MLWT";
    case SectionId::kConfig: return "CONFIG";
  }
  return "UNKNOWN";
}

bool SnapshotInfo::has(SectionId id) const {
  for (const Entry& e : sections) {
    if (e.id == id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// StateSection <-> dycore::State

StateSection StateSection::capture(const dycore::State& g) {
  StateSection s;
  s.ncells = g.delp.entities();
  s.nedges = g.u.entities();
  s.nlev = g.nlev;
  s.ntracers = static_cast<std::int32_t>(g.tracers.size());
  const auto copy = [](const parallel::Field& f) {
    return std::vector<double>(f.data(), f.data() + f.size());
  };
  s.delp = copy(g.delp);
  s.u = copy(g.u);
  s.w = copy(g.w);
  s.theta = copy(g.theta);
  s.phi = copy(g.phi);
  s.tracers.reserve(g.tracers.size());
  for (const auto& t : g.tracers) s.tracers.push_back(copy(t));
  return s;
}

void StateSection::restoreTo(dycore::State& g) const {
  const auto fail = [](const char* dim, long long have, long long want) {
    throw std::runtime_error(
        "snapshot: STATE shape mismatch: " + std::string(dim) + " " +
        std::to_string(have) + " (checkpoint) vs " + std::to_string(want) +
        " (run)");
  };
  if (ncells != g.delp.entities()) fail("ncells", ncells, g.delp.entities());
  if (nedges != g.u.entities()) fail("nedges", nedges, g.u.entities());
  if (nlev != g.nlev) fail("nlev", nlev, g.nlev);
  if (ntracers != static_cast<std::int32_t>(g.tracers.size())) {
    fail("ntracers", ntracers, static_cast<long long>(g.tracers.size()));
  }
  const auto copy = [](const std::vector<double>& v, parallel::Field& f) {
    std::memcpy(f.data(), v.data(), v.size() * sizeof(double));
  };
  copy(delp, g.delp);
  copy(u, g.u);
  copy(w, g.w);
  copy(theta, g.theta);
  copy(phi, g.phi);
  for (std::size_t t = 0; t < tracers.size(); ++t) copy(tracers[t], g.tracers[t]);
}

dycore::State StateSection::toState(const grid::HexMesh& mesh) const {
  dycore::State g(mesh, nlev, ntracers);
  restoreTo(g);
  return g;
}

// ---------------------------------------------------------------------------
// Snapshot write/read

void Snapshot::write(const std::string& path) const {
  // Serialize every present section.
  std::vector<std::pair<SectionId, std::vector<char>>> parts;
  if (state) parts.emplace_back(SectionId::kState, serializeState(*state));
  if (land) parts.emplace_back(SectionId::kLand, serializeLand(*land));
  if (clock) parts.emplace_back(SectionId::kClock, serializeClock(*clock));
  if (diag) parts.emplace_back(SectionId::kDiag, serializeDiag(*diag));
  if (ml) parts.emplace_back(SectionId::kMlWeights, serializeMl(*ml));
  if (config) parts.emplace_back(SectionId::kConfig, serializeConfig(*config));

  Writer out;
  out.pod(kMagic);
  out.pod(kFormatVersion);
  out.pod(static_cast<std::uint32_t>(parts.size()));
  std::uint64_t offset = kHeaderBytes + parts.size() * sizeof(TableEntry);
  for (const auto& [id, buf] : parts) {
    TableEntry e;
    e.id = static_cast<std::uint32_t>(id);
    e.offset = offset;
    e.bytes = buf.size();
    e.crc = crc32(buf.data(), buf.size());
    out.pod(e);
    offset += buf.size();
  }
  for (const auto& [id, buf] : parts) {
    out.buf.insert(out.buf.end(), buf.begin(), buf.end());
  }

  // Atomic publish: tmp + fsync + rename. A crash at any point leaves either
  // the previous `path` intact or a dangling .tmp that the next write
  // truncates over.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("snapshot: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  const char* p = out.buf.data();
  std::size_t left = out.buf.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("snapshot: write failed for " + tmp + ": " +
                               std::strerror(err));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    throw std::runtime_error("snapshot: fsync failed for " + tmp + ": " +
                             std::strerror(err));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("snapshot: rename to " + path + " failed: " +
                             std::strerror(err));
  }
  // Make the rename itself durable (fsync the containing directory).
  const fs::path parent = fs::path(path).parent_path();
  const std::string dirname = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dirname.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

SnapshotInfo Snapshot::peek(const std::string& path) {
  if (isLegacyMagic(path)) {
    const RestartHeader h = readRestartHeader(path);
    (void)h;
    SnapshotInfo info;
    info.format_version = 1;
    info.legacy = true;
    return info;
  }
  return parseTable(slurp(path), path);
}

Snapshot Snapshot::read(const std::string& path) {
  if (isLegacyMagic(path)) return readLegacy(path);
  const std::vector<char> file = slurp(path);
  const SnapshotInfo info = parseTable(file, path);
  Snapshot snap;
  for (const SnapshotInfo::Entry& e : info.sections) {
    const std::vector<char> buf = sectionPayload(file, e, path);
    switch (e.id) {
      case SectionId::kState: snap.state = parseState(buf, path); break;
      case SectionId::kLand: snap.land = parseLand(buf, path); break;
      case SectionId::kClock: snap.clock = parseClock(buf, path); break;
      case SectionId::kDiag: snap.diag = parseDiag(buf, path); break;
      case SectionId::kMlWeights: snap.ml = parseMl(buf, path); break;
      case SectionId::kConfig: snap.config = parseConfig(buf, path); break;
      default:
        // Unknown sections are skipped (forward-compatible readers), but
        // their CRC was still validated above.
        break;
    }
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Checkpoint rotation

std::string checkpointPath(const std::string& dir, long step) {
  char name[64];
  std::snprintf(name, sizeof name, "ckpt-%012ld.grist", step);
  return (fs::path(dir) / name).string();
}

std::string writeCheckpoint(const std::string& dir, const Snapshot& snap,
                            long step, int keep) {
  if (keep < 1) throw std::invalid_argument("writeCheckpoint: keep must be >= 1");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("writeCheckpoint: cannot create " + dir + ": " +
                             ec.message());
  }
  const std::string path = checkpointPath(dir, step);
  snap.write(path);
  // Keep-last-`keep` rotation: prune older ckpt-*.grist (never the one just
  // written -- lexical order equals step order by construction).
  std::vector<std::string> ckpts;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".grist") == 0) {
      ckpts.push_back(entry.path().string());
    }
  }
  std::sort(ckpts.begin(), ckpts.end());
  for (std::size_t i = 0; i + static_cast<std::size_t>(keep) < ckpts.size(); ++i) {
    fs::remove(ckpts[i], ec);
  }
  return path;
}

std::string latestCheckpoint(const std::string& dir) {
  std::error_code ec;
  std::string best;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".grist") == 0) {
      const std::string p = entry.path().string();
      if (p > best) best = p;
    }
  }
  return best;
}

} // namespace grist::io
