#include "grist/io/table.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace grist::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::addRow: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::string underline;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    underline += std::string(width[c], '-') + "  ";
  }
  os << underline << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

} // namespace grist::io
