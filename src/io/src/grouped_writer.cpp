#include "grist/io/grouped_writer.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace grist::io {
namespace {

std::string groupFile(const std::string& dir, const std::string& name, Index group) {
  return dir + "/" + name + ".g" + std::to_string(group) + ".bin";
}

} // namespace

GroupedWriter::GroupedWriter(std::string directory, Index nranks, Index group_size)
    : dir_(std::move(directory)), nranks_(nranks), group_size_(group_size) {
  if (nranks < 1 || group_size < 1) {
    throw std::invalid_argument("GroupedWriter: bad nranks/group_size");
  }
  ngroups_ = (nranks + group_size - 1) / group_size;
  std::filesystem::create_directories(dir_);
}

void GroupedWriter::writeCellField(const std::string& name,
                                   const parallel::Decomposition& decomp,
                                   const std::vector<parallel::Field>& fields) {
  if (static_cast<Index>(fields.size()) != nranks_ || decomp.nranks != nranks_) {
    throw std::invalid_argument("GroupedWriter: rank count mismatch");
  }
  for (Index g = 0; g < ngroups_; ++g) {
    const Index first = g * group_size_;
    const Index last = std::min(nranks_, first + group_size_);
    // Aggregation phase: members ship (global_id, values) records to the
    // group leader; in-process this is a buffer append, but each member is
    // one accounted message.
    std::vector<std::int32_t> ids;
    std::vector<double> values;
    int ncomp = fields[first].components();
    for (Index r = first; r < last; ++r) {
      const auto& dom = decomp.domains[r];
      const auto& f = fields[r];
      if (f.components() != ncomp) {
        throw std::invalid_argument("GroupedWriter: inconsistent components");
      }
      for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
        ids.push_back(dom.cell_global[lc]);
        for (int k = 0; k < ncomp; ++k) values.push_back(f(lc, k));
      }
      if (r != first) ++stats_.aggregation_messages;
    }
    // Single write per group.
    std::ofstream out(groupFile(dir_, name, g), std::ios::binary);
    if (!out) throw std::runtime_error("GroupedWriter: cannot open group file");
    ++stats_.file_opens;
    const std::int64_t count = static_cast<std::int64_t>(ids.size());
    const std::int64_t comp64 = ncomp;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(&comp64), sizeof(comp64));
    out.write(reinterpret_cast<const char*>(ids.data()),
              static_cast<std::streamsize>(ids.size() * sizeof(std::int32_t)));
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(double)));
    ++stats_.write_calls;
    stats_.bytes += static_cast<std::int64_t>(16 + ids.size() * sizeof(std::int32_t) +
                                              values.size() * sizeof(double));
  }
}

std::vector<double> GroupedWriter::readCellField(const std::string& name, Index ncells,
                                                 int ncomp) const {
  std::vector<double> out(static_cast<std::size_t>(ncells) * ncomp);
  std::vector<bool> seen(ncells, false);
  for (Index g = 0; g < ngroups_; ++g) {
    std::ifstream in(groupFile(dir_, name, g), std::ios::binary);
    if (!in) throw std::runtime_error("GroupedWriter: missing group file");
    std::int64_t count = 0, comp64 = 0;
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    in.read(reinterpret_cast<char*>(&comp64), sizeof(comp64));
    if (comp64 != ncomp) throw std::runtime_error("GroupedWriter: component mismatch");
    std::vector<std::int32_t> ids(count);
    std::vector<double> values(count * comp64);
    in.read(reinterpret_cast<char*>(ids.data()),
            static_cast<std::streamsize>(ids.size() * sizeof(std::int32_t)));
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
    for (std::int64_t i = 0; i < count; ++i) {
      const Index c = ids[i];
      if (c < 0 || c >= ncells) throw std::runtime_error("GroupedWriter: bad cell id");
      seen[c] = true;
      for (int k = 0; k < ncomp; ++k) out[static_cast<std::size_t>(c) * ncomp + k] =
          values[static_cast<std::size_t>(i) * ncomp + k];
    }
  }
  for (Index c = 0; c < ncells; ++c) {
    if (!seen[c]) throw std::runtime_error("GroupedWriter: incomplete field");
  }
  return out;
}

} // namespace grist::io
