#include "grist/io/restart.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace grist::io {
namespace {

constexpr std::uint64_t kMagic = kLegacyRestartMagic;  // "GRISTSW1"

void writeField(std::ofstream& out, const parallel::Field& f) {
  out.write(reinterpret_cast<const char*>(f.data()),
            static_cast<std::streamsize>(f.size() * sizeof(double)));
}

void readField(std::ifstream& in, parallel::Field& f) {
  in.read(reinterpret_cast<char*>(f.data()),
          static_cast<std::streamsize>(f.size() * sizeof(double)));
  if (!in) throw std::runtime_error("restart: truncated field payload");
}

} // namespace

void writeRestart(const std::string& path, const dycore::State& state,
                  const std::vector<double>& tskin, double sim_seconds) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("restart: cannot open " + path);
  const std::uint64_t magic = kMagic;
  const std::int64_t ncells = state.delp.entities();
  const std::int64_t nedges = state.u.entities();
  const std::int64_t nlev = state.nlev;
  const std::int64_t ntracers = static_cast<std::int64_t>(state.tracers.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&ncells), sizeof ncells);
  out.write(reinterpret_cast<const char*>(&nedges), sizeof nedges);
  out.write(reinterpret_cast<const char*>(&nlev), sizeof nlev);
  out.write(reinterpret_cast<const char*>(&ntracers), sizeof ntracers);
  out.write(reinterpret_cast<const char*>(&sim_seconds), sizeof sim_seconds);
  writeField(out, state.delp);
  writeField(out, state.u);
  writeField(out, state.w);
  writeField(out, state.theta);
  writeField(out, state.phi);
  for (const auto& tracer : state.tracers) writeField(out, tracer);
  out.write(reinterpret_cast<const char*>(tskin.data()),
            static_cast<std::streamsize>(tskin.size() * sizeof(double)));
  if (!out) throw std::runtime_error("restart: write failed for " + path);
}

RestartHeader readRestartHeader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("restart: cannot open " + path);
  std::uint64_t magic = 0;
  std::int64_t ncells = 0, nedges = 0, nlev = 0, ntracers = 0;
  double sim_seconds = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (magic != kMagic) throw std::runtime_error("restart: bad magic in " + path);
  in.read(reinterpret_cast<char*>(&ncells), sizeof ncells);
  in.read(reinterpret_cast<char*>(&nedges), sizeof nedges);
  in.read(reinterpret_cast<char*>(&nlev), sizeof nlev);
  in.read(reinterpret_cast<char*>(&ntracers), sizeof ntracers);
  in.read(reinterpret_cast<char*>(&sim_seconds), sizeof sim_seconds);
  if (!in) throw std::runtime_error("restart: truncated header in " + path);
  RestartHeader h;
  h.ncells = static_cast<Index>(ncells);
  h.nedges = static_cast<Index>(nedges);
  h.nlev = static_cast<int>(nlev);
  h.ntracers = static_cast<int>(ntracers);
  h.sim_seconds = sim_seconds;
  return h;
}

RestartHeader readRestart(const std::string& path, dycore::State& state,
                          std::vector<double>& tskin) {
  const RestartHeader h = readRestartHeader(path);
  if (h.ncells != state.delp.entities() || h.nedges != state.u.entities() ||
      h.nlev != state.nlev ||
      h.ntracers != static_cast<int>(state.tracers.size())) {
    throw std::runtime_error("restart: shape mismatch for " + path);
  }
  std::ifstream in(path, std::ios::binary);
  in.seekg(sizeof(std::uint64_t) + 4 * sizeof(std::int64_t) + sizeof(double));
  readField(in, state.delp);
  readField(in, state.u);
  readField(in, state.w);
  readField(in, state.theta);
  readField(in, state.phi);
  for (auto& tracer : state.tracers) readField(in, tracer);
  tskin.resize(h.ncells);
  in.read(reinterpret_cast<char*>(tskin.data()),
          static_cast<std::streamsize>(tskin.size() * sizeof(double)));
  if (!in) throw std::runtime_error("restart: truncated payload in " + path);
  return h;
}

} // namespace grist::io
