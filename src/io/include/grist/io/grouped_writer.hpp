// Grouped parallel output (paper section 3.1.3): with hundreds of thousands
// of MPI processes, one-file-per-rank I/O collapses the filesystem, so GRIST
// groups ranks and lets one aggregator per group perform the actual write.
// Here the "filesystem" is real (local files), the grouping logic is the
// system under test, and the op/byte accounting feeds the scaling analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grist/parallel/decompose.hpp"
#include "grist/parallel/field.hpp"

namespace grist::io {

struct IoStats {
  std::int64_t file_opens = 0;
  std::int64_t write_calls = 0;
  std::int64_t bytes = 0;
  std::int64_t aggregation_messages = 0;  ///< rank -> aggregator transfers
};

class GroupedWriter {
 public:
  /// `group_size` ranks share one aggregator (the first rank of the group).
  GroupedWriter(std::string directory, Index nranks, Index group_size);

  /// Write one named snapshot of a per-rank cell field: every rank
  /// contributes its OWNED cells (with their global ids), aggregators merge
  /// and write one binary file per group:
  ///   int64 count, then (int32 global_id, float64 value[ncomp]) records.
  void writeCellField(const std::string& name,
                      const parallel::Decomposition& decomp,
                      const std::vector<parallel::Field>& per_rank_fields);

  /// Read a snapshot back into one global array (ncomp from the write).
  /// Returns value[cell * ncomp + k]. Throws if any cell is missing.
  std::vector<double> readCellField(const std::string& name, Index ncells,
                                    int ncomp) const;

  const IoStats& stats() const { return stats_; }
  Index groups() const { return ngroups_; }

 private:
  std::string dir_;
  Index nranks_;
  Index group_size_;
  Index ngroups_;
  IoStats stats_;
};

} // namespace grist::io
