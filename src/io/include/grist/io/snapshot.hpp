// Versioned, sectioned snapshot format -- the elastic checkpoint/restart
// layer (the operational requirement the 40M-core "eight-year journey"
// paper repeatedly names for year-scale coupled runs).
//
// A snapshot is a single binary file:
//
//   u64 magic "GRISTSW2" | u32 format version | u32 nsections
//   section table: nsections x { id, offset, bytes, crc32 }
//   section payloads
//
// Sections (each optional, each independently CRC32-checksummed):
//   STATE   the full prognostic state in GLOBAL CANONICAL ordering
//           ([global entity][level], level fastest -- rank-independent, so
//           a checkpoint written at N ranks restores at M ranks by plain
//           per-rank scatter through parallel::Decomposition)
//   LAND    skin temperature (ncells doubles)
//   CLOCK   simulation seconds + dynamics step count
//   DIAG    the Model accumulator windows (accumulated mass flux + step
//           count, tracer-window start delp, precipitation accumulator) --
//           what makes a MID-tracer-window checkpoint restore bitwise
//   MLWT    ML weight fingerprints + QuantCache snapshot versions (PR 7
//           lifecycle): restore refuses to resume against different nets
//   CONFIG  run-configuration fingerprint (nlev, ntracers, dt, NS mode,
//           cadences; writer rank count and partition fingerprint as
//           provenance) -- restore rejects incompatible runs by field name
//
// Writes are atomic: serialize, write to `path.tmp`, fsync, rename; a crash
// mid-write never clobbers the last good checkpoint. writeCheckpoint()
// additionally rotates `ckpt-*.grist` files in a directory, keeping the
// newest K (default 2).
//
// Readers reject wrong magic, truncated headers/tables/payloads, format-
// version mismatches and checksum failures with errors naming the offending
// section. Files written by the seed-era writeRestart() (magic "GRISTSW1",
// io/restart.hpp) are read compatibly into STATE + LAND + CLOCK sections.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "grist/dycore/state.hpp"

namespace grist::io {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the per-section checksum.
std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed = 0);

enum class SectionId : std::uint32_t {
  kState = 1,
  kLand = 2,
  kClock = 3,
  kDiag = 4,
  kMlWeights = 5,
  kConfig = 6,
};

/// Human-readable section name used in every error message.
const char* sectionName(SectionId id);

/// Prognostic state in global canonical ordering. The flat arrays are
/// [entity][level] with the level fastest -- exactly parallel::Field's
/// layout -- so capture/restore against a global dycore::State is a copy.
struct StateSection {
  std::int64_t ncells = 0;
  std::int64_t nedges = 0;
  std::int32_t nlev = 0;
  std::int32_t ntracers = 0;
  std::vector<double> delp;   ///< ncells x nlev
  std::vector<double> u;      ///< nedges x nlev
  std::vector<double> w;      ///< ncells x (nlev+1)
  std::vector<double> theta;  ///< ncells x nlev
  std::vector<double> phi;    ///< ncells x (nlev+1)
  std::vector<std::vector<double>> tracers;  ///< each ncells x nlev

  /// Copy a global state into canonical ordering.
  static StateSection capture(const dycore::State& global);
  /// Copy back into a shape-matching global state. Throws std::runtime_error
  /// naming the mismatching dimension (ncells/nedges/nlev/ntracers).
  void restoreTo(dycore::State& global) const;
  /// Build a fresh global state on `mesh` (mesh entity counts must match).
  dycore::State toState(const grid::HexMesh& mesh) const;
};

struct ClockSection {
  double sim_seconds = 0.0;
  std::int64_t dyn_steps = 0;
};

/// Model accumulator windows (see core/model.cpp): with these restored, a
/// checkpoint taken mid-tracer-window continues bitwise.
struct DiagSection {
  std::int64_t ncells = 0;
  std::int64_t nedges = 0;
  std::int32_t nlev = 0;
  std::int32_t acc_steps = 0;              ///< dynamics steps in the flux window
  std::vector<double> acc_flux;            ///< nedges x nlev accumulated mass flux
  std::vector<double> delp_at_tracer_start;///< ncells x nlev
  std::vector<double> precip_accum;        ///< ncells, mm since run start
};

/// ML-suite provenance: weight fingerprints (FNV-1a over all parameters and
/// normalization constants) plus the QuantCache snapshot versions that were
/// live at capture time. Restore refuses a fingerprint mismatch -- resuming
/// a run against different nets silently changes the forecast.
struct MlWeightsSection {
  std::uint64_t q1q2_fingerprint = 0;
  std::uint64_t rad_fingerprint = 0;
  std::uint64_t q1q2_bf16_version = 0;
  std::uint64_t q1q2_int8_version = 0;
  std::uint64_t rad_bf16_version = 0;
  std::uint64_t rad_int8_version = 0;
};

/// Run-configuration fingerprint. The starred fields must match on restore
/// (they decide bitwise continuation); the rest is provenance.
struct ConfigSection {
  std::int32_t grid_level = -1;      ///< provenance (-1 = unknown)
  std::int32_t writer_nranks = 1;    ///< provenance: partition at write time
  std::int32_t nlev = 0;             ///< *
  std::int32_t ntracers = 0;         ///< *
  std::int32_t trac_interval = 0;    ///< * when a Model restores (cadence phase)
  std::int32_t phy_interval = 0;     ///< * when a Model restores
  double dt = 0.0;                   ///< *
  std::uint8_t ns_single = 0;        ///< * NsMode: 1 = MIX, 0 = DP
  std::uint64_t partition_fingerprint = 0;  ///< provenance
};

/// Header + section table of a snapshot file, without payloads.
struct SnapshotInfo {
  std::uint32_t format_version = 0;
  bool legacy = false;  ///< true when the file is a seed-era GRISTSW1 restart
  struct Entry {
    SectionId id;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
  };
  std::vector<Entry> sections;
  bool has(SectionId id) const;
};

/// The in-memory snapshot: a bag of optional sections plus the (de)serializer.
class Snapshot {
 public:
  static constexpr std::uint64_t kMagic = 0x4752495354535732ull;   // "GRISTSW2"
  static constexpr std::uint32_t kFormatVersion = 2;

  std::optional<StateSection> state;
  std::optional<std::vector<double>> land;  ///< tskin, ncells
  std::optional<ClockSection> clock;
  std::optional<DiagSection> diag;
  std::optional<MlWeightsSection> ml;
  std::optional<ConfigSection> config;

  /// Atomic write: serialize, write `path.tmp`, fsync, rename over `path`.
  /// Throws std::runtime_error on any I/O failure (the .tmp is removed).
  void write(const std::string& path) const;

  /// Read and validate a snapshot (v2) or a legacy GRISTSW1 restart file
  /// (converted into STATE + LAND + CLOCK). Throws std::runtime_error on
  /// missing file, wrong magic, version mismatch, truncation or checksum
  /// failure, naming the offending section.
  static Snapshot read(const std::string& path);

  /// Header + section table only (also legacy-aware). Same error contract.
  static SnapshotInfo peek(const std::string& path);
};

/// `dir/ckpt-<step>.grist` (step zero-padded so lexical order = step order).
std::string checkpointPath(const std::string& dir, long step);

/// Write `snap` as checkpoint `step` into `dir` (created if missing), then
/// prune old `ckpt-*.grist` files keeping the newest `keep`. Returns the
/// path written. The write itself is atomic, so a crash at any point leaves
/// the previous checkpoints intact.
std::string writeCheckpoint(const std::string& dir, const Snapshot& snap,
                            long step, int keep = 2);

/// Newest `ckpt-*.grist` in `dir`, or "" when none exist.
std::string latestCheckpoint(const std::string& dir);

} // namespace grist::io
