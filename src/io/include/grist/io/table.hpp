// Plain-text table printer used by the benchmark harness so every
// table/figure reproduction emits rows in the same aligned format the paper
// reports (and EXPERIMENTS.md records).
#pragma once

#include <string>
#include <vector>

namespace grist::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);

  /// Render with aligned columns; includes a header underline.
  std::string str() const;
  /// Render and write to stdout.
  void print() const;

  /// Format helper: fixed-precision double.
  static std::string num(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace grist::io
