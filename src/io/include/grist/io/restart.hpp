// Restart files: serialize the full prognostic state (plus land skin
// temperature and simulation clock) so long climate runs can be split
// across job allocations -- operationally essential for a model whose
// production runs simulate years.
#pragma once

#include <string>
#include <vector>

#include "grist/dycore/state.hpp"

namespace grist::io {

struct RestartHeader {
  Index ncells = 0;
  Index nedges = 0;
  int nlev = 0;
  int ntracers = 0;
  double sim_seconds = 0;
};

/// Write state + tskin + clock to `path` (binary, versioned magic).
void writeRestart(const std::string& path, const dycore::State& state,
                  const std::vector<double>& tskin, double sim_seconds);

/// Read a restart written by writeRestart. Throws std::runtime_error on a
/// missing/corrupt file or shape mismatch with the provided state.
RestartHeader readRestart(const std::string& path, dycore::State& state,
                          std::vector<double>& tskin);

/// Peek at the header without loading the payload.
RestartHeader readRestartHeader(const std::string& path);

} // namespace grist::io
