// LEGACY restart files (format 1, magic "GRISTSW1"): the seed-era
// single-section serialization of prognostic state + land skin temperature
// + simulation clock. Kept alive for read-compat — io/snapshot.hpp is the
// current checkpoint format (sectioned, checksummed, elastic across rank
// counts) and its reader accepts files written here transparently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grist/dycore/state.hpp"

namespace grist::io {

/// Magic of the seed-era restart format ("GRISTSW1").
inline constexpr std::uint64_t kLegacyRestartMagic = 0x4752495354535731ull;

struct RestartHeader {
  Index ncells = 0;
  Index nedges = 0;
  int nlev = 0;
  int ntracers = 0;
  double sim_seconds = 0;
};

/// Write state + tskin + clock to `path` (binary, versioned magic).
void writeRestart(const std::string& path, const dycore::State& state,
                  const std::vector<double>& tskin, double sim_seconds);

/// Read a restart written by writeRestart. Throws std::runtime_error on a
/// missing/corrupt file or shape mismatch with the provided state.
RestartHeader readRestart(const std::string& path, dycore::State& state,
                          std::vector<double>& tskin);

/// Peek at the header without loading the payload.
RestartHeader readRestartHeader(const std::string& path);

} // namespace grist::io
