// AVX2+FMA quant tier: the 8x16 tile is processed as two 8x8 halves (ymm =
// 8 fp32 / 8 int32 lanes). bf16 operands widen with a 16-bit shift into the
// high half of each fp32 lane (exact); int8 pairs ride vpmaddwd after a
// vpmovsxbw widen. Packing reuses the scalar reference (conversion is
// bandwidth-trivial next to the 256^3 bench shape and identical by
// construction). Compiled with -mavx2 -mfma only in builds whose compiler
// carries them; cpuid still gates dispatch at runtime.

#include <immintrin.h>

#include "quant_tiers.hpp"

namespace grist::backend::quant {

namespace {

void bf16TileAvx2(int k2, const std::uint16_t* ap, const std::uint16_t* bp,
                  float* acc) {
  const __m256i hi_mask = _mm256_set1_epi32(static_cast<int>(0xFFFF0000u));
  for (int half = 0; half < 2; ++half) {
    __m256 c[kQuantMR];
    for (int i = 0; i < kQuantMR; ++i) c[i] = _mm256_setzero_ps();
    const std::uint16_t* b = bp + half * (kQuantNR / 2) * 2;
    for (int t = 0; t < k2; ++t) {
      const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          b + static_cast<std::size_t>(t) * kQuantNR * 2));
      // Even pair element lives in the low 16 bits of each 32-bit lane,
      // odd in the high 16; widening to fp32 is "place in the exponent+
      // mantissa field", i.e. shift-left-16 / mask.
      const __m256 be = _mm256_castsi256_ps(_mm256_slli_epi32(bv, 16));
      const __m256 bo = _mm256_castsi256_ps(_mm256_and_si256(bv, hi_mask));
      const std::uint32_t* aw = reinterpret_cast<const std::uint32_t*>(
          ap + static_cast<std::size_t>(t) * kQuantMR * 2);
      for (int i = 0; i < kQuantMR; ++i) {
        const __m256i av = _mm256_set1_epi32(static_cast<int>(aw[i]));
        const __m256 ae = _mm256_castsi256_ps(_mm256_slli_epi32(av, 16));
        const __m256 ao = _mm256_castsi256_ps(_mm256_and_si256(av, hi_mask));
        // Same even-then-odd chain as the scalar reference; the products
        // are exact so FMA == mul+add bitwise.
        c[i] = _mm256_fmadd_ps(ae, be, c[i]);
        c[i] = _mm256_fmadd_ps(ao, bo, c[i]);
      }
    }
    for (int i = 0; i < kQuantMR; ++i)
      _mm256_storeu_ps(acc + i * kQuantNR + half * (kQuantNR / 2), c[i]);
  }
}

void int8TileAvx2(int k2, const std::int8_t* ap, const std::int8_t* bp,
                  std::int32_t* acc) {
  for (int half = 0; half < 2; ++half) {
    __m256i c[kQuantMR];
    for (int i = 0; i < kQuantMR; ++i) c[i] = _mm256_setzero_si256();
    const std::int8_t* b = bp + half * (kQuantNR / 2) * 2;
    for (int t = 0; t < k2; ++t) {
      const __m128i b8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          b + static_cast<std::size_t>(t) * kQuantNR * 2));
      const __m256i b16 = _mm256_cvtepi8_epi16(b8);
      const std::int8_t* a = ap + static_cast<std::size_t>(t) * kQuantMR * 2;
      for (int i = 0; i < kQuantMR; ++i) {
        // Broadcast the (even, odd) int8 pair as two sign-extended int16s
        // in every 32-bit lane; vpmaddwd then forms
        // ae*be + ao*bo per lane -- exact int32.
        const std::int32_t pair =
            (static_cast<std::int32_t>(a[2 * i]) & 0xFFFF) |
            (static_cast<std::int32_t>(a[2 * i + 1]) << 16);
        const __m256i av = _mm256_set1_epi32(pair);
        c[i] = _mm256_add_epi32(c[i], _mm256_madd_epi16(av, b16));
      }
    }
    for (int i = 0; i < kQuantMR; ++i)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(
                              acc + i * kQuantNR + half * (kQuantNR / 2)),
                          c[i]);
  }
}

} // namespace

const KernelTable& tierTableQuantAvx2() {
  static const KernelTable t{simd::Tier::kAvx2, "avx2-fma",
                             /*native_bf16=*/false, &bf16TileAvx2,
                             &int8TileAvx2, &packBBf16ScalarRef,
                             &packBInt8ScalarRef};
  return t;
}

} // namespace grist::backend::quant
