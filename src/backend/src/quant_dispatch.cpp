// Runtime dispatch for the quantized-GEMM tiers. Reuses the simd::Tier
// override machinery (GRIST_SIMD_TIER / simd::forceTier clamp these tiers
// down too) but gates on its own cpuid requirements: the AVX-512 quant tier
// needs AVX-512BW (512-bit vpmovsxbw/vpmaddwd) on top of F, and the native
// bf16 dot product additionally needs AVX512_BF16 -- when the latter is
// granted, the AVX-512 table is served with its bf16 microkernel swapped
// for vdpbf16ps (packing and the int8 kernel are unchanged).

#include "grist/backend/quant.hpp"

#include "quant_tiers.hpp"

namespace grist::backend::quant {
namespace {

bool cpuSupports(simd::Tier t) {
#if defined(__x86_64__) || defined(__i386__)
  switch (t) {
    case simd::Tier::kScalar:
      return true;
    case simd::Tier::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case simd::Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw");
  }
  return false;
#else
  return t == simd::Tier::kScalar;
#endif
}

bool buildCarries(simd::Tier t) {
  switch (t) {
    case simd::Tier::kScalar:
      return true;
    case simd::Tier::kAvx2:
      return GRIST_QUANT_HAVE_AVX2 != 0;
    case simd::Tier::kAvx512:
      return GRIST_QUANT_HAVE_AVX512 != 0;
  }
  return false;
}

simd::Tier computeBestTier() {
  for (simd::Tier t : {simd::Tier::kAvx512, simd::Tier::kAvx2}) {
    if (buildCarries(t) && cpuSupports(t)) return t;
  }
  return simd::Tier::kScalar;
}

#if GRIST_QUANT_HAVE_AVX512
const KernelTable& avx512TableWithNativeBf16() {
  static const KernelTable t = [] {
    KernelTable tbl = tierTableQuantAvx512();
#if GRIST_QUANT_HAVE_AVX512BF16
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512bf16")) {
      tbl.bf16_tile = &bf16TileAvx512Native;
      tbl.name = "avx512-bf16dp";
      tbl.native_bf16 = true;
    }
#endif
#endif
    return tbl;
  }();
  return t;
}
#endif

} // namespace

simd::Tier bestTier() {
  static const simd::Tier t = computeBestTier();
  return t;
}

const KernelTable& table(simd::Tier t) {
  const simd::Tier best = bestTier();
  const simd::Tier eff =
      static_cast<int>(t) < static_cast<int>(best) ? t : best;
  switch (eff) {
#if GRIST_QUANT_HAVE_AVX512
    case simd::Tier::kAvx512:
      return avx512TableWithNativeBf16();
#endif
#if GRIST_QUANT_HAVE_AVX2
    case simd::Tier::kAvx2:
      return tierTableQuantAvx2();
#endif
    default:
      return tierTableQuantScalar();
  }
}

const KernelTable& table() {
  // Qualified: the simd::Tier argument would otherwise drag simd::table(Tier)
  // into overload resolution via ADL.
  return quant::table(simd::activeTier());
}

} // namespace grist::backend::quant
