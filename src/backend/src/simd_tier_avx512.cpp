// AVX-512 dispatch tier: the shared SIMD kernel bodies compiled with
// -mavx512f/-mavx512vl/-mavx512dq (512-bit preferred width, -ffp-contract=off
// as in the AVX2 tier). Fringe lanes run masked rather than scalar. Only
// built when the compiler accepts the flags; only dispatched to when cpuid
// reports AVX-512F.
#define GRIST_SIMD_TIER_FN tierTableAvx512
#define GRIST_SIMD_TIER_ID ::grist::backend::simd::Tier::kAvx512
#include "grist/backend/simd_kernels_impl.hpp"
