// Native AVX512-BF16 dot-product microkernel (vdpbf16ps): each instruction
// consumes a (even, odd) bf16 pair per 32-bit lane and accumulates both
// products into the fp32 lane -- exactly the pair-interleaved panel layout.
// Hardware may sum the two per-pair products before rounding (and in an
// unspecified order), so this kernel is held to a small relative tolerance
// against the widen tiers instead of bitwise identity; packing is NOT
// overridden here -- the plain AVX-512 integer-RNE pack already matches
// vcvtneps2bf16 bit-for-bit, keeping snapshots tier-portable.

#include <immintrin.h>

#include "quant_tiers.hpp"

namespace grist::backend::quant {

void bf16TileAvx512Native(int k2, const std::uint16_t* ap,
                          const std::uint16_t* bp, float* acc) {
  __m512 c[kQuantMR];
  for (int i = 0; i < kQuantMR; ++i) c[i] = _mm512_setzero_ps();
  for (int t = 0; t < k2; ++t) {
    const __m512bh bv = (__m512bh)_mm512_loadu_si512(
        bp + static_cast<std::size_t>(t) * kQuantNR * 2);
    const std::uint32_t* aw = reinterpret_cast<const std::uint32_t*>(
        ap + static_cast<std::size_t>(t) * kQuantMR * 2);
    for (int i = 0; i < kQuantMR; ++i) {
      const __m512bh av =
          (__m512bh)_mm512_set1_epi32(static_cast<int>(aw[i]));
      c[i] = _mm512_dpbf16_ps(c[i], av, bv);
    }
  }
  for (int i = 0; i < kQuantMR; ++i)
    _mm512_storeu_ps(acc + i * kQuantNR, c[i]);
}

} // namespace grist::backend::quant
