// Internal: per-tier quant table factories plus the scalar reference bodies
// the vector tiers reuse for slots they do not override. Which tier TUs
// exist in a build is decided by CMake's ISA probes (GRIST_QUANT_HAVE_*),
// mirroring simd_tiers.hpp.
#pragma once

#include "grist/backend/quant.hpp"

namespace grist::backend::quant {

const KernelTable& tierTableQuantScalar();
#if GRIST_QUANT_HAVE_AVX2
const KernelTable& tierTableQuantAvx2();
#endif
#if GRIST_QUANT_HAVE_AVX512
const KernelTable& tierTableQuantAvx512();
#endif
#if GRIST_QUANT_HAVE_AVX512BF16
/// Native vdpbf16ps microkernel; grafted onto the AVX-512 table at dispatch
/// time when cpuid grants avx512_bf16 (the packing stays the bit-identical
/// integer-RNE vector path -- only the dot product changes).
void bf16TileAvx512Native(int k2, const std::uint16_t* ap,
                          const std::uint16_t* bp, float* acc);
#endif

// Scalar reference bodies (defined in quant_tier_scalar.cpp): the numerical
// contract every vector tier is tested against, and the fallback slots for
// tiers that only override the microkernels.
void bf16TileScalarRef(int k2, const std::uint16_t* ap,
                       const std::uint16_t* bp, float* acc);
void int8TileScalarRef(int k2, const std::int8_t* ap, const std::int8_t* bp,
                       std::int32_t* acc);
void packBBf16ScalarRef(int k, int nr, const float* b,
                        std::ptrdiff_t row_stride, std::ptrdiff_t col_stride,
                        std::uint16_t* bp);
void packBInt8ScalarRef(int k, int nr, const float* b,
                        std::ptrdiff_t row_stride, std::ptrdiff_t col_stride,
                        const float* inv_scale, std::int8_t* bp);

} // namespace grist::backend::quant
