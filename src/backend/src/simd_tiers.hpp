// Internal: the per-tier table factories defined by the three tier TUs.
// Which of these exist in a given build is decided by CMake's ISA probes;
// the matching GRIST_SIMD_HAVE_* definitions are set on the target so
// simd_dispatch.cpp only references symbols the build actually carries.
#pragma once

#include "grist/backend/simd.hpp"

namespace grist::backend::simd {

const KernelTable& tierTableScalar();
#if GRIST_SIMD_HAVE_AVX2
const KernelTable& tierTableAvx2();
#endif
#if GRIST_SIMD_HAVE_AVX512
const KernelTable& tierTableAvx512();
#endif

} // namespace grist::backend::simd
