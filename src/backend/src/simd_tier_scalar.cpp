// Scalar dispatch tier: the shared SIMD kernel bodies compiled with the
// build's baseline flags only (no extra ISA, no `omp simd` widening beyond
// what the base target offers). This tier always exists -- it is both the
// portable fallback and the reference the per-tier CI stage pins first.
#define GRIST_SIMD_TIER_FN tierTableScalar
#define GRIST_SIMD_TIER_ID ::grist::backend::simd::Tier::kScalar
#include "grist/backend/simd_kernels_impl.hpp"
