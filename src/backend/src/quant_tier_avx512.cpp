// AVX-512 quant tier. kQuantNR = 16 is exactly one zmm of fp32/int32, so the
// 8x16 tile is 8 zmm accumulators. Needs AVX-512BW on top of F for the
// 512-bit vpmovsxbw/vpmaddwd int8 path -- quant::bestTier() gates on both.
//
// B-panel packing is vectorized here too (conversion cost rivals compute on
// the small Fig. 8 shapes): the bf16 round-to-nearest-even is done in
// integer math (u += 0x7FFF + lsb(u>>16)) which is the exact formula the
// scalar reference uses, so packed panels are bit-identical across tiers;
// likewise int8 uses vcvtps2dq whose default RNE matches lrintf.

#include <immintrin.h>

#include "quant_tiers.hpp"

namespace grist::backend::quant {

namespace {

void bf16TileAvx512(int k2, const std::uint16_t* ap, const std::uint16_t* bp,
                    float* acc) {
  const __m512i hi_mask = _mm512_set1_epi32(static_cast<int>(0xFFFF0000u));
  __m512 c[kQuantMR];
  for (int i = 0; i < kQuantMR; ++i) c[i] = _mm512_setzero_ps();
  for (int t = 0; t < k2; ++t) {
    const __m512i bv = _mm512_loadu_si512(
        bp + static_cast<std::size_t>(t) * kQuantNR * 2);
    const __m512 be = _mm512_castsi512_ps(_mm512_slli_epi32(bv, 16));
    const __m512 bo = _mm512_castsi512_ps(_mm512_and_si512(bv, hi_mask));
    const std::uint32_t* aw = reinterpret_cast<const std::uint32_t*>(
        ap + static_cast<std::size_t>(t) * kQuantMR * 2);
    for (int i = 0; i < kQuantMR; ++i) {
      const __m512i av = _mm512_set1_epi32(static_cast<int>(aw[i]));
      const __m512 ae = _mm512_castsi512_ps(_mm512_slli_epi32(av, 16));
      const __m512 ao = _mm512_castsi512_ps(_mm512_and_si512(av, hi_mask));
      c[i] = _mm512_fmadd_ps(ae, be, c[i]);
      c[i] = _mm512_fmadd_ps(ao, bo, c[i]);
    }
  }
  for (int i = 0; i < kQuantMR; ++i)
    _mm512_storeu_ps(acc + i * kQuantNR, c[i]);
}

void int8TileAvx512(int k2, const std::int8_t* ap, const std::int8_t* bp,
                    std::int32_t* acc) {
  __m512i c[kQuantMR];
  for (int i = 0; i < kQuantMR; ++i) c[i] = _mm512_setzero_si512();
  for (int t = 0; t < k2; ++t) {
    const __m256i b8 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        bp + static_cast<std::size_t>(t) * kQuantNR * 2));
    const __m512i b16 = _mm512_cvtepi8_epi16(b8);
    const std::int8_t* a = ap + static_cast<std::size_t>(t) * kQuantMR * 2;
    for (int i = 0; i < kQuantMR; ++i) {
      const std::int32_t pair =
          (static_cast<std::int32_t>(a[2 * i]) & 0xFFFF) |
          (static_cast<std::int32_t>(a[2 * i + 1]) << 16);
      const __m512i av = _mm512_set1_epi32(pair);
      c[i] = _mm512_add_epi32(c[i], _mm512_madd_epi16(av, b16));
    }
  }
  for (int i = 0; i < kQuantMR; ++i)
    _mm512_storeu_si512(acc + i * kQuantNR, c[i]);
}

// fp32 -> bf16 RNE on 16 lanes, result in the LOW 16 bits of each lane.
inline __m512i bf16Rne(__m512 v) {
  const __m512i u = _mm512_castps_si512(v);
  const __m512i rnd = _mm512_add_epi32(
      _mm512_set1_epi32(0x7FFF),
      _mm512_and_si512(_mm512_srli_epi32(u, 16), _mm512_set1_epi32(1)));
  return _mm512_srli_epi32(_mm512_add_epi32(u, rnd), 16);
}

void packBBf16Avx512(int k, int nr, const float* b, std::ptrdiff_t row_stride,
                     std::ptrdiff_t col_stride, std::uint16_t* bp) {
  if (nr != kQuantNR || col_stride != 1) {
    // Fringe panel / transposed stride: the scalar formula is identical.
    packBBf16ScalarRef(k, nr, b, row_stride, col_stride, bp);
    return;
  }
  const int k2 = quantKPairs(k);
  for (int t = 0; t < k2; ++t) {
    const int k0 = 2 * t;
    const int k1 = k0 + 1;
    const __m512i even = bf16Rne(_mm512_loadu_ps(b + k0 * row_stride));
    const __m512i odd =
        k1 < k ? _mm512_slli_epi32(
                     bf16Rne(_mm512_loadu_ps(b + k1 * row_stride)), 16)
               : _mm512_setzero_si512();
    // 32-bit lane j = even_j | odd_j<<16 == dst[2j], dst[2j+1] interleaved.
    _mm512_storeu_si512(bp + static_cast<std::size_t>(t) * kQuantNR * 2,
                        _mm512_or_si512(even, odd));
  }
}

// One row of 16 floats -> clamped int8 in the low byte of each int32 lane.
inline __m512i int8Rne(__m512 v, __m512 inv) {
  __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(v, inv));
  q = _mm512_min_epi32(q, _mm512_set1_epi32(127));
  q = _mm512_max_epi32(q, _mm512_set1_epi32(-127));
  return _mm512_and_si512(q, _mm512_set1_epi32(0xFF));
}

void packBInt8Avx512(int k, int nr, const float* b, std::ptrdiff_t row_stride,
                     std::ptrdiff_t col_stride, const float* inv_scale,
                     std::int8_t* bp) {
  if (nr != kQuantNR || col_stride != 1) {
    packBInt8ScalarRef(k, nr, b, row_stride, col_stride, inv_scale, bp);
    return;
  }
  const __m512 inv = _mm512_loadu_ps(inv_scale);
  const int k2 = quantKPairs(k);
  for (int t = 0; t < k2; ++t) {
    const int k0 = 2 * t;
    const int k1 = k0 + 1;
    const __m512i even = int8Rne(_mm512_loadu_ps(b + k0 * row_stride), inv);
    const __m512i odd =
        k1 < k ? _mm512_slli_epi32(
                     int8Rne(_mm512_loadu_ps(b + k1 * row_stride), inv), 8)
               : _mm512_setzero_si512();
    // Low 16 bits of each lane hold the (even, odd) byte pair; narrow
    // 32 -> 16 and store the 32-byte interleaved panel row.
    const __m256i packed =
        _mm512_cvtepi32_epi16(_mm512_or_si512(even, odd));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(
            bp + static_cast<std::size_t>(t) * kQuantNR * 2),
        packed);
  }
}

} // namespace

const KernelTable& tierTableQuantAvx512() {
  static const KernelTable t{simd::Tier::kAvx512, "avx512-widen",
                             /*native_bf16=*/false, &bf16TileAvx512,
                             &int8TileAvx512, &packBBf16Avx512,
                             &packBInt8Avx512};
  return t;
}

} // namespace grist::backend::quant
