// Runtime dispatch for the SIMD execution backend: cpuid picks the best
// tier the build carries and the CPU supports; GRIST_SIMD_TIER clamps it
// down (never up), GRIST_SIMD=0 disables routing altogether. Mirrors the
// DiagnosticsFactory-style CPU/GPU dispatch: callers see one table of
// function pointers, never an #ifdef.

#include "grist/backend/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd_tiers.hpp"

namespace grist::backend::simd {
namespace {

// Tier forced via env/forceTier(); -1 = no override. Relaxed atomics: the
// parity tests flip this between sweeps from one thread; concurrent readers
// only ever see a valid tier.
std::atomic<int> g_forced{-1};

bool cpuSupports(Tier t) {
#if defined(__x86_64__) || defined(__i386__)
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return t == Tier::kScalar;
#endif
}

bool buildCarries(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return GRIST_SIMD_HAVE_AVX2 != 0;
    case Tier::kAvx512:
      return GRIST_SIMD_HAVE_AVX512 != 0;
  }
  return false;
}

Tier computeBestTier() {
  for (Tier t : {Tier::kAvx512, Tier::kAvx2}) {
    if (buildCarries(t) && cpuSupports(t)) return t;
  }
  return Tier::kScalar;
}

// Startup env override: GRIST_SIMD_TIER=scalar|avx2|avx512 behaves exactly
// like a forceTier() call made before main().
int envForcedTier() {
  const char* s = std::getenv("GRIST_SIMD_TIER");
  if (!s || !*s) return -1;
  if (std::strcmp(s, "scalar") == 0) return static_cast<int>(Tier::kScalar);
  if (std::strcmp(s, "avx2") == 0) return static_cast<int>(Tier::kAvx2);
  if (std::strcmp(s, "avx512") == 0) return static_cast<int>(Tier::kAvx512);
  return -1;  // unknown value: ignore rather than abort
}

struct DispatchState {
  Tier best;
  bool enabled;
  DispatchState() {
    best = computeBestTier();
    const char* s = std::getenv("GRIST_SIMD");
    enabled = !(s && std::strcmp(s, "0") == 0);
    g_forced.store(envForcedTier(), std::memory_order_relaxed);
  }
};

const DispatchState& state() {
  static const DispatchState st;
  return st;
}

Tier clampToBest(Tier t) {
  const Tier best = state().best;
  return static_cast<int>(t) < static_cast<int>(best) ? t : best;
}

} // namespace

const char* tierName(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "?";
}

Tier bestTier() { return state().best; }

std::vector<Tier> availableTiers() {
  std::vector<Tier> tiers{Tier::kScalar};
  for (Tier t : {Tier::kAvx2, Tier::kAvx512}) {
    if (static_cast<int>(t) <= static_cast<int>(state().best)) {
      tiers.push_back(t);
    }
  }
  return tiers;
}

Tier activeTier() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return clampToBest(static_cast<Tier>(forced));
  return state().best;
}

void forceTier(Tier t) {
  state();  // make sure env initialization happened first
  g_forced.store(static_cast<int>(t), std::memory_order_relaxed);
}

void clearForcedTier() {
  state();
  g_forced.store(-1, std::memory_order_relaxed);
}

bool enabled() { return state().enabled; }

const KernelTable& table(Tier t) {
  switch (clampToBest(t)) {
#if GRIST_SIMD_HAVE_AVX512
    case Tier::kAvx512:
      return tierTableAvx512();
#endif
#if GRIST_SIMD_HAVE_AVX2
    case Tier::kAvx2:
      return tierTableAvx2();
#endif
    default:
      return tierTableScalar();
  }
}

const KernelTable& table() { return table(activeTier()); }

} // namespace grist::backend::simd
