// AVX2 dispatch tier: the shared SIMD kernel bodies compiled with -mavx2
// (plus -ffp-contract=off -- the baseline build has no FMA, so contraction
// here would break bitwise parity). Only built when the compiler accepts
// the flags; only dispatched to when cpuid reports AVX2.
#define GRIST_SIMD_TIER_FN tierTableAvx2
#define GRIST_SIMD_TIER_ID ::grist::backend::simd::Tier::kAvx2
#include "grist/backend/simd_kernels_impl.hpp"
