// Scalar reference tier for the quantized-GEMM microkernels. Compiled with
// the base ISA only; these bodies define the numerical contract (see
// grist/backend/quant.hpp) that the vector tiers are tested against:
// int8 bitwise everywhere, bf16 bitwise for widen+FMA tiers.

#include "quant_tiers.hpp"

namespace grist::backend::quant {

void bf16TileScalarRef(int k2, const std::uint16_t* ap,
                       const std::uint16_t* bp, float* acc) {
  for (int x = 0; x < kQuantMR * kQuantNR; ++x) acc[x] = 0.0f;
  for (int t = 0; t < k2; ++t) {
    const std::uint16_t* a = ap + static_cast<std::size_t>(t) * kQuantMR * 2;
    const std::uint16_t* b = bp + static_cast<std::size_t>(t) * kQuantNR * 2;
    for (int i = 0; i < kQuantMR; ++i) {
      const float ae = bf16ToFloat(a[2 * i]);
      const float ao = bf16ToFloat(a[2 * i + 1]);
      float* row = acc + i * kQuantNR;
      // Fixed even-then-odd per-pair chain: the accumulation order every
      // widen tier reproduces bitwise (products are exact in fp32).
      for (int j = 0; j < kQuantNR; ++j) {
        row[j] += ae * bf16ToFloat(b[2 * j]);
        row[j] += ao * bf16ToFloat(b[2 * j + 1]);
      }
    }
  }
}

void int8TileScalarRef(int k2, const std::int8_t* ap, const std::int8_t* bp,
                       std::int32_t* acc) {
  for (int x = 0; x < kQuantMR * kQuantNR; ++x) acc[x] = 0;
  for (int t = 0; t < k2; ++t) {
    const std::int8_t* a = ap + static_cast<std::size_t>(t) * kQuantMR * 2;
    const std::int8_t* b = bp + static_cast<std::size_t>(t) * kQuantNR * 2;
    for (int i = 0; i < kQuantMR; ++i) {
      const std::int32_t ae = a[2 * i];
      const std::int32_t ao = a[2 * i + 1];
      std::int32_t* row = acc + i * kQuantNR;
      // vpmaddwd shape: both pair products summed before joining the
      // accumulator -- exact integer math, associative, tier-independent.
      for (int j = 0; j < kQuantNR; ++j)
        row[j] += ae * b[2 * j] + ao * b[2 * j + 1];
    }
  }
}

void packBBf16ScalarRef(int k, int nr, const float* b,
                        std::ptrdiff_t row_stride, std::ptrdiff_t col_stride,
                        std::uint16_t* bp) {
  const int k2 = quantKPairs(k);
  for (int t = 0; t < k2; ++t) {
    const int k0 = 2 * t;
    const int k1 = k0 + 1;
    std::uint16_t* dst = bp + static_cast<std::size_t>(t) * kQuantNR * 2;
    for (int j = 0; j < nr; ++j) {
      dst[2 * j] = floatToBf16(b[k0 * row_stride + j * col_stride]);
      dst[2 * j + 1] =
          k1 < k ? floatToBf16(b[k1 * row_stride + j * col_stride])
                 : std::uint16_t{0};
    }
    for (int j = nr; j < kQuantNR; ++j) {
      dst[2 * j] = 0;
      dst[2 * j + 1] = 0;
    }
  }
}

void packBInt8ScalarRef(int k, int nr, const float* b,
                        std::ptrdiff_t row_stride, std::ptrdiff_t col_stride,
                        const float* inv_scale, std::int8_t* bp) {
  const int k2 = quantKPairs(k);
  for (int t = 0; t < k2; ++t) {
    const int k0 = 2 * t;
    const int k1 = k0 + 1;
    std::int8_t* dst = bp + static_cast<std::size_t>(t) * kQuantNR * 2;
    for (int j = 0; j < nr; ++j) {
      dst[2 * j] = quantizeInt8(b[k0 * row_stride + j * col_stride],
                                inv_scale[j]);
      dst[2 * j + 1] =
          k1 < k ? quantizeInt8(b[k1 * row_stride + j * col_stride],
                                inv_scale[j])
                 : std::int8_t{0};
    }
    for (int j = nr; j < kQuantNR; ++j) {
      dst[2 * j] = 0;
      dst[2 * j + 1] = 0;
    }
  }
}

const KernelTable& tierTableQuantScalar() {
  static const KernelTable t{simd::Tier::kScalar, "scalar",
                             /*native_bf16=*/false, &bf16TileScalarRef,
                             &int8TileScalarRef, &packBBf16ScalarRef,
                             &packBInt8ScalarRef};
  return t;
}

} // namespace grist::backend::quant
