// Single-source dycore kernel bodies over the execution-backend concept.
//
// Each function here is ONE entity's worth of work (one edge, cell, vertex
// or column) of a dycore kernel, written once and instantiated for every
// backend:
//   - HostBackend (src/dycore): views are raw pointers, Context calls are
//     empty inlines -- the body compiles to the exact load/store/FLOP
//     sequence of the former hand-written kernel, bit-for-bit;
//   - SimBackend (src/swgomp): every view access and every flops/divs/elems
//     call is accounted against the simulated SW26010P, so the Fig. 9 cost
//     model follows the production code mechanically instead of being
//     re-mirrored by hand.
//
// Numerical contract: the Host instantiation must be bit-exact vs the
// pre-refactor kernels in BOTH NS precisions. That pins three idioms:
//   - cast placement: `static_cast<NS>(1.0 / de)` is a double divide THEN a
//     cast, never an NS divide;
//   - accumulation order: CSR/TRSK contributions are added in ascending-j
//     order per element, double read-modify-write for memory accumulators;
//   - conditional reads: upwind selection reads only the taken branch.
// The accounting calls (ctx.flops/divs/elems) sit NEXT to the arithmetic
// they price and state the precision it actually runs in; the mixed-
// precision split (sensitive terms hard double) is therefore visible to the
// cost model by construction.
#pragma once

#include <algorithm>
#include <cmath>

#include "grist/backend/backend.hpp"
#include "grist/backend/views.hpp"
#include "grist/common/math.hpp"
#include "grist/precision/ns.hpp"

namespace grist::backend::kernels {

// ---------------------------------------------------------------------------
// primal_normal_flux_edge: flux(e,k) = le * u(e,k) * delp_e(e,k) with a
// ratio-limited upwind-biased edge interpolation of delp.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void primalNormalFluxEdge(Ctx& ctx, Index e, const MeshView<B>& m, int nlev,
                          V<B, double> delp, V<B, double> u,
                          MV<B, double> flux) {
  constexpr Prec prec = kPrecOf<NS>;
  const auto cells = m.edge_cell.read(ctx, e);
  const Index c1 = cells[0];
  const Index c2 = cells[1];
  const NS le = static_cast<NS>(m.edge_le.read(ctx, e));
  for (int k = 0; k < nlev; ++k) {
    const NS h1 = static_cast<NS>(delp.read(ctx, c1 * nlev + k));
    const NS h2 = static_cast<NS>(delp.read(ctx, c2 * nlev + k));
    const NS ue = static_cast<NS>(u.read(ctx, e * nlev + k));
    const NS centered = NS(0.5) * (h1 + h2);
    const NS upwind = ue >= NS(0) ? h1 : h2;
    const NS r = upwind / centered;
    const NS blend = NS(1) / (NS(1) + r * r);
    const NS he = centered + blend * (upwind - centered) * NS(0.5);
    ctx.flops(8, prec);
    ctx.divs(2, prec);
    flux.write(ctx, e * nlev + k, static_cast<double>(le * ue * he));
  }
}

// ---------------------------------------------------------------------------
// div_at_cell: (1/A_c) sum_e s_{c,e} flux(e,k); zero-fill then ascending-j
// read-modify-write accumulation, exactly like the pre-refactor kernel.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void divAtCell(Ctx& ctx, Index c, const MeshView<B>& m, int nlev,
               V<B, double> flux, MV<B, double> div) {
  constexpr Prec prec = kPrecOf<NS>;
  const NS inv_area = static_cast<NS>(1.0 / m.cell_area.read(ctx, c));
  ctx.divs(1, Prec::kDouble);
  for (int k = 0; k < nlev; ++k) div.write(ctx, c * nlev + k, 0.0);
  const Index j0 = m.cell_offset.read(ctx, c);
  const Index j1 = m.cell_offset.read(ctx, c + 1);
  for (Index j = j0; j < j1; ++j) {
    const Index e = m.cell_edges.read(ctx, j);
    const NS sign = static_cast<NS>(m.cell_edge_sign.read(ctx, j));
    for (int k = 0; k < nlev; ++k) {
      const double add = static_cast<double>(
          sign * static_cast<NS>(flux.read(ctx, e * nlev + k)) * inv_area);
      ctx.flops(2, prec);
      ctx.flops(1, Prec::kDouble);
      div.write(ctx, c * nlev + k, div.read(ctx, c * nlev + k) + add);
    }
  }
}

// ---------------------------------------------------------------------------
// kinetic_energy at cells: ke_c = (1/A_c) sum_e (le de / 4) u_e^2.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void kineticEnergy(Ctx& ctx, Index c, const MeshView<B>& m, int nlev,
                   V<B, double> u, MV<B, double> ke) {
  constexpr Prec prec = kPrecOf<NS>;
  const NS inv_area = static_cast<NS>(1.0 / m.cell_area.read(ctx, c));
  ctx.divs(1, Prec::kDouble);
  for (int k = 0; k < nlev; ++k) ke.write(ctx, c * nlev + k, 0.0);
  const Index j0 = m.cell_offset.read(ctx, c);
  const Index j1 = m.cell_offset.read(ctx, c + 1);
  for (Index j = j0; j < j1; ++j) {
    const Index e = m.cell_edges.read(ctx, j);
    const NS weight = static_cast<NS>(0.25 * m.edge_le.read(ctx, e) *
                                      m.edge_de.read(ctx, e)) *
                      inv_area;
    ctx.flops(2, Prec::kDouble);
    ctx.flops(1, prec);
    for (int k = 0; k < nlev; ++k) {
      const NS ue = static_cast<NS>(u.read(ctx, e * nlev + k));
      ctx.flops(2, prec);
      ctx.flops(1, Prec::kDouble);
      ke.write(ctx, c * nlev + k,
               ke.read(ctx, c * nlev + k) + static_cast<double>(weight * ue * ue));
    }
  }
}

// ---------------------------------------------------------------------------
// tend_grad_ke_at_edge: tend_u(e,k) += -(ke(c2) - ke(c1)) / de.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void tendGradKeAtEdge(Ctx& ctx, Index e, const MeshView<B>& m, int nlev,
                      V<B, double> ke, MV<B, double> tend_u) {
  constexpr Prec prec = kPrecOf<NS>;
  const auto cells = m.edge_cell.read(ctx, e);
  const Index c1 = cells[0];
  const Index c2 = cells[1];
  const NS inv_de = static_cast<NS>(1.0 / m.edge_de.read(ctx, e));
  ctx.divs(1, Prec::kDouble);
  for (int k = 0; k < nlev; ++k) {
    const double add = static_cast<double>(
        -(static_cast<NS>(ke.read(ctx, c2 * nlev + k)) -
          static_cast<NS>(ke.read(ctx, c1 * nlev + k))) *
        inv_de);
    ctx.flops(3, prec);
    ctx.flops(1, Prec::kDouble);
    tend_u.write(ctx, e * nlev + k, tend_u.read(ctx, e * nlev + k) + add);
  }
}

// ---------------------------------------------------------------------------
// vorticity at dual vertices: zeta_v = (1/A_v) sum_e c_{v,e} de u_e.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void vorticityAtVertex(Ctx& ctx, Index v, const MeshView<B>& m, int nlev,
                       V<B, double> u, MV<B, double> vor) {
  constexpr Prec prec = kPrecOf<NS>;
  const NS inv_area = static_cast<NS>(1.0 / m.vtx_area.read(ctx, v));
  ctx.divs(1, Prec::kDouble);
  const auto ve = m.vtx_edges.read(ctx, v);
  const auto vs = m.vtx_edge_sign.read(ctx, v);
  for (int k = 0; k < nlev; ++k) {
    NS acc = NS(0);
    for (int j = 0; j < 3; ++j) {
      const Index e = ve[j];
      acc += static_cast<NS>(vs[j] * m.edge_de.read(ctx, e)) *
             static_cast<NS>(u.read(ctx, e * nlev + k));
      ctx.flops(1, Prec::kDouble);
      ctx.flops(2, prec);
    }
    ctx.flops(1, prec);
    vor.write(ctx, v * nlev + k, static_cast<double>(acc * inv_area));
  }
}

// ---------------------------------------------------------------------------
// potential vorticity at vertices: q_v = (zeta_v + f_v) / delp_v.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void potentialVorticityAtVertex(Ctx& ctx, Index v, const MeshView<B>& m,
                                int nlev, V<B, double> vor, V<B, double> delp,
                                double omega, MV<B, double> qv) {
  constexpr Prec prec = kPrecOf<NS>;
  const NS f = static_cast<NS>(2.0 * omega * m.vtx_x.read(ctx, v).z);
  const NS inv_area = static_cast<NS>(1.0 / m.vtx_area.read(ctx, v));
  ctx.flops(2, Prec::kDouble);
  ctx.divs(1, Prec::kDouble);
  const auto vc = m.vtx_cells.read(ctx, v);
  const auto kite = m.vtx_kite_area.read(ctx, v);
  for (int k = 0; k < nlev; ++k) {
    NS hv = NS(0);
    for (int j = 0; j < 3; ++j) {
      hv += static_cast<NS>(kite[j]) *
            static_cast<NS>(delp.read(ctx, vc[j] * nlev + k));
      ctx.flops(2, prec);
    }
    hv *= inv_area;
    ctx.flops(2, prec);
    ctx.divs(1, prec);
    qv.write(ctx, v * nlev + k,
             static_cast<double>(
                 (static_cast<NS>(vor.read(ctx, v * nlev + k)) + f) / hv));
  }
}

// ---------------------------------------------------------------------------
// calc_coriolis_term: TRSK nonlinear Coriolis / vorticity flux. NB: the
// arithmetic runs in NS exactly like the production kernel -- the cost model
// follows the code, so MIX builds see both the smaller loads and the cheaper
// divides here (the former hand replica pinned this kernel to double).
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void calcCoriolisTerm(Ctx& ctx, Index e, const MeshView<B>& m,
                      const TrskView<B>& trsk, int nlev, V<B, double> flux,
                      V<B, double> qv, MV<B, double> tend_u) {
  constexpr Prec prec = kPrecOf<NS>;
  const auto verts = m.edge_vertex.read(ctx, e);
  const Index v1 = verts[0];
  const Index v2 = verts[1];
  const Index j0 = trsk.offset.read(ctx, e);
  const Index j1 = trsk.offset.read(ctx, e + 1);
  for (int k = 0; k < nlev; ++k) {
    const NS qe = NS(0.5) * (static_cast<NS>(qv.read(ctx, v1 * nlev + k)) +
                             static_cast<NS>(qv.read(ctx, v2 * nlev + k)));
    ctx.flops(2, prec);
    NS acc = NS(0);
    for (Index j = j0; j < j1; ++j) {
      const Index ep = trsk.edge.read(ctx, j);
      const auto pverts = m.edge_vertex.read(ctx, ep);
      const NS qep =
          NS(0.5) * (static_cast<NS>(qv.read(ctx, pverts[0] * nlev + k)) +
                     static_cast<NS>(qv.read(ctx, pverts[1] * nlev + k)));
      acc += static_cast<NS>(trsk.weight.read(ctx, j)) *
             static_cast<NS>(flux.read(ctx, ep * nlev + k)) *
             static_cast<NS>(1.0 / m.edge_le.read(ctx, ep)) * NS(0.5) *
             (qe + qep);
      ctx.divs(1, Prec::kDouble);
      ctx.flops(7, prec);
    }
    ctx.flops(1, Prec::kDouble);
    tend_u.write(ctx, e * nlev + k,
                 tend_u.read(ctx, e * nlev + k) + static_cast<double>(acc));
  }
}

// ---------------------------------------------------------------------------
// compute_rrr: thermodynamic diagnostics for one column. p stays double
// (feeds the sensitive PGF/gravity terms); alpha/Pi run in NS.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void computeRrrColumn(Ctx& ctx, Index c, int nlev, double ptop,
                      V<B, double> delp, V<B, double> theta, V<B, double> phi,
                      MV<B, double> alpha, MV<B, double> p,
                      MV<B, double> exner, MV<B, double> pi_mid) {
  using namespace constants;
  constexpr Prec prec = kPrecOf<NS>;
  const double gamma = kCp / (kCp - kRd);  // cp/cv
  double pi_acc = ptop;
  for (int k = 0; k < nlev; ++k) {
    const double dp = delp.read(ctx, c * nlev + k);
    pi_mid.write(ctx, c * nlev + k, pi_acc + 0.5 * dp);
    pi_acc += dp;
    const NS dphi = static_cast<NS>(phi.read(ctx, c * (nlev + 1) + k) -
                                    phi.read(ctx, c * (nlev + 1) + k + 1));
    const NS a = dphi / static_cast<NS>(dp);
    ctx.flops(4, Prec::kDouble);  // pi_mid accumulation + dphi
    ctx.divs(1, prec);            // alpha = dphi / dp
    alpha.write(ctx, c * nlev + k, static_cast<double>(a));
    const double rho = dp / static_cast<double>(dphi);
    const double pk =
        kP0 * std::pow(rho * kRd * theta.read(ctx, c * nlev + k) / kP0, gamma);
    ctx.divs(2, Prec::kDouble);   // rho and the EOS pressure ratio
    ctx.elems(1, Prec::kDouble);  // pow for p (double on purpose)
    ctx.flops(3, Prec::kDouble);
    p.write(ctx, c * nlev + k, pk);
    ctx.divs(1, Prec::kDouble);  // pk / kP0
    ctx.elems(1, prec);          // pow for Exner (NS)
    exner.write(ctx, c * nlev + k,
                static_cast<double>(std::pow(static_cast<NS>(pk / kP0),
                                             static_cast<NS>(kKappa))));
  }
}

// ---------------------------------------------------------------------------
// calc_pressure_gradient (SENSITIVE -- double only):
//   tend_u(e) -= [ (phm(c2)-phm(c1)) + alpha_e (p(c2)-p(c1)) ] / de.
// ---------------------------------------------------------------------------
template <typename B, typename Ctx>
void calcPressureGradient(Ctx& ctx, Index e, const MeshView<B>& m, int nlev,
                          V<B, double> phi, V<B, double> alpha, V<B, double> p,
                          MV<B, double> tend_u) {
  const auto cells = m.edge_cell.read(ctx, e);
  const Index c1 = cells[0];
  const Index c2 = cells[1];
  const double inv_de = 1.0 / m.edge_de.read(ctx, e);
  ctx.divs(1, Prec::kDouble);
  for (int k = 0; k < nlev; ++k) {
    const double phm1 = 0.5 * (phi.read(ctx, c1 * (nlev + 1) + k) +
                               phi.read(ctx, c1 * (nlev + 1) + k + 1));
    const double phm2 = 0.5 * (phi.read(ctx, c2 * (nlev + 1) + k) +
                               phi.read(ctx, c2 * (nlev + 1) + k + 1));
    const double alpha_e = 0.5 * (alpha.read(ctx, c1 * nlev + k) +
                                  alpha.read(ctx, c2 * nlev + k));
    ctx.flops(10, Prec::kDouble);
    tend_u.write(ctx, e * nlev + k,
                 tend_u.read(ctx, e * nlev + k) -
                     ((phm2 - phm1) + alpha_e * (p.read(ctx, c2 * nlev + k) -
                                                 p.read(ctx, c1 * nlev + k))) *
                         inv_de);
  }
}

// ---------------------------------------------------------------------------
// del2 damping on u: nu * dx^2 * [ grad(div) - curl(zeta) ] . n.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void del2Momentum(Ctx& ctx, Index e, const MeshView<B>& m, int nlev,
                  V<B, double> div_u, V<B, double> vor, double nu_div,
                  double nu_vor, MV<B, double> tend_u) {
  constexpr Prec prec = kPrecOf<NS>;
  const auto cells = m.edge_cell.read(ctx, e);
  const auto verts = m.edge_vertex.read(ctx, e);
  const Index c1 = cells[0];
  const Index c2 = cells[1];
  const Index v1 = verts[0];
  const Index v2 = verts[1];
  const NS inv_de = static_cast<NS>(1.0 / m.edge_de.read(ctx, e));
  const NS inv_le = static_cast<NS>(1.0 / m.edge_le.read(ctx, e));
  const NS scale =
      static_cast<NS>(m.edge_de.read(ctx, e) * m.edge_de.read(ctx, e));
  ctx.divs(2, Prec::kDouble);
  ctx.flops(1, Prec::kDouble);
  for (int k = 0; k < nlev; ++k) {
    const NS grad_div = (static_cast<NS>(div_u.read(ctx, c2 * nlev + k)) -
                         static_cast<NS>(div_u.read(ctx, c1 * nlev + k))) *
                        inv_de;
    const NS curl_vor = (static_cast<NS>(vor.read(ctx, v2 * nlev + k)) -
                         static_cast<NS>(vor.read(ctx, v1 * nlev + k))) *
                        inv_le;
    ctx.flops(7, prec);
    ctx.flops(1, Prec::kDouble);
    tend_u.write(ctx, e * nlev + k,
                 tend_u.read(ctx, e * nlev + k) +
                     static_cast<double>(scale * (static_cast<NS>(nu_div) * grad_div -
                                                  static_cast<NS>(nu_vor) * curl_vor)));
  }
}

// ---------------------------------------------------------------------------
// Horizontal flux-form advection of a cell scalar (theta).
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void scalarFluxTendency(Ctx& ctx, Index c, const MeshView<B>& m, int nlev,
                        V<B, double> flux, V<B, double> scalar,
                        MV<B, double> tend) {
  constexpr Prec prec = kPrecOf<NS>;
  const NS inv_area = static_cast<NS>(1.0 / m.cell_area.read(ctx, c));
  ctx.divs(1, Prec::kDouble);
  for (int k = 0; k < nlev; ++k) tend.write(ctx, c * nlev + k, 0.0);
  const Index j0 = m.cell_offset.read(ctx, c);
  const Index j1 = m.cell_offset.read(ctx, c + 1);
  for (Index j = j0; j < j1; ++j) {
    const Index e = m.cell_edges.read(ctx, j);
    const auto cells = m.edge_cell.read(ctx, e);
    const Index c1 = cells[0];
    const Index c2 = cells[1];
    const NS sign = static_cast<NS>(m.cell_edge_sign.read(ctx, j));
    for (int k = 0; k < nlev; ++k) {
      const NS f = static_cast<NS>(flux.read(ctx, e * nlev + k));
      const NS se = f >= NS(0)
                        ? static_cast<NS>(scalar.read(ctx, c1 * nlev + k))
                        : static_cast<NS>(scalar.read(ctx, c2 * nlev + k));
      ctx.flops(3, prec);
      ctx.flops(1, Prec::kDouble);
      tend.write(ctx, c * nlev + k,
                 tend.read(ctx, c * nlev + k) -
                     static_cast<double>(sign * f * se * inv_area));
    }
  }
}

// ---------------------------------------------------------------------------
// Cell-scalar del2 diffusion: nu * dx^2 * Laplacian(s).
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void del2Scalar(Ctx& ctx, Index c, const MeshView<B>& m, int nlev,
                V<B, double> scalar, double nu, MV<B, double> tend) {
  constexpr Prec prec = kPrecOf<NS>;
  const NS inv_area = static_cast<NS>(1.0 / m.cell_area.read(ctx, c));
  ctx.divs(1, Prec::kDouble);
  const Index j0 = m.cell_offset.read(ctx, c);
  const Index j1 = m.cell_offset.read(ctx, c + 1);
  for (Index j = j0; j < j1; ++j) {
    const Index e = m.cell_edges.read(ctx, j);
    const Index nb = m.cell_cells.read(ctx, j);
    const NS w = static_cast<NS>(m.edge_le.read(ctx, e) /
                                 m.edge_de.read(ctx, e) * m.edge_de.read(ctx, e) *
                                 m.edge_de.read(ctx, e) * nu) *
                 inv_area;
    ctx.divs(1, Prec::kDouble);
    ctx.flops(3, Prec::kDouble);
    ctx.flops(1, prec);
    for (int k = 0; k < nlev; ++k) {
      ctx.flops(2, prec);
      ctx.flops(1, Prec::kDouble);
      tend.write(ctx, c * nlev + k,
                 tend.read(ctx, c * nlev + k) +
                     static_cast<double>(
                         w * (static_cast<NS>(scalar.read(ctx, nb * nlev + k)) -
                              static_cast<NS>(scalar.read(ctx, c * nlev + k)))));
    }
  }
}

// ---------------------------------------------------------------------------
// vert_implicit_solver (SENSITIVE -- double only): one column's fully
// implicit (w, phi) acoustic update, Thomas algorithm over the interior
// interfaces. Scratch rows are caller-provided raw pointers (the host hands
// out Workspace arena rows, the sim driver a plain buffer): per-column
// temporaries live in registers/LDM in the cost model and are not accounted.
// ---------------------------------------------------------------------------
struct VertSolveScratch {
  double* comp = nullptr;   ///< nlev
  double* lower = nullptr;  ///< nlev - 1
  double* diag = nullptr;   ///< nlev - 1
  double* upper = nullptr;  ///< nlev - 1
  double* rhs = nullptr;    ///< nlev - 1
  double* wnew = nullptr;   ///< nlev + 1
};

template <typename B, typename Ctx>
void vertImplicitColumn(Ctx& ctx, Index c, int nlev, double dt, double ptop,
                        V<B, double> delp, V<B, double> theta, V<B, double> p,
                        MV<B, double> w, MV<B, double> phi, double w_damp_tau,
                        const VertSolveScratch& s) {
  using namespace constants;
  const double gamma = kCp / (kCp - kRd);
  const double g = kGravity;
  const Index cc = c * nlev;
  const Index ci = c * (nlev + 1);

  // Layer compressibility factor: dP_j/dphi(top of j) = -gamma p_j/dphi_j.
  double* comp = s.comp;
  for (int j = 0; j < nlev; ++j) {
    const double dphi = phi.read(ctx, ci + j) - phi.read(ctx, ci + j + 1);
    comp[j] = gamma * p.read(ctx, cc + j) / dphi;
    ctx.flops(2, Prec::kDouble);
    ctx.divs(1, Prec::kDouble);
  }

  // Tridiagonal system over interior interfaces k = 1..nlev-1.
  const int n = nlev - 1;
  double* lower = s.lower;
  double* diag = s.diag;
  double* upper = s.upper;
  double* rhs = s.rhs;
  for (int k = 1; k <= n; ++k) {
    const double dpi = 0.5 * (delp.read(ctx, cc + k - 1) + delp.read(ctx, cc + k));
    const double ck = dt * g / dpi;
    const double a = ck * dt * g;
    lower[k - 1] = -a * comp[k - 1];
    diag[k - 1] = 1.0 + a * (comp[k] + comp[k - 1]);
    upper[k - 1] = -a * comp[k];
    rhs[k - 1] = w.read(ctx, ci + k) +
                 ck * (p.read(ctx, cc + k) - p.read(ctx, cc + k - 1)) - dt * g;
    ctx.flops(12, Prec::kDouble);
    ctx.divs(1, Prec::kDouble);
  }
  // Thomas algorithm.
  for (int i = 1; i < n; ++i) {
    const double mm = lower[i] / diag[i - 1];
    diag[i] -= mm * upper[i - 1];
    rhs[i] -= mm * rhs[i - 1];
    ctx.flops(4, Prec::kDouble);
    ctx.divs(1, Prec::kDouble);
  }
  double* wnew = s.wnew;
  for (int k = 0; k <= nlev; ++k) wnew[k] = 0.0;
  if (n > 0) {
    wnew[n] = rhs[n - 1] / diag[n - 1];
    ctx.divs(1, Prec::kDouble);
    for (int i = n - 2; i >= 0; --i) {
      wnew[i + 1] = (rhs[i] - upper[i] * wnew[i + 2]) / diag[i];
      ctx.flops(2, Prec::kDouble);
      ctx.divs(1, Prec::kDouble);
    }
  }
  // Rayleigh damping of w (quasi-hydrostatic limiter).
  if (w_damp_tau > 0) {
    for (int k = 1; k <= n; ++k) {
      wnew[k] /= 1.0 + dt / w_damp_tau;
      ctx.flops(1, Prec::kDouble);
      ctx.divs(1, Prec::kDouble);
    }
  }
  // Layer-inversion limiter; reads phi BEFORE its own update below.
  for (int k = 1; k <= n; ++k) {
    const double room = 0.25 * std::min(phi.read(ctx, ci + k - 1) - phi.read(ctx, ci + k),
                                        phi.read(ctx, ci + k) - phi.read(ctx, ci + k + 1));
    const double bound = room / (dt * g);
    ctx.flops(5, Prec::kDouble);
    ctx.divs(1, Prec::kDouble);
    if (wnew[k] > bound) wnew[k] = bound;
    if (wnew[k] < -bound) wnew[k] = -bound;
  }
  for (int k = 0; k <= nlev; ++k) w.write(ctx, ci + k, wnew[k]);
  for (int k = 1; k <= n; ++k) {
    ctx.flops(3, Prec::kDouble);
    phi.write(ctx, ci + k, phi.read(ctx, ci + k) + dt * g * wnew[k]);
  }
  // Constant-pressure model top: keep the top layer hydrostatically
  // attached to ptop.
  const double pi_top_mid = ptop + 0.5 * delp.read(ctx, cc + 0);
  const double alpha_top = kRd * theta.read(ctx, cc + 0) *
                           std::pow(pi_top_mid / kP0, kKappa) / pi_top_mid;
  ctx.flops(5, Prec::kDouble);
  ctx.divs(2, Prec::kDouble);
  ctx.elems(1, Prec::kDouble);
  phi.write(ctx, ci + 0,
            phi.read(ctx, ci + 1) + alpha_top * delp.read(ctx, cc + 0));
}

// ===========================================================================
// Fused single-sweep kernels (one pass per entity class, outputs written
// once). Same per-element operation order as the unfused sequence above.
// ===========================================================================

// ---------------------------------------------------------------------------
// Fused EDGE sweep: primal_normal_flux_edge + uflux = le * u (double).
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void fusedEdgeFluxes(Ctx& ctx, Index e, const MeshView<B>& m, int nlev,
                     V<B, double> delp, V<B, double> u, MV<B, double> flux,
                     MV<B, double> uflux) {
  constexpr Prec prec = kPrecOf<NS>;
  const auto cells = m.edge_cell.read(ctx, e);
  const Index c1 = cells[0];
  const Index c2 = cells[1];
  const double le_d = m.edge_le.read(ctx, e);
  const NS le = static_cast<NS>(le_d);
  for (int k = 0; k < nlev; ++k) {
    const NS h1 = static_cast<NS>(delp.read(ctx, c1 * nlev + k));
    const NS h2 = static_cast<NS>(delp.read(ctx, c2 * nlev + k));
    const double ue_d = u.read(ctx, e * nlev + k);
    const NS ue = static_cast<NS>(ue_d);
    const NS centered = NS(0.5) * (h1 + h2);
    const NS upwind = ue >= NS(0) ? h1 : h2;
    const NS r = upwind / centered;
    const NS blend = NS(1) / (NS(1) + r * r);
    const NS he = centered + blend * (upwind - centered) * NS(0.5);
    ctx.flops(8, prec);
    ctx.divs(2, prec);
    ctx.flops(1, Prec::kDouble);
    flux.write(ctx, e * nlev + k, static_cast<double>(le * ue * he));
    uflux.write(ctx, e * nlev + k, le_d * ue_d);
  }
}

// ---------------------------------------------------------------------------
// Fused CELL-NEIGHBOR sweep: div(flux) + div(uflux) + kinetic energy.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void fusedCellDiagnostics(Ctx& ctx, Index c, const MeshView<B>& m, int nlev,
                          V<B, double> flux, V<B, double> uflux,
                          V<B, double> u, MV<B, double> div_flux,
                          MV<B, double> div_u, MV<B, double> ke) {
  constexpr Prec prec = kPrecOf<NS>;
  const NS inv_area = static_cast<NS>(1.0 / m.cell_area.read(ctx, c));
  ctx.divs(1, Prec::kDouble);
  for (int k = 0; k < nlev; ++k) {
    div_flux.write(ctx, c * nlev + k, 0.0);
    div_u.write(ctx, c * nlev + k, 0.0);
    ke.write(ctx, c * nlev + k, 0.0);
  }
  const Index j0 = m.cell_offset.read(ctx, c);
  const Index j1 = m.cell_offset.read(ctx, c + 1);
  for (Index j = j0; j < j1; ++j) {
    const Index e = m.cell_edges.read(ctx, j);
    const NS sign = static_cast<NS>(m.cell_edge_sign.read(ctx, j));
    const NS weight = static_cast<NS>(0.25 * m.edge_le.read(ctx, e) *
                                      m.edge_de.read(ctx, e)) *
                      inv_area;
    ctx.flops(2, Prec::kDouble);
    ctx.flops(1, prec);
    for (int k = 0; k < nlev; ++k) {
      div_flux.write(ctx, c * nlev + k,
                     div_flux.read(ctx, c * nlev + k) +
                         static_cast<double>(
                             sign * static_cast<NS>(flux.read(ctx, e * nlev + k)) *
                             inv_area));
      div_u.write(ctx, c * nlev + k,
                  div_u.read(ctx, c * nlev + k) +
                      static_cast<double>(
                          sign * static_cast<NS>(uflux.read(ctx, e * nlev + k)) *
                          inv_area));
      const NS ue = static_cast<NS>(u.read(ctx, e * nlev + k));
      ctx.flops(6, prec);
      ctx.flops(3, Prec::kDouble);
      ke.write(ctx, c * nlev + k,
               ke.read(ctx, c * nlev + k) + static_cast<double>(weight * ue * ue));
    }
  }
}

// ---------------------------------------------------------------------------
// Fused VERTEX sweep: vorticity + mass-weighted potential vorticity.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void fusedVertexDiagnostics(Ctx& ctx, Index v, const MeshView<B>& m, int nlev,
                            V<B, double> u, V<B, double> delp, double omega,
                            MV<B, double> vor, MV<B, double> qv) {
  constexpr Prec prec = kPrecOf<NS>;
  const NS inv_area = static_cast<NS>(1.0 / m.vtx_area.read(ctx, v));
  const NS f = static_cast<NS>(2.0 * omega * m.vtx_x.read(ctx, v).z);
  ctx.flops(2, Prec::kDouble);
  ctx.divs(1, Prec::kDouble);
  const auto ve = m.vtx_edges.read(ctx, v);
  const auto vs = m.vtx_edge_sign.read(ctx, v);
  const auto vc = m.vtx_cells.read(ctx, v);
  const auto kite = m.vtx_kite_area.read(ctx, v);
  for (int k = 0; k < nlev; ++k) {
    NS acc = NS(0);
    for (int j = 0; j < 3; ++j) {
      const Index e = ve[j];
      acc += static_cast<NS>(vs[j] * m.edge_de.read(ctx, e)) *
             static_cast<NS>(u.read(ctx, e * nlev + k));
      ctx.flops(1, Prec::kDouble);
      ctx.flops(2, prec);
    }
    const double zeta = static_cast<double>(acc * inv_area);
    ctx.flops(1, prec);
    vor.write(ctx, v * nlev + k, zeta);
    NS hv = NS(0);
    for (int j = 0; j < 3; ++j) {
      hv += static_cast<NS>(kite[j]) *
            static_cast<NS>(delp.read(ctx, vc[j] * nlev + k));
      ctx.flops(2, prec);
    }
    hv *= inv_area;
    ctx.flops(2, prec);
    ctx.divs(1, prec);
    qv.write(ctx, v * nlev + k,
             static_cast<double>((static_cast<NS>(zeta) + f) / hv));
  }
}

// ---------------------------------------------------------------------------
// Fused CELL-TENDENCY sweep: delp_tend = -div(flux) plus the mass-weighted
// theta tendency (advection + delp * nu * del2). The delp_tend row doubles
// as the del2 accumulator until its own value is written last.
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void fusedScalarTendencies(Ctx& ctx, Index c, const MeshView<B>& m, int nlev,
                           V<B, double> flux, V<B, double> scalar,
                           V<B, double> delp, V<B, double> div_flux, double nu,
                           MV<B, double> delp_tend, MV<B, double> thetam_tend) {
  constexpr Prec prec = kPrecOf<NS>;
  const NS inv_area = static_cast<NS>(1.0 / m.cell_area.read(ctx, c));
  ctx.divs(1, Prec::kDouble);
  for (int k = 0; k < nlev; ++k) {
    thetam_tend.write(ctx, c * nlev + k, 0.0);  // advective accumulator
    delp_tend.write(ctx, c * nlev + k, 0.0);    // del2 accumulator
  }
  const Index j0 = m.cell_offset.read(ctx, c);
  const Index j1 = m.cell_offset.read(ctx, c + 1);
  for (Index j = j0; j < j1; ++j) {
    const Index e = m.cell_edges.read(ctx, j);
    const auto cells = m.edge_cell.read(ctx, e);
    const Index c1 = cells[0];
    const Index c2 = cells[1];
    const Index nb = m.cell_cells.read(ctx, j);
    const NS sign = static_cast<NS>(m.cell_edge_sign.read(ctx, j));
    const NS w = static_cast<NS>(m.edge_le.read(ctx, e) /
                                 m.edge_de.read(ctx, e) * m.edge_de.read(ctx, e) *
                                 m.edge_de.read(ctx, e) * nu) *
                 inv_area;
    ctx.divs(1, Prec::kDouble);
    ctx.flops(3, Prec::kDouble);
    ctx.flops(1, prec);
    for (int k = 0; k < nlev; ++k) {
      const NS fl = static_cast<NS>(flux.read(ctx, e * nlev + k));
      const NS se = fl >= NS(0)
                        ? static_cast<NS>(scalar.read(ctx, c1 * nlev + k))
                        : static_cast<NS>(scalar.read(ctx, c2 * nlev + k));
      ctx.flops(5, prec);
      ctx.flops(2, Prec::kDouble);
      thetam_tend.write(ctx, c * nlev + k,
                        thetam_tend.read(ctx, c * nlev + k) -
                            static_cast<double>(sign * fl * se * inv_area));
      delp_tend.write(ctx, c * nlev + k,
                      delp_tend.read(ctx, c * nlev + k) +
                          static_cast<double>(
                              w * (static_cast<NS>(scalar.read(ctx, nb * nlev + k)) -
                                   static_cast<NS>(scalar.read(ctx, c * nlev + k)))));
    }
  }
  for (int k = 0; k < nlev; ++k) {
    ctx.flops(3, Prec::kDouble);
    thetam_tend.write(ctx, c * nlev + k,
                      thetam_tend.read(ctx, c * nlev + k) +
                          delp.read(ctx, c * nlev + k) *
                              delp_tend.read(ctx, c * nlev + k));
    delp_tend.write(ctx, c * nlev + k, -div_flux.read(ctx, c * nlev + k));
  }
}

// ---------------------------------------------------------------------------
// Fused EDGE-TENDENCY sweep: -grad(ke) + TRSK Coriolis + pressure gradient
// (hard double) + del2 damping; tend_u written exactly once per (e, k).
// qe_row/acc_row are caller-provided nlev-sized scratch rows (Workspace
// arena on the host; the Coriolis stencil runs j-outer / k-inner so TRSK
// indices, weights and 1/le' load once per stencil edge).
// ---------------------------------------------------------------------------
template <precision::NsReal NS, typename B, typename Ctx>
void fusedMomentumTendency(Ctx& ctx, Index e, const MeshView<B>& m,
                           const TrskView<B>& trsk, int nlev, V<B, double> ke,
                           V<B, double> qv, V<B, double> flux,
                           V<B, double> phi, V<B, double> alpha,
                           V<B, double> p, V<B, double> div_u,
                           V<B, double> vor, double nu_div, double nu_vor,
                           MV<B, double> tend_u, NS* qe_row, NS* acc_row) {
  constexpr Prec prec = kPrecOf<NS>;
  const auto cells = m.edge_cell.read(ctx, e);
  const auto verts = m.edge_vertex.read(ctx, e);
  const Index c1 = cells[0];
  const Index c2 = cells[1];
  const Index v1 = verts[0];
  const Index v2 = verts[1];
  const NS inv_de = static_cast<NS>(1.0 / m.edge_de.read(ctx, e));
  const NS inv_le = static_cast<NS>(1.0 / m.edge_le.read(ctx, e));
  const NS scale =
      static_cast<NS>(m.edge_de.read(ctx, e) * m.edge_de.read(ctx, e));
  const double inv_de_d = 1.0 / m.edge_de.read(ctx, e);
  ctx.divs(3, Prec::kDouble);
  ctx.flops(1, Prec::kDouble);
  for (int k = 0; k < nlev; ++k) {
    qe_row[k] = NS(0.5) * (static_cast<NS>(qv.read(ctx, v1 * nlev + k)) +
                           static_cast<NS>(qv.read(ctx, v2 * nlev + k)));
    acc_row[k] = NS(0);
    ctx.flops(2, prec);
  }
  // 2) TRSK nonlinear Coriolis (accumulated first; folded in below in the
  //    unfused gradKe -> Coriolis -> PGF -> del2 order).
  const Index j0 = trsk.offset.read(ctx, e);
  const Index j1 = trsk.offset.read(ctx, e + 1);
  for (Index j = j0; j < j1; ++j) {
    const Index ep = trsk.edge.read(ctx, j);
    const NS wj = static_cast<NS>(trsk.weight.read(ctx, j));
    const NS inv_lep = static_cast<NS>(1.0 / m.edge_le.read(ctx, ep));
    ctx.divs(1, Prec::kDouble);
    const auto pverts = m.edge_vertex.read(ctx, ep);
    const Index w1 = pverts[0];
    const Index w2 = pverts[1];
    for (int k = 0; k < nlev; ++k) {
      const NS qep = NS(0.5) * (static_cast<NS>(qv.read(ctx, w1 * nlev + k)) +
                                static_cast<NS>(qv.read(ctx, w2 * nlev + k)));
      acc_row[k] += wj * static_cast<NS>(flux.read(ctx, ep * nlev + k)) *
                    inv_lep * NS(0.5) * (qe_row[k] + qep);
      ctx.flops(7, prec);
    }
  }
  for (int k = 0; k < nlev; ++k) {
    // 1) -grad(ke) (accumulation starts from the unfused zero-fill).
    double t = 0.0;
    t += static_cast<double>(
        -(static_cast<NS>(ke.read(ctx, c2 * nlev + k)) -
          static_cast<NS>(ke.read(ctx, c1 * nlev + k))) *
        inv_de);
    t += static_cast<double>(acc_row[k]);
    ctx.flops(3, prec);
    ctx.flops(2, Prec::kDouble);
    // 3) Pressure gradient (SENSITIVE -- double).
    const double phm1 = 0.5 * (phi.read(ctx, c1 * (nlev + 1) + k) +
                               phi.read(ctx, c1 * (nlev + 1) + k + 1));
    const double phm2 = 0.5 * (phi.read(ctx, c2 * (nlev + 1) + k) +
                               phi.read(ctx, c2 * (nlev + 1) + k + 1));
    const double alpha_e = 0.5 * (alpha.read(ctx, c1 * nlev + k) +
                                  alpha.read(ctx, c2 * nlev + k));
    t -= ((phm2 - phm1) + alpha_e * (p.read(ctx, c2 * nlev + k) -
                                     p.read(ctx, c1 * nlev + k))) *
         inv_de_d;
    ctx.flops(10, Prec::kDouble);
    // 4) del2 damping.
    const NS grad_div = (static_cast<NS>(div_u.read(ctx, c2 * nlev + k)) -
                         static_cast<NS>(div_u.read(ctx, c1 * nlev + k))) *
                        inv_de;
    const NS curl_vor = (static_cast<NS>(vor.read(ctx, v2 * nlev + k)) -
                         static_cast<NS>(vor.read(ctx, v1 * nlev + k))) *
                        inv_le;
    t += static_cast<double>(scale * (static_cast<NS>(nu_div) * grad_div -
                                      static_cast<NS>(nu_vor) * curl_vor));
    ctx.flops(7, prec);
    ctx.flops(1, Prec::kDouble);
    tend_u.write(ctx, e * nlev + k, t);
  }
}

// ===========================================================================
// tracer_transport_hori_flux_limiter: the four phases of the Zalesak FCT
// update (paper Fig. 9's most array-hungry kernel). Mass bookkeeping stays
// double; only the limiter blending runs in NS.
// ===========================================================================

/// Phase 1 (edges): low-order (upwind) and antidiffusive fluxes.
template <precision::NsReal NS, typename B, typename Ctx>
void tracerEdgeFluxes(Ctx& ctx, Index e, const MeshView<B>& m, int nlev,
                      V<B, double> mean_flux, V<B, double> q,
                      MV<B, double> flux_low, MV<B, double> flux_anti) {
  constexpr Prec prec = kPrecOf<NS>;
  const auto cells = m.edge_cell.read(ctx, e);
  const Index c1 = cells[0];
  const Index c2 = cells[1];
  for (int k = 0; k < nlev; ++k) {
    const double f = mean_flux.read(ctx, e * nlev + k);
    const NS q1 = static_cast<NS>(q.read(ctx, c1 * nlev + k));
    const NS q2 = static_cast<NS>(q.read(ctx, c2 * nlev + k));
    const double low = f * static_cast<double>(f >= 0 ? q1 : q2);
    const double high = f * static_cast<double>(NS(0.5) * (q1 + q2));
    ctx.flops(2, prec);
    ctx.flops(3, Prec::kDouble);
    flux_low.write(ctx, e * nlev + k, low);
    flux_anti.write(ctx, e * nlev + k, high - low);
  }
}

/// Phase 2 (cells): transported-diffused solution from low-order fluxes.
template <typename B, typename Ctx>
void tracerTransportedDiffused(Ctx& ctx, Index c, const MeshView<B>& m,
                               int nlev, double dt, V<B, double> flux_low,
                               V<B, double> q, V<B, double> delp_old,
                               V<B, double> delp_new, MV<B, double> q_td) {
  const Index j0 = m.cell_offset.read(ctx, c);
  const Index j1 = m.cell_offset.read(ctx, c + 1);
  const double area = m.cell_area.read(ctx, c);
  for (int k = 0; k < nlev; ++k) {
    double div = 0.0;
    for (Index j = j0; j < j1; ++j) {
      div += m.cell_edge_sign.read(ctx, j) *
             flux_low.read(ctx, m.cell_edges.read(ctx, j) * nlev + k);
      ctx.flops(2, Prec::kDouble);
    }
    const double mass_old =
        delp_old.read(ctx, c * nlev + k) * q.read(ctx, c * nlev + k);
    ctx.flops(3, Prec::kDouble);
    ctx.divs(2, Prec::kDouble);
    q_td.write(ctx, c * nlev + k,
               (mass_old - dt * div / area) / delp_new.read(ctx, c * nlev + k));
  }
}

/// Phase 3 (cells): Zalesak limiter factors R+/R- from allowed extrema.
template <typename B, typename Ctx>
void tracerLimiterFactors(Ctx& ctx, Index c, const MeshView<B>& m, int nlev,
                          double dt, V<B, double> q, V<B, double> q_td,
                          V<B, double> flux_anti, V<B, double> delp_new,
                          MV<B, double> rp, MV<B, double> rm) {
  const Index j0 = m.cell_offset.read(ctx, c);
  const Index j1 = m.cell_offset.read(ctx, c + 1);
  const double area = m.cell_area.read(ctx, c);
  for (int k = 0; k < nlev; ++k) {
    double qmax = std::max(q.read(ctx, c * nlev + k), q_td.read(ctx, c * nlev + k));
    double qmin = std::min(q.read(ctx, c * nlev + k), q_td.read(ctx, c * nlev + k));
    for (Index j = j0; j < j1; ++j) {
      const Index nb = m.cell_cells.read(ctx, j);
      qmax = std::max({qmax, q.read(ctx, nb * nlev + k), q_td.read(ctx, nb * nlev + k)});
      qmin = std::min({qmin, q.read(ctx, nb * nlev + k), q_td.read(ctx, nb * nlev + k)});
      ctx.flops(4, Prec::kDouble);
    }
    double p_in = 0.0, p_out = 0.0;
    for (Index j = j0; j < j1; ++j) {
      const double fa = m.cell_edge_sign.read(ctx, j) *
                        flux_anti.read(ctx, m.cell_edges.read(ctx, j) * nlev + k);
      ctx.flops(2, Prec::kDouble);
      if (fa < 0) {
        p_in -= fa;  // influx
      } else {
        p_out += fa;
      }
    }
    const double scale =
        dt / (area * delp_new.read(ctx, c * nlev + k));
    const double room_up = (qmax - q_td.read(ctx, c * nlev + k)) / scale;
    const double room_dn = (q_td.read(ctx, c * nlev + k) - qmin) / scale;
    ctx.flops(4, Prec::kDouble);
    ctx.divs(3, Prec::kDouble);
    ctx.divs(2, Prec::kDouble);  // room_up/p_in, room_dn/p_out
    rp.write(ctx, c * nlev + k,
             p_in > 0 ? std::min(1.0, room_up / p_in) : 0.0);
    rm.write(ctx, c * nlev + k,
             p_out > 0 ? std::min(1.0, room_dn / p_out) : 0.0);
  }
}

/// Phase 4 (cells): apply the limited antidiffusive fluxes in place.
template <typename B, typename Ctx>
void tracerApplyLimited(Ctx& ctx, Index c, const MeshView<B>& m, int nlev,
                        double dt, V<B, double> q_td, V<B, double> rp,
                        V<B, double> rm, V<B, double> flux_anti,
                        V<B, double> delp_new, MV<B, double> q) {
  const Index j0 = m.cell_offset.read(ctx, c);
  const Index j1 = m.cell_offset.read(ctx, c + 1);
  const double area = m.cell_area.read(ctx, c);
  for (int k = 0; k < nlev; ++k) {
    double corr = 0.0;
    for (Index j = j0; j < j1; ++j) {
      const Index e = m.cell_edges.read(ctx, j);
      const auto cells = m.edge_cell.read(ctx, e);
      const Index c1 = cells[0];
      const Index c2 = cells[1];
      const double fa = flux_anti.read(ctx, e * nlev + k);
      double limit;
      if (fa >= 0) {  // antidiffusive flux c1 -> c2
        limit = std::min(rp.read(ctx, c2 * nlev + k), rm.read(ctx, c1 * nlev + k));
      } else {
        limit = std::min(rp.read(ctx, c1 * nlev + k), rm.read(ctx, c2 * nlev + k));
      }
      corr += m.cell_edge_sign.read(ctx, j) * limit * fa;
      ctx.flops(4, Prec::kDouble);
    }
    ctx.flops(3, Prec::kDouble);
    ctx.divs(1, Prec::kDouble);
    q.write(ctx, c * nlev + k,
            q_td.read(ctx, c * nlev + k) -
                dt * corr / (area * delp_new.read(ctx, c * nlev + k)));
  }
}

} // namespace grist::backend::kernels
