// SimBackend: the SW26010P cost-model instantiation of the execution-backend
// concept. Views pair real host storage with a virtual base address from the
// swgomp pool allocator; every read/write is accounted against the simulated
// core's LDCache (and, unlike the former hand-written replicas, writes also
// land in the real payload -- so the Sim instantiation computes the same
// values as the Host one and the two can be compared bit-for-bit).
//
// Only swgomp translation units include this header; the production dycore
// sees backend.hpp alone and never links the simulator.
#pragma once

#include <cstddef>
#include <cstdint>

#include "grist/backend/backend.hpp"
#include "grist/sunway/core_group.hpp"

namespace grist::backend {

inline sunway::SimPrecision toSimPrecision(Prec p) {
  return p == Prec::kSingle ? sunway::SimPrecision::kSingle
                            : sunway::SimPrecision::kDouble;
}

/// Adapter from the backend event interface to a simulated core (sunway::Cpe
/// or sunway::Mpe): forwards memory events verbatim and converts Prec to the
/// simulator's SimPrecision.
template <typename Core>
struct SimContext {
  Core* core = nullptr;

  void load(std::uint64_t addr, std::size_t size) { core->load(addr, size); }
  void store(std::uint64_t addr, std::size_t size) { core->store(addr, size); }
  void flops(double n, Prec p) { core->flops(n, toSimPrecision(p)); }
  void divs(double n, Prec p) { core->divs(n, toSimPrecision(p)); }
  void elems(double n, Prec p) { core->elems(n, toSimPrecision(p)); }
};

struct SimBackend {
  /// Default Context (MPE-flavored) so the ExecutionBackend concept and
  /// generic code have a concrete type; kernels run under whatever
  /// SimContext<Core> the offload driver hands them.
  using Context = SimContext<sunway::Mpe>;

  /// elem_bytes is the accounted element size: 4 for `ns` arrays in a MIX
  /// build (the payload stays double on the host; only addresses shrink).
  template <typename T>
  struct View {
    const T* data = nullptr;
    std::uint64_t vbase = 0;
    std::size_t elem_bytes = sizeof(T);

    template <typename Ctx>
    T read(Ctx& ctx, Index i) const {
      ctx.load(vbase + static_cast<std::uint64_t>(i) * elem_bytes, elem_bytes);
      return data[i];
    }
  };

  template <typename T>
  struct MutView {
    T* data = nullptr;
    std::uint64_t vbase = 0;
    std::size_t elem_bytes = sizeof(T);

    template <typename Ctx>
    T read(Ctx& ctx, Index i) const {
      ctx.load(vbase + static_cast<std::uint64_t>(i) * elem_bytes, elem_bytes);
      return data[i];
    }
    template <typename Ctx>
    void write(Ctx& ctx, Index i, T v) const {
      ctx.store(vbase + static_cast<std::uint64_t>(i) * elem_bytes, elem_bytes);
      data[i] = v;
    }
  };
};

} // namespace grist::backend
