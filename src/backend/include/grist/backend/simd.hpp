// SimdBackend: the third ExecutionBackend instantiation (beside
// HostBackend and SimBackend) -- explicitly vectorized host kernels.
//
// The single-source kernel bodies (kernels.hpp) are per-entity scalar code;
// HostBackend compiles them to whatever the baseline ISA auto-vectorizes
// (SSE2 on a portable x86-64 build). The stencil sweeps are memory- and
// divide-bound, so the remaining host headroom is vector width: this layer
// re-expresses each Fig. 9 registry kernel with its vertical (nlev) inner
// loop explicitly vectorized -- `#pragma omp simd` over __restrict rows for
// the streaming sweeps, AVX2/AVX-512 intrinsics for the divide-heavy edge
// interpolation where the compiler's cost model gives up -- and compiles the
// whole set three times into scalar / AVX2 / AVX-512 translation units.
//
// Runtime dispatch (mirroring the DiagnosticsFactory CPU/GPU dispatch
// exemplar): cpuid picks the best tier the build carries and the CPU
// supports; GRIST_SIMD_TIER=scalar|avx2|avx512 clamps it down (never up)
// so tests can pin every tier on one machine. The dispatch surface is a
// table of per-kernel function pointers, two slots per kernel (NS = double
// / float), one entry per Fig. 9 registry kernel.
//
// Numerical contract: every tier is BITWISE identical to the HostBackend
// instantiation, in both NS precisions, for every nlev (masked/scalar
// fringe included). That holds because vectorization is only ever over the
// independent k dimension -- per-element operation order is untouched, the
// j (stencil) accumulation order is preserved by keeping j loops outer,
// IEEE vector div/cvt round like their scalar forms, and the vector TUs are
// compiled with -ffp-contract=off so no FMA contraction sneaks in relative
// to the FMA-less baseline. The parity gates in tests/backend/test_simd.cpp
// are therefore exact (ULP bound 0); the ULP machinery exists for the day a
// kernel opts into reassociation.
//
// Layout contract (src/common): operand arrays are entity-major with nlev
// fastest (unit-stride vector lanes), allocated cache-line aligned and
// padded to whole lines (parallel::FieldT, common::Workspace::acquire).
// Kernels never read past row ends -- the nlev % width fringe runs masked
// (AVX-512) or scalar (AVX2) -- so the padding buys alignment and false-
// sharing isolation, not out-of-bounds slack.
#pragma once

#include <cstddef>
#include <vector>

#include "grist/backend/backend.hpp"
#include "grist/common/types.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/precision/ns.hpp"

namespace grist::backend {

/// ExecutionBackend shape of the SIMD tier: views are raw pointers exactly
/// like HostBackend (accounting compiles away), but carry the layout
/// promise above. Kernels without a vectorized driver yet instantiate the
/// shared scalar bodies with this backend -- structurally identical to
/// Host, so falling back is free and bit-exact by construction.
struct SimdBackend {
  using Context = HostBackend::Context;
  template <typename T>
  using View = HostBackend::View<T>;
  template <typename T>
  using MutView = HostBackend::MutView<T>;
};

static_assert(ExecutionBackend<SimdBackend>);

namespace simd {

using grid::HexMesh;
using grid::TrskWeights;

/// Dispatch tiers, ordered: forcing a tier clamps DOWN from the best
/// available, never up past what the build carries or the CPU supports.
enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* tierName(Tier t);

/// Per-kernel function pointers for one tier. Index the [2] arrays with
/// nsIndex(): 0 = NS double, 1 = NS float. Signatures mirror the
/// dycore::kernels sweep drivers (OpenMP over entities inside); operands
/// are entity-major, nlev-fastest, compact stride.
struct KernelTable {
  Tier tier = Tier::kScalar;

  void (*primal_normal_flux_edge[2])(const HexMesh&, Index nedges, int nlev,
                                     const double* delp, const double* u,
                                     double* flux) = {};
  void (*compute_rrr[2])(Index ncells, int nlev, double ptop,
                         const double* delp, const double* theta,
                         const double* phi, double* alpha, double* p,
                         double* exner, double* pi_mid) = {};
  void (*calc_coriolis_term[2])(const HexMesh&, const TrskWeights&,
                                Index nedges, int nlev, const double* flux,
                                const double* qv, double* tend_u) = {};
  void (*tend_grad_ke_at_edge[2])(const HexMesh&, Index nedges, int nlev,
                                  const double* ke, double* tend_u) = {};
  void (*div_at_cell[2])(const HexMesh&, Index ncells, int nlev,
                         const double* flux, double* div) = {};
  /// All four FCT phases: phase 1 over every mesh edge, phases 2-4 over the
  /// first `ncells` (prognostic) cells. flux_low/flux_anti/q_td/rp/rm are
  /// caller-provided scratch (Workspace rows in the production tracer).
  void (*tracer_hori_flux_limiter[2])(const HexMesh&, Index ncells, int nlev,
                                      double dt, const double* mean_flux,
                                      const double* delp_old,
                                      const double* delp_new, double* q,
                                      double* flux_low, double* flux_anti,
                                      double* q_td, double* rp,
                                      double* rm) = {};
  /// Column-sequential (Thomas) -- hard double, same body every tier; both
  /// slots carry the same pointer so callers can index uniformly.
  void (*vert_implicit_solver[2])(Index ncells, int nlev, double dt,
                                  double ptop, const double* delp,
                                  const double* theta, const double* p,
                                  double* w, double* phi,
                                  double w_damp_tau) = {};
  void (*fused_edge_fluxes[2])(const HexMesh&, Index nedges, int nlev,
                               const double* delp, const double* u,
                               double* flux, double* uflux) = {};
  void (*fused_cell_diagnostics[2])(const HexMesh&, Index ncells, int nlev,
                                    const double* flux, const double* uflux,
                                    const double* u, double* div_flux,
                                    double* div_u, double* ke) = {};
  void (*fused_vertex_diagnostics[2])(const HexMesh&, Index nvertices,
                                      int nlev, const double* u,
                                      const double* delp, double omega,
                                      double* vor, double* qv) = {};
  void (*fused_scalar_tendencies[2])(const HexMesh&, Index ncells, int nlev,
                                     const double* flux, const double* scalar,
                                     const double* delp,
                                     const double* div_flux, double nu,
                                     double* delp_tend,
                                     double* thetam_tend) = {};
  void (*fused_momentum_tendency[2])(const HexMesh&, const TrskWeights&,
                                     Index nedges, int nlev, const double* ke,
                                     const double* qv, const double* flux,
                                     const double* phi, const double* alpha,
                                     const double* p, const double* div_u,
                                     const double* vor, double nu_div,
                                     double nu_vor, double* tend_u) = {};
};

/// Table slot for an NS precision.
template <precision::NsReal NS>
inline constexpr int kNsIndex = std::is_same_v<NS, float> ? 1 : 0;

inline int nsIndex(precision::NsMode ns) {
  return ns == precision::NsMode::kSingle ? 1 : 0;
}

/// Best tier this build carries AND this CPU supports (cpuid), before any
/// override. Stable for the process lifetime.
Tier bestTier();

/// Tiers usable right now, ascending (always starts with kScalar).
std::vector<Tier> availableTiers();

/// The active tier: min(bestTier(), forced), where forced comes from
/// forceTier() or, once at startup, GRIST_SIMD_TIER=scalar|avx2|avx512.
Tier activeTier();

/// Pin the active tier (clamped to bestTier()); used by the parity tests
/// and the per-tier CI stage. Affects subsequent table() calls.
void forceTier(Tier t);

/// Drop the forceTier()/env override and return to bestTier().
void clearForcedTier();

/// False iff GRIST_SIMD=0: the runtime master switch the dycore drivers
/// consult before routing a sweep away from the Host instantiation.
bool enabled();

/// The active tier's kernel table.
const KernelTable& table();

/// A specific tier's table (clamped to bestTier()); lets tests and benches
/// compare tiers without mutating the global override.
const KernelTable& table(Tier t);

} // namespace simd
} // namespace grist::backend
