// Execution-backend concept (paper section 3.3): one kernel body, written
// once against an abstract load/store/arithmetic interface, instantiated for
// every target. A backend provides
//
//   B::Context      -- receives the kernel's memory and arithmetic events;
//   B::View<T>      -- read-only array handle, read(ctx, i);
//   B::MutView<T>   -- writable array handle, read(ctx, i) / write(ctx, i, v).
//
// HostBackend (here) is the production target: views are raw pointers and
// every Context method is an empty inline -- under -O3 the instantiated body
// compiles to exactly the loads/stores/FLOPs the hand-written kernel had
// (guarded by the legacy-vs-backend pairs in bench_host_kernels).
//
// SimBackend (sim.hpp) is the SW26010P cost-model target: views carry the
// pool allocator's virtual base addresses and every read/write/divide is
// accounted against the simulated LDCache -- so the Fig. 9 cost model can
// never drift from the production kernels again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "grist/common/types.hpp"
#include "grist/precision/ns.hpp"

namespace grist::backend {

/// Precision of an accounted arithmetic event. Mirrors sunway::SimPrecision
/// but kept independent so host-only translation units never see the
/// simulator headers.
enum class Prec { kDouble, kSingle };

/// The event precision matching a kernel's NS template parameter.
template <precision::NsReal NS>
inline constexpr Prec kPrecOf =
    std::is_same_v<NS, float> ? Prec::kSingle : Prec::kDouble;

/// Zero-overhead production backend: views are bare pointers, accounting is
/// compiled away.
struct HostBackend {
  struct Context {
    void load(std::uint64_t, std::size_t) {}
    void store(std::uint64_t, std::size_t) {}
    void flops(double, Prec) {}
    void divs(double, Prec) {}
    void elems(double, Prec) {}
  };

  template <typename T>
  struct View {
    const T* data = nullptr;
    template <typename Ctx>
    T read(Ctx&, Index i) const {
      return data[i];
    }
  };

  template <typename T>
  struct MutView {
    T* data = nullptr;
    template <typename Ctx>
    T read(Ctx&, Index i) const {
      return data[i];
    }
    template <typename Ctx>
    void write(Ctx&, Index i, T v) const {
      data[i] = v;
    }
  };
};

/// Light structural check used by the kernel bodies' static_asserts.
template <typename B>
concept ExecutionBackend = requires(typename B::Context ctx,
                                    typename B::template View<double> v,
                                    typename B::template MutView<double> mv) {
  v.read(ctx, Index{0});
  mv.read(ctx, Index{0});
  mv.write(ctx, Index{0}, 0.0);
  ctx.flops(1.0, Prec::kDouble);
  ctx.divs(1.0, Prec::kDouble);
  ctx.elems(1.0, Prec::kDouble);
};

static_assert(ExecutionBackend<HostBackend>);

} // namespace grist::backend
