// Quantized-GEMM microkernel tiers: the dispatch surface the ML dense-math
// layer (src/ml) uses to run bf16/int8 weight-quantized inference GEMMs.
//
// The paper's MIX dycore argument -- drop precision wherever the physics
// tolerates it, because the machine is bandwidth-bound -- applied to the ML
// suite: weights are quantized offline into a packed-panel format (half the
// bytes for bf16, a quarter for int8) and dequantized *inside* the register
// tile, so no fp32 weight matrix is ever materialized. Activation panels are
// converted on the fly at pack time (bf16) or dynamically quantized with a
// per-column scale (int8); the per-row weight scale times the per-column
// activation scale is folded into the store epilogue together with the bias
// and ReLU (one pass, like the fp32 GemmEpilogue).
//
// Dispatch mirrors grist/backend/simd.hpp: one implementation per tier
// (scalar reference / AVX2+FMA / AVX-512, plus a native AVX512-BF16 dot-
// product override where the CPU grants it), compiled into per-ISA TUs and
// selected through a cpuid function-pointer table. The quant tiers reuse the
// simd::Tier ordering and the simd::activeTier() override machinery
// (GRIST_SIMD_TIER / forceTier clamp these tiers down too), but clamp
// independently: the AVX-512 quant tier additionally needs AVX-512BW for the
// int16-widening int8 kernel, and the native-bf16 kernel needs AVX512_BF16 --
// a CPU with plain AVX-512F runs the quant tiers at AVX2.
//
// Numerical contract per precision:
//  - int8: products and accumulation are exact integer arithmetic (int16
//    widening, vpmaddwd-shaped pair sums into int32 -- associative), so every
//    tier is BITWISE identical to the scalar reference.
//  - bf16: a bf16*bf16 product is exact in fp32 (8-bit mantissas), so the
//    widen+FMA tiers (scalar/AVX2/AVX-512F) are bitwise identical to each
//    other: per-output accumulation is the fixed k-ascending pair chain
//    (+= even product, += odd product). The native AVX512-BF16 vdpbf16ps
//    kernel may order/round the two per-pair accumulations differently in
//    hardware, so cross-tier tests hold it to a few-ulp tolerance instead.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

#include "grist/backend/simd.hpp"

namespace grist::backend::quant {

/// Register-tile geometry shared by every tier AND by the offline weight
/// packing (quantized weight snapshots must serve any tier). Weight (A)
/// micro-panels hold kMR rows, activation (B) micro-panels kNR columns; both
/// interleave k in pairs -- ap[k2][kMR][2], bp[k2][kNR][2] -- so the AVX-512
/// pair kernels (vdpbf16ps, vpmaddwd) read one 32-bit lane per (row, k-pair)
/// and the widening tiers deinterleave with shifts. Odd k pads the last pair
/// with zeros (exact in both encodings).
inline constexpr int kQuantMR = 8;
inline constexpr int kQuantNR = 16;

/// k-pair count for a logical depth k.
constexpr int quantKPairs(int k) { return (k + 1) / 2; }

/// bf16 -> fp32 widening (exact: place the 16 bits in the high half).
inline float bf16ToFloat(std::uint16_t h) {
  std::uint32_t u = static_cast<std::uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

/// fp32 -> bf16 with round-to-nearest-even mantissa truncation. The carry
/// trick (u += 0x7FFF + lsb-of-kept-part) matches vcvtneps2bf16 for all
/// finite inputs; weights/activations carry no NaNs. Shared by the scalar
/// pack path, the offline weight packer (src/ml), and the tests, so every
/// producer of a bf16 panel rounds identically.
inline std::uint16_t floatToBf16(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  u += 0x7FFFu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>(u >> 16);
}

/// q = clamp(rne(v * inv_scale), -127, 127). lrintf honors the default
/// round-to-nearest-even mode, matching vcvtps2dq exactly.
inline std::int8_t quantizeInt8(float v, float inv_scale) {
  long q = std::lrintf(v * inv_scale);
  if (q > 127) q = 127;
  if (q < -127) q = -127;
  return static_cast<std::int8_t>(q);
}

/// One tier's function-pointer table. Microkernels accumulate one
/// kQuantMR x kQuantNR tile over the whole depth (no KC split: inference
/// depths are a few hundred and the panels stay cache-resident) and
/// OVERWRITE acc. Pack functions read B through (row_stride, col_stride) so
/// transposed operands cost a stride, not a copy; both zero-pad fringe
/// columns and the odd-k tail.
struct KernelTable {
  simd::Tier tier = simd::Tier::kScalar;
  /// Human-readable kernel flavor for bench labels ("scalar",
  /// "avx2-fma", "avx512-widen", "avx512-bf16dp").
  const char* name = "scalar";
  /// True when bf16_tile is the native vdpbf16ps kernel (tolerance, not
  /// bitwise, against the widen tiers).
  bool native_bf16 = false;

  /// acc[kQuantMR*kQuantNR] (row-major) = sum over k2 pairs of
  /// widen(ap) * widen(bp), fp32 accumulation.
  void (*bf16_tile)(int k2, const std::uint16_t* ap, const std::uint16_t* bp,
                    float* acc) = nullptr;
  /// acc[kQuantMR*kQuantNR] = sum of int16-widened products, int32
  /// accumulation (exact for |q| <= 127 and inference-scale depths).
  void (*int8_tile)(int k2, const std::int8_t* ap, const std::int8_t* bp,
                    std::int32_t* acc) = nullptr;

  /// Pack nr (<= kQuantNR) columns of B[0..k, jc..jc+nr) into a bf16
  /// pair-interleaved panel of quantKPairs(k)*kQuantNR pairs. Element
  /// B[kk][j] is read at b[kk*row_stride + j*col_stride]; conversion is
  /// round-to-nearest-even (identical across tiers).
  void (*pack_b_bf16)(int k, int nr, const float* b, std::ptrdiff_t row_stride,
                      std::ptrdiff_t col_stride, std::uint16_t* bp) = nullptr;
  /// Same, quantizing with the caller's per-column inverse scales
  /// (q = clamp(rne(v * inv_scale[j]), -127, 127); identical across tiers).
  void (*pack_b_int8)(int k, int nr, const float* b, std::ptrdiff_t row_stride,
                      std::ptrdiff_t col_stride, const float* inv_scale,
                      std::int8_t* bp) = nullptr;
};

/// Best quant tier this build carries AND this CPU supports (independent of
/// the simd override; the AVX-512 entry requires AVX-512F+BW).
simd::Tier bestTier();

/// The active table: min(simd::activeTier(), bestTier()) -- GRIST_SIMD=0
/// does NOT disable these tiers (there is no scalar production GEMM to fall
/// back to; the scalar tier IS the fallback), but GRIST_SIMD_TIER /
/// simd::forceTier clamp them down exactly like the stencil tiers.
const KernelTable& table();

/// A specific tier's table (clamped to bestTier()).
const KernelTable& table(simd::Tier t);

} // namespace grist::backend::quant
