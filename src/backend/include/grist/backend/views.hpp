// Backend-typed handles on the mesh connectivity/geometry and the TRSK
// weight table -- the read-only operands every dycore kernel shares. A
// MeshView<HostBackend> is a bundle of raw pointers into the HexMesh
// vectors; a MeshView<SimBackend> additionally carries the virtual base
// addresses the cost model accounts loads against.
#pragma once

#include <array>

#include "grist/backend/backend.hpp"
#include "grist/common/math.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"

namespace grist::backend {

template <typename B, typename T>
using V = typename B::template View<T>;
template <typename B, typename T>
using MV = typename B::template MutView<T>;

template <typename B>
struct MeshView {
  // -- edges --
  V<B, std::array<Index, 2>> edge_cell;
  V<B, std::array<Index, 2>> edge_vertex;
  V<B, double> edge_de;
  V<B, double> edge_le;
  // -- cells --
  V<B, double> cell_area;
  V<B, Index> cell_offset;
  V<B, Index> cell_edges;
  V<B, double> cell_edge_sign;
  V<B, Index> cell_cells;
  // -- vertices --
  V<B, double> vtx_area;
  V<B, Vec3> vtx_x;
  V<B, std::array<Index, 3>> vtx_edges;
  V<B, std::array<double, 3>> vtx_edge_sign;
  V<B, std::array<Index, 3>> vtx_cells;
  V<B, std::array<double, 3>> vtx_kite_area;
};

template <typename B>
struct TrskView {
  V<B, Index> offset;
  V<B, Index> edge;
  V<B, double> weight;
};

// ---- Host factories --------------------------------------------------------

template <typename T>
constexpr HostBackend::View<T> hostView(const T* p) {
  return {p};
}
template <typename T>
constexpr HostBackend::MutView<T> hostMut(T* p) {
  return {p};
}

inline MeshView<HostBackend> makeHostMeshView(const grid::HexMesh& m) {
  MeshView<HostBackend> v;
  v.edge_cell = hostView(m.edge_cell.data());
  v.edge_vertex = hostView(m.edge_vertex.data());
  v.edge_de = hostView(m.edge_de.data());
  v.edge_le = hostView(m.edge_le.data());
  v.cell_area = hostView(m.cell_area.data());
  v.cell_offset = hostView(m.cell_offset.data());
  v.cell_edges = hostView(m.cell_edges.data());
  v.cell_edge_sign = hostView(m.cell_edge_sign.data());
  v.cell_cells = hostView(m.cell_cells.data());
  v.vtx_area = hostView(m.vtx_area.data());
  v.vtx_x = hostView(m.vtx_x.data());
  v.vtx_edges = hostView(m.vtx_edges.data());
  v.vtx_edge_sign = hostView(m.vtx_edge_sign.data());
  v.vtx_cells = hostView(m.vtx_cells.data());
  v.vtx_kite_area = hostView(m.vtx_kite_area.data());
  return v;
}

inline TrskView<HostBackend> makeHostTrskView(const grid::TrskWeights& t) {
  TrskView<HostBackend> v;
  v.offset = hostView(t.offset.data());
  v.edge = hostView(t.edge.data());
  v.weight = hostView(t.weight.data());
  return v;
}

} // namespace grist::backend
