// Tier-generic bodies of the SIMD execution backend (grist/backend/simd.hpp).
//
// This header is the single source for all three dispatch tiers: each of
// src/backend/src/simd_tier_{scalar,avx2,avx512}.cpp defines
//   GRIST_SIMD_TIER_FN  -- the external name of the tier's table factory
//   GRIST_SIMD_TIER_ID  -- the Tier enum value it reports
// and includes this file, compiled under that tier's ISA flags (and with
// -ffp-contract=off on the vector tiers, so no FMA contraction appears
// relative to the FMA-less baseline build). Everything except the factory
// lives in an anonymous namespace: the three TUs deliberately carry three
// differently-compiled copies of the same code, so internal linkage is what
// keeps that from being an ODR violation.
//
// Bitwise contract vs the HostBackend instantiation of
// grist/backend/kernels.hpp, per kernel:
//   - Vector loops run only over k (the vertical): per-element operation
//     order is exactly the scalar body's, so IEEE determinism of vector
//     add/mul/div/cvt gives bit-equal lanes.
//   - Kernels whose scalar body is k-outer / j-inner (Coriolis, vertex
//     diagnostics, tracer phases 2-4) are re-ordered j-outer / k-inner with
//     per-k accumulator rows from the thread's Workspace arena. Each k's
//     contributions still arrive in ascending-j order, so every accumulation
//     chain is unchanged.
//   - std::pow and the column-sequential Thomas solve stay scalar in every
//     tier (a vector math library would round differently; the solver has a
//     loop-carried dependence). compute_rrr splits into a scalar prefix-sum
//     loop, a vectorizable alpha loop, and a scalar pow loop; the vertical
//     implicit solver reuses the shared column body unchanged.
//   - max/min folds keep first-operand-wins tie semantics: max(a, max(b, c))
//     reproduces std::max({a, b, c}) exactly, signed zeros included.
//   - The limiter's branch `if (fa < 0) p_in -= fa; else p_out += fa;`
//     becomes two masked accumulations adding literal 0.0 on the untaken
//     side; both sums are non-negative throughout, so x + 0.0 is bit-exact.
//   - Fringe lanes (nlev % width) run masked (AVX-512) or scalar (AVX2);
//     nothing reads past a row end, so row padding is never relied on.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "grist/backend/kernels.hpp"
#include "grist/backend/simd.hpp"
#include "grist/backend/views.hpp"
#include "grist/common/math.hpp"
#include "grist/common/workspace.hpp"

#if !defined(GRIST_SIMD_TIER_FN) || !defined(GRIST_SIMD_TIER_ID)
#error "simd_kernels_impl.hpp must be included from a tier TU"
#endif

namespace grist::backend::simd {
namespace {

using common::Workspace;
using grid::HexMesh;
using grid::TrskWeights;

// ---------------------------------------------------------------------------
// Edge interpolation core (primal_normal_flux_edge / fused_edge_fluxes):
// the divide-heaviest loop in the registry, hand-vectorized for the double
// NS where the compiler's cost model tends to give up on the two divisions
// plus blend. The scalar form is the reference order of operations:
//   centered = 0.5*(h1+h2); upwind = ue>=0 ? h1 : h2;
//   r = upwind/centered; blend = 1/(1+r*r);
//   he = centered + blend*(upwind-centered)*0.5;
//   flux = (double)(le*ue*he); uflux = le_d*ue_d  (fused only)
// ---------------------------------------------------------------------------

template <precision::NsReal NS>
inline void edgeFluxRow(int nlev, NS le, double le_d, const double* __restrict d1,
                        const double* __restrict d2, const double* __restrict ur,
                        double* __restrict fr, double* __restrict ufr) {
#if defined(__AVX512F__)
  if constexpr (std::is_same_v<NS, double>) {
    const __m512d vhalf = _mm512_set1_pd(0.5);
    const __m512d vone = _mm512_set1_pd(1.0);
    const __m512d vzero = _mm512_setzero_pd();
    const __m512d vle = _mm512_set1_pd(le_d);
    for (int k = 0; k < nlev; k += 8) {
      const int rem = nlev - k;
      const __mmask8 lanes =
          rem >= 8 ? __mmask8(0xff) : __mmask8((1u << rem) - 1u);
      const __m512d h1 = _mm512_maskz_loadu_pd(lanes, d1 + k);
      const __m512d h2 = _mm512_maskz_loadu_pd(lanes, d2 + k);
      const __m512d ue = _mm512_maskz_loadu_pd(lanes, ur + k);
      const __m512d centered = _mm512_mul_pd(vhalf, _mm512_add_pd(h1, h2));
      const __mmask8 pos = _mm512_cmp_pd_mask(ue, vzero, _CMP_GE_OQ);
      const __m512d upwind = _mm512_mask_blend_pd(pos, h2, h1);
      const __m512d r = _mm512_div_pd(upwind, centered);
      const __m512d blend =
          _mm512_div_pd(vone, _mm512_add_pd(vone, _mm512_mul_pd(r, r)));
      const __m512d he = _mm512_add_pd(
          centered,
          _mm512_mul_pd(_mm512_mul_pd(blend, _mm512_sub_pd(upwind, centered)),
                        vhalf));
      const __m512d leu = _mm512_mul_pd(vle, ue);
      _mm512_mask_storeu_pd(fr + k, lanes, _mm512_mul_pd(leu, he));
      if (ufr) _mm512_mask_storeu_pd(ufr + k, lanes, leu);
    }
    return;
  }
#elif defined(__AVX2__)
  if constexpr (std::is_same_v<NS, double>) {
    const __m256d vhalf = _mm256_set1_pd(0.5);
    const __m256d vone = _mm256_set1_pd(1.0);
    const __m256d vzero = _mm256_setzero_pd();
    const __m256d vle = _mm256_set1_pd(le_d);
    int k = 0;
    for (; k + 4 <= nlev; k += 4) {
      const __m256d h1 = _mm256_loadu_pd(d1 + k);
      const __m256d h2 = _mm256_loadu_pd(d2 + k);
      const __m256d ue = _mm256_loadu_pd(ur + k);
      const __m256d centered = _mm256_mul_pd(vhalf, _mm256_add_pd(h1, h2));
      const __m256d pos = _mm256_cmp_pd(ue, vzero, _CMP_GE_OQ);
      const __m256d upwind = _mm256_blendv_pd(h2, h1, pos);
      const __m256d r = _mm256_div_pd(upwind, centered);
      const __m256d blend =
          _mm256_div_pd(vone, _mm256_add_pd(vone, _mm256_mul_pd(r, r)));
      const __m256d he = _mm256_add_pd(
          centered,
          _mm256_mul_pd(_mm256_mul_pd(blend, _mm256_sub_pd(upwind, centered)),
                        vhalf));
      const __m256d leu = _mm256_mul_pd(vle, ue);
      _mm256_storeu_pd(fr + k, _mm256_mul_pd(leu, he));
      if (ufr) _mm256_storeu_pd(ufr + k, leu);
    }
    for (; k < nlev; ++k) {  // scalar fringe, identical to the host body
      const double h1 = d1[k], h2 = d2[k], ue = ur[k];
      const double centered = 0.5 * (h1 + h2);
      const double upwind = ue >= 0.0 ? h1 : h2;
      const double r = upwind / centered;
      const double blend = 1.0 / (1.0 + r * r);
      const double he = centered + blend * (upwind - centered) * 0.5;
      fr[k] = le_d * ue * he;
      if (ufr) ufr[k] = le_d * ue;
    }
    return;
  }
#endif
  // Generic path (scalar tier, and the float NS on every tier): the select,
  // the two divides and the double<->float converts all have masked vector
  // forms, so `omp simd` is enough once the TU carries the ISA flags.
#pragma omp simd
  for (int k = 0; k < nlev; ++k) {
    const NS h1 = static_cast<NS>(d1[k]);
    const NS h2 = static_cast<NS>(d2[k]);
    const double ue_d = ur[k];
    const NS ue = static_cast<NS>(ue_d);
    const NS centered = NS(0.5) * (h1 + h2);
    const NS upwind = ue >= NS(0) ? h1 : h2;
    const NS r = upwind / centered;
    const NS blend = NS(1) / (NS(1) + r * r);
    const NS he = centered + blend * (upwind - centered) * NS(0.5);
    fr[k] = static_cast<double>(le * ue * he);
    if (ufr) ufr[k] = le_d * ue_d;
  }
}

template <precision::NsReal NS>
void primalNormalFluxEdgeImpl(const HexMesh& m, Index nedges, int nlev,
                              const double* delp, const double* u,
                              double* flux) {
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    const double le_d = m.edge_le[e];
    edgeFluxRow<NS>(nlev, static_cast<NS>(le_d), le_d, delp + c1 * nlev,
                    delp + c2 * nlev, u + e * nlev, flux + e * nlev, nullptr);
  }
}

template <precision::NsReal NS>
void fusedEdgeFluxesImpl(const HexMesh& m, Index nedges, int nlev,
                         const double* delp, const double* u, double* flux,
                         double* uflux) {
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    const double le_d = m.edge_le[e];
    edgeFluxRow<NS>(nlev, static_cast<NS>(le_d), le_d, delp + c1 * nlev,
                    delp + c2 * nlev, u + e * nlev, flux + e * nlev,
                    uflux + e * nlev);
  }
}

// ---------------------------------------------------------------------------
// compute_rrr: scalar prefix sum (loop-carried pi_acc), vector alpha loop,
// scalar pow loop. dphi is recomputed in the pow loop -- same inputs, same
// expression, bit-identical value.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void computeRrrImpl(Index ncells, int nlev, double ptop, const double* delp,
                    const double* theta, const double* phi, double* alpha,
                    double* p, double* exner, double* pi_mid) {
  using namespace grist::constants;
  const double gamma = kCp / (kCp - kRd);
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const double* __restrict dp = delp + c * nlev;
    const double* __restrict th = theta + c * nlev;
    const double* __restrict ph = phi + c * (nlev + 1);
    double* __restrict al = alpha + c * nlev;
    double* __restrict pr = p + c * nlev;
    double* __restrict ex = exner + c * nlev;
    double* __restrict pim = pi_mid + c * nlev;
    double pi_acc = ptop;
    for (int k = 0; k < nlev; ++k) {
      pim[k] = pi_acc + 0.5 * dp[k];
      pi_acc += dp[k];
    }
#pragma omp simd
    for (int k = 0; k < nlev; ++k) {
      const NS dphi = static_cast<NS>(ph[k] - ph[k + 1]);
      al[k] = static_cast<double>(dphi / static_cast<NS>(dp[k]));
    }
    for (int k = 0; k < nlev; ++k) {
      const NS dphi = static_cast<NS>(ph[k] - ph[k + 1]);
      const double rho = dp[k] / static_cast<double>(dphi);
      const double pk = kP0 * std::pow(rho * kRd * th[k] / kP0, gamma);
      pr[k] = pk;
      ex[k] = static_cast<double>(
          std::pow(static_cast<NS>(pk / kP0), static_cast<NS>(kKappa)));
    }
  }
}

// ---------------------------------------------------------------------------
// calc_coriolis_term: scalar body is k-outer / j-inner; here j-outer /
// k-inner over qe/acc rows -- each k still accumulates its TRSK stencil in
// ascending-j order, so every chain matches the scalar one bit for bit.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void calcCoriolisTermImpl(const HexMesh& m, const TrskWeights& trsk,
                          Index nedges, int nlev, const double* flux,
                          const double* qv, double* tend_u) {
#pragma omp parallel
  {
    Workspace& ws = Workspace::threadLocal();
    ws.reserve(Workspace::bytesFor<NS>(nlev) * 2);
#pragma omp for schedule(static)
    for (Index e = 0; e < nedges; ++e) {
      const Workspace::Frame frame(ws);
      NS* __restrict qe_row = ws.acquire<NS>(nlev);
      NS* __restrict acc_row = ws.acquire<NS>(nlev);
      const Index v1 = m.edge_vertex[e][0];
      const Index v2 = m.edge_vertex[e][1];
      const double* __restrict q1 = qv + v1 * nlev;
      const double* __restrict q2 = qv + v2 * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        qe_row[k] = NS(0.5) * (static_cast<NS>(q1[k]) + static_cast<NS>(q2[k]));
        acc_row[k] = NS(0);
      }
      const Index j0 = trsk.offset[e];
      const Index j1 = trsk.offset[e + 1];
      for (Index j = j0; j < j1; ++j) {
        const Index ep = trsk.edge[j];
        const NS wj = static_cast<NS>(trsk.weight[j]);
        const NS inv_lep = static_cast<NS>(1.0 / m.edge_le[ep]);
        const double* __restrict p1 = qv + m.edge_vertex[ep][0] * nlev;
        const double* __restrict p2 = qv + m.edge_vertex[ep][1] * nlev;
        const double* __restrict fl = flux + ep * nlev;
#pragma omp simd
        for (int k = 0; k < nlev; ++k) {
          const NS qep =
              NS(0.5) * (static_cast<NS>(p1[k]) + static_cast<NS>(p2[k]));
          acc_row[k] += wj * static_cast<NS>(fl[k]) * inv_lep * NS(0.5) *
                        (qe_row[k] + qep);
        }
      }
      double* __restrict tu = tend_u + e * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        tu[k] = tu[k] + static_cast<double>(acc_row[k]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// tend_grad_ke_at_edge: already elementwise over k.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void tendGradKeAtEdgeImpl(const HexMesh& m, Index nedges, int nlev,
                          const double* ke, double* tend_u) {
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    const NS inv_de = static_cast<NS>(1.0 / m.edge_de[e]);
    const double* __restrict k1 = ke + c1 * nlev;
    const double* __restrict k2 = ke + c2 * nlev;
    double* __restrict tu = tend_u + e * nlev;
#pragma omp simd
    for (int k = 0; k < nlev; ++k) {
      const double add = static_cast<double>(
          -(static_cast<NS>(k2[k]) - static_cast<NS>(k1[k])) * inv_de);
      tu[k] = tu[k] + add;
    }
  }
}

// ---------------------------------------------------------------------------
// div_at_cell: zero fill, then ascending-j accumulation with a vector k
// inner loop (the scalar body is already j-outer / k-inner).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void divAtCellImpl(const HexMesh& m, Index ncells, int nlev,
                   const double* flux, double* div) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    double* __restrict dv = div + c * nlev;
#pragma omp simd
    for (int k = 0; k < nlev; ++k) dv[k] = 0.0;
    const Index j0 = m.cell_offset[c];
    const Index j1 = m.cell_offset[c + 1];
    for (Index j = j0; j < j1; ++j) {
      const NS sign = static_cast<NS>(m.cell_edge_sign[j]);
      const double* __restrict fl = flux + m.cell_edges[j] * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        const double add =
            static_cast<double>(sign * static_cast<NS>(fl[k]) * inv_area);
        dv[k] = dv[k] + add;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// tracer_hori_flux_limiter: all four FCT phases. Phase 1 runs over every
// mesh edge; phases 2-4 over the prognostic cells, re-ordered j-outer /
// k-inner with Workspace rows. Mass bookkeeping is double throughout, as in
// the scalar body; only phase 1's blending runs in NS.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void tracerHoriFluxLimiterImpl(const HexMesh& m, Index ncells, int nlev,
                               double dt, const double* mean_flux,
                               const double* delp_old, const double* delp_new,
                               double* q, double* flux_low, double* flux_anti,
                               double* q_td, double* rp, double* rm) {
  // Phase 1 (edges): low-order and antidiffusive fluxes.
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < m.nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    const double* __restrict mf = mean_flux + e * nlev;
    const double* __restrict qc1 = q + c1 * nlev;
    const double* __restrict qc2 = q + c2 * nlev;
    double* __restrict lo = flux_low + e * nlev;
    double* __restrict an = flux_anti + e * nlev;
#pragma omp simd
    for (int k = 0; k < nlev; ++k) {
      const double f = mf[k];
      const NS q1 = static_cast<NS>(qc1[k]);
      const NS q2 = static_cast<NS>(qc2[k]);
      const double low = f * static_cast<double>(f >= 0 ? q1 : q2);
      const double high = f * static_cast<double>(NS(0.5) * (q1 + q2));
      lo[k] = low;
      an[k] = high - low;
    }
  }

  // Phase 2 (cells): transported-diffused solution from low-order fluxes.
#pragma omp parallel
  {
    Workspace& ws = Workspace::threadLocal();
    ws.reserve(Workspace::bytesFor<double>(nlev) * 4);
#pragma omp for schedule(static)
    for (Index c = 0; c < ncells; ++c) {
      const Workspace::Frame frame(ws);
      double* __restrict div = ws.acquire<double>(nlev);
#pragma omp simd
      for (int k = 0; k < nlev; ++k) div[k] = 0.0;
      const Index j0 = m.cell_offset[c];
      const Index j1 = m.cell_offset[c + 1];
      for (Index j = j0; j < j1; ++j) {
        const double sign = m.cell_edge_sign[j];
        const double* __restrict lo = flux_low + m.cell_edges[j] * nlev;
#pragma omp simd
        for (int k = 0; k < nlev; ++k) div[k] += sign * lo[k];
      }
      const double area = m.cell_area[c];
      const double* __restrict dpo = delp_old + c * nlev;
      const double* __restrict dpn = delp_new + c * nlev;
      const double* __restrict qc = q + c * nlev;
      double* __restrict td = q_td + c * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        const double mass_old = dpo[k] * qc[k];
        td[k] = (mass_old - dt * div[k] / area) / dpn[k];
      }
    }
  }

  // Phase 3 (cells): Zalesak limiter factors R+/R-. The max/min folds keep
  // the scalar first-operand-wins order; p_in/p_out gain a literal +0.0 on
  // the untaken branch (bit-exact: both sums stay non-negative).
#pragma omp parallel
  {
    Workspace& ws = Workspace::threadLocal();
    ws.reserve(Workspace::bytesFor<double>(nlev) * 4);
#pragma omp for schedule(static)
    for (Index c = 0; c < ncells; ++c) {
      const Workspace::Frame frame(ws);
      double* __restrict qmax = ws.acquire<double>(nlev);
      double* __restrict qmin = ws.acquire<double>(nlev);
      double* __restrict p_in = ws.acquire<double>(nlev);
      double* __restrict p_out = ws.acquire<double>(nlev);
      const double* __restrict qc = q + c * nlev;
      const double* __restrict td = q_td + c * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        qmax[k] = std::max(qc[k], td[k]);
        qmin[k] = std::min(qc[k], td[k]);
        p_in[k] = 0.0;
        p_out[k] = 0.0;
      }
      const Index j0 = m.cell_offset[c];
      const Index j1 = m.cell_offset[c + 1];
      for (Index j = j0; j < j1; ++j) {
        const Index nb = m.cell_cells[j];
        const double* __restrict qn = q + nb * nlev;
        const double* __restrict tn = q_td + nb * nlev;
#pragma omp simd
        for (int k = 0; k < nlev; ++k) {
          qmax[k] = std::max(qmax[k], std::max(qn[k], tn[k]));
          qmin[k] = std::min(qmin[k], std::min(qn[k], tn[k]));
        }
      }
      for (Index j = j0; j < j1; ++j) {
        const double sign = m.cell_edge_sign[j];
        const double* __restrict an = flux_anti + m.cell_edges[j] * nlev;
#pragma omp simd
        for (int k = 0; k < nlev; ++k) {
          const double fa = sign * an[k];
          p_in[k] += fa < 0 ? -fa : 0.0;
          p_out[k] += fa < 0 ? 0.0 : fa;
        }
      }
      const double area = m.cell_area[c];
      const double* __restrict dpn = delp_new + c * nlev;
      double* __restrict rpc = rp + c * nlev;
      double* __restrict rmc = rm + c * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        const double scale = dt / (area * dpn[k]);
        const double room_up = (qmax[k] - td[k]) / scale;
        const double room_dn = (td[k] - qmin[k]) / scale;
        rpc[k] = p_in[k] > 0 ? std::min(1.0, room_up / p_in[k]) : 0.0;
        rmc[k] = p_out[k] > 0 ? std::min(1.0, room_dn / p_out[k]) : 0.0;
      }
    }
  }

  // Phase 4 (cells): apply the limited antidiffusive fluxes in place.
#pragma omp parallel
  {
    Workspace& ws = Workspace::threadLocal();
    ws.reserve(Workspace::bytesFor<double>(nlev) * 4);
#pragma omp for schedule(static)
    for (Index c = 0; c < ncells; ++c) {
      const Workspace::Frame frame(ws);
      double* __restrict corr = ws.acquire<double>(nlev);
#pragma omp simd
      for (int k = 0; k < nlev; ++k) corr[k] = 0.0;
      const Index j0 = m.cell_offset[c];
      const Index j1 = m.cell_offset[c + 1];
      for (Index j = j0; j < j1; ++j) {
        const Index e = m.cell_edges[j];
        const Index c1 = m.edge_cell[e][0];
        const Index c2 = m.edge_cell[e][1];
        const double sign = m.cell_edge_sign[j];
        const double* __restrict an = flux_anti + e * nlev;
        const double* __restrict rp1 = rp + c1 * nlev;
        const double* __restrict rp2 = rp + c2 * nlev;
        const double* __restrict rm1 = rm + c1 * nlev;
        const double* __restrict rm2 = rm + c2 * nlev;
#pragma omp simd
        for (int k = 0; k < nlev; ++k) {
          const double fa = an[k];
          const double limit = fa >= 0 ? std::min(rp2[k], rm1[k])
                                       : std::min(rp1[k], rm2[k]);
          corr[k] += sign * limit * fa;
        }
      }
      const double area = m.cell_area[c];
      const double* __restrict dpn = delp_new + c * nlev;
      const double* __restrict td = q_td + c * nlev;
      double* __restrict qc = q + c * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        qc[k] = td[k] - dt * corr[k] / (area * dpn[k]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// vert_implicit_solver: column-sequential Thomas solve -- hard double and
// scalar in every tier (the recurrence is loop-carried). Reuses the shared
// column body via the SimdBackend instantiation, which is structurally the
// Host one, so parity is by construction.
// ---------------------------------------------------------------------------
void vertImplicitSolverImplBody(Index ncells, int nlev, double dt, double ptop,
                                const double* delp, const double* theta,
                                const double* p, double* w, double* phi,
                                double w_damp_tau) {
#pragma omp parallel
  {
    Workspace& ws = Workspace::threadLocal();
    ws.reserve(Workspace::bytesFor<double>(nlev) * 5 +
               Workspace::bytesFor<double>(nlev + 1));
#pragma omp for schedule(static)
    for (Index c = 0; c < ncells; ++c) {
      const Workspace::Frame frame(ws);
      const int n = nlev - 1;
      kernels::VertSolveScratch scratch;
      scratch.comp = ws.acquire<double>(nlev);
      scratch.lower = ws.acquire<double>(n);
      scratch.diag = ws.acquire<double>(n);
      scratch.upper = ws.acquire<double>(n);
      scratch.rhs = ws.acquire<double>(n);
      scratch.wnew = ws.acquire<double>(nlev + 1);
      SimdBackend::Context ctx;
      kernels::vertImplicitColumn<SimdBackend>(
          ctx, c, nlev, dt, ptop, hostView(delp), hostView(theta), hostView(p),
          hostMut(w), hostMut(phi), w_damp_tau, scratch);
    }
  }
}

template <precision::NsReal NS>
void vertImplicitSolverImpl(Index ncells, int nlev, double dt, double ptop,
                            const double* delp, const double* theta,
                            const double* p, double* w, double* phi,
                            double w_damp_tau) {
  vertImplicitSolverImplBody(ncells, nlev, dt, ptop, delp, theta, p, w, phi,
                             w_damp_tau);
}

// ---------------------------------------------------------------------------
// fused_cell_diagnostics: the scalar body is already j-outer / k-inner with
// memory accumulators, so the vector form is a direct transcription. (A
// k-register-tiled variant measured slower here: the ring's per-edge scalar
// setup re-ran once per tile and the tile arrays stayed in stack memory, so
// it added work without cutting the L1 round-trips.)
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedCellDiagnosticsImpl(const HexMesh& m, Index ncells, int nlev,
                              const double* flux, const double* uflux,
                              const double* u, double* div_flux, double* div_u,
                              double* ke) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    double* __restrict df = div_flux + c * nlev;
    double* __restrict du = div_u + c * nlev;
    double* __restrict kc = ke + c * nlev;
#pragma omp simd
    for (int k = 0; k < nlev; ++k) {
      df[k] = 0.0;
      du[k] = 0.0;
      kc[k] = 0.0;
    }
    const Index j0 = m.cell_offset[c];
    const Index j1 = m.cell_offset[c + 1];
    for (Index j = j0; j < j1; ++j) {
      const Index e = m.cell_edges[j];
      const NS sign = static_cast<NS>(m.cell_edge_sign[j]);
      const NS weight =
          static_cast<NS>(0.25 * m.edge_le[e] * m.edge_de[e]) * inv_area;
      const double* __restrict fl = flux + e * nlev;
      const double* __restrict ufl = uflux + e * nlev;
      const double* __restrict ur = u + e * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        df[k] = df[k] +
                static_cast<double>(sign * static_cast<NS>(fl[k]) * inv_area);
        du[k] = du[k] +
                static_cast<double>(sign * static_cast<NS>(ufl[k]) * inv_area);
        const NS ue = static_cast<NS>(ur[k]);
        kc[k] = kc[k] + static_cast<double>(weight * ue * ue);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// fused_vertex_diagnostics: k-tiled over the two NS accumulators
// (circulation, kite-weighted mass). The j rings are fixed size 3 and both
// folds plus the divide epilogue fuse into one register-resident pass per
// tile; each k's fold order is preserved exactly.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedVertexDiagnosticsImpl(const HexMesh& m, Index nvertices, int nlev,
                                const double* u, const double* delp,
                                double omega, double* vor, double* qv) {
#pragma omp parallel for schedule(static)
  for (Index v = 0; v < nvertices; ++v) {
    const NS inv_area = static_cast<NS>(1.0 / m.vtx_area[v]);
    const NS f = static_cast<NS>(2.0 * omega * m.vtx_x[v].z);
    const double* __restrict u0 = u + m.vtx_edges[v][0] * nlev;
    const double* __restrict u1 = u + m.vtx_edges[v][1] * nlev;
    const double* __restrict u2 = u + m.vtx_edges[v][2] * nlev;
    NS sde[3], kite[3];
    for (int j = 0; j < 3; ++j) {
      sde[j] =
          static_cast<NS>(m.vtx_edge_sign[v][j] * m.edge_de[m.vtx_edges[v][j]]);
      kite[j] = static_cast<NS>(m.vtx_kite_area[v][j]);
    }
    const double* __restrict d0 = delp + m.vtx_cells[v][0] * nlev;
    const double* __restrict d1 = delp + m.vtx_cells[v][1] * nlev;
    const double* __restrict d2 = delp + m.vtx_cells[v][2] * nlev;
    double* __restrict vr = vor + v * nlev;
    double* __restrict qr = qv + v * nlev;
#pragma omp simd
    for (int k = 0; k < nlev; ++k) {
      NS acc = NS(0);
      acc += sde[0] * static_cast<NS>(u0[k]);
      acc += sde[1] * static_cast<NS>(u1[k]);
      acc += sde[2] * static_cast<NS>(u2[k]);
      NS hv_acc = NS(0);
      hv_acc += kite[0] * static_cast<NS>(d0[k]);
      hv_acc += kite[1] * static_cast<NS>(d1[k]);
      hv_acc += kite[2] * static_cast<NS>(d2[k]);
      const double zeta = static_cast<double>(acc * inv_area);
      vr[k] = zeta;
      const NS hv = hv_acc * inv_area;
      qr[k] = static_cast<double>((static_cast<NS>(zeta) + f) / hv);
    }
  }
}

// ---------------------------------------------------------------------------
// fused_scalar_tendencies: direct transcription (already j-outer / k-inner
// with the output rows doubling as accumulators; a register-tiled variant
// measured slower, see fused_cell_diagnostics).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedScalarTendenciesImpl(const HexMesh& m, Index ncells, int nlev,
                               const double* flux, const double* scalar,
                               const double* delp, const double* div_flux,
                               double nu, double* delp_tend,
                               double* thetam_tend) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    double* __restrict dt_row = delp_tend + c * nlev;
    double* __restrict tt_row = thetam_tend + c * nlev;
#pragma omp simd
    for (int k = 0; k < nlev; ++k) {
      tt_row[k] = 0.0;  // advective accumulator
      dt_row[k] = 0.0;  // del2 accumulator
    }
    const Index j0 = m.cell_offset[c];
    const Index j1 = m.cell_offset[c + 1];
    const double* __restrict sc = scalar + c * nlev;
    for (Index j = j0; j < j1; ++j) {
      const Index e = m.cell_edges[j];
      const Index c1 = m.edge_cell[e][0];
      const Index c2 = m.edge_cell[e][1];
      const Index nb = m.cell_cells[j];
      const NS sign = static_cast<NS>(m.cell_edge_sign[j]);
      const NS w = static_cast<NS>(m.edge_le[e] / m.edge_de[e] * m.edge_de[e] *
                                   m.edge_de[e] * nu) *
                   inv_area;
      const double* __restrict fl = flux + e * nlev;
      const double* __restrict s1 = scalar + c1 * nlev;
      const double* __restrict s2 = scalar + c2 * nlev;
      const double* __restrict sn = scalar + nb * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        const NS f = static_cast<NS>(fl[k]);
        const NS se =
            f >= NS(0) ? static_cast<NS>(s1[k]) : static_cast<NS>(s2[k]);
        tt_row[k] = tt_row[k] - static_cast<double>(sign * f * se * inv_area);
        dt_row[k] =
            dt_row[k] + static_cast<double>(
                            w * (static_cast<NS>(sn[k]) - static_cast<NS>(sc[k])));
      }
    }
    const double* __restrict dp = delp + c * nlev;
    const double* __restrict df = div_flux + c * nlev;
#pragma omp simd
    for (int k = 0; k < nlev; ++k) {
      tt_row[k] = tt_row[k] + dp[k] * dt_row[k];
      dt_row[k] = -df[k];
    }
  }
}

// ---------------------------------------------------------------------------
// fused_momentum_tendency: the scalar body already hoists the TRSK stencil
// j-outer with qe/acc scratch rows; the vector form just vectorizes its
// three k loops (the final one folds gradKe + Coriolis + PGF + del2 in the
// scalar order, PGF hard double). A k-register-tiled variant measured
// slower: it re-ran the per-ring-edge scalar setup (one divide per TRSK
// edge) once per tile.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedMomentumTendencyImpl(const HexMesh& m, const TrskWeights& trsk,
                               Index nedges, int nlev, const double* ke,
                               const double* qv, const double* flux,
                               const double* phi, const double* alpha,
                               const double* p, const double* div_u,
                               const double* vor, double nu_div, double nu_vor,
                               double* tend_u) {
#pragma omp parallel
  {
    Workspace& ws = Workspace::threadLocal();
    ws.reserve(Workspace::bytesFor<NS>(nlev) * 2);
#pragma omp for schedule(static)
    for (Index e = 0; e < nedges; ++e) {
      const Workspace::Frame frame(ws);
      NS* __restrict qe_row = ws.acquire<NS>(nlev);
      NS* __restrict acc_row = ws.acquire<NS>(nlev);
      const Index c1 = m.edge_cell[e][0];
      const Index c2 = m.edge_cell[e][1];
      const Index v1 = m.edge_vertex[e][0];
      const Index v2 = m.edge_vertex[e][1];
      const NS inv_de = static_cast<NS>(1.0 / m.edge_de[e]);
      const NS inv_le = static_cast<NS>(1.0 / m.edge_le[e]);
      const NS scale = static_cast<NS>(m.edge_de[e] * m.edge_de[e]);
      const double inv_de_d = 1.0 / m.edge_de[e];
      const double* __restrict qv1 = qv + v1 * nlev;
      const double* __restrict qv2 = qv + v2 * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        qe_row[k] =
            NS(0.5) * (static_cast<NS>(qv1[k]) + static_cast<NS>(qv2[k]));
        acc_row[k] = NS(0);
      }
      const Index j0 = trsk.offset[e];
      const Index j1 = trsk.offset[e + 1];
      for (Index j = j0; j < j1; ++j) {
        const Index ep = trsk.edge[j];
        const NS wj = static_cast<NS>(trsk.weight[j]);
        const NS inv_lep = static_cast<NS>(1.0 / m.edge_le[ep]);
        const double* __restrict w1 = qv + m.edge_vertex[ep][0] * nlev;
        const double* __restrict w2 = qv + m.edge_vertex[ep][1] * nlev;
        const double* __restrict fl = flux + ep * nlev;
#pragma omp simd
        for (int k = 0; k < nlev; ++k) {
          const NS qep =
              NS(0.5) * (static_cast<NS>(w1[k]) + static_cast<NS>(w2[k]));
          acc_row[k] += wj * static_cast<NS>(fl[k]) * inv_lep * NS(0.5) *
                        (qe_row[k] + qep);
        }
      }
      const double* __restrict ke1 = ke + c1 * nlev;
      const double* __restrict ke2 = ke + c2 * nlev;
      const double* __restrict ph1 = phi + c1 * (nlev + 1);
      const double* __restrict ph2 = phi + c2 * (nlev + 1);
      const double* __restrict al1 = alpha + c1 * nlev;
      const double* __restrict al2 = alpha + c2 * nlev;
      const double* __restrict p1 = p + c1 * nlev;
      const double* __restrict p2 = p + c2 * nlev;
      const double* __restrict dv1 = div_u + c1 * nlev;
      const double* __restrict dv2 = div_u + c2 * nlev;
      const double* __restrict vr1 = vor + v1 * nlev;
      const double* __restrict vr2 = vor + v2 * nlev;
      double* __restrict tu = tend_u + e * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        double t = 0.0;
        t += static_cast<double>(
            -(static_cast<NS>(ke2[k]) - static_cast<NS>(ke1[k])) * inv_de);
        t += static_cast<double>(acc_row[k]);
        const double phm1 = 0.5 * (ph1[k] + ph1[k + 1]);
        const double phm2 = 0.5 * (ph2[k] + ph2[k + 1]);
        const double alpha_e = 0.5 * (al1[k] + al2[k]);
        t -= ((phm2 - phm1) + alpha_e * (p2[k] - p1[k])) * inv_de_d;
        const NS grad_div =
            (static_cast<NS>(dv2[k]) - static_cast<NS>(dv1[k])) * inv_de;
        const NS curl_vor =
            (static_cast<NS>(vr2[k]) - static_cast<NS>(vr1[k])) * inv_le;
        t += static_cast<double>(scale * (static_cast<NS>(nu_div) * grad_div -
                                          static_cast<NS>(nu_vor) * curl_vor));
        tu[k] = t;
      }
    }
  }
}

} // namespace

// The tier's table factory: the only external symbol each tier TU exports.
const KernelTable& GRIST_SIMD_TIER_FN() {
  static const KernelTable table = [] {
    KernelTable t;
    t.tier = GRIST_SIMD_TIER_ID;
    t.primal_normal_flux_edge[0] = &primalNormalFluxEdgeImpl<double>;
    t.primal_normal_flux_edge[1] = &primalNormalFluxEdgeImpl<float>;
    t.compute_rrr[0] = &computeRrrImpl<double>;
    t.compute_rrr[1] = &computeRrrImpl<float>;
    t.calc_coriolis_term[0] = &calcCoriolisTermImpl<double>;
    t.calc_coriolis_term[1] = &calcCoriolisTermImpl<float>;
    t.tend_grad_ke_at_edge[0] = &tendGradKeAtEdgeImpl<double>;
    t.tend_grad_ke_at_edge[1] = &tendGradKeAtEdgeImpl<float>;
    t.div_at_cell[0] = &divAtCellImpl<double>;
    t.div_at_cell[1] = &divAtCellImpl<float>;
    t.tracer_hori_flux_limiter[0] = &tracerHoriFluxLimiterImpl<double>;
    t.tracer_hori_flux_limiter[1] = &tracerHoriFluxLimiterImpl<float>;
    t.vert_implicit_solver[0] = &vertImplicitSolverImpl<double>;
    t.vert_implicit_solver[1] = &vertImplicitSolverImpl<float>;
    t.fused_edge_fluxes[0] = &fusedEdgeFluxesImpl<double>;
    t.fused_edge_fluxes[1] = &fusedEdgeFluxesImpl<float>;
    t.fused_cell_diagnostics[0] = &fusedCellDiagnosticsImpl<double>;
    t.fused_cell_diagnostics[1] = &fusedCellDiagnosticsImpl<float>;
    t.fused_vertex_diagnostics[0] = &fusedVertexDiagnosticsImpl<double>;
    t.fused_vertex_diagnostics[1] = &fusedVertexDiagnosticsImpl<float>;
    t.fused_scalar_tendencies[0] = &fusedScalarTendenciesImpl<double>;
    t.fused_scalar_tendencies[1] = &fusedScalarTendenciesImpl<float>;
    t.fused_momentum_tendency[0] = &fusedMomentumTendencyImpl<double>;
    t.fused_momentum_tendency[1] = &fusedMomentumTendencyImpl<float>;
    return t;
  }();
  return table;
}

} // namespace grist::backend::simd
