// SWGOMP: the library-level equivalent of the paper's OpenMP-offload
// compatibility layer (section 3.3). A `!$omp target parallel do` becomes
// targetParallelDo(core_group, n, body): the MPE spawns a team through the
// job server, iterations are distributed statically over the 64 CPEs, and
// the region ends with an implicit barrier. Unified shared memory means the
// body reads real host data while the simulator accounts virtual addresses.
//
// omnicopy (section 3.3.2) stages a main-memory block into the CPE's LDM
// scratch via DMA; subsequent accesses through the returned view cost LDM
// latency instead of cache lookups. On non-Sunway builds the paper's
// omnicopy degrades to memcpy; here the analog is that the data was already
// readable -- only the accounting changes.
#pragma once

#include <cstdint>
#include <functional>

#include "grist/common/types.hpp"
#include "grist/sunway/core_group.hpp"
#include "grist/swgomp/pool_allocator.hpp"

namespace grist::swgomp {

/// A typed array visible to the simulator: real host storage plus a virtual
/// base address from the pool allocator. elem_bytes is 4 when the array
/// holds `ns` (single-precision) payloads in a MIX build.
template <typename T>
struct VirtualArray {
  const T* data = nullptr;
  std::uint64_t vbase = 0;
  std::size_t elem_bytes = sizeof(T);

  VirtualArray() = default;
  VirtualArray(const T* data_, PoolAllocator& alloc, std::size_t count,
               std::size_t elem_bytes_ = sizeof(T))
      : data(data_), vbase(alloc.allocate(count * elem_bytes_)),
        elem_bytes(elem_bytes_) {}

  /// Read element i through a CPE/MPE context (cache-accounted).
  template <typename Ctx>
  T read(Ctx& ctx, Index i) const {
    ctx.load(vbase + static_cast<std::uint64_t>(i) * elem_bytes, elem_bytes);
    return data[i];
  }
  /// Account a write (value lands in caller-owned memory elsewhere).
  template <typename Ctx>
  void write(Ctx& ctx, Index i) const {
    ctx.store(vbase + static_cast<std::uint64_t>(i) * elem_bytes, elem_bytes);
  }
};

/// LDM-resident view created by omnicopy: element reads cost LDM latency.
template <typename T>
struct LdmView {
  const T* data = nullptr;
  std::size_t elem_bytes = sizeof(T);

  T read(sunway::Cpe& cpe, Index i) const {
    cpe.ldmAccess(elem_bytes);
    return data[i];
  }
};

/// Stage count elements starting at `first` into LDM scratch via DMA.
template <typename T>
LdmView<T> omnicopy(sunway::Cpe& cpe, const VirtualArray<T>& src, Index first,
                    std::size_t count) {
  const std::size_t bytes = count * src.elem_bytes;
  cpe.ldmAlloc(bytes);
  cpe.dma(bytes);
  return LdmView<T>{src.data + first, src.elem_bytes};
}

/// Release an LDM staging buffer (device-stack unwind).
template <typename T>
void omnifree(sunway::Cpe& cpe, const LdmView<T>& view, std::size_t count) {
  cpe.ldmFree(count * view.elem_bytes);
}

/// Execute body(cpe, i) for i in [0, n), statically chunked over the CPEs
/// of `cg` (the `!$omp target parallel do` of Fig. 4). Returns the region's
/// cycle count (slowest CPE, including spawn overhead and final barrier).
template <typename Body>
double targetParallelDo(sunway::CoreGroup& cg, Index n, Body&& body) {
  cg.spawnTeam();
  const int ncpe = cg.cpeCount();
  const Index chunk = (n + ncpe - 1) / ncpe;
  for (int p = 0; p < ncpe; ++p) {
    sunway::Cpe& cpe = cg.cpe(p);
    const Index lo = static_cast<Index>(p) * chunk;
    const Index hi = std::min(n, lo + chunk);
    for (Index i = lo; i < hi; ++i) body(cpe, i);
  }
  return cg.joinTeam();
}

/// The un-offloaded baseline: the same loop on the MPE.
template <typename Body>
double mpeSerialDo(sunway::CoreGroup& cg, Index n, Body&& body) {
  for (Index i = 0; i < n; ++i) body(cg.mpe(), i);
  return cg.mpe().cycles();
}

} // namespace grist::swgomp
