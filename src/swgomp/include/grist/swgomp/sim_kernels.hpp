// Instrumented replicas of the dycore kernels benchmarked in the paper's
// Fig. 9, expressed as SWGOMP offload bodies over the simulated SW26010P.
// Each replica issues the same loads/stores/divides/elementary calls per
// iteration as its production counterpart in src/dycore, against virtual
// addresses handed out by the pool allocator -- so the four configurations
// (DP / DP+DST / MIX / MIX+DST, on MPE or 64 CPEs) reproduce the paper's
// cache-thrashing and precision effects mechanistically.
#pragma once

#include <string>
#include <vector>

#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/sunway/core_group.hpp"
#include "grist/swgomp/offload.hpp"

namespace grist::swgomp {

enum class SimKernel {
  kPrimalNormalFluxEdge,
  kComputeRrr,
  kCalcCoriolisTerm,
  kTendGradKeAtEdge,
  kDivAtCell,
  kTracerHoriFluxLimiter,
  kVertImplicitSolver,
  // Fused single-sweep variants mirroring src/dycore's fused tendency
  // pipeline: same loads/stores per iteration as the fused production
  // kernels, so the LDCache model sees the reduced stream count.
  kFusedEdgeFluxes,
  kFusedCellDiagnostics,
  kFusedMomentumTendency,
};

const char* kernelName(SimKernel kernel);
std::vector<SimKernel> allSimKernels();

struct SimConfig {
  AllocPolicy policy = AllocPolicy::kWayAligned;
  sunway::SimPrecision precision = sunway::SimPrecision::kDouble;
  bool on_cpe = true;   ///< false: the MPE baseline
  bool use_ldm = false; ///< stage hot arrays into LDM via omnicopy
  int nlev = 30;
};

/// Run one kernel over the mesh on the given (reset) core group; returns
/// the region's cycle count.
double runSimKernel(SimKernel kernel, const grid::HexMesh& mesh,
                    const grid::TrskWeights& trsk, const SimConfig& config,
                    sunway::CoreGroup& cg);

/// Fig. 9 row: speedups of the four CPE configurations over the MPE-DP
/// baseline for one kernel.
struct KernelSpeedups {
  std::string kernel;
  double dp = 0, dp_dst = 0, mix = 0, mix_dst = 0;
};
KernelSpeedups measureKernelSpeedups(SimKernel kernel, const grid::HexMesh& mesh,
                                     const grid::TrskWeights& trsk, int nlev = 30);

} // namespace grist::swgomp
