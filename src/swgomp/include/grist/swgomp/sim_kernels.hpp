// Fig. 9 kernel registry over the simulated SW26010P.
//
// Since the execution-backend refactor there are NO hand-written kernel
// replicas here: every kernel below is the SimBackend instantiation of the
// SAME body (grist/backend/kernels.hpp) the production dycore runs, driven
// through the SWGOMP offload layer. The simulator accounts each load/store/
// divide the shared body performs against virtual addresses from the pool
// allocator, and -- because SimBackend views write through to real payloads
// -- computes the same values as the host instantiation, bit for bit
// (asserted by tests/swgomp/test_backend_parity.cpp).
#pragma once

#include <string>
#include <vector>

#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/precision/ns.hpp"
#include "grist/sunway/core_group.hpp"
#include "grist/swgomp/offload.hpp"

namespace grist::swgomp {

enum class SimKernel {
  kPrimalNormalFluxEdge,
  kComputeRrr,
  kCalcCoriolisTerm,
  kTendGradKeAtEdge,
  kDivAtCell,
  kTracerHoriFluxLimiter,
  kVertImplicitSolver,
  // Fused single-sweep variants mirroring src/dycore's fused tendency
  // pipeline: same loads/stores per iteration as the fused production
  // kernels, so the LDCache model sees the reduced stream count.
  kFusedEdgeFluxes,
  kFusedCellDiagnostics,
  kFusedVertexDiagnostics,
  kFusedScalarTendencies,
  kFusedMomentumTendency,
};

const char* kernelName(SimKernel kernel);
std::vector<SimKernel> allSimKernels();

struct SimConfig {
  AllocPolicy policy = AllocPolicy::kWayAligned;
  sunway::SimPrecision precision = sunway::SimPrecision::kDouble;
  bool on_cpe = true;   ///< false: the MPE baseline
  bool use_ldm = false; ///< stage hot arrays into LDM via omnicopy
  int nlev = 30;
};

/// Real model-field payloads the kernels run over: physically seeded (the
/// same sinusoidal state the host benchmarks use, with the diagnostic
/// pipeline pre-run so every kernel input is filled). Both backends read and
/// write these arrays, so host/sim outputs are directly comparable.
struct SimKernelData {
  int nlev = 0;
  Index ncells = 0, nedges = 0, nvertices = 0;
  // -- cell fields (ncells x nlev) --
  std::vector<double> delp, theta, alpha, p, exner, pi_mid, ke, div_flux,
      div_u, delp_tend, thetam_tend, q, q_td, rp, rm, delp_old, delp_new;
  // -- cell interface fields (ncells x (nlev+1)) --
  std::vector<double> phi, w;
  // -- edge fields (nedges x nlev) --
  std::vector<double> u, flux, uflux, tend_u, mean_flux, flux_low, flux_anti;
  // -- vertex fields (nvertices x nlev) --
  std::vector<double> vor, qv;
};

SimKernelData makeSimKernelData(const grid::HexMesh& mesh, int nlev);

/// Which instantiation of the shared kernel body to run over a SimKernelData.
enum class ExecBackend {
  kHost, ///< HostBackend: raw pointers, no accounting
  kSim,  ///< SimBackend on simulated CPEs: accounted, writes land in data too
};

/// Run one kernel ONCE over `data` through the chosen backend (fixed solver
/// constants, see sim_kernels.cpp). Outputs land in `data` either way --
/// running the same seeded data through both backends must produce bitwise
/// identical arrays in both NS precisions.
void runKernelOnData(SimKernel kernel, const grid::HexMesh& mesh,
                     const grid::TrskWeights& trsk, precision::NsMode ns,
                     ExecBackend exec, SimKernelData& data);

/// Run one kernel over the mesh on the given (reset) core group; returns
/// the region's steady-state (warm) cycle count: the kernel runs twice over
/// freshly built payloads (restored between passes, unaccounted) and the
/// second pass is reported.
double runSimKernel(SimKernel kernel, const grid::HexMesh& mesh,
                    const grid::TrskWeights& trsk, const SimConfig& config,
                    sunway::CoreGroup& cg);

/// Fig. 9 row: speedups of the four CPE configurations over the MPE-DP
/// baseline for one kernel.
struct KernelSpeedups {
  std::string kernel;
  double dp = 0, dp_dst = 0, mix = 0, mix_dst = 0;
};
KernelSpeedups measureKernelSpeedups(SimKernel kernel, const grid::HexMesh& mesh,
                                     const grid::TrskWeights& trsk, int nlev = 30);

} // namespace grist::swgomp
