// The memory-address-distributor pool allocator of paper section 3.3.3
// (Fig. 6): arrays whose base addresses are aligned to a multiple of the
// cache-way size all map to the same cache sets and thrash a 4-way LDCache
// as soon as a loop touches more than four arrays. The distributing policy
// staggers successive bases across sets.
//
// The allocator hands out VIRTUAL addresses for the cache simulator; the
// payload data lives in ordinary host memory owned by the caller.
#pragma once

#include <cstdint>
#include <cstddef>

#include "grist/sunway/arch.hpp"

namespace grist::swgomp {

enum class AllocPolicy {
  kWayAligned,   ///< pathological: every base at a way-size boundary
  kDistributed,  ///< staggered bases (the paper's DST optimization)
};

class PoolAllocator {
 public:
  explicit PoolAllocator(AllocPolicy policy, const sunway::ArchParams& params = {});

  /// Virtual base address for an array of `bytes` bytes.
  std::uint64_t allocate(std::size_t bytes);

  AllocPolicy policy() const { return policy_; }
  void reset();

 private:
  AllocPolicy policy_;
  std::size_t way_bytes_;
  std::size_t line_bytes_;
  std::uint64_t next_ = 1 << 20;  // keep away from address 0
  int arrays_ = 0;
};

} // namespace grist::swgomp
