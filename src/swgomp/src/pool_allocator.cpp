#include "grist/swgomp/pool_allocator.hpp"

namespace grist::swgomp {

PoolAllocator::PoolAllocator(AllocPolicy policy, const sunway::ArchParams& params)
    : policy_(policy),
      way_bytes_(params.ldcache_bytes / params.ldcache_ways),
      line_bytes_(params.ldcache_line) {}

std::uint64_t PoolAllocator::allocate(std::size_t bytes) {
  const auto align_up = [](std::uint64_t x, std::uint64_t a) {
    return (x + a - 1) / a * a;
  };
  std::uint64_t base;
  if (policy_ == AllocPolicy::kWayAligned) {
    base = align_up(next_, way_bytes_);
  } else {
    // Distributed: line-aligned, then staggered by a per-array offset that
    // walks the sets with a stride coprime to the set count.
    base = align_up(next_, way_bytes_);
    const std::uint64_t sets = way_bytes_ / line_bytes_;
    const std::uint64_t lane = (static_cast<std::uint64_t>(arrays_) * 17) % sets;
    base += lane * line_bytes_;
  }
  ++arrays_;
  next_ = base + bytes;
  return base;
}

void PoolAllocator::reset() {
  next_ = 1 << 20;
  arrays_ = 0;
}

} // namespace grist::swgomp
