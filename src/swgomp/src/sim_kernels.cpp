// Fig. 9 kernel registry: SimBackend instantiations of the shared kernel
// bodies in grist/backend/kernels.hpp, driven through the SWGOMP offload
// layer. This file contains NO kernel arithmetic of its own -- it binds
// payloads + virtual addresses to views, picks an execution path (64 CPEs /
// MPE / plain host), and measures cycles. The former hand-maintained replica
// bodies are gone; the cost model follows the production code by
// construction.
#include "grist/swgomp/sim_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "grist/backend/kernels.hpp"
#include "grist/backend/sim.hpp"
#include "grist/backend/views.hpp"
#include "grist/common/math.hpp"

namespace grist::swgomp {

using grid::HexMesh;
using grid::TrskWeights;
using sunway::CoreGroup;
using sunway::SimPrecision;
namespace bk = grist::backend::kernels;

namespace {

// Fixed solver constants for the standalone kernel runs (dycore-typical
// values; the host benchmarks use the same state). Changing any of these
// invalidates the golden cycle counts in tests/swgomp/test_fig9_golden.cpp.
constexpr double kSimDt = 300.0;
constexpr double kSimPtop = 225.0;
constexpr double kSimWDampTau = 900.0;
constexpr double kNuTheta = 0.005 / 300.0;
constexpr double kNuDiv = 0.02 / 300.0;
constexpr double kNuVor = 0.005 / 300.0;

struct SolverParams {
  int nlev = 0;
  Index ncells = 0, nedges = 0, nvertices = 0;
};

// ---- view bundles ---------------------------------------------------------

/// Backend-typed handles on every SimKernelData field, mirroring its
/// declaration order (which is also the sim virtual-address layout order).
template <typename B>
struct KernelViews {
  backend::MV<B, double> delp, theta, alpha, p, exner, pi_mid, ke, div_flux,
      div_u, delp_tend, thetam_tend, q, q_td, rp, rm, delp_old, delp_new, phi,
      w, u, flux, uflux, tend_u, mean_flux, flux_low, flux_anti, vor, qv;
};

/// Read-only view of a mutable handle (the shared bodies take V for inputs).
inline backend::HostBackend::View<double> ro(
    const backend::HostBackend::MutView<double>& m) {
  return {m.data};
}
inline backend::SimBackend::View<double> ro(
    const backend::SimBackend::MutView<double>& m) {
  return {m.data, m.vbase, m.elem_bytes};
}

KernelViews<backend::HostBackend> makeHostKernelViews(SimKernelData& d) {
  using backend::hostMut;
  KernelViews<backend::HostBackend> v;
  v.delp = hostMut(d.delp.data());
  v.theta = hostMut(d.theta.data());
  v.alpha = hostMut(d.alpha.data());
  v.p = hostMut(d.p.data());
  v.exner = hostMut(d.exner.data());
  v.pi_mid = hostMut(d.pi_mid.data());
  v.ke = hostMut(d.ke.data());
  v.div_flux = hostMut(d.div_flux.data());
  v.div_u = hostMut(d.div_u.data());
  v.delp_tend = hostMut(d.delp_tend.data());
  v.thetam_tend = hostMut(d.thetam_tend.data());
  v.q = hostMut(d.q.data());
  v.q_td = hostMut(d.q_td.data());
  v.rp = hostMut(d.rp.data());
  v.rm = hostMut(d.rm.data());
  v.delp_old = hostMut(d.delp_old.data());
  v.delp_new = hostMut(d.delp_new.data());
  v.phi = hostMut(d.phi.data());
  v.w = hostMut(d.w.data());
  v.u = hostMut(d.u.data());
  v.flux = hostMut(d.flux.data());
  v.uflux = hostMut(d.uflux.data());
  v.tend_u = hostMut(d.tend_u.data());
  v.mean_flux = hostMut(d.mean_flux.data());
  v.flux_low = hostMut(d.flux_low.data());
  v.flux_anti = hostMut(d.flux_anti.data());
  v.vor = hostMut(d.vor.data());
  v.qv = hostMut(d.qv.data());
  return v;
}

template <typename T>
backend::SimBackend::View<T> simView(const std::vector<T>& v,
                                     PoolAllocator& alloc,
                                     std::size_t elem_bytes = sizeof(T)) {
  return {v.data(), alloc.allocate(v.size() * elem_bytes), elem_bytes};
}

template <typename T>
backend::SimBackend::MutView<T> simMut(std::vector<T>& v, PoolAllocator& alloc,
                                       std::size_t elem_bytes = sizeof(T)) {
  return {v.data(), alloc.allocate(v.size() * elem_bytes), elem_bytes};
}

backend::MeshView<backend::SimBackend> makeSimMeshView(const HexMesh& m,
                                                       PoolAllocator& alloc) {
  backend::MeshView<backend::SimBackend> v;
  v.edge_cell = simView(m.edge_cell, alloc);
  v.edge_vertex = simView(m.edge_vertex, alloc);
  v.edge_de = simView(m.edge_de, alloc);
  v.edge_le = simView(m.edge_le, alloc);
  v.cell_area = simView(m.cell_area, alloc);
  v.cell_offset = simView(m.cell_offset, alloc);
  v.cell_edges = simView(m.cell_edges, alloc);
  v.cell_edge_sign = simView(m.cell_edge_sign, alloc);
  v.cell_cells = simView(m.cell_cells, alloc);
  v.vtx_area = simView(m.vtx_area, alloc);
  v.vtx_x = simView(m.vtx_x, alloc);
  v.vtx_edges = simView(m.vtx_edges, alloc);
  v.vtx_edge_sign = simView(m.vtx_edge_sign, alloc);
  v.vtx_cells = simView(m.vtx_cells, alloc);
  v.vtx_kite_area = simView(m.vtx_kite_area, alloc);
  return v;
}

backend::TrskView<backend::SimBackend> makeSimTrskView(const TrskWeights& t,
                                                       PoolAllocator& alloc) {
  backend::TrskView<backend::SimBackend> v;
  v.offset = simView(t.offset, alloc);
  v.edge = simView(t.edge, alloc);
  v.weight = simView(t.weight, alloc);
  return v;
}

/// `mix` shrinks the accounted element size of the ns-switchable arrays to
/// 4 bytes (payloads stay double on the host; only addresses change). The
/// precision-SENSITIVE arrays -- phi, p, w, the accumulated tracer mass flux
/// and the tracer mass bookkeeping -- stay 8 bytes in every configuration.
KernelViews<backend::SimBackend> makeSimKernelViews(SimKernelData& d,
                                                    PoolAllocator& alloc,
                                                    bool mix) {
  const std::size_t nsb = mix ? 4 : 8;
  KernelViews<backend::SimBackend> v;
  v.delp = simMut(d.delp, alloc, nsb);
  v.theta = simMut(d.theta, alloc, nsb);
  v.alpha = simMut(d.alpha, alloc, nsb);
  v.p = simMut(d.p, alloc, 8);
  v.exner = simMut(d.exner, alloc, nsb);
  v.pi_mid = simMut(d.pi_mid, alloc, nsb);
  v.ke = simMut(d.ke, alloc, nsb);
  v.div_flux = simMut(d.div_flux, alloc, nsb);
  v.div_u = simMut(d.div_u, alloc, nsb);
  v.delp_tend = simMut(d.delp_tend, alloc, nsb);
  v.thetam_tend = simMut(d.thetam_tend, alloc, nsb);
  v.q = simMut(d.q, alloc, nsb);
  v.q_td = simMut(d.q_td, alloc, nsb);
  v.rp = simMut(d.rp, alloc, nsb);
  v.rm = simMut(d.rm, alloc, nsb);
  v.delp_old = simMut(d.delp_old, alloc, 8);
  v.delp_new = simMut(d.delp_new, alloc, 8);
  v.phi = simMut(d.phi, alloc, 8);
  v.w = simMut(d.w, alloc, 8);
  v.u = simMut(d.u, alloc, nsb);
  v.flux = simMut(d.flux, alloc, nsb);
  v.uflux = simMut(d.uflux, alloc, nsb);
  v.tend_u = simMut(d.tend_u, alloc, nsb);
  v.mean_flux = simMut(d.mean_flux, alloc, 8);
  v.flux_low = simMut(d.flux_low, alloc, nsb);
  v.flux_anti = simMut(d.flux_anti, alloc, nsb);
  v.vor = simMut(d.vor, alloc, nsb);
  v.qv = simMut(d.qv, alloc, nsb);
  return v;
}

// ---- phase lists ----------------------------------------------------------

/// Express each registered kernel ONCE as its sequence of offload regions
/// (count + per-entity body over the shared backend kernels). `dofn` is the
/// execution strategy: a plain host loop, targetParallelDo over 64 CPEs, or
/// mpeSerialDo -- every path runs the exact same bodies.
template <precision::NsReal NS, typename B, typename Do>
void runKernelPhases(SimKernel kernel, const backend::MeshView<B>& mv,
                     const backend::TrskView<B>& tv, const KernelViews<B>& kv,
                     const SolverParams& sp, Do&& dofn) {
  const int nlev = sp.nlev;
  switch (kernel) {
    case SimKernel::kPrimalNormalFluxEdge:
      dofn(sp.nedges, [&](auto& ctx, Index e) {
        bk::primalNormalFluxEdge<NS>(ctx, e, mv, nlev, ro(kv.delp), ro(kv.u),
                                     kv.flux);
      });
      return;
    case SimKernel::kComputeRrr:
      dofn(sp.ncells, [&](auto& ctx, Index c) {
        bk::computeRrrColumn<NS, B>(ctx, c, nlev, kSimPtop, ro(kv.delp),
                                    ro(kv.theta), ro(kv.phi), kv.alpha, kv.p,
                                    kv.exner, kv.pi_mid);
      });
      return;
    case SimKernel::kCalcCoriolisTerm:
      dofn(sp.nedges, [&](auto& ctx, Index e) {
        bk::calcCoriolisTerm<NS>(ctx, e, mv, tv, nlev, ro(kv.flux), ro(kv.qv),
                                 kv.tend_u);
      });
      return;
    case SimKernel::kTendGradKeAtEdge:
      dofn(sp.nedges, [&](auto& ctx, Index e) {
        bk::tendGradKeAtEdge<NS>(ctx, e, mv, nlev, ro(kv.ke), kv.tend_u);
      });
      return;
    case SimKernel::kDivAtCell:
      dofn(sp.ncells, [&](auto& ctx, Index c) {
        bk::divAtCell<NS>(ctx, c, mv, nlev, ro(kv.flux), kv.div_flux);
      });
      return;
    case SimKernel::kTracerHoriFluxLimiter:
      // The four FCT phases, each its own offload region exactly like the
      // production tracer transport.
      dofn(sp.nedges, [&](auto& ctx, Index e) {
        bk::tracerEdgeFluxes<NS>(ctx, e, mv, nlev, ro(kv.mean_flux), ro(kv.q),
                                 kv.flux_low, kv.flux_anti);
      });
      dofn(sp.ncells, [&](auto& ctx, Index c) {
        bk::tracerTransportedDiffused(ctx, c, mv, nlev, kSimDt,
                                      ro(kv.flux_low), ro(kv.q),
                                      ro(kv.delp_old), ro(kv.delp_new),
                                      kv.q_td);
      });
      dofn(sp.ncells, [&](auto& ctx, Index c) {
        bk::tracerLimiterFactors(ctx, c, mv, nlev, kSimDt, ro(kv.q),
                                 ro(kv.q_td), ro(kv.flux_anti),
                                 ro(kv.delp_new), kv.rp, kv.rm);
      });
      dofn(sp.ncells, [&](auto& ctx, Index c) {
        bk::tracerApplyLimited(ctx, c, mv, nlev, kSimDt, ro(kv.q_td),
                               ro(kv.rp), ro(kv.rm), ro(kv.flux_anti),
                               ro(kv.delp_new), kv.q);
      });
      return;
    case SimKernel::kVertImplicitSolver: {
      // Per-column scratch rows live in registers/LDM in the cost model and
      // are not accounted; the sim executes columns serially, so one set of
      // rows is safely reused across the sweep.
      const int n = nlev - 1;
      std::vector<double> comp(nlev), lower(n), diag(n), upper(n), rhs(n),
          wnew(nlev + 1);
      const bk::VertSolveScratch scratch{comp.data(), lower.data(),
                                         diag.data(), upper.data(),
                                         rhs.data(),  wnew.data()};
      dofn(sp.ncells, [&](auto& ctx, Index c) {
        bk::vertImplicitColumn<B>(ctx, c, nlev, kSimDt, kSimPtop, ro(kv.delp),
                                  ro(kv.theta), ro(kv.p), kv.w, kv.phi,
                                  kSimWDampTau, scratch);
      });
      return;
    }
    case SimKernel::kFusedEdgeFluxes:
      dofn(sp.nedges, [&](auto& ctx, Index e) {
        bk::fusedEdgeFluxes<NS>(ctx, e, mv, nlev, ro(kv.delp), ro(kv.u),
                                kv.flux, kv.uflux);
      });
      return;
    case SimKernel::kFusedCellDiagnostics:
      dofn(sp.ncells, [&](auto& ctx, Index c) {
        bk::fusedCellDiagnostics<NS>(ctx, c, mv, nlev, ro(kv.flux),
                                     ro(kv.uflux), ro(kv.u), kv.div_flux,
                                     kv.div_u, kv.ke);
      });
      return;
    case SimKernel::kFusedVertexDiagnostics:
      dofn(sp.nvertices, [&](auto& ctx, Index v) {
        bk::fusedVertexDiagnostics<NS>(ctx, v, mv, nlev, ro(kv.u),
                                       ro(kv.delp), constants::kOmega, kv.vor,
                                       kv.qv);
      });
      return;
    case SimKernel::kFusedScalarTendencies:
      dofn(sp.ncells, [&](auto& ctx, Index c) {
        bk::fusedScalarTendencies<NS>(ctx, c, mv, nlev, ro(kv.flux),
                                      ro(kv.theta), ro(kv.delp),
                                      ro(kv.div_flux), kNuTheta, kv.delp_tend,
                                      kv.thetam_tend);
      });
      return;
    case SimKernel::kFusedMomentumTendency: {
      std::vector<NS> qe_row(nlev), acc_row(nlev);
      dofn(sp.nedges, [&](auto& ctx, Index e) {
        bk::fusedMomentumTendency<NS>(ctx, e, mv, tv, nlev, ro(kv.ke),
                                      ro(kv.qv), ro(kv.flux), ro(kv.phi),
                                      ro(kv.alpha), ro(kv.p), ro(kv.div_u),
                                      ro(kv.vor), kNuDiv, kNuVor, kv.tend_u,
                                      qe_row.data(), acc_row.data());
      });
      return;
    }
  }
  throw std::invalid_argument("runKernelPhases: unknown kernel");
}

/// Restore the payload arrays from a snapshot WITHOUT going through any
/// accounted view (plain host copies; view data pointers stay valid).
void restorePayloads(SimKernelData& d, const SimKernelData& snap) {
  const auto copy = [](std::vector<double>& dst, const std::vector<double>& src) {
    std::copy(src.begin(), src.end(), dst.begin());
  };
  copy(d.delp, snap.delp);
  copy(d.theta, snap.theta);
  copy(d.alpha, snap.alpha);
  copy(d.p, snap.p);
  copy(d.exner, snap.exner);
  copy(d.pi_mid, snap.pi_mid);
  copy(d.ke, snap.ke);
  copy(d.div_flux, snap.div_flux);
  copy(d.div_u, snap.div_u);
  copy(d.delp_tend, snap.delp_tend);
  copy(d.thetam_tend, snap.thetam_tend);
  copy(d.q, snap.q);
  copy(d.q_td, snap.q_td);
  copy(d.rp, snap.rp);
  copy(d.rm, snap.rm);
  copy(d.delp_old, snap.delp_old);
  copy(d.delp_new, snap.delp_new);
  copy(d.phi, snap.phi);
  copy(d.w, snap.w);
  copy(d.u, snap.u);
  copy(d.flux, snap.flux);
  copy(d.uflux, snap.uflux);
  copy(d.tend_u, snap.tend_u);
  copy(d.mean_flux, snap.mean_flux);
  copy(d.flux_low, snap.flux_low);
  copy(d.flux_anti, snap.flux_anti);
  copy(d.vor, snap.vor);
  copy(d.qv, snap.qv);
}

template <precision::NsReal NS>
double runSimKernelT(SimKernel kernel, const HexMesh& mesh,
                     const TrskWeights& trsk, const SimConfig& cfg,
                     CoreGroup& cg) {
  cg.reset();
  PoolAllocator alloc(cfg.policy, cg.params());
  SimKernelData data = makeSimKernelData(mesh, cfg.nlev);
  const SimKernelData snapshot = data;
  const bool mix = std::is_same_v<NS, float>;
  const auto mv = makeSimMeshView(mesh, alloc);
  const auto tv = makeSimTrskView(trsk, alloc);
  const auto kv = makeSimKernelViews(data, alloc, mix);
  const SolverParams sp{cfg.nlev, mesh.ncells, mesh.nedges, mesh.nvertices};

  // One full pass over all of the kernel's offload regions; returns the
  // core group's cumulative cycle count after the last region.
  const auto runPass = [&]() -> double {
    double cycles = 0.0;
    const auto dofn = [&](Index n, auto&& body) {
      if (cfg.on_cpe) {
        cycles = targetParallelDo(cg, n, [&](sunway::Cpe& cpe, Index i) {
          backend::SimContext<sunway::Cpe> ctx{&cpe};
          body(ctx, i);
        });
      } else {
        cycles = mpeSerialDo(cg, n, [&](sunway::Mpe& mpe, Index i) {
          backend::SimContext<sunway::Mpe> ctx{&mpe};
          body(ctx, i);
        });
      }
    };
    runKernelPhases<NS>(kernel, mv, tv, kv, sp, dofn);
    return cycles;
  };

  // Steady-state measurement: run the region list twice and report the
  // second (warm-cache) pass -- model steps revisit the same working set, so
  // cold misses are a startup transient, not per-step cost. Payloads are
  // restored between passes so accumulating kernels redo identical work.
  const double cold = runPass();
  restorePayloads(data, snapshot);
  return runPass() - cold;
}

} // namespace

const char* kernelName(SimKernel kernel) {
  switch (kernel) {
    case SimKernel::kPrimalNormalFluxEdge: return "primal_normal_flux_edge";
    case SimKernel::kComputeRrr: return "compute_rrr";
    case SimKernel::kCalcCoriolisTerm: return "calc_coriolis_term";
    case SimKernel::kTendGradKeAtEdge: return "tend_grad_ke_at_edge";
    case SimKernel::kDivAtCell: return "div_at_cell";
    case SimKernel::kTracerHoriFluxLimiter: return "tracer_transport_hori_flux_limiter";
    case SimKernel::kVertImplicitSolver: return "vert_implicit_solver";
    case SimKernel::kFusedEdgeFluxes: return "fused_edge_fluxes";
    case SimKernel::kFusedCellDiagnostics: return "fused_cell_diagnostics";
    case SimKernel::kFusedVertexDiagnostics: return "fused_vertex_diagnostics";
    case SimKernel::kFusedScalarTendencies: return "fused_scalar_tendencies";
    case SimKernel::kFusedMomentumTendency: return "fused_momentum_tendency";
  }
  return "?";
}

std::vector<SimKernel> allSimKernels() {
  return {SimKernel::kPrimalNormalFluxEdge, SimKernel::kComputeRrr,
          SimKernel::kCalcCoriolisTerm,     SimKernel::kTendGradKeAtEdge,
          SimKernel::kDivAtCell,            SimKernel::kTracerHoriFluxLimiter,
          SimKernel::kVertImplicitSolver,   SimKernel::kFusedEdgeFluxes,
          SimKernel::kFusedCellDiagnostics, SimKernel::kFusedVertexDiagnostics,
          SimKernel::kFusedScalarTendencies,
          SimKernel::kFusedMomentumTendency};
}

SimKernelData makeSimKernelData(const HexMesh& mesh, int nlev) {
  SimKernelData d;
  d.nlev = nlev;
  d.ncells = mesh.ncells;
  d.nedges = mesh.nedges;
  d.nvertices = mesh.nvertices;
  const std::size_t cn = static_cast<std::size_t>(mesh.ncells) * nlev;
  const std::size_t ci = static_cast<std::size_t>(mesh.ncells) * (nlev + 1);
  const std::size_t en = static_cast<std::size_t>(mesh.nedges) * nlev;
  const std::size_t vn = static_cast<std::size_t>(mesh.nvertices) * nlev;
  for (std::vector<double>* f :
       {&d.delp, &d.theta, &d.alpha, &d.p, &d.exner, &d.pi_mid, &d.ke,
        &d.div_flux, &d.div_u, &d.delp_tend, &d.thetam_tend, &d.q, &d.q_td,
        &d.rp, &d.rm, &d.delp_old, &d.delp_new}) {
    f->assign(cn, 0.0);
  }
  d.phi.assign(ci, 0.0);
  d.w.assign(ci, 0.0);
  for (std::vector<double>* f : {&d.u, &d.flux, &d.uflux, &d.tend_u,
                                 &d.mean_flux, &d.flux_low, &d.flux_anti}) {
    f->assign(en, 0.0);
  }
  d.vor.assign(vn, 0.0);
  d.qv.assign(vn, 0.0);

  // Smooth, strictly positive state (the host benchmarks' seeding).
  for (Index c = 0; c < mesh.ncells; ++c) {
    for (int k = 0; k < nlev; ++k) {
      d.delp[c * nlev + k] = 500.0 + 20.0 * std::sin(0.37 * c + 0.9 * k);
      d.theta[c * nlev + k] = 300.0 + 10.0 * std::cos(0.11 * c - 0.5 * k);
      d.q[c * nlev + k] = 1.0 + 0.4 * std::sin(0.13 * c + 0.3 * k);
    }
    for (int k = 0; k <= nlev; ++k) {
      d.phi[c * (nlev + 1) + k] = (nlev - k) * 2000.0;
    }
  }
  for (Index e = 0; e < mesh.nedges; ++e) {
    for (int k = 0; k < nlev; ++k) {
      d.u[e * nlev + k] = 12.0 * std::sin(0.23 * e + 0.4 * k) - 3.0;
    }
  }

  // Pre-run the diagnostic pipeline (Host instantiation of the same shared
  // bodies, double precision) so every kernel's inputs hold physical values.
  const auto mv = backend::makeHostMeshView(mesh);
  using backend::hostMut;
  using backend::hostView;
  backend::HostBackend::Context ctx;
  for (Index c = 0; c < mesh.ncells; ++c) {
    bk::computeRrrColumn<double, backend::HostBackend>(
        ctx, c, nlev, kSimPtop, hostView(d.delp.data()),
        hostView(d.theta.data()), hostView(d.phi.data()),
        hostMut(d.alpha.data()), hostMut(d.p.data()), hostMut(d.exner.data()),
        hostMut(d.pi_mid.data()));
  }
  for (Index e = 0; e < mesh.nedges; ++e) {
    bk::fusedEdgeFluxes<double>(ctx, e, mv, nlev, hostView(d.delp.data()),
                                hostView(d.u.data()), hostMut(d.flux.data()),
                                hostMut(d.uflux.data()));
  }
  for (Index c = 0; c < mesh.ncells; ++c) {
    bk::fusedCellDiagnostics<double>(
        ctx, c, mv, nlev, hostView(d.flux.data()), hostView(d.uflux.data()),
        hostView(d.u.data()), hostMut(d.div_flux.data()),
        hostMut(d.div_u.data()), hostMut(d.ke.data()));
  }
  for (Index v = 0; v < mesh.nvertices; ++v) {
    bk::fusedVertexDiagnostics<double>(
        ctx, v, mv, nlev, hostView(d.u.data()), hostView(d.delp.data()),
        constants::kOmega, hostMut(d.vor.data()), hostMut(d.qv.data()));
  }
  d.mean_flux = d.flux;
  d.delp_old = d.delp;
  d.delp_new = d.delp;
  return d;
}

void runKernelOnData(SimKernel kernel, const HexMesh& mesh,
                     const TrskWeights& trsk, precision::NsMode ns,
                     ExecBackend exec, SimKernelData& data) {
  const SolverParams sp{data.nlev, data.ncells, data.nedges, data.nvertices};
  const auto run = [&]<precision::NsReal NS>() {
    if (exec == ExecBackend::kHost) {
      const auto mv = backend::makeHostMeshView(mesh);
      const auto tv = backend::makeHostTrskView(trsk);
      const auto kv = makeHostKernelViews(data);
      const auto dofn = [&](Index n, auto&& body) {
        backend::HostBackend::Context ctx;
        for (Index i = 0; i < n; ++i) body(ctx, i);
      };
      runKernelPhases<NS>(kernel, mv, tv, kv, sp, dofn);
    } else {
      // Accounted run over simulated CPEs; writes land in `data` all the
      // same, so the result must match the host run bit for bit.
      CoreGroup cg;
      PoolAllocator alloc(AllocPolicy::kWayAligned, cg.params());
      const auto mv = makeSimMeshView(mesh, alloc);
      const auto tv = makeSimTrskView(trsk, alloc);
      const auto kv =
          makeSimKernelViews(data, alloc, ns == precision::NsMode::kSingle);
      const auto dofn = [&](Index n, auto&& body) {
        targetParallelDo(cg, n, [&](sunway::Cpe& cpe, Index i) {
          backend::SimContext<sunway::Cpe> ctx{&cpe};
          body(ctx, i);
        });
      };
      runKernelPhases<NS>(kernel, mv, tv, kv, sp, dofn);
    }
  };
  if (ns == precision::NsMode::kSingle) {
    run.template operator()<float>();
  } else {
    run.template operator()<double>();
  }
}

double runSimKernel(SimKernel kernel, const HexMesh& mesh,
                    const TrskWeights& trsk, const SimConfig& cfg,
                    CoreGroup& cg) {
  if (cfg.precision == SimPrecision::kSingle) {
    return runSimKernelT<float>(kernel, mesh, trsk, cfg, cg);
  }
  return runSimKernelT<double>(kernel, mesh, trsk, cfg, cg);
}

KernelSpeedups measureKernelSpeedups(SimKernel kernel, const HexMesh& mesh,
                                     const TrskWeights& trsk, int nlev) {
  CoreGroup cg;
  SimConfig cfg;
  cfg.nlev = nlev;

  cfg.on_cpe = false;
  cfg.precision = SimPrecision::kDouble;
  cfg.policy = AllocPolicy::kWayAligned;
  const double mpe_dp = runSimKernel(kernel, mesh, trsk, cfg, cg);

  KernelSpeedups out;
  out.kernel = kernelName(kernel);
  cfg.on_cpe = true;
  const auto measure = [&](SimPrecision prec, AllocPolicy policy) {
    cfg.precision = prec;
    cfg.policy = policy;
    return mpe_dp / runSimKernel(kernel, mesh, trsk, cfg, cg);
  };
  out.dp = measure(SimPrecision::kDouble, AllocPolicy::kWayAligned);
  out.dp_dst = measure(SimPrecision::kDouble, AllocPolicy::kDistributed);
  out.mix = measure(SimPrecision::kSingle, AllocPolicy::kWayAligned);
  out.mix_dst = measure(SimPrecision::kSingle, AllocPolicy::kDistributed);
  return out;
}

} // namespace grist::swgomp
