#include "grist/swgomp/sim_kernels.hpp"

#include <stdexcept>

namespace grist::swgomp {

using grid::HexMesh;
using grid::TrskWeights;
using sunway::CoreGroup;
using sunway::SimPrecision;

namespace {

// Virtual-address image of the mesh + model fields the kernels touch. The
// payload values are irrelevant to the cycle model (only addresses and
// event counts matter), so arrays alias a single zero-filled buffer.
struct SimArrays {
  std::vector<double> dreal;    // shared real payload (doubles)
  std::vector<Index> dindex;    // shared index payload

  // connectivity
  VirtualArray<Index> edge_cell0, edge_cell1, edge_v0, edge_v1;
  VirtualArray<Index> cell_offset, cell_edges, trsk_offset, trsk_edge;
  VirtualArray<double> cell_sign, trsk_weight;
  // geometry
  VirtualArray<double> le, de, area;
  // model fields (ns-switchable unless marked sensitive)
  VirtualArray<double> u, delp, theta, flux, ke, div, qv, q_td, rp, rm;
  VirtualArray<double> flux_low, flux_anti, alpha, exner, pi_mid;
  VirtualArray<double> uflux, div_u, vor;  // fused-pipeline streams
  // precision-sensitive (always 8 bytes)
  VirtualArray<double> phi, p;

  Index ncells = 0, nedges = 0;
  int max_trsk = 10;
};

SimArrays buildArrays(const HexMesh& mesh, const SimConfig& cfg,
                      PoolAllocator& alloc) {
  SimArrays a;
  a.ncells = mesh.ncells;
  a.nedges = mesh.nedges;
  const int nlev = cfg.nlev;
  const std::size_t ns_bytes =
      cfg.precision == SimPrecision::kSingle ? 4 : 8;

  // One shared payload big enough for any per-entity x nlev field and the
  // TRSK tables (up to max_trsk entries per edge).
  a.dreal.assign(std::max(static_cast<std::size_t>(std::max(a.ncells, a.nedges) + 1) *
                              (nlev + 1),
                          static_cast<std::size_t>(a.nedges + 1) * (a.max_trsk + 2)),
                 0.0);
  a.dindex.assign(a.dreal.size(), 0);
  const double* dr = a.dreal.data();
  const Index* di = a.dindex.data();

  const auto idx = [&](std::size_t count) {
    return VirtualArray<Index>(di, alloc, count, 4);
  };
  const auto geo = [&](std::size_t count) {  // geometry stays double
    return VirtualArray<double>(dr, alloc, count, 8);
  };
  const auto ns = [&](std::size_t count) {
    return VirtualArray<double>(dr, alloc, count, ns_bytes);
  };
  const auto sens = [&](std::size_t count) {
    return VirtualArray<double>(dr, alloc, count, 8);
  };

  const std::size_t ne = a.nedges, nc = a.ncells;
  a.edge_cell0 = idx(ne);
  a.edge_cell1 = idx(ne);
  a.edge_v0 = idx(ne);
  a.edge_v1 = idx(ne);
  a.cell_offset = idx(nc + 1);
  a.cell_edges = idx(nc * 6);
  a.trsk_offset = idx(ne + 1);
  a.trsk_edge = idx(ne * a.max_trsk);
  a.cell_sign = geo(nc * 6);
  a.trsk_weight = geo(ne * a.max_trsk);
  a.le = geo(ne);
  a.de = geo(ne);
  a.area = geo(nc);
  a.u = ns(ne * nlev);
  a.delp = ns(nc * nlev);
  a.theta = ns(nc * nlev);
  a.flux = ns(ne * nlev);
  a.ke = ns(nc * nlev);
  a.div = ns(nc * nlev);
  a.qv = ns(nc * nlev);
  a.q_td = ns(nc * nlev);
  a.rp = ns(nc * nlev);
  a.rm = ns(nc * nlev);
  a.flux_low = ns(ne * nlev);
  a.flux_anti = ns(ne * nlev);
  a.alpha = ns(nc * nlev);
  a.exner = ns(nc * nlev);
  a.pi_mid = ns(nc * nlev);
  a.uflux = ns(ne * nlev);
  a.div_u = ns(nc * nlev);
  a.vor = ns(nc * nlev);  // vertex field aliased onto a cell-sized image
  a.phi = sens(nc * (nlev + 1));
  a.p = sens(nc * nlev);
  return a;
}

// ---- kernel bodies (shared between MPE and CPE contexts) -----------------

template <typename Ctx>
void bodyPrimalNormalFlux(Ctx& ctx, Index e, const SimArrays& a, const HexMesh& m,
                          int nlev, SimPrecision prec) {
  const Index c1 = m.edge_cell[e][0];
  const Index c2 = m.edge_cell[e][1];
  a.edge_cell0.read(ctx, e);
  a.edge_cell1.read(ctx, e);
  a.le.read(ctx, e);
  for (int k = 0; k < nlev; ++k) {
    a.delp.read(ctx, c1 * nlev + k);
    a.delp.read(ctx, c2 * nlev + k);
    a.u.read(ctx, e * nlev + k);
    ctx.flops(8, prec);
    ctx.divs(2, prec);  // the ratio limiter's divisions
    a.flux.write(ctx, e * nlev + k);
  }
}

template <typename Ctx>
void bodyComputeRrr(Ctx& ctx, Index c, const SimArrays& a, int nlev,
                    SimPrecision prec) {
  for (int k = 0; k < nlev; ++k) {
    a.delp.read(ctx, c * nlev + k);
    a.theta.read(ctx, c * nlev + k);
    a.phi.read(ctx, c * (nlev + 1) + k);
    a.phi.read(ctx, c * (nlev + 1) + k + 1);
    ctx.flops(8, prec);
    ctx.divs(2, prec);
    ctx.elems(2, prec);  // the two pow() calls
    a.alpha.write(ctx, c * nlev + k);
    a.p.write(ctx, c * nlev + k);
    a.exner.write(ctx, c * nlev + k);
    a.pi_mid.write(ctx, c * nlev + k);
  }
}

template <typename Ctx>
void bodyCoriolis(Ctx& ctx, Index e, const SimArrays& a, const HexMesh& m,
                  const TrskWeights& t, int nlev, SimPrecision prec) {
  // The paper notes this kernel "lacks mixed precision optimization": its
  // arithmetic was never converted to ns in GRIST, so a MIX build only
  // changes the sizes of the shared ns arrays it reads.
  prec = SimPrecision::kDouble;
  a.edge_v0.read(ctx, e);
  a.edge_v1.read(ctx, e);
  a.trsk_offset.read(ctx, e);
  const Index v1 = m.edge_vertex[e][0];
  const Index v2 = m.edge_vertex[e][1];
  for (int k = 0; k < nlev; ++k) {
    // qv at the two edge vertices (vertex fields alias qv's image here).
    a.qv.read(ctx, (v1 % a.ncells) * nlev + k);
    a.qv.read(ctx, (v2 % a.ncells) * nlev + k);
    for (Index j = t.offset[e]; j < t.offset[e + 1]; ++j) {
      const Index ep = t.edge[j];
      a.trsk_edge.read(ctx, j);
      a.trsk_weight.read(ctx, j);
      a.flux.read(ctx, ep * nlev + k);
      a.le.read(ctx, ep);
      const Index w1 = m.edge_vertex[ep][0];
      a.qv.read(ctx, (w1 % a.ncells) * nlev + k);
      ctx.flops(6, prec);
      ctx.divs(1, prec);
    }
    a.u.write(ctx, e * nlev + k);
  }
}

template <typename Ctx>
void bodyGradKe(Ctx& ctx, Index e, const SimArrays& a, const HexMesh& m, int nlev,
                SimPrecision prec) {
  const Index c1 = m.edge_cell[e][0];
  const Index c2 = m.edge_cell[e][1];
  a.edge_cell0.read(ctx, e);
  a.edge_cell1.read(ctx, e);
  a.de.read(ctx, e);
  ctx.divs(1, prec);  // 1/(rearth*de) as in the paper's Fig. 4 listing
  for (int k = 0; k < nlev; ++k) {
    a.ke.read(ctx, c1 * nlev + k);
    a.ke.read(ctx, c2 * nlev + k);
    ctx.flops(3, prec);
    a.u.write(ctx, e * nlev + k);
  }
}

template <typename Ctx>
void bodyDivAtCell(Ctx& ctx, Index c, const SimArrays& a, const HexMesh& m,
                   int nlev, SimPrecision prec) {
  a.cell_offset.read(ctx, c);
  a.area.read(ctx, c);
  ctx.divs(1, prec);
  for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
    const Index e = m.cell_edges[j];
    a.cell_edges.read(ctx, j);
    a.cell_sign.read(ctx, j);
    for (int k = 0; k < nlev; ++k) {
      a.flux.read(ctx, e * nlev + k);
      ctx.flops(2, prec);
    }
  }
  for (int k = 0; k < nlev; ++k) a.div.write(ctx, c * nlev + k);
}

template <typename Ctx>
void bodyTracerLimiter(Ctx& ctx, Index c, const SimArrays& a, const HexMesh& m,
                       int nlev, SimPrecision prec) {
  // The FCT limiter touches the most arrays per loop of any dycore kernel:
  // q, q_td, rp, rm, flux_low, flux_anti, sign, edges, area, delp -- the
  // prime cache-thrashing candidate of section 3.3.3.
  a.cell_offset.read(ctx, c);
  a.area.read(ctx, c);
  for (int k = 0; k < nlev; ++k) {
    a.qv.read(ctx, c * nlev + k);
    a.q_td.read(ctx, c * nlev + k);
    a.rp.read(ctx, c * nlev + k);
    a.rm.read(ctx, c * nlev + k);
    a.delp.read(ctx, c * nlev + k);
    for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
      const Index e = m.cell_edges[j];
      a.cell_edges.read(ctx, j);
      a.cell_sign.read(ctx, j);
      a.flux_low.read(ctx, e * nlev + k);
      a.flux_anti.read(ctx, e * nlev + k);
      const Index c2 = m.cell_cells[j];
      a.rp.read(ctx, c2 * nlev + k);
      a.rm.read(ctx, c2 * nlev + k);
      ctx.flops(6, prec);
    }
    ctx.divs(2, prec);
    a.qv.write(ctx, c * nlev + k);
  }
}

template <typename Ctx>
void bodyVertImplicit(Ctx& ctx, Index c, const SimArrays& a, int nlev,
                      SimPrecision prec) {
  // The per-column tridiagonal acoustic solve. Its gravity/acoustic
  // arithmetic is pinned to double (paper section 3.4.2); a MIX build only
  // shrinks the ns-typed delp/theta loads it reads.
  (void)prec;
  const SimPrecision dp = SimPrecision::kDouble;
  for (int k = 0; k < nlev; ++k) {
    a.delp.read(ctx, c * nlev + k);
    a.theta.read(ctx, c * nlev + k);
    a.p.read(ctx, c * nlev + k);
    a.phi.read(ctx, c * (nlev + 1) + k);
    ctx.flops(10, dp);   // assemble one tridiagonal row
    ctx.divs(1, dp);     // compressibility factor gamma*p/dphi
  }
  // Thomas forward elimination + back substitution.
  for (int k = 0; k < nlev; ++k) {
    ctx.flops(6, dp);
    ctx.divs(1, dp);
  }
  for (int k = 0; k < nlev; ++k) {
    a.phi.write(ctx, c * (nlev + 1) + k);
    ctx.flops(2, dp);
  }
}

// ---- fused single-sweep replicas (mirroring src/dycore's fused pipeline) --

template <typename Ctx>
void bodyFusedEdgeFluxes(Ctx& ctx, Index e, const SimArrays& a, const HexMesh& m,
                         int nlev, SimPrecision prec) {
  // primal_normal_flux_edge + uflux = le*u from ONE pass over the edge's
  // delp/u loads (the unfused path streams them twice).
  const Index c1 = m.edge_cell[e][0];
  const Index c2 = m.edge_cell[e][1];
  a.edge_cell0.read(ctx, e);
  a.edge_cell1.read(ctx, e);
  a.le.read(ctx, e);
  for (int k = 0; k < nlev; ++k) {
    a.delp.read(ctx, c1 * nlev + k);
    a.delp.read(ctx, c2 * nlev + k);
    a.u.read(ctx, e * nlev + k);
    ctx.flops(9, prec);
    ctx.divs(2, prec);
    a.flux.write(ctx, e * nlev + k);
    a.uflux.write(ctx, e * nlev + k);
  }
}

template <typename Ctx>
void bodyFusedCellDiagnostics(Ctx& ctx, Index c, const SimArrays& a,
                              const HexMesh& m, int nlev, SimPrecision prec) {
  // div(flux) + div(uflux) + kinetic energy in a single pass over the
  // cell_edges CSR lists -- connectivity and geometry read once instead of
  // three times, outputs written once instead of zero-filled + accumulated.
  a.cell_offset.read(ctx, c);
  a.area.read(ctx, c);
  ctx.divs(1, prec);
  for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
    const Index e = m.cell_edges[j];
    a.cell_edges.read(ctx, j);
    a.cell_sign.read(ctx, j);
    a.le.read(ctx, e);
    a.de.read(ctx, e);
    for (int k = 0; k < nlev; ++k) {
      a.flux.read(ctx, e * nlev + k);
      a.uflux.read(ctx, e * nlev + k);
      a.u.read(ctx, e * nlev + k);
      ctx.flops(7, prec);
    }
  }
  for (int k = 0; k < nlev; ++k) {
    a.div.write(ctx, c * nlev + k);
    a.div_u.write(ctx, c * nlev + k);
    a.ke.write(ctx, c * nlev + k);
  }
}

template <typename Ctx>
void bodyFusedMomentumTendency(Ctx& ctx, Index e, const SimArrays& a,
                               const HexMesh& m, const TrskWeights& t, int nlev,
                               SimPrecision prec) {
  // grad-ke + TRSK Coriolis + pressure gradient + del2 damping; the
  // momentum tendency is written ONCE per point instead of four
  // read-modify-write passes. PGF arithmetic stays double (sensitive).
  const SimPrecision dp = SimPrecision::kDouble;
  const Index c1 = m.edge_cell[e][0];
  const Index c2 = m.edge_cell[e][1];
  const Index v1 = m.edge_vertex[e][0];
  const Index v2 = m.edge_vertex[e][1];
  a.edge_cell0.read(ctx, e);
  a.edge_cell1.read(ctx, e);
  a.edge_v0.read(ctx, e);
  a.edge_v1.read(ctx, e);
  a.de.read(ctx, e);
  a.le.read(ctx, e);
  a.trsk_offset.read(ctx, e);
  ctx.divs(2, prec);  // 1/de, 1/le hoisted out of the level loop
  // Coriolis runs j-outer / k-inner like the host kernel: TRSK indices,
  // weights and 1/le' are loaded once per stencil edge, not once per level.
  for (int k = 0; k < nlev; ++k) {
    a.qv.read(ctx, (v1 % a.ncells) * nlev + k);
    a.qv.read(ctx, (v2 % a.ncells) * nlev + k);
    ctx.flops(2, prec);  // qe row
  }
  for (Index j = t.offset[e]; j < t.offset[e + 1]; ++j) {
    const Index ep = t.edge[j];
    a.trsk_edge.read(ctx, j);
    a.trsk_weight.read(ctx, j);
    a.le.read(ctx, ep);
    ctx.divs(1, SimPrecision::kDouble);  // 1/le' hoisted
    for (int k = 0; k < nlev; ++k) {
      a.flux.read(ctx, ep * nlev + k);
      a.qv.read(ctx, (m.edge_vertex[ep][0] % a.ncells) * nlev + k);
      ctx.flops(6, SimPrecision::kDouble);
    }
  }
  for (int k = 0; k < nlev; ++k) {
    // grad-ke
    a.ke.read(ctx, c1 * nlev + k);
    a.ke.read(ctx, c2 * nlev + k);
    ctx.flops(3, prec);
    // pressure gradient (sensitive: double loads of phi/p)
    a.phi.read(ctx, c1 * (nlev + 1) + k);
    a.phi.read(ctx, c1 * (nlev + 1) + k + 1);
    a.phi.read(ctx, c2 * (nlev + 1) + k);
    a.phi.read(ctx, c2 * (nlev + 1) + k + 1);
    a.alpha.read(ctx, c1 * nlev + k);
    a.alpha.read(ctx, c2 * nlev + k);
    a.p.read(ctx, c1 * nlev + k);
    a.p.read(ctx, c2 * nlev + k);
    ctx.flops(9, dp);
    // del2 damping
    a.div_u.read(ctx, c1 * nlev + k);
    a.div_u.read(ctx, c2 * nlev + k);
    a.vor.read(ctx, (v1 % a.ncells) * nlev + k);
    a.vor.read(ctx, (v2 % a.ncells) * nlev + k);
    ctx.flops(7, prec);
    // single store of the fused tendency
    a.u.write(ctx, e * nlev + k);
  }
}

} // namespace

const char* kernelName(SimKernel kernel) {
  switch (kernel) {
    case SimKernel::kPrimalNormalFluxEdge: return "primal_normal_flux_edge";
    case SimKernel::kComputeRrr: return "compute_rrr";
    case SimKernel::kCalcCoriolisTerm: return "calc_coriolis_term";
    case SimKernel::kTendGradKeAtEdge: return "tend_grad_ke_at_edge";
    case SimKernel::kDivAtCell: return "div_at_cell";
    case SimKernel::kTracerHoriFluxLimiter: return "tracer_transport_hori_flux_limiter";
    case SimKernel::kVertImplicitSolver: return "vert_implicit_solver";
    case SimKernel::kFusedEdgeFluxes: return "fused_edge_fluxes";
    case SimKernel::kFusedCellDiagnostics: return "fused_cell_diagnostics";
    case SimKernel::kFusedMomentumTendency: return "fused_momentum_tendency";
  }
  return "?";
}

std::vector<SimKernel> allSimKernels() {
  return {SimKernel::kPrimalNormalFluxEdge, SimKernel::kComputeRrr,
          SimKernel::kCalcCoriolisTerm,     SimKernel::kTendGradKeAtEdge,
          SimKernel::kDivAtCell,            SimKernel::kTracerHoriFluxLimiter,
          SimKernel::kVertImplicitSolver,   SimKernel::kFusedEdgeFluxes,
          SimKernel::kFusedCellDiagnostics, SimKernel::kFusedMomentumTendency};
}

double runSimKernel(SimKernel kernel, const HexMesh& mesh, const TrskWeights& trsk,
                    const SimConfig& cfg, CoreGroup& cg) {
  cg.reset();
  PoolAllocator alloc(cfg.policy, cg.params());
  const SimArrays a = buildArrays(mesh, cfg, alloc);
  const int nlev = cfg.nlev;
  const SimPrecision prec = cfg.precision;

  // Steady-state measurement: run the region twice and report the second
  // (warm-cache) pass -- model steps revisit the same working set, so cold
  // misses are a startup transient, not per-step cost.
  const auto dispatch = [&](auto&& body, Index n) -> double {
    if (cfg.on_cpe) {
      const double first = targetParallelDo(cg, n, body);
      return targetParallelDo(cg, n, body) - first;
    }
    const double first = mpeSerialDo(cg, n, body);
    return mpeSerialDo(cg, n, body) - first;
  };

  switch (kernel) {
    case SimKernel::kPrimalNormalFluxEdge:
      return dispatch(
          [&](auto& ctx, Index e) { bodyPrimalNormalFlux(ctx, e, a, mesh, nlev, prec); },
          mesh.nedges);
    case SimKernel::kComputeRrr:
      return dispatch([&](auto& ctx, Index c) { bodyComputeRrr(ctx, c, a, nlev, prec); },
                      mesh.ncells);
    case SimKernel::kCalcCoriolisTerm:
      return dispatch(
          [&](auto& ctx, Index e) { bodyCoriolis(ctx, e, a, mesh, trsk, nlev, prec); },
          mesh.nedges);
    case SimKernel::kTendGradKeAtEdge:
      return dispatch(
          [&](auto& ctx, Index e) { bodyGradKe(ctx, e, a, mesh, nlev, prec); },
          mesh.nedges);
    case SimKernel::kDivAtCell:
      return dispatch(
          [&](auto& ctx, Index c) { bodyDivAtCell(ctx, c, a, mesh, nlev, prec); },
          mesh.ncells);
    case SimKernel::kTracerHoriFluxLimiter:
      return dispatch(
          [&](auto& ctx, Index c) { bodyTracerLimiter(ctx, c, a, mesh, nlev, prec); },
          mesh.ncells);
    case SimKernel::kVertImplicitSolver:
      return dispatch(
          [&](auto& ctx, Index c) { bodyVertImplicit(ctx, c, a, nlev, prec); },
          mesh.ncells);
    case SimKernel::kFusedEdgeFluxes:
      return dispatch(
          [&](auto& ctx, Index e) { bodyFusedEdgeFluxes(ctx, e, a, mesh, nlev, prec); },
          mesh.nedges);
    case SimKernel::kFusedCellDiagnostics:
      return dispatch(
          [&](auto& ctx, Index c) {
            bodyFusedCellDiagnostics(ctx, c, a, mesh, nlev, prec);
          },
          mesh.ncells);
    case SimKernel::kFusedMomentumTendency:
      return dispatch(
          [&](auto& ctx, Index e) {
            bodyFusedMomentumTendency(ctx, e, a, mesh, trsk, nlev, prec);
          },
          mesh.nedges);
  }
  throw std::invalid_argument("runSimKernel: unknown kernel");
}

KernelSpeedups measureKernelSpeedups(SimKernel kernel, const HexMesh& mesh,
                                     const TrskWeights& trsk, int nlev) {
  CoreGroup cg;
  SimConfig cfg;
  cfg.nlev = nlev;

  cfg.on_cpe = false;
  cfg.precision = SimPrecision::kDouble;
  cfg.policy = AllocPolicy::kWayAligned;
  const double mpe_dp = runSimKernel(kernel, mesh, trsk, cfg, cg);

  KernelSpeedups out;
  out.kernel = kernelName(kernel);
  cfg.on_cpe = true;
  const auto measure = [&](SimPrecision prec, AllocPolicy policy) {
    cfg.precision = prec;
    cfg.policy = policy;
    return mpe_dp / runSimKernel(kernel, mesh, trsk, cfg, cg);
  };
  out.dp = measure(SimPrecision::kDouble, AllocPolicy::kWayAligned);
  out.dp_dst = measure(SimPrecision::kDouble, AllocPolicy::kDistributed);
  out.mix = measure(SimPrecision::kSingle, AllocPolicy::kWayAligned);
  out.mix_dst = measure(SimPrecision::kSingle, AllocPolicy::kDistributed);
  return out;
}

} // namespace grist::swgomp
