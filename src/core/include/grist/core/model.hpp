// The AI-enhanced GRIST model driver: composes the dynamical core, tracer
// transport, the physics suite (conventional or ML) and the coupling
// interface under the paper's timestep hierarchy (Table 2: Dyn/Trac/Phy/Rad)
// and scheme matrix (Table 3: DP/MIX x PHY/ML).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "grist/coupler/coupler.hpp"
#include "grist/dycore/dycore.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/io/snapshot.hpp"
#include "grist/ml/ml_suite.hpp"
#include "grist/physics/suite.hpp"

namespace grist::core {

enum class PhysicsScheme { kConventional, kMl, kHeldSuarez };

/// Table 3 scheme labels.
inline const char* schemeLabel(precision::NsMode ns, PhysicsScheme physics) {
  if (physics == PhysicsScheme::kHeldSuarez) {
    return ns == precision::NsMode::kDouble ? "DP-HS" : "MIX-HS";
  }
  if (ns == precision::NsMode::kDouble) {
    return physics == PhysicsScheme::kConventional ? "DP-PHY" : "DP-ML";
  }
  return physics == PhysicsScheme::kConventional ? "MIX-PHY" : "MIX-ML";
}

/// Default land initialization (zonally symmetric SST-like profile); used
/// by both Model and EnsembleRunner.
std::vector<double> initialSkinTemperature(const grid::HexMesh& mesh);

struct ModelConfig {
  dycore::DycoreConfig dyn;      ///< includes ns (DP vs MIX) and dt
  int trac_interval = 8;         ///< dynamics steps per tracer step
  int phy_interval = 15;         ///< dynamics steps per physics step
  PhysicsScheme scheme = PhysicsScheme::kConventional;
  physics::ConventionalSuiteConfig conventional;  ///< incl. Phy:Rad cadence
  ml::MlSuiteConfig ml;
  /// Trained networks; required when scheme == kMl.
  std::shared_ptr<const ml::Q1Q2Net> q1q2;
  std::shared_ptr<const ml::RadMlp> rad_mlp;
};

class Model {
 public:
  /// Takes ownership of the initial state. The mesh/weights must outlive
  /// the model. State must carry >= 3 tracers (qv, qc, qr).
  Model(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
        ModelConfig config, dycore::State initial);

  /// Advance by one dynamics step; fires tracer transport and physics on
  /// their configured cadences.
  void step();
  void run(int ndyn_steps);

  const dycore::State& state() const { return state_; }
  dycore::State& state() { return state_; }
  double simSeconds() const { return sim_seconds_; }
  double simDays() const { return sim_seconds_ / 86400.0; }

  /// Accumulated precipitation since construction, mm, per cell.
  const std::vector<double>& accumulatedPrecip() const { return precip_accum_; }
  /// Mean precipitation RATE over the simulated period so far, mm/day.
  std::vector<double> meanPrecipRate() const;

  const std::vector<double>& tskin() const { return tskin_; }
  /// Restore land/clock state from a restart file (see io/restart.hpp).
  void setTskin(std::vector<double> tskin);
  void setSimSeconds(double seconds) { sim_seconds_ = seconds; }
  /// Re-synchronize internal accumulators after the state was replaced
  /// from a restart (resets the mass-flux accumulation window). Restarts
  /// are written at tracer-step boundaries so this is exact.
  void resyncAfterRestart();

  /// Capture everything a bitwise resume needs: STATE + LAND + CLOCK +
  /// DIAG (accumulator windows, so mid-tracer-window checkpoints are exact)
  /// + CONFIG, and MLWT weight provenance under the ML scheme.
  io::Snapshot snapshot() const;
  /// Restore from a snapshot (including legacy GRISTSW1 conversions).
  /// Validates CONFIG (nlev/ntracers/dt/ns/cadences) and MLWT fingerprints
  /// when present, throwing std::runtime_error naming the mismatch. With a
  /// DIAG section the resume is bitwise anywhere in the cadence; without
  /// one (legacy files) it falls back to resyncAfterRestart() semantics.
  void restore(const io::Snapshot& snap);

  long dynSteps() const { return dyn_steps_; }
  const ModelConfig& config() const { return config_; }
  const char* schemeName() const;
  physics::PhysicsSuite& suite() { return *suite_; }
  dycore::Dycore& dycore() { return dycore_; }

 private:
  void tracerStep();
  void physicsStep();

  const grid::HexMesh& mesh_;
  ModelConfig config_;
  dycore::Dycore dycore_;
  coupler::Coupler coupler_;
  std::unique_ptr<physics::PhysicsSuite> suite_;
  dycore::State state_;

  parallel::Field delp_at_tracer_start_;
  std::vector<double> tskin_;
  std::vector<double> precip_accum_;
  physics::PhysicsInput phys_in_;
  physics::PhysicsOutput phys_out_;
  double sim_seconds_ = 0.0;
  long dyn_steps_ = 0;
};

} // namespace grist::core
