// Batched ensemble execution engine: step M model members as ONE fused
// workload instead of M independent Model instances.
//
// What is shared, held exactly once:
//   - mesh + TRSK weights (borrowed, like Model),
//   - the trained Q1Q2Net/RadMlp via shared_ptr -- including their quant
//     caches, so bf16/int8 weight packing happens once for all members,
//   - one EnsembleDycore: a single set of transient dycore scratch fields
//     reused across members, with the vertical implicit solve batched
//     member-per-SIMD-lane (see dycore/ensemble_dycore.hpp),
//   - under the ML scheme, one fused MlPhysicsSuite over M*ncells columns:
//     every physics step concatenates all members' columns into one
//     PhysicsInput, so the Q1Q2/RadMlp GEMM batches (fp32 and quantized)
//     scale with M and the packed weight panels are streamed once per step
//     instead of M times (`cross_member_gemm` toggles this against M
//     per-member suites for the recorded benchmark pair).
//
// What is per member: the prognostic State, tskin/precip land bookkeeping,
// the tracer-window accumulators, and the perturbation seed.
//
// The contract: every member's full trajectory is BITWISE identical to the
// same (seed-matched) initial state run solo through Model, in DP and MIX,
// fp32 and quantized ML physics (ctest -L ENSEMBLE). Warm steps are
// heap-free (alloc-guard test).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "grist/core/model.hpp"
#include "grist/dycore/ensemble_dycore.hpp"

namespace grist::core {

struct EnsembleConfig {
  ModelConfig model;             ///< shared per-member configuration
  int members = 2;               ///< M
  std::uint64_t perturb_seed = 0;///< 0 = identical members (no perturbation)
  double perturb_amplitude = 1e-3;  ///< K, applied to theta at init
  /// Fuse ML-physics batches across members (one predictBatch of M*ncells
  /// columns). Off = M per-member suites: same results bitwise, smaller
  /// GEMMs -- the benchmark comparison pair.
  bool cross_member_gemm = true;
};

class EnsembleRunner {
 public:
  /// Every member starts from `initial`; when perturb_seed != 0, member m's
  /// theta field is perturbed with memberSeed(perturb_seed, m) before the
  /// first step. Mesh/weights must outlive the runner.
  EnsembleRunner(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
                 EnsembleConfig config, const dycore::State& initial);

  /// Advance all members one dynamics step (tracer transport and physics
  /// fire on their cadences, batched across members).
  void step();
  void run(int ndyn_steps);

  int members() const { return config_.members; }
  const dycore::State& state(int m) const {
    return states_[static_cast<std::size_t>(m)];
  }
  const std::vector<double>& tskin(int m) const {
    return tskin_[static_cast<std::size_t>(m)];
  }
  const std::vector<double>& accumulatedPrecip(int m) const {
    return precip_accum_[static_cast<std::size_t>(m)];
  }
  double simSeconds() const { return sim_seconds_; }
  double simDays() const { return sim_seconds_ / 86400.0; }
  long dynSteps() const { return dyn_steps_; }
  const EnsembleConfig& config() const { return config_; }

  /// Deterministic per-member seed derivation (splitmix64 over the base
  /// seed), shared with solo reruns of a single member.
  static std::uint64_t memberSeed(std::uint64_t base, int member);
  /// Deterministic theta perturbation: theta(c,k) += amplitude * u where
  /// u in [-1, 1) is hashed from (seed, flat index) -- independent of
  /// traversal order, so a solo Model fed the same seed starts bitwise
  /// identical to the ensemble member.
  static void perturbState(dycore::State& state, std::uint64_t seed,
                           double amplitude);

  /// Ensemble-mean surface pressure per cell (ptop + column delp sum).
  std::vector<double> meanSurfacePressure() const;
  /// Ensemble spread (population standard deviation across members) of
  /// surface pressure per cell.
  std::vector<double> spreadSurfacePressure() const;
  /// Area-weighted global mean of spreadSurfacePressure() -- the scalar a
  /// forecast run reports.
  double globalSpread() const;

 private:
  void tracerStep();
  void physicsStep();

  const grid::HexMesh& mesh_;
  EnsembleConfig config_;
  dycore::EnsembleDycore edy_;
  coupler::Coupler coupler_;
  std::vector<dycore::State> states_;
  std::vector<dycore::State*> state_ptrs_;

  // Fused-suite mode: one suite + one M*ncells-column batch.
  std::unique_ptr<physics::PhysicsSuite> fused_suite_;
  std::unique_ptr<physics::PhysicsInput> fused_in_;
  std::unique_ptr<physics::PhysicsOutput> fused_out_;
  // Per-member mode: M suites + M ncells-column batches.
  std::vector<std::unique_ptr<physics::PhysicsSuite>> member_suites_;
  std::vector<physics::PhysicsInput> member_in_;
  std::vector<physics::PhysicsOutput> member_out_;

  std::vector<parallel::Field> delp_at_tracer_start_;
  parallel::Field mean_flux_scratch_;
  std::vector<std::vector<double>> tskin_;
  std::vector<std::vector<double>> precip_accum_;
  double sim_seconds_ = 0.0;
  long dyn_steps_ = 0;
};

} // namespace grist::core
