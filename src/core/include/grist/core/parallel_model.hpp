// Multi-rank (in-process) dynamical-core runs: each rank owns a LocalDomain,
// steps its own Dycore, and halo-exchanges the five prognostic fields after
// every Runge-Kutta stage through the batched exchange layer. Used for the
// decomposition correctness gate (rank runs must match the single-domain
// run bitwise in double precision) and for the measured end of the scaling
// benchmarks (Figs. 10-11).
//
// Ranks run on a PERSISTENT worker pool (one thread per rank, created once)
// released per step through reusable barriers -- a warm step() performs no
// thread creation and no heap allocation (tests/core/test_parallel_model_
// alloc.cpp). Three schedules share the pool:
//   kOverlap (default)  boundary-band compute -> post() -> interior-band
//                       compute -> wait(); communication is hidden behind
//                       the interior sweep. Bitwise identical to lockstep.
//   kLockstep           every exchange round is a full-stop stage barrier
//                       whose completion step runs the packed collective
//                       exchange.
//   kSpawnUnpacked      the seed schedule (per-step std::thread spawn +
//                       element-wise unpacked exchange), kept as the
//                       baseline for bench_ablation_exchange.
#pragma once

#include <barrier>
#include <memory>
#include <thread>
#include <vector>

#include "grist/dycore/dycore.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/parallel/decompose.hpp"
#include "grist/parallel/exchange.hpp"

namespace grist::core {

/// Remap the global TRSK table onto a rank's local edge ids. Only owned
/// edges compute tendencies, and their neighbor edges are always local with
/// halo depth 2. Shared by the in-process pool and the one-process-per-rank
/// model (mp_runner.hpp).
grid::TrskWeights localTrskWeights(const grid::TrskWeights& global,
                                   const parallel::LocalDomain& dom);

/// Scatter the global state into a rank-local state (all local entities).
dycore::State scatterLocalState(const dycore::State& global,
                                const parallel::LocalDomain& dom, int nlev,
                                int ntracers);

/// In-place variant: overwrite an existing rank-local state (all local
/// entities, owned + halo) from the global state. Shapes must already
/// match. Used by checkpoint restore, where replacing the State object
/// would dangle the exchange lists' field pointers.
void scatterIntoLocalState(const dycore::State& global,
                           const parallel::LocalDomain& dom,
                           dycore::State& local);

class ParallelModel {
 public:
  enum class Schedule {
    kOverlap,        ///< split post/wait exchange overlapped with interior compute
    kLockstep,       ///< packed collective exchange at stage barriers
    kSpawnUnpacked,  ///< seed reference: per-step threads, element-wise exchange
  };

  /// Decomposes `mesh` into `nranks` domains and scatters `global_initial`.
  /// The mesh and TRSK weights must outlive the model.
  ParallelModel(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
                dycore::DycoreConfig config, Index nranks,
                const dycore::State& global_initial);
  ~ParallelModel();

  ParallelModel(const ParallelModel&) = delete;
  ParallelModel& operator=(const ParallelModel&) = delete;

  /// One dynamics step across all ranks under the current schedule. All
  /// schedules produce bitwise-identical states (exchanged values are exact
  /// copies and band splitting only permutes independent per-entity loops).
  void step();
  void run(int nsteps);

  /// Select the step schedule (between steps only; not thread-safe against
  /// a concurrent step()).
  void setSchedule(Schedule s) { schedule_ = s; }
  Schedule schedule() const { return schedule_; }

  /// Reassemble the global prognostic state from rank-owned entities.
  dycore::State gatherState() const;

  /// Overwrite every rank's local state (owned + halo) from a global state
  /// -- checkpoint restore. In-place: exchange plans, bands and buffers
  /// survive untouched, so warm stepping stays allocation-free afterwards.
  /// Throws std::runtime_error on shape mismatch (nlev/ntracers/entities).
  void restoreGlobalState(const dycore::State& global);

  const dycore::DycoreConfig& config() const { return config_; }

  Index nranks() const { return decomp_.nranks; }
  parallel::CommStats commStats() const { return comm_.stats(); }
  const parallel::Decomposition& decomposition() const { return decomp_; }

  /// Emulate an interconnect with `seconds` of delivery latency per
  /// exchange round (see Communicator::setWireLatency). Set between steps
  /// only. Default 0 -- instant in-process delivery.
  void setWireLatency(double seconds) { comm_.setWireLatency(seconds); }

 private:
  // Completion step of the lockstep stage barrier: the last rank to arrive
  // runs the packed collective exchange for everyone.
  struct StageExchange {
    ParallelModel* model;
    void operator()() const noexcept;
  };

  void workerLoop(Index rank);

  const grid::HexMesh& mesh_;
  dycore::DycoreConfig config_;
  parallel::Decomposition decomp_;
  parallel::Communicator comm_;
  std::vector<grid::TrskWeights> local_trsk_;
  std::vector<std::unique_ptr<dycore::Dycore>> dycores_;
  std::vector<dycore::State> states_;
  std::vector<parallel::ExchangeList> lists_;

  // Per-rank exchange callbacks, built once in the constructor so the warm
  // step path never constructs a std::function.
  std::vector<dycore::Dycore::ExchangeFn> lockstep_fns_;
  std::vector<dycore::Dycore::OverlapHooks> overlap_hooks_;

  // Persistent pool: workers park at start_barrier_, run one step under
  // schedule_, then park at done_barrier_. Both barriers count the nranks
  // workers plus the caller of step(). schedule_/stopping_ are written by
  // the main thread before it arrives at start_barrier_ and read by the
  // workers after -- the barrier provides the happens-before edge.
  Schedule schedule_ = Schedule::kOverlap;
  bool stopping_ = false;
  std::barrier<> start_barrier_;
  std::barrier<> done_barrier_;
  std::barrier<StageExchange> stage_barrier_;
  std::vector<std::thread> workers_;
};

} // namespace grist::core
