// Multi-rank (in-process) dynamical-core runs: each rank owns a LocalDomain,
// steps its own Dycore, and halo-exchanges the five prognostic fields after
// every Runge-Kutta stage through the batched exchange layer. Used for the
// decomposition correctness gate (rank runs must match the single-domain
// run bitwise in double precision) and for the measured end of the scaling
// benchmarks (Figs. 10-11).
#pragma once

#include <memory>
#include <vector>

#include "grist/dycore/dycore.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/parallel/decompose.hpp"
#include "grist/parallel/exchange.hpp"

namespace grist::core {

class ParallelModel {
 public:
  /// Decomposes `mesh` into `nranks` domains and scatters `global_initial`.
  /// The mesh and TRSK weights must outlive the model.
  ParallelModel(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
                dycore::DycoreConfig config, Index nranks,
                const dycore::State& global_initial);

  /// One lockstep dynamics step across all ranks (threads + stage barriers).
  void step();
  void run(int nsteps);

  /// Reassemble the global prognostic state from rank-owned entities.
  dycore::State gatherState() const;

  Index nranks() const { return decomp_.nranks; }
  const parallel::CommStats& commStats() const { return comm_.stats(); }
  const parallel::Decomposition& decomposition() const { return decomp_; }

 private:
  const grid::HexMesh& mesh_;
  dycore::DycoreConfig config_;
  parallel::Decomposition decomp_;
  parallel::Communicator comm_;
  std::vector<grid::TrskWeights> local_trsk_;
  std::vector<std::unique_ptr<dycore::Dycore>> dycores_;
  std::vector<dycore::State> states_;
  std::vector<parallel::ExchangeList> lists_;
};

} // namespace grist::core
