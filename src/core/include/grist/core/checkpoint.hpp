// The one checkpoint/restore API shared by every runner of the multi-rank
// dynamics step (ParallelModel's in-process pool and MpSession's per-rank
// OS processes) and by grist_run's driver loop.
//
// The elastic property: captureDynRun writes the GLOBAL canonical state
// (gathered through the decomposition), so the checkpoint carries no trace
// of the writer's rank count beyond provenance. loadDynRestart re-validates
// the CONFIG section against the resuming run and hands back a global
// initial state that any rank count scatters -- a checkpoint written at N
// ranks restores at M ranks, and because cross-rank bitwise identity is an
// invariant of the step itself, the resumed run is bitwise identical to an
// unbroken one at either rank count.
//
// Model (the full physics-coupled driver) has its own richer pair --
// Model::snapshot()/restore() -- built from the same io::Snapshot sections.
#pragma once

#include <cstdint>
#include <string>

#include "grist/dycore/config.hpp"
#include "grist/dycore/state.hpp"
#include "grist/io/snapshot.hpp"

namespace grist::core {

/// CONFIG section describing a dynamics-only run (no cadences).
io::ConfigSection dynConfigSection(const dycore::DycoreConfig& cfg,
                                   int grid_level, int ntracers, Index nranks,
                                   std::uint64_t partition_fingerprint);

/// Validate the bitwise-relevant CONFIG fields (grid_level, nlev, ntracers,
/// dt, NS mode) and STATE presence/shape against the resuming run. Throws
/// std::runtime_error naming the mismatching field. A snapshot without a
/// CONFIG section (legacy files) only gets the STATE shape check.
void validateDynSnapshot(const io::Snapshot& snap,
                         const dycore::DycoreConfig& cfg, int grid_level,
                         Index ncells, Index nedges, int ntracers);

/// Snapshot a dynamics-only run: STATE (global canonical) + CLOCK
/// (steps_done, sim seconds derived from dt) + CONFIG.
io::Snapshot captureDynRun(const dycore::State& global,
                           const dycore::DycoreConfig& cfg, int grid_level,
                           long steps_done, Index nranks,
                           std::uint64_t partition_fingerprint);

/// Read `path`, validate against the resuming run, and return the global
/// initial state. `steps_done`, when non-null, receives the checkpointed
/// step count (0 for legacy files that never recorded one).
dycore::State loadDynRestart(const std::string& path,
                             const grid::HexMesh& mesh,
                             const dycore::DycoreConfig& cfg, int ntracers,
                             long* steps_done);

} // namespace grist::core
