// One-OS-process-per-rank runs over the shm transport.
//
// The in-process ParallelModel keeps every rank's arrays in one heap; this
// runner gives each rank its own process instead. Nothing but halos crosses
// the process boundary: every rank worker REBUILDS mesh, TRSK weights,
// decomposition and initial state deterministically from the RunSpec
// parameters (the builders are pure functions of them), so the only
// communication is the packed halo exchange through the shared-memory
// transport -- which is why a cross-process run is bitwise identical to the
// threaded pool: same local domains, same kernels, same exchanged bytes,
// only the address spaces differ.
//
// Three pieces:
//   RankProcessModel   one rank of the multi-rank step in THIS process:
//                      ParallelModel's per-rank construction (local TRSK,
//                      bounds, bands, scatter) over a local-rank
//                      Communicator; warm step()s are heap-allocation-free.
//   MpSession          parent-side handle: fork+execs one worker per rank
//                      (this binary, re-entered via maybeRunWorker), then
//                      drives them through a shared control block --
//                      run(n), gather() (owned state + per-rank hashes +
//                      CommStats through a shared result segment), and
//                      teardown with exit-code propagation and segment
//                      unlink. A rank that dies mid-run fails the whole
//                      session instead of wedging it.
//   maybeRunWorker     argv dispatch; call FIRST in main() of any binary
//                      that constructs an MpSession.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "grist/core/parallel_model.hpp"
#include "grist/parallel/shm_region.hpp"

namespace grist::core::mp {

/// Parameters every rank worker rebuilds the run from. Default values match
/// the decomposition gate tests (G3, 8 levels, dt 450).
struct RunSpec {
  int grid_level = 3;
  int nlev = 8;
  double dt = 450.0;
  int ntracers = 1;
  precision::NsMode ns = precision::NsMode::kDouble;
  Index nranks = 2;
  bool pin = false;        ///< sched_setaffinity rank r -> core r % ncores
  double wire_latency = 0; ///< seconds, forwarded per step command
  std::string segment;     ///< transport segment name; generated if empty
  /// Snapshot file (io/snapshot.hpp) to restore the initial state from
  /// instead of initBaroclinicWave. Every worker reads + validates it and
  /// scatters its own rank slice -- the checkpoint's writer rank count is
  /// irrelevant (repartition-on-restart). Empty = cold start.
  std::string restart;
};

/// FNV-1a, used for the per-rank owned-state hashes in the result segment.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t h = 14695981039346656037ull);

/// One rank of the multi-rank step, running in this process over an
/// explicit transport (normally ShmTransport; the in-process transport with
/// nranks == 1 also works, which the unit tests use).
class RankProcessModel {
 public:
  RankProcessModel(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
                   dycore::DycoreConfig config, Index nranks, Index rank,
                   const dycore::State& global_initial,
                   std::shared_ptr<parallel::Transport> transport);

  RankProcessModel(const RankProcessModel&) = delete;
  RankProcessModel& operator=(const RankProcessModel&) = delete;

  /// One overlapped dynamics step (boundary -> post -> interior -> wait),
  /// collectively with every peer rank process. Warm steps allocate
  /// nothing on this path.
  void step();
  void run(int nsteps);

  void setWireLatency(double seconds) { comm_.setWireLatency(seconds); }
  parallel::CommStats commStats() const { return comm_.stats(); }
  Index rank() const { return rank_; }
  const dycore::State& localState() const { return state_; }
  const parallel::LocalDomain& domain() const;

  /// FNV-1a over this rank's owned entities (deterministic order: owned
  /// cells' delp/theta/w/phi rows, then owned edges' u rows, then tracers).
  std::uint64_t ownedHash() const;

  /// Write this rank's owned entities at their global indices into flat
  /// [entity][lev] arrays (the result-segment layout). Ranks own disjoint
  /// entities, so concurrent writers never overlap.
  void writeOwnedState(double* delp, double* theta, double* w, double* phi,
                       double* u, double* tracers) const;

 private:
  dycore::DycoreConfig config_;
  parallel::Decomposition decomp_;
  parallel::Communicator comm_;
  Index rank_;
  grid::TrskWeights local_trsk_;
  Index ncells_global_ = 0;  ///< tracer block stride in the result layout
  std::unique_ptr<dycore::Dycore> dycore_;
  dycore::State state_;
  parallel::ExchangeList list_;
  dycore::Dycore::OverlapHooks hooks_;
};

/// Offsets into the shared control/result segment, computed identically by
/// the parent and every worker from the run parameters.
struct ResultLayout {
  Index nranks = 0, ncells = 0, nedges = 0;
  int nlev = 0, ntracers = 0;
  std::size_t hashes_off = 0;
  std::size_t delp_off = 0, theta_off = 0, w_off = 0, phi_off = 0, u_off = 0;
  std::size_t tracers_off = 0;
  std::size_t total = 0;

  static ResultLayout compute(Index nranks, Index ncells, Index nedges,
                              int nlev, int ntracers);
};

class MpSession {
 public:
  /// Builds the (parent-side) mesh, creates the control/result segment and
  /// spawns one pinned/unpinned worker process per rank. The workers build
  /// their models and rendezvous on the transport's startup barrier; the
  /// first command's ack confirms the whole fleet came up.
  explicit MpSession(RunSpec spec);
  ~MpSession();

  MpSession(const MpSession&) = delete;
  MpSession& operator=(const MpSession&) = delete;

  /// Step all rank processes `nsteps` times (blocks until every rank acked).
  void run(int nsteps);

  /// Applied from the next run() command on.
  void setWireLatency(double seconds) { spec_.wire_latency = seconds; }

  /// Reassemble the global owned state from the result segment (also
  /// refreshes rankHash()/commStats()).
  dycore::State gather();

  parallel::CommStats commStats();
  std::uint64_t rankHash(Index rank) const { return hashes_.at(static_cast<std::size_t>(rank)); }

  Index nranks() const { return spec_.nranks; }
  const grid::HexMesh& mesh() const { return mesh_; }
  const std::string& segmentName() const { return spec_.segment; }

 private:
  void command(std::uint32_t cmd, int nsteps);
  void probeChildren();
  [[noreturn]] void failSession(const std::string& why);
  void refreshResults();

  RunSpec spec_;
  grid::HexMesh mesh_;
  ResultLayout layout_;
  parallel::ShmRegion ctl_;
  std::vector<pid_t> pids_;
  std::vector<int> exit_codes_;  // -1 = still running
  std::uint32_t seq_ = 0;
  bool failed_ = false;
  std::vector<std::uint64_t> hashes_;
  parallel::CommStats stats_{};
};

/// Worker-mode dispatch. Call this FIRST in main(); when this process was
/// exec'd as a rank worker it runs the worker loop and returns its exit
/// code, otherwise nullopt.
std::optional<int> maybeRunWorker(int argc, char** argv);

} // namespace grist::core::mp
