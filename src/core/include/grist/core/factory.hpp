// Namelist-driven model construction, mirroring the paper artifact's
// run-*.sh + namelist workflow: a Config (grist.nml-style key=value file)
// fully describes a run -- grid level, vertical levels, timesteps, scheme
// (Table 3 label), initial case, and optional ML weight files.
//
// Recognized keys (defaults in parentheses; the cadence defaults come from
// ModelConfig in model.hpp, so namelist-less runs match programmatic runs):
//   grid_level (4)        icosahedral level
//   nlev (20)             vertical layers
//   dt_dyn (300.0)        dynamics step, seconds
//   trac_interval (8)     dynamics steps per tracer step
//   phy_interval (15)     dynamics steps per physics step
//   scheme (DP-PHY)       DP-PHY | DP-ML | MIX-PHY | MIX-ML (Table 3)
//   case (baroclinic)     rest | baroclinic | typhoon | bubble
//   w_damp_tau (2*dt)     quasi-hydrostatic w damping, seconds (0 = off)
//   div_damp (0.06), diff_coef (0.02)
//   q1q2_weights, rad_weights    weight files for the ML schemes
//   q1q2_channels (24), q1q2_res_units (2), rad_hidden (48)
#pragma once

#include <cstdint>
#include <memory>

#include "grist/common/config.hpp"
#include "grist/core/ensemble_runner.hpp"
#include "grist/core/model.hpp"

namespace grist::core {

/// Owns everything a Model references; keep it alive as long as the model.
struct ModelBundle {
  grid::HexMesh mesh;
  grid::TrskWeights trsk;
  std::unique_ptr<Model> model;
};

/// Build mesh, weights, initial state and model from a namelist config.
/// Throws std::invalid_argument / std::runtime_error on bad keys or
/// missing ML weights.
std::unique_ptr<ModelBundle> makeModelFromConfig(const Config& config);

/// Owns everything an EnsembleRunner references.
struct EnsembleBundle {
  grid::HexMesh mesh;
  grid::TrskWeights trsk;
  std::unique_ptr<EnsembleRunner> runner;
};

/// Same namelist, batched across `members` ensemble members (grist_run
/// --ensemble M --perturb-seed S). perturb_seed 0 leaves the members
/// identical.
std::unique_ptr<EnsembleBundle> makeEnsembleFromConfig(const Config& config,
                                                       int members,
                                                       std::uint64_t perturb_seed);

} // namespace grist::core
