#include "grist/core/mp_runner.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <climits>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "grist/common/hash.hpp"
#include "grist/core/checkpoint.hpp"
#include "grist/dycore/init.hpp"
#include "grist/parallel/mp_launch.hpp"
#include "grist/parallel/shm_transport.hpp"

namespace grist::core::mp {

namespace {

constexpr const char* kWorkerFlag = "--grist-shm-worker";
constexpr std::uint32_t kCmdStep = 1;
constexpr std::uint32_t kCmdGather = 2;
constexpr std::uint32_t kCmdStop = 3;

constexpr std::size_t kAlign = 64;
std::size_t alignUp(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

/// Command/ack mailbox at offset 0 of the control/result segment. The
/// parent writes the command fields, then release-stores cmd_seq and rings
/// the futex; each worker executes, then joins a counting ack barrier whose
/// last arriver release-stores ack_seq back. Stats are filled by rank 0 at
/// gather time (they are run-wide totals in the transport segment, so one
/// reporter suffices).
struct CtlBlock {
  std::atomic<std::uint32_t> cmd_seq;
  std::atomic<std::uint32_t> ack_seq;
  std::atomic<std::uint32_t> done_count;
  std::uint32_t cmd;
  std::int32_t nsteps;
  std::int32_t pad_;
  double wire_latency;
  std::int64_t messages;
  std::int64_t bytes;
  std::int64_t exchanges;
  char pad2_[128 - 56];
};
static_assert(sizeof(CtlBlock) == 128);

const char* nsName(precision::NsMode ns) {
  return ns == precision::NsMode::kSingle ? "mix" : "dp";
}

} // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) {
  return common::fnv1a(data, bytes, h);
}

ResultLayout ResultLayout::compute(Index nranks, Index ncells, Index nedges,
                                   int nlev, int ntracers) {
  ResultLayout l;
  l.nranks = nranks;
  l.ncells = ncells;
  l.nedges = nedges;
  l.nlev = nlev;
  l.ntracers = ntracers;
  const std::size_t nc = static_cast<std::size_t>(ncells);
  const std::size_t ne = static_cast<std::size_t>(nedges);
  const std::size_t lev = static_cast<std::size_t>(nlev);
  std::size_t off = alignUp(sizeof(CtlBlock));
  l.hashes_off = off;
  off = alignUp(off + static_cast<std::size_t>(nranks) * sizeof(std::uint64_t));
  l.delp_off = off;
  off = alignUp(off + nc * lev * sizeof(double));
  l.theta_off = off;
  off = alignUp(off + nc * lev * sizeof(double));
  l.w_off = off;
  off = alignUp(off + nc * (lev + 1) * sizeof(double));
  l.phi_off = off;
  off = alignUp(off + nc * (lev + 1) * sizeof(double));
  l.u_off = off;
  off = alignUp(off + ne * lev * sizeof(double));
  l.tracers_off = off;
  off = alignUp(off + static_cast<std::size_t>(ntracers) * nc * lev * sizeof(double));
  l.total = off;
  return l;
}

// ---------------------------------------------------------------------------
// RankProcessModel

RankProcessModel::RankProcessModel(const grid::HexMesh& mesh,
                                   const grid::TrskWeights& trsk,
                                   dycore::DycoreConfig config, Index nranks,
                                   Index rank,
                                   const dycore::State& global_initial,
                                   std::shared_ptr<parallel::Transport> transport)
    : config_(config),
      decomp_(parallel::decompose(mesh, nranks, /*halo_depth=*/2)),
      comm_(decomp_, std::move(transport), rank),
      rank_(rank),
      local_trsk_(localTrskWeights(trsk, decomp_.domains[rank])),
      ncells_global_(mesh.ncells) {
  const parallel::LocalDomain& dom = decomp_.domains[rank_];
  const int ntracers = static_cast<int>(global_initial.tracers.size());
  dycore::Bounds bounds;
  bounds.cells_prog = dom.ncells_owned;
  bounds.cells_diag = dom.ncells_inner1;
  bounds.edges_prog = dom.nedges_owned;
  bounds.vertices_diag = dom.nvtx_complete;
  dycore_ = std::make_unique<dycore::Dycore>(dom.mesh, local_trsk_, config_, bounds);
  dycore::Bands bands;
  bands.boundary_cells = dom.boundary_cells;
  bands.interior_cells = dom.interior_cells;
  bands.boundary_edges = dom.boundary_edges;
  bands.interior_edges = dom.interior_edges;
  dycore_->setBands(std::move(bands));
  state_ = scatterLocalState(global_initial, dom, config_.nlev, ntracers);
  list_.addCellField(state_.delp);
  list_.addCellField(state_.theta);
  list_.addCellField(state_.w);
  list_.addCellField(state_.phi);
  list_.addEdgeField(state_.u);
  comm_.planLocal(list_);
  hooks_.post = [this]() { comm_.post(rank_); };
  hooks_.wait = [this]() { comm_.wait(rank_); };
  // Initial halo fill, the distributed twin of ParallelModel's
  // construction-time collective exchange (same bytes, same seq bump, same
  // CommStats totals across the fleet).
  comm_.post(rank_);
  comm_.wait(rank_);
}

void RankProcessModel::step() { dycore_->step(state_, hooks_); }

void RankProcessModel::run(int nsteps) {
  for (int i = 0; i < nsteps; ++i) step();
}

const parallel::LocalDomain& RankProcessModel::domain() const {
  return decomp_.domains[rank_];
}

std::uint64_t RankProcessModel::ownedHash() const {
  const parallel::LocalDomain& dom = domain();
  const std::size_t lev = static_cast<std::size_t>(config_.nlev);
  std::uint64_t h = 14695981039346656037ull;
  for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
    h = fnv1a(&state_.delp(lc, 0), lev * sizeof(double), h);
    h = fnv1a(&state_.theta(lc, 0), lev * sizeof(double), h);
    h = fnv1a(&state_.w(lc, 0), (lev + 1) * sizeof(double), h);
    h = fnv1a(&state_.phi(lc, 0), (lev + 1) * sizeof(double), h);
  }
  for (Index le = 0; le < dom.nedges_owned; ++le) {
    h = fnv1a(&state_.u(le, 0), lev * sizeof(double), h);
  }
  for (const auto& tr : state_.tracers) {
    for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
      h = fnv1a(&tr(lc, 0), lev * sizeof(double), h);
    }
  }
  return h;
}

void RankProcessModel::writeOwnedState(double* delp, double* theta, double* w,
                                       double* phi, double* u,
                                       double* tracers) const {
  const parallel::LocalDomain& dom = domain();
  const std::size_t lev = static_cast<std::size_t>(config_.nlev);
  const std::size_t row = lev * sizeof(double);
  const std::size_t row1 = (lev + 1) * sizeof(double);
  for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
    const std::size_t g = static_cast<std::size_t>(dom.cell_global[lc]);
    std::memcpy(delp + g * lev, &state_.delp(lc, 0), row);
    std::memcpy(theta + g * lev, &state_.theta(lc, 0), row);
    std::memcpy(w + g * (lev + 1), &state_.w(lc, 0), row1);
    std::memcpy(phi + g * (lev + 1), &state_.phi(lc, 0), row1);
    for (std::size_t t = 0; t < state_.tracers.size(); ++t) {
      std::memcpy(tracers + (t * static_cast<std::size_t>(ncells_global_) + g) * lev,
                  &state_.tracers[t](lc, 0), row);
    }
  }
  for (Index le = 0; le < dom.nedges_owned; ++le) {
    const std::size_t g = static_cast<std::size_t>(dom.edge_global[le]);
    std::memcpy(u + g * lev, &state_.u(le, 0), row);
  }
}

// ---------------------------------------------------------------------------
// Worker side

namespace {

int workerMain(const RunSpec& spec, Index rank) {
  const grid::HexMesh mesh = grid::buildHexMesh(spec.grid_level);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  dycore::DycoreConfig cfg;
  cfg.nlev = spec.nlev;
  cfg.dt = spec.dt;
  cfg.ntracers = spec.ntracers;
  cfg.ns = spec.ns;
  // Every worker builds the same global initial state (cold: the analytic
  // init; restart: the validated snapshot) and scatters its own rank slice.
  const dycore::State initial =
      spec.restart.empty()
          ? dycore::initBaroclinicWave(mesh, cfg, spec.ntracers)
          : loadDynRestart(spec.restart, mesh, cfg, spec.ntracers, nullptr);
  auto transport = std::make_shared<parallel::ShmTransport>(spec.segment,
                                                            spec.nranks, rank);
  RankProcessModel model(mesh, trsk, cfg, spec.nranks, rank, initial, transport);

  const ResultLayout lay =
      ResultLayout::compute(spec.nranks, mesh.ncells, mesh.nedges, cfg.nlev,
                            static_cast<int>(initial.tracers.size()));
  parallel::ShmRegion ctl =
      parallel::ShmRegion::attach(spec.segment + "-ctl", lay.total);
  auto* base = static_cast<std::uint8_t*>(ctl.payload());
  auto* c = reinterpret_cast<CtlBlock*>(base);
  const auto at = [&](std::size_t off) {
    return reinterpret_cast<double*>(base + off);
  };

  std::uint32_t last = 0;
  for (;;) {
    std::uint32_t s = c->cmd_seq.load(std::memory_order_acquire);
    while (s == last) {
      parallel::futexWait(&c->cmd_seq, s, 0.5);
      s = c->cmd_seq.load(std::memory_order_acquire);
      // Orphan guard: if the parent vanished without a stop command, exit
      // instead of idling on a leaked segment forever.
      if (s == last && ::getppid() == 1) return 3;
    }
    const std::uint32_t cmd = c->cmd;
    switch (cmd) {
      case kCmdStep:
        model.setWireLatency(c->wire_latency);
        model.run(c->nsteps);
        break;
      case kCmdGather:
        model.writeOwnedState(at(lay.delp_off), at(lay.theta_off), at(lay.w_off),
                              at(lay.phi_off), at(lay.u_off), at(lay.tracers_off));
        reinterpret_cast<std::uint64_t*>(base + lay.hashes_off)[rank] =
            model.ownedHash();
        if (rank == 0) {
          const parallel::CommStats st = model.commStats();
          c->messages = st.messages;
          c->bytes = st.bytes;
          c->exchanges = st.exchanges;
        }
        break;
      case kCmdStop:
      default:
        break;
    }
    last = s;
    // Counting ack barrier: the last rank to finish this command publishes
    // the ack (its acquire fetch_add orders every peer's writes before the
    // parent's acquire load of ack_seq).
    if (c->done_count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        static_cast<std::uint32_t>(spec.nranks)) {
      c->done_count.store(0, std::memory_order_relaxed);
      c->ack_seq.store(s, std::memory_order_release);
      parallel::futexWake(&c->ack_seq, INT_MAX);
    }
    if (cmd == kCmdStop) return 0;
  }
}

} // namespace

std::optional<int> maybeRunWorker(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], kWorkerFlag) != 0) return std::nullopt;
  if (argc != 11) {
    std::fprintf(stderr, "%s: expected 9 operands, got %d\n", kWorkerFlag,
                 argc - 2);
    return 2;
  }
  RunSpec spec;
  spec.segment = argv[2];
  spec.nranks = static_cast<Index>(std::atoi(argv[3]));
  const Index rank = static_cast<Index>(std::atoi(argv[4]));
  spec.grid_level = std::atoi(argv[5]);
  spec.nlev = std::atoi(argv[6]);
  spec.dt = std::strtod(argv[7], nullptr);
  spec.ntracers = std::atoi(argv[8]);
  spec.ns = std::strcmp(argv[9], "mix") == 0 ? precision::NsMode::kSingle
                                             : precision::NsMode::kDouble;
  if (std::strcmp(argv[10], "-") != 0) spec.restart = argv[10];
  try {
    return workerMain(spec, rank);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[grist shm worker rank %d] %s\n",
                 static_cast<int>(rank), e.what());
    return 1;
  }
}

// ---------------------------------------------------------------------------
// Parent side

MpSession::MpSession(RunSpec spec)
    : spec_(std::move(spec)), mesh_(grid::buildHexMesh(spec_.grid_level)) {
  if (spec_.nranks <= 0) {
    throw std::invalid_argument("MpSession: need at least one rank");
  }
  if (spec_.segment.empty()) spec_.segment = parallel::makeSegmentName();
  layout_ = ResultLayout::compute(spec_.nranks, mesh_.ncells, mesh_.nedges,
                                  spec_.nlev, spec_.ntracers);
  // The control/result segment is parent-created and zero-filled; workers
  // attach by the derived "-ctl" name. The TRANSPORT segment is created by
  // rank 0 inside planLocal (it knows the message sizes); the parent only
  // unlinks it at teardown.
  ctl_ = parallel::ShmRegion::create(spec_.segment + "-ctl", layout_.total);
  ctl_.markReady();
  hashes_.assign(static_cast<std::size_t>(spec_.nranks), 0);

  char dt[40];
  std::snprintf(dt, sizeof(dt), "%.17g", spec_.dt);
  pids_ = parallel::spawnRanks(spec_.nranks, spec_.pin, [&](Index r) {
    return std::vector<std::string>{
        "grist-shm-worker",
        kWorkerFlag,
        spec_.segment,
        std::to_string(spec_.nranks),
        std::to_string(r),
        std::to_string(spec_.grid_level),
        std::to_string(spec_.nlev),
        dt,
        std::to_string(spec_.ntracers),
        nsName(spec_.ns),
        spec_.restart.empty() ? "-" : spec_.restart};
  });
  exit_codes_.assign(pids_.size(), -1);
}

MpSession::~MpSession() {
  if (!failed_) {
    try {
      command(kCmdStop, 0);
    } catch (...) {
      // failSession already tore the fleet down; fall through to unlink.
    }
  }
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (exit_codes_[i] < 0) ::waitpid(pids_[i], nullptr, 0);
  }
  parallel::ShmTransport::unlinkSegments(spec_.segment);
  parallel::ShmRegion::unlink(spec_.segment + "-ctl");
}

void MpSession::probeChildren() {
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (exit_codes_[i] >= 0) continue;
    int status = 0;
    const pid_t w = ::waitpid(pids_[i], &status, WNOHANG);
    if (w == 0) continue;
    int code = 1;
    if (w == pids_[i]) {
      if (WIFEXITED(status)) {
        code = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        code = 128 + WTERMSIG(status);
      }
    }
    exit_codes_[i] = code;
    // ANY exit while a command is outstanding is fatal -- even a clean one
    // means the rank can never ack.
    failSession("rank " + std::to_string(i) + " (pid " +
                std::to_string(pids_[i]) + ") exited with code " +
                std::to_string(code) + " mid-command");
  }
}

void MpSession::failSession(const std::string& why) {
  failed_ = true;
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (exit_codes_[i] < 0) ::kill(pids_[i], SIGTERM);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    while (exit_codes_[i] < 0) {
      int status = 0;
      if (::waitpid(pids_[i], &status, WNOHANG) != 0) {
        exit_codes_[i] = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
        break;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        ::kill(pids_[i], SIGKILL);
        ::waitpid(pids_[i], &status, 0);
        exit_codes_[i] = 137;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  parallel::ShmTransport::unlinkSegments(spec_.segment);
  parallel::ShmRegion::unlink(spec_.segment + "-ctl");
  throw std::runtime_error("MpSession: " + why);
}

void MpSession::command(std::uint32_t cmd, int nsteps) {
  if (failed_) throw std::logic_error("MpSession: session already failed");
  auto* c = static_cast<CtlBlock*>(ctl_.payload());
  c->cmd = cmd;
  c->nsteps = nsteps;
  c->wire_latency = spec_.wire_latency;
  const std::uint32_t s = ++seq_;
  c->cmd_seq.store(s, std::memory_order_release);
  parallel::futexWake(&c->cmd_seq, INT_MAX);
  for (;;) {
    const std::uint32_t a = c->ack_seq.load(std::memory_order_acquire);
    if (a == s) return;
    parallel::futexWait(&c->ack_seq, a, 0.05);
    if (cmd != kCmdStop) probeChildren();
  }
}

void MpSession::run(int nsteps) { command(kCmdStep, nsteps); }

void MpSession::refreshResults() {
  const auto* base = static_cast<const std::uint8_t*>(ctl_.payload());
  const auto* c = reinterpret_cast<const CtlBlock*>(base);
  const auto* h = reinterpret_cast<const std::uint64_t*>(base + layout_.hashes_off);
  for (Index r = 0; r < spec_.nranks; ++r) {
    hashes_[static_cast<std::size_t>(r)] = h[r];
  }
  stats_.messages = c->messages;
  stats_.bytes = c->bytes;
  stats_.exchanges = c->exchanges;
}

dycore::State MpSession::gather() {
  command(kCmdGather, 0);
  refreshResults();
  const auto* base = static_cast<const std::uint8_t*>(ctl_.payload());
  const auto at = [&](std::size_t off) {
    return reinterpret_cast<const double*>(base + off);
  };
  const std::size_t nc = static_cast<std::size_t>(mesh_.ncells);
  const std::size_t ne = static_cast<std::size_t>(mesh_.nedges);
  const std::size_t lev = static_cast<std::size_t>(spec_.nlev);
  dycore::State g(mesh_, spec_.nlev, spec_.ntracers);
  std::memcpy(g.delp.data(), at(layout_.delp_off), nc * lev * sizeof(double));
  std::memcpy(g.theta.data(), at(layout_.theta_off), nc * lev * sizeof(double));
  std::memcpy(g.w.data(), at(layout_.w_off), nc * (lev + 1) * sizeof(double));
  std::memcpy(g.phi.data(), at(layout_.phi_off), nc * (lev + 1) * sizeof(double));
  std::memcpy(g.u.data(), at(layout_.u_off), ne * lev * sizeof(double));
  for (int t = 0; t < spec_.ntracers; ++t) {
    std::memcpy(g.tracers[static_cast<std::size_t>(t)].data(),
                at(layout_.tracers_off) + static_cast<std::size_t>(t) * nc * lev,
                nc * lev * sizeof(double));
  }
  return g;
}

parallel::CommStats MpSession::commStats() {
  command(kCmdGather, 0);
  refreshResults();
  return stats_;
}

} // namespace grist::core::mp
