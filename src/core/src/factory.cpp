#include "grist/core/factory.hpp"

#include <stdexcept>

#include "grist/dycore/init.hpp"

namespace grist::core {

namespace {

// Shared namelist parsing for the solo and ensemble factories. Cadence
// defaults are taken from ModelConfig itself (8/15) so the namelist layer
// cannot drift from the programmatic defaults again.
ModelConfig parseModelConfig(const Config& config) {
  ModelConfig cfg;
  cfg.dyn.nlev = config.getInt("nlev", 20);
  cfg.dyn.dt = config.getDouble("dt_dyn", 300.0);
  cfg.dyn.w_damp_tau = config.getDouble("w_damp_tau", 2.0 * cfg.dyn.dt);
  cfg.dyn.div_damp = config.getDouble("div_damp", 0.06);
  cfg.dyn.diff_coef = config.getDouble("diff_coef", 0.02);
  cfg.trac_interval = config.getInt("trac_interval", cfg.trac_interval);
  cfg.phy_interval = config.getInt("phy_interval", cfg.phy_interval);

  const std::string scheme = config.getString("scheme", "DP-PHY");
  if (scheme == "DP-PHY") {
    cfg.dyn.ns = precision::NsMode::kDouble;
    cfg.scheme = PhysicsScheme::kConventional;
  } else if (scheme == "DP-ML") {
    cfg.dyn.ns = precision::NsMode::kDouble;
    cfg.scheme = PhysicsScheme::kMl;
  } else if (scheme == "MIX-PHY") {
    cfg.dyn.ns = precision::NsMode::kSingle;
    cfg.scheme = PhysicsScheme::kConventional;
  } else if (scheme == "MIX-ML") {
    cfg.dyn.ns = precision::NsMode::kSingle;
    cfg.scheme = PhysicsScheme::kMl;
  } else if (scheme == "DP-HS" || scheme == "HS") {
    cfg.dyn.ns = precision::NsMode::kDouble;
    cfg.scheme = PhysicsScheme::kHeldSuarez;
  } else if (scheme == "MIX-HS") {
    cfg.dyn.ns = precision::NsMode::kSingle;
    cfg.scheme = PhysicsScheme::kHeldSuarez;
  } else {
    throw std::invalid_argument("makeModelFromConfig: unknown scheme '" + scheme +
                                "' (expected a Table 3 label or DP-HS/MIX-HS)");
  }

  if (cfg.scheme == PhysicsScheme::kMl) {
    const std::string q1q2_path = config.getString("q1q2_weights", "");
    const std::string rad_path = config.getString("rad_weights", "");
    if (q1q2_path.empty() || rad_path.empty()) {
      throw std::invalid_argument(
          "makeModelFromConfig: ML schemes need q1q2_weights and rad_weights");
    }
    ml::Q1Q2NetConfig qcfg;
    qcfg.nlev = cfg.dyn.nlev;
    qcfg.channels = config.getInt("q1q2_channels", 24);
    qcfg.res_units = config.getInt("q1q2_res_units", 2);
    auto q1q2 = std::make_shared<ml::Q1Q2Net>(qcfg);
    q1q2->load(q1q2_path);
    ml::RadMlpConfig rcfg;
    rcfg.nlev = cfg.dyn.nlev;
    rcfg.hidden = config.getInt("rad_hidden", 48);
    auto rad = std::make_shared<ml::RadMlp>(rcfg);
    rad->load(rad_path);
    cfg.q1q2 = std::move(q1q2);
    cfg.rad_mlp = std::move(rad);
  }
  return cfg;
}

dycore::State buildInitialState(const Config& config, const grid::HexMesh& mesh,
                                const ModelConfig& cfg) {
  const std::string case_name = config.getString("case", "baroclinic");
  if (case_name == "rest") {
    return dycore::initRestState(mesh, cfg.dyn, 300.0, 3);
  }
  if (case_name == "baroclinic") {
    return dycore::initBaroclinicWave(mesh, cfg.dyn, 3);
  }
  if (case_name == "typhoon") {
    return dycore::initTyphoon(mesh, cfg.dyn, {}, 3);
  }
  if (case_name == "bubble") {
    return dycore::initWarmBubble(mesh, cfg.dyn, 2.0, 50.0e3, 3);
  }
  throw std::invalid_argument("makeModelFromConfig: unknown case '" + case_name +
                              "'");
}

} // namespace

std::unique_ptr<ModelBundle> makeModelFromConfig(const Config& config) {
  auto bundle = std::make_unique<ModelBundle>();
  const int level = config.getInt("grid_level", 4);
  bundle->mesh = grid::buildHexMesh(level);
  bundle->trsk = grid::buildTrskWeights(bundle->mesh);

  ModelConfig cfg = parseModelConfig(config);
  dycore::State initial = buildInitialState(config, bundle->mesh, cfg);
  bundle->model =
      std::make_unique<Model>(bundle->mesh, bundle->trsk, cfg, std::move(initial));
  return bundle;
}

std::unique_ptr<EnsembleBundle> makeEnsembleFromConfig(
    const Config& config, int members, std::uint64_t perturb_seed) {
  auto bundle = std::make_unique<EnsembleBundle>();
  const int level = config.getInt("grid_level", 4);
  bundle->mesh = grid::buildHexMesh(level);
  bundle->trsk = grid::buildTrskWeights(bundle->mesh);

  EnsembleConfig ecfg;
  ecfg.model = parseModelConfig(config);
  ecfg.members = members;
  ecfg.perturb_seed = perturb_seed;
  ecfg.perturb_amplitude = config.getDouble("perturb_amplitude", 1e-3);
  ecfg.cross_member_gemm = config.getInt("cross_member_gemm", 1) != 0;
  dycore::State initial = buildInitialState(config, bundle->mesh, ecfg.model);
  bundle->runner = std::make_unique<EnsembleRunner>(bundle->mesh, bundle->trsk,
                                                    std::move(ecfg), initial);
  return bundle;
}

} // namespace grist::core
