#include "grist/core/model.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "grist/common/math.hpp"
#include "grist/dycore/tracer.hpp"
#include "grist/dycore/vertical_remap.hpp"
#include "grist/physics/held_suarez.hpp"

namespace grist::core {

std::vector<double> initialSkinTemperature(const grid::HexMesh& mesh) {
  // Zonally symmetric SST-like profile: warm tropics, cold poles. Shared
  // with EnsembleRunner so ensemble members and solo models start from the
  // same land state (a parity precondition for the ENSEMBLE bitwise gate).
  std::vector<double> tskin(mesh.ncells);
  for (Index c = 0; c < mesh.ncells; ++c) {
    const double lat = mesh.cell_ll[c].lat;
    tskin[c] = 302.0 - 32.0 * std::pow(std::sin(lat), 2.0);
  }
  return tskin;
}

Model::Model(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
             ModelConfig config, dycore::State initial)
    : mesh_(mesh),
      config_(std::move(config)),
      dycore_(mesh, trsk, config_.dyn),
      coupler_(mesh, config_.dyn.nlev),
      state_(std::move(initial)),
      delp_at_tracer_start_(state_.delp),
      tskin_(initialSkinTemperature(mesh)),
      precip_accum_(mesh.ncells, 0.0),
      phys_in_(mesh.ncells, config_.dyn.nlev),
      phys_out_(mesh.ncells, config_.dyn.nlev) {
  if (state_.tracers.size() < 3) {
    throw std::invalid_argument("Model: state needs >= 3 tracers (qv, qc, qr)");
  }
  if (config_.trac_interval < 1 || config_.phy_interval < 1) {
    throw std::invalid_argument("Model: bad timestep hierarchy");
  }
  if (config_.scheme == PhysicsScheme::kHeldSuarez) {
    suite_ = std::make_unique<physics::HeldSuarezSuite>();
  } else if (config_.scheme == PhysicsScheme::kMl) {
    if (!config_.q1q2 || !config_.rad_mlp) {
      throw std::invalid_argument("Model: ML scheme requires trained networks");
    }
    suite_ = std::make_unique<ml::MlPhysicsSuite>(
        mesh.ncells, config_.dyn.nlev, config_.q1q2, config_.rad_mlp, config_.ml);
  } else {
    // Scale-aware convection: pass the mesh's own spacing.
    config_.conventional.grid_dx = mesh.meanSpacing();
    suite_ = std::make_unique<physics::ConventionalSuite>(
        mesh.ncells, config_.dyn.nlev, config_.conventional);
  }
  dycore_.resetAccumulatedFlux();
}

void Model::resyncAfterRestart() {
  dycore_.resetAccumulatedFlux();
  delp_at_tracer_start_ = state_.delp;
  dyn_steps_ = 0;
}

void Model::setTskin(std::vector<double> tskin) {
  if (static_cast<Index>(tskin.size()) != mesh_.ncells) {
    throw std::invalid_argument("Model::setTskin: size mismatch");
  }
  tskin_ = std::move(tskin);
}

const char* Model::schemeName() const {
  return schemeLabel(config_.dyn.ns, config_.scheme);
}

io::Snapshot Model::snapshot() const {
  io::Snapshot snap;
  snap.state = io::StateSection::capture(state_);
  snap.land = tskin_;

  io::ClockSection clock;
  clock.sim_seconds = sim_seconds_;
  clock.dyn_steps = dyn_steps_;
  snap.clock = clock;

  io::DiagSection diag;
  diag.ncells = mesh_.ncells;
  diag.nedges = mesh_.nedges;
  diag.nlev = config_.dyn.nlev;
  diag.acc_steps = dycore_.accumulatedSteps();
  const parallel::Field& af = dycore_.accumulatedMassFlux();
  diag.acc_flux.assign(af.data(), af.data() + af.size());
  diag.delp_at_tracer_start.assign(
      delp_at_tracer_start_.data(),
      delp_at_tracer_start_.data() + delp_at_tracer_start_.size());
  diag.precip_accum = precip_accum_;
  snap.diag = diag;

  io::ConfigSection cs;
  cs.grid_level = mesh_.level;
  cs.writer_nranks = 1;
  cs.nlev = config_.dyn.nlev;
  cs.ntracers = static_cast<std::int32_t>(state_.tracers.size());
  cs.trac_interval = config_.trac_interval;
  cs.phy_interval = config_.phy_interval;
  cs.dt = config_.dyn.dt;
  cs.ns_single = config_.dyn.ns == precision::NsMode::kSingle ? 1 : 0;
  snap.config = cs;

  if (config_.scheme == PhysicsScheme::kMl) {
    io::MlWeightsSection ml;
    ml.q1q2_fingerprint = config_.q1q2->weightFingerprint();
    ml.rad_fingerprint = config_.rad_mlp->weightFingerprint();
    ml.q1q2_bf16_version = config_.q1q2->quantizedVersion(ml::Precision::kBf16);
    ml.q1q2_int8_version = config_.q1q2->quantizedVersion(ml::Precision::kInt8);
    ml.rad_bf16_version = config_.rad_mlp->quantizedVersion(ml::Precision::kBf16);
    ml.rad_int8_version = config_.rad_mlp->quantizedVersion(ml::Precision::kInt8);
    snap.ml = ml;
  }
  return snap;
}

void Model::restore(const io::Snapshot& snap) {
  if (!snap.state) {
    throw std::runtime_error("Model::restore: snapshot has no STATE section");
  }
  const auto mismatch = [](const char* field, double have, double want) {
    throw std::runtime_error("Model::restore: CONFIG mismatch: " +
                             std::string(field) + " " + std::to_string(have) +
                             " (checkpoint) vs " + std::to_string(want) +
                             " (run)");
  };
  if (snap.config) {
    const io::ConfigSection& cs = *snap.config;
    if (cs.nlev != config_.dyn.nlev) mismatch("nlev", cs.nlev, config_.dyn.nlev);
    if (cs.ntracers != static_cast<std::int32_t>(state_.tracers.size())) {
      mismatch("ntracers", cs.ntracers,
               static_cast<double>(state_.tracers.size()));
    }
    if (cs.dt != config_.dyn.dt) mismatch("dt", cs.dt, config_.dyn.dt);
    const std::uint8_t ns =
        config_.dyn.ns == precision::NsMode::kSingle ? 1 : 0;
    if (cs.ns_single != ns) mismatch("ns_single", cs.ns_single, ns);
    if (cs.trac_interval != config_.trac_interval) {
      mismatch("trac_interval", cs.trac_interval, config_.trac_interval);
    }
    if (cs.phy_interval != config_.phy_interval) {
      mismatch("phy_interval", cs.phy_interval, config_.phy_interval);
    }
  }
  if (snap.ml && config_.scheme == PhysicsScheme::kMl) {
    if (snap.ml->q1q2_fingerprint != config_.q1q2->weightFingerprint()) {
      throw std::runtime_error(
          "Model::restore: MLWT mismatch: q1q2 weight fingerprint differs "
          "from the checkpointed net");
    }
    if (snap.ml->rad_fingerprint != config_.rad_mlp->weightFingerprint()) {
      throw std::runtime_error(
          "Model::restore: MLWT mismatch: rad_mlp weight fingerprint differs "
          "from the checkpointed net");
    }
  }

  snap.state->restoreTo(state_);
  if (snap.land) setTskin(*snap.land);
  if (snap.clock) {
    sim_seconds_ = snap.clock->sim_seconds;
    // Legacy files do not record the step count (-1): start a fresh cadence.
    dyn_steps_ = snap.clock->dyn_steps >= 0 ? snap.clock->dyn_steps : 0;
  }
  if (snap.diag) {
    const io::DiagSection& d = *snap.diag;
    if (d.ncells != mesh_.ncells || d.nedges != mesh_.nedges ||
        d.nlev != config_.dyn.nlev) {
      throw std::runtime_error("Model::restore: DIAG shape mismatch");
    }
    parallel::Field flux(mesh_.nedges, config_.dyn.nlev);
    std::memcpy(flux.data(), d.acc_flux.data(),
                d.acc_flux.size() * sizeof(double));
    dycore_.restoreAccumulatedFlux(flux, d.acc_steps);
    std::memcpy(delp_at_tracer_start_.data(), d.delp_at_tracer_start.data(),
                d.delp_at_tracer_start.size() * sizeof(double));
    precip_accum_ = d.precip_accum;
  } else {
    // No accumulator windows (legacy / dynamics-only snapshot): reset the
    // flux window, exact only at tracer-step boundaries.
    dycore_.resetAccumulatedFlux();
    delp_at_tracer_start_ = state_.delp;
  }
}

void Model::step() {
  dycore_.step(state_);
  ++dyn_steps_;
  sim_seconds_ += config_.dyn.dt;
  if (dyn_steps_ % config_.trac_interval == 0) tracerStep();
  if (dyn_steps_ % config_.phy_interval == 0) physicsStep();
}

void Model::run(int ndyn_steps) {
  for (int i = 0; i < ndyn_steps; ++i) step();
}

void Model::tracerStep() {
  const int nsub = dycore_.accumulatedSteps();
  if (nsub == 0) return;
  parallel::Field mean_flux = dycore_.accumulatedMassFlux();
  for (std::size_t i = 0; i < mean_flux.size(); ++i) {
    mean_flux.data()[i] /= static_cast<double>(nsub);
  }
  dycore::TracerTransportArgs args;
  args.mesh = &mesh_;
  args.ncells_prog = mesh_.ncells;
  args.nlev = config_.dyn.nlev;
  args.dt = nsub * config_.dyn.dt;
  args.mean_flux = mean_flux.data();
  args.delp_old = delp_at_tracer_start_.data();
  args.delp_new = state_.delp.data();
  for (auto& tracer : state_.tracers) {
    dycore::tracerTransport(args, config_.dyn.ns, tracer.data());
  }
  dycore_.resetAccumulatedFlux();
  // Vertically-Lagrangian layers drift between remaps; bring the columns
  // back to reference levels on the tracer cadence (as production
  // mass-coordinate cores do) so thin layers cannot be drained to zero.
  dycore::verticalRemap(mesh_.ncells, config_.dyn.nlev, config_.dyn.ptop, state_);
  delp_at_tracer_start_ = state_.delp;
}

void Model::physicsStep() {
  const double dt_phy = config_.phy_interval * config_.dyn.dt;
  coupler_.stateToPhysics(state_, tskin_, sim_seconds_, phys_in_);
  suite_->run(phys_in_, dt_phy, phys_out_);
  coupler_.applyTendencies(phys_out_, dt_phy, state_);
  // Land state and precipitation bookkeeping.
  tskin_ = phys_out_.tskin_new;
  for (Index c = 0; c < mesh_.ncells; ++c) {
    precip_accum_[c] += phys_out_.precip[c] * dt_phy / 86400.0;  // mm
  }
}

std::vector<double> Model::meanPrecipRate() const {
  std::vector<double> rate(precip_accum_.size(), 0.0);
  const double days = simDays();
  if (days <= 0) return rate;
  for (std::size_t c = 0; c < rate.size(); ++c) rate[c] = precip_accum_[c] / days;
  return rate;
}

} // namespace grist::core
