#include "grist/core/ensemble_runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "grist/common/math.hpp"
#include "grist/dycore/tracer.hpp"
#include "grist/dycore/vertical_remap.hpp"
#include "grist/physics/held_suarez.hpp"

namespace grist::core {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

} // namespace

std::uint64_t EnsembleRunner::memberSeed(std::uint64_t base, int member) {
  return splitmix64(base ^ (0x9E3779B97F4A7C15ull *
                            static_cast<std::uint64_t>(member + 1)));
}

void EnsembleRunner::perturbState(dycore::State& state, std::uint64_t seed,
                                  double amplitude) {
  const std::size_t n = state.theta.size();
  double* theta = state.theta.data();
  for (std::size_t i = 0; i < n; ++i) {
    // Hash of (seed, element index) -> u in [0, 1) with 53 random bits;
    // order-independent, so any traversal produces the same field.
    const std::uint64_t h = splitmix64(seed + static_cast<std::uint64_t>(i));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    theta[i] += amplitude * (2.0 * u - 1.0);
  }
}

EnsembleRunner::EnsembleRunner(const grid::HexMesh& mesh,
                               const grid::TrskWeights& trsk,
                               EnsembleConfig config,
                               const dycore::State& initial)
    : mesh_(mesh),
      config_(std::move(config)),
      edy_(mesh, trsk, config_.model.dyn, config_.members),
      coupler_(mesh, config_.model.dyn.nlev),
      mean_flux_scratch_(mesh.nedges, config_.model.dyn.nlev) {
  ModelConfig& mc = config_.model;
  if (config_.members < 1) {
    throw std::invalid_argument("EnsembleRunner: members < 1");
  }
  if (initial.tracers.size() < 3) {
    throw std::invalid_argument(
        "EnsembleRunner: state needs >= 3 tracers (qv, qc, qr)");
  }
  if (mc.trac_interval < 1 || mc.phy_interval < 1) {
    throw std::invalid_argument("EnsembleRunner: bad timestep hierarchy");
  }
  if (mc.scheme == PhysicsScheme::kMl && (!mc.q1q2 || !mc.rad_mlp)) {
    throw std::invalid_argument(
        "EnsembleRunner: ML scheme requires trained networks");
  }

  const int M = config_.members;
  const int nlev = mc.dyn.nlev;
  const std::size_t mm = static_cast<std::size_t>(M);

  states_.reserve(mm);
  state_ptrs_.reserve(mm);
  delp_at_tracer_start_.reserve(mm);
  tskin_.reserve(mm);
  precip_accum_.reserve(mm);
  for (int m = 0; m < M; ++m) {
    states_.push_back(initial);
    if (config_.perturb_seed != 0) {
      perturbState(states_.back(), memberSeed(config_.perturb_seed, m),
                   config_.perturb_amplitude);
    }
    delp_at_tracer_start_.push_back(states_.back().delp);
    tskin_.push_back(initialSkinTemperature(mesh));
    precip_accum_.emplace_back(static_cast<std::size_t>(mesh.ncells), 0.0);
  }
  for (dycore::State& s : states_) state_ptrs_.push_back(&s);

  // Physics: one fused suite over M*ncells columns when the ML scheme can
  // batch GEMMs across members, otherwise M per-member suites (the other
  // half of the benchmark pair, and the only mode for the column schemes).
  const auto makeSuite = [&](Index ncolumns) -> std::unique_ptr<physics::PhysicsSuite> {
    if (mc.scheme == PhysicsScheme::kHeldSuarez) {
      return std::make_unique<physics::HeldSuarezSuite>();
    }
    if (mc.scheme == PhysicsScheme::kMl) {
      return std::make_unique<ml::MlPhysicsSuite>(ncolumns, nlev, mc.q1q2,
                                                  mc.rad_mlp, mc.ml);
    }
    mc.conventional.grid_dx = mesh.meanSpacing();
    return std::make_unique<physics::ConventionalSuite>(ncolumns, nlev,
                                                        mc.conventional);
  };
  if (config_.cross_member_gemm && mc.scheme == PhysicsScheme::kMl) {
    const Index ncol = mesh.ncells * M;
    fused_suite_ = makeSuite(ncol);
    fused_in_ = std::make_unique<physics::PhysicsInput>(ncol, nlev);
    fused_out_ = std::make_unique<physics::PhysicsOutput>(ncol, nlev);
  } else {
    member_suites_.reserve(mm);
    member_in_.reserve(mm);
    member_out_.reserve(mm);
    for (int m = 0; m < M; ++m) {
      member_suites_.push_back(makeSuite(mesh.ncells));
      member_in_.emplace_back(mesh.ncells, nlev);
      member_out_.emplace_back(mesh.ncells, nlev);
    }
  }
  edy_.resetAccumulatedFlux();
}

void EnsembleRunner::step() {
  edy_.step(state_ptrs_.data());
  ++dyn_steps_;
  sim_seconds_ += config_.model.dyn.dt;
  if (dyn_steps_ % config_.model.trac_interval == 0) tracerStep();
  if (dyn_steps_ % config_.model.phy_interval == 0) physicsStep();
}

void EnsembleRunner::run(int ndyn_steps) {
  for (int i = 0; i < ndyn_steps; ++i) step();
}

void EnsembleRunner::tracerStep() {
  const int nsub = edy_.accumulatedSteps();
  if (nsub == 0) return;
  const ModelConfig& mc = config_.model;
  for (int m = 0; m < config_.members; ++m) {
    const std::size_t mi = static_cast<std::size_t>(m);
    dycore::State& state = states_[mi];
    // Member's window-mean mass flux into the preallocated scratch (solo
    // Model divides a copy; same values, no allocation here).
    const parallel::Field& acc = edy_.accumulatedMassFlux(m);
    std::copy(acc.data(), acc.data() + acc.size(), mean_flux_scratch_.data());
    for (std::size_t i = 0; i < mean_flux_scratch_.size(); ++i) {
      mean_flux_scratch_.data()[i] /= static_cast<double>(nsub);
    }
    dycore::TracerTransportArgs args;
    args.mesh = &mesh_;
    args.ncells_prog = mesh_.ncells;
    args.nlev = mc.dyn.nlev;
    args.dt = nsub * mc.dyn.dt;
    args.mean_flux = mean_flux_scratch_.data();
    args.delp_old = delp_at_tracer_start_[mi].data();
    args.delp_new = state.delp.data();
    for (auto& tracer : state.tracers) {
      dycore::tracerTransport(args, mc.dyn.ns, tracer.data());
    }
    dycore::verticalRemap(mesh_.ncells, mc.dyn.nlev, mc.dyn.ptop, state);
    std::copy(state.delp.data(), state.delp.data() + state.delp.size(),
              delp_at_tracer_start_[mi].data());
  }
  edy_.resetAccumulatedFlux();
}

void EnsembleRunner::physicsStep() {
  const ModelConfig& mc = config_.model;
  const double dt_phy = mc.phy_interval * mc.dyn.dt;
  const Index ncells = mesh_.ncells;

  if (fused_suite_) {
    // One M*ncells-column batch: member m occupies columns [m*ncells,
    // (m+1)*ncells). Per-column physics is independent and predictBatch is
    // block-composition-invariant, so each member's columns get bitwise
    // the same treatment they would get solo.
    for (int m = 0; m < config_.members; ++m) {
      coupler_.stateToPhysics(states_[static_cast<std::size_t>(m)],
                              tskin_[static_cast<std::size_t>(m)],
                              sim_seconds_, *fused_in_, ncells * m);
    }
    fused_suite_->run(*fused_in_, dt_phy, *fused_out_);
    for (int m = 0; m < config_.members; ++m) {
      const std::size_t mi = static_cast<std::size_t>(m);
      const Index col0 = ncells * m;
      coupler_.applyTendencies(*fused_out_, col0, dt_phy, states_[mi]);
      std::copy(fused_out_->tskin_new.begin() + col0,
                fused_out_->tskin_new.begin() + col0 + ncells,
                tskin_[mi].begin());
      for (Index c = 0; c < ncells; ++c) {
        precip_accum_[mi][static_cast<std::size_t>(c)] +=
            fused_out_->precip[static_cast<std::size_t>(col0 + c)] * dt_phy /
            86400.0;
      }
    }
    return;
  }

  for (int m = 0; m < config_.members; ++m) {
    const std::size_t mi = static_cast<std::size_t>(m);
    coupler_.stateToPhysics(states_[mi], tskin_[mi], sim_seconds_,
                            member_in_[mi]);
    member_suites_[mi]->run(member_in_[mi], dt_phy, member_out_[mi]);
    coupler_.applyTendencies(member_out_[mi], dt_phy, states_[mi]);
    std::copy(member_out_[mi].tskin_new.begin(),
              member_out_[mi].tskin_new.end(), tskin_[mi].begin());
    for (Index c = 0; c < ncells; ++c) {
      precip_accum_[mi][static_cast<std::size_t>(c)] +=
          member_out_[mi].precip[static_cast<std::size_t>(c)] * dt_phy /
          86400.0;
    }
  }
}

std::vector<double> EnsembleRunner::meanSurfacePressure() const {
  const double inv = 1.0 / config_.members;
  std::vector<double> mean(static_cast<std::size_t>(mesh_.ncells), 0.0);
  const int nlev = config_.model.dyn.nlev;
  for (const dycore::State& s : states_) {
    for (Index c = 0; c < mesh_.ncells; ++c) {
      double ps = config_.model.dyn.ptop;
      for (int k = 0; k < nlev; ++k) ps += s.delp(c, k);
      mean[static_cast<std::size_t>(c)] += ps * inv;
    }
  }
  return mean;
}

std::vector<double> EnsembleRunner::spreadSurfacePressure() const {
  // Population std-dev across members, per cell (two-pass: mean first).
  const std::vector<double> mean = meanSurfacePressure();
  std::vector<double> var(static_cast<std::size_t>(mesh_.ncells), 0.0);
  const int nlev = config_.model.dyn.nlev;
  const double inv = 1.0 / config_.members;
  for (const dycore::State& s : states_) {
    for (Index c = 0; c < mesh_.ncells; ++c) {
      double ps = config_.model.dyn.ptop;
      for (int k = 0; k < nlev; ++k) ps += s.delp(c, k);
      const double d = ps - mean[static_cast<std::size_t>(c)];
      var[static_cast<std::size_t>(c)] += d * d * inv;
    }
  }
  for (double& v : var) v = std::sqrt(std::max(0.0, v));
  return var;
}

double EnsembleRunner::globalSpread() const {
  const std::vector<double> spread = spreadSurfacePressure();
  double num = 0.0, den = 0.0;
  for (Index c = 0; c < mesh_.ncells; ++c) {
    num += spread[static_cast<std::size_t>(c)] * mesh_.cell_area[c];
    den += mesh_.cell_area[c];
  }
  return den > 0 ? num / den : 0.0;
}

} // namespace grist::core
