#include "grist/core/parallel_model.hpp"

#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace grist::core {

using dycore::State;
using grid::TrskWeights;
using parallel::LocalDomain;

TrskWeights localTrskWeights(const TrskWeights& global, const LocalDomain& dom) {
  std::unordered_map<Index, Index> edge_l;
  edge_l.reserve(dom.edge_global.size());
  for (Index le = 0; le < static_cast<Index>(dom.edge_global.size()); ++le) {
    edge_l.emplace(dom.edge_global[le], le);
  }
  TrskWeights local;
  const Index nlocal = static_cast<Index>(dom.edge_global.size());
  local.offset.assign(nlocal + 1, 0);
  for (Index le = 0; le < nlocal; ++le) {
    local.offset[le + 1] = local.offset[le];
    if (le >= dom.nedges_owned) continue;  // halo edges never compute
    const Index ge = dom.edge_global[le];
    for (Index j = global.offset[ge]; j < global.offset[ge + 1]; ++j) {
      const auto it = edge_l.find(global.edge[j]);
      if (it == edge_l.end()) {
        throw std::logic_error("localTrsk: neighbor edge missing from halo");
      }
      local.edge.push_back(it->second);
      local.weight.push_back(global.weight[j]);
      ++local.offset[le + 1];
    }
  }
  return local;
}

State scatterLocalState(const State& global, const LocalDomain& dom, int nlev,
                        int ntracers) {
  State local(dom.mesh, nlev, ntracers);
  scatterIntoLocalState(global, dom, local);
  return local;
}

void scatterIntoLocalState(const State& global, const LocalDomain& dom,
                           State& local) {
  const int nlev = local.nlev;
  const int ntracers = static_cast<int>(local.tracers.size());
  for (Index lc = 0; lc < dom.mesh.ncells; ++lc) {
    const Index g = dom.cell_global[lc];
    for (int k = 0; k < nlev; ++k) {
      local.delp(lc, k) = global.delp(g, k);
      local.theta(lc, k) = global.theta(g, k);
      for (int t = 0; t < ntracers; ++t) {
        local.tracers[t](lc, k) = global.tracers[t](g, k);
      }
    }
    for (int k = 0; k <= nlev; ++k) {
      local.w(lc, k) = global.w(g, k);
      local.phi(lc, k) = global.phi(g, k);
    }
  }
  for (Index le = 0; le < dom.mesh.nedges; ++le) {
    const Index g = dom.edge_global[le];
    for (int k = 0; k < nlev; ++k) local.u(le, k) = global.u(g, k);
  }
}

void ParallelModel::StageExchange::operator()() const noexcept {
  model->comm_.exchange(model->lists_);
}

ParallelModel::ParallelModel(const grid::HexMesh& mesh, const TrskWeights& trsk,
                             dycore::DycoreConfig config, Index nranks,
                             const State& global_initial)
    : mesh_(mesh),
      config_(config),
      decomp_(parallel::decompose(mesh, nranks, /*halo_depth=*/2)),
      comm_(decomp_),
      start_barrier_(static_cast<std::ptrdiff_t>(nranks) + 1),
      done_barrier_(static_cast<std::ptrdiff_t>(nranks) + 1),
      stage_barrier_(static_cast<std::ptrdiff_t>(nranks), StageExchange{this}) {
  const int ntracers = static_cast<int>(global_initial.tracers.size());
  // Dycores hold references into local_trsk_; reserve so push_back never
  // reallocates under them.
  local_trsk_.reserve(decomp_.nranks);
  dycores_.reserve(decomp_.nranks);
  states_.reserve(decomp_.nranks);
  for (Index r = 0; r < decomp_.nranks; ++r) {
    const LocalDomain& dom = decomp_.domains[r];
    local_trsk_.push_back(localTrskWeights(trsk, dom));
    dycore::Bounds bounds;
    bounds.cells_prog = dom.ncells_owned;
    bounds.cells_diag = dom.ncells_inner1;
    bounds.edges_prog = dom.nedges_owned;
    bounds.vertices_diag = dom.nvtx_complete;
    dycores_.push_back(std::make_unique<dycore::Dycore>(dom.mesh, local_trsk_[r],
                                                        config_, bounds));
    // Boundary/interior bands from the decomposition's exchange patterns
    // drive the overlapped schedule.
    dycore::Bands bands;
    bands.boundary_cells = dom.boundary_cells;
    bands.interior_cells = dom.interior_cells;
    bands.boundary_edges = dom.boundary_edges;
    bands.interior_edges = dom.interior_edges;
    dycores_.back()->setBands(std::move(bands));
    states_.push_back(scatterLocalState(global_initial, dom, config_.nlev, ntracers));
  }
  // Exchange lists reference stable field storage inside states_.
  lists_.resize(decomp_.nranks);
  for (Index r = 0; r < decomp_.nranks; ++r) {
    State& s = states_[r];
    lists_[r].addCellField(s.delp);
    lists_[r].addCellField(s.theta);
    lists_[r].addCellField(s.w);
    lists_[r].addCellField(s.phi);
    lists_[r].addEdgeField(s.u);
  }
  // Plan the packed buffers once; the step loop never reallocates them.
  comm_.plan(lists_);
  // Per-rank exchange callbacks, built once (no std::function construction
  // in the warm step path).
  lockstep_fns_.reserve(decomp_.nranks);
  overlap_hooks_.reserve(decomp_.nranks);
  for (Index r = 0; r < decomp_.nranks; ++r) {
    lockstep_fns_.push_back(
        [this](State&) { stage_barrier_.arrive_and_wait(); });
    dycore::Dycore::OverlapHooks hooks;
    hooks.post = [this, r]() { comm_.post(r); };
    hooks.wait = [this, r]() { comm_.wait(r); };
    overlap_hooks_.push_back(std::move(hooks));
  }
  // Initial halo fill (scatterState already fills halos, but this exercises
  // the exchange path and guards against stale construction).
  comm_.exchange(lists_);
  // Persistent pool: one worker per rank, parked at start_barrier_.
  workers_.reserve(decomp_.nranks);
  for (Index r = 0; r < decomp_.nranks; ++r) {
    workers_.emplace_back([this, r]() { workerLoop(r); });
  }
}

ParallelModel::~ParallelModel() {
  stopping_ = true;
  start_barrier_.arrive_and_wait();  // release workers; they see stopping_
  for (auto& t : workers_) t.join();
}

void ParallelModel::workerLoop(Index rank) {
  for (;;) {
    start_barrier_.arrive_and_wait();
    if (stopping_) return;
    if (schedule_ == Schedule::kOverlap) {
      dycores_[rank]->step(states_[rank], overlap_hooks_[rank]);
    } else {
      dycores_[rank]->step(states_[rank], lockstep_fns_[rank]);
    }
    done_barrier_.arrive_and_wait();
  }
}

void ParallelModel::step() {
  if (schedule_ == Schedule::kSpawnUnpacked) {
    // Seed schedule, kept as the ablation baseline: spawn a thread per rank
    // every step and run the element-wise exchange at full-stop barriers.
    const Index n = decomp_.nranks;
    std::barrier barrier(static_cast<std::ptrdiff_t>(n), [this]() noexcept {
      comm_.exchangeUnpacked(lists_);
    });
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (Index r = 0; r < n; ++r) {
      threads.emplace_back([this, r, &barrier]() {
        dycores_[r]->step(states_[r],
                          [&barrier](State&) { barrier.arrive_and_wait(); });
      });
    }
    for (auto& t : threads) t.join();
    return;
  }
  start_barrier_.arrive_and_wait();  // workers run one step under schedule_
  done_barrier_.arrive_and_wait();
}

void ParallelModel::run(int nsteps) {
  for (int i = 0; i < nsteps; ++i) step();
}

void ParallelModel::restoreGlobalState(const State& global) {
  const int ntracers = static_cast<int>(states_[0].tracers.size());
  if (global.nlev != config_.nlev ||
      static_cast<int>(global.tracers.size()) != ntracers ||
      global.delp.entities() != mesh_.ncells ||
      global.u.entities() != mesh_.nedges) {
    throw std::runtime_error("ParallelModel::restoreGlobalState: shape mismatch");
  }
  // Scatter fills halos from the same global data the owners get, so the
  // ranks are exchange-consistent without an extra round (and CommStats
  // stay comparable between restored and unbroken runs).
  for (Index r = 0; r < decomp_.nranks; ++r) {
    scatterIntoLocalState(global, decomp_.domains[r], states_[r]);
  }
}

State ParallelModel::gatherState() const {
  const int ntracers = static_cast<int>(states_[0].tracers.size());
  State global(mesh_, config_.nlev, ntracers);
  for (Index r = 0; r < decomp_.nranks; ++r) {
    const LocalDomain& dom = decomp_.domains[r];
    const State& local = states_[r];
    for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
      const Index g = dom.cell_global[lc];
      for (int k = 0; k < config_.nlev; ++k) {
        global.delp(g, k) = local.delp(lc, k);
        global.theta(g, k) = local.theta(lc, k);
        for (int t = 0; t < ntracers; ++t) {
          global.tracers[t](g, k) = local.tracers[t](lc, k);
        }
      }
      for (int k = 0; k <= config_.nlev; ++k) {
        global.w(g, k) = local.w(lc, k);
        global.phi(g, k) = local.phi(lc, k);
      }
    }
    for (Index le = 0; le < dom.nedges_owned; ++le) {
      const Index g = dom.edge_global[le];
      for (int k = 0; k < config_.nlev; ++k) global.u(g, k) = local.u(le, k);
    }
  }
  return global;
}

} // namespace grist::core
