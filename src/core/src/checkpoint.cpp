#include "grist/core/checkpoint.hpp"

#include <stdexcept>
#include <string>

namespace grist::core {

io::ConfigSection dynConfigSection(const dycore::DycoreConfig& cfg,
                                   int grid_level, int ntracers, Index nranks,
                                   std::uint64_t partition_fingerprint) {
  io::ConfigSection cs;
  cs.grid_level = grid_level;
  cs.writer_nranks = static_cast<std::int32_t>(nranks);
  cs.nlev = cfg.nlev;
  cs.ntracers = ntracers;
  cs.trac_interval = 0;  // dynamics-only: no cadences
  cs.phy_interval = 0;
  cs.dt = cfg.dt;
  cs.ns_single = cfg.ns == precision::NsMode::kSingle ? 1 : 0;
  cs.partition_fingerprint = partition_fingerprint;
  return cs;
}

void validateDynSnapshot(const io::Snapshot& snap,
                         const dycore::DycoreConfig& cfg, int grid_level,
                         Index ncells, Index nedges, int ntracers) {
  if (!snap.state) {
    throw std::runtime_error("restart: snapshot has no STATE section");
  }
  const auto mismatch = [](const char* field, double have, double want) {
    throw std::runtime_error("restart: CONFIG mismatch: " +
                             std::string(field) + " " + std::to_string(have) +
                             " (checkpoint) vs " + std::to_string(want) +
                             " (run)");
  };
  if (snap.config) {
    const io::ConfigSection& cs = *snap.config;
    if (cs.grid_level >= 0 && cs.grid_level != grid_level) {
      mismatch("grid_level", cs.grid_level, grid_level);
    }
    if (cs.nlev != cfg.nlev) mismatch("nlev", cs.nlev, cfg.nlev);
    if (cs.ntracers != ntracers) mismatch("ntracers", cs.ntracers, ntracers);
    if (cs.dt != cfg.dt) mismatch("dt", cs.dt, cfg.dt);
    const std::uint8_t ns = cfg.ns == precision::NsMode::kSingle ? 1 : 0;
    if (cs.ns_single != ns) mismatch("ns_single", cs.ns_single, ns);
  }
  const io::StateSection& s = *snap.state;
  if (s.ncells != ncells) mismatch("ncells", static_cast<double>(s.ncells), ncells);
  if (s.nedges != nedges) mismatch("nedges", static_cast<double>(s.nedges), nedges);
  if (s.nlev != cfg.nlev) mismatch("nlev", s.nlev, cfg.nlev);
  if (s.ntracers != ntracers) mismatch("ntracers", s.ntracers, ntracers);
}

io::Snapshot captureDynRun(const dycore::State& global,
                           const dycore::DycoreConfig& cfg, int grid_level,
                           long steps_done, Index nranks,
                           std::uint64_t partition_fingerprint) {
  io::Snapshot snap;
  snap.state = io::StateSection::capture(global);
  io::ClockSection clock;
  clock.sim_seconds = static_cast<double>(steps_done) * cfg.dt;
  clock.dyn_steps = steps_done;
  snap.clock = clock;
  snap.config = dynConfigSection(cfg, grid_level,
                                 static_cast<int>(global.tracers.size()),
                                 nranks, partition_fingerprint);
  return snap;
}

dycore::State loadDynRestart(const std::string& path,
                             const grid::HexMesh& mesh,
                             const dycore::DycoreConfig& cfg, int ntracers,
                             long* steps_done) {
  const io::Snapshot snap = io::Snapshot::read(path);
  validateDynSnapshot(snap, cfg, mesh.level, mesh.ncells, mesh.nedges,
                      ntracers);
  if (steps_done) {
    *steps_done = snap.clock && snap.clock->dyn_steps >= 0
                      ? static_cast<long>(snap.clock->dyn_steps)
                      : 0;
  }
  return snap.state->toState(mesh);
}

} // namespace grist::core
