// Batched halo exchange. Mirrors the paper's parallelization facilitation
// layer (section 3.1.3): variables queued for exchange are gathered into a
// list and ONE call to the communication interface moves all of them, so the
// message count per step is the number of neighbor pairs, not
// pairs x variables. Byte and message counts are recorded; the network model
// (src/network) converts them into projected communication time.
//
// Transport: each pattern's variables are PACKED into one contiguous
// per-pattern message buffer (pack -> one copy -> unpack, mirroring a real
// MPI transport). WHERE that buffer lives and how sender/receiver
// synchronize on it is the Transport seam (transport.hpp): the default
// InProcessTransport keeps PR 3's heap buffers + std::atomic wait/notify;
// ShmTransport puts the same single-slot buffers in a POSIX shared-memory
// segment with futex doorbells so each rank can be its own OS process. The
// pack buffers themselves live in the transport's memory, so crossing a
// process boundary adds no copy: the sender packs straight into the shared
// slot and the receiver's unpack IS the one copy.
//
// The exchange is available in two forms:
//   exchange(lists)  - collective: pack every pattern, then unpack every
//                      pattern (single orchestrating thread, pack/unpack
//                      parallelized across patterns); in-process only;
//   post(r)/wait(r)  - split halves for communication-computation overlap:
//                      rank r's thread (or process) packs and publishes its
//                      outgoing messages in post() as soon as its boundary
//                      band is computed, then blocks in wait() only when it
//                      actually consumes halos. Senders and receivers
//                      synchronize through per-pattern sequence numbers, so
//                      no global barrier is involved.
// Message sizes per pattern are fixed by the variable shapes, which plan()
// validates and caches once; per-exchange CommStats updates are O(1).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "grist/parallel/decompose.hpp"
#include "grist/parallel/field.hpp"
#include "grist/parallel/transport.hpp"

namespace grist::parallel {

/// One rank's list of variables queued for the next exchange. Storage is
/// reserved for the usual prognostic set up front so queueing never
/// reallocates in the step loop.
class ExchangeList {
 public:
  struct Var {
    double* data = nullptr;
    int ncomp = 1;
  };

  ExchangeList() {
    cell_vars_.reserve(kReserve);
    edge_vars_.reserve(kReserve);
  }

  void addCellVar(double* data, int ncomp) { cell_vars_.push_back({data, ncomp}); }
  void addEdgeVar(double* data, int ncomp) { edge_vars_.push_back({data, ncomp}); }
  void addCellField(Field& f) { addCellVar(f.data(), f.components()); }
  void addEdgeField(Field& f) { addEdgeVar(f.data(), f.components()); }
  void clear() {
    cell_vars_.clear();
    edge_vars_.clear();
  }

  const std::vector<Var>& cellVars() const { return cell_vars_; }
  const std::vector<Var>& edgeVars() const { return edge_vars_; }

 private:
  static constexpr std::size_t kReserve = 8;
  std::vector<Var> cell_vars_;
  std::vector<Var> edge_vars_;
};

/// Executes the decomposition's exchange patterns through packed
/// per-pattern message buffers over a Transport (transport.hpp).
class Communicator {
 public:
  /// In-process communicator over the default InProcessTransport: one
  /// instance serves every rank (they share the address space).
  explicit Communicator(const Decomposition& decomp);

  /// Communicator over an explicit transport. For a distributed transport
  /// (one OS process per rank) `local_rank` names the rank THIS process
  /// plays: planLocal()/post()/wait() operate on that rank only and the
  /// collective exchange forms are unavailable.
  Communicator(const Decomposition& decomp, std::shared_ptr<Transport> transport,
               Index local_rank = kAllRanks);

  static constexpr Index kAllRanks = -1;

  /// One collective exchange call: every variable in every rank's list is
  /// updated in that rank's halo. `lists` must have one entry per rank, and
  /// every rank's list must contain the same variable shapes (as in MPI,
  /// the call is collective and symmetric). Plans automatically on first
  /// use or when the queued shapes change. In-process transports only.
  void exchange(std::vector<ExchangeList>& lists);

  /// Seed-style element-wise exchange (no packing): kept as the ablation
  /// reference path for bench_ablation_exchange.
  void exchangeUnpacked(std::vector<ExchangeList>& lists);

  /// Bind `lists` for the split post()/wait() protocol: validates that all
  /// ranks queue identically-shaped variable lists (throws, naming the
  /// mismatched rank/var, otherwise), sizes the per-pattern message buffers
  /// and precomputes every byte count. `lists` must outlive subsequent
  /// post()/wait()/exchange() calls. Re-planning with unchanged shapes
  /// reuses the buffers (no allocation).
  void plan(std::vector<ExchangeList>& lists);

  /// Distributed form of plan(): bind THIS process's rank list only. Every
  /// rank process must call it collectively with identically-shaped lists;
  /// shapes are cross-validated through the transport's shared shape slots
  /// and a mismatch throws naming the transport and the peer rank/pid.
  /// `list` must outlive subsequent post()/wait() calls.
  void planLocal(ExchangeList& list);

  /// Overlap protocol, called from rank r's thread (or process) once per
  /// exchange round: post(r) packs and publishes every outgoing message of
  /// rank r; wait(r) blocks until every incoming message of rank r for
  /// this round is published, then unpacks it into r's halos. EVERY rank
  /// must call post() then wait() exactly once per round (even ranks with
  /// no traffic), in the same round order on all ranks. In local mode r
  /// must be the bound local rank.
  void post(Index rank);
  void wait(Index rank);

  CommStats stats() const { return transport_->stats(); }
  void resetStats() { transport_->resetStats(); }

  const Transport& transport() const { return *transport_; }
  Index localRank() const { return local_rank_; }

  /// Emulated interconnect latency (seconds) per exchange round. The
  /// host transports deliver near-instantly, which no real interconnect
  /// does, so overlap-on and overlap-off schedules tie on any shared-memory
  /// host. With a wire latency set, a posted message only becomes
  /// consumable tau after post(): wait() sleeps out the remainder of tau
  /// (usually none -- interior compute already covered it), while the
  /// collective exchange() stalls one full tau window per round, exactly
  /// like a rank blocking in MPI_Waitall right after MPI_Isend. Data is
  /// unaffected; tau = 0 (the default) restores instant delivery. The
  /// delivery deadline travels with the message, so it prices the wire
  /// identically whether the receiver is a thread or another process.
  /// bench_ablation_exchange sets tau from the fat-tree model at the
  /// paper's full machine scale.
  void setWireLatency(double seconds);
  double wireLatency() const;

 private:
  void ensurePlan(std::vector<ExchangeList>& lists);
  void validateShapes(const std::vector<ExchangeList>& lists) const;
  void crossValidateShapes(const ExchangeList& list);
  void finishPlan(const ExchangeList& ref);
  bool planMatches(const ExchangeList& ref) const;
  void packMessage(std::size_t p);
  void unpackMessage(std::size_t p);
  const ExchangeList& listFor(Index rank) const;

  const Decomposition* decomp_;
  std::shared_ptr<Transport> transport_;
  Index local_rank_ = kAllRanks;
  std::vector<ExchangeList>* lists_ = nullptr;  // collective mode
  ExchangeList* local_list_ = nullptr;          // local (distributed) mode

  /// Pattern indices by endpoint rank (copied from the decomposition, or
  /// rebuilt locally for hand-assembled decompositions in tests).
  std::vector<std::vector<Index>> from_;
  std::vector<std::vector<Index>> to_;

  // Plan (valid while the queued shapes match plan_cell_comps_/plan_edge_comps_):
  std::vector<int> plan_cell_comps_, plan_edge_comps_;
  std::vector<std::int64_t> pattern_doubles_;  // slot sizes handed to allocate()
  std::vector<double*> bufs_;                  // cached transport slot pointers
  std::vector<std::int64_t> msg_bytes_;        // per pattern
  bool planned_ = false;
  std::vector<std::int64_t> rank_out_bytes_;   // per rank, per round
  std::vector<std::int64_t> rank_out_msgs_;
  std::int64_t round_bytes_ = 0;               // totals per round
  std::int64_t round_msgs_ = 0;

  // Overlap protocol round counters (per rank; each rank's counter is only
  // touched from that rank's thread/process).
  std::vector<std::uint64_t> round_;

  // Emulated interconnect latency per round (zero = instant delivery).
  std::chrono::steady_clock::duration wire_latency_{0};
};

} // namespace grist::parallel
