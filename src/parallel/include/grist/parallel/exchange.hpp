// Batched halo exchange. Mirrors the paper's parallelization facilitation
// layer (section 3.1.3): variables queued for exchange are gathered into a
// list and ONE call to the communication interface moves all of them, so the
// message count per step is the number of neighbor pairs, not
// pairs x variables. Byte and message counts are recorded; the network model
// (src/network) converts them into projected communication time.
#pragma once

#include <cstdint>
#include <vector>

#include "grist/parallel/decompose.hpp"
#include "grist/parallel/field.hpp"

namespace grist::parallel {

/// One rank's list of variables queued for the next exchange.
class ExchangeList {
 public:
  struct Var {
    double* data = nullptr;
    int ncomp = 1;
  };

  void addCellVar(double* data, int ncomp) { cell_vars_.push_back({data, ncomp}); }
  void addEdgeVar(double* data, int ncomp) { edge_vars_.push_back({data, ncomp}); }
  void addCellField(Field& f) { addCellVar(f.data(), f.components()); }
  void addEdgeField(Field& f) { addEdgeVar(f.data(), f.components()); }
  void clear() {
    cell_vars_.clear();
    edge_vars_.clear();
  }

  const std::vector<Var>& cellVars() const { return cell_vars_; }
  const std::vector<Var>& edgeVars() const { return edge_vars_; }

 private:
  std::vector<Var> cell_vars_;
  std::vector<Var> edge_vars_;
};

/// Traffic accounting for one or more exchange calls.
struct CommStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t exchanges = 0;

  CommStats& operator+=(const CommStats& o) {
    messages += o.messages;
    bytes += o.bytes;
    exchanges += o.exchanges;
    return *this;
  }
};

/// In-process communicator: executes the decomposition's exchange patterns
/// by direct copies between rank-local buffers.
class Communicator {
 public:
  explicit Communicator(const Decomposition& decomp) : decomp_(&decomp) {}

  /// One exchange call: every variable in every rank's list is updated in
  /// that rank's halo. `lists` must have one entry per rank, and every
  /// rank's list must contain the same variable shapes (as in MPI, the call
  /// is collective and symmetric).
  void exchange(std::vector<ExchangeList>& lists);

  const CommStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }

 private:
  const Decomposition* decomp_;
  CommStats stats_;
};

} // namespace grist::parallel
