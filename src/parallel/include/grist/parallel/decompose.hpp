// Horizontal domain decomposition: builds per-rank local sub-meshes with
// halo rings and the send/recv maps that drive halo exchange. This is the
// in-process substitute for GRIST's MPI decomposition (paper section 3.1.3);
// correctness is checked by bitwise comparison against single-rank runs.
//
// Local orderings (so kernels can use simple loop bounds):
//   cells:    [owned][ring 1][ring 2]...[ring H]
//   edges:    [owned (rank owns edge_cell[0])][rest, by ring]
//   vertices: [complete (all 3 cells and edges local)][incomplete]
// With halo depth >= 2, tendencies are computed on owned entities only and
// diagnostics (kinetic energy, vorticity) on owned + ring-1 entities.
#pragma once

#include <vector>

#include "grist/common/types.hpp"
#include "grist/grid/hex_mesh.hpp"

namespace grist::parallel {

/// One rank's view of the globe.
struct LocalDomain {
  Index rank = 0;

  /// Local sub-mesh; connectivity entries referencing entities outside the
  /// local set are kInvalidIndex (only on the outermost ring).
  grid::HexMesh mesh;

  Index ncells_owned = 0;
  Index ncells_inner1 = 0;  ///< owned + ring-1 cells (diagnostic bound)
  Index nedges_owned = 0;
  Index nvtx_complete = 0;

  /// local index -> global index
  std::vector<Index> cell_global;
  std::vector<Index> edge_global;
  std::vector<Index> vtx_global;

  /// Boundary/interior split of the OWNED entities, derived from the
  /// exchange patterns: boundary entities appear in at least one send map
  /// (some neighbor reads their values), interior entities in none. Both
  /// lists are ascending and together partition [0, n*_owned). The split
  /// drives communication overlap: a rank updates its boundary band first,
  /// posts the outgoing halo messages, then updates the interior while the
  /// messages are in flight.
  std::vector<Index> boundary_cells;
  std::vector<Index> interior_cells;
  std::vector<Index> boundary_edges;
  std::vector<Index> interior_edges;
};

/// Send/recv maps between one ordered rank pair.
struct ExchangePattern {
  Index from = 0, to = 0;
  std::vector<Index> send_cells;  ///< local indices on `from`
  std::vector<Index> recv_cells;  ///< local indices on `to`
  std::vector<Index> send_edges;
  std::vector<Index> recv_edges;
  /// Entity counts (== the send vector sizes), precomputed by decompose()
  /// so per-exchange traffic accounting stays O(patterns), not
  /// O(patterns x vars x entities).
  Index nsend_cells = 0;
  Index nsend_edges = 0;
};

struct Decomposition {
  Index nranks = 0;
  int halo_depth = 2;
  std::vector<LocalDomain> domains;
  std::vector<ExchangePattern> patterns;  ///< all ordered pairs with traffic
  std::vector<Index> cell_part;           ///< global cell -> rank

  /// Pattern indices grouped by endpoint: patterns_from[r] lists the
  /// patterns with from == r, patterns_to[r] those with to == r (both in
  /// `patterns` order). These drive the per-rank post()/wait() halves of
  /// the overlapped exchange.
  std::vector<std::vector<Index>> patterns_from;
  std::vector<std::vector<Index>> patterns_to;
};

/// Decompose `mesh` into `nranks` domains using the given partition vector
/// (one rank id per global cell) and halo depth (>= 1; dycore needs 2).
Decomposition decompose(const grid::HexMesh& mesh, const std::vector<Index>& part,
                        int halo_depth = 2);

/// Convenience: partition with the built-in partitioner, then decompose.
Decomposition decompose(const grid::HexMesh& mesh, Index nranks, int halo_depth = 2);

} // namespace grist::parallel
