// Fork/exec launcher for one-OS-process-per-rank runs over the shm
// transport.
//
// Children are fork+exec'd from /proc/self/exe rather than plain-forked:
// the parent typically has live OpenMP teams (libgomp is not fork-safe),
// so each rank gets a fresh address space and re-enters the same binary in
// a worker argv mode (the binary dispatches on its own argv early in main).
// Rank-to-core pinning (sched_setaffinity on rank % ncores) is applied in
// the child between fork and exec -- the affinity mask survives exec.
//
// waitRanks() implements whole-run teardown: the first rank that exits
// nonzero (or dies on a signal) gets its exit code propagated, the
// remaining ranks are SIGTERMed, and survivors past a grace window are
// SIGKILLed -- a crashed rank can never leave the run wedged on a futex.
#pragma once

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

#include "grist/common/types.hpp"

namespace grist::parallel {

/// Unique /dev/shm-safe segment name for one multi-process run
/// ("/grist-mp-<pid>-<nonce>"). Uniqueness per live parent is what matters;
/// a name leaked by a killed run is reclaimed by ShmRegion::create.
std::string makeSegmentName();

/// Fork+exec `nranks` copies of this binary. `argv_for(rank)` supplies the
/// FULL argv (argv[0] included) for that rank's process; `pin` pins rank r
/// to core r % ncores before exec. Returns the child pids in rank order.
/// Throws (after killing already-spawned children) if a fork fails.
std::vector<pid_t> spawnRanks(Index nranks, bool pin,
                              const std::function<std::vector<std::string>(Index)>& argv_for);

/// Reap every child; on the first nonzero exit (or signal death, reported
/// as 128+signo) SIGTERM the rest, SIGKILL whatever survives `kill_grace_s`
/// seconds, and return the first failure code. Returns 0 when all ranks
/// exit cleanly.
int waitRanks(const std::vector<pid_t>& pids, double kill_grace_s = 5.0);

} // namespace grist::parallel
