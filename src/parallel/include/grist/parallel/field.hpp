// Per-entity field storage. Layout is component-fastest (column-contiguous):
// value(entity, comp) = data[entity * ncomp + comp]. GRIST stores (ilev, ie)
// with the level index fastest for the same reason: physics and the vertical
// implicit solver sweep whole columns -- and the SIMD backend vectorizes
// exactly that unit-stride component (nlev) dimension.
//
// Storage is cache-line aligned and padded out to whole lines
// (common::AlignedVector): the vectorized sweeps get an aligned base, the
// head vector lane of a field never splits a line, and no two fields share
// the line at either end. Indexing is unchanged (stride stays ncomp), so
// this is bitwise-invisible to every kernel.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "grist/common/aligned.hpp"
#include "grist/common/types.hpp"

namespace grist::parallel {

template <typename T>
class FieldT {
 public:
  FieldT() = default;
  FieldT(Index nentity, int ncomp, T init = T{})
      : nentity_(nentity), ncomp_(ncomp) {
    if (nentity < 0 || ncomp <= 0) throw std::invalid_argument("FieldT: bad shape");
    const std::size_t n = static_cast<std::size_t>(nentity) * ncomp;
    data_.reserve(common::roundUpToCacheLine(n * sizeof(T)) / sizeof(T));
    data_.assign(n, init);
  }

  Index entities() const { return nentity_; }
  int components() const { return ncomp_; }

  T& operator()(Index entity, int comp) {
    return data_[static_cast<std::size_t>(entity) * ncomp_ + comp];
  }
  const T& operator()(Index entity, int comp) const {
    return data_[static_cast<std::size_t>(entity) * ncomp_ + comp];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  void fill(T value) { data_.assign(data_.size(), value); }

 private:
  Index nentity_ = 0;
  int ncomp_ = 1;
  common::AlignedVector<T> data_;
};

using Field = FieldT<double>;
using FieldSP = FieldT<float>;

} // namespace grist::parallel
