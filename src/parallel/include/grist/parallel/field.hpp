// Per-entity field storage. Layout is component-fastest (column-contiguous):
// value(entity, comp) = data[entity * ncomp + comp]. GRIST stores (ilev, ie)
// with the level index fastest for the same reason: physics and the vertical
// implicit solver sweep whole columns.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "grist/common/types.hpp"

namespace grist::parallel {

template <typename T>
class FieldT {
 public:
  FieldT() = default;
  FieldT(Index nentity, int ncomp, T init = T{})
      : nentity_(nentity), ncomp_(ncomp), data_(static_cast<std::size_t>(nentity) * ncomp, init) {
    if (nentity < 0 || ncomp <= 0) throw std::invalid_argument("FieldT: bad shape");
  }

  Index entities() const { return nentity_; }
  int components() const { return ncomp_; }

  T& operator()(Index entity, int comp) {
    return data_[static_cast<std::size_t>(entity) * ncomp_ + comp];
  }
  const T& operator()(Index entity, int comp) const {
    return data_[static_cast<std::size_t>(entity) * ncomp_ + comp];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  void fill(T value) { data_.assign(data_.size(), value); }

 private:
  Index nentity_ = 0;
  int ncomp_ = 1;
  std::vector<T> data_;
};

using Field = FieldT<double>;
using FieldSP = FieldT<float>;

} // namespace grist::parallel
