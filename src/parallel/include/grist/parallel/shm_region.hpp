// RAII POSIX shared-memory region with a create/attach rendezvous protocol.
//
// Every region starts with a fixed 64-byte header the CREATOR initializes:
//   magic        sanity check for attachers
//   state        kPartial once the creator claimed the name, kReady once the
//                payload is fully initialized (attachers futex-wait on it)
//   creator_pid  liveness anchor for stale-segment reclaim: a name left in
//                /dev/shm by a killed run is detected at create() time by
//                kill(creator_pid, 0) == ESRCH and silently unlinked instead
//                of failing the new run with EEXIST
//   bytes        total mapped size, cross-checked by attachers
//
// The region is NOT unlinked on destruction -- the launcher (the process
// that outlives every rank) unlinks by name at teardown, so rank processes
// can detach and re-attach freely while a run is live. unlink() is
// idempotent (ENOENT is not an error).
//
// futexWait/futexWake are thin wrappers over the raw futex syscall WITHOUT
// FUTEX_PRIVATE_FLAG, so waits and wakes pair up across process boundaries.
// (libstdc++'s std::atomic::wait/notify uses a process-local proxy table for
// exactly this case, which is why the wrappers exist.)
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace grist::parallel {

/// Cross-process futex wait: block while *word == expected, with an optional
/// timeout in seconds (<= 0 waits forever). Returns false on timeout.
bool futexWait(const std::atomic<std::uint32_t>* word, std::uint32_t expected,
               double timeout_s = 0.0);
/// Wake up to `n` cross-process waiters on `word` (INT_MAX = all).
void futexWake(const std::atomic<std::uint32_t>* word, int n);

class ShmRegion {
 public:
  static constexpr std::size_t kHeaderBytes = 64;

  ShmRegion() = default;
  ShmRegion(ShmRegion&& o) noexcept;
  ShmRegion& operator=(ShmRegion&& o) noexcept;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;
  ~ShmRegion();

  /// Claim `name` exclusively and map header + `payload_bytes` of
  /// zero-initialized memory. A leftover segment whose creator process is
  /// dead is reclaimed (unlinked and re-created); a segment whose creator is
  /// alive throws (a concurrent run owns the name). The payload is NOT
  /// visible to attachers until markReady().
  static ShmRegion create(const std::string& name, std::size_t payload_bytes);

  /// Attach to a region another process create()s, blocking until it exists
  /// and its creator called markReady(). Throws on timeout or if the header
  /// (magic/size) does not match.
  static ShmRegion attach(const std::string& name, std::size_t payload_bytes,
                          double timeout_s = 30.0);

  /// Creator only: payload initialization finished, release attachers.
  void markReady();

  bool valid() const { return map_ != nullptr; }
  bool created() const { return created_; }
  const std::string& name() const { return name_; }
  void* payload() const;
  std::size_t payloadBytes() const { return bytes_ - kHeaderBytes; }
  std::int32_t creatorPid() const;

  /// shm_unlink the name; missing names are fine (idempotent teardown).
  static void unlink(const std::string& name);

 private:
  std::string name_;
  void* map_ = nullptr;
  std::size_t bytes_ = 0;  // header + payload
  bool created_ = false;
};

} // namespace grist::parallel
