// Zero-copy cross-process transport: the Communicator's per-pattern message
// slots live in POSIX shared-memory segments (ShmRegion) mapped by every
// rank process, and the doorbells are raw futexes on 32-bit sequence words
// in those segments.
//
// Two segments per run:
//
//   "<name>-hs"  handshake segment, sized by nranks alone and mapped at
//                CONSTRUCTION: startup barrier words, the run-wide CommStats
//                atomics, and one kShapeSlotBytes shape slot per rank. It
//                exists before any message sizes are known, which is what
//                lets Communicator::planLocal cross-validate the queued
//                variable shapes BETWEEN processes before anyone sizes a
//                message buffer -- a mismatch dies with an error naming the
//                transport and the peer rank/pid instead of surfacing as a
//                segment-size conflict.
//   "<name>"     data segment, sized from the cross-validated plan and
//                mapped in allocate(): per-pattern channels (posted/consumed
//                sequence words -- the futex doorbells -- plus the
//                wire-delivery deadline) followed by the packed message
//                slots, 64-byte aligned.
//
// The protocol is PR 3's single-slot SPSC scheme verbatim, only the
// synchronization primitive changes: libstdc++'s std::atomic::wait/notify
// keeps its waiter pool in process-local memory, so cross-process doorbells
// must be raw FUTEX_WAIT/FUTEX_WAKE (no FUTEX_PRIVATE_FLAG) on 32-bit
// words. Sequence numbers are truncated to uint32 with wrap-safe
// (int32)(got - want) < 0 comparisons; a channel would need > 4 billion
// exchange rounds to alias.
//
// Zero intermediate copies: the sender packs straight into the mapped slot
// and the receiver unpacks straight out of it -- crossing the process
// boundary adds no memcpy over the in-process transport.
//
// Segments are created by rank 0 (reclaiming stale leftovers whose creator
// is dead, see ShmRegion::create) and attached by the rest; allocate() ends
// with a barrier so nobody posts before everyone is mapped. The launcher
// unlinks both names at teardown.
#pragma once

#include <string>
#include <vector>

#include "grist/parallel/shm_region.hpp"
#include "grist/parallel/transport.hpp"

namespace grist::parallel {

class ShmTransport final : public Transport {
 public:
  /// `segment_name` ("/grist-mp-<token>") is shared by all rank processes
  /// of one run; `local_rank` is the rank THIS process plays. The
  /// constructor is a collective rendezvous on the handshake segment.
  ShmTransport(std::string segment_name, Index nranks, Index local_rank);

  const char* name() const override { return "shm"; }
  bool distributed() const override { return true; }

  void allocate(const std::vector<std::int64_t>& pattern_doubles) override;
  double* buffer(std::size_t p) override { return bufs_[p]; }

  void waitSendSlot(std::size_t p, std::uint64_t seq) override;
  void publish(std::size_t p, std::uint64_t seq,
               std::int64_t deliver_at_ns) override;
  std::int64_t waitPosted(std::size_t p, std::uint64_t seq) override;
  void consume(std::size_t p, std::uint64_t seq) override;
  void advanceRound(std::size_t p) override;

  void addTraffic(std::int64_t messages, std::int64_t bytes,
                  std::int64_t exchanges) override;
  CommStats stats() const override;
  void resetStats() override;

  void barrier() override;
  std::uint8_t* shapeSlot(Index rank) override;

  const std::string& segmentName() const { return seg_name_; }
  Index localRank() const { return local_rank_; }

  /// Unlink both segment names of a run (launcher teardown; idempotent).
  static void unlinkSegments(const std::string& segment_name);

  /// One pattern's doorbell + slot metadata inside the data segment.
  /// Sender and receiver words sit on separate cache lines (the sender
  /// waits on `consumed`, the receiver on `posted`).
  struct alignas(64) Channel {
    std::atomic<std::uint32_t> posted;
    std::uint32_t pad0_;
    /// Written by the sender before the release-store of `posted`, read by
    /// the receiver after the acquire-load in waitPosted -- the sequence
    /// word orders it across the process boundary.
    std::int64_t deliver_at_ns;
    char pad1_[48];
    std::atomic<std::uint32_t> consumed;
    char pad2_[60];
  };
  static_assert(sizeof(Channel) == 128);

 private:
  struct alignas(64) Header {
    std::int32_t nranks;
    std::atomic<std::uint32_t> barrier_arrived;
    std::atomic<std::uint32_t> barrier_gen;
    std::int32_t pad0_;
    std::atomic<std::int64_t> messages;
    std::atomic<std::int64_t> bytes;
    std::atomic<std::int64_t> exchanges;
    char pad1_[128 - 40];
  };
  static_assert(sizeof(Header) == 128);

  std::string seg_name_;
  Index nranks_;
  Index local_rank_;

  ShmRegion hs_region_;                    // header + shape slots
  Header* hdr_ = nullptr;
  std::uint8_t* shapes_ = nullptr;

  ShmRegion data_region_;                  // channels + message buffers
  std::vector<std::int64_t> sizes_;        // allocate() idempotency check
  Channel* channels_ = nullptr;
  std::vector<double*> bufs_;
};

} // namespace grist::parallel
