// Transport seam under the Communicator's packed exchange: who owns the
// per-pattern message slot, and how sender and receiver synchronize on it.
//
// The Communicator's contract (PR 3) is pack -> ONE copy -> unpack: each
// exchange pattern's queued variables are packed into a single contiguous
// message buffer, the receiver unpacks straight out of that buffer, and a
// single-slot sequence-number protocol (posted/consumed) provides both the
// rendezvous and the back-pressure. A Transport supplies exactly that slot:
//
//   buffer(p)                where pack() writes / unpack() reads -- the
//                            SAME memory on both sides, so the only data
//                            movement is the pack on the sender and the
//                            unpack on the receiver (zero intermediate
//                            copies, whatever address spaces are involved)
//   waitSendSlot(p, seq)     sender back-pressure: block until the receiver
//                            consumed round seq-1 (slots are single-slot
//                            rings, not queues)
//   publish(p, seq, t)       release the packed round seq (+ its emulated
//                            wire-delivery deadline) and ring the doorbell
//   waitPosted(p, seq)       receiver: block until round seq is published;
//                            returns the delivery deadline (0 = instant)
//   consume(p, seq)          receiver: round seq unpacked; frees the slot
//
// Two implementations:
//   InProcessTransport (default)  heap buffers + std::atomic wait/notify,
//                                 the PR 3 semantics verbatim -- all ranks
//                                 share one address space.
//   ShmTransport                  the buffers and sequence words live in a
//                                 POSIX shared-memory segment and the
//                                 doorbells are raw futexes, so the ranks
//                                 may be separate OS processes
//                                 (shm_transport.hpp).
// Both keep the traffic counters (CommStats) O(1) per round; for the shm
// transport they are process-shared atomics, so every rank process reads
// the same run-wide totals the in-process transport reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "grist/common/types.hpp"

namespace grist::parallel {

/// Traffic accounting for one or more exchange calls.
struct CommStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t exchanges = 0;

  CommStats& operator+=(const CommStats& o) {
    messages += o.messages;
    bytes += o.bytes;
    exchanges += o.exchanges;
    return *this;
  }
};

class Transport {
 public:
  /// Fixed-size per-rank scratch the Communicator uses to cross-validate
  /// queued variable shapes between rank processes (see shapeSlot()).
  static constexpr std::size_t kShapeSlotBytes = 256;

  virtual ~Transport() = default;

  /// Short name used in error messages ("in-process", "shm").
  virtual const char* name() const = 0;

  /// True when each rank runs in its own OS process: the Communicator must
  /// then be bound to a single local rank (planLocal) and the collective
  /// exchange forms are unavailable.
  virtual bool distributed() const = 0;

  /// Size (doubles) of every pattern's single-slot message buffer. Called
  /// at plan() time; must be idempotent for unchanged sizes (a warm replan
  /// allocates nothing). For a distributed transport this is the collective
  /// rendezvous that creates or attaches the shared segment -- EVERY rank
  /// process must call it with identical sizes.
  virtual void allocate(const std::vector<std::int64_t>& pattern_doubles) = 0;

  /// Pattern p's message slot; stable until the next allocate().
  virtual double* buffer(std::size_t p) = 0;

  // SPSC single-slot protocol (sequence numbers start at 1 on first use):
  virtual void waitSendSlot(std::size_t p, std::uint64_t seq) = 0;
  virtual void publish(std::size_t p, std::uint64_t seq,
                       std::int64_t deliver_at_ns) = 0;
  virtual std::int64_t waitPosted(std::size_t p, std::uint64_t seq) = 0;
  virtual void consume(std::size_t p, std::uint64_t seq) = 0;

  /// Collective-exchange form of the sequence bump: the caller moved the
  /// data itself (it has every rank's arrays in one address space), so only
  /// advance posted/consumed to keep split and collective rounds
  /// interleavable. Meaningless for a distributed transport.
  virtual void advanceRound(std::size_t p) = 0;

  // O(1)-per-round traffic counters (run-wide totals on every transport).
  virtual void addTraffic(std::int64_t messages, std::int64_t bytes,
                          std::int64_t exchanges) = 0;
  virtual CommStats stats() const = 0;
  virtual void resetStats() = 0;

  // Distributed-mode collectives (no-ops for the in-process transport):
  /// Block until every rank process reached the same barrier call.
  virtual void barrier() {}
  /// Per-rank kShapeSlotBytes scratch in the shared segment, used by
  /// Communicator::planLocal to publish this rank's queued shapes and read
  /// every peer's. nullptr when the transport has no cross-process seam.
  virtual std::uint8_t* shapeSlot(Index /*rank*/) { return nullptr; }
};

/// PR 3's in-process slot semantics behind the Transport seam: heap
/// buffers, std::atomic sequence words, futex-blocking wait/notify.
class InProcessTransport final : public Transport {
 public:
  const char* name() const override { return "in-process"; }
  bool distributed() const override { return false; }

  void allocate(const std::vector<std::int64_t>& pattern_doubles) override;
  double* buffer(std::size_t p) override { return slots_[p]->buffer.data(); }

  void waitSendSlot(std::size_t p, std::uint64_t seq) override;
  void publish(std::size_t p, std::uint64_t seq,
               std::int64_t deliver_at_ns) override;
  std::int64_t waitPosted(std::size_t p, std::uint64_t seq) override;
  void consume(std::size_t p, std::uint64_t seq) override;
  void advanceRound(std::size_t p) override;

  void addTraffic(std::int64_t messages, std::int64_t bytes,
                  std::int64_t exchanges) override;
  CommStats stats() const override;
  void resetStats() override;

 private:
  /// One pattern's single-slot message. `posted`/`consumed` carry the round
  /// sequence numbers; `consumed` also provides the back-pressure that
  /// keeps a fast sender from overwriting a message its receiver has not
  /// unpacked yet. Slots are unique_ptrs so replanning never moves a live
  /// atomic.
  struct Slot {
    std::vector<double> buffer;
    std::atomic<std::uint64_t> posted{0};
    std::atomic<std::uint64_t> consumed{0};
    /// Emulated delivery deadline (CLOCK_MONOTONIC ns; 0 = instant).
    /// Written before the release-store of `posted`, read after the
    /// acquire-load in waitPosted, so it needs no atomicity itself.
    std::int64_t deliver_at_ns = 0;
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::int64_t> stat_messages_{0};
  std::atomic<std::int64_t> stat_bytes_{0};
  std::atomic<std::int64_t> stat_exchanges_{0};
};

} // namespace grist::parallel
